// E11 -- O(sqrt t) comparison.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/sqrt_t.cpp); this binary behaves like
// `rbb run sqrt_t` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("sqrt_t", argc, argv);
}
