#include "tetris/tetris.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/samplers.hpp"

namespace rbb {

TetrisProcess::TetrisProcess(LoadConfig initial, Rng rng,
                             std::uint64_t arrivals_per_round,
                             ArrivalSampling sampling)
    : loads_(std::move(initial)),
      rng_(rng),
      arrivals_(arrivals_per_round),
      sampling_(sampling),
      balls_(rbb::total_balls(loads_)) {
  if (loads_.empty()) {
    throw std::invalid_argument("TetrisProcess: empty configuration");
  }
  if (arrivals_ == 0) arrivals_ = loads_.size() * 3 / 4;
  max_load_ = rbb::max_load(loads_);
  empty_ = rbb::empty_bins(loads_);
  first_empty_.assign(loads_.size(), kNeverEmptied);
  for (std::uint32_t u = 0; u < loads_.size(); ++u) {
    if (loads_[u] == 0) first_empty_[u] = 0;
  }
  not_yet_emptied_ = static_cast<std::uint32_t>(loads_.size()) - empty_;
}

TetrisRoundStats TetrisProcess::step() {
  const auto n = static_cast<std::uint32_t>(loads_.size());
  ++round_;
  // Phase 1: every non-empty bin discards one ball.
  std::uint32_t zeros = 0;
  std::uint32_t max_after = 0;
  pending_empty_.clear();
  for (std::uint32_t u = 0; u < n; ++u) {
    std::uint32_t& load = loads_[u];
    if (load > 0) {
      --load;
      --balls_;
      if (load == 0 && first_empty_[u] == kNeverEmptied) {
        pending_empty_.push_back(u);
      }
    }
    if (load == 0) {
      ++zeros;
    } else if (load > max_after) {
      max_after = load;
    }
  }
  max_load_ = max_after;
  empty_ = zeros;
  // Phase 2: arrivals.
  if (sampling_ == ArrivalSampling::kBallByBall) {
    for (std::uint64_t i = 0; i < arrivals_; ++i) {
      apply_arrival(rng_.index(n));
    }
  } else {
    const std::vector<std::uint32_t> counts =
        occupancy_split(arrivals_, n, rng_);
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::uint32_t c = 0; c < counts[v]; ++c) apply_arrival(v);
    }
  }
  balls_ += arrivals_;
  // A bin that reached zero in phase 1 was "empty at this round's end"
  // only if no arrival refilled it.
  for (const std::uint32_t u : pending_empty_) {
    if (loads_[u] == 0 && first_empty_[u] == kNeverEmptied) {
      first_empty_[u] = round_;
      --not_yet_emptied_;
    }
  }
  return TetrisRoundStats{max_load_, empty_, balls_};
}

void TetrisProcess::apply_arrival(std::uint32_t v) {
  std::uint32_t& load = loads_[v];
  if (load == 0) --empty_;
  if (++load > max_load_) max_load_ = load;
}

TetrisRoundStats TetrisProcess::run(std::uint64_t rounds) {
  TetrisRoundStats stats{max_load_, empty_, balls_};
  for (std::uint64_t t = 0; t < rounds; ++t) stats = step();
  return stats;
}

std::uint64_t TetrisProcess::max_first_empty_round() const {
  if (not_yet_emptied_ != 0) return kNeverEmptied;
  return *std::max_element(first_empty_.begin(), first_empty_.end());
}

std::uint64_t TetrisProcess::run_until_all_emptied(std::uint64_t max_rounds) {
  while (!all_emptied_once()) {
    if (round_ >= max_rounds) return kNeverEmptied;
    step();
  }
  return max_first_empty_round();
}

void TetrisProcess::check_invariants() const {
  if (rbb::total_balls(loads_) != balls_) {
    throw std::logic_error("TetrisProcess: ball count drifted");
  }
  if (rbb::max_load(loads_) != max_load_) {
    throw std::logic_error("TetrisProcess: max load out of sync");
  }
  if (rbb::empty_bins(loads_) != empty_) {
    throw std::logic_error("TetrisProcess: empty count out of sync");
  }
  std::uint32_t unseen = 0;
  for (std::uint32_t u = 0; u < loads_.size(); ++u) {
    if (first_empty_[u] == kNeverEmptied) ++unseen;
  }
  if (unseen != not_yet_emptied_) {
    throw std::logic_error("TetrisProcess: first-empty tracking out of sync");
  }
}

}  // namespace rbb
