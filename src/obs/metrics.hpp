// Telemetry metrics registry (DESIGN.md Sect. 6).
//
// Named monotonic counters and per-phase nanosecond totals, sharded
// per thread: every thread that records telemetry owns a cache-line-
// aligned slot of plain (non-atomic) uint64 cells, and scrape() sums
// the slots after the instrumented region has quiesced.  This matches
// the kernel's no-shared-writes discipline -- the hot path never
// touches an atomic or a lock; the only synchronization is the
// ThreadPool batch-completion handshake that already orders every
// task-side write before the submitting thread's scrape.
//
// Cost contract:
//   RBB_TELEMETRY=0   every entry point below compiles to an empty
//                     inline function (pinned by tests/obs/), so the
//                     instrumented kernels are byte-identical to
//                     uninstrumented ones;
//   RBB_TELEMETRY=1,  one relaxed atomic<bool> load and a predicted
//   disabled          branch per call site -- no TLS access, no clock
//                     reads;
//   enabled           TLS slot bump (counters) or two steady_clock
//                     reads per span (obs/trace.hpp).
//
// Slots are registered on first use per thread and never freed, so
// totals from threads that have exited survive until reset().
#pragma once

#ifndef RBB_TELEMETRY
#define RBB_TELEMETRY 1
#endif

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rbb::obs {

/// The monotonic counter catalogue.  Names (to_string) are the JSON
/// keys of the result schema's `metrics.counters` block -- append only.
enum class Counter : unsigned {
  kLemireRetries = 0,     // deferred second-word retries in lemire_batch
  kPlaneBatchesPortable,  // <= 64-slot draw-plane batches, portable path
  kPlaneBatchesAvx2,      // <= 64-slot draw-plane batches, AVX2 path
  kPlaneDraws,            // bounded draws materialized by the plane
  kChunkFlushes,          // sharded-kernel draw-chunk flushes (kDrawChunk)
  kMixedDrops,            // balls dropped by the mixed-regime kernel
  kFaultsInjected,        // engine fault-policy injections
  kPoolBatches,           // ThreadPool for_each batches submitted
  kPoolTasks,             // ThreadPool tasks executed
  kTraceEventsDropped,    // spans lost to a full per-thread trace buffer
  kCheckpointWrites,      // rbb.ckpt.v1 files durably written
  kCheckpointBytes,       // bytes of checkpoint payloads durably written
  kCheckpointFailures,    // checkpoint writes abandoned after all retries
  kCheckpointRetries,     // checkpoint write attempts retried after an error
  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// The span/phase taxonomy.  Phase totals accumulate wall nanoseconds
/// *per recording thread* (a phase running on 4 threads for 1 ms
/// contributes 4 ms), so totals are CPU-time-like; to_string values are
/// both the `metrics.phase_ns` JSON keys and the Chrome-trace event
/// names.
enum class Phase : unsigned {
  kThrow = 0,    // sharded kernel phase 1: stripe throw tasks
  kChoose,       // sharded kernel phase 1.5: d-choices / threshold picks
  kCommit,       // sharded kernel phase 2: owner commit tasks
  kRescan,       // commit-epilogue shard load rescans (stats)
  kPlaneFill,    // DrawPlane fill_range / fill_gather
  kBarrierWait,  // submitter wait for ThreadPool batch completion
  kPoolTask,     // ThreadPool task bodies (invoke only, excludes waits)
  kRound,        // one engine round (includes the kernel phases)
  kTrial,        // one Monte-Carlo trial (includes its rounds)
  kEpochWait,    // pipelined round loop: spins on a peer epoch counter
  kOverlap,      // pipelined throw work done while a prior commit runs
  kCkptWrite,    // encode + atomic persist of one checkpoint file
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] constexpr const char* to_string(Counter counter) noexcept {
  switch (counter) {
    case Counter::kLemireRetries: return "lemire_retries";
    case Counter::kPlaneBatchesPortable: return "plane_batches_portable";
    case Counter::kPlaneBatchesAvx2: return "plane_batches_avx2";
    case Counter::kPlaneDraws: return "plane_draws";
    case Counter::kChunkFlushes: return "chunk_flushes";
    case Counter::kMixedDrops: return "mixed_drops";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kPoolBatches: return "pool_batches";
    case Counter::kPoolTasks: return "pool_tasks";
    case Counter::kTraceEventsDropped: return "trace_events_dropped";
    case Counter::kCheckpointWrites: return "checkpoint_writes";
    case Counter::kCheckpointBytes: return "checkpoint_bytes";
    case Counter::kCheckpointFailures: return "checkpoint_failures";
    case Counter::kCheckpointRetries: return "checkpoint_retries";
    case Counter::kCount: break;
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Phase phase) noexcept {
  switch (phase) {
    case Phase::kThrow: return "throw";
    case Phase::kChoose: return "choose";
    case Phase::kCommit: return "commit";
    case Phase::kRescan: return "rescan";
    case Phase::kPlaneFill: return "plane_fill";
    case Phase::kBarrierWait: return "barrier_wait";
    case Phase::kPoolTask: return "pool_task";
    case Phase::kRound: return "round";
    case Phase::kTrial: return "trial";
    case Phase::kEpochWait: return "epoch_wait";
    case Phase::kOverlap: return "overlap";
    case Phase::kCkptWrite: return "ckpt_write";
    case Phase::kCount: break;
  }
  return "?";
}

/// One scrape(): the summed totals across every registered thread slot.
/// Defined in both builds so the runner's serialization stays
/// unconditional; under RBB_TELEMETRY=0 scrape() returns all zeros.
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kPhaseCount> phase_ns{};

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t phase(Phase p) const noexcept {
    return phase_ns[static_cast<std::size_t>(p)];
  }

  /// Share of pool-related time spent waiting for other threads:
  /// (barrier_wait + epoch_wait) / (barrier_wait + pool_task), 0 when
  /// the pool was never used.  Near 0 = the thread axis is real work;
  /// near 1 = the submitter mostly waits (or the pool mostly idles).
  /// Epoch-wait spins run inside team task bodies, so pool_task already
  /// contains them and the denominator needs no extra term; with no
  /// pipelining (epoch_wait == 0) this reduces exactly to the old
  /// barrier_wait / (barrier_wait + pool_task).
  [[nodiscard]] double barrier_wait_fraction() const noexcept {
    const double wait = static_cast<double>(phase(Phase::kBarrierWait)) +
                        static_cast<double>(phase(Phase::kEpochWait));
    const double denom = static_cast<double>(phase(Phase::kBarrierWait)) +
                         static_cast<double>(phase(Phase::kPoolTask));
    return denom > 0.0 ? wait / denom : 0.0;
  }

  /// How full the pipeline ran: overlap / (overlap + epoch_wait), where
  /// `overlap` is throw-phase time spent while some peer was still
  /// committing the previous round and `epoch_wait` is time spent
  /// spinning on peer epochs.  1 = every wait was hidden behind useful
  /// work; 0 = no overlap happened (barriered execution, one worker, or
  /// telemetry off).
  [[nodiscard]] double pipeline_fill_fraction() const noexcept {
    const double overlap = static_cast<double>(phase(Phase::kOverlap));
    const double denom =
        overlap + static_cast<double>(phase(Phase::kEpochWait));
    return denom > 0.0 ? overlap / denom : 0.0;
  }
};

#if RBB_TELEMETRY

namespace detail {
/// The master runtime switch, read relaxed on every instrumentation
/// call site.  Exposed only so enabled() inlines to a single load.
extern std::atomic<bool> g_enabled;
void slot_add(unsigned counter, std::uint64_t delta) noexcept;
void slot_add_phase(unsigned phase, std::uint64_t ns) noexcept;
}  // namespace detail

/// True while telemetry is recording (counters and spans).  One relaxed
/// load -- the branch every disabled call site reduces to.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips recording on/off.  Not a reset: totals persist across off/on.
void set_enabled(bool on) noexcept;

/// counter += delta on the calling thread's slot.
inline void add(Counter counter, std::uint64_t delta = 1) noexcept {
  if (enabled()) detail::slot_add(static_cast<unsigned>(counter), delta);
}

/// phase total += ns on the calling thread's slot.
inline void add_phase_ns(Phase phase, std::uint64_t ns) noexcept {
  if (enabled()) detail::slot_add_phase(static_cast<unsigned>(phase), ns);
}

/// Sums every registered thread slot.  Caller must ensure recording
/// threads have quiesced (for pool tasks the batch handshake already
/// orders their writes before the submitter returns from for_each).
[[nodiscard]] MetricsSnapshot scrape() noexcept;

/// Zeroes every registered slot (same quiescence contract as scrape).
void reset() noexcept;

#else  // !RBB_TELEMETRY -- every entry point is an empty inline no-op.

[[nodiscard]] constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline void add(Counter, std::uint64_t = 1) noexcept {}
inline void add_phase_ns(Phase, std::uint64_t) noexcept {}
[[nodiscard]] inline MetricsSnapshot scrape() noexcept { return {}; }
inline void reset() noexcept {}

#endif  // RBB_TELEMETRY

}  // namespace rbb::obs
