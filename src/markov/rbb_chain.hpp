// Exact transition matrix of the repeated balls-into-bins chain on K_n.
//
// One round from configuration q (paper, Sect. 2): every non-empty bin
// releases exactly one ball, and the h = |W(q)| released balls land
// independently and uniformly at random.  Only the *count* h matters for
// the arrival law, so the transition probability from q to q' is
//
//   P(q, q') = Multinomial(h; c) / n^h,   c = q' - (q - 1_{q >= 1}),
//
// whenever c is a valid arrival vector (all entries >= 0, summing to h),
// and 0 otherwise.  On the composition state space (state_space.hpp) this
// yields the full row-stochastic matrix, from which the stationary law,
// exact mixing times, reversibility defects and the product-form distance
// discussed in Sect. 1.3 of the paper are computed without Monte-Carlo
// error.  Feasible for n = m up to ~6 (462 states); the tests cross-check
// the exact law against the simulation kernels.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "graph/graph.hpp"
#include "markov/dense_matrix.hpp"
#include "markov/state_space.hpp"

namespace rbb {

/// Builds the exact one-round transition matrix of the repeated
/// balls-into-bins chain over `space` (complete graph).  Row/column ids
/// are state ids of `space`.
[[nodiscard]] DenseMatrix build_rbb_transition_matrix(
    const StateSpace& space);

/// Exact transition matrix of the process on a general graph: the ball
/// released by non-empty bin u lands on a *uniform neighbor of u*, so
/// departing balls are no longer exchangeable and the arrival law is
/// state-dependent.  Enumerates the product of per-bin destination
/// choices (cost prod_{u in W} deg(u) per state -- intended for sparse
/// graphs at n <= 6, e.g. cycles, where it is 2^|W|).  This makes the
/// Sect. 5 open question ("does the maximum load stay logarithmic on
/// regular graphs?") exactly answerable at small scale.  `graph` must
/// have space.bins() nodes and min degree >= 1.
[[nodiscard]] DenseMatrix build_graph_rbb_transition_matrix(
    const StateSpace& space, const Graph& graph);

/// Exact distribution after `rounds` rounds starting from the point mass
/// on configuration q0.  Returns a probability vector indexed by state id.
[[nodiscard]] std::vector<double> exact_distribution_after(
    const StateSpace& space, const DenseMatrix& p, const LoadConfig& q0,
    std::uint64_t rounds);

/// Functionals of a distribution `dist` over `space`.
struct ExactFunctionals {
  double expected_max_load = 0.0;
  double expected_empty_fraction = 0.0;
  /// P(M(q) >= k) for k = 0 .. m (index k).
  std::vector<double> max_load_tail;
  /// P(q legitimate) for the given beta.
  double p_legitimate = 0.0;
};

/// Computes the exact functionals of `dist` (which must be indexed by the
/// state ids of `space`).
[[nodiscard]] ExactFunctionals exact_functionals(const StateSpace& space,
                                                 const std::vector<double>& dist,
                                                 double beta = 4.0);

/// Maximum detailed-balance residual max_{i,j} |pi_i P_ij - pi_j P_ji|.
/// Zero iff the chain is reversible w.r.t. pi; the paper (Sect. 1.3)
/// attributes the failure of classical queueing techniques to the
/// non-reversibility of this chain, which the exact residual quantifies.
[[nodiscard]] double detailed_balance_residual(const DenseMatrix& p,
                                               const std::vector<double>& pi);

/// Distance of pi from the best product-form law: fits log pi(q) =
/// sum_u g(q_u) + const by least squares over states with pi(q) > 0
/// (gauge g(0) = 0), normalizes the fitted product measure on the state
/// space, and returns the total-variation distance to pi.  Closed Jackson
/// networks have residual 0 by Gordon-Newell; the parallel chain of the
/// paper does not (Sect. 1.3).
[[nodiscard]] double product_form_distance(const StateSpace& space,
                                           const std::vector<double>& pi);

/// Exact total-variation mixing time from the worst of the given starting
/// states: the smallest t with max_q TV(P^t(q, .), pi) <= eps, searched up
/// to t_max (returns t_max + 1 if not reached).  `starts` empty means all
/// states.
[[nodiscard]] std::uint64_t exact_mixing_time(
    const StateSpace& space, const DenseMatrix& p,
    const std::vector<double>& pi, double eps = 0.25,
    std::uint64_t t_max = 10000, std::vector<std::size_t> starts = {});

/// Exact joint law of (X_1, X_2), the numbers of balls arriving at bin 0
/// in rounds 1 and 2 from initial configuration q0 (Appendix B).  Entry
/// [i][j] is P(X_1 = i, X_2 = j); the matrix is (n+1) x (n+1) because at
/// most one ball departs per bin, so at most n balls arrive per round.
/// Computed by exhaustive enumeration of the two rounds' arrival vectors.
[[nodiscard]] std::vector<std::vector<double>> exact_arrival_joint_law(
    const StateSpace& space, const LoadConfig& q0);

/// Summary of the Appendix-B negative-association counterexample computed
/// from exact_arrival_joint_law: P(X1=0, X2=0) vs P(X1=0) * P(X2=0).
struct ArrivalCorrelation {
  double p_both_zero = 0.0;
  double p_first_zero = 0.0;
  double p_second_zero = 0.0;
  /// p_both_zero - p_first_zero * p_second_zero (> 0 refutes negative
  /// association; the paper computes 1/8 > 3/32 for n = 2).
  [[nodiscard]] double excess() const {
    return p_both_zero - p_first_zero * p_second_zero;
  }
};

[[nodiscard]] ArrivalCorrelation exact_arrival_correlation(
    const StateSpace& space, const LoadConfig& q0);

}  // namespace rbb
