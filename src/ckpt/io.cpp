#include "ckpt/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rbb::ckpt {

namespace {

// Directory component of `path` ("" for a bare filename).
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// fsync the directory containing `path` so the rename itself is
// durable.  Best-effort: some filesystems refuse O_RDONLY directory
// fsync; a failure here weakens durability, not atomicity.
void fsync_parent_dir(const std::string& path) {
  const std::string dir = dir_of(path);
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}

std::string errno_message(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

void maybe_crash(const char* phase, std::uint64_t round) noexcept {
  // Re-read the environment every call: the setting is rare (test-only)
  // and forked chaos children arm it after the parent may already have
  // written checkpoints.
  const char* spec = std::getenv("RBB_CRASH_AT");
  if (spec == nullptr || *spec == '\0') return;
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr) return;
  const std::size_t phase_len = static_cast<std::size_t>(colon - spec);
  if (phase_len != std::strlen(phase) ||
      std::strncmp(spec, phase, phase_len) != 0) {
    return;
  }
  char* end = nullptr;
  const unsigned long long want = std::strtoull(colon + 1, &end, 10);
  if (end == colon + 1 || *end != '\0' || want != round) return;
  std::fprintf(stderr, "rbb: injected crash at %s:%llu (RBB_CRASH_AT)\n",
               phase, static_cast<unsigned long long>(round));
  std::fflush(stderr);
  ::_exit(kCrashExitCode);
}

bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error, std::uint64_t crash_round) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    if (error != nullptr) *error = errno_message("cannot create", tmp);
    return false;
  }

  // Write in two halves with a kill point between them: a crash here
  // must leave only a truncated .tmp that discovery ignores.
  const std::size_t half = bytes.size() / 2;
  std::size_t written = 0;
  bool write_failed = false;
  const auto write_span = [&](std::size_t begin, std::size_t end_pos) {
    while (begin < end_pos) {
      const ::ssize_t n = ::write(fd, bytes.data() + begin, end_pos - begin);
      if (n < 0) {
        if (errno == EINTR) continue;
        write_failed = true;
        return;
      }
      begin += static_cast<std::size_t>(n);
      written += static_cast<std::size_t>(n);
    }
  };
  write_span(0, half);
  maybe_crash(kCrashMidPayload, crash_round);
  if (!write_failed) write_span(half, bytes.size());
  if (write_failed || written != bytes.size()) {
    if (error != nullptr) *error = errno_message("cannot write", tmp);
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    if (error != nullptr) *error = errno_message("cannot fsync", tmp);
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    if (error != nullptr) *error = errno_message("cannot close", tmp);
    (void)::unlink(tmp.c_str());
    return false;
  }
  maybe_crash(kCrashAfterTmp, crash_round);

  maybe_crash(kCrashBeforeRename, crash_round);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = errno_message("cannot rename to", path);
    (void)::unlink(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  maybe_crash(kCrashPostRename, crash_round);
  return true;
}

bool write_checkpoint_file(const std::string& path, const Checkpoint& ckpt,
                           std::string* error) {
  const obs::ScopedPhase span(obs::Phase::kCkptWrite);
  const std::string bytes = encode(ckpt);
  constexpr int kMaxAttempts = 3;
  std::string last_error;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (attempt != 0) {
      obs::add(obs::Counter::kCheckpointRetries);
      // 4 ms, 16 ms: long enough for transient contention, short
      // enough to be invisible next to a checkpoint-worthy run.
      std::this_thread::sleep_for(std::chrono::milliseconds(1 << (2 * attempt)));
    }
    if (atomic_write_file(path, bytes, &last_error, ckpt.header.round)) {
      obs::add(obs::Counter::kCheckpointWrites);
      obs::add(obs::Counter::kCheckpointBytes, bytes.size());
      return true;
    }
  }
  obs::add(obs::Counter::kCheckpointFailures);
  if (error != nullptr) *error = last_error;
  return false;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw Error(ErrorKind::kIo, errno_message("cannot open", path));
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  if (file.bad()) {
    throw Error(ErrorKind::kIo, errno_message("cannot read", path));
  }
  return std::move(contents).str();
}

Checkpoint read_checkpoint(const std::string& path) {
  return decode(read_file(path));
}

std::string checkpoint_filename(std::uint64_t round) {
  char name[40];
  std::snprintf(name, sizeof name, "rbb-%020llu.ckpt",
                static_cast<unsigned long long>(round));
  return name;
}

std::optional<std::string> latest_checkpoint(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir.empty() ? "." : dir, ec);
  if (ec) return std::nullopt;
  std::optional<std::string> best;
  std::string best_name;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() != std::strlen("rbb-") + 20 + std::strlen(".ckpt") ||
        name.rfind("rbb-", 0) != 0 ||
        name.compare(name.size() - 5, 5, ".ckpt") != 0) {
      continue;
    }
    // Zero-padded fixed-width round => lexicographic == numeric order.
    if (!best || name > best_name) {
      best_name = name;
      best = entry.path().string();
    }
  }
  return best;
}

CheckpointPlan::CheckpointPlan(std::string dir, std::uint64_t every,
                               std::uint64_t keep)
    : dir_(std::move(dir)), every_(every), keep_(keep == 0 ? 1 : keep) {}

std::optional<std::string> CheckpointPlan::write(const Checkpoint& ckpt) {
  if (!enabled()) return std::nullopt;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best-effort
  const std::string path =
      dir_ + "/" + checkpoint_filename(ckpt.header.round);
  std::string error;
  if (!write_checkpoint_file(path, ckpt, &error)) {
    std::fprintf(stderr,
                 "rbb: checkpoint write failed (continuing without): %s\n",
                 error.c_str());
    return std::nullopt;
  }
  written_.emplace_back(ckpt.header.round, path);
  while (written_.size() > keep_) {
    (void)::unlink(written_.front().second.c_str());
    written_.erase(written_.begin());
  }
  return path;
}

}  // namespace rbb::ckpt
