// Extra -- scaling of the sharded round kernels (src/par/): rounds/sec
// and ns/ball for one mega-n instance, versus the sequential kernels,
// for EVERY variant of the policy core.
//
// This is the experiment behind BENCH_sharded.json, the repository's
// tracked perf baseline: run it with --format=json and compare the
// rounds_per_sec column across commits (tools/bench_diff.py diffs two
// baselines row by row).  Per (n, variant), three backends are timed:
//
//   seq          the production sequential kernel (xoshiro draws),
//   seq-counter  the sequential sibling making counter-RNG draws
//                (isolates the RNG-swap cost from the sharding win),
//   sharded xT   the two-phase kernel at each requested thread count.
//
// Variants: load (the paper's process), token (FIFO, m = n tokens, the
// flat implicit-FIFO store), tetris (3n/4 fresh arrivals/round),
// dchoices (d = 2).  Every variant runs the full n sweep -- the former
// 10^6 token cap fell with the per-bin queues (token state is now
// 8m + 12n bytes of flat storage).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/process.hpp"
#include "baselines/repeated_dchoices.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"
#include "par/sharded_variants.hpp"
#include "runner/registry.hpp"
#include "support/meminfo.hpp"
#include "support/thread_pool.hpp"
#include "tetris/tetris.hpp"

namespace rbb::runner {

namespace {

/// Wall seconds for `rounds` rounds of `proc` after one untimed warm-up
/// round (faults in the arrays and sizes the scatter buffers).  When the
/// process has a batched run(), the whole block goes through it so the
/// sharded kernels take the pipelined multi-round path -- the thing this
/// experiment is meant to measure; step()-only processes keep the loop.
template <typename Process>
double time_rounds(Process& proc, std::uint64_t rounds) {
  proc.step();
  const auto t0 = std::chrono::steady_clock::now();
  if constexpr (requires { proc.run(rounds); }) {
    proc.run(rounds);
  } else {
    for (std::uint64_t r = 0; r < rounds; ++r) proc.step();
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void register_sharded_scaling(Registry& registry) {
  Experiment e;
  e.name = "sharded_scaling";
  e.claim = "";
  e.title =
      "sharded round kernels: rounds/sec and ns/ball vs n x variant x "
      "threads";
  e.description =
      "Times one instance of every policy-core variant (load-only, FIFO "
      "token, Tetris, d-choices with d = 2) on three backends: the "
      "sequential xoshiro kernel, the sequential counter-RNG sibling "
      "(isolating the RNG swap), and the sharded two-phase kernel "
      "(src/par/) at several worker counts.  One round of one instance "
      "runs across all cores; the timed block is a single batched run() "
      "so multi-round pipelining (double-buffered throw/commit overlap; "
      "RBB_PIPELINE=0 falls back to the barriered rounds) is what gets "
      "measured, and trajectories are bit-identical for every thread "
      "count and shard size.  n sweeps by scale up to 10^8 at "
      "--scale=mega for all four variants (token rows are uncapped: the "
      "flat implicit-FIFO store is 8m + 12n bytes); --n times a single "
      "size instead.  --threads fixes a single worker count, otherwise "
      "{1, 4, max} are measured.  Each row also reports the resident "
      "kernel state per ball and the process peak RSS -- informational "
      "columns, not gated by tools/bench_diff.py.  The JSON output of "
      "this experiment is the tracked perf baseline BENCH_sharded.json.  "
      "Single-instance measurement: --trials is ignored.";
  e.family = ProcessFamily::kKernelSuite;
  e.params = {
      {"rounds", ParamSpec::Type::kU64, "0",
       "measured rounds per point (0 = auto, ~6.4e7 bin-visits per "
       "point, clamped to [2, 32])"},
      {"shard-size", ParamSpec::Type::kU64, "0",
       "bins per shard for the sharded kernels (0 = 16384)"},
      {"variant", ParamSpec::Type::kString, "all",
       "kernel variant to time: all, load, token, tetris, dchoices"},
      {"n", ParamSpec::Type::kU64, "0",
       "time a single bin count instead of the --scale sweep (0 = "
       "sweep)"},
  };
  e.run = [](const RunContext& ctx) {
    std::vector<std::uint64_t> ns = by_scale<std::vector<std::uint64_t>>(
        ctx.scale, {100000}, {1000000, 10000000}, {1000000, 10000000},
        {1000000, 10000000, 100000000});
    if (ctx.params.u64("n") != 0) ns = {ctx.params.u64("n")};
    const auto shard_size =
        static_cast<std::uint32_t>(ctx.params.u32("shard-size"));
    const std::string& variant_filter = ctx.params.str("variant");
    const auto variant_on = [&](const char* name) {
      return variant_filter == "all" || variant_filter == name;
    };
    if (!variant_on("load") && !variant_on("token") &&
        !variant_on("tetris") && !variant_on("dchoices")) {
      throw std::invalid_argument(
          "--variant expects all, load, token, tetris or dchoices");
    }

    // Worker counts: an explicit --threads measures exactly that;
    // otherwise 1, 4, and the machine maximum (deduplicated).
    std::vector<unsigned> thread_grid;
    const unsigned hw = ThreadPool::default_thread_count();
    if (ctx.threads() != 0) {
      thread_grid.push_back(ctx.threads());
    } else {
      for (const unsigned t : {1u, 4u, hw}) {
        if (std::find(thread_grid.begin(), thread_grid.end(), t) ==
            thread_grid.end()) {
          thread_grid.push_back(t);
        }
      }
    }

    ResultSet rs;
    Table& table = rs.add_table(
        "sharded_scaling",
        "rounds/sec and ns/ball: sequential vs sharded kernels, per "
        "variant",
        {"n", "variant", "backend", "threads", "rounds", "wall_s",
         "rounds_per_sec", "ns_per_ball", "speedup_vs_seq",
         "state_bytes_per_ball", "peak_rss_mb"},
        {"state_bytes_per_ball", "peak_rss_mb"});

    for (const std::uint64_t n_requested : ns) {
      /// Times the three backends of one variant at one n.  make_seq /
      /// make_counter / make_sharded build the processes; the emit
      /// bookkeeping (rounds/sec, ns/ball, speedup vs this variant's
      /// seq row, resident state, peak RSS) is shared.
      const auto bench_variant = [&](const std::string& variant,
                                     std::uint64_t n64, auto make_seq,
                                     auto make_counter, auto make_sharded) {
        const std::uint64_t rounds =
            ctx.params.u64("rounds") != 0
                ? ctx.params.u64("rounds")
                : std::clamp<std::uint64_t>(64000000 / n64, 2, 32);
        const double balls =
            static_cast<double>(n64) * static_cast<double>(rounds);
        const auto emit = [&](const std::string& backend, unsigned threads,
                              double wall, double seq_wall,
                              double state_bytes) {
          Table& r = table.row()
                         .cell(n64)
                         .cell(variant)
                         .cell(backend)
                         .cell(std::uint64_t{threads})
                         .cell(rounds)
                         .cell(wall, 4)
                         .cell(static_cast<double>(rounds) / wall, 2)
                         .cell(wall / balls * 1e9, 2)
                         .cell(seq_wall / wall, 2)
                         .cell(state_bytes / static_cast<double>(n64), 1);
          const PeakRss rss = peak_rss();
          if (rss.available) {
            r.cell(static_cast<double>(rss.bytes) / (1024.0 * 1024.0), 1);
          } else {
            r.cell(std::string("unavailable"));
          }
        };
        double seq_wall = 0;
        {
          auto proc = make_seq();
          seq_wall = time_rounds(proc, rounds);
          emit("seq", 1, seq_wall, seq_wall,
               static_cast<double>(proc.resident_state_bytes()));
        }
        {
          auto proc = make_counter();
          const double wall = time_rounds(proc, rounds);
          emit("seq-counter", 1, wall, seq_wall,
               static_cast<double>(proc.resident_state_bytes()));
        }
        for (const unsigned threads : thread_grid) {
          auto proc = make_sharded(threads);
          const double wall = time_rounds(proc, rounds);
          emit("sharded", threads, wall, seq_wall,
               static_cast<double>(proc.resident_state_bytes()));
        }
      };

      const auto n = static_cast<std::uint32_t>(n_requested);
      Rng cfg_rng(ctx.seed());
      const auto config = [&] {
        return make_config(InitialConfig::kOnePerBin, n, n, cfg_rng);
      };

      if (variant_on("load")) {
        bench_variant(
            "load", n_requested,
            [&] { return RepeatedBallsProcess(config(), Rng(ctx.seed(), 1)); },
            [&] { return par::SequentialCounterProcess(config(), ctx.seed()); },
            [&](unsigned threads) {
              return par::ShardedRepeatedBallsProcess(
                  config(), ctx.seed(),
                  par::ShardedOptions{threads, shard_size});
            });
      }
      if (variant_on("tetris")) {
        bench_variant(
            "tetris", n_requested,
            [&] { return TetrisProcess(config(), Rng(ctx.seed(), 2)); },
            [&] {
              return par::SequentialCounterTetrisProcess(config(),
                                                         ctx.seed());
            },
            [&](unsigned threads) {
              return par::ShardedTetrisProcess(
                  config(), ctx.seed(), 0,
                  par::ShardedOptions{threads, shard_size});
            });
      }
      if (variant_on("dchoices")) {
        bench_variant(
            "dchoices", n_requested,
            [&] {
              return RepeatedDChoicesProcess(config(), 2, Rng(ctx.seed(), 3));
            },
            [&] {
              return par::SequentialCounterDChoicesProcess(config(), 2,
                                                           ctx.seed());
            },
            [&](unsigned threads) {
              return par::ShardedDChoicesProcess(
                  config(), 2, ctx.seed(),
                  par::ShardedOptions{threads, shard_size});
            });
      }
      if (variant_on("token")) {
        bench_variant(
            "token", n_requested,
            [&] {
              return kernel::SequentialTokenProcess(
                  n, identity_placement(n), Rng(ctx.seed(), 4));
            },
            [&] {
              return par::SequentialCounterTokenProcess(
                  n, identity_placement(n), ctx.seed());
            },
            [&](unsigned threads) {
              return par::ShardedTokenProcess(
                  n, identity_placement(n), ctx.seed(),
                  par::ShardedOptions{threads, shard_size});
            });
      }
    }

    rs.note("hardware threads: " + std::to_string(hw) +
            " (ThreadPool::default_thread_count; RBB_THREADS overrides)");
    rs.note("one-per-bin start: every bin releases each round, the "
            "max-throughput regime; ns_per_ball = wall / (rounds * n); "
            "speedup_vs_seq is against the same variant's seq row");
    rs.note("state_bytes_per_ball (resident kernel state / n, measured "
            "post-run) and peak_rss_mb (VmHWM; the literal string "
            "\"unavailable\" where the platform exposes no watermark; "
            "process-wide, so earlier rows' allocations raise later "
            "rows' watermark) are informational -- declared in the "
            "table's `informational` set, which tools/bench_diff.py "
            "reads instead of hardcoding names");
    rs.note("sharded trajectories are bit-identical across the threads "
            "column by construction (tests/par/); timings, not results, "
            "vary with the worker count");
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
