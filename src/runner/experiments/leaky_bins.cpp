// E16 -- follow-up work [18] (Berenbrink et al., PODC 2016): leaky bins
// with Binomial(n, lambda) arrivals per round.
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_leaky_bins(Registry& registry) {
  Experiment e;
  e.name = "leaky_bins";
  e.claim = "E16";
  e.title =
      "leaky bins: stability below the critical arrival rate ([18])";
  e.description =
      "Per lambda, the stationary window max load, mean queue mass per "
      "bin, and mean empty fraction of the leaky-bins process "
      "(probabilistic Tetris of [18]).  Subcritical lambda < 1 is stable "
      "with O(log n)-ish loads; lambda = 1 loses the drift and the mass "
      "wanders.  Backend-capable (leaky family): --backend=sharded runs "
      "the src/par/ counter-RNG kernel -- deletions happen in the "
      "departure walk, arrivals commit in canonical order, and the "
      "per-round Binomial(n, lambda) count comes from the round's "
      "derived counter substream.";
  e.family = ProcessFamily::kLeaky;
  e.params = {
      {"n", ParamSpec::Type::kU64, "0", "bins (0 = scale default)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint32_t n =
        ctx.params.u64("n") != 0
            ? ctx.params.u32("n")
            : by_scale<std::uint32_t>(ctx.scale, 512, 2048, 8192);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 15, 40);

    ResultSet rs;
    Table& table = rs.add_table(
        "E16_leaky_bins",
        "leaky bins: stability below the critical arrival rate ([18])",
        {"lambda", "window max (mean)", "max / log2 n", "mean mass / bin",
         "mean empty frac"});
    for (const double lambda : {0.5, 0.75, 0.9, 0.95, 1.0}) {
      LeakyParams p;
      p.n = n;
      p.lambda = lambda;
      p.burn_in = 2ull * n;
      p.rounds = wf * n;
      p.trials = trials;
      p.seed = ctx.seed();
      if (ctx.sharded()) p.backend = Backend::kSharded;
      const LeakyResult r = run_leaky(p);
      table.row()
          .cell(lambda, 2)
          .cell(r.window_max.mean(), 2)
          .cell(r.window_max.mean() / log2n(n), 3)
          .cell(r.mean_total_per_bin.mean(), 3)
          .cell(r.mean_empty_fraction.mean(), 3);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
