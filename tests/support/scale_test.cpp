// Tests for the bench-scale environment plumbing.
#include "support/scale.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace rbb {
namespace {

/// RAII environment-variable override.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(Scale, UnsetIsDefault) {
  const ScopedEnv env("RBB_BENCH_SCALE", nullptr);
  EXPECT_EQ(bench_scale(), BenchScale::kDefault);
}

TEST(Scale, RecognizesValuesCaseInsensitive) {
  {
    const ScopedEnv env("RBB_BENCH_SCALE", "smoke");
    EXPECT_EQ(bench_scale(), BenchScale::kSmoke);
  }
  {
    const ScopedEnv env("RBB_BENCH_SCALE", "PAPER");
    EXPECT_EQ(bench_scale(), BenchScale::kPaper);
  }
  {
    const ScopedEnv env("RBB_BENCH_SCALE", "Default");
    EXPECT_EQ(bench_scale(), BenchScale::kDefault);
  }
  {
    const ScopedEnv env("RBB_BENCH_SCALE", "MeGa");
    EXPECT_EQ(bench_scale(), BenchScale::kMega);
  }
  {
    const ScopedEnv env("RBB_BENCH_SCALE", "bogus");
    EXPECT_EQ(bench_scale(), BenchScale::kDefault);
  }
}

TEST(Scale, BySkaleSelectsCorrectValue) {
  EXPECT_EQ(by_scale(BenchScale::kSmoke, 1, 2, 3), 1);
  EXPECT_EQ(by_scale(BenchScale::kDefault, 1, 2, 3), 2);
  EXPECT_EQ(by_scale(BenchScale::kPaper, 1, 2, 3), 3);
}

TEST(Scale, MegaFallsBackToPaperInThreeArgForm) {
  // Experiments without mega-specific sizes run their paper sweeps.
  EXPECT_EQ(by_scale(BenchScale::kMega, 1, 2, 3), 3);
}

TEST(Scale, FourArgFormGivesMegaItsOwnValue) {
  EXPECT_EQ(by_scale(BenchScale::kSmoke, 1, 2, 3, 4), 1);
  EXPECT_EQ(by_scale(BenchScale::kDefault, 1, 2, 3, 4), 2);
  EXPECT_EQ(by_scale(BenchScale::kPaper, 1, 2, 3, 4), 3);
  EXPECT_EQ(by_scale(BenchScale::kMega, 1, 2, 3, 4), 4);
}

TEST(Scale, ToStringRoundTrip) {
  EXPECT_EQ(to_string(BenchScale::kSmoke), "smoke");
  EXPECT_EQ(to_string(BenchScale::kDefault), "default");
  EXPECT_EQ(to_string(BenchScale::kPaper), "paper");
  EXPECT_EQ(to_string(BenchScale::kMega), "mega");
}

TEST(Scale, CsvDirReflectsEnv) {
  {
    const ScopedEnv env("RBB_CSV_DIR", nullptr);
    EXPECT_TRUE(csv_dir().empty());
  }
  {
    const ScopedEnv env("RBB_CSV_DIR", "/tmp/somewhere");
    EXPECT_EQ(csv_dir(), "/tmp/somewhere");
  }
}

}  // namespace
}  // namespace rbb
