// CLI surface tests: subcommand dispatch, option parsing and rejection,
// and well-formedness of the machine-readable outputs (validated with a
// minimal recursive-descent JSON parser -- no third-party dependency).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/docgen.hpp"
#include "runner/registry.hpp"
#include "runner/runner.hpp"

namespace rbb::runner {
namespace {

// --- a minimal JSON syntax checker -----------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- harness ----------------------------------------------------------------

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult rbb(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = runner_main(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

// --- dispatch ---------------------------------------------------------------

TEST(Cli, NoArgsPrintsUsageAndFails) {
  const CliResult r = rbb({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliResult r = rbb({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("rbb run <experiment>"), std::string::npos);
}

TEST(Cli, UnknownCommandRejected) {
  const CliResult r = rbb({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, ListShowsAllExperiments) {
  const CliResult r = rbb({"list"});
  EXPECT_EQ(r.code, 0);
  for (const Experiment& e : default_registry().experiments()) {
    EXPECT_NE(r.out.find(e.name), std::string::npos)
        << e.name << " missing from `rbb list`";
  }
}

TEST(Cli, DescribeShowsParams) {
  const CliResult r = rbb({"describe", "stability"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("--window-factor"), std::string::npos);
  EXPECT_NE(r.out.find("[E1]"), std::string::npos);
}

TEST(Cli, DescribeShowsBackendAndThreadsWithDefaults) {
  // The common kernel-selection knobs are part of every experiment's
  // described surface, defaults included.
  for (const char* name : {"stability", "convergence", "sharded_scaling"}) {
    const CliResult r = rbb({"describe", name});
    ASSERT_EQ(r.code, 0) << name;
    EXPECT_NE(r.out.find("--backend"), std::string::npos) << name;
    EXPECT_NE(r.out.find("--threads"), std::string::npos) << name;
    EXPECT_NE(r.out.find("seq"), std::string::npos) << name;
  }
}

TEST(Cli, DescribeUnknownExperimentRejected) {
  const CliResult r = rbb({"describe", "nope"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown experiment"), std::string::npos);
}

// --- run: parse/reject ------------------------------------------------------

TEST(Cli, RunRequiresExperiment) {
  EXPECT_EQ(rbb({"run"}).code, 2);
  EXPECT_EQ(rbb({"run", "--scale=smoke"}).code, 2);
}

TEST(Cli, RunRejectsUnknownExperiment) {
  const CliResult r = rbb({"run", "nope"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown experiment"), std::string::npos);
}

TEST(Cli, RunRejectsUnknownParam) {
  const CliResult r =
      rbb({"run", "stability", "--scale=smoke", "--bogus=1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option --bogus"), std::string::npos);
}

TEST(Cli, RunRejectsTypeMismatch) {
  const CliResult r =
      rbb({"run", "stability", "--scale=smoke", "--trials=lots"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("expects a u64"), std::string::npos);
}

TEST(Cli, RunRejectsBadScaleAndFormat) {
  EXPECT_EQ(rbb({"run", "stability", "--scale=huge"}).code, 2);
  EXPECT_EQ(rbb({"run", "stability", "--format=xml"}).code, 2);
}

TEST(Cli, RunAcceptsMegaScale) {
  // mega must parse and land in the run metadata; neg_assoc with an
  // explicit trial override keeps the run instant.
  const CliResult r = rbb({"run", "neg_assoc", "--scale=mega",
                           "--trials=100", "--format=json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"scale\": \"mega\""), std::string::npos);
}

// --- the sharded backend surface --------------------------------------------

TEST(Cli, RunRejectsShardedBackendWithoutCapableFamily) {
  // jackson declares no process family (kNone: continuous-time event
  // loop, no round kernel); the rejection must name the flag and exit 1
  // (a clean run-layer error, not std::terminate).
  const CliResult r = rbb({"run", "jackson", "--scale=smoke", "--trials=1",
                           "--backend=sharded"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("does not support --backend=sharded"),
            std::string::npos);
}

TEST(Cli, RunAcceptsShardedBackendOnEveryKernelFamily) {
  // One newly capable experiment per variant family runs end-to-end
  // under --backend=sharded at smoke scale with valid JSON out.
  const std::vector<std::vector<std::string>> runs = {
      {"run", "stability", "--scale=smoke", "--trials=1", "--n=32",
       "--window-factor=2", "--backend=sharded", "--format=json"},
      {"run", "tetris_stability", "--scale=smoke", "--trials=1",
       "--backend=sharded", "--format=json"},
      {"run", "dchoices", "--scale=smoke", "--trials=1",
       "--backend=sharded", "--format=json"},
      {"run", "leaky_bins", "--scale=smoke", "--trials=1", "--n=64",
       "--backend=sharded", "--format=json"},
      {"run", "progress", "--scale=smoke", "--trials=1",
       "--backend=sharded", "--format=json"},
  };
  for (const auto& args : runs) {
    const CliResult r = rbb(args);
    ASSERT_EQ(r.code, 0) << args[1] << ": " << r.err;
    EXPECT_TRUE(JsonChecker(r.out).valid()) << args[1];
    EXPECT_NE(r.out.find("\"backend\": \"sharded\""), std::string::npos)
        << args[1];
  }
}

TEST(Cli, RunRejectsUnknownBackendValue) {
  const CliResult r = rbb({"run", "convergence", "--scale=smoke",
                           "--trials=1", "--backend=gpu"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("expects seq or sharded"), std::string::npos);
}

TEST(Cli, RunAcceptsShardedBackendOnCapableExperiment) {
  const CliResult r = rbb({"run", "convergence", "--scale=smoke",
                           "--trials=1", "--backend=sharded", "--threads=2",
                           "--format=json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(JsonChecker(r.out).valid());
  EXPECT_NE(r.out.find("\"backend\": \"sharded\""), std::string::npos);
}

TEST(Cli, ShardedRunsAreSeedReproducible) {
  auto run_json = [&] {
    return rbb({"run", "convergence", "--scale=smoke", "--trials=2",
                "--backend=sharded", "--format=csv"});
  };
  const CliResult a = run_json();
  const CliResult b = run_json();
  ASSERT_EQ(a.code, 0) << a.err;
  // CSV carries wall time in the metadata header; compare table bodies.
  const auto body = [](const std::string& text) {
    return text.substr(text.find("\n\n"));
  };
  EXPECT_EQ(body(a.out), body(b.out));
}

TEST(Cli, RunReportsOversizedU32CleanlyInsteadOfTruncating) {
  // 2^32 passes u64 validation but exceeds what the drivers accept;
  // must fail with a message and exit 1, not truncate to trials=0 or
  // terminate on an uncaught exception.
  const CliResult r =
      rbb({"run", "stability", "--scale=smoke", "--trials=4294967296"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("exceeds the 32-bit range"), std::string::npos);
}

TEST(Cli, RunReportsDriverRejectionsCleanly) {
  // n = 1 is rejected inside run_stability ("n < 2"); the CLI must turn
  // that into exit 1 + message, not std::terminate.
  const CliResult r =
      rbb({"run", "stability", "--scale=smoke", "--trials=1", "--n=1"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("stability failed"), std::string::npos);
  EXPECT_NE(r.err.find("n < 2"), std::string::npos);
}

TEST(Cli, RunAcceptsSpaceSeparatedOptionValues) {
  const CliResult r = rbb({"run", "stability", "--scale", "smoke",
                           "--trials", "1", "--n", "32",
                           "--window-factor", "2", "--format", "json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(JsonChecker(r.out).valid());
}

TEST(Cli, RunJsonIsValidAndSchemaTagged) {
  const CliResult r = rbb({"run", "stability", "--scale=smoke",
                           "--trials=1", "--n=32", "--window-factor=2",
                           "--format=json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(JsonChecker(r.out).valid());
  EXPECT_NE(r.out.find("\"schema\": \"rbb.result.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"claim\": \"E1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"scale\": \"smoke\""), std::string::npos);
}

TEST(Cli, RunCsvCarriesMetadata) {
  const CliResult r = rbb({"run", "stability", "--scale=smoke",
                           "--trials=1", "--n=32", "--window-factor=2",
                           "--format=csv"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("# rbb.result.v1"), std::string::npos);
  EXPECT_NE(r.out.find("# param n=32"), std::string::npos);
  EXPECT_NE(r.out.find("# table E1_stability"), std::string::npos);
}

TEST(Cli, RunWritesToOutFile) {
  const std::string path = ::testing::TempDir() + "rbb_out_test.json";
  const CliResult r = rbb({"run", "stability", "--scale=smoke",
                           "--trials=1", "--n=32", "--window-factor=2",
                           "--format=json", "--out=" + path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(r.out.empty());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream contents;
  contents << file.rdbuf();
  EXPECT_TRUE(JsonChecker(contents.str()).valid());
  std::remove(path.c_str());
}

// --- sweep ------------------------------------------------------------------

TEST(Cli, SweepGridIsCartesianAndValidJson) {
  const CliResult r = rbb({"sweep", "stability", "--scale=smoke",
                           "--trials=1", "--window-factor=2",
                           "--n=16,32", "--seed=1,2", "--format=json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(JsonChecker(r.out).valid());
  EXPECT_NE(r.out.find("\"schema\": \"rbb.sweep.v1\""), std::string::npos);
  // 2 x 2 grid -> four embedded result documents.
  std::size_t count = 0;
  for (std::size_t at = r.out.find("rbb.result.v1");
       at != std::string::npos; at = r.out.find("rbb.result.v1", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Cli, SweepRejectsBadGridValue) {
  const CliResult r =
      rbb({"sweep", "stability", "--scale=smoke", "--n=16,banana"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("expects a u64"), std::string::npos);
}

TEST(Cli, SweepRejectsDuplicateParam) {
  // A later --n would silently shadow the axis; must be an error.
  const CliResult r = rbb(
      {"sweep", "stability", "--scale=smoke", "--n=16,32", "--n=64"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("given more than once"), std::string::npos);
}

TEST(Cli, SweepForwardsBackendAndThreadsLikeRun) {
  // The prepended kernel knobs ride through `sweep` exactly as through
  // `run`: a fixed --backend=sharded --threads=1 override applies to
  // every grid point and lands in each embedded result document.
  const CliResult r =
      rbb({"sweep", "convergence", "--scale=smoke", "--trials=1",
           "--backend=sharded", "--threads=1", "--seed=1,2",
           "--format=json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(JsonChecker(r.out).valid());
  std::size_t count = 0;
  for (std::size_t at = r.out.find("\"backend\": \"sharded\"");
       at != std::string::npos;
       at = r.out.find("\"backend\": \"sharded\"", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);  // one per sweep point
}

TEST(Cli, SweepAcceptsBackendAsAGridAxis) {
  // backend=seq,sharded is a legitimate axis on a capable experiment:
  // the same measurement on both kernels, two embedded documents.
  const CliResult r =
      rbb({"sweep", "empty_bins", "--scale=smoke", "--trials=1",
           "--backend=seq,sharded", "--format=json"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(JsonChecker(r.out).valid());
  EXPECT_NE(r.out.find("\"backend\": \"seq\""), std::string::npos);
  EXPECT_NE(r.out.find("\"backend\": \"sharded\""), std::string::npos);
}

TEST(Cli, SweepRejectsShardedBackendWithoutCapableFamily) {
  // The same clear run-layer error as `rbb run`, surfaced at the
  // failing sweep point.
  const CliResult r = rbb({"sweep", "jackson", "--scale=smoke",
                           "--trials=1", "--seed=1,2",
                           "--backend=sharded"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("does not support --backend=sharded"),
            std::string::npos);
}

// --- docs -------------------------------------------------------------------

TEST(Cli, DocsStdoutMatchesRenderer) {
  const CliResult r = rbb({"docs"});
  ASSERT_EQ(r.code, 0);
  EXPECT_EQ(r.out, render_experiment_docs(default_registry()));
}

TEST(Cli, DocsCheckPassesOnFreshFileAndFailsOnDrift) {
  const std::string path = ::testing::TempDir() + "rbb_docs_test.md";
  ASSERT_EQ(rbb({"docs", "--out=" + path}).code, 0);
  EXPECT_EQ(rbb({"docs", "--check", "--out=" + path}).code, 0);
  std::ofstream(path, std::ios::app) << "manual edit\n";
  const CliResult drift = rbb({"docs", "--check", "--out=" + path});
  EXPECT_EQ(drift.code, 1);
  EXPECT_NE(drift.err.find("docs drift"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, DocsCheckFailsWithoutFile) {
  const CliResult r =
      rbb({"docs", "--check", "--out=/nonexistent/rbb_docs.md"});
  EXPECT_EQ(r.code, 1);
}

TEST(Cli, DocsCheckTakesNoValue) {
  const CliResult r = rbb({"docs", "--check=false"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--check takes no value"), std::string::npos);
}

TEST(Cli, DocsCatalogIsDeterministicAndComplete) {
  const std::string a = render_experiment_docs(default_registry());
  const std::string b = render_experiment_docs(default_registry());
  EXPECT_EQ(a, b);
  for (const Experiment& e : default_registry().experiments()) {
    EXPECT_NE(a.find("## " + e.name), std::string::npos)
        << e.name << " missing from the generated catalog";
  }
}

}  // namespace
}  // namespace rbb::runner
