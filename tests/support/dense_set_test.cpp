// Tests for the dense integer set.
#include "support/dense_set.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace rbb {
namespace {

TEST(DenseSet, StartsEmpty) {
  DenseSet s(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.capacity(), 10u);
  EXPECT_FALSE(s.contains(3));
}

TEST(DenseSet, InsertEraseContains) {
  DenseSet s(8);
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.erase(3));
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.empty());
}

TEST(DenseSet, SwapWithLastKeepsConsistency) {
  DenseSet s(16);
  for (std::uint32_t x = 0; x < 16; ++x) s.insert(x);
  // Erase from the middle repeatedly; membership must stay exact.
  std::set<std::uint32_t> reference;
  for (std::uint32_t x = 0; x < 16; ++x) reference.insert(x);
  for (const std::uint32_t x : {5u, 0u, 15u, 8u}) {
    s.erase(x);
    reference.erase(x);
    for (std::uint32_t y = 0; y < 16; ++y) {
      EXPECT_EQ(s.contains(y), reference.count(y) == 1) << "y=" << y;
    }
  }
  EXPECT_EQ(s.size(), reference.size());
}

TEST(DenseSet, SampleUniform) {
  DenseSet s(10);
  s.insert(2);
  s.insert(5);
  s.insert(7);
  Rng rng(42);
  std::map<std::uint32_t, int> counts;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) ++counts[s.sample(rng)];
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kDraws, 1.0 / 3.0, 0.02)
        << "value=" << value;
  }
}

TEST(DenseSet, SampleEmptyThrows) {
  DenseSet s(4);
  Rng rng(1);
  EXPECT_THROW((void)s.sample(rng), std::logic_error);
}

TEST(DenseSet, OutOfRangeThrows) {
  DenseSet s(4);
  EXPECT_THROW((void)s.insert(4), std::out_of_range);
  EXPECT_THROW((void)s.contains(100), std::out_of_range);
}

TEST(DenseSet, MembersViewMatches) {
  DenseSet s(6);
  s.insert(1);
  s.insert(4);
  const auto& members = s.members();
  EXPECT_EQ(members.size(), 2u);
  const std::set<std::uint32_t> as_set(members.begin(), members.end());
  EXPECT_TRUE(as_set.count(1));
  EXPECT_TRUE(as_set.count(4));
}

}  // namespace
}  // namespace rbb
