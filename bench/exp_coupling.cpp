// E4 -- Lemma 3: under the coupling, the Tetris process dominates the
// original process (per-bin, every round), and case (ii) -- more than
// 3n/4 non-empty bins -- never fires inside the window.
//
// Table: per n, M_T vs M-hat_T (window maxima of the two coupled
// processes), the number of case-(ii) rounds (predicted 0), the number of
// domination violations (predicted 0), and how many trials stayed
// dominated throughout (predicted all).
#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E4: Lemma-3 coupling -- Tetris dominates the original process");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 10);
  const std::uint64_t wf = by_scale<std::uint64_t>(scale, 5, 20, 40);

  Table table({"n", "window", "trials", "M_T orig (mean)",
               "M_T tetris (mean)", "case-(ii) rounds", "violations",
               "dominated trials"});
  for (const std::uint32_t n : bench::n_sweep(scale)) {
    CouplingParams p;
    p.n = n;
    p.rounds = wf * n;
    p.trials = trials;
    p.seed = cli.u64("seed");
    const CouplingResult r = run_coupling(p);
    table.row()
        .cell(std::uint64_t{n})
        .cell(p.rounds)
        .cell(std::uint64_t{trials})
        .cell(r.original_window_max.mean(), 2)
        .cell(r.tetris_window_max.mean(), 2)
        .cell(r.total_case_two_rounds)
        .cell(r.total_violation_rounds)
        .cell(std::uint64_t{r.trials_dominated_throughout});
  }
  bench::emit(table, "E4_coupling",
              "Tetris stochastically dominates the original process "
              "(Lemma 3)",
              scale);
  return 0;
}
