#include "baselines/oneshot.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/samplers.hpp"

namespace rbb {

std::vector<std::uint32_t> oneshot_occupancy(std::uint64_t balls,
                                             std::uint32_t bins, Rng& rng) {
  return occupancy_throw(balls, bins, rng);
}

std::uint32_t oneshot_max_load(std::uint64_t balls, std::uint32_t bins,
                               Rng& rng) {
  const auto occ = oneshot_occupancy(balls, bins, rng);
  return *std::max_element(occ.begin(), occ.end());
}

std::vector<std::uint32_t> dchoice_occupancy(std::uint64_t balls,
                                             std::uint32_t bins,
                                             std::uint32_t d, Rng& rng) {
  if (bins == 0) throw std::invalid_argument("dchoice_occupancy: bins == 0");
  if (d == 0) throw std::invalid_argument("dchoice_occupancy: d == 0");
  std::vector<std::uint32_t> loads(bins, 0);
  for (std::uint64_t i = 0; i < balls; ++i) {
    std::uint32_t best = rng.index(bins);
    for (std::uint32_t j = 1; j < d; ++j) {
      const std::uint32_t candidate = rng.index(bins);
      if (loads[candidate] < loads[best]) best = candidate;
    }
    ++loads[best];
  }
  return loads;
}

std::uint32_t dchoice_max_load(std::uint64_t balls, std::uint32_t bins,
                               std::uint32_t d, Rng& rng) {
  const auto occ = dchoice_occupancy(balls, bins, d, rng);
  return *std::max_element(occ.begin(), occ.end());
}

std::vector<std::uint32_t> dleft_occupancy(std::uint64_t balls,
                                           std::uint32_t bins, std::uint32_t d,
                                           Rng& rng) {
  if (d < 2) throw std::invalid_argument("dleft_occupancy: d < 2");
  if (d > bins) throw std::invalid_argument("dleft_occupancy: d > bins");
  std::vector<std::uint32_t> loads(bins, 0);
  // Group g covers [g * bins / d, (g+1) * bins / d).
  const auto group_begin = [bins, d](std::uint32_t g) {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(g) * bins / d);
  };
  for (std::uint64_t i = 0; i < balls; ++i) {
    std::uint32_t best = UINT32_MAX;
    std::uint32_t best_load = UINT32_MAX;
    for (std::uint32_t g = 0; g < d; ++g) {
      const std::uint32_t lo = group_begin(g);
      const std::uint32_t hi = group_begin(g + 1);
      if (hi == lo) continue;
      const std::uint32_t candidate = lo + rng.index(hi - lo);
      // Strict < keeps the leftmost group on ties (Always-Go-Left).
      if (loads[candidate] < best_load) {
        best = candidate;
        best_load = loads[candidate];
      }
    }
    ++loads[best];
  }
  return loads;
}

std::uint32_t dleft_max_load(std::uint64_t balls, std::uint32_t bins,
                             std::uint32_t d, Rng& rng) {
  const auto occ = dleft_occupancy(balls, bins, d, rng);
  return *std::max_element(occ.begin(), occ.end());
}

}  // namespace rbb
