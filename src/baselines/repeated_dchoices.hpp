// Repeated balls-into-bins with d choices (paper Sect. 1.3, ref. [36]).
//
// The generalization mentioned in the related work: at each round, every
// non-empty bin releases one ball as usual, but a released ball samples d
// candidate destinations u.a.r. and joins the least loaded of them.
// d = 1 is the paper's process.  Within a round, re-launched balls are
// placed sequentially in releasing-bin order against current loads
// (arrivals of the same round are visible to later placements) -- the
// standard discrete-time convention for Greedy[d]; the choice is
// documented because [36] leaves the intra-round tie-break unspecified.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "support/rng.hpp"

namespace rbb {

/// Per-round statistics (end-of-round state).
struct DChoicesRoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  std::uint32_t departures = 0;
};

class RepeatedDChoicesProcess {
 public:
  RepeatedDChoicesProcess(LoadConfig initial, std::uint32_t d, Rng rng);

  DChoicesRoundStats step();
  DChoicesRoundStats run(std::uint64_t rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint32_t choices() const noexcept { return d_; }
  [[nodiscard]] std::uint64_t ball_count() const noexcept { return balls_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }
  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_load_; }
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }

  /// Testing hook; throws std::logic_error if cached stats drift.
  void check_invariants() const;

 private:
  LoadConfig loads_;
  std::uint32_t d_;
  Rng rng_;
  std::uint64_t balls_;
  std::uint64_t round_ = 0;
  std::uint32_t max_load_ = 0;
  std::uint32_t empty_ = 0;
};

}  // namespace rbb
