#include "selfstab/israeli_jalfon.hpp"

#include <stdexcept>

namespace rbb {

std::vector<std::uint8_t> make_token_placement(TokenPlacement placement,
                                               std::uint32_t n, Rng& rng) {
  if (n == 0) throw std::invalid_argument("placement: n must be >= 1");
  std::vector<std::uint8_t> tokens(n, 0);
  switch (placement) {
    case TokenPlacement::kEveryNode:
      for (auto& t : tokens) t = 1;
      break;
    case TokenPlacement::kTwoNodes:
      tokens[0] = 1;
      tokens[n / 2] = 1;  // coincides with node 0 when n == 1
      break;
    case TokenPlacement::kRandomHalf: {
      for (auto& t : tokens) t = rng.bernoulli(0.5) ? 1 : 0;
      // Self-stabilization needs at least one token in the system (an
      // all-empty network is outside the protocol's state space).
      bool any = false;
      for (const auto t : tokens) any = any || (t != 0);
      if (!any) tokens[rng.index(n)] = 1;
      break;
    }
  }
  return tokens;
}

const char* to_string(TokenPlacement placement) {
  switch (placement) {
    case TokenPlacement::kEveryNode: return "every-node";
    case TokenPlacement::kTwoNodes: return "two-nodes";
    case TokenPlacement::kRandomHalf: return "random-half";
  }
  return "?";
}

IsraeliJalfonProcess::IsraeliJalfonProcess(const Graph* graph, std::uint32_t n,
                                           std::vector<std::uint8_t> tokens,
                                           Rng rng, double laziness)
    : graph_(graph),
      tokens_(std::move(tokens)),
      scratch_(tokens_.size(), 0),
      rng_(rng),
      laziness_(laziness) {
  if (laziness < 0.0 || laziness >= 1.0) {
    throw std::invalid_argument("israeli-jalfon: laziness must be in [0, 1)");
  }
  if (graph_ != nullptr && graph_->node_count() != n) {
    throw std::invalid_argument("israeli-jalfon: graph size mismatch");
  }
  if (tokens_.size() != n || n == 0) {
    throw std::invalid_argument("israeli-jalfon: bad token vector");
  }
  if (graph_ != nullptr && graph_->min_degree() == 0) {
    throw std::invalid_argument("israeli-jalfon: isolated node");
  }
  for (const auto t : tokens_) count_ += (t != 0) ? 1u : 0u;
  if (count_ == 0) {
    throw std::invalid_argument("israeli-jalfon: at least one token needed");
  }
}

IsraeliJalfonProcess::IsraeliJalfonProcess(const Graph* graph, std::uint32_t n,
                                           TokenPlacement placement, Rng rng,
                                           double laziness)
    : IsraeliJalfonProcess(graph, n, make_token_placement(placement, n, rng),
                           rng, laziness) {
  // The delegated constructor reuses `rng` for the placement draw and for
  // the process itself; split the stream so placement randomness does not
  // replay into the walk.
  rng_ = rng_.split();
}

std::uint32_t IsraeliJalfonProcess::step() {
  const auto n = static_cast<std::uint32_t>(tokens_.size());
  std::fill(scratch_.begin(), scratch_.end(), 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    if (!tokens_[u]) continue;
    if (laziness_ > 0.0 && rng_.bernoulli(laziness_)) {
      scratch_[u] = 1;  // lazy step: token stays put
      continue;
    }
    const std::uint32_t v = graph_ == nullptr
                                ? rng_.index(n)
                                : graph_->sample_neighbor(u, rng_);
    scratch_[v] = 1;  // co-located tokens merge
  }
  std::uint32_t new_count = 0;
  for (const auto t : scratch_) new_count += (t != 0) ? 1u : 0u;
  const std::uint32_t merges = count_ - new_count;
  tokens_.swap(scratch_);
  count_ = new_count;
  ++round_;
  return merges;
}

std::uint64_t IsraeliJalfonProcess::run_until_single(std::uint64_t cap) {
  std::uint64_t rounds = 0;
  while (count_ > 1 && rounds < cap) {
    step();
    ++rounds;
  }
  return rounds;
}

std::uint64_t IsraeliJalfonProcess::run_single_token_cover(std::uint64_t cap) {
  if (count_ != 1) {
    throw std::logic_error("cover: more than one token alive");
  }
  const auto n = static_cast<std::uint32_t>(tokens_.size());
  std::uint32_t position = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (tokens_[u]) position = u;
  }
  std::vector<std::uint8_t> visited(n, 0);
  visited[position] = 1;
  std::uint32_t seen = 1;
  std::uint64_t t = 0;
  while (seen < n && t < cap) {
    // Same lazy dynamics as step(), so the surviving token's law is the
    // continuation of the coalescence phase.
    if (laziness_ > 0.0 && rng_.bernoulli(laziness_)) {
      ++round_;
      ++t;
      continue;
    }
    position = graph_ == nullptr ? rng_.index(n)
                                 : graph_->sample_neighbor(position, rng_);
    if (!visited[position]) {
      visited[position] = 1;
      ++seen;
    }
    ++round_;
    ++t;
  }
  // Keep the public state consistent with where the walk stopped.
  std::fill(tokens_.begin(), tokens_.end(), 0);
  tokens_[position] = 1;
  return t;
}

std::uint32_t IsraeliJalfonProcess::inject_tokens(std::uint32_t count) {
  const auto n = static_cast<std::uint32_t>(tokens_.size());
  std::uint32_t added = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t u = rng_.index(n);
    if (!tokens_[u]) {
      tokens_[u] = 1;
      ++count_;
      ++added;
    }
  }
  return added;
}

void IsraeliJalfonProcess::check_invariants() const {
  std::uint32_t actual = 0;
  for (const auto t : tokens_) actual += (t != 0) ? 1u : 0u;
  if (actual != count_) {
    throw std::logic_error("israeli-jalfon: token count drift");
  }
  if (count_ == 0) {
    throw std::logic_error("israeli-jalfon: all tokens vanished");
  }
}

}  // namespace rbb
