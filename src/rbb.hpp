// Umbrella header: the complete public API of the rbb library.
//
// Downstream users can include this single header; fine-grained headers
// remain available for faster builds:
//
//   support/  rng, counter_rng, types, samplers, stats, bounds,
//             dense_set, thread_pool, table, cli, scale
//   graph/    graph
//   core/     config, process, token_process, faults, and the policy
//             core under core/kernel/ (shard, exec, stream, variants,
//             ball_kernel, token_kernel)
//   par/      sharded_process, sharded_token_process, sharded_variants
//   engine/   process, engine, observers, stop, faults, trials
//   tetris/   tetris, zchain, leaky
//   coupling/ coupling
//   baselines/ oneshot, independent_walks, repeated_dchoices, jackson
//   traversal/ traversal
//   markov/   dense_matrix, state_space, rbb_chain, zchain_exact
//   selfstab/ israeli_jalfon, certifier
//   analysis/ experiments
//   runner/   params, result, registry, docgen, legacy, runner
#pragma once

#include "analysis/experiments.hpp"
#include "engine/engine.hpp"
#include "engine/faults.hpp"
#include "engine/observers.hpp"
#include "engine/process.hpp"
#include "engine/stop.hpp"
#include "engine/trials.hpp"
#include "baselines/independent_walks.hpp"
#include "baselines/jackson.hpp"
#include "baselines/oneshot.hpp"
#include "baselines/repeated_dchoices.hpp"
#include "core/config.hpp"
#include "core/faults.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "coupling/coupling.hpp"
#include "graph/graph.hpp"
#include "markov/dense_matrix.hpp"
#include "markov/rbb_chain.hpp"
#include "markov/state_space.hpp"
#include "markov/zchain_exact.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"
#include "par/sharded_variants.hpp"
#include "runner/docgen.hpp"
#include "runner/legacy.hpp"
#include "runner/params.hpp"
#include "runner/registry.hpp"
#include "runner/result.hpp"
#include "runner/runner.hpp"
#include "selfstab/certifier.hpp"
#include "selfstab/israeli_jalfon.hpp"
#include "support/bounds.hpp"
#include "support/cli.hpp"
#include "support/dense_set.hpp"
#include "support/rng.hpp"
#include "support/samplers.hpp"
#include "support/scale.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "tetris/leaky.hpp"
#include "tetris/tetris.hpp"
#include "tetris/zchain.hpp"
#include "traversal/traversal.hpp"
