// Invariance and parity tests for the sharded leaky-bins kernel
// (DESIGN.md Sect. 5): the Berenbrink et al. [18] dynamics at mega n.
//
// The subtle contract here is the ARRIVAL COUNT: Binomial(n, lambda) is
// one draw per round, not per bin, so the sharded kernel takes it from
// the round's derived counter substream BEFORE any phase runs -- these
// tests pin that the count (and hence the whole trajectory, including
// the evolving ball total) is identical across worker counts, shard
// sizes, and against the sequential counter-stream sibling.
#include "par/sharded_variants.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "engine/engine.hpp"

namespace rbb::par {
namespace {

constexpr std::uint32_t kN = 2048;
constexpr double kLambda = 0.75;
constexpr std::uint64_t kSeed = 0x1ea21ULL;
constexpr std::uint64_t kRounds = 40;

LoadConfig start_config(InitialConfig kind = InitialConfig::kOnePerBin) {
  Rng rng(99);
  return make_config(kind, kN, kN, rng);
}

struct Trajectory {
  std::vector<LeakyRoundStats> stats;
  LoadConfig final_loads;

  bool operator==(const Trajectory& other) const {
    if (final_loads != other.final_loads) return false;
    if (stats.size() != other.stats.size()) return false;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (stats[i].max_load != other.stats[i].max_load ||
          stats[i].empty_bins != other.stats[i].empty_bins ||
          stats[i].total_balls != other.stats[i].total_balls ||
          stats[i].arrivals != other.stats[i].arrivals) {
        return false;
      }
    }
    return true;
  }
};

template <typename Process>
Trajectory record(Process& proc) {
  Trajectory t;
  for (std::uint64_t r = 0; r < kRounds; ++r) t.stats.push_back(proc.step());
  t.final_loads = proc.loads();
  return t;
}

Trajectory run_sharded(ShardedOptions options, double lambda = kLambda) {
  ShardedLeakyBinsProcess proc(start_config(), lambda, kSeed, options);
  return record(proc);
}

TEST(ShardedLeaky, TrajectoryIdenticalFor1_2_8Workers) {
  const Trajectory one = run_sharded({.threads = 1, .shard_size = 256});
  const Trajectory two = run_sharded({.threads = 2, .shard_size = 256});
  const Trajectory eight = run_sharded({.threads = 8, .shard_size = 256});
  EXPECT_TRUE(one == two);
  EXPECT_TRUE(one == eight);
}

TEST(ShardedLeaky, TrajectoryIndependentOfShardSize) {
  const Trajectory s64 = run_sharded({.threads = 2, .shard_size = 64});
  const Trajectory s256 = run_sharded({.threads = 2, .shard_size = 256});
  const Trajectory s1024 = run_sharded({.threads = 2, .shard_size = 1024});
  EXPECT_TRUE(s64 == s256);
  EXPECT_TRUE(s64 == s1024);
}

TEST(ShardedLeaky, BitIdenticalToSequentialCounterSibling) {
  SequentialCounterLeakyBinsProcess reference(start_config(), kLambda, kSeed);
  ShardedLeakyBinsProcess sharded(start_config(), kLambda, kSeed,
                                  {.threads = 2, .shard_size = 256});
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const LeakyRoundStats expect = reference.step();
    const LeakyRoundStats got = sharded.step();
    ASSERT_EQ(got.arrivals, expect.arrivals) << "round " << r;
    ASSERT_EQ(got.max_load, expect.max_load) << "round " << r;
    ASSERT_EQ(got.empty_bins, expect.empty_bins) << "round " << r;
    ASSERT_EQ(got.total_balls, expect.total_balls) << "round " << r;
    ASSERT_EQ(sharded.loads(), reference.loads()) << "round " << r;
  }
}

TEST(ShardedLeaky, ParityAcrossTheCriticalRate) {
  // lambda = 1 (no drift slack) stresses the arrival path the hardest.
  for (const double lambda : {0.5, 1.0}) {
    SequentialCounterLeakyBinsProcess reference(start_config(), lambda,
                                                kSeed);
    ShardedLeakyBinsProcess sharded(start_config(), lambda, kSeed,
                                    {.threads = 8, .shard_size = 64});
    Trajectory a = record(reference);
    Trajectory b = record(sharded);
    EXPECT_TRUE(a == b) << "lambda " << lambda;
  }
}

TEST(ShardedLeaky, BallAccountingAndInvariantsHold) {
  ShardedLeakyBinsProcess proc(start_config(), kLambda, kSeed,
                               {.threads = 2, .shard_size = 128});
  EXPECT_DOUBLE_EQ(proc.lambda(), kLambda);
  for (int r = 0; r < 16; ++r) {
    const LeakyRoundStats s = proc.step();
    ASSERT_NO_THROW(proc.check_invariants());
    EXPECT_EQ(total_balls(proc.loads()), s.total_balls);
    EXPECT_LE(s.arrivals, static_cast<std::uint64_t>(kN));
  }
}

TEST(ShardedLeaky, DegenerateRatesBehave) {
  // lambda = 0: pure drain, no arrivals ever; the system empties.
  ShardedLeakyBinsProcess drain(start_config(), 0.0, kSeed,
                                {.threads = 2, .shard_size = 256});
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(drain.step().arrivals, 0u);
  }
  EXPECT_EQ(drain.total_balls(), 0u);
  EXPECT_EQ(drain.empty_bins(), kN);
}

TEST(ShardedLeaky, RejectsBadConstruction) {
  EXPECT_THROW(ShardedLeakyBinsProcess(LoadConfig{}, 0.5, kSeed),
               std::invalid_argument);
  EXPECT_THROW(ShardedLeakyBinsProcess(LoadConfig(16, 1), 1.5, kSeed),
               std::invalid_argument);
  EXPECT_THROW(ShardedLeakyBinsProcess(LoadConfig(16, 1), -0.1, kSeed),
               std::invalid_argument);
}

static_assert(SimProcess<ShardedLeakyBinsProcess>,
              "the sharded leaky-bins kernel must satisfy the engine "
              "concept");
static_assert(SimProcess<SequentialCounterLeakyBinsProcess>,
              "the counter-stream leaky sibling must satisfy the engine "
              "concept");

TEST(ShardedLeaky, EngineDrivesIt) {
  Engine engine(ShardedLeakyBinsProcess(start_config(), kLambda, kSeed,
                                        {.threads = 2, .shard_size = 256}));
  MeanEmptyFraction empty;
  const EngineResult r = engine.run_rounds(kRounds, empty);
  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_GT(empty.mean(), 0.0);
}

}  // namespace
}  // namespace rbb::par
