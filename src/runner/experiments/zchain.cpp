// E6 -- Lemma 5: for the eq.-(4) chain started at k, for t >= 8k,
// P(tau > t) <= e^{-t/144}.
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_zchain(Registry& registry) {
  Experiment e;
  e.name = "zchain";
  e.claim = "E6";
  e.title = "absorption-time tail obeys Lemma 5's e^{-t/144}";
  e.description =
      "Per start k, the empirical absorption tail P(tau > t) of the "
      "eq.-(4) Z-chain at a grid of t values vs the Lemma-5 bound "
      "e^{-t/144}.  The bound's rate constant 1/144 is loose by design; "
      "the empirical decay rate is much faster (the drift is -1/4, so "
      "the true rate is Theta(1)).";
  e.params = {
      {"n", ParamSpec::Type::kU64, "4096",
       "system size parameterizing the arrival law"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(20000, 200000, 1000000);
    const auto n = ctx.params.u32("n");

    ResultSet rs;
    Table& table = rs.add_table(
        "E6_zchain", "absorption-time tail obeys Lemma 5's e^{-t/144}",
        {"start k", "t", "P(tau > t) empirical", "e^{-t/144} bound",
         "bound holds", "E[tau] (mean)"});
    for (const std::uint64_t k : {2ull, 8ull, 32ull}) {
      ZChainTailParams p;
      p.n = n;
      p.start = k;
      p.ts = {8 * k, 16 * k, 32 * k, 64 * k};
      p.trials = trials;
      p.seed = ctx.seed();
      const ZChainTailResult r = run_zchain_tail(p);
      for (std::size_t i = 0; i < p.ts.size(); ++i) {
        const double bound = zchain_tail_bound(static_cast<double>(p.ts[i]));
        table.row()
            .cell(k)
            .cell(p.ts[i])
            .cell(r.empirical_tail[i], 6)
            .cell(bound, 6)
            .cell(std::string(r.empirical_tail[i] <= bound + 1e-9 ? "yes"
                                                                  : "NO"))
            .cell(r.absorption_time.mean(), 2);
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
