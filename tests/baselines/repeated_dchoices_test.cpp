// Tests for the repeated d-choices process ([36] extension, E15).
#include "baselines/repeated_dchoices.hpp"

#include <gtest/gtest.h>

#include "support/bounds.hpp"

namespace rbb {
namespace {

TEST(RepeatedDChoices, RejectsBadConstruction) {
  EXPECT_THROW(RepeatedDChoicesProcess(LoadConfig{}, 2, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(RepeatedDChoicesProcess(LoadConfig(4, 1), 0, Rng(1)),
               std::invalid_argument);
}

TEST(RepeatedDChoices, ConservesBalls) {
  Rng rng(2);
  RepeatedDChoicesProcess proc(make_config(InitialConfig::kRandom, 64, 64, rng),
                               2, rng);
  for (int t = 0; t < 200; ++t) {
    proc.step();
    ASSERT_EQ(total_balls(proc.loads()), 64u);
    proc.check_invariants();
  }
}

TEST(RepeatedDChoices, IncrementalStatsStayExact) {
  Rng rng(3);
  RepeatedDChoicesProcess proc(
      make_config(InitialConfig::kAllInOne, 32, 32, rng), 3, rng);
  for (int t = 0; t < 200; ++t) {
    const DChoicesRoundStats s = proc.step();
    ASSERT_EQ(s.max_load, max_load(proc.loads()));
    ASSERT_EQ(s.empty_bins, empty_bins(proc.loads()));
  }
}

TEST(RepeatedDChoices, TwoChoicesFlattenLoads) {
  // d = 2 should hold the window max load strictly below d = 1 at n=1024.
  constexpr std::uint32_t n = 1024;
  auto window_max = [](std::uint32_t d) {
    Rng rng(4);
    RepeatedDChoicesProcess proc(
        make_config(InitialConfig::kOnePerBin, n, n, rng), d, rng);
    std::uint32_t wmax = 0;
    for (std::uint32_t t = 0; t < 10 * n; ++t) {
      wmax = std::max(wmax, proc.step().max_load);
    }
    return wmax;
  };
  const std::uint32_t d1 = window_max(1);
  const std::uint32_t d2 = window_max(2);
  EXPECT_LT(d2, d1);
  EXPECT_LE(d2, 6u);  // ~log log n regime
}

TEST(RepeatedDChoices, DeterministicForSeed) {
  auto run = [] {
    Rng rng(5);
    RepeatedDChoicesProcess proc(LoadConfig(32, 1), 2, rng);
    proc.run(100);
    return proc.loads();
  };
  EXPECT_EQ(run(), run());
}

TEST(RepeatedDChoices, DOneBehavesLikeOriginalProcess) {
  // d = 1 is definitionally the paper's process: departures equal the
  // count of bins non-empty at the start of the round, and the window max
  // load stays in the O(log n) regime.
  constexpr std::uint32_t n = 256;
  Rng rng(6);
  RepeatedDChoicesProcess proc(
      make_config(InitialConfig::kOnePerBin, n, n, rng), 1, rng);
  std::uint32_t wmax = 0;
  for (std::uint32_t t = 0; t < 10 * n; ++t) {
    const std::uint32_t empty_before = proc.empty_bins();
    const DChoicesRoundStats s = proc.step();
    ASSERT_EQ(s.departures, n - empty_before);
    wmax = std::max(wmax, s.max_load);
  }
  EXPECT_LE(wmax, 6.0 * log2n(n));
}

}  // namespace
}  // namespace rbb
