// Process-variant policies of the process core (DESIGN.md Sect. 5).
//
// The per-round *semantics* axis of the policy matrix: what a departure
// means, where arrivals come from, and which extra bookkeeping the
// variant maintains.  Each variant carries its RNG stream policy
// (stream.hpp) as a template parameter, so one variant type fully
// determines the randomness contract; the execution policy (exec.hpp)
// stays orthogonal and is chosen at the BallProcessCore instantiation.
//
// Two arrival shapes exist:
//   * relaunch (LoadOnly, DChoices) -- every departing ball is thrown
//     back; the ball count is conserved.
//   * refill (Tetris, Leaky) -- departing balls leave the system and an
//     independent batch of fresh balls arrives each round.
//
// The members of these structs are the kernel's working state; they are
// public for BallProcessCore, not part of the public process API (the
// core re-exposes the user-facing accessors with requires-clauses).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/kernel/stream.hpp"
#include "graph/graph.hpp"
#include "support/samplers.hpp"
#include "support/types.hpp"

namespace rbb {

/// Statistics of the configuration at the *end* of a round (the paper's
/// process and every ball-conserving variant).
struct RoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  std::uint32_t departures = 0;  // |W^t| of the round just executed
};

/// Per-round statistics of the repeated d-choices process.
struct DChoicesRoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  std::uint32_t departures = 0;
};

/// Per-round statistics of the Tetris process (end-of-round state).
struct TetrisRoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  ball_count_t total_balls = 0;  // Tetris does not conserve ball count
};

/// Per-round statistics of the leaky-bins process.
struct LeakyRoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  ball_count_t total_balls = 0;
  ball_count_t arrivals = 0;  // this round's Binomial(n, lambda) draw
};

/// How Tetris samples the per-round arrival occupancy (ablation D1).
enum class ArrivalSampling {
  kBallByBall,  // k independent uniform destinations, O(k) per round
  kSplit,       // multinomial via recursive binomial splitting, O(n)
};

namespace kernel {

enum class BallVariantKind {
  kLoadOnly,
  kDChoices,
  kThreshold,
  kTetris,
  kLeaky,
};

/// The paper's process: every departure is re-thrown u.a.r. (complete
/// graph) or to a uniform neighbor (general graph; sequential stream
/// only -- neighbor sampling needs a serial generator).
template <typename StreamP>
struct LoadOnly {
  using Stream = StreamP;
  using Stats = RoundStats;
  static constexpr BallVariantKind kKind = BallVariantKind::kLoadOnly;
  static constexpr bool kConservesBalls = true;

  explicit LoadOnly(Stream stream, const Graph* graph = nullptr)
      : stream_(std::move(stream)), graph_(graph) {}

  void validate(std::uint32_t n) const {
    if (graph_ != nullptr) {
      if constexpr (Stream::kScheduleFree) {
        throw std::invalid_argument(
            "LoadOnly: general graphs need the sequential stream "
            "(neighbor sampling draws from a serial generator)");
      }
      if (graph_->node_count() != n) {
        throw std::invalid_argument(
            "RepeatedBallsProcess: graph size != configuration size");
      }
      if (graph_->min_degree() == 0) {
        throw std::invalid_argument(
            "RepeatedBallsProcess: graph has an isolated node");
      }
    }
  }
  void init(const std::vector<load_t>& /*loads*/) {}

  static Stats make_stats(std::uint32_t max, std::uint32_t empty,
                          std::uint32_t departures, ball_count_t /*balls*/,
                          ball_count_t /*arrivals*/) {
    return Stats{max, empty, departures};
  }

  Stream stream_;
  const Graph* graph_;
};

/// Repeated d-choices ([36]): a released ball samples d candidate bins
/// and joins the least loaded.
///
/// Placement convention (documented because [36] leaves the intra-round
/// rule unspecified):
///   * sequential stream -- classic Greedy[d]: balls are placed one by
///     one in releasing-bin order and each placement sees the arrivals
///     before it (the historical RepeatedDChoicesProcess behavior).
///   * schedule-free stream -- batch-snapshot Greedy[d]: every choice
///     reads the post-departure configuration and all placements commit
///     afterwards.  This is the convention a parallel round can realize
///     without serializing on the load vector, and it matches the
///     batched setting of Berenbrink et al. (PODC 2016): decisions made
///     on information that is one batch stale.
template <typename StreamP>
struct DChoices {
  using Stream = StreamP;
  using Stats = DChoicesRoundStats;
  static constexpr BallVariantKind kKind = BallVariantKind::kDChoices;
  static constexpr bool kConservesBalls = true;

  DChoices(Stream stream, std::uint32_t d)
      : stream_(std::move(stream)), d_(d) {}

  void validate(std::uint32_t /*n*/) const {
    if (d_ == 0) {
      throw std::invalid_argument("RepeatedDChoicesProcess: d == 0");
    }
    if (d_ >= (1u << 16)) {
      throw std::invalid_argument(
          "RepeatedDChoicesProcess: d exceeds the candidate slot space");
    }
  }
  void init(const std::vector<load_t>& /*loads*/) {}

  /// Batch-snapshot choices for `m` released balls (releasers[i] = the
  /// releasing bin): per candidate index j, one gathered draw plane on
  /// slots (j, u) materializes every ball's j-th candidate at once --
  /// the same (round, slot) draws the historical per-ball loop made,
  /// in candidate-major order.  Least loaded wins, ties keep the
  /// earlier draw.  `best` and `cand` are caller-provided buffers of
  /// `m` entries.  Reads `loads` only -- callable concurrently from any
  /// worker once the post-departure configuration is stable.
  template <typename S = Stream>
    requires S::kScheduleFree
  void choose_batch(std::uint64_t round, const bin_index_t* releasers,
                    std::uint32_t m, std::uint32_t n,
                    const std::vector<load_t>& loads, bin_index_t* best,
                    bin_index_t* cand) const {
    stream_.fill_gather(round, releasers, 0, m, n, best);
    for (std::uint32_t j = 1; j < d_; ++j) {
      stream_.fill_gather(round, releasers, j, m, n, cand);
      for (std::uint32_t i = 0; i < m; ++i) {
        if (loads[cand[i]] < loads[best[i]]) best[i] = cand[i];
      }
    }
  }

  static Stats make_stats(std::uint32_t max, std::uint32_t empty,
                          std::uint32_t departures, ball_count_t /*balls*/,
                          ball_count_t /*arrivals*/) {
    return Stats{max, empty, departures};
  }

  Stream stream_;
  std::uint32_t d_;
};

/// Threshold allocation (Bertrand & Lenzen, "The 1-2-3 Toolkit"): a
/// released ball probes up to `probes_` uniform candidate bins in
/// sequence and joins the FIRST one whose load is at most `threshold_`;
/// if no probe qualifies, the ball settles in the last bin probed.
/// Unlike Greedy[d] the rule is adaptive -- a lightly loaded first
/// probe ends the search -- which is exactly the allocation shape the
/// toolkit's low-message protocols realize.
///
/// Placement convention mirrors DChoices: the sequential stream places
/// balls online (each probe sees the arrivals before it), the
/// schedule-free stream reads the post-departure snapshot for every
/// probe and commits all placements afterwards.  Probe j of releasing
/// bin u draws on candidate slot (j, u), the same plane family as
/// d-choices, so the sharded backend needs no new slot range.
template <typename StreamP>
struct Threshold {
  using Stream = StreamP;
  using Stats = RoundStats;
  static constexpr BallVariantKind kKind = BallVariantKind::kThreshold;
  static constexpr bool kConservesBalls = true;

  Threshold(Stream stream, load_t threshold, std::uint32_t probes = 2)
      : stream_(std::move(stream)), threshold_(threshold), probes_(probes) {}

  void validate(std::uint32_t /*n*/) const {
    if (probes_ == 0) {
      throw std::invalid_argument("Threshold: probes == 0");
    }
    if (probes_ >= (1u << 16)) {
      throw std::invalid_argument(
          "Threshold: probes exceeds the candidate slot space");
    }
  }
  void init(const std::vector<load_t>& /*loads*/) {}

  /// Online placement (sequential stream): draws probes one by one and
  /// stops at the first bin at or below the threshold.
  template <typename S = Stream>
    requires(!S::kScheduleFree)
  [[nodiscard]] bin_index_t choose_one(
      Rng& rng, std::uint32_t n, const std::vector<load_t>& loads) const {
    bin_index_t best = rng.index(n);
    for (std::uint32_t j = 1; j < probes_ && loads[best] > threshold_; ++j) {
      best = rng.index(n);
    }
    return best;
  }

  /// Batch-snapshot placement for `m` released balls, one gathered draw
  /// plane per probe index.  A ball whose current `best` already
  /// qualifies keeps it; otherwise the next probe replaces it -- after
  /// the last plane, `best[i]` is the first qualifying probe or the
  /// final one.  Every plane is materialized for every ball (the
  /// counter draws are pure functions, so unconsumed values cost
  /// nothing semantically), which keeps the draw set independent of the
  /// chunking and hence bit-identical across workers and shard sizes.
  template <typename S = Stream>
    requires S::kScheduleFree
  void choose_batch(std::uint64_t round, const bin_index_t* releasers,
                    std::uint32_t m, std::uint32_t n,
                    const std::vector<load_t>& loads, bin_index_t* best,
                    bin_index_t* cand) const {
    stream_.fill_gather(round, releasers, 0, m, n, best);
    for (std::uint32_t j = 1; j < probes_; ++j) {
      stream_.fill_gather(round, releasers, j, m, n, cand);
      for (std::uint32_t i = 0; i < m; ++i) {
        if (loads[best[i]] > threshold_) best[i] = cand[i];
      }
    }
  }

  static Stats make_stats(std::uint32_t max, std::uint32_t empty,
                          std::uint32_t departures, ball_count_t /*balls*/,
                          ball_count_t /*arrivals*/) {
    return Stats{max, empty, departures};
  }

  Stream stream_;
  load_t threshold_;
  std::uint32_t probes_;
};

/// The Tetris process (paper, Sect. 3.1): every non-empty bin discards
/// one ball, then exactly `arrivals_` fresh balls are thrown i.i.d.
/// u.a.r.  Tracks the first round each bin was empty (Lemma 4).
template <typename StreamP>
struct Tetris {
  using Stream = StreamP;
  using Stats = TetrisRoundStats;
  static constexpr BallVariantKind kKind = BallVariantKind::kTetris;
  static constexpr bool kConservesBalls = false;

  static constexpr std::uint64_t kNeverEmptied =
      std::numeric_limits<std::uint64_t>::max();

  /// `arrivals_per_round` == 0 selects the paper's floor(3n/4).
  Tetris(Stream stream, ball_count_t arrivals_per_round = 0,
         ArrivalSampling sampling = ArrivalSampling::kBallByBall)
      : stream_(std::move(stream)),
        arrivals_(arrivals_per_round),
        sampling_(sampling) {}

  void validate(std::uint32_t /*n*/) const {
    if constexpr (Stream::kScheduleFree) {
      if (sampling_ == ArrivalSampling::kSplit) {
        throw std::invalid_argument(
            "Tetris: multinomial-split sampling is inherently sequential; "
            "the schedule-free stream supports ball-by-ball arrivals only");
      }
    }
  }
  void init(const std::vector<load_t>& loads) {
    if (arrivals_ == 0) arrivals_ = loads.size() * 3 / 4;
    first_empty_.assign(loads.size(), kNeverEmptied);
    not_yet_emptied_ = 0;
    for (std::uint32_t u = 0; u < loads.size(); ++u) {
      if (loads[u] == 0) {
        first_empty_[u] = 0;
      } else {
        ++not_yet_emptied_;
      }
    }
  }

  static Stats make_stats(std::uint32_t max, std::uint32_t empty,
                          std::uint32_t /*departures*/, ball_count_t balls,
                          ball_count_t /*arrivals*/) {
    return Stats{max, empty, balls};
  }

  Stream stream_;
  ball_count_t arrivals_;
  ArrivalSampling sampling_;
  std::vector<std::uint64_t> first_empty_;
  std::uint32_t not_yet_emptied_ = 0;
  std::vector<bin_index_t> pending_empty_;  // sequential-path scratch
};

/// Leaky bins (Berenbrink et al., PODC 2016): one departure per
/// non-empty bin leaves the system, Binomial(n, lambda) fresh arrivals
/// land u.a.r.  Under the counter stream the arrival count is drawn
/// from the round's derived substream, once, before any phase runs.
template <typename StreamP>
struct Leaky {
  using Stream = StreamP;
  using Stats = LeakyRoundStats;
  static constexpr BallVariantKind kKind = BallVariantKind::kLeaky;
  static constexpr bool kConservesBalls = false;

  Leaky(Stream stream, double lambda)
      : stream_(std::move(stream)), lambda_(lambda) {}

  void validate(std::uint32_t /*n*/) const {
    if (!(lambda_ >= 0.0 && lambda_ <= 1.0)) {
      throw std::invalid_argument("LeakyBinsProcess: lambda outside [0, 1]");
    }
  }
  void init(const std::vector<load_t>& loads) {
    law_.emplace(loads.size(), lambda_);
  }

  static Stats make_stats(std::uint32_t max, std::uint32_t empty,
                          std::uint32_t /*departures*/, ball_count_t balls,
                          ball_count_t arrivals) {
    return Stats{max, empty, balls, arrivals};
  }

  Stream stream_;
  double lambda_;
  std::optional<BinomialSampler> law_;
};

}  // namespace kernel
}  // namespace rbb
