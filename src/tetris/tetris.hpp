// The Tetris process (paper, Sect. 3.1) and its instrumentation.
//
// Tetris is the analysis-friendly auxiliary process: starting from a
// configuration with at least n/4 empty bins, in every round
//   (1) every non-empty bin discards one ball, and
//   (2) exactly floor(3n/4) fresh balls are thrown i.i.d. u.a.r.
// Arrivals are independent across rounds -- the property the original
// process lacks (Appendix B) -- which makes Chernoff bounds applicable.
// Lemma 3 couples Tetris to the original process so that Tetris's maximum
// load dominates w.h.p.; Lemma 4 shows every bin empties within 5n rounds
// from any start; Lemma 6 gives the O(log n) stability window.
//
// The arrivals-per-round count and the arrival sampling strategy
// (ball-by-ball vs. multinomial splitting, ablation D1) are exposed as
// parameters; the critical-drift sweep (arrivals = mu * n for mu -> 1)
// is an ablation bench showing why 3/4 works.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/config.hpp"
#include "support/rng.hpp"

namespace rbb {

/// How Tetris samples the per-round arrival occupancy (ablation D1).
enum class ArrivalSampling {
  kBallByBall,  // k independent uniform destinations, O(k) per round
  kSplit,       // multinomial via recursive binomial splitting, O(n)
};

/// Per-round statistics of the Tetris process (end-of-round state).
struct TetrisRoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  std::uint64_t total_balls = 0;  // Tetris does not conserve ball count
};

/// The Tetris repeated balls-into-bins process.
class TetrisProcess {
 public:
  static constexpr std::uint64_t kNeverEmptied =
      std::numeric_limits<std::uint64_t>::max();

  /// `arrivals_per_round` == 0 selects the paper's floor(3n/4).
  TetrisProcess(LoadConfig initial, Rng rng,
                std::uint64_t arrivals_per_round = 0,
                ArrivalSampling sampling = ArrivalSampling::kBallByBall);

  /// One round: discard one ball from each non-empty bin, then add the
  /// fresh arrivals.  Returns end-of-round statistics.
  TetrisRoundStats step();
  TetrisRoundStats run(std::uint64_t rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }
  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_load_; }
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }
  [[nodiscard]] std::uint64_t total_balls() const noexcept { return balls_; }
  [[nodiscard]] std::uint64_t arrivals_per_round() const noexcept {
    return arrivals_;
  }

  /// First round at the end of which bin u was empty (0 if initially
  /// empty; kNeverEmptied if it has not emptied yet).  Lemma 4 predicts
  /// max over bins <= 5n w.h.p. from any start.
  [[nodiscard]] std::uint64_t first_empty_round(std::uint32_t u) const {
    return first_empty_[u];
  }
  /// True once every bin has been empty at least once.
  [[nodiscard]] bool all_emptied_once() const noexcept {
    return not_yet_emptied_ == 0;
  }
  /// Max over bins of first_empty_round (kNeverEmptied until
  /// all_emptied_once()).
  [[nodiscard]] std::uint64_t max_first_empty_round() const;

  /// Runs until all bins have emptied once or `max_rounds` elapse; returns
  /// the round by which the last bin first emptied, or kNeverEmptied.
  std::uint64_t run_until_all_emptied(std::uint64_t max_rounds);

  /// Testing hook; throws std::logic_error if cached stats drift.
  void check_invariants() const;

 private:
  void apply_arrival(std::uint32_t v);

  LoadConfig loads_;
  Rng rng_;
  std::uint64_t arrivals_;
  ArrivalSampling sampling_;
  std::uint64_t balls_;
  std::uint64_t round_ = 0;
  std::uint32_t max_load_ = 0;
  std::uint32_t empty_ = 0;
  std::vector<std::uint64_t> first_empty_;
  std::uint32_t not_yet_emptied_ = 0;
  std::vector<std::uint32_t> pending_empty_;  // per-round scratch
};

}  // namespace rbb
