// The checkpoint-capable single-instance experiment (DESIGN.md
// Sect. 7): one counter-stream process of any kernel family, driven to
// a round target with periodic sampled rows, periodic rbb.ckpt.v1
// snapshots (--checkpoint-dir/--checkpoint-every), SIGINT-to-checkpoint
// shutdown, and `rbb resume` continuation via --resume-from.
//
// The trajectory is bit-identical across backends, worker counts and
// shard sizes (the counter stream is schedule-free), so the options
// digest deliberately covers only the trajectory-defining parameters
// (family, n, seed, family knobs) -- a checkpoint written by a sharded
// run restores into a sequential one and vice versa.  Each sampled row
// carries a CRC32 of the full kernel snapshot, so two runs agree iff
// every sampled state is byte-identical, not merely summary-identical.
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/io.hpp"
#include "core/config.hpp"
#include "core/mixed_config.hpp"
#include "core/token_process.hpp"
#include "par/sharded_mixed.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"
#include "par/sharded_variants.hpp"
#include "runner/interrupt.hpp"
#include "runner/registry.hpp"
#include "support/rng.hpp"
#include "support/serial.hpp"

namespace rbb::runner {
namespace {

/// %.17g round-trips a double exactly through the meta text.
std::string fmt_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// The trajectory-defining parameters (everything the digest and the
/// resume meta must cover; execution options stay out by design).
struct TrajectorySpec {
  std::string family;
  std::uint64_t n = 0;
  std::uint64_t rounds = 0;
  std::uint64_t sample_every = 0;
  std::uint64_t seed = 0;
  // family knobs (each used by one family, carried for all)
  std::uint64_t d = 2;           // dchoices
  double lambda = 0.5;           // leaky
  std::string policy = "fifo";   // token
  std::uint64_t arrivals = 0;    // tetris (0 = paper's floor(3n/4))
  double ratio = 2.0;            // mixed
  std::string weights = "unit";  // mixed
  std::string bin_profile = "uniform";  // mixed
};

ckpt::Family family_tag(const std::string& family) {
  if (family == "load") return ckpt::Family::kLoad;
  if (family == "token") return ckpt::Family::kToken;
  if (family == "tetris") return ckpt::Family::kTetris;
  if (family == "dchoices") return ckpt::Family::kDChoices;
  if (family == "leaky") return ckpt::Family::kLeaky;
  if (family == "mixed") return ckpt::Family::kMixed;
  throw std::invalid_argument(
      "trajectory: unknown --family '" + family +
      "' (expected load, token, tetris, dchoices, leaky or mixed)");
}

/// Canonical option string behind the header digest: exactly the
/// parameters that determine the trajectory (per family), nothing
/// about execution.  Resuming under a different value of any of these
/// is a kDigestMismatch.
std::string canonical_options(const TrajectorySpec& s) {
  std::string c = "experiment=trajectory family=" + s.family +
                  " n=" + std::to_string(s.n) +
                  " seed=" + std::to_string(s.seed);
  if (s.family == "token") c += " policy=" + s.policy;
  if (s.family == "tetris") c += " arrivals=" + std::to_string(s.arrivals);
  if (s.family == "dchoices") c += " d=" + std::to_string(s.d);
  if (s.family == "leaky") c += " lambda=" + fmt_f64(s.lambda);
  if (s.family == "mixed") {
    c += " ratio=" + fmt_f64(s.ratio) + " weights=" + s.weights +
         " bin-profile=" + s.bin_profile;
  }
  return c;
}

/// The meta block `rbb resume` replays: every trajectory parameter as
/// a `name=value` line (resume turns each into --name=value and lets
/// explicit CLI overrides win; a trajectory-changing override is then
/// caught by the digest check).
std::string meta_block(const TrajectorySpec& s) {
  std::string m = "experiment=trajectory\n";
  m += "family=" + s.family + "\n";
  m += "n=" + std::to_string(s.n) + "\n";
  m += "rounds=" + std::to_string(s.rounds) + "\n";
  m += "sample-every=" + std::to_string(s.sample_every) + "\n";
  m += "seed=" + std::to_string(s.seed) + "\n";
  m += "d=" + std::to_string(s.d) + "\n";
  m += "lambda=" + fmt_f64(s.lambda) + "\n";
  m += "policy=" + s.policy + "\n";
  m += "arrivals=" + std::to_string(s.arrivals) + "\n";
  m += "ratio=" + fmt_f64(s.ratio) + "\n";
  m += "weights=" + s.weights + "\n";
  m += "bin-profile=" + s.bin_profile + "\n";
  return m;
}

template <typename Proc>
std::string snapshot_bytes(const Proc& proc) {
  serial::ByteWriter w;
  proc.snapshot(w);
  return w.take();
}

template <typename Proc>
std::uint64_t entity_count(const Proc& proc) {
  if constexpr (requires { proc.total_balls(); }) {
    return proc.total_balls();
  } else {
    return proc.token_count();
  }
}

/// Rounds between checkpoint/sample/interrupt polls: long enough to
/// keep the sharded pipeline fed, short enough that ^C lands within
/// milliseconds at any n.
constexpr std::uint64_t kMaxChunk = 1024;

}  // namespace

void register_trajectory(Registry& registry) {
  Experiment e;
  e.name = "trajectory";
  e.claim = "";
  e.title = "single checkpointable run: sampled trajectory of one process";
  e.description =
      "Drives ONE process of the chosen --family (load, token, tetris, "
      "dchoices, leaky or mixed) on the counter stream for --rounds "
      "rounds and reports sampled rows (round, max load, empty bins, "
      "entity count, snapshot CRC).  This is the checkpoint-capable "
      "experiment: --checkpoint-dir/--checkpoint-every write rbb.ckpt.v1 "
      "snapshots every K rounds (keep-last-K retention), SIGINT finishes "
      "the current chunk, writes a final checkpoint and exits with "
      "status 130, and `rbb resume <ckpt>` continues the run to "
      "completion -- bit-identically to an uninterrupted run, on either "
      "backend at any worker count (the snapshot CRC column proves it).";
  e.family = ProcessFamily::kKernelSuite;
  e.checkpointable = true;
  e.params = {
      {"family", ParamSpec::Type::kString, "load",
       "kernel family: load, token, tetris, dchoices, leaky or mixed"},
      {"n", ParamSpec::Type::kU64, "4096", "bins"},
      {"rounds", ParamSpec::Type::kU64, "8192", "round target"},
      {"sample-every", ParamSpec::Type::kU64, "0",
       "emit a trajectory row every K rounds (0 = final row only)"},
      {"shard-size", ParamSpec::Type::kU64, "0",
       "sharded-backend bins per shard (0 = default; never affects the "
       "trajectory)"},
      {"d", ParamSpec::Type::kU64, "2", "dchoices: probes per ball"},
      {"lambda", ParamSpec::Type::kF64, "0.5",
       "leaky: per-round ball survival probability"},
      {"policy", ParamSpec::Type::kString, "fifo",
       "token: queue policy (fifo, lifo or random)"},
      {"arrivals", ParamSpec::Type::kU64, "0",
       "tetris: arrivals per round (0 = the paper's floor(3n/4))"},
      {"ratio", ParamSpec::Type::kF64, "2",
       "mixed: ball ratio c (m = round(c * n))"},
      {"weights", ParamSpec::Type::kString, "unit",
       "mixed: weight profile (unit, bimodal or zipf)"},
      {"bin-profile", ParamSpec::Type::kString, "uniform",
       "mixed: bin profile (uniform, two-speed, stalled-tenth or capped)"},
  };
  e.run = [](const RunContext& ctx) {
    TrajectorySpec s;
    s.family = ctx.params.str("family");
    s.n = ctx.params.u64("n");
    s.rounds = ctx.params.u64("rounds");
    s.sample_every = ctx.params.u64("sample-every");
    s.seed = ctx.seed();
    s.d = ctx.params.u64("d");
    s.lambda = ctx.params.f64("lambda");
    s.policy = ctx.params.str("policy");
    s.arrivals = ctx.params.u64("arrivals");
    s.ratio = ctx.params.f64("ratio");
    s.weights = ctx.params.str("weights");
    s.bin_profile = ctx.params.str("bin-profile");
    if (s.n == 0) throw std::invalid_argument("trajectory: --n must be > 0");
    const auto n32 = static_cast<std::uint32_t>(s.n);
    const ckpt::Family tag = family_tag(s.family);
    const std::uint32_t digest = ckpt::digest(canonical_options(s));

    ResultSet rs;
    Table& table = rs.add_table(
        "trajectory",
        "sampled trajectory of one " + s.family + " process, n = " +
            std::to_string(s.n),
        {"round", "max load", "empty bins", "entities", "state crc"},
        {"entities", "state crc"});

    ckpt::CheckpointPlan plan(ctx.checkpoint_dir(), ctx.checkpoint_every(),
                              ctx.checkpoint_keep());

    // One driver for all six families: chunked run with sample /
    // checkpoint / interrupt polls at chunk boundaries (round
    // boundaries are exactly where the kernels' scatter state is
    // provably drained, so snapshots stay closed).
    const auto drive = [&](auto& proc, std::uint64_t entities) {
      const auto make_ckpt = [&] {
        ckpt::Checkpoint c;
        c.header.family = tag;
        c.header.backend =
            ctx.sharded() ? ckpt::kBackendSharded : ckpt::kBackendSeq;
        c.header.bins = s.n;
        c.header.entities = entities;
        c.header.seed = s.seed;
        c.header.round = proc.round();
        c.header.options_digest = digest;
        c.meta = meta_block(s);
        c.payload = snapshot_bytes(proc);
        return c;
      };
      const auto emit_row = [&] {
        const std::string bytes = snapshot_bytes(proc);
        table.row()
            .cell(proc.round())
            .cell(static_cast<std::uint64_t>(proc.max_load()))
            .cell(static_cast<std::uint64_t>(proc.empty_bins()))
            .cell(entity_count(proc))
            .cell(static_cast<std::uint64_t>(
                serial::crc32(bytes.data(), bytes.size())));
      };

      if (!ctx.resume_from().empty()) {
        const ckpt::Checkpoint c = ckpt::read_checkpoint(ctx.resume_from());
        ckpt::verify_matches(c.header, tag, s.n, entities, s.seed, digest);
        serial::ByteReader r(c.payload);
        proc.restore(r);
        if (!r.done()) {
          throw ckpt::Error(ckpt::ErrorKind::kPayloadCorrupt,
                            "trailing bytes after " + s.family + " payload");
        }
        rs.note("resumed from " + ctx.resume_from() + " at round " +
                std::to_string(proc.round()));
      }

      std::uint64_t last_ckpt_round = proc.round();
      while (proc.round() < s.rounds && !interrupt::interrupted()) {
        std::uint64_t stop = std::min(s.rounds, proc.round() + kMaxChunk);
        const auto next_boundary = [&](std::uint64_t every) {
          if (every != 0) {
            stop = std::min(stop, (proc.round() / every + 1) * every);
          }
        };
        next_boundary(s.sample_every);
        if (plan.enabled()) next_boundary(plan.every());
        proc.run(stop - proc.round());
        if (s.sample_every != 0 && proc.round() % s.sample_every == 0 &&
            proc.round() < s.rounds) {
          emit_row();
        }
        if (plan.due(proc.round())) {
          if (plan.write(make_ckpt())) last_ckpt_round = proc.round();
        }
      }
      emit_row();  // the final (or interruption) row

      // The exit checkpoint: SIGINT always leaves a resumable snapshot
      // behind; a completed run leaves its terminal state too (useful
      // as a verified artifact) unless the periodic writer just did.
      if (plan.enabled() && proc.round() != last_ckpt_round) {
        const auto path = plan.write(make_ckpt());
        if (interrupt::interrupted()) {
          rs.note("interrupted at round " + std::to_string(proc.round()) +
                  (path ? "; checkpoint written to " + *path
                        : "; final checkpoint write FAILED"));
        }
      } else if (interrupt::interrupted()) {
        rs.note("interrupted at round " + std::to_string(proc.round()));
      }
    };

    Rng cfg_rng(s.seed);
    const par::ShardedOptions opts{
        .threads = ctx.threads(),
        .shard_size = static_cast<std::uint32_t>(ctx.params.u64("shard-size"))};
    if (s.family == "load") {
      LoadConfig config = make_config(InitialConfig::kOnePerBin, n32, s.n,
                                      cfg_rng);
      if (ctx.sharded()) {
        par::ShardedRepeatedBallsProcess p(std::move(config), s.seed, opts);
        drive(p, s.n);
      } else {
        par::SequentialCounterProcess p(std::move(config), s.seed);
        drive(p, s.n);
      }
    } else if (s.family == "token") {
      kernel::TokenOptions topt;
      topt.policy = queue_policy_from_string(s.policy);
      if (ctx.sharded()) {
        par::ShardedTokenProcess p(n32, identity_placement(n32), s.seed, opts,
                                   topt);
        drive(p, s.n);
      } else {
        par::SequentialCounterTokenProcess p(n32, identity_placement(n32),
                                             s.seed, topt);
        drive(p, s.n);
      }
    } else if (s.family == "tetris") {
      LoadConfig config = make_config(InitialConfig::kOnePerBin, n32, s.n,
                                      cfg_rng);
      if (ctx.sharded()) {
        par::ShardedTetrisProcess p(std::move(config), s.seed, s.arrivals,
                                    opts);
        drive(p, s.n);
      } else {
        par::SequentialCounterTetrisProcess p(std::move(config), s.seed,
                                              s.arrivals);
        drive(p, s.n);
      }
    } else if (s.family == "dchoices") {
      LoadConfig config = make_config(InitialConfig::kOnePerBin, n32, s.n,
                                      cfg_rng);
      const auto d = static_cast<std::uint32_t>(s.d);
      if (ctx.sharded()) {
        par::ShardedDChoicesProcess p(std::move(config), d, s.seed, opts);
        drive(p, s.n);
      } else {
        par::SequentialCounterDChoicesProcess p(std::move(config), d, s.seed);
        drive(p, s.n);
      }
    } else if (s.family == "leaky") {
      LoadConfig config = make_config(InitialConfig::kOnePerBin, n32, s.n,
                                      cfg_rng);
      if (ctx.sharded()) {
        par::ShardedLeakyBinsProcess p(std::move(config), s.lambda, s.seed,
                                       opts);
        drive(p, s.n);
      } else {
        par::SequentialCounterLeakyBinsProcess p(std::move(config), s.lambda,
                                                 s.seed);
        drive(p, s.n);
      }
    } else if (s.family == "mixed") {
      MixedSpec spec = make_mixed_spec(n32, s.ratio, s.weights, s.bin_profile);
      const std::uint64_t balls = spec.balls;
      if (ctx.sharded()) {
        par::ShardedMixedProcess p(std::move(spec), s.seed, opts);
        drive(p, balls);
      } else {
        par::SequentialCounterMixedProcess p(std::move(spec), s.seed);
        drive(p, balls);
      }
    } else {
      family_tag(s.family);  // throws the canonical unknown-family error
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
