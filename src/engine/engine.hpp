// The unified simulation engine: one round loop for every process
// variant (DESIGN.md Sect. 2).
//
// Engine<P> owns a process and drives it round by round, weaving in three
// orthogonal, compile-time-composed concerns:
//
//   * a stopping rule   (engine/stop.hpp)      -- evaluated pre-round on
//     the current state, plus a hard round budget,
//   * a fault plan      (engine/faults.hpp)    -- adversarial
//     reassignments on their own RNG stream, post-round,
//   * metric observers  (engine/observers.hpp) -- any number, invoked
//     with a lazy end-of-round view.
//
// Everything is a template parameter, so a run with no observers and no
// faults compiles to exactly the bare `for (...) p.step();` loop the
// per-process run() methods contain -- the parity regression test in
// tests/engine/ verifies bit-identical trajectories, and perf_kernels
// verifies zero overhead.  Monte-Carlo parallelism lives one level up, in
// engine/trials.hpp.
#pragma once

#include <cstdint>
#include <utility>

#include "engine/faults.hpp"
#include "engine/observers.hpp"
#include "engine/process.hpp"
#include "engine/stop.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rbb {

/// Outcome of one Engine::run call.
struct EngineResult {
  std::uint64_t rounds = 0;           // process rounds executed
  std::uint64_t faults_injected = 0;  // faulty (non-process) rounds
  bool goal_reached = false;          // stopping rule fired (vs budget)
};

template <SimProcess P>
class Engine {
 public:
  explicit Engine(P process) : process_(std::move(process)) {}

  /// \brief Runs until the stopping rule fires or the round budget is
  /// exhausted, whichever comes first.
  ///
  /// The rule sees the state *before* each round, so a run from an
  /// already-satisfying state executes zero rounds.  Per executed round:
  /// step, observers (in argument order, over one shared lazy
  /// RoundContext), then the fault plan.
  ///
  /// \tparam Stop      predicate `(const P&, rounds_done) -> bool`
  ///                   (engine/stop.hpp); true ends the run as a goal
  /// \tparam Faults    fault plan with `maybe_inject(P&, round) -> bool`
  ///                   (engine/faults.hpp); NoFaults{} for none
  /// \tparam Observers any number of types with
  ///                   `observe(const RoundContext<P>&)`
  ///                   (engine/observers.hpp)
  /// \param max_rounds hard budget of process rounds for this call
  /// \return rounds executed, faults injected, and whether the goal
  ///         (vs the budget) ended the run
  template <typename Stop, typename Faults, typename... Observers>
  EngineResult run(std::uint64_t max_rounds, Stop&& until, Faults&& faults,
                   Observers&&... observers) {
    EngineResult result;
    for (;;) {
      if (until(std::as_const(process_), result.rounds)) {
        result.goal_reached = true;
        break;
      }
      if (result.rounds >= max_rounds) break;
      {
        const obs::ScopedPhase round_span(obs::Phase::kRound);
        engine_step(process_);
      }
      ++result.rounds;
      ++driven_;
      if constexpr (sizeof...(Observers) > 0) {
        const RoundContext<P> ctx(process_, result.rounds);
        (observers.observe(ctx), ...);
      }
      if (faults.maybe_inject(process_, driven_)) {
        ++result.faults_injected;
        obs::add(obs::Counter::kFaultsInjected);
      }
    }
    return result;
  }

  /// Fixed observation window: exactly `rounds` rounds, no faults.
  template <typename... Observers>
  EngineResult run_rounds(std::uint64_t rounds, Observers&&... observers) {
    return run(rounds, RunForRounds{}, NoFaults{},
               std::forward<Observers>(observers)...);
  }

  [[nodiscard]] P& process() noexcept { return process_; }
  [[nodiscard]] const P& process() const noexcept { return process_; }
  /// Total process rounds driven across all run calls on this engine.
  [[nodiscard]] std::uint64_t rounds_driven() const noexcept {
    return driven_;
  }
  /// Revalidates the process's incremental bookkeeping (testing hook).
  void check_invariants() const { engine_check_invariants(process_); }

 private:
  P process_;
  std::uint64_t driven_ = 0;
};

}  // namespace rbb
