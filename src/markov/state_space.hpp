// Enumeration of the exact state space of the repeated balls-into-bins
// chain: all load configurations q = (q_1, ..., q_n) with sum q_u = m.
//
// The chain of the paper (Sect. 2) lives on this composition space; its
// size is C(m + n - 1, n - 1), which stays in the hundreds for the
// exactly-solvable regime n <= 6, m = n.  States are enumerated in
// lexicographic order; an explicit index map supports O(log s) lookup of a
// configuration's state id, and orbit helpers group states by their sorted
// load profile (the bin-permutation symmetry classes used by the symmetry
// tests and the compact table output).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"

namespace rbb {

/// The full composition state space of m balls in n bins.
class StateSpace {
 public:
  /// Enumerates all C(m+n-1, n-1) configurations.  Requires n >= 1 and a
  /// state-space size that fits comfortably in memory (the constructor
  /// throws std::invalid_argument if it would exceed `max_states`).
  StateSpace(std::uint32_t bins, std::uint32_t balls,
             std::size_t max_states = 2'000'000);

  [[nodiscard]] std::uint32_t bins() const noexcept { return bins_; }
  [[nodiscard]] std::uint32_t balls() const noexcept { return balls_; }
  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

  /// The configuration of state `id` (lexicographic order, ascending).
  [[nodiscard]] const LoadConfig& config(std::size_t id) const {
    return states_[id];
  }

  /// State id of configuration q; throws std::invalid_argument if q is not
  /// a valid member (wrong length or wrong ball total).
  [[nodiscard]] std::size_t index_of(const LoadConfig& q) const;

  /// Sorted-descending load profile of state `id` (its permutation-orbit
  /// representative).
  [[nodiscard]] LoadConfig orbit_representative(std::size_t id) const;

  /// Groups state ids by orbit representative; each inner vector holds the
  /// ids of one bin-permutation equivalence class.
  [[nodiscard]] std::vector<std::vector<std::size_t>> orbits() const;

  /// Number of states, computed combinatorially: C(m+n-1, n-1).  Throws
  /// std::overflow_error if the binomial overflows 64 bits.
  [[nodiscard]] static std::uint64_t expected_size(std::uint32_t bins,
                                                   std::uint32_t balls);

 private:
  std::uint32_t bins_;
  std::uint32_t balls_;
  std::vector<LoadConfig> states_;  // lexicographically sorted
};

}  // namespace rbb
