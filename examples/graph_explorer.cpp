// Graph explorer: the Sect. 5 open question, interactively.
//
// Runs the repeated balls-into-bins process on a selection of topologies
// and prints, per graph, the window maximum load against the two candidate
// laws: the paper's conjectured O(log n) (for regular graphs) and the
// older O(sqrt(t)) bound of [12].  The star graph shows what goes wrong
// without regularity.
//
//   ./examples/graph_explorer [--n 1024] [--window-factor 10]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/process.hpp"
#include "graph/graph.hpp"
#include "support/bounds.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli("graph_explorer: RBB max loads across topologies (Sect. 5)");
  cli.add_u64("n", 1024, "nodes (power of 4 fits every topology)");
  cli.add_u64("seed", 5, "RNG seed");
  cli.add_u64("window-factor", 10, "window = factor * n rounds");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;

  const auto n = static_cast<std::uint32_t>(cli.u64("n"));
  const std::uint64_t window = cli.u64("window-factor") * n;
  Rng graph_rng(cli.u64("seed") + 1);

  std::cout << "repeated balls-into-bins on graphs: n = " << n
            << ", window = " << window << " rounds\n"
            << "(balls move to a uniform random *neighbor*; the paper "
            << "conjectures O(log n)\n max load for regular graphs -- "
            << "Sect. 5)\n";

  Table table({"graph", "degree", "diameter-ish", "window max",
               "max / log2 n", "max / sqrt(window)", "final empty frac"});
  const std::vector<std::string> names = {"complete", "regular8",
                                          "hypercube", "torus", "cycle",
                                          "star"};
  for (const std::string& name : names) {
    const Graph g = make_named_graph(name, n, graph_rng);
    Rng rng(cli.u64("seed"));
    RepeatedBallsProcess proc(
        make_config(InitialConfig::kOnePerBin, n, n, rng), &g, rng);
    std::uint32_t wmax = 0;
    for (std::uint64_t t = 0; t < window; ++t) {
      wmax = std::max(wmax, proc.step().max_load);
    }
    const std::string degree =
        g.is_regular() ? std::to_string(g.max_degree())
                       : std::to_string(g.min_degree()) + "-" +
                             std::to_string(g.max_degree());
    table.row()
        .cell(name)
        .cell(degree)
        .cell(std::string(name == "cycle" ? "n/2" :
                          name == "star" ? "2" : "small"))
        .cell(std::uint64_t{wmax})
        .cell(static_cast<double>(wmax) / log2n(n), 2)
        .cell(static_cast<double>(wmax) /
                  std::sqrt(static_cast<double>(window)),
              3)
        .cell(static_cast<double>(proc.empty_bins()) / n, 3);
  }
  std::cout << table.markdown()
            << "\nreading: regular graphs sit at a small multiple of "
               "log2 n, far below sqrt(t);\nthe star concentrates half "
               "the balls on the hub -- regularity matters.\n";
  return EXIT_SUCCESS;
}
