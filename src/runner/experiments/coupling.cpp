// E4 -- Lemma 3: under the coupling, the Tetris process dominates the
// original process (per-bin, every round), and case (ii) never fires
// inside the window.
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"

namespace rbb::runner {

void register_coupling(Registry& registry) {
  Experiment e;
  e.name = "coupling";
  e.claim = "E4";
  e.title =
      "Tetris stochastically dominates the original process (Lemma 3)";
  e.description =
      "Runs the Lemma-3 coupled pair and reports, per n: the window "
      "maxima M_T and M-hat_T of the two coupled processes, the number "
      "of case-(ii) rounds (more than 3n/4 non-empty bins; predicted 0), "
      "the number of per-bin domination violations (predicted 0), and "
      "how many trials stayed dominated throughout (predicted all).";
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 10);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 20, 40);

    ResultSet rs;
    Table& table = rs.add_table(
        "E4_coupling",
        "Tetris stochastically dominates the original process (Lemma 3)",
        {"n", "window", "trials", "M_T orig (mean)", "M_T tetris (mean)",
         "case-(ii) rounds", "violations", "dominated trials"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      CouplingParams p;
      p.n = n;
      p.rounds = wf * n;
      p.trials = trials;
      p.seed = ctx.seed();
      const CouplingResult r = run_coupling(p);
      table.row()
          .cell(std::uint64_t{n})
          .cell(p.rounds)
          .cell(std::uint64_t{trials})
          .cell(r.original_window_max.mean(), 2)
          .cell(r.tetris_window_max.mean(), 2)
          .cell(r.total_case_two_rounds)
          .cell(r.total_violation_rounds)
          .cell(std::uint64_t{r.trials_dominated_throughout});
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
