// Shared plumbing for the experiment benches (bench/exp_*.cpp).
//
// Every experiment binary:
//   * honors RBB_BENCH_SCALE (smoke / default / paper) for its sweep sizes,
//   * accepts --seed and --trials overrides on the command line,
//   * prints one markdown table (the "paper table" of the experiment
//     map, DESIGN.md Sect. 4) plus the analytic prediction column,
//   * optionally mirrors the table to RBB_CSV_DIR as CSV.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/scale.hpp"
#include "support/table.hpp"

namespace rbb::bench {

/// Common CLI for an experiment bench.  Registers --seed and --trials
/// (trials == 0 means "use the scale default").
inline Cli make_cli(const std::string& description) {
  Cli cli(description);
  cli.add_u64("seed", 1, "root RNG seed");
  cli.add_u64("trials", 0, "trials per sweep point (0 = scale default)");
  return cli;
}

/// Chooses the trial count: CLI override wins, else by scale.
inline std::uint32_t trials_for(const Cli& cli, BenchScale scale,
                                std::uint32_t smoke, std::uint32_t dflt,
                                std::uint32_t paper) {
  const std::uint64_t cli_trials = cli.u64("trials");
  if (cli_trials != 0) return static_cast<std::uint32_t>(cli_trials);
  return by_scale(scale, smoke, dflt, paper);
}

/// Prints the table with a standard header and mirrors it to CSV.
inline void emit(const Table& table, const std::string& experiment_id,
                 const std::string& title, BenchScale scale) {
  std::cout << "\n=== " << experiment_id << ": " << title
            << " (scale: " << to_string(scale) << ") ===\n";
  table.print(std::cout, experiment_id);
  if (!csv_dir().empty()) {
    table.write_csv(csv_dir(), experiment_id);
  }
}

/// The n-sweep used by most experiments, by scale.
inline std::vector<std::uint32_t> n_sweep(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke: return {128, 256};
    case BenchScale::kPaper: return {256, 1024, 4096, 16384};
    case BenchScale::kDefault: break;
  }
  return {256, 1024, 4096};
}

}  // namespace rbb::bench
