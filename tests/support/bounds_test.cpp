// Tests for the analytic bounds and exact probabilities.
#include "support/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rbb {
namespace {

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogBinomialCoefficient, KnownValues) {
  EXPECT_NEAR(log_binomial_coefficient(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(log_binomial_coefficient(10, 5), std::log(252.0), 1e-10);
  EXPECT_NEAR(log_binomial_coefficient(7, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial_coefficient(7, 7), 0.0, 1e-12);
  EXPECT_THROW((void)log_binomial_coefficient(3, 4), std::invalid_argument);
}

TEST(BinomialPmf, SumsToOne) {
  for (const double p : {0.1, 0.5, 0.9}) {
    double sum = 0.0;
    for (std::uint64_t k = 0; k <= 20; ++k) sum += binomial_pmf(20, p, k);
    EXPECT_NEAR(sum, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 1.0, 4), 0.0);
}

TEST(BinomialPmf, MatchesDirectComputation) {
  // Bin(4, 0.5) pmf: 1/16, 4/16, 6/16, 4/16, 1/16.
  EXPECT_NEAR(binomial_pmf(4, 0.5, 0), 1.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 6.0 / 16, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 4), 1.0 / 16, 1e-12);
}

TEST(BinomialUpperTail, BasicProperties) {
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.5, 11), 0.0);
  // P(X >= 5) for Bin(10, 0.5) = 0.623...
  EXPECT_NEAR(binomial_upper_tail(10, 0.5, 5), 0.623046875, 1e-9);
  // Monotone decreasing in k.
  double prev = 1.0;
  for (std::uint64_t k = 0; k <= 10; ++k) {
    const double tail = binomial_upper_tail(10, 0.3, k);
    EXPECT_LE(tail, prev + 1e-12);
    prev = tail;
  }
}

TEST(ChernoffBounds, MatchAppendixFormulas) {
  // Eq. (6): exp(-delta^2 mu / 2); eq. (7): exp(-delta^2 mu / 3).
  EXPECT_NEAR(chernoff_lower_bound(100.0, 0.5), std::exp(-0.25 * 100.0 / 2.0),
              1e-12);
  EXPECT_NEAR(chernoff_upper_bound(100.0, 0.5), std::exp(-0.25 * 100.0 / 3.0),
              1e-12);
  EXPECT_THROW((void)chernoff_lower_bound(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)chernoff_upper_bound(10.0, 1.0), std::invalid_argument);
}

TEST(ChernoffBounds, UpperBoundsActualBinomialTail) {
  // The Chernoff bound must dominate the exact tail it bounds:
  // X ~ Bin(n, p), P(X >= (1+delta) np) <= chernoff_upper_bound(np, delta).
  const std::uint64_t n = 200;
  const double p = 0.25;
  const double mu = static_cast<double>(n) * p;
  for (const double delta : {0.2, 0.5, 0.9}) {
    const auto k = static_cast<std::uint64_t>(std::ceil((1.0 + delta) * mu));
    EXPECT_LE(binomial_upper_tail(n, p, k),
              chernoff_upper_bound(mu, delta) + 1e-12)
        << "delta=" << delta;
  }
}

TEST(ZChainTailBound, Lemma5Values) {
  EXPECT_DOUBLE_EQ(zchain_tail_bound(0.0), 1.0);
  EXPECT_NEAR(zchain_tail_bound(144.0), std::exp(-1.0), 1e-12);
  EXPECT_GT(zchain_tail_bound(100.0), zchain_tail_bound(200.0));
}

TEST(SqrtTBound, Scales) {
  EXPECT_DOUBLE_EQ(sqrt_t_bound(100.0), 10.0);
  EXPECT_DOUBLE_EQ(sqrt_t_bound(100.0, 2.0), 20.0);
}

TEST(OneshotAsymptotic, GrowsSlowly) {
  const double v1024 = oneshot_max_load_asymptotic(1024);
  const double v65536 = oneshot_max_load_asymptotic(65536);
  EXPECT_GT(v65536, v1024);
  // log n / log log n at n = 1024: 6.93 / 1.936 = ~3.58.
  EXPECT_NEAR(v1024, std::log(1024.0) / std::log(std::log(1024.0)), 1e-12);
  EXPECT_THROW((void)oneshot_max_load_asymptotic(2), std::invalid_argument);
}

TEST(CouponCollector, KnownSmallValues) {
  // n = 1: 1.  n = 2: 2 * (1 + 1/2) = 3.
  EXPECT_NEAR(coupon_collector_mean(1), 1.0, 1e-12);
  EXPECT_NEAR(coupon_collector_mean(2), 3.0, 1e-12);
  // Asymptotically n ln n + gamma n + 1/2.
  const double n = 1000.0;
  EXPECT_NEAR(coupon_collector_mean(1000),
              n * std::log(n) + 0.5772156649 * n + 0.5, 1.0);
}

TEST(ParallelCoverScale, MatchesDefinition) {
  EXPECT_NEAR(parallel_cover_scale(1024), 1024.0 * 10.0 * 10.0, 1e-9);
}

TEST(Log2n, Basics) {
  EXPECT_DOUBLE_EQ(log2n(1), 0.0);
  EXPECT_DOUBLE_EQ(log2n(2), 1.0);
  EXPECT_DOUBLE_EQ(log2n(1024), 10.0);
  EXPECT_THROW((void)log2n(0), std::invalid_argument);
}

}  // namespace
}  // namespace rbb
