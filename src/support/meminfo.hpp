// Process memory introspection for the perf experiments.
#pragma once

#include <cstdint>

namespace rbb {

/// Peak resident set size of the current process in bytes (Linux VmHWM
/// from /proc/self/status), or 0 where the platform does not expose
/// it.  Informational only: callers must treat 0 as "unavailable",
/// never as "no memory used".
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

}  // namespace rbb
