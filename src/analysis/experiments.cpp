#include "analysis/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "baselines/independent_walks.hpp"
#include "baselines/jackson.hpp"
#include "baselines/oneshot.hpp"
#include "baselines/repeated_dchoices.hpp"
#include "baselines/threshold.hpp"
#include "core/mixed_process.hpp"
#include "core/process.hpp"
#include "par/sharded_mixed.hpp"
#include "coupling/coupling.hpp"
#include "engine/engine.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"
#include "par/sharded_variants.hpp"
#include "support/bounds.hpp"
#include "support/thread_pool.hpp"
#include "tetris/tetris.hpp"
#include "tetris/leaky.hpp"
#include "tetris/zchain.hpp"
#include "traversal/traversal.hpp"

namespace rbb {
namespace {

/// Expands a load configuration into token positions (bin u repeated
/// q_u times), preserving bin order.
std::vector<std::uint32_t> config_to_positions(const LoadConfig& q) {
  std::vector<std::uint32_t> pos;
  pos.reserve(total_balls(q));
  for (std::uint32_t u = 0; u < q.size(); ++u) {
    for (std::uint32_t j = 0; j < q[u]; ++j) pos.push_back(u);
  }
  return pos;
}

/// The one place that seeds a sharded load kernel for trial-level
/// Monte-Carlo: a counter key mirroring CounterRng(seed, trial) and the
/// trial plan's per-instance thread share (1 under the legacy fan-out,
/// where the round is inline anyway; see the Backend doc comment).
/// run_stability's per-process switch and with_load_kernel below both
/// route through this, so the convention cannot diverge between
/// experiments.
par::ShardedRepeatedBallsProcess make_sharded_load(LoadConfig config,
                                                   std::uint64_t seed,
                                                   std::uint32_t trial,
                                                   std::uint32_t shard_size,
                                                   unsigned threads = 1) {
  return par::ShardedRepeatedBallsProcess(
      std::move(config), mix64(seed, trial),
      par::ShardedOptions{threads, shard_size});
}

/// Calls `fn` with a load-kernel process factory for the requested
/// backend -- the seq/sharded dispatch shared by the drivers whose
/// only process is the load kernel (convergence, empty bins;
/// run_stability routes its kRepeated case through make_sharded_load
/// directly because it also switches over other processes).  The
/// factory signature is factory(config, trial, rng) -> SimProcess; the
/// initial configuration always comes from the trial's xoshiro
/// substream, so the two backends start from identical configurations
/// and differ only in the in-round randomness.
template <typename Fn>
void with_load_kernel(Backend backend, std::uint64_t seed,
                      std::uint32_t shard_size, Fn&& fn,
                      unsigned threads = 1) {
  if (backend == Backend::kSharded) {
    fn([seed, shard_size, threads](LoadConfig config, std::uint32_t trial,
                                   Rng&) {
      return make_sharded_load(std::move(config), seed, trial, shard_size,
                               threads);
    });
  } else {
    fn([](LoadConfig config, std::uint32_t, Rng& rng) {
      return RepeatedBallsProcess(std::move(config), rng);
    });
  }
}

}  // namespace

StabilityResult run_stability(const StabilityParams& params) {
  if (params.n < 2) throw std::invalid_argument("run_stability: n < 2");
  if (params.trials == 0 || params.rounds == 0) {
    throw std::invalid_argument("run_stability: trials/rounds == 0");
  }
  const std::uint64_t balls = params.balls == 0 ? params.n : params.balls;
  if (params.backend == Backend::kSharded) {
    if (params.graph != nullptr) {
      throw std::invalid_argument(
          "run_stability: the sharded backend is clique-only");
    }
    if (params.process != StabilityProcess::kRepeated &&
        params.process != StabilityProcess::kRepeatedDChoice &&
        params.process != StabilityProcess::kThreshold) {
      throw std::invalid_argument(
          "run_stability: no sharded instantiation for this process");
    }
  }
  std::vector<double> window_max(params.trials);
  std::vector<double> final_max(params.trials);
  std::vector<double> min_empty(params.trials);

  for_each_trial(
      params.trials, params.seed, params.plan,
      [&](std::uint32_t trial, Rng& rng) {
        LoadConfig config = make_config(params.start, params.n, balls, rng);
        WindowMaxLoad wmax;
        MinEmptyFraction memp;
        const auto window = [&](auto process) {
          Engine engine(std::move(process));
          engine.run_rounds(params.rounds, wmax, memp);
        };
        const bool sharded = params.backend == Backend::kSharded;
        switch (params.process) {
          case StabilityProcess::kRepeated:
            if (sharded) {
              window(make_sharded_load(std::move(config), params.seed, trial,
                                       params.shard_size,
                                       params.plan.process_threads));
            } else {
              window(
                  RepeatedBallsProcess(std::move(config), params.graph, rng));
            }
            break;
          case StabilityProcess::kTetris:
            if (params.graph != nullptr) {
              throw std::invalid_argument(
                  "run_stability: Tetris is clique-only");
            }
            window(TetrisProcess(std::move(config), rng));
            break;
          case StabilityProcess::kRepeatedDChoice:
            if (params.graph != nullptr) {
              throw std::invalid_argument(
                  "run_stability: d-choices is clique-only");
            }
            if (sharded) {
              window(par::ShardedDChoicesProcess(
                  std::move(config), params.choices, mix64(params.seed, trial),
                  par::ShardedOptions{params.plan.process_threads,
                                      params.shard_size}));
            } else {
              window(RepeatedDChoicesProcess(std::move(config), params.choices,
                                             rng));
            }
            break;
          case StabilityProcess::kIndependent:
            window(IndependentWalksProcess(
                params.n, config_to_positions(config), params.graph, rng));
            break;
          case StabilityProcess::kThreshold: {
            if (params.graph != nullptr) {
              throw std::invalid_argument(
                  "run_stability: threshold allocation is clique-only");
            }
            // Default accept bound: one above the mean load, so the
            // rule bites exactly when a bin is above average.
            const load_t accept =
                params.threshold != 0
                    ? params.threshold
                    : static_cast<load_t>((balls + params.n - 1) / params.n +
                                          1);
            if (sharded) {
              window(par::ShardedThresholdProcess(
                  std::move(config), accept, params.choices,
                  mix64(params.seed, trial),
                  par::ShardedOptions{params.plan.process_threads,
                                      params.shard_size}));
            } else {
              window(ThresholdProcess(std::move(config), accept,
                                      params.choices, rng));
            }
            break;
          }
        }
        window_max[trial] = static_cast<double>(wmax.window_max);
        final_max[trial] = static_cast<double>(wmax.final_max);
        min_empty[trial] = memp.min_fraction;
      },
      params.pool);

  StabilityResult result;
  const double legit_threshold = params.beta * log2n(params.n);
  std::uint32_t legit = 0;
  for (std::uint32_t t = 0; t < params.trials; ++t) {
    result.window_max.add(window_max[t]);
    result.final_max.add(final_max[t]);
    result.min_empty_fraction.add(min_empty[t]);
    if (window_max[t] <= legit_threshold) ++legit;
  }
  result.legit_window_fraction =
      static_cast<double>(legit) / static_cast<double>(params.trials);
  result.overall_max = static_cast<std::uint32_t>(result.window_max.max());
  result.per_trial_window_max = std::move(window_max);
  return result;
}

ConvergenceResult run_convergence(const ConvergenceParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_convergence: n < 2");
  if (p.trials == 0) throw std::invalid_argument("run_convergence: trials==0");
  const std::uint64_t cap = p.cap == 0 ? 64ull * p.n : p.cap;
  std::vector<double> rounds(p.trials, -1.0);

  // One measurement body; with_load_kernel supplies the backend's
  // process factory (the seq/sharded split lives in exactly one place).
  const std::uint64_t conv_balls = p.balls == 0 ? p.n : p.balls;
  with_load_kernel(
      p.backend, p.seed, p.shard_size,
      [&](auto factory) {
        for_each_trial(p.trials, p.seed, p.plan,
                       [&](std::uint32_t trial, Rng& rng) {
                         LoadConfig config =
                             make_config(p.start, p.n, conv_balls, rng);
                         Engine engine(factory(std::move(config), trial, rng));
                         const EngineResult r = engine.run(
                             cap, UntilLegitimate{p.beta * log2n(p.n)},
                             NoFaults{});
                         if (r.goal_reached) {
                           rounds[trial] = static_cast<double>(r.rounds);
                         }
                       });
      },
      p.plan.process_threads);

  ConvergenceResult result;
  for (std::uint32_t t = 0; t < p.trials; ++t) {
    if (rounds[t] < 0) {
      ++result.timeouts;
      continue;
    }
    result.rounds_to_legitimate.add(rounds[t]);
    result.normalized.add(rounds[t] / static_cast<double>(p.n));
  }
  return result;
}

EmptyBinsResult run_empty_bins(const EmptyBinsParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_empty_bins: n < 2");
  if (p.trials == 0 || p.rounds == 0) {
    throw std::invalid_argument("run_empty_bins: trials/rounds == 0");
  }
  std::vector<double> min_frac(p.trials);
  std::vector<double> mean_frac(p.trials);

  const std::uint64_t eb_balls = p.balls == 0 ? p.n : p.balls;
  with_load_kernel(p.backend, p.seed, 0, [&](auto factory) {
    for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
      LoadConfig config = make_config(p.start, p.n, eb_balls, rng);
      Engine engine(factory(std::move(config), trial, rng));
      MinEmptyFraction lo;
      MeanEmptyFraction mean;
      engine.run_rounds(p.rounds, lo, mean);
      min_frac[trial] = lo.min_fraction;
      mean_frac[trial] = mean.mean();
    });
  });

  EmptyBinsResult result;
  for (std::uint32_t t = 0; t < p.trials; ++t) {
    result.min_fraction.add(min_frac[t]);
    result.mean_fraction.add(mean_frac[t]);
    if (min_frac[t] < 0.25) ++result.below_quarter;
  }
  return result;
}

MixedResult run_mixed(const MixedParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_mixed: n < 2");
  if (p.trials == 0) throw std::invalid_argument("run_mixed: trials == 0");
  const std::uint64_t rounds = p.rounds == 0 ? 4ull * p.n : p.rounds;
  // The scenario is deterministic in its parameters (round-robin deal,
  // largest-remainder class split); trials differ only in the in-round
  // randomness, exactly like the m = n drivers.
  const MixedSpec spec =
      make_mixed_spec(p.n, p.ball_ratio, p.weights, p.bin_profile);
  const double initial_balls = static_cast<double>(spec.balls);

  struct TrialOut {
    double window_max = 0, final_max = 0, window_max_weighted = 0;
    double mean_empty = 0, max_util = 0, dropped = 0;
  };
  std::vector<TrialOut> out(p.trials);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    const auto measure = [&](auto process) {
      Engine engine(std::move(process));
      WindowMaxLoad wmax;
      WindowMaxWeightedLoad wweighted;
      MeanEmptyFraction mean_empty;
      WindowMaxUtilization util;
      engine.run_rounds(rounds, wmax, wweighted, mean_empty, util);
      out[trial] = {static_cast<double>(wmax.window_max),
                    static_cast<double>(wmax.final_max),
                    static_cast<double>(wweighted.window_max),
                    mean_empty.mean(), util.window_max,
                    static_cast<double>(engine.process().dropped_balls()) /
                        initial_balls};
    };
    if (p.backend == Backend::kSharded) {
      measure(par::ShardedMixedProcess(spec, mix64(p.seed, trial),
                                       par::ShardedOptions{1, p.shard_size}));
    } else {
      measure(MixedProcess(spec, rng));
    }
  });

  MixedResult result;
  for (std::uint32_t t = 0; t < p.trials; ++t) {
    result.window_max.add(out[t].window_max);
    result.final_max.add(out[t].final_max);
    result.window_max_weighted.add(out[t].window_max_weighted);
    result.mean_empty_fraction.add(out[t].mean_empty);
    result.max_utilization.add(out[t].max_util);
    result.dropped_fraction.add(out[t].dropped);
  }
  return result;
}

CouplingResult run_coupling(const CouplingParams& p) {
  if (p.n < 4) throw std::invalid_argument("run_coupling: n < 4");
  if (p.trials == 0 || p.rounds == 0) {
    throw std::invalid_argument("run_coupling: trials/rounds == 0");
  }
  struct TrialOut {
    double original_max = 0;
    double tetris_max = 0;
    std::uint64_t case_two = 0;
    std::uint64_t violations = 0;
  };
  std::vector<TrialOut> out(p.trials);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    LoadConfig config = make_config(p.start, p.n, p.n, rng);
    // Lemma 3 requires a start with >= n/4 empty bins; as in Theorem 1's
    // proof, run one round of the original process first if needed.  The
    // warm-up and the coupled run get split sub-streams so the coupled
    // rounds do not replay the warm-up's randomness.
    if (empty_bins(config) < p.n / 4) {
      RepeatedBallsProcess warmup(std::move(config), rng.split());
      warmup.step();
      config = warmup.loads();
    }
    CoupledProcesses coupled(std::move(config), rng.split());
    coupled.run(p.rounds);
    out[trial] = TrialOut{
        static_cast<double>(coupled.original_running_max()),
        static_cast<double>(coupled.tetris_running_max()),
        coupled.case_two_rounds(), coupled.violation_rounds()};
  });

  CouplingResult result;
  for (const TrialOut& o : out) {
    result.original_window_max.add(o.original_max);
    result.tetris_window_max.add(o.tetris_max);
    result.total_case_two_rounds += o.case_two;
    result.total_violation_rounds += o.violations;
    if (o.violations > 0) {
      ++result.trials_with_violation;
    } else {
      ++result.trials_dominated_throughout;
    }
  }
  return result;
}

TetrisDrainResult run_tetris_drain(const TetrisDrainParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_tetris_drain: n < 2");
  if (p.trials == 0) throw std::invalid_argument("run_tetris_drain: trials==0");
  const std::uint64_t cap = p.cap == 0 ? 64ull * p.n : p.cap;
  std::vector<double> drain(p.trials, -1.0);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    LoadConfig config = make_config(p.start, p.n, p.n, rng);
    Engine engine(TetrisProcess(std::move(config), rng));
    const EngineResult r = engine.run(cap, UntilAllEmptiedOnce{}, NoFaults{});
    if (r.goal_reached) {
      drain[trial] =
          static_cast<double>(engine.process().max_first_empty_round());
    }
  });

  TetrisDrainResult result;
  for (std::uint32_t t = 0; t < p.trials; ++t) {
    if (drain[t] < 0) {
      ++result.timeouts;
      continue;
    }
    result.max_first_empty.add(drain[t]);
    result.normalized.add(drain[t] / static_cast<double>(p.n));
    if (drain[t] > 5.0 * static_cast<double>(p.n)) ++result.exceeded_5n;
  }
  return result;
}

ZChainTailResult run_zchain_tail(const ZChainTailParams& p) {
  if (p.trials == 0 || p.ts.empty()) {
    throw std::invalid_argument("run_zchain_tail: trials/ts empty");
  }
  if (!std::is_sorted(p.ts.begin(), p.ts.end())) {
    throw std::invalid_argument("run_zchain_tail: ts must be sorted");
  }
  const std::uint64_t cap = p.ts.back();
  std::vector<double> taus(p.trials);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    const std::uint64_t tau = sample_absorption_time(p.n, p.start, cap, rng);
    taus[trial] = tau == kZChainNotAbsorbed
                      ? static_cast<double>(cap) + 1.0
                      : static_cast<double>(tau);
  });

  ZChainTailResult result;
  result.empirical_tail.assign(p.ts.size(), 0.0);
  for (std::uint32_t trial = 0; trial < p.trials; ++trial) {
    const double tau = taus[trial];
    if (tau > static_cast<double>(cap)) {
      ++result.timeouts;
    } else {
      result.absorption_time.add(tau);
    }
    for (std::size_t i = 0; i < p.ts.size(); ++i) {
      if (tau > static_cast<double>(p.ts[i])) result.empirical_tail[i] += 1.0;
    }
  }
  for (double& frac : result.empirical_tail) {
    frac /= static_cast<double>(p.trials);
  }
  return result;
}

CoverTimeResult run_cover_time(const CoverTimeParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_cover_time: n < 2");
  if (p.trials == 0) throw std::invalid_argument("run_cover_time: trials==0");
  if (p.backend == Backend::kSharded &&
      (p.graph != nullptr || p.fault_period != 0)) {
    throw std::invalid_argument(
        "run_cover_time: the sharded token core is clique-only and "
        "fault-free; use the sequential backend");
  }
  struct TrialOut {
    double cover = -1.0;
    double first = 0;
    double max_load = 0;
    double single = -1.0;
  };
  std::vector<TrialOut> out(p.trials);
  const std::uint64_t cap =
      p.max_rounds != 0 ? p.max_rounds
                        : static_cast<std::uint64_t>(
                              64.0 * parallel_cover_scale(p.n));

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    TrialOut& o = out[trial];
    if (p.backend == Backend::kSharded) {
      // The visit-tracking token core (threads = 1: the trial fan-out
      // owns the cores; see the Backend doc comment).
      par::ShardedTokenProcess proc(
          p.n, make_token_placement(p.placement, p.n, p.n, rng),
          mix64(p.seed, trial), par::ShardedOptions{1, 0},
          par::TokenOptions{.track_visits = true, .policy = p.policy});
      std::uint32_t wmax = 0;
      while (!proc.all_covered() && proc.round() < cap) {
        proc.step();
        wmax = std::max(wmax, proc.max_load());
      }
      if (proc.all_covered()) {
        o.cover = static_cast<double>(proc.global_cover_time());
        std::uint64_t first = proc.cover_round(0);
        for (std::uint32_t i = 1; i < proc.token_count(); ++i) {
          first = std::min(first, proc.cover_round(i));
        }
        o.first = static_cast<double>(first);
      }
      o.max_load = static_cast<double>(wmax);
    } else {
      TraversalParams tp;
      tp.n = p.n;
      tp.policy = p.policy;
      tp.graph = p.graph;
      tp.max_rounds = p.max_rounds;
      tp.placement = p.placement;
      tp.fault_period = p.fault_period;
      tp.fault_strategy = p.fault_strategy;
      const TraversalResult r = run_traversal(tp, mix64(p.seed, trial));
      if (r.cover_time.has_value()) {
        o.cover = static_cast<double>(*r.cover_time);
        o.first = static_cast<double>(r.first_token_covered);
      }
      o.max_load = static_cast<double>(r.max_load_seen);
    }
    const auto single = single_walk_cover_time(p.n, p.graph, cap, rng);
    if (single.has_value()) o.single = static_cast<double>(*single);
  });

  CoverTimeResult result;
  const double scale = parallel_cover_scale(p.n);
  for (const TrialOut& o : out) {
    if (o.cover < 0) {
      ++result.timeouts;
    } else {
      result.cover_time.add(o.cover);
      result.normalized.add(o.cover / scale);
      result.first_token.add(o.first);
    }
    result.max_load_seen.add(o.max_load);
    if (o.single >= 0) result.single_walk.add(o.single);
  }
  return result;
}

NegAssocResult run_negative_association(std::uint64_t trials,
                                        std::uint64_t seed) {
  if (trials == 0) {
    throw std::invalid_argument("run_negative_association: trials == 0");
  }
  constexpr std::uint32_t kBatches = 256;
  struct Counts {
    std::uint64_t x1_zero = 0;
    std::uint64_t x2_zero = 0;
    std::uint64_t both_zero = 0;
    std::uint64_t trials = 0;
  };
  std::vector<Counts> batches(kBatches);

  for_each_trial(kBatches, seed, [&](std::uint32_t batch, Rng& rng) {
    Counts& c = batches[batch];
    const std::uint64_t quota =
        trials / kBatches + (batch < trials % kBatches ? 1 : 0);
    for (std::uint64_t i = 0; i < quota; ++i) {
      // n = 2, start (1, 1).  X_t = arrivals at bin 0 in round t,
      // recoverable from the load update: X_t = Q0(t) - max(Q0(t-1)-1, 0).
      // split() advances the batch rng so trials are independent.
      RepeatedBallsProcess proc(LoadConfig{1, 1}, rng.split());
      const std::uint32_t q0_before_1 = proc.loads()[0];
      proc.step();
      const std::uint32_t q0_after_1 = proc.loads()[0];
      const std::uint32_t x1 =
          q0_after_1 - (q0_before_1 > 0 ? q0_before_1 - 1 : 0);
      proc.step();
      const std::uint32_t q0_after_2 = proc.loads()[0];
      const std::uint32_t x2 =
          q0_after_2 - (q0_after_1 > 0 ? q0_after_1 - 1 : 0);
      if (x1 == 0) ++c.x1_zero;
      if (x2 == 0) ++c.x2_zero;
      if (x1 == 0 && x2 == 0) ++c.both_zero;
      ++c.trials;
    }
  });

  Counts total;
  for (const Counts& c : batches) {
    total.x1_zero += c.x1_zero;
    total.x2_zero += c.x2_zero;
    total.both_zero += c.both_zero;
    total.trials += c.trials;
  }
  NegAssocResult result;
  result.trials = total.trials;
  const double denom = static_cast<double>(total.trials);
  result.p_x1_zero = static_cast<double>(total.x1_zero) / denom;
  result.p_x2_zero = static_cast<double>(total.x2_zero) / denom;
  result.p_both_zero = static_cast<double>(total.both_zero) / denom;
  return result;
}

SqrtTResult run_sqrt_t(const SqrtTParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_sqrt_t: n < 2");
  if (p.trials == 0 || p.checkpoints.empty()) {
    throw std::invalid_argument("run_sqrt_t: trials/checkpoints empty");
  }
  if (!std::is_sorted(p.checkpoints.begin(), p.checkpoints.end())) {
    throw std::invalid_argument("run_sqrt_t: checkpoints must be sorted");
  }
  const std::size_t k = p.checkpoints.size();
  std::vector<std::vector<double>> per_trial(p.trials,
                                             std::vector<double>(k, 0.0));

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    LoadConfig config = make_config(p.start, p.n, p.n, rng);
    Engine engine(RepeatedBallsProcess(std::move(config), rng));
    RunningMaxAtCheckpoints running(p.checkpoints);
    engine.run_rounds(p.checkpoints.back(), running);
    for (std::size_t i = 0; i < k; ++i) {
      per_trial[trial][i] = static_cast<double>(running.values()[i]);
    }
  });

  SqrtTResult result;
  result.running_max_mean.assign(k, 0.0);
  result.running_max_worst.assign(k, 0);
  for (std::uint32_t trial = 0; trial < p.trials; ++trial) {
    for (std::size_t i = 0; i < k; ++i) {
      result.running_max_mean[i] += per_trial[trial][i];
      result.running_max_worst[i] =
          std::max(result.running_max_worst[i],
                   static_cast<std::uint32_t>(per_trial[trial][i]));
    }
  }
  for (double& m : result.running_max_mean) {
    m /= static_cast<double>(p.trials);
  }
  return result;
}

OneShotResult run_oneshot(const OneShotParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_oneshot: n < 2");
  if (p.trials == 0) throw std::invalid_argument("run_oneshot: trials == 0");
  const std::uint64_t balls = p.balls == 0 ? p.n : p.balls;
  std::vector<double> maxima(p.trials);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    std::uint32_t m = 0;
    if (p.always_go_left) {
      m = dleft_max_load(balls, p.n, p.d, rng);
    } else if (p.d <= 1) {
      m = oneshot_max_load(balls, p.n, rng);
    } else {
      m = dchoice_max_load(balls, p.n, p.d, rng);
    }
    maxima[trial] = static_cast<double>(m);
  });

  OneShotResult result;
  for (const double m : maxima) result.max_load.add(m);
  return result;
}

LeakyResult run_leaky(const LeakyParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_leaky: n < 2");
  if (p.trials == 0 || p.rounds == 0) {
    throw std::invalid_argument("run_leaky: trials/rounds == 0");
  }
  struct TrialOut {
    double window_max = 0;
    double mean_total = 0;
    double mean_empty = 0;
  };
  std::vector<TrialOut> out(p.trials);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    LoadConfig config =
        make_config(InitialConfig::kOnePerBin, p.n, p.n, rng);
    const auto measure = [&](auto process) {
      Engine engine(std::move(process));
      engine.run_rounds(p.burn_in);
      WindowMaxLoad wmax;
      MeanTotalBallsPerBin total;
      MeanEmptyFraction empty;
      engine.run_rounds(p.rounds, wmax, total, empty);
      out[trial] = TrialOut{static_cast<double>(wmax.window_max),
                            total.mean(), empty.mean()};
    };
    if (p.backend == Backend::kSharded) {
      measure(par::ShardedLeakyBinsProcess(std::move(config), p.lambda,
                                           mix64(p.seed, trial),
                                           par::ShardedOptions{1, 0}));
    } else {
      measure(LeakyBinsProcess(std::move(config), p.lambda, rng));
    }
  });

  LeakyResult result;
  for (const TrialOut& o : out) {
    result.window_max.add(o.window_max);
    result.mean_total_per_bin.add(o.mean_total);
    result.mean_empty_fraction.add(o.mean_empty);
  }
  return result;
}

JacksonResult run_jackson(const JacksonParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_jackson: n < 2");
  if (p.trials == 0) throw std::invalid_argument("run_jackson: trials == 0");
  const std::uint64_t customers = p.customers == 0 ? p.n : p.customers;
  const double horizon =
      p.horizon > 0 ? p.horizon : 20.0 * static_cast<double>(p.n);
  struct TrialOut {
    double running_max = 0;
    double final_max = 0;
    double rate = 0;
  };
  std::vector<TrialOut> out(p.trials);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    LoadConfig config =
        make_config(InitialConfig::kOnePerBin, p.n, customers, rng);
    ClosedJacksonNetwork net(std::move(config), rng);
    net.run_until(horizon);
    out[trial] = TrialOut{static_cast<double>(net.running_max_load()),
                          static_cast<double>(net.max_load()),
                          static_cast<double>(net.events()) / horizon};
  });

  JacksonResult result;
  for (const TrialOut& o : out) {
    result.running_max.add(o.running_max);
    result.final_max.add(o.final_max);
    result.events_per_unit_time.add(o.rate);
  }
  return result;
}

ProgressResult run_progress(const ProgressParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_progress: n < 2");
  if (p.trials == 0) throw std::invalid_argument("run_progress: trials == 0");
  const std::uint64_t rounds = p.rounds == 0 ? 8ull * p.n : p.rounds;
  struct TrialOut {
    double min_progress = 0;
    double mean_progress = 0;
  };
  std::vector<TrialOut> out(p.trials);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    const auto measure = [&](auto process) {
      Engine engine(std::move(process));
      engine.run_rounds(rounds);
      const auto& proc = engine.process();
      double sum = 0.0;
      for (std::uint32_t i = 0; i < p.n; ++i) {
        sum += static_cast<double>(proc.progress(i));
      }
      out[trial] = TrialOut{static_cast<double>(proc.min_progress()),
                            sum / static_cast<double>(p.n)};
    };
    if (p.backend == Backend::kSharded) {
      measure(par::ShardedTokenProcess(p.n, identity_placement(p.n),
                                       mix64(p.seed, trial),
                                       par::ShardedOptions{1, 0},
                                       par::TokenOptions{.policy = p.policy}));
    } else {
      TokenProcess::Options options;
      options.policy = p.policy;
      options.track_visits = false;
      measure(TokenProcess(p.n, identity_placement(p.n), options, rng));
    }
  });

  ProgressResult result;
  const double t = static_cast<double>(rounds);
  for (const TrialOut& o : out) {
    result.min_progress.add(o.min_progress);
    result.min_progress_normalized.add(o.min_progress * log2n(p.n) / t);
    result.mean_progress.add(o.mean_progress / t);
  }
  return result;
}

DelayResult run_delays(const DelayParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_delays: n < 2");
  if (p.trials == 0) throw std::invalid_argument("run_delays: trials == 0");
  const std::uint64_t rounds = p.rounds == 0 ? 16ull * p.n : p.rounds;
  std::vector<Histogram> per_trial(p.trials);
  std::vector<double> max_delay(p.trials, 0.0);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    TokenProcess::Options options;
    options.policy = p.policy;
    options.track_visits = false;
    options.track_delays = true;
    Engine engine(
        TokenProcess(p.n, identity_placement(p.n), options, rng));
    engine.run_rounds(rounds);
    per_trial[trial] = engine.process().delay_histogram();
    max_delay[trial] = static_cast<double>(per_trial[trial].max_value());
  });

  DelayResult result;
  for (std::uint32_t t = 0; t < p.trials; ++t) {
    result.delays.merge(per_trial[t]);
    result.max_delay.add(max_delay[t]);
  }
  result.mean_delay = result.delays.mean();
  result.p50 = result.delays.quantile(0.50);
  result.p99 = result.delays.quantile(0.99);
  result.p999 = result.delays.quantile(0.999);
  return result;
}

LoadProfileResult run_load_profile(const LoadProfileParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_load_profile: n < 2");
  if (p.trials == 0) {
    throw std::invalid_argument("run_load_profile: trials == 0");
  }
  const std::uint64_t burn_in = p.burn_in == 0 ? 4ull * p.n : p.burn_in;
  const std::uint32_t samples = p.samples == 0 ? 50 : p.samples;
  const std::uint64_t gap =
      p.sample_gap == 0 ? std::max<std::uint64_t>(1, p.n / 4) : p.sample_gap;
  std::vector<Histogram> per_trial(p.trials);

  for_each_trial(p.trials, p.seed, [&](std::uint32_t trial, Rng& rng) {
    LoadConfig config =
        make_config(InitialConfig::kOnePerBin, p.n, p.n, rng);
    Histogram& h = per_trial[trial];
    // Round-synchronous processes share one chunked sampling loop; the
    // continuous-time Jackson network keeps its event clock.
    const auto sample_profile = [&](auto process) {
      Engine engine(std::move(process));
      engine.run_rounds(burn_in);
      for (std::uint32_t s = 0; s < samples; ++s) {
        engine.run_rounds(gap);
        h.merge(occupancy_histogram(engine_loads(engine.process())));
      }
    };
    switch (p.process) {
      case ProfileProcess::kRepeated:
        sample_profile(RepeatedBallsProcess(std::move(config), rng));
        break;
      case ProfileProcess::kIndependent:
        sample_profile(IndependentWalksProcess(
            p.n, config_to_positions(config), nullptr, rng));
        break;
      case ProfileProcess::kTetris: {
        // Sequenced on purpose: make_config draws from `rng` before the
        // process copies it.
        LoadConfig start = make_config(InitialConfig::kRandom, p.n, p.n, rng);
        sample_profile(TetrisProcess(std::move(start), rng));
        break;
      }
      case ProfileProcess::kJackson: {
        ClosedJacksonNetwork net(std::move(config), rng);
        net.run_until(static_cast<double>(burn_in));
        double now = static_cast<double>(burn_in);
        for (std::uint32_t s = 0; s < samples; ++s) {
          now += static_cast<double>(gap);
          net.run_until(now);
          h.merge(occupancy_histogram(net.loads()));
        }
        break;
      }
    }
  });

  LoadProfileResult result;
  for (const Histogram& h : per_trial) result.profile.merge(h);
  const std::uint64_t max_load = result.profile.max_value();
  result.tail.reserve(max_load + 1);
  for (std::uint64_t k = 0; k <= max_load; ++k) {
    result.tail.push_back(result.profile.tail_fraction(k));
  }
  return result;
}

MixingResult run_mixing(const MixingParams& p) {
  if (p.n < 2) throw std::invalid_argument("run_mixing: n < 2");
  if (p.trials == 0 || p.checkpoints.empty()) {
    throw std::invalid_argument("run_mixing: trials/checkpoints empty");
  }
  if (!std::is_sorted(p.checkpoints.begin(), p.checkpoints.end())) {
    throw std::invalid_argument("run_mixing: checkpoints must be sorted");
  }
  // positions[c][bin]: occurrences of token 0 at `bin` at checkpoint c.
  const std::size_t k = p.checkpoints.size();
  std::vector<std::vector<std::uint64_t>> positions(
      k, std::vector<std::uint64_t>(p.n, 0));
  std::mutex merge_mutex;

  // Track the worst-positioned token: queues order by id, so under FIFO
  // (and random) the highest id sits at the back of its start queue; under
  // LIFO the lowest id is buried deepest.
  const std::uint32_t tracked =
      p.policy == QueuePolicy::kLifo ? 0 : p.n - 1;

  /// Ad-hoc observer: the tracked token's bin at each checkpoint.
  struct TokenBinAtCheckpoints {
    const std::vector<std::uint64_t>& checkpoints;
    std::uint32_t token;
    std::vector<std::uint32_t> where;
    std::size_t next = 0;

    void observe(const RoundContext<TokenProcess>& ctx) {
      while (next < checkpoints.size() &&
             checkpoints[next] == ctx.round()) {
        where[next] = ctx.process().token_bin(token);
        ++next;
      }
    }
  };

  for_each_trial(p.trials, p.seed, [&](std::uint32_t /*trial*/, Rng& rng) {
    std::vector<std::uint32_t> placement =
        make_token_placement(p.placement, p.n, p.n, rng);
    TokenProcess::Options options;
    options.policy = p.policy;
    options.track_visits = false;
    Engine engine(
        TokenProcess(p.n, std::move(placement), options, rng.split()));
    TokenBinAtCheckpoints tracker{
        p.checkpoints, tracked, std::vector<std::uint32_t>(k, 0), 0};
    engine.run_rounds(p.checkpoints.back(), tracker);
    const std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t c = 0; c < k; ++c) ++positions[c][tracker.where[c]];
  });

  MixingResult result;
  result.tv_from_uniform.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    result.tv_from_uniform.push_back(
        total_variation_from_uniform(positions[c]));
  }
  // Noise floor: TV of an actually-uniform sampler with the same count.
  Rng noise_rng(p.seed, 0xf100);
  std::vector<std::uint64_t> uniform_counts(p.n, 0);
  for (std::uint32_t t = 0; t < p.trials; ++t) {
    ++uniform_counts[noise_rng.index(p.n)];
  }
  result.noise_floor = total_variation_from_uniform(uniform_counts);
  return result;
}

}  // namespace rbb
