#include "runner/result.hpp"

#include <cctype>
#include <sstream>
#include <utility>

namespace rbb::runner {

Table& ResultSet::add_table(std::string id, std::string title,
                            std::vector<std::string> headers) {
  return add_table(std::move(id), std::move(title), std::move(headers), {});
}

Table& ResultSet::add_table(std::string id, std::string title,
                            std::vector<std::string> headers,
                            std::vector<std::string> informational) {
  tables_.push_back(Entry{std::move(id), std::move(title),
                          Table(std::move(headers)),
                          std::move(informational)});
  return tables_.back().data;
}

void ResultSet::note(std::string text) { notes_.push_back(std::move(text)); }

void fill_meta_params(RunMeta& meta, const ParamValues& values) {
  meta.params.clear();
  for (const ParamSpec& spec : values.specs()) {
    meta.params.push_back(
        RunMeta::Param{spec.name, spec.type, values.text(spec.name)});
    if (spec.name == "seed") meta.seed = values.u64("seed");
  }
}

bool is_json_number(const std::string& text) {
  std::size_t i = 0;
  const std::size_t n = text.size();
  if (i < n && text[i] == '-') ++i;
  if (i >= n || std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
    return false;
  }
  if (text[i] == '0' && i + 1 < n &&
      std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0) {
    return false;  // leading zeros are not JSON
  }
  while (i < n && std::isdigit(static_cast<unsigned char>(text[i])) != 0) ++i;
  if (i < n && text[i] == '.') {
    ++i;
    if (i >= n || std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      return false;
    }
    while (i < n && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  }
  if (i < n && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
    if (i >= n || std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      return false;
    }
    while (i < n && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  }
  return i == n;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(ch >> 4) & 0xf];
          out += kHex[ch & 0xf];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

/// A cell / parameter value as a JSON scalar: numbers stay numbers,
/// everything else becomes a quoted string.
std::string json_scalar(const std::string& text) {
  if (is_json_number(text)) return text;
  return "\"" + json_escape(text) + "\"";
}

std::string json_param_value(const RunMeta::Param& param) {
  switch (param.type) {
    case ParamSpec::Type::kFlag:
      return param.value == "true" ? "true" : "false";
    case ParamSpec::Type::kU64:
    case ParamSpec::Type::kF64:
      if (is_json_number(param.value)) return param.value;
      break;  // e.g. "4." parses as a double but is not JSON; quote it
    case ParamSpec::Type::kString:
      break;
  }
  return "\"" + json_escape(param.value) + "\"";
}

}  // namespace

std::string to_json(const RunMeta& meta, const ResultSet& rs) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"rbb.result.v1\",\n";
  out << "  \"experiment\": \"" << json_escape(meta.experiment) << "\",\n";
  out << "  \"claim\": \"" << json_escape(meta.claim) << "\",\n";
  out << "  \"title\": \"" << json_escape(meta.title) << "\",\n";
  out << "  \"scale\": \"" << json_escape(meta.scale) << "\",\n";
  out << "  \"seed\": " << meta.seed << ",\n";
  out << "  \"git_rev\": \"" << json_escape(meta.git_rev) << "\",\n";
  out << "  \"wall_time_s\": " << format_double(meta.wall_seconds, 3)
      << ",\n";
  out << "  \"parallelism\": {\n";
  out << "    \"hardware_concurrency\": "
      << meta.parallelism.hardware_concurrency << ",\n";
  out << "    \"threads_requested\": " << meta.parallelism.threads_requested
      << ",\n";
  out << "    \"runnable_threads\": " << meta.parallelism.runnable_threads
      << ",\n";
  out << "    \"repeat\": " << meta.parallelism.repeat << "\n";
  out << "  },\n";
  out << "  \"params\": {";
  for (std::size_t i = 0; i < meta.params.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << json_escape(meta.params[i].name)
        << "\": " << json_param_value(meta.params[i]);
  }
  out << (meta.params.empty() ? "},\n" : "\n  },\n");
  if (meta.metrics.present) {
    out << "  \"metrics\": {\n";
    out << "    \"counters\": {";
    for (std::size_t i = 0; i < meta.metrics.counters.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n");
      out << "      \"" << json_escape(meta.metrics.counters[i].name)
          << "\": " << meta.metrics.counters[i].value;
    }
    out << (meta.metrics.counters.empty() ? "},\n" : "\n    },\n");
    out << "    \"phase_ns\": {";
    for (std::size_t i = 0; i < meta.metrics.phase_ns.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n");
      out << "      \"" << json_escape(meta.metrics.phase_ns[i].name)
          << "\": " << meta.metrics.phase_ns[i].value;
    }
    out << (meta.metrics.phase_ns.empty() ? "},\n" : "\n    },\n");
    out << "    \"barrier_wait_fraction\": "
        << format_double(meta.metrics.barrier_wait_fraction, 6) << ",\n";
    out << "    \"pipeline_fill_fraction\": "
        << format_double(meta.metrics.pipeline_fill_fraction, 6) << ",\n";
    out << "    \"effective_parallelism\": "
        << meta.metrics.effective_parallelism << "\n";
    out << "  },\n";
  }
  out << "  \"notes\": [";
  for (std::size_t i = 0; i < rs.notes().size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << json_escape(rs.notes()[i]) << "\"";
  }
  out << (rs.notes().empty() ? "],\n" : "\n  ],\n");
  out << "  \"tables\": [";
  bool first_table = true;
  for (const ResultSet::Entry& entry : rs.tables()) {
    out << (first_table ? "\n" : ",\n");
    first_table = false;
    out << "    {\n";
    out << "      \"id\": \"" << json_escape(entry.id) << "\",\n";
    out << "      \"title\": \"" << json_escape(entry.title) << "\",\n";
    out << "      \"columns\": [";
    const auto& headers = entry.data.headers();
    for (std::size_t c = 0; c < headers.size(); ++c) {
      if (c != 0) out << ", ";
      out << "\"" << json_escape(headers[c]) << "\"";
    }
    out << "],\n";
    if (!entry.informational.empty()) {
      out << "      \"informational\": [";
      for (std::size_t c = 0; c < entry.informational.size(); ++c) {
        if (c != 0) out << ", ";
        out << "\"" << json_escape(entry.informational[c]) << "\"";
      }
      out << "],\n";
    }
    out << "      \"rows\": [";
    const auto& rows = entry.data.rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      out << (r == 0 ? "\n" : ",\n");
      out << "        [";
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        if (c != 0) out << ", ";
        out << json_scalar(rows[r][c]);
      }
      out << "]";
    }
    out << (rows.empty() ? "]\n" : "\n      ]\n");
    out << "    }";
  }
  out << (rs.tables().empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

std::string to_csv(const RunMeta& meta, const ResultSet& rs) {
  std::ostringstream out;
  out << "# rbb.result.v1\n";
  out << "# experiment=" << meta.experiment << "\n";
  out << "# claim=" << meta.claim << "\n";
  out << "# title=" << meta.title << "\n";
  out << "# scale=" << meta.scale << "\n";
  out << "# seed=" << meta.seed << "\n";
  out << "# git_rev=" << meta.git_rev << "\n";
  out << "# wall_time_s=" << format_double(meta.wall_seconds, 3) << "\n";
  out << "# parallelism hardware_concurrency="
      << meta.parallelism.hardware_concurrency
      << " threads_requested=" << meta.parallelism.threads_requested
      << " runnable_threads=" << meta.parallelism.runnable_threads
      << " repeat=" << meta.parallelism.repeat << "\n";
  for (const RunMeta::Param& param : meta.params) {
    out << "# param " << param.name << "=" << param.value << "\n";
  }
  if (meta.metrics.present) {
    for (const RunMeta::Metric& m : meta.metrics.counters) {
      out << "# metric counter " << m.name << "=" << m.value << "\n";
    }
    for (const RunMeta::Metric& m : meta.metrics.phase_ns) {
      out << "# metric phase_ns " << m.name << "=" << m.value << "\n";
    }
    out << "# metric barrier_wait_fraction="
        << format_double(meta.metrics.barrier_wait_fraction, 6) << "\n";
    out << "# metric pipeline_fill_fraction="
        << format_double(meta.metrics.pipeline_fill_fraction, 6) << "\n";
    out << "# metric effective_parallelism="
        << meta.metrics.effective_parallelism << "\n";
  }
  for (const ResultSet::Entry& entry : rs.tables()) {
    out << "\n# table " << entry.id << ": " << entry.title << "\n";
    out << entry.data.csv();
  }
  if (!rs.notes().empty()) out << "\n";
  for (const std::string& note : rs.notes()) {
    out << "# note: " << note << "\n";
  }
  return out.str();
}

std::string to_text(const RunMeta& meta, const ResultSet& rs) {
  std::ostringstream out;
  for (const ResultSet::Entry& entry : rs.tables()) {
    out << "\n=== " << entry.id << ": " << entry.title
        << " (scale: " << meta.scale << ") ===\n";
    entry.data.print(out, entry.id);
  }
  for (const std::string& note : rs.notes()) {
    out << note << "\n";
  }
  if (meta.metrics.present) {
    out << "\n--- metrics (obs scrape) ---\n";
    for (const RunMeta::Metric& m : meta.metrics.counters) {
      if (m.value != 0) out << m.name << ": " << m.value << "\n";
    }
    for (const RunMeta::Metric& m : meta.metrics.phase_ns) {
      if (m.value != 0) out << m.name << "_ns: " << m.value << "\n";
    }
    out << "barrier_wait_fraction: "
        << format_double(meta.metrics.barrier_wait_fraction, 6) << "\n";
    out << "pipeline_fill_fraction: "
        << format_double(meta.metrics.pipeline_fill_fraction, 6) << "\n";
    out << "effective_parallelism: " << meta.metrics.effective_parallelism
        << "\n";
  }
  return out.str();
}

}  // namespace rbb::runner
