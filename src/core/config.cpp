#include "core/config.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "support/bounds.hpp"

namespace rbb {

LoadConfig make_config(InitialConfig kind, std::uint32_t bins,
                       std::uint64_t balls, Rng& rng) {
  if (bins == 0) throw std::invalid_argument("make_config: bins == 0");
  LoadConfig q(bins, 0);
  switch (kind) {
    case InitialConfig::kOnePerBin: {
      for (std::uint64_t i = 0; i < balls; ++i) {
        q[static_cast<std::uint32_t>(i % bins)]++;
      }
      break;
    }
    case InitialConfig::kAllInOne: {
      if (balls > UINT32_MAX) {
        throw std::invalid_argument("make_config: too many balls for one bin");
      }
      q[0] = static_cast<std::uint32_t>(balls);
      break;
    }
    case InitialConfig::kRandom: {
      for (std::uint64_t i = 0; i < balls; ++i) q[rng.index(bins)]++;
      break;
    }
    case InitialConfig::kHalfLoaded: {
      const std::uint32_t half = std::max<std::uint32_t>(1, bins / 2);
      for (std::uint64_t i = 0; i < balls; ++i) {
        q[static_cast<std::uint32_t>(i % half)]++;
      }
      break;
    }
    case InitialConfig::kGeometric: {
      // Bin k receives ceil(remaining / 2): loads m/2, m/4, ... -- an
      // exponentially skewed but full-support-free profile.
      std::uint64_t remaining = balls;
      for (std::uint32_t u = 0; u < bins && remaining > 0; ++u) {
        const std::uint64_t take =
            (u + 1 == bins) ? remaining : (remaining + 1) / 2;
        if (take > UINT32_MAX) {
          throw std::invalid_argument("make_config: bin overflow");
        }
        q[u] = static_cast<std::uint32_t>(take);
        remaining -= take;
      }
      break;
    }
  }
  return q;
}

std::uint64_t total_balls(const LoadConfig& q) {
  return std::accumulate(q.begin(), q.end(), std::uint64_t{0});
}

std::uint32_t max_load(const LoadConfig& q) {
  return q.empty() ? 0 : *std::max_element(q.begin(), q.end());
}

std::uint32_t empty_bins(const LoadConfig& q) {
  return static_cast<std::uint32_t>(std::count(q.begin(), q.end(), 0u));
}

bool is_legitimate(const LoadConfig& q, double beta) {
  if (q.empty()) throw std::invalid_argument("is_legitimate: empty config");
  return static_cast<double>(max_load(q)) <= beta * log2n(q.size());
}

void validate_config(const LoadConfig& q, std::uint64_t balls) {
  if (q.empty()) throw std::invalid_argument("validate_config: empty config");
  if (total_balls(q) != balls) {
    throw std::invalid_argument("validate_config: ball count mismatch");
  }
}

Histogram occupancy_histogram(const LoadConfig& q) {
  Histogram h;
  for (const std::uint32_t load : q) h.add(load);
  return h;
}

std::string serialize_config(const LoadConfig& q) {
  std::string out = std::to_string(q.size());
  out += ':';
  for (std::size_t u = 0; u < q.size(); ++u) {
    if (u != 0) out += ',';
    out += std::to_string(q[u]);
  }
  return out;
}

LoadConfig parse_config(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("parse_config: missing ':'");
  }
  std::size_t n = 0;
  try {
    n = std::stoul(text.substr(0, colon));
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_config: bad bin count");
  }
  if (n == 0) throw std::invalid_argument("parse_config: zero bins");
  LoadConfig q;
  q.reserve(n);
  std::size_t pos = colon + 1;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string field =
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (field.empty() ||
        field.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("parse_config: bad load field");
    }
    const unsigned long value = std::stoul(field);
    if (value > UINT32_MAX) {
      throw std::invalid_argument("parse_config: load overflow");
    }
    q.push_back(static_cast<std::uint32_t>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (q.size() != n) {
    throw std::invalid_argument("parse_config: bin count mismatch");
  }
  return q;
}

const char* to_string(InitialConfig kind) {
  switch (kind) {
    case InitialConfig::kOnePerBin: return "one-per-bin";
    case InitialConfig::kAllInOne: return "all-in-one";
    case InitialConfig::kRandom: return "random";
    case InitialConfig::kHalfLoaded: return "half-loaded";
    case InitialConfig::kGeometric: return "geometric";
  }
  return "unknown";
}

InitialConfig initial_config_from_string(const std::string& s) {
  if (s == "one-per-bin") return InitialConfig::kOnePerBin;
  if (s == "all-in-one") return InitialConfig::kAllInOne;
  if (s == "random") return InitialConfig::kRandom;
  if (s == "half-loaded") return InitialConfig::kHalfLoaded;
  if (s == "geometric") return InitialConfig::kGeometric;
  throw std::invalid_argument("initial_config_from_string: unknown: " + s);
}

}  // namespace rbb
