// Generator for docs/experiments.md: the experiment catalog rendered
// from the registry, so the prose can never drift from the code.
//
// The output is a pure function of the registered experiments -- no
// timestamps, no environment -- which is what lets CI regenerate it and
// fail on any diff against the committed copy (the docs-drift gate).
#pragma once

#include <string>

#include "runner/registry.hpp"

namespace rbb::runner {

/// Renders the full experiments.md document (catalog table + one section
/// per experiment with its parameters) in Registry::catalog order.
[[nodiscard]] std::string render_experiment_docs(const Registry& registry);

}  // namespace rbb::runner
