// E7 -- Lemma 6: the Tetris process started from a legitimate
// configuration keeps maximum load O(log n) over any polynomial window.
//
// Table: mirror of E1 for Tetris.  Includes the critical-drift ablation:
// raising the arrival rate from 3n/4 toward n erodes the negative drift
// and the window max load grows -- showing why the 3/4 constant works.
#include "bench/bench_common.hpp"
#include "core/config.hpp"
#include "support/bounds.hpp"
#include "support/stats.hpp"
#include "tetris/tetris.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E7: Tetris stability window (Lemma 6) + arrival-rate ablation");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 8);
  const std::uint64_t wf = by_scale<std::uint64_t>(scale, 5, 20, 50);

  Table table({"n", "window", "max load (mean)", "max / log2 n",
               "min empty frac"});
  for (const std::uint32_t n : bench::n_sweep(scale)) {
    OnlineMoments wmax;
    OnlineMoments memp;
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      Rng rng(cli.u64("seed"), trial);
      TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng),
                         rng);
      double trial_max = 0.0;
      double trial_min_empty = 1.0;
      for (std::uint64_t t = 0; t < wf * n; ++t) {
        const TetrisRoundStats s = proc.step();
        trial_max = std::max(trial_max, static_cast<double>(s.max_load));
        trial_min_empty =
            std::min(trial_min_empty,
                     static_cast<double>(s.empty_bins) / n);
      }
      wmax.add(trial_max);
      memp.add(trial_min_empty);
    }
    table.row()
        .cell(std::uint64_t{n})
        .cell(wf * n)
        .cell(wmax.mean(), 2)
        .cell(wmax.mean() / log2n(n), 3)
        .cell(memp.min(), 3);
  }
  bench::emit(table, "E7_tetris_stability",
              "Tetris window max load is O(log n) (Lemma 6)", scale);

  // Ablation: arrival rate mu * n for mu -> 1 (the drift -(1 - mu)
  // vanishing).  Fixed n, same window.
  const std::uint32_t n = by_scale<std::uint32_t>(scale, 256, 1024, 4096);
  Table ablation({"arrival fraction mu", "drift per bin", "max load (mean)",
                  "mean empty frac", "final total balls / n"});
  for (const double mu : {0.5, 0.75, 0.9, 0.95, 1.0}) {
    OnlineMoments wmax;
    OnlineMoments memp;
    OnlineMoments mass;
    const auto arrivals =
        static_cast<std::uint64_t>(mu * static_cast<double>(n));
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      Rng rng(cli.u64("seed") + 17, trial);
      TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng),
                         rng, arrivals);
      double trial_max = 0.0;
      double empty_sum = 0.0;
      const std::uint64_t window = 10ull * n;
      for (std::uint64_t t = 0; t < window; ++t) {
        const TetrisRoundStats s = proc.step();
        trial_max = std::max(trial_max, static_cast<double>(s.max_load));
        empty_sum += static_cast<double>(s.empty_bins) / n;
      }
      wmax.add(trial_max);
      memp.add(empty_sum / static_cast<double>(window));
      mass.add(static_cast<double>(proc.total_balls()) / n);
    }
    ablation.row()
        .cell(mu, 2)
        .cell(mu - 1.0, 2)
        .cell(wmax.mean(), 2)
        .cell(memp.mean(), 3)
        .cell(mass.mean(), 3);
  }
  bench::emit(ablation, "E7b_tetris_critical",
              "ablation: why 3/4 -- max load explodes as mu -> 1", scale);
  return 0;
}
