// Invariance and parity tests for the sharded Tetris kernel -- the
// refill-variant port the policy core bought (DESIGN.md Sect. 5).
//
// Contracts pinned, mirroring sharded_process_test.cpp:
//   * thread-count invariance  -- 1/2/8 workers, same trajectory,
//   * shard-size invariance    -- shards of 64/256/1024 bins,
//   * sequential parity        -- bit-identical to the sequential
//     counter-stream sibling, INCLUDING the per-bin first-empty rounds
//     (Lemma 4's observable) and the evolving ball total,
//   * SimProcess conformance   -- the engine drives it unchanged.
#include "par/sharded_variants.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "engine/engine.hpp"

namespace rbb::par {
namespace {

constexpr std::uint32_t kN = 2048;
constexpr std::uint64_t kSeed = 0x7e7215ULL;
constexpr std::uint64_t kRounds = 40;

LoadConfig start_config(InitialConfig kind = InitialConfig::kRandom) {
  Rng rng(99);
  return make_config(kind, kN, kN, rng);
}

struct Trajectory {
  std::vector<TetrisRoundStats> stats;
  LoadConfig final_loads;
  std::vector<std::uint64_t> first_empty;

  bool operator==(const Trajectory& other) const {
    if (final_loads != other.final_loads) return false;
    if (first_empty != other.first_empty) return false;
    if (stats.size() != other.stats.size()) return false;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (stats[i].max_load != other.stats[i].max_load ||
          stats[i].empty_bins != other.stats[i].empty_bins ||
          stats[i].total_balls != other.stats[i].total_balls) {
        return false;
      }
    }
    return true;
  }
};

template <typename Process>
Trajectory record(Process& proc) {
  Trajectory t;
  for (std::uint64_t r = 0; r < kRounds; ++r) t.stats.push_back(proc.step());
  t.final_loads = proc.loads();
  for (std::uint32_t u = 0; u < proc.bin_count(); ++u) {
    t.first_empty.push_back(proc.first_empty_round(u));
  }
  return t;
}

Trajectory run_sharded(ShardedOptions options,
                       InitialConfig kind = InitialConfig::kRandom) {
  ShardedTetrisProcess proc(start_config(kind), kSeed, 0, options);
  return record(proc);
}

TEST(ShardedTetris, TrajectoryIdenticalFor1_2_8Workers) {
  const Trajectory one = run_sharded({.threads = 1, .shard_size = 256});
  const Trajectory two = run_sharded({.threads = 2, .shard_size = 256});
  const Trajectory eight = run_sharded({.threads = 8, .shard_size = 256});
  EXPECT_TRUE(one == two);
  EXPECT_TRUE(one == eight);
}

TEST(ShardedTetris, TrajectoryIndependentOfShardSize) {
  const Trajectory s64 = run_sharded({.threads = 2, .shard_size = 64});
  const Trajectory s256 = run_sharded({.threads = 2, .shard_size = 256});
  const Trajectory s1024 = run_sharded({.threads = 2, .shard_size = 1024});
  EXPECT_TRUE(s64 == s256);
  EXPECT_TRUE(s64 == s1024);
}

TEST(ShardedTetris, BitIdenticalToSequentialCounterSibling) {
  SequentialCounterTetrisProcess reference(start_config(), kSeed);
  ShardedTetrisProcess sharded(start_config(), kSeed, 0,
                               {.threads = 2, .shard_size = 256});
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const TetrisRoundStats expect = reference.step();
    const TetrisRoundStats got = sharded.step();
    ASSERT_EQ(got.max_load, expect.max_load) << "round " << r;
    ASSERT_EQ(got.empty_bins, expect.empty_bins) << "round " << r;
    ASSERT_EQ(got.total_balls, expect.total_balls) << "round " << r;
    ASSERT_EQ(sharded.loads(), reference.loads()) << "round " << r;
  }
  for (std::uint32_t u = 0; u < kN; ++u) {
    ASSERT_EQ(sharded.first_empty_round(u), reference.first_empty_round(u))
        << "bin " << u;
  }
}

TEST(ShardedTetris, ParityHoldsFromAdversarialStart) {
  SequentialCounterTetrisProcess reference(
      start_config(InitialConfig::kAllInOne), kSeed);
  ShardedTetrisProcess sharded(start_config(InitialConfig::kAllInOne), kSeed,
                               0, {.threads = 8, .shard_size = 64});
  Trajectory a = record(reference);
  Trajectory b = record(sharded);
  EXPECT_TRUE(a == b);
}

TEST(ShardedTetris, BallAccountingAndInvariantsHold) {
  ShardedTetrisProcess proc(start_config(), kSeed, 0,
                            {.threads = 2, .shard_size = 128});
  EXPECT_EQ(proc.arrivals_per_round(), kN * 3 / 4);
  for (int r = 0; r < 16; ++r) {
    proc.step();
    ASSERT_NO_THROW(proc.check_invariants());
    EXPECT_EQ(total_balls(proc.loads()), proc.total_balls());
  }
  EXPECT_EQ(proc.round(), 16u);
}

TEST(ShardedTetris, DrainsFromWorstStart) {
  // Lemma 4 at small n: every bin empties within the 64 n cap.
  ShardedTetrisProcess proc(start_config(InitialConfig::kAllInOne), kSeed, 0,
                            {.threads = 2, .shard_size = 256});
  const std::uint64_t drained = proc.run_until_all_emptied(64ull * kN);
  EXPECT_NE(drained, ShardedTetrisProcess::kNeverEmptied);
  EXPECT_EQ(drained, proc.max_first_empty_round());
}

TEST(ShardedTetris, RejectsSplitSamplingUnderCounterStream) {
  // The multinomial-split ablation is inherently sequential; the
  // counter-stream instantiations accept ball-by-ball only (the
  // sequential-stream TetrisProcess keeps kSplit).  The par adapters
  // never expose kSplit, so probe the core directly.
  using TetrisCounter = kernel::Tetris<kernel::CounterStream>;
  using Core =
      kernel::BallProcessCore<TetrisCounter, kernel::SequentialExecution>;
  EXPECT_THROW(Core(LoadConfig(kN, 1),
                    TetrisCounter(kernel::CounterStream(kSeed), 0,
                                  ArrivalSampling::kSplit)),
               std::invalid_argument);
}

static_assert(SimProcess<ShardedTetrisProcess>,
              "the sharded Tetris kernel must satisfy the engine concept");
static_assert(SimProcess<SequentialCounterTetrisProcess>,
              "the counter-stream Tetris sibling must satisfy the engine "
              "concept");

TEST(ShardedTetris, EngineDrivesItWithStoppingRule) {
  Engine engine(ShardedTetrisProcess(start_config(InitialConfig::kAllInOne),
                                     kSeed, 0,
                                     {.threads = 2, .shard_size = 256}));
  const EngineResult r =
      engine.run(64ull * kN, UntilAllEmptiedOnce{}, NoFaults{});
  EXPECT_TRUE(r.goal_reached);
  EXPECT_TRUE(engine.process().all_emptied_once());
}

}  // namespace
}  // namespace rbb::par
