// Tests for the eq.-(4) Markov chain and Lemma 5's absorption tail.
#include "tetris/zchain.hpp"

#include <gtest/gtest.h>

#include "support/bounds.hpp"
#include "support/stats.hpp"

namespace rbb {
namespace {

TEST(ZChain, ZeroIsAbsorbing) {
  ZChain chain(16, 0);
  Rng rng(1);
  EXPECT_TRUE(chain.absorbed());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(chain.step(rng), 0u);
  EXPECT_EQ(chain.steps(), 0u);
}

TEST(ZChain, RejectsTinyN) {
  EXPECT_THROW(ZChain(1, 5), std::invalid_argument);
}

TEST(ZChain, StepDecrementsByAtMostOne) {
  ZChain chain(64, 10);
  Rng rng(2);
  std::uint64_t prev = 10;
  while (!chain.absorbed()) {
    const std::uint64_t now = chain.step(rng);
    ASSERT_GE(now + 1, prev);  // can fall by at most 1
    prev = now;
  }
}

TEST(ZChain, NegativeDriftAbsorbsQuickly) {
  // Drift is -1/4 per step, so from k the absorption time is ~4k.
  Rng rng(3);
  OnlineMoments tau;
  for (int i = 0; i < 2000; ++i) {
    tau.add(static_cast<double>(sample_absorption_time(256, 20, 100000, rng)));
  }
  EXPECT_NEAR(tau.mean(), 80.0, 12.0);
}

TEST(ZChain, AbsorptionFromZeroIsZero) {
  Rng rng(4);
  EXPECT_EQ(sample_absorption_time(64, 0, 100, rng), 0u);
}

TEST(ZChain, CapReturnsSentinel) {
  Rng rng(5);
  // From a huge start with a cap of 10 steps, absorption is impossible
  // (Z decreases by at most 1 per step).
  EXPECT_EQ(sample_absorption_time(64, 1000, 10, rng), kZChainNotAbsorbed);
}

TEST(ZChain, Lemma5TailBoundHolds) {
  // Empirical P(tau > t) must lie below e^{-t/144} for t >= 8k (the
  // empirical tail is in fact far smaller; the bound is loose).
  constexpr std::uint32_t n = 512;
  constexpr std::uint64_t k = 8;
  Rng rng(6);
  constexpr int kTrials = 4000;
  const std::uint64_t t_check = 8 * k;  // = 64
  int exceed = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (sample_absorption_time(n, k, t_check + 1, rng) > t_check) ++exceed;
  }
  const double empirical = static_cast<double>(exceed) / kTrials;
  EXPECT_LE(empirical, zchain_tail_bound(static_cast<double>(t_check)) + 0.02);
}

TEST(ZChain, TailDecaysGeometrically) {
  // Estimated tails at t and 2t: the ratio shows clear exponential decay.
  constexpr std::uint32_t n = 256;
  Rng rng(7);
  constexpr int kTrials = 20000;
  int beyond_20 = 0;
  int beyond_60 = 0;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t tau = sample_absorption_time(n, 5, 61, rng);
    if (tau > 20) ++beyond_20;
    if (tau > 60) ++beyond_60;
  }
  EXPECT_GT(beyond_20, beyond_60);
  // From k=5, most walks die fast: P(tau > 60) is ~0.03 empirically,
  // far below the Lemma-5 bound e^{-60/144} ~ 0.66.
  EXPECT_LT(static_cast<double>(beyond_60) / kTrials, 0.05);
}

}  // namespace
}  // namespace rbb
