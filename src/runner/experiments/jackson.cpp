// E17 -- Sect. 1.3: the closed Jackson network is the classical-queueing
// relative of the repeated process (sequential events, product-form
// stationary distribution) -- how do its queue lengths compare?
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_jackson(Registry& registry) {
  Experiment e;
  e.name = "jackson";
  e.claim = "E17";
  e.title =
      "sequential product-form relative vs the parallel process";
  e.description =
      "Per n, the closed Jackson network's running max queue over a "
      "horizon of 20n time units vs the repeated process's window max "
      "over 20n rounds (one round ~ one time unit: every busy station "
      "completes ~one service per unit).  Both stay logarithmic; the "
      "Jackson maximum runs higher because its geometric-tailed "
      "marginals are heavier than the parallel process's.";
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 10);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 20, 40);

    ResultSet rs;
    Table& table = rs.add_table(
        "E17_jackson",
        "sequential product-form relative vs the parallel process",
        {"n", "jackson running max", "jackson / log2 n",
         "repeated window max", "repeated / log2 n",
         "jackson events / unit time"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      JacksonParams jp;
      jp.n = n;
      jp.horizon = static_cast<double>(wf * n);
      jp.trials = trials;
      jp.seed = ctx.seed();
      const JacksonResult jr = run_jackson(jp);

      StabilityParams sp;
      sp.n = n;
      sp.rounds = wf * n;
      sp.trials = trials;
      sp.seed = ctx.seed() + 1;
      const StabilityResult sr = run_stability(sp);

      table.row()
          .cell(std::uint64_t{n})
          .cell(jr.running_max.mean(), 2)
          .cell(jr.running_max.mean() / log2n(n), 3)
          .cell(sr.window_max.mean(), 2)
          .cell(sr.window_max.mean() / log2n(n), 3)
          .cell(jr.events_per_unit_time.mean(), 1);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
