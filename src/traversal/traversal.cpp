#include "traversal/traversal.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/bounds.hpp"

namespace rbb {

std::vector<std::uint32_t> make_token_placement(InitialConfig placement,
                                                std::uint32_t bins,
                                                std::uint32_t tokens,
                                                Rng& rng) {
  std::vector<std::uint32_t> pos(tokens, 0);
  switch (placement) {
    case InitialConfig::kOnePerBin:
      for (std::uint32_t i = 0; i < tokens; ++i) pos[i] = i % bins;
      break;
    case InitialConfig::kAllInOne:
      break;  // all zeros
    case InitialConfig::kRandom:
      for (auto& p : pos) p = rng.index(bins);
      break;
    case InitialConfig::kHalfLoaded: {
      const std::uint32_t half = std::max<std::uint32_t>(1, bins / 2);
      for (std::uint32_t i = 0; i < tokens; ++i) pos[i] = i % half;
      break;
    }
    case InitialConfig::kGeometric: {
      // Token blocks of geometrically decreasing size per bin.
      std::uint32_t token = 0;
      std::uint32_t remaining = tokens;
      for (std::uint32_t u = 0; u < bins && remaining > 0; ++u) {
        const std::uint32_t take =
            (u + 1 == bins) ? remaining : (remaining + 1) / 2;
        for (std::uint32_t j = 0; j < take; ++j) pos[token++] = u;
        remaining -= take;
      }
      break;
    }
  }
  return pos;
}

TraversalResult run_traversal(const TraversalParams& params,
                              std::uint64_t seed) {
  if (params.n < 2) throw std::invalid_argument("run_traversal: n < 2");
  Rng placement_rng(seed, 0xf417);
  Rng process_rng(seed, 0x9a11);
  Rng fault_rng(seed, 0x0bad);

  const std::uint64_t cap =
      params.max_rounds != 0
          ? params.max_rounds
          : static_cast<std::uint64_t>(64.0 * parallel_cover_scale(params.n));

  TokenProcess::Options options;
  options.policy = params.policy;
  options.graph = params.graph;
  options.track_visits = true;

  TokenProcess process(
      params.n,
      make_token_placement(params.placement, params.n, params.n,
                           placement_rng),
      options, process_rng);

  const FaultSchedule faults(params.fault_period);
  TraversalResult result;
  while (!process.all_covered() && process.round() < cap) {
    process.step();
    result.max_load_seen = std::max(result.max_load_seen, process.max_load());
    if (faults.fires_at(process.round())) {
      process.reassign(apply_fault_tokens(params.fault_strategy, params.n,
                                          params.n, fault_rng));
      result.max_load_seen =
          std::max(result.max_load_seen, process.max_load());
    }
  }
  result.rounds_run = process.round();
  result.min_progress = process.min_progress();
  if (process.all_covered()) {
    result.cover_time = process.global_cover_time();
    std::uint64_t first = TokenProcess::kNotCovered;
    std::uint64_t last = 0;
    for (std::uint32_t i = 0; i < process.token_count(); ++i) {
      first = std::min(first, process.cover_round(i));
      last = std::max(last, process.cover_round(i));
    }
    result.first_token_covered = first;
    result.last_token_covered = last;
  }
  return result;
}

}  // namespace rbb
