// Kernel throughput benchmarks (google-benchmark) covering the design
// ablations from DESIGN.md Sect. 3:
//   D1 -- Tetris arrival sampling: ball-by-ball vs multinomial splitting,
//   D2 -- load-only kernel vs identity-tracking token process,
//   D3 -- the incremental max/empty bookkeeping vs a full rescan,
//   D4 -- xoshiro256++ vs std::mt19937_64 raw throughput,
//   D6 -- counter-RNG draw planes: scalar per-call Philox vs the
//         batched portable path vs the AVX2 path, and per-call vs
//         batched Lemire bounded reduction (the plane win measured in
//         isolation, not only end-to-end through sharded_scaling),
// plus the absolute rounds/second of every process in the repository.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "baselines/repeated_dchoices.hpp"
#include "core/config.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "engine/engine.hpp"
#include "markov/rbb_chain.hpp"
#include "support/counter_rng.hpp"
#include "support/draw_plane.hpp"
#include "support/samplers.hpp"
#include "tetris/tetris.hpp"

namespace {

using namespace rbb;

void BM_RepeatedBallsRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  RepeatedBallsProcess proc(make_config(InitialConfig::kOnePerBin, n, n, rng),
                            rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RepeatedBallsRound)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Arg(1000000);

// The same kernel driven through Engine<P> with two observers attached:
// the engine's compile-time composition must add nothing measurable over
// the raw step() loop above.
void BM_EngineRepeatedBallsRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  Engine engine(RepeatedBallsProcess(
      make_config(InitialConfig::kOnePerBin, n, n, rng), rng));
  WindowMaxLoad wmax;
  MinEmptyFraction memp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_rounds(1, wmax, memp));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EngineRepeatedBallsRound)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Arg(1000000);

// D2: the identity-tracking process pays for queue manipulation and
// per-token bookkeeping; this quantifies the load-only kernel's edge.
void BM_TokenProcessRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = i;
  TokenProcess::Options options;
  options.track_visits = false;
  TokenProcess proc(n, std::move(placement), options, Rng(2));
  for (auto _ : state) {
    proc.step();
    benchmark::DoNotOptimize(proc.round());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TokenProcessRound)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TokenProcessRoundWithVisits(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = i;
  TokenProcess::Options options;
  options.track_visits = true;
  TokenProcess proc(n, std::move(placement), options, Rng(3));
  for (auto _ : state) {
    proc.step();
    benchmark::DoNotOptimize(proc.round());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TokenProcessRoundWithVisits)->Arg(1024)->Arg(8192);

// D1: Tetris arrival sampling strategies.
void BM_TetrisRoundBallByBall(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(4);
  TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng), rng, 0,
                     ArrivalSampling::kBallByBall);
  for (auto _ : state) benchmark::DoNotOptimize(proc.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TetrisRoundBallByBall)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TetrisRoundSplitSampling(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(5);
  TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng), rng, 0,
                     ArrivalSampling::kSplit);
  for (auto _ : state) benchmark::DoNotOptimize(proc.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TetrisRoundSplitSampling)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_RepeatedDChoicesRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(6);
  RepeatedDChoicesProcess proc(
      make_config(InitialConfig::kOnePerBin, n, n, rng), 2, rng);
  for (auto _ : state) benchmark::DoNotOptimize(proc.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RepeatedDChoicesRound)->Arg(1024)->Arg(8192);

// D3: the step() already maintains max/empty incrementally; this measures
// what a naive per-round rescan would add on top.
void BM_FullRescanOverhead(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(7);
  RepeatedBallsProcess proc(make_config(InitialConfig::kOnePerBin, n, n, rng),
                            rng);
  for (auto _ : state) {
    proc.step();
    // The rescan a non-incremental implementation would pay per round:
    benchmark::DoNotOptimize(max_load(proc.loads()));
    benchmark::DoNotOptimize(empty_bins(proc.loads()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FullRescanOverhead)->Arg(8192)->Arg(65536);

// D4: raw generator throughput.
void BM_RngXoshiro(benchmark::State& state) {
  Rng rng(8);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngXoshiro);

void BM_RngMt19937(benchmark::State& state) {
  std::mt19937_64 rng(8);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngMt19937);

void BM_RngBounded(benchmark::State& state) {
  Rng rng(9);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng.below(1000003);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngBounded);

// ---- D6: counter-RNG draw planes (support/draw_plane.hpp) ----------------
// One plane of kPlaneDraws bounded draws per iteration; items processed
// = draws, so google-benchmark's items/sec column reads as draws/sec.
// The scalar baseline makes the identical draws one Philox block at a
// time (the pre-plane hot path of every counter-stream kernel).

constexpr std::size_t kPlaneDraws = 4096;
constexpr std::uint32_t kPlaneBound = 1000003;

void BM_CounterDrawScalarPerCall(benchmark::State& state) {
  const CounterRng rng(8);
  std::vector<std::uint32_t> out(kPlaneDraws);
  std::uint64_t round = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kPlaneDraws; ++i) {
      out[i] = rng.index(round, i, kPlaneBound);
    }
    benchmark::DoNotOptimize(out.data());
    ++round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPlaneDraws));
}
BENCHMARK(BM_CounterDrawScalarPerCall);

/// Times one fill_range plane per iteration under a pinned dispatch
/// branch; skips cleanly when the machine lacks the ISA.
void plane_range_bench(benchmark::State& state, PlaneIsa isa) {
  if (!plane_isa_supported(isa)) {
    state.SkipWithError("ISA not supported on this machine");
    return;
  }
  force_plane_isa(isa);
  const CounterRng rng(8);
  const DrawPlane plane(rng);
  std::vector<std::uint32_t> out(kPlaneDraws);
  std::uint64_t round = 0;
  for (auto _ : state) {
    plane.fill_range(round, 0, kPlaneDraws, kPlaneBound, out.data());
    benchmark::DoNotOptimize(out.data());
    ++round;
  }
  reset_plane_isa();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPlaneDraws));
}

void BM_DrawPlaneRangePortable(benchmark::State& state) {
  plane_range_bench(state, PlaneIsa::kPortable);
}
BENCHMARK(BM_DrawPlaneRangePortable);

void BM_DrawPlaneRangeAvx2(benchmark::State& state) {
  plane_range_bench(state, PlaneIsa::kAvx2);
}
BENCHMARK(BM_DrawPlaneRangeAvx2);

/// The gathered-slot shape the relaunch/d-choices paths use: slot list
/// = a shuffled sparse subset of bins.
void plane_gather_bench(benchmark::State& state, PlaneIsa isa) {
  if (!plane_isa_supported(isa)) {
    state.SkipWithError("ISA not supported on this machine");
    return;
  }
  force_plane_isa(isa);
  const CounterRng rng(8);
  const DrawPlane plane(rng);
  Rng slot_rng(3);
  std::vector<std::uint32_t> slots(kPlaneDraws);
  for (auto& s : slots) s = slot_rng.index(1u << 20);
  std::vector<std::uint32_t> out(kPlaneDraws);
  std::uint64_t round = 0;
  for (auto _ : state) {
    plane.fill_gather(round, slots.data(), 0, kPlaneDraws, kPlaneBound,
                      out.data());
    benchmark::DoNotOptimize(out.data());
    ++round;
  }
  reset_plane_isa();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPlaneDraws));
}

void BM_DrawPlaneGatherPortable(benchmark::State& state) {
  plane_gather_bench(state, PlaneIsa::kPortable);
}
BENCHMARK(BM_DrawPlaneGatherPortable);

void BM_DrawPlaneGatherAvx2(benchmark::State& state) {
  plane_gather_bench(state, PlaneIsa::kAvx2);
}
BENCHMARK(BM_DrawPlaneGatherAvx2);

// Per-call vs batched Lemire over the same pre-generated words: what
// the hoisted threshold + deferred retry list buy on top of block
// batching.
void BM_LemireBoundedPerCall(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::uint64_t> w0(kPlaneDraws), w1(kPlaneDraws);
  for (std::size_t i = 0; i < kPlaneDraws; ++i) {
    w0[i] = rng();
    w1[i] = rng();
  }
  std::vector<std::uint32_t> out(kPlaneDraws);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kPlaneDraws; ++i) {
      out[i] = lemire_bounded(w0[i], w1[i], kPlaneBound);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPlaneDraws));
}
BENCHMARK(BM_LemireBoundedPerCall);

void BM_LemireBoundedBatch(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::uint64_t> w0(kPlaneDraws), w1(kPlaneDraws);
  for (std::size_t i = 0; i < kPlaneDraws; ++i) {
    w0[i] = rng();
    w1[i] = rng();
  }
  std::vector<std::uint32_t> out(kPlaneDraws);
  for (auto _ : state) {
    lemire_bounded_batch(w0.data(), w1.data(), kPlaneDraws, kPlaneBound,
                         out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPlaneDraws));
}
BENCHMARK(BM_LemireBoundedBatch);

void BM_BinomialTetrisLaw(benchmark::State& state) {
  // The Z-chain's hot sampler: Bin(3n/4, 1/n), inversion path.
  Rng rng(10);
  const BinomialSampler sampler(768, 1.0 / 1024.0);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += sampler(rng);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinomialTetrisLaw);

void BM_BinomialBtrd(benchmark::State& state) {
  // The splitting sampler's hot path: large-np BTRD draws.
  Rng rng(11);
  const BinomialSampler sampler(100000, 0.3);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += sampler(rng);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinomialBtrd);

// ---- exact-chain kernels (markov/): matrix construction and the two
// stationary solvers (direct Gaussian solve vs power iteration).  Arg is
// n (= m); the state count C(2n-1, n-1) grows ~4^n.
void BM_ExactMatrixBuild(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const StateSpace space(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_rbb_transition_matrix(space));
  }
  state.SetLabel(std::to_string(space.size()) + " states");
}
BENCHMARK(BM_ExactMatrixBuild)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_StationaryDirectSolve(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const StateSpace space(n, n);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stationary_distribution(p));
  }
}
BENCHMARK(BM_StationaryDirectSolve)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_StationaryPowerIteration(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const StateSpace space(n, n);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stationary_by_power_iteration(p, 1e-12));
  }
}
BENCHMARK(BM_StationaryPowerIteration)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
