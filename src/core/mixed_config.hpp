// Mixed-regime scenario descriptions: m != n ball counts, weighted
// balls, heterogeneous bins.
//
// Los & Sauerwald ("Tight Bounds for Repeated Balls-into-Bins")
// analyze the general m = c * n process and prove sharply different
// max-load behavior across regimes; the production analogue adds hot
// keys (balls of unequal weight) and unequal servers (bins with
// per-round service rates and finite capacities).  This module is the
// declarative half of the mixed-regime engine: named weight and bin
// profiles, parsed from CLI strings, materialized into the dense
// per-bin vectors the kernel consumes (core/kernel/mixed_kernel.hpp).
//
// Everything here is DETERMINISTIC in (n, ratio, profile names): the
// spec is part of the experiment identity, so two runs with the same
// parameters start from bit-identical state on every backend.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace rbb {

/// A small table of ball weight classes: class c carries integer
/// weight `class_weights[c]` and holds `fractions[c]` of the m balls.
/// Invariants: non-empty, weights >= 1, fractions > 0 summing to ~1.
struct WeightProfile {
  std::string name;
  std::vector<weight_t> class_weights;
  std::vector<double> fractions;
};

/// Named weight profiles:
///   unit     -- one class of weight 1 (the classical process)
///   bimodal  -- 90% weight-1 balls, 10% weight-8 "hot" balls
///   zipf     -- weights {1, 2, 4, 8} with geometrically decaying
///               shares {8/15, 4/15, 2/15, 1/15}
[[nodiscard]] WeightProfile weight_profile_from_string(const std::string& s);

/// Comma-joined list of the recognized weight profile names.
[[nodiscard]] std::string weight_profile_names();

/// Named bin (server) profiles:
///   uniform        -- rate 1, unbounded capacity: the paper's bins
///   two-speed      -- odd bins drain 4 balls per round, even bins 1
///   stalled-tenth  -- every 10th bin has rate 0 (never releases)
///   capped         -- rate 1, capacity 2 * ceil(m/n) + 2: arrivals
///                     beyond the cap are dropped (counted, not lost
///                     silently)
enum class BinProfileKind { kUniform, kTwoSpeed, kStalledTenth, kCapped };

[[nodiscard]] BinProfileKind bin_profile_from_string(const std::string& s);
[[nodiscard]] const char* to_string(BinProfileKind kind);

/// Comma-joined list of the recognized bin profile names.
[[nodiscard]] std::string bin_profile_names();

/// A fully materialized mixed-regime scenario: what the mixed kernel
/// is constructed from.
struct MixedSpec {
  std::uint32_t bins = 0;
  ball_count_t balls = 0;
  WeightProfile weights;
  /// Balls bin u releases per round: min(load_u, rates[u]).  0 = the
  /// bin never releases.  Validated < 2^16 (the departure-index field
  /// of the mixed counter slots).
  std::vector<std::uint32_t> rates;
  /// Per-bin ball capacity; 0 = unbounded.  Arrivals to a full bin
  /// are dropped and counted.
  std::vector<load_t> capacities;
  /// Initial per-bin per-class ball counts, bin-major:
  /// class_counts[u * k + c] with k = weights.class_weights.size().
  std::vector<load_t> class_counts;
};

/// Builds the deterministic mixed-regime scenario: m = round(ratio * n)
/// balls, class populations by largest-remainder apportionment of the
/// profile fractions, balls dealt round-robin over the bins (so every
/// initial load is floor(m/n) or ceil(m/n), under any capacity).
/// Throws std::invalid_argument on n == 0, ratio <= 0, or unknown
/// profile names.
[[nodiscard]] MixedSpec make_mixed_spec(std::uint32_t bins, double ball_ratio,
                                        const std::string& weight_profile,
                                        const std::string& bin_profile);

/// As above with explicit profile values (tests / fuzzing).
[[nodiscard]] MixedSpec make_mixed_spec(std::uint32_t bins, double ball_ratio,
                                        WeightProfile weights,
                                        BinProfileKind bins_kind);

}  // namespace rbb
