#include "analysis/fit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace rbb {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_linear: need >= 2 matched points");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12 * n * sxx + 1e-300) {
    throw std::invalid_argument("fit_linear: x values are all equal");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0, ss_tot = 0;
  const double mean_y = sy / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double predicted = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - predicted) * (y[i] - predicted);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

PowerLawFit fit_power_law(std::span<const double> x,
                          std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >= 2 matched points");
  }
  std::vector<double> lx(x.size());
  std::vector<double> ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] > 0.0) || !(y[i] > 0.0)) {
      throw std::invalid_argument("fit_power_law: data must be positive");
    }
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit linear = fit_linear(lx, ly);
  PowerLawFit fit;
  fit.exponent = linear.slope;
  fit.prefactor = std::exp(linear.intercept);
  fit.r_squared = linear.r_squared;
  return fit;
}

}  // namespace rbb
