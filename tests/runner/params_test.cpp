// Typed parameter parsing: the validation layer between user text and
// every experiment's run function.
#include <gtest/gtest.h>

#include <stdexcept>

#include "runner/params.hpp"

namespace rbb::runner {
namespace {

std::vector<ParamSpec> specs() {
  return {
      {"count", ParamSpec::Type::kU64, "42", "a counter"},
      {"rate", ParamSpec::Type::kF64, "0.5", "a rate"},
      {"name", ParamSpec::Type::kString, "dflt", "a label"},
      {"fast", ParamSpec::Type::kFlag, "false", "a switch"},
  };
}

TEST(ParamValues, StartsAtDefaults) {
  const auto s = specs();
  const ParamValues values(s);
  EXPECT_EQ(values.u64("count"), 42u);
  EXPECT_DOUBLE_EQ(values.f64("rate"), 0.5);
  EXPECT_EQ(values.str("name"), "dflt");
  EXPECT_FALSE(values.flag("fast"));
}

TEST(ParamValues, SetParsesEachType) {
  const auto s = specs();
  ParamValues values(s);
  EXPECT_TRUE(values.set("count", "7"));
  EXPECT_TRUE(values.set("rate", "1.25e-2"));
  EXPECT_TRUE(values.set("name", "x,y z"));
  EXPECT_TRUE(values.set("fast", ""));  // bare flag means true
  EXPECT_EQ(values.u64("count"), 7u);
  EXPECT_DOUBLE_EQ(values.f64("rate"), 0.0125);
  EXPECT_EQ(values.str("name"), "x,y z");
  EXPECT_TRUE(values.flag("fast"));
  EXPECT_TRUE(values.set("fast", "false"));
  EXPECT_FALSE(values.flag("fast"));
}

TEST(ParamValues, RejectsUnknownNameWithMessage) {
  const auto s = specs();
  ParamValues values(s);
  std::string error;
  EXPECT_FALSE(values.set("bogus", "1", &error));
  EXPECT_NE(error.find("unknown option --bogus"), std::string::npos);
}

TEST(ParamValues, RejectsTypeMismatches) {
  const auto s = specs();
  ParamValues values(s);
  std::string error;
  EXPECT_FALSE(values.set("count", "-1", &error));  // u64 is unsigned
  EXPECT_NE(error.find("expects a u64"), std::string::npos);
  EXPECT_FALSE(values.set("count", "3.5", &error));
  EXPECT_FALSE(values.set("count", "12monkeys", &error));
  EXPECT_FALSE(values.set("count", "", &error));
  EXPECT_FALSE(values.set("rate", "fast", &error));
  EXPECT_FALSE(values.set("fast", "maybe", &error));
  // Failed sets leave the previous value intact.
  EXPECT_EQ(values.u64("count"), 42u);
}

TEST(ParamValues, RejectsLeadingWhitespaceAndSigns) {
  // strtoull/strtod skip leading whitespace (and strtoull wraps
  // negatives), so " -1" must not validate as a u64.
  const auto s = specs();
  ParamValues values(s);
  EXPECT_FALSE(values.set("count", " -1"));
  EXPECT_FALSE(values.set("count", " 5"));
  EXPECT_FALSE(values.set("count", "+5"));
  EXPECT_FALSE(values.set("rate", " 0.5"));
  EXPECT_FALSE(values.set("rate", "\t1"));
  EXPECT_EQ(values.u64("count"), 42u);
}

TEST(ParamValues, U32AccessorRejectsOversizedValues) {
  const auto s = specs();
  ParamValues values(s);
  EXPECT_TRUE(values.set("count", "4294967295"));
  EXPECT_EQ(values.u32("count"), 4294967295u);
  EXPECT_TRUE(values.set("count", "4294967296"));
  EXPECT_THROW((void)values.u32("count"), std::invalid_argument);
}

TEST(ParamValues, FlagValueIsCanonicalizedInMetadataText) {
  const auto s = specs();
  ParamValues values(s);
  EXPECT_TRUE(values.set("fast", "1"));
  EXPECT_EQ(values.text("fast"), "true");
  EXPECT_TRUE(values.set("fast", "0"));
  EXPECT_EQ(values.text("fast"), "false");
}

TEST(ParamValues, AccessorsThrowOnUnknownName) {
  const auto s = specs();
  const ParamValues values(s);
  EXPECT_THROW((void)values.u64("nope"), std::out_of_range);
  EXPECT_THROW((void)values.text("nope"), std::out_of_range);
}

TEST(ParsesAs, StringAcceptsAnything) {
  EXPECT_TRUE(parses_as("", ParamSpec::Type::kString));
  EXPECT_TRUE(parses_as("anything at all", ParamSpec::Type::kString));
}

}  // namespace
}  // namespace rbb::runner
