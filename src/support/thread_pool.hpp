// Minimal task-parallel substrate for Monte-Carlo sweeps (design choice D5)
// and for the sharded intra-round kernel (src/par/).
//
// Parallelism in this repository is across independent trials and sweep
// points, and -- since the src/par/ backend -- across bin shards inside
// one round: each task owns its RNG substream (derived from (seed,
// task_index) for trials, from counter-based draws for shards), writes
// into its own result slot, and the combined output is bit-identical
// regardless of thread count.  This matches the Core Guidelines
// concurrency advice (share nothing mutable; communicate by transfer of
// ownership) and keeps every scientific result reproducible.
//
// Nesting rule (how trial-level fan-out composes with a sharded round):
// a for_each issued from *inside* any pool task runs inline on the
// calling thread, sequentially -- whether it targets the same pool or a
// different one.  One level of the hierarchy gets the hardware; inner
// levels degrade to sequential instead of oversubscribing (T trial
// workers x N shard workers threads).  Consequently a sharded process
// driven under for_each_trial simply becomes a sequential kernel per
// trial, with the trial sweep owning all cores -- and the results are
// identical either way, because both layers are deterministic by
// construction.  The same rule is why ThreadPool::global() reserves one
// slot for the submitting thread: run_batch participates in draining its
// own batch, so a pool of hardware_concurrency workers plus the
// submitter would leave hardware_concurrency + 1 runnable threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rbb {

/// Fixed-size pool of worker threads executing an indexed task function
/// over a range [0, task_count).  Work is distributed by atomic counter
/// (dynamic scheduling), which balances heterogeneous trial costs.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (with the
  /// RBB_THREADS environment variable as an override, useful on CI).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, task_count), potentially in parallel,
  /// and blocks until all tasks have finished.  Exceptions thrown by tasks
  /// are rethrown (the first one captured) after the batch drains.  The
  /// callable is a template parameter: workers dispatch through one
  /// per-batch function pointer, so fn's body stays inlinable (no
  /// per-task std::function indirection).
  template <typename Fn>
  void for_each(std::uint64_t task_count, Fn&& fn) {
    if (task_count == 0) return;
    auto batch = std::make_shared<Batch>();
    batch->task_count = task_count;
    batch->context = std::addressof(fn);
    batch->invoke = [](void* context, std::uint64_t i) {
      (*static_cast<std::remove_reference_t<Fn>*>(context))(i);
    };
    run_batch(std::move(batch));
  }

  /// Type-erased convenience wrapper over for_each.
  void parallel_for(std::uint64_t task_count,
                    const std::function<void(std::uint64_t)>& fn);

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Number of threads a default-constructed pool would use.
  [[nodiscard]] static unsigned default_thread_count();

  /// A process-wide shared pool for the experiment drivers.  Sized one
  /// below default_thread_count() (floor 1) because the submitting
  /// thread participates in every batch it runs; an explicit
  /// RBB_THREADS override is honored exactly.
  [[nodiscard]] static ThreadPool& global();

  /// True while the calling thread is executing a pool task (any pool).
  /// for_each consults this to run nested submissions inline -- see the
  /// nesting rule in the header comment.
  [[nodiscard]] static bool inside_task() noexcept;

  /// One submitted for_each call: an index space plus a context/function-
  /// pointer pair erased once per batch (public only for internal
  /// linkage; not part of the API).
  struct Batch {
    std::uint64_t task_count = 0;
    void* context = nullptr;
    void (*invoke)(void*, std::uint64_t) = nullptr;
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> done{0};
    std::exception_ptr first_error;  // guarded by the pool mutex
  };

 private:
  /// Submits the batch, participates in draining it, waits for
  /// completion, and rethrows the first captured task exception.
  void run_batch(std::shared_ptr<Batch> batch);

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  Batch* current_ = nullptr;                 // guarded by mutex_
  std::shared_ptr<Batch> current_owner_;     // guarded by mutex_
  bool shutting_down_ = false;
};

/// Convenience: run fn(i) for i in [0, task_count) on the global pool.
void parallel_for(std::uint64_t task_count,
                  const std::function<void(std::uint64_t)>& fn);

}  // namespace rbb
