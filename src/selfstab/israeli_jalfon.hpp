// Israeli-Jalfon self-stabilizing token management (paper's citation [5]).
//
// The repeated balls-into-bins process is motivated as a randomized
// multi-token traversal primitive; its single-token ancestor is the
// Israeli-Jalfon protocol, the first uniform self-stabilizing mutual
// exclusion scheme based on random walks: every node holding a token
// forwards it to a random neighbor, and tokens that meet on a node merge.
// From *any* initial token placement the system converges to exactly one
// surviving token (the legitimate configurations of mutual exclusion),
// which then performs a plain random walk and eventually visits every
// node.
//
// This module implements the synchronous randomized variant (all tokens
// hop simultaneously each round; co-located tokens merge at the end of
// the round), which is the natural round-based counterpart of the
// repeated balls-into-bins rounds, and serves as the single-token
// baseline for the multi-token traversal experiments: coalescence time
// here plays the role the O(n)-round stabilization phase plays in
// Theorem 1.
//
// Laziness.  Fully synchronous walks on a *bipartite* graph (even cycles,
// tori, stars, hypercubes) never coalesce from placements that straddle
// the two sides: all tokens switch sides every round, so opposite-side
// tokens can never be co-located.  The standard remedy for this parity
// obstruction is the lazy walk -- each token independently stays put with
// probability 1/2 -- which restores coalescence on every connected graph
// and is the default here (`laziness` = 0.5; pass 0 for the pure
// synchronous dynamics, safe on non-bipartite graphs such as cliques).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rbb {

/// Canonical initial token placements.
enum class TokenPlacement {
  kEveryNode,  // the classical worst case: one token per node
  kTwoNodes,   // tokens at nodes 0 and n/2 (meeting-time probe)
  kRandomHalf, // each node holds a token independently w.p. 1/2
};

/// Synchronous Israeli-Jalfon process on a graph (nullptr = complete
/// graph K_n, in which case `n` gives the node count).
class IsraeliJalfonProcess {
 public:
  /// Starts with tokens on the nodes flagged in `tokens` (size = node
  /// count; at least one token required).  `laziness` is each token's
  /// per-round stay-put probability (see the header comment; must lie in
  /// [0, 1)).
  IsraeliJalfonProcess(const Graph* graph, std::uint32_t n,
                       std::vector<std::uint8_t> tokens, Rng rng,
                       double laziness = 0.5);

  /// Convenience: starts from a canonical placement.
  IsraeliJalfonProcess(const Graph* graph, std::uint32_t n,
                       TokenPlacement placement, Rng rng,
                       double laziness = 0.5);

  /// One synchronous round: every token hops to a uniform random
  /// neighbor; tokens landing on the same node merge.  Returns the number
  /// of merges that happened this round (token-count decrease).
  std::uint32_t step();

  /// Runs until a single token survives or `cap` rounds elapse; returns
  /// the number of rounds executed until coalescence, or `cap` if more
  /// than one token remains.
  std::uint64_t run_until_single(std::uint64_t cap);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(tokens_.size());
  }
  [[nodiscard]] std::uint32_t token_count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  /// Mutual exclusion is legitimate iff exactly one token survives.
  [[nodiscard]] bool is_legitimate() const noexcept { return count_ == 1; }
  /// Token-presence flags, one per node.
  [[nodiscard]] const std::vector<std::uint8_t>& tokens() const noexcept {
    return tokens_;
  }

  /// After coalescence: runs the surviving token's random walk until it
  /// has visited every node (its cover time) or `cap` additional rounds.
  /// Returns the additional rounds taken, or `cap` if uncovered.  Throws
  /// std::logic_error when called with more than one token alive.
  std::uint64_t run_single_token_cover(std::uint64_t cap);

  /// Transient fault (the scenario token management is built for, and
  /// the single-token analogue of the paper's Sect. 4.1 adversary):
  /// spuriously creates up to `count` extra tokens on distinct nodes
  /// chosen u.a.r.  Returns the number of tokens actually added (a node
  /// that already holds a token absorbs the duplicate).  Counts as a
  /// faulty event, not a process round.
  std::uint32_t inject_tokens(std::uint32_t count);

  /// Testing hook: recomputes the token count from the flags and checks
  /// it against the incremental value; throws std::logic_error on drift.
  void check_invariants() const;

 private:
  const Graph* graph_;  // nullptr = complete graph
  std::vector<std::uint8_t> tokens_;
  std::vector<std::uint8_t> scratch_;
  Rng rng_;
  double laziness_;
  std::uint32_t count_ = 0;
  std::uint64_t round_ = 0;
};

/// Builds the placement flags for a canonical placement.
[[nodiscard]] std::vector<std::uint8_t> make_token_placement(
    TokenPlacement placement, std::uint32_t n, Rng& rng);

/// Human-readable placement name (tables / CLI).
[[nodiscard]] const char* to_string(TokenPlacement placement);

}  // namespace rbb
