// Deterministic pseudo-random number generation for the rbb library.
//
// All stochastic processes in this repository draw exclusively from the
// generators defined here, so that every experiment is reproducible from a
// single 64-bit seed.  Two generators are provided:
//
//  * SplitMix64   -- a tiny, fast mixer used for seeding and for hashing
//                    (seed, stream) pairs into independent states.
//  * Xoshiro256pp -- xoshiro256++ by Blackman & Vigna, the workhorse
//                    generator.  Satisfies std::uniform_random_bit_generator,
//                    has 256-bit state, period 2^256 - 1, and supports
//                    jump-ahead for provably disjoint parallel substreams.
//
// Bounded integers are produced with Lemire's unbiased multiply-shift
// rejection method (`Rng::below`), which is branch-light and exact.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace rbb {

/// SplitMix64 mixer (Steele, Lea, Flood).  Used to expand a user seed into
/// generator state and to derive independent stream seeds.  Passes through
/// every 64-bit value exactly once over its full period.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit output; advances the state.
  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of two 64-bit words into one; used to hash (seed, stream)
/// pairs.  Built from two SplitMix64 steps so distinct pairs map to
/// well-separated states.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  SplitMix64 sm(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
  sm();
  return sm() ^ b;
}

/// xoshiro256++ generator (Blackman & Vigna, 2019).
///
/// The default generator of the library.  Satisfies the C++20
/// std::uniform_random_bit_generator concept, so it can be used with the
/// <random> distributions as well as with the exact samplers in
/// samplers.hpp.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed), as recommended by
  /// the authors (the all-zero state is unreachable this way).
  constexpr explicit Xoshiro256pp(std::uint64_t seed = 0x1d872b41ull) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  /// Seeds a generator for logical stream `stream` of root seed `seed`.
  /// Distinct streams are statistically independent: the state is derived
  /// by hashing the pair and the per-stream sequences come from different
  /// cycles' regions (additionally separated by jump()).
  constexpr Xoshiro256pp(std::uint64_t seed, std::uint64_t stream) noexcept
      : Xoshiro256pp(mix64(seed, stream)) {}

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Advances the state by 2^128 steps: after k calls the generator
  /// produces a subsequence disjoint from the first k * 2^128 outputs.
  /// Used to carve one root seed into up to 2^128 parallel substreams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= s_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    s_ = acc;
  }

  /// Exposes the raw state (testing only).
  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state()
      const noexcept {
    return s_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// The library-wide RNG facade: a Xoshiro256pp plus convenience draws.
///
/// Every process object owns one Rng.  Experiments derive per-trial rngs
/// with Rng(seed, trial_index) so trials are independent and the result of
/// a parallel sweep does not depend on the number of worker threads.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1d872b41ull) noexcept : gen_(seed) {}
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept : gen_(seed, stream) {}

  std::uint64_t operator()() noexcept { return gen_(); }
  static constexpr std::uint64_t min() noexcept { return Xoshiro256pp::min(); }
  static constexpr std::uint64_t max() noexcept { return Xoshiro256pp::max(); }

  /// Unbiased uniform integer in [0, bound); bound must be >= 1.
  /// Lemire's multiply-shift with rejection on the low word.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    std::uint64_t x = gen_();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = gen_();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [0, n) as a 32-bit index (n must fit in 32 bits).
  [[nodiscard]] std::uint32_t index(std::uint32_t n) noexcept {
    return static_cast<std::uint32_t>(below(n));
  }

  /// Fills out[0..count) with i.i.d. uniform indices in [0, n), drawing
  /// the *same stream* as `count` successive index(n) calls by
  /// construction.  Batching keeps the generator state in registers
  /// across the block and decouples sampling from consumption, which
  /// lets the complete-graph kernel prefetch its arrival scatter (see
  /// RepeatedBallsProcess::step).
  void fill_indices(std::uint32_t* out, std::size_t count,
                    std::uint32_t n) noexcept {
    for (std::size_t i = 0; i < count; ++i) out[i] = index(n);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw; p outside [0,1] saturates.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard exponential variate (rate 1), via inversion.  Never returns
  /// +inf because uniform() < 1.
  [[nodiscard]] double exponential() noexcept;

  /// Exponential with rate `rate` > 0.
  [[nodiscard]] double exponential(double rate) noexcept {
    return exponential() / rate;
  }

  /// Jump the underlying generator 2^128 steps ahead (parallel substreams).
  void jump() noexcept { gen_.jump(); }

  /// Derives an independent child generator, advancing this one.  Use when
  /// several stochastic objects must be seeded from one parent without
  /// sharing a stream (constructors take Rng by value, so passing the
  /// parent twice would replay the same draws).
  [[nodiscard]] Rng split() noexcept {
    const std::uint64_t a = gen_();
    const std::uint64_t b = gen_();
    return Rng(a, b);
  }

 private:
  Xoshiro256pp gen_;
};

/// Fisher-Yates shuffle of [first, last) using `rng`; deterministic given
/// the rng state (std::shuffle is not reproducible across standard
/// libraries, this is).
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  using diff_t = typename std::iterator_traits<RandomIt>::difference_type;
  const diff_t count = last - first;
  for (diff_t i = count - 1; i > 0; --i) {
    const auto j = static_cast<diff_t>(
        rng.below(static_cast<std::uint64_t>(i) + 1));
    if (j != i) std::swap(first[i], first[j]);
  }
}

}  // namespace rbb
