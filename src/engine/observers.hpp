// Pluggable per-round metric observers for the Engine (DESIGN.md Sect. 2).
//
// Observers compose: Engine<P>::run(...) takes any number of them and
// invokes obs.observe(ctx) after every executed round with a
// RoundContext -- a lazy, memoized view of the end-of-round state.
// Laziness matters: computing the maximum load is O(1) for the load-only
// kernel but O(n) for the token process, so a run that observes nothing
// (or only round counts) must not pay for load scans.  Every observer
// here is a plain struct usable on the stack of one Monte-Carlo trial;
// experiment drivers read the accumulated values after the run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/process.hpp"

namespace rbb {

/// \brief Lazy, memoized view of the process state at the end of a
/// round -- the single argument every observer's `observe()` receives.
///
/// `round()` is 1-based and counts rounds executed by the current
/// Engine::run call (checkpoint observers index off it).  `max_load()`
/// and `empty_bins()` evaluate their customization point at most once
/// per round no matter how many observers ask: all observers of one run
/// share one context, so a token process's O(n) load scan happens once,
/// or never if nobody asks.  An observer is any type with a
/// `void observe(const RoundContext<P>&)` member (template or not);
/// it lives on the trial's stack and is read after the run.
template <typename P>
class RoundContext {
 public:
  RoundContext(const P& process, std::uint64_t round)
      : process_(process), round_(round) {}

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const P& process() const noexcept { return process_; }
  [[nodiscard]] std::uint32_t bins() const {
    return engine_bin_count(process_);
  }
  [[nodiscard]] std::uint32_t max_load() const {
    if (!have_max_) {
      max_ = engine_max_load(process_);
      have_max_ = true;
    }
    return max_;
  }
  [[nodiscard]] std::uint32_t empty_bins() const {
    if (!have_empty_) {
      empty_ = engine_empty_bins(process_);
      have_empty_ = true;
    }
    return empty_;
  }
  [[nodiscard]] double empty_fraction() const {
    return static_cast<double>(empty_bins()) / static_cast<double>(bins());
  }

 private:
  const P& process_;
  std::uint64_t round_;
  mutable std::uint32_t max_ = 0;
  mutable std::uint32_t empty_ = 0;
  mutable bool have_max_ = false;
  mutable bool have_empty_ = false;
};

/// Window maximum and final value of the maximum load.
struct WindowMaxLoad {
  std::uint32_t window_max = 0;
  std::uint32_t final_max = 0;

  template <typename P>
  void observe(const RoundContext<P>& ctx) {
    final_max = ctx.max_load();
    window_max = std::max(window_max, final_max);
  }
};

/// Minimum over the window of the empty-bin fraction (Lemma 1 floor).
struct MinEmptyFraction {
  double min_fraction = 1.0;

  template <typename P>
  void observe(const RoundContext<P>& ctx) {
    min_fraction = std::min(min_fraction, ctx.empty_fraction());
  }
};

/// Mean over the window of the empty-bin fraction.
struct MeanEmptyFraction {
  double sum = 0.0;
  std::uint64_t rounds = 0;

  template <typename P>
  void observe(const RoundContext<P>& ctx) {
    sum += ctx.empty_fraction();
    ++rounds;
  }

  [[nodiscard]] double mean() const {
    return rounds == 0 ? 0.0 : sum / static_cast<double>(rounds);
  }
};

/// Legitimacy over the window: whether every observed round satisfied
/// M(q) <= threshold, and how many did (threshold = beta * log2 n).
struct LegitimacyWindow {
  double threshold = 0.0;
  std::uint64_t legitimate_rounds = 0;
  std::uint64_t total_rounds = 0;

  explicit LegitimacyWindow(double threshold_) : threshold(threshold_) {}

  template <typename P>
  void observe(const RoundContext<P>& ctx) {
    ++total_rounds;
    if (static_cast<double>(ctx.max_load()) <= threshold) {
      ++legitimate_rounds;
    }
  }

  [[nodiscard]] bool whole_window_legitimate() const {
    return legitimate_rounds == total_rounds;
  }
};

/// Running maximum of the max load, sampled at a sorted list of 1-based
/// round checkpoints (experiment E11's observable).
class RunningMaxAtCheckpoints {
 public:
  explicit RunningMaxAtCheckpoints(std::vector<std::uint64_t> checkpoints)
      : checkpoints_(std::move(checkpoints)),
        values_(checkpoints_.size(), 0) {}

  template <typename P>
  void observe(const RoundContext<P>& ctx) {
    if (next_ >= checkpoints_.size()) return;  // past the last checkpoint
    running_ = std::max(running_, ctx.max_load());
    while (next_ < checkpoints_.size() &&
           checkpoints_[next_] == ctx.round()) {
      values_[next_] = running_;
      ++next_;
    }
  }

  [[nodiscard]] const std::vector<std::uint32_t>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<std::uint64_t> checkpoints_;
  std::vector<std::uint32_t> values_;
  std::uint32_t running_ = 0;
  std::size_t next_ = 0;
};

/// Mean over the window of the total ball count per bin (leaky bins do
/// not conserve mass; E16 tracks the stationary level).
struct MeanTotalBallsPerBin {
  double sum = 0.0;
  std::uint64_t rounds = 0;

  template <typename P>
    requires requires(const P& p) {
      { p.total_balls() } -> std::convertible_to<std::uint64_t>;
    }
  void observe(const RoundContext<P>& ctx) {
    sum += static_cast<double>(ctx.process().total_balls()) /
           static_cast<double>(ctx.bins());
    ++rounds;
  }

  [[nodiscard]] double mean() const {
    return rounds == 0 ? 0.0 : sum / static_cast<double>(rounds);
  }
};

/// Records the full max-load trajectory, one entry per round.  Testing /
/// plotting aid -- memory grows linearly with the window.
struct MaxLoadTrajectory {
  std::vector<std::uint32_t> values;

  template <typename P>
  void observe(const RoundContext<P>& ctx) {
    values.push_back(ctx.max_load());
  }
};

/// Window maximum and final value of the maximum WEIGHTED load
/// (mixed-regime engine: hot-key pressure that the unweighted max load
/// cannot see).  Binds only to processes exposing max_weighted_load().
struct WindowMaxWeightedLoad {
  std::uint64_t window_max = 0;
  std::uint64_t final_max = 0;

  template <typename P>
    requires requires(const P& p) {
      { p.max_weighted_load() } -> std::convertible_to<std::uint64_t>;
    }
  void observe(const RoundContext<P>& ctx) {
    final_max = ctx.process().max_weighted_load();
    window_max = std::max(window_max, final_max);
  }
};

/// Records the full max-weighted-load trajectory, one entry per round.
struct WeightedLoadTrajectory {
  std::vector<std::uint64_t> values;

  template <typename P>
    requires requires(const P& p) {
      { p.max_weighted_load() } -> std::convertible_to<std::uint64_t>;
    }
  void observe(const RoundContext<P>& ctx) {
    values.push_back(ctx.process().max_weighted_load());
  }
};

/// Window maximum of the capacity utilization (load / capacity over
/// capacity-bounded bins; 0 when every bin is unbounded) -- the
/// normalized-by-capacity statistic of heterogeneous-bin scenarios.
struct WindowMaxUtilization {
  double window_max = 0.0;

  template <typename P>
    requires requires(const P& p) {
      { p.max_utilization() } -> std::convertible_to<double>;
    }
  void observe(const RoundContext<P>& ctx) {
    window_max = std::max(window_max, ctx.process().max_utilization());
  }
};

/// Revalidates process invariants every round (fuzzing aid; throws
/// std::logic_error on bookkeeping drift).
struct InvariantCheck {
  template <typename P>
  void observe(const RoundContext<P>& ctx) {
    engine_check_invariants(ctx.process());
  }
};

}  // namespace rbb
