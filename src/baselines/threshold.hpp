// Threshold allocation (Bertrand & Lenzen, "The 1-2-3 Toolkit").
//
// The adaptive cousin of Greedy[d]: a released ball probes up to
// `probes` uniform candidate bins IN SEQUENCE and settles in the first
// one whose load is at most `threshold`; if no probe qualifies it
// settles in the last bin probed.  Unlike d-choices the rule usually
// stops after one probe (any bin at or below the threshold ends the
// search), which is the low-communication allocation shape the
// toolkit's protocols realize -- and the proof that the Variant axis
// of the process core absorbs adaptive rules, not just fixed-fan-out
// ones.
//
// Within a round the sequential instantiation places balls online in
// releasing-bin order (each probe sees the arrivals before it); the
// schedule-free counter-stream siblings in src/par/ use the
// batch-snapshot convention instead (core/kernel/variants.hpp).
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/kernel/ball_kernel.hpp"
#include "support/rng.hpp"

namespace rbb {

class ThresholdProcess
    : public kernel::BallProcessCore<
          kernel::Threshold<kernel::SequentialStream>,
          kernel::SequentialExecution> {
 public:
  ThresholdProcess(LoadConfig initial, load_t threshold, std::uint32_t probes,
                   Rng rng)
      : BallProcessCore(std::move(initial),
                        kernel::Threshold<kernel::SequentialStream>(
                            kernel::SequentialStream(rng), threshold,
                            probes)) {}
};

}  // namespace rbb
