// E15 -- extension [36]: repeated balls-into-bins where each re-launched
// ball picks d bins and joins the least loaded.
#include <cmath>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_dchoices(Registry& registry) {
  Experiment e;
  e.name = "dchoices";
  e.claim = "E15";
  e.title = "repeated d-choices flattens the maximum load ([36])";
  e.description =
      "Per n and d, the window max load of the repeated d-choices "
      "process.  d = 1 is the paper's process (~2 log2 n); d >= 2 "
      "collapses the maximum into the log log n regime -- the power of "
      "two choices persists under repetition.  Backend-capable "
      "(d-choices family): --backend=sharded runs the src/par/ "
      "counter-RNG kernels (batch-snapshot Greedy[d]: choices read the "
      "post-departure configuration, the convention a parallel round "
      "can realize; cf. the batched setting of Berenbrink et al. 2016).";
  e.family = ProcessFamily::kDChoices;
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 15, 40);

    ResultSet rs;
    Table& table = rs.add_table(
        "E15_dchoices",
        "repeated d-choices flattens the maximum load ([36])",
        {"n", "d", "window max (mean)", "window max (worst)",
         "max / log2 n", "log2 log2 n"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      for (const std::uint32_t d : {1u, 2u, 3u}) {
        StabilityParams p;
        p.n = n;
        p.rounds = wf * n;
        p.trials = trials;
        p.seed = ctx.seed();
        p.process = d == 1 ? StabilityProcess::kRepeated
                           : StabilityProcess::kRepeatedDChoice;
        p.choices = d;
        if (ctx.sharded()) p.backend = Backend::kSharded;
        p.plan = ctx.trial_plan(trials);
        const StabilityResult r = run_stability(p);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::uint64_t{d})
            .cell(r.window_max.mean(), 2)
            .cell(std::uint64_t{r.overall_max})
            .cell(r.window_max.mean() / log2n(n), 3)
            .cell(std::log2(log2n(n)), 2);
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
