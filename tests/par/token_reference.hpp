// Retained reference implementation of the token round for the flat
// storage parity suite (token_flat_test.cpp).
//
// Deliberately naive: per-bin std::vector queues mutated with erase()
// -- the transparent semantics the flat implicit-FIFO store of
// core/kernel/token_store.hpp must reproduce bit for bit.  One class
// covers both RNG stream policies:
//
//   * CounterStream: destination = index(round, relaunch_slot(u), n)
//     and, under the random policy, the departing position =
//     index(round, pop_select_slot(u), count) -- per-call scalar
//     draws, bit-identical to the production kernel's gathered draw
//     planes by the plane contract.
//   * SequentialStream: the pop draw (random policy) and the
//     destination draw interleave per releasing bin, draw-for-draw as
//     in the classic TokenProcess on the complete graph.
//
// Pop semantics (the canonical, order-preserving convention of the
// flat core): FIFO removes the front, LIFO the back, random the k-th
// in arrival order via erase(begin() + k) -- NOT the legacy
// BallQueue swap-remove, which perturbs the order behind the removed
// element.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/kernel/stream.hpp"
#include "core/kernel/token_kernel.hpp"  // TokenOptions
#include "core/token_process.hpp"        // QueuePolicy

namespace rbb::par::testing {

template <typename StreamP>
class ReferenceTokenProcess {
 public:
  static constexpr std::uint64_t kNotCovered =
      std::numeric_limits<std::uint64_t>::max();

  ReferenceTokenProcess(std::uint32_t bins,
                        std::vector<std::uint32_t> start_bin, StreamP stream,
                        kernel::TokenOptions options = {})
      : bins_(bins),
        stream_(std::move(stream)),
        options_(options),
        queues_(bins),
        token_bin_(std::move(start_bin)),
        progress_(token_bin_.size(), 0) {
    if (options_.track_visits) {
      words_per_token_ = (bins_ + 63) / 64;
      visited_.assign(static_cast<std::size_t>(words_per_token_) *
                          token_bin_.size(),
                      0);
      visited_count_.assign(token_bin_.size(), 0);
      cover_round_.assign(token_bin_.size(), kNotCovered);
    }
    rebuild();
  }

  void step() {
    const std::uint64_t r = round_;
    moves_.clear();
    for (std::uint32_t u = 0; u < bins_; ++u) {
      if (queues_[u].empty()) continue;
      const std::uint32_t token = release(u, r);
      ++progress_[token];
      if constexpr (StreamP::kScheduleFree) {
        moves_.emplace_back(token,
                            stream_.index(r, kernel::relaunch_slot(u),
                                          bins_));
      } else {
        moves_.emplace_back(token, stream_.rng().index(bins_));
      }
    }
    ++round_;
    for (const auto& [token, dest] : moves_) {
      queues_[dest].push_back(token);
      token_bin_[token] = dest;
      mark_visited(token, dest);
    }
  }

  void run(std::uint64_t rounds) {
    for (std::uint64_t t = 0; t < rounds; ++t) step();
  }

  std::optional<std::uint64_t> run_until_covered(std::uint64_t max_rounds) {
    while (covered_tokens_ != token_count()) {
      if (round_ >= max_rounds) return std::nullopt;
      step();
    }
    std::uint64_t worst = 0;
    for (const std::uint64_t c : cover_round_) {
      worst = std::max(worst, c);
    }
    return worst;
  }

  void reassign(const std::vector<std::uint32_t>& new_bin) {
    token_bin_ = new_bin;
    rebuild();
  }

  [[nodiscard]] std::uint32_t token_count() const noexcept {
    return static_cast<std::uint32_t>(token_bin_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint32_t token_bin(std::uint32_t token) const {
    return token_bin_[token];
  }
  [[nodiscard]] std::uint64_t progress(std::uint32_t token) const {
    return progress_[token];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& queue(
      std::uint32_t u) const {
    return queues_[u];
  }
  [[nodiscard]] std::uint32_t visited_count(std::uint32_t token) const {
    return visited_count_[token];
  }
  [[nodiscard]] std::uint64_t cover_round(std::uint32_t token) const {
    return cover_round_[token];
  }

 private:
  std::uint32_t release(std::uint32_t u, std::uint64_t r) {
    auto& q = queues_[u];
    std::size_t at = 0;
    switch (options_.policy) {
      case QueuePolicy::kFifo:
        at = 0;
        break;
      case QueuePolicy::kLifo:
        at = q.size() - 1;
        break;
      case QueuePolicy::kRandom:
        if constexpr (StreamP::kScheduleFree) {
          at = stream_.index(r, kernel::pop_select_slot(u),
                             static_cast<std::uint32_t>(q.size()));
        } else {
          at = static_cast<std::size_t>(stream_.rng().below(q.size()));
        }
        break;
    }
    const std::uint32_t token = q[at];
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(at));
    return token;
  }

  void rebuild() {
    for (auto& q : queues_) q.clear();
    for (std::uint32_t token = 0; token < token_count(); ++token) {
      if (token_bin_[token] >= bins_) {
        throw std::invalid_argument("reference: bin out of range");
      }
      queues_[token_bin_[token]].push_back(token);
      mark_visited(token, token_bin_[token]);
    }
  }

  void mark_visited(std::uint32_t token, std::uint32_t bin) {
    if (!options_.track_visits) return;
    std::uint64_t& word =
        visited_[static_cast<std::size_t>(token) * words_per_token_ +
                 bin / 64];
    const std::uint64_t bit = 1ULL << (bin % 64);
    if ((word & bit) != 0) return;
    word |= bit;
    if (++visited_count_[token] == bins_ &&
        cover_round_[token] == kNotCovered) {
      cover_round_[token] = round_;
      ++covered_tokens_;
    }
  }

  std::uint32_t bins_;
  StreamP stream_;
  kernel::TokenOptions options_;
  std::vector<std::vector<std::uint32_t>> queues_;
  std::vector<std::uint32_t> token_bin_;
  std::vector<std::uint64_t> progress_;
  std::uint64_t round_ = 0;

  std::uint32_t words_per_token_ = 0;
  std::vector<std::uint64_t> visited_;
  std::vector<std::uint32_t> visited_count_;
  std::vector<std::uint64_t> cover_round_;
  std::uint32_t covered_tokens_ = 0;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> moves_;
};

}  // namespace rbb::par::testing
