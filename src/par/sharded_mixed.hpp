// Sharded and counter-stream instantiations of the mixed-regime
// process (DESIGN.md Sect. 5).
//
// Same pattern as sharded_variants.hpp: the sharded process executes
// one round of one instance across all cores via the two-phase
// throw/commit scatter, and the single-threaded counter-stream sibling
// is its parity oracle (tests/par/sharded_mixed_test.cpp pins
// trajectories -- loads, weighted loads, drops -- bit-identical across
// worker counts and shard sizes).
//
// Draw conventions inherited from the kernel layer: the class pick of
// departure j of releasing bin u draws on counter slot
// 2^50 | (j << 32) | u, its destination on 2^51 | (j << 32) | u
// (core/kernel/stream.hpp); arrivals commit in ascending source-stripe
// then push order, which equals the sequential ascending-(u, j) order
// per destination bin, so capacity/drop decisions agree bit for bit.
#pragma once

#include <cstdint>
#include <utility>

#include "core/kernel/mixed_kernel.hpp"
#include "par/sharded_process.hpp"  // ShardedOptions

namespace rbb::par {

/// Mixed-regime process at mega n: one round across all cores.
class ShardedMixedProcess
    : public kernel::MixedProcessCore<kernel::CounterStream,
                                      kernel::ShardedExecution> {
 public:
  ShardedMixedProcess(MixedSpec spec, std::uint64_t seed,
                      ShardedOptions options = {})
      : MixedProcessCore(std::move(spec), kernel::CounterStream(seed),
                         options) {}
};

/// Single-threaded mixed-regime process under the counter stream; the
/// parity oracle for ShardedMixedProcess.
class SequentialCounterMixedProcess
    : public kernel::MixedProcessCore<kernel::CounterStream,
                                      kernel::SequentialExecution> {
 public:
  SequentialCounterMixedProcess(MixedSpec spec, std::uint64_t seed)
      : MixedProcessCore(std::move(spec), kernel::CounterStream(seed)) {}
};

}  // namespace rbb::par
