#include "ckpt/checkpoint.hpp"

#include <cstring>

#include "support/serial.hpp"

namespace rbb::ckpt {

const char* to_string(Family family) noexcept {
  switch (family) {
    case Family::kLoad:
      return "load";
    case Family::kToken:
      return "token";
    case Family::kTetris:
      return "tetris";
    case Family::kDChoices:
      return "dchoices";
    case Family::kThreshold:
      return "threshold";
    case Family::kLeaky:
      return "leaky";
    case Family::kMixed:
      return "mixed";
  }
  return "?";
}

const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kIo:
      return "io-error";
    case ErrorKind::kTruncated:
      return "truncated";
    case ErrorKind::kBadMagic:
      return "bad-magic";
    case ErrorKind::kBadVersion:
      return "bad-version";
    case ErrorKind::kBadFamily:
      return "bad-family";
    case ErrorKind::kBadStream:
      return "bad-stream";
    case ErrorKind::kHeaderCorrupt:
      return "header-corrupt";
    case ErrorKind::kPayloadCorrupt:
      return "payload-corrupt";
    case ErrorKind::kFamilyMismatch:
      return "family-mismatch";
    case ErrorKind::kDigestMismatch:
      return "options-digest-mismatch";
    case ErrorKind::kShapeMismatch:
      return "shape-mismatch";
  }
  return "?";
}

Error::Error(ErrorKind kind, const std::string& detail)
    : std::runtime_error(std::string("checkpoint ") + to_string(kind) + ": " +
                         detail),
      kind_(kind) {}

std::uint32_t digest(std::string_view canonical_options) noexcept {
  return serial::crc32(canonical_options);
}

std::string encode(const Checkpoint& ckpt) {
  serial::ByteWriter w;
  w.bytes(kMagic, sizeof kMagic);
  w.u32(ckpt.header.version);
  w.u32(static_cast<std::uint32_t>(ckpt.header.family));
  w.u32(ckpt.header.stream);
  w.u32(ckpt.header.backend);
  w.u64(ckpt.header.bins);
  w.u64(ckpt.header.entities);
  w.u64(ckpt.header.seed);
  w.u64(ckpt.header.round);
  w.u32(ckpt.header.options_digest);
  w.u32(static_cast<std::uint32_t>(ckpt.meta.size()));
  w.bytes(ckpt.meta.data(), ckpt.meta.size());
  w.u32(serial::crc32(w.str()));
  w.u64(ckpt.payload.size());
  w.bytes(ckpt.payload.data(), ckpt.payload.size());
  w.u32(serial::crc32(ckpt.payload));
  return w.take();
}

namespace {

// Fixed-size prefix before the variable-length meta block.
constexpr std::size_t kFixedHeaderBytes =
    sizeof kMagic + 4 /*version*/ + 4 /*family*/ + 4 /*stream*/ +
    4 /*backend*/ + 8 /*bins*/ + 8 /*entities*/ + 8 /*seed*/ + 8 /*round*/ +
    4 /*digest*/ + 4 /*meta_len*/;

}  // namespace

Checkpoint decode(std::string_view bytes) {
  if (bytes.size() < kFixedHeaderBytes) {
    throw Error(ErrorKind::kTruncated,
                "file is " + std::to_string(bytes.size()) +
                    " bytes, smaller than the fixed header (" +
                    std::to_string(kFixedHeaderBytes) + ")");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw Error(ErrorKind::kBadMagic, "not an rbb.ckpt file");
  }

  serial::ByteReader r(bytes);
  char magic[sizeof kMagic];
  r.bytes(magic, sizeof magic);

  Checkpoint ckpt;
  ckpt.header.version = r.u32();
  if (ckpt.header.version != kFormatVersion) {
    throw Error(ErrorKind::kBadVersion,
                "format version " + std::to_string(ckpt.header.version) +
                    ", this build reads version " +
                    std::to_string(kFormatVersion));
  }
  const std::uint32_t family_tag = r.u32();
  if (family_tag >= kFamilyCount) {
    throw Error(ErrorKind::kBadFamily,
                "family tag " + std::to_string(family_tag) + " out of range");
  }
  ckpt.header.family = static_cast<Family>(family_tag);
  ckpt.header.stream = r.u32();
  if (ckpt.header.stream != kStreamCounter) {
    throw Error(ErrorKind::kBadStream,
                "stream tag " + std::to_string(ckpt.header.stream) +
                    " is not a checkpointable counter stream");
  }
  ckpt.header.backend = r.u32();
  ckpt.header.bins = r.u64();
  ckpt.header.entities = r.u64();
  ckpt.header.seed = r.u64();
  ckpt.header.round = r.u64();
  ckpt.header.options_digest = r.u32();

  const std::uint32_t meta_len = r.u32();
  if (meta_len > r.remaining()) {
    throw Error(ErrorKind::kTruncated, "meta block runs past end of file");
  }
  ckpt.meta.resize(meta_len);
  if (meta_len != 0) r.bytes(ckpt.meta.data(), meta_len);

  const std::size_t header_region = kFixedHeaderBytes + meta_len;
  if (r.remaining() < 4) {
    throw Error(ErrorKind::kTruncated, "missing header checksum");
  }
  const std::uint32_t header_crc = r.u32();
  if (header_crc != serial::crc32(bytes.substr(0, header_region))) {
    throw Error(ErrorKind::kHeaderCorrupt, "header/meta CRC32 mismatch");
  }

  if (r.remaining() < 8) {
    throw Error(ErrorKind::kTruncated, "missing payload length");
  }
  const std::uint64_t payload_len = r.u64();
  if (r.remaining() < 4 || payload_len != r.remaining() - 4) {
    throw Error(ErrorKind::kTruncated,
                "payload length " + std::to_string(payload_len) +
                    " disagrees with file size (" +
                    std::to_string(r.remaining()) +
                    " bytes follow the header)");
  }
  ckpt.payload.resize(static_cast<std::size_t>(payload_len));
  if (payload_len != 0) {
    r.bytes(ckpt.payload.data(), static_cast<std::size_t>(payload_len));
  }
  const std::uint32_t payload_crc = r.u32();
  if (payload_crc != serial::crc32(ckpt.payload)) {
    throw Error(ErrorKind::kPayloadCorrupt, "payload CRC32 mismatch");
  }
  return ckpt;
}

void verify_matches(const Header& header, Family family, std::uint64_t bins,
                    std::uint64_t entities, std::uint64_t seed,
                    std::uint32_t options_digest) {
  if (header.family != family) {
    throw Error(ErrorKind::kFamilyMismatch,
                std::string("checkpoint is for family '") +
                    to_string(header.family) + "', restore target is '" +
                    to_string(family) + "'");
  }
  if (header.bins != bins || header.entities != entities ||
      header.seed != seed) {
    throw Error(ErrorKind::kShapeMismatch,
                "checkpoint (n=" + std::to_string(header.bins) +
                    ", m=" + std::to_string(header.entities) +
                    ", seed=" + std::to_string(header.seed) +
                    ") vs restore target (n=" + std::to_string(bins) +
                    ", m=" + std::to_string(entities) +
                    ", seed=" + std::to_string(seed) + ")");
  }
  if (header.options_digest != options_digest) {
    throw Error(ErrorKind::kDigestMismatch,
                "checkpoint options digest " +
                    std::to_string(header.options_digest) +
                    " != restore target digest " +
                    std::to_string(options_digest) +
                    " (different experiment parameters)");
  }
}

}  // namespace rbb::ckpt
