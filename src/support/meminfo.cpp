#include "support/meminfo.hpp"

#include <cstdio>
#include <cstring>

namespace rbb {

std::uint64_t peak_rss_bytes() noexcept {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::uint64_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      if (std::sscanf(line + 6, "%llu",
                      reinterpret_cast<unsigned long long*>(&kb)) != 1) {
        kb = 0;
      }
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace rbb
