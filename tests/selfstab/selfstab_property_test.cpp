// Property-style sweeps over the Israeli-Jalfon process: the same
// invariants must hold on every topology x placement x laziness
// combination (token conservation-by-merging, eventual coalescence on
// connected graphs with a lazy walk, seed determinism).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/graph.hpp"
#include "selfstab/israeli_jalfon.hpp"

namespace rbb {
namespace {

struct IjCase {
  std::string topology;  // "complete", "cycle", "torus", "hypercube", "star"
  std::uint32_t n = 0;
  TokenPlacement placement = TokenPlacement::kEveryNode;
};

Graph build(const IjCase& c) {
  if (c.topology == "cycle") return make_cycle(c.n);
  if (c.topology == "torus") return make_torus(4, c.n / 4);
  if (c.topology == "hypercube") {
    std::uint32_t dim = 0;
    while ((1u << dim) < c.n) ++dim;
    return make_hypercube(dim);
  }
  if (c.topology == "star") return make_star(c.n);
  return make_complete(c.n);
}

class IsraeliJalfonProperty : public ::testing::TestWithParam<IjCase> {};

TEST_P(IsraeliJalfonProperty, MergeAccountingIsExactEveryRound) {
  const IjCase c = GetParam();
  const Graph g = build(c);
  IsraeliJalfonProcess proc(&g, c.n, c.placement, Rng(5));
  for (int t = 0; t < 300 && !proc.is_legitimate(); ++t) {
    const std::uint32_t before = proc.token_count();
    const std::uint32_t merges = proc.step();
    ASSERT_EQ(proc.token_count() + merges, before);
    ASSERT_GE(proc.token_count(), 1u);
    proc.check_invariants();
  }
}

TEST_P(IsraeliJalfonProperty, LazyWalkCoalescesOnEveryConnectedTopology) {
  const IjCase c = GetParam();
  const Graph g = build(c);
  IsraeliJalfonProcess proc(&g, c.n, c.placement, Rng(6));
  proc.run_until_single(4000000ull);
  EXPECT_TRUE(proc.is_legitimate())
      << c.topology << " n=" << c.n << " " << to_string(c.placement);
}

TEST_P(IsraeliJalfonProperty, TrajectoriesAreSeedDeterministic) {
  const IjCase c = GetParam();
  const Graph g = build(c);
  auto run = [&] {
    IsraeliJalfonProcess proc(&g, c.n, c.placement, Rng(7));
    for (int t = 0; t < 50; ++t) proc.step();
    return std::make_pair(proc.token_count(), proc.tokens());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST_P(IsraeliJalfonProperty, CoverCompletesAfterCoalescence) {
  const IjCase c = GetParam();
  if (c.n > 32) GTEST_SKIP() << "cover sweep kept small for test runtime";
  const Graph g = build(c);
  IsraeliJalfonProcess proc(&g, c.n, c.placement, Rng(8));
  proc.run_until_single(4000000ull);
  ASSERT_TRUE(proc.is_legitimate());
  const std::uint64_t cover = proc.run_single_token_cover(10000000ull);
  EXPECT_LT(cover, 10000000ull) << c.topology;
  EXPECT_GE(cover + 1, c.n - 1);  // must at least touch every other node
}

INSTANTIATE_TEST_SUITE_P(
    TopologySweep, IsraeliJalfonProperty,
    ::testing::Values(
        IjCase{"complete", 16, TokenPlacement::kEveryNode},
        IjCase{"complete", 64, TokenPlacement::kRandomHalf},
        IjCase{"cycle", 16, TokenPlacement::kEveryNode},
        IjCase{"cycle", 17, TokenPlacement::kTwoNodes},  // odd: non-bipartite
        IjCase{"torus", 16, TokenPlacement::kEveryNode},
        IjCase{"hypercube", 16, TokenPlacement::kTwoNodes},
        IjCase{"star", 16, TokenPlacement::kEveryNode},
        IjCase{"star", 16, TokenPlacement::kRandomHalf},
        IjCase{"complete", 16, TokenPlacement::kTwoNodes},
        IjCase{"cycle", 32, TokenPlacement::kRandomHalf}),
    [](const ::testing::TestParamInfo<IjCase>& param_info) {
      std::string placement = to_string(param_info.param.placement);
      for (auto& ch : placement) {
        if (ch == '-') ch = '_';
      }
      return param_info.param.topology + "_" + std::to_string(param_info.param.n) + "_" +
             placement;
    });

}  // namespace
}  // namespace rbb
