// E1 -- Theorem 1 (stability): from a legitimate configuration the
// repeated balls-into-bins process visits only legitimate configurations
// over a long window.  (Registry port of the former bench/exp_stability
// main; the bench binary is now a shim over this registration.)
#include <cmath>
#include <vector>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_stability(Registry& registry) {
  Experiment e;
  e.name = "stability";
  e.claim = "E1";
  e.title = "window max load stays O(log n) (Theorem 1)";
  e.description =
      "From the one-per-bin legitimate start, runs the repeated "
      "balls-into-bins process for a window of c*n rounds and reports the "
      "per-trial maximum load, its ratio to log2(n) (the paper's O(log n) "
      "constant made visible), the minimum empty-bin fraction (Lemma 1 "
      "floor: 1/4), and the fraction of trials whose whole window stayed "
      "legitimate at beta = 4.  Backend-capable (load-only family): "
      "--backend=sharded runs the window on the src/par/ counter-RNG "
      "kernel; --threads sets the total budget and --trial-parallelism "
      "splits it between concurrent trials and sharded rounds inside "
      "each trial.";
  e.family = ProcessFamily::kLoadOnly;
  e.params = {
      {"window-factor", ParamSpec::Type::kU64, "0",
       "window = factor * n rounds (0 = scale default)"},
      {"n", ParamSpec::Type::kU64, "0",
       "run a single n instead of the scale sweep"},
      {"ball-ratio", ParamSpec::Type::kF64, "0",
       "balls m = round(ratio * n) (0 = the paper's m = n)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint64_t wf =
        ctx.params.u64("window-factor") != 0
            ? ctx.params.u64("window-factor")
            : by_scale<std::uint64_t>(ctx.scale, 5, 20, 50);
    const std::vector<std::uint32_t> ns =
        ctx.params.u64("n") != 0
            ? std::vector<std::uint32_t>{ctx.params.u32("n")}
            : default_n_sweep(ctx.scale);

    ResultSet rs;
    Table& table = rs.add_table(
        "E1_stability", "window max load stays O(log n) (Theorem 1)",
        {"n", "window (rounds)", "trials", "max load (mean)",
         "max load (worst)", "max / log2 n", "min empty frac",
         "legit frac (beta=4)"});
    for (const std::uint32_t n : ns) {
      StabilityParams p;
      p.n = n;
      p.rounds = wf * n;
      p.trials = trials;
      p.seed = ctx.seed();
      p.start = InitialConfig::kOnePerBin;
      if (ctx.params.f64("ball-ratio") != 0) {
        p.balls = static_cast<std::uint64_t>(
            std::llround(ctx.params.f64("ball-ratio") * n));
      }
      if (ctx.sharded()) p.backend = Backend::kSharded;
      p.plan = ctx.trial_plan(trials);
      const StabilityResult r = run_stability(p);
      table.row()
          .cell(std::uint64_t{n})
          .cell(p.rounds)
          .cell(std::uint64_t{trials})
          .cell(r.window_max.mean(), 2)
          .cell(std::uint64_t{r.overall_max})
          .cell(r.window_max.mean() / log2n(n), 3)
          .cell(r.min_empty_fraction.min(), 3)
          .cell(r.legit_window_fraction, 2);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
