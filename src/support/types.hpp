// Fixed-width arithmetic types shared by every round kernel.
//
// The kernels are sized for the mega scale (n up to 10^9 bins with
// --scale=mega headroom toward 2^32), so the width of every quantity is
// a contract, not a convenience:
//
//   * bin_index_t -- a bin (node, station) index in [0, n).  32 bits:
//     n < 2^32 is a hard precondition of the samplers (Lemire bounded
//     draws produce 32-bit indices) and of the scatter buffers.
//   * load_t -- one bin's ball count.  32 bits: a single bin can hold
//     every ball only in adversarial starts, and the experiments keep
//     m <= a small multiple of n < 2^32.  LoadConfig is a vector of
//     exactly this type; the kernels static_assert the match so a
//     silent vector-of-something-else can never compile.
//   * ball_count_t -- a SYSTEM-WIDE ball count or any sum over bins.
//     64 bits, always: at n = 10^9 a sum of 32-bit loads overflows
//     32-bit arithmetic as soon as the mean load exceeds ~4 -- this is
//     the one place narrowing would be silent and wrong, so totals
//     (total_balls, departures accumulated across rounds, arrival
//     counters) must be carried in ball_count_t.
//   * round_t -- a round index.  64 bits: poly(n) windows at mega n
//     exceed 2^32 rounds.
//   * weight_t -- one ball's integer weight (mixed-regime engine).
//     32 bits: the weight-class tables keep per-class weights small
//     (unit .. a few hundred), and a single ball never needs more.
//   * weighted_load_t -- a weighted ball count: one bin's weighted
//     load, or any weighted sum over bins.  64 bits, always: at the
//     m = 8n mega regime (m = 8e8 balls) even UNIT weights push
//     system-wide totals past 2^32, and per-bin weighted loads reach
//     m * max_weight in adversarial starts -- load_t * weight_t
//     products must never be accumulated in 32 bits.
//
// Per-round per-bin quantities (empty-bin counts <= n) fit in 32 bits
// by construction and stay uint32_t.  Per-round DEPARTURE totals do
// not once m decouples from n: with m = c * n and c = 8 at mega n a
// single round can release up to min(m, sum_u rate_u) balls, so
// departure counters are ball_count_t even within one round.
#pragma once

#include <cstdint>

namespace rbb {

using bin_index_t = std::uint32_t;
using load_t = std::uint32_t;
using ball_count_t = std::uint64_t;
using round_t = std::uint64_t;
using weight_t = std::uint32_t;
using weighted_load_t = std::uint64_t;

static_assert(sizeof(ball_count_t) == 8,
              "system-wide ball counts must be 64-bit: at n = 1e9 a "
              "32-bit total overflows at mean load ~4");
static_assert(sizeof(round_t) == 8,
              "round indices must be 64-bit: poly(n) windows at mega n "
              "exceed 2^32 rounds");
static_assert(sizeof(weighted_load_t) == 8,
              "weighted totals must be 64-bit: m = 8n at mega scale "
              "overflows 32 bits even at unit weight, and per-bin "
              "weighted loads reach m * max_weight in adversarial "
              "starts");
static_assert(sizeof(weighted_load_t) >= sizeof(load_t) + sizeof(weight_t),
              "a load_t * weight_t product must fit weighted_load_t "
              "without truncation");

}  // namespace rbb
