#include "par/sharded_token_process.hpp"

#include <algorithm>
#include <stdexcept>

namespace rbb::par {

ShardedTokenProcess::ShardedTokenProcess(std::uint32_t bins,
                                         std::vector<std::uint32_t> start_bin,
                                         std::uint64_t seed,
                                         ShardedOptions options)
    : bins_(bins),
      plan_(bins == 0 ? 1 : bins, options.shard_size),
      rng_(seed),
      exec_(options.threads),
      token_bin_(std::move(start_bin)),
      progress_(token_bin_.size(), 0) {
  if (bins_ == 0) {
    throw std::invalid_argument("ShardedTokenProcess: bins == 0");
  }
  if (token_bin_.empty()) {
    throw std::invalid_argument("ShardedTokenProcess: no tokens");
  }
  for (const std::uint32_t bin : token_bin_) {
    if (bin >= bins_) {
      throw std::invalid_argument(
          "ShardedTokenProcess: start bin out of range");
    }
  }
  queues_.resize(bins_);
  buffers_.resize(static_cast<std::size_t>(plan_.stripe_count()) *
                  plan_.shard_count());
  acc_.resize(plan_.stripe_count());
  rebuild_queues();
}

void ShardedTokenProcess::step() {
  const std::uint32_t n = bins_;
  const std::uint32_t shard_count = plan_.shard_count();

  // Phase 1 (throw): each stripe releases its FIFO heads in ascending
  // bin order, so every buffer is filled sorted by releasing bin.  A
  // token sits in exactly one queue, so the progress_ writes are
  // stripe-exclusive too.
  exec_.for_stripes(plan_.stripe_count(), [&](std::uint32_t g) {
    std::vector<Arrival>* row =
        &buffers_[static_cast<std::size_t>(g) * shard_count];
    const std::uint32_t begin = plan_.shard_begin(plan_.stripe_begin_shard(g));
    const std::uint32_t end =
        plan_.stripe_end_shard(g) == shard_count
            ? n
            : plan_.shard_begin(plan_.stripe_end_shard(g));
    for (std::uint32_t u = begin; u < end; ++u) {
      if (queues_[u].empty()) continue;
      const std::uint32_t token = queues_[u].pop(QueuePolicy::kFifo, dummy_);
      ++progress_[token];
      const std::uint32_t dest = rng_.index(round_, u, n);
      row[plan_.shard_of(dest)].push_back(Arrival{dest, token});
    }
  });

  // Phase 2 (commit): drain buffers in ascending source-stripe order so
  // every bin enqueues its arrivals sorted by releasing bin -- the
  // canonical order the sequential reference realizes by construction.
  // A token arrives in exactly one buffer, so the token_bin_ writes are
  // stripe-exclusive.
  exec_.for_stripes(plan_.stripe_count(), [&](std::uint32_t g) {
    StripeAcc& acc = acc_[g];
    acc.max = 0;
    acc.zeros = 0;
    for (std::uint32_t s = plan_.stripe_begin_shard(g);
         s < plan_.stripe_end_shard(g); ++s) {
      for (std::uint32_t src = 0; src < plan_.stripe_count(); ++src) {
        std::vector<Arrival>& buf =
            buffers_[static_cast<std::size_t>(src) * shard_count + s];
        for (const Arrival& arrival : buf) {
          queues_[arrival.dest].push(arrival.token);
          token_bin_[arrival.token] = arrival.dest;
        }
        buf.clear();
      }
      for (std::uint32_t u = plan_.shard_begin(s); u < plan_.shard_end(s);
           ++u) {
        const auto load = static_cast<std::uint32_t>(queues_[u].size());
        if (load == 0) {
          ++acc.zeros;
        } else if (load > acc.max) {
          acc.max = load;
        }
      }
    }
  });

  max_load_ = 0;
  empty_ = 0;
  for (const StripeAcc& acc : acc_) {
    max_load_ = std::max(max_load_, acc.max);
    empty_ += acc.zeros;
  }
  ++round_;
}

void ShardedTokenProcess::run(std::uint64_t rounds) {
  for (std::uint64_t t = 0; t < rounds; ++t) step();
}

LoadConfig ShardedTokenProcess::loads() const {
  LoadConfig loads(bins_, 0);
  for (std::uint32_t u = 0; u < bins_; ++u) {
    loads[u] = static_cast<std::uint32_t>(queues_[u].size());
  }
  return loads;
}

std::uint64_t ShardedTokenProcess::min_progress() const {
  std::uint64_t lo = progress_.empty() ? 0 : progress_[0];
  for (const std::uint64_t p : progress_) lo = std::min(lo, p);
  return lo;
}

void ShardedTokenProcess::reassign(const std::vector<std::uint32_t>& new_bin) {
  if (new_bin.size() != token_bin_.size()) {
    throw std::invalid_argument("reassign: token count mismatch");
  }
  for (const std::uint32_t bin : new_bin) {
    if (bin >= bins_) {
      throw std::invalid_argument("reassign: bin out of range");
    }
  }
  token_bin_ = new_bin;
  rebuild_queues();
}

void ShardedTokenProcess::rebuild_queues() {
  for (BallQueue& queue : queues_) queue.clear();
  for (std::uint32_t token = 0; token < token_count(); ++token) {
    queues_[token_bin_[token]].push(token);
  }
  rescan_stats();
}

void ShardedTokenProcess::rescan_stats() {
  max_load_ = 0;
  empty_ = 0;
  for (std::uint32_t u = 0; u < bins_; ++u) {
    const auto load = static_cast<std::uint32_t>(queues_[u].size());
    if (load == 0) {
      ++empty_;
    } else if (load > max_load_) {
      max_load_ = load;
    }
  }
}

void ShardedTokenProcess::check_invariants() const {
  std::uint64_t queued = 0;
  for (std::uint32_t u = 0; u < bins_; ++u) {
    for (const std::uint32_t token : queues_[u].snapshot()) {
      if (token_bin_[token] != u) {
        throw std::logic_error(
            "ShardedTokenProcess: queue/token position mismatch");
      }
      ++queued;
    }
  }
  if (queued != token_bin_.size()) {
    throw std::logic_error("ShardedTokenProcess: token count drifted");
  }
  for (const auto& buf : buffers_) {
    if (!buf.empty()) {
      throw std::logic_error(
          "ShardedTokenProcess: scatter buffer not drained");
    }
  }
}

}  // namespace rbb::par
