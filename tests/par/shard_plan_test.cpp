// Tests for the bin-partitioning arithmetic behind the sharded kernels.
#include "par/shard.hpp"

#include <gtest/gtest.h>

namespace rbb::par {
namespace {

TEST(ShardPlan, CoversEveryBinExactlyOnce) {
  for (const std::uint32_t n : {1u, 15u, 16u, 100u, 4096u, 100003u}) {
    for (const std::uint32_t shard_size : {0u, 64u, 100u, 1024u}) {
      const ShardPlan plan(n, shard_size);
      std::uint32_t covered = 0;
      for (std::uint32_t s = 0; s < plan.shard_count(); ++s) {
        EXPECT_EQ(plan.shard_begin(s), covered);
        EXPECT_GT(plan.shard_end(s), plan.shard_begin(s));
        for (std::uint32_t u = plan.shard_begin(s); u < plan.shard_end(s);
             ++u) {
          EXPECT_EQ(plan.shard_of(u), s);
        }
        covered = plan.shard_end(s);
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ShardPlan, StripesTileTheShardsInOrder) {
  for (const std::uint32_t n : {16u, 4096u, 1000000u}) {
    for (const std::uint32_t shard_size : {64u, 1024u, 16384u}) {
      const ShardPlan plan(n, shard_size);
      EXPECT_GE(plan.stripe_count(), 1u);
      EXPECT_LE(plan.stripe_count(), kMaxStripes);
      EXPECT_LE(plan.stripe_count(), plan.shard_count());
      std::uint32_t next = 0;
      for (std::uint32_t g = 0; g < plan.stripe_count(); ++g) {
        EXPECT_EQ(plan.stripe_begin_shard(g), next);
        EXPECT_GT(plan.stripe_end_shard(g), plan.stripe_begin_shard(g))
            << "empty stripe " << g;
        next = plan.stripe_end_shard(g);
      }
      EXPECT_EQ(next, plan.shard_count());
    }
  }
}

TEST(ShardPlan, ShardSizeIsCacheLineAligned) {
  EXPECT_EQ(ShardPlan(1000, 1).shard_size(), 16u);
  EXPECT_EQ(ShardPlan(1000, 17).shard_size(), 32u);
  EXPECT_EQ(ShardPlan(1000, 64).shard_size(), 64u);
  EXPECT_EQ(ShardPlan(1000, 0).shard_size(), kDefaultShardSize);
}

TEST(ShardPlan, RejectsZeroBins) {
  EXPECT_THROW(ShardPlan(0), std::invalid_argument);
}

}  // namespace
}  // namespace rbb::par
