// Byte-level serialization primitives for the durability layer
// (DESIGN.md Sect. 7): a little-endian byte writer/reader pair and the
// CRC32 (IEEE, reflected 0xEDB88320) used to guard every checkpoint
// region.
//
// Lives in support/ (the bottom layer) so the kernel cores can
// serialize themselves without depending on src/ckpt/: a core's
// snapshot()/restore() speaks ByteWriter/ByteReader, and the checkpoint
// format (src/ckpt/checkpoint.hpp) wraps those bytes in the versioned,
// checksummed rbb.ckpt.v1 envelope.
//
// Integers are written via memcpy in native order; the repository
// targets little-endian platforms only (the same assumption the raw
// struct dumps of FlatTokenStore make), so the on-disk format is
// little-endian by construction.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace rbb::serial {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace detail

/// CRC32 of `size` bytes.  Chainable: pass a previous result as `crc`
/// to extend the checksum over a further region.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size,
                                         std::uint32_t crc = 0) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = detail::kCrcTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes,
                                         std::uint32_t crc = 0) noexcept {
  return crc32(bytes.data(), bytes.size(), crc);
}

/// Append-only byte sink.  Fixed-width integers, doubles, raw byte
/// runs, and length-prefixed vectors of trivially copyable elements.
class ByteWriter {
 public:
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }
  void bytes(const void* data, std::size_t size) { append(data, size); }

  /// u64 element count followed by the raw element bytes.
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "vec() serializes raw element bytes");
    u64(v.size());
    if (!v.empty()) append(v.data(), v.size() * sizeof(T));
  }

  [[nodiscard]] const std::string& str() const noexcept { return bytes_; }
  [[nodiscard]] std::string take() { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  void append(const void* data, std::size_t size) {
    bytes_.append(static_cast<const char*>(data), size);
  }

  std::string bytes_;
};

/// Cursor over an immutable byte span; every read throws
/// std::runtime_error on underflow (a checkpoint payload is
/// CRC-verified before it reaches a reader, so underflow here means the
/// payload belongs to a differently-shaped process).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) noexcept : data_(data) {}

  [[nodiscard]] std::uint32_t u32() { return scalar<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return scalar<std::uint64_t>(); }
  [[nodiscard]] double f64() { return scalar<double>(); }

  void bytes(void* out, std::size_t size) {
    std::memcpy(out, take(size), size);
  }

  /// Counterpart of ByteWriter::vec.  `max_count` bounds the element
  /// count before any allocation happens, so a corrupt length cannot
  /// trigger a huge resize.
  template <typename T>
  void vec(std::vector<T>& out,
           std::uint64_t max_count = std::uint64_t{1} << 40) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = u64();
    if (count > max_count || count > remaining() / sizeof(T)) {
      throw std::runtime_error("serial: vector length exceeds payload");
    }
    out.resize(static_cast<std::size_t>(count));
    if (count != 0) {
      std::memcpy(out.data(), take(static_cast<std::size_t>(count) * sizeof(T)),
                  static_cast<std::size_t>(count) * sizeof(T));
    }
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  [[nodiscard]] T scalar() {
    T v;
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
    return v;
  }

  [[nodiscard]] const char* take(std::size_t size) {
    if (size > remaining()) {
      throw std::runtime_error("serial: read past end of payload");
    }
    const char* p = data_.data() + offset_;
    offset_ += size;
    return p;
  }

  std::string_view data_;
  std::size_t offset_ = 0;
};

}  // namespace rbb::serial
