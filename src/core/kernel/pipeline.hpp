// Pipelined round loop for the sharded kernels (DESIGN.md Sect. 5,
// "Pipelined execution").
//
// The barriered path runs every round as two (or three) fork/join
// for_stripes batches with a full pool barrier between phases.  This
// driver replaces that with ONE resident worker team for the whole
// multi-round run: stripes are statically assigned to team workers
// (stripe g -> worker g % width), and workers advance through the
// phase sequence by publishing per-worker epoch counters
// (acquire/release; no locks, no pool traffic on the hot path).
//
// Per round i, each worker executes
//
//   throw own stripes        (round i draws into the parity-(i&1)
//                             buffer set; reads/writes OWN bins only)
//   throw_done[w] = i+1      (release)
//   wait throw_done[*] >= i+1  (acquire)
//   [choose own stripes      (reads arbitrary post-departure loads)
//    choose_done[w] = i+1; wait choose_done[*] >= i+1]
//   commit own stripes       (drains every stripe's parity-(i&1)
//                             buffers destined to OWN shards)
//   commit_done[w] = i+1     (release)
//
// Note there is NO wait before the throw phase -- that is the
// pipelining.  Worker w may begin throw(i+1) while peers still commit
// round i; the counter RNG stream (dest = f(seed, round, slot)) makes
// round-(i+1) draws computable before round i retires anywhere, and the
// only state throw(i+1) touches is w's own bins, last written by w's
// own commit(i) in program order.
//
// Why buffer reuse at parity distance 2 is still safe with no extra
// wait: w's throw(i+2) is preceded (in w's program order) by w's
// round-(i+1) wait on throw_done[*] >= i+2, and a peer's throw_done
// reaching i+2 orders that peer's commit(i) -- which drained the
// parity-(i&1) buffers w is about to refill -- before the wait's
// acquire.  The same transitivity covers the choose phase's arbitrary
// load reads.  The chain is pure acquire/release on the epoch cells,
// so ThreadSanitizer sees every edge (CI runs the parity suite under
// TSan at RBB_THREADS=4).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/kernel/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rbb::kernel {

namespace detail {

/// One per-worker epoch counter on its own cache line: the number of
/// rounds of a given phase the worker has completed.  Per-worker (not
/// per-shard) granularity loses nothing: a commit needs ALL stripes'
/// throws, so every wait is inherently global.
struct alignas(64) EpochCell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Runs `rounds` pipelined rounds of (throw_fn, [choose_fn,] commit_fn)
/// over stripes [0, stripe_count) on a resident team of `width` workers
/// (width <= stripe_count; callers clamp).  Phase callables receive
/// (stripe, round_index).  Returns false -- having executed nothing --
/// when the executor cannot host a concurrent team (inline execution,
/// pool busy, nested without a grant); the caller then falls back to
/// barriered rounds.  The first exception thrown by a phase body aborts
/// the remaining rounds cooperatively and is rethrown here, leaving
/// kernel state partially advanced exactly like the barriered path.
template <typename ThrowFn, typename ChooseFn, typename CommitFn>
bool run_pipeline(StripeExecutor& stripes, std::uint32_t stripe_count,
                  std::uint32_t width, std::uint64_t rounds, bool has_choose,
                  ThrowFn&& throw_fn, ChooseFn&& choose_fn,
                  CommitFn&& commit_fn) {
  std::vector<detail::EpochCell> throw_done(width);
  std::vector<detail::EpochCell> choose_done(has_choose ? width : 0);
  std::vector<detail::EpochCell> commit_done(width);
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  // Spin until every worker's cell reaches `target` (acquire pairs with
  // the workers' release stores).  Aborts early -- returning false --
  // when a peer has thrown.  Spin time is the pipeline's entire
  // synchronization cost and is recorded as kEpochWait; it runs inside
  // the team task body, so kPoolTask already contains it (the
  // barrier_wait_fraction denominator relies on that).  Short waits
  // (balanced stripes on real cores) stay on yield; past a bounded spin
  // budget the waiter sleeps in 50 us slices -- on an oversubscribed
  // machine the peer it waits for needs this CPU, and a spinning waiter
  // stealing timeslices from it showed up as a measurable regression on
  // the 1-core container.
  const auto wait_all = [&abort](std::vector<detail::EpochCell>& cells,
                                 std::uint64_t target) -> bool {
    constexpr std::uint32_t kSpinsBeforeSleep = 256;
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    bool ok = true;
    std::uint32_t spins = 0;
    for (detail::EpochCell& cell : cells) {
      while (cell.value.load(std::memory_order_acquire) < target) {
        if (abort.load(std::memory_order_acquire)) {
          ok = false;
          break;
        }
        if (++spins < kSpinsBeforeSleep) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      if (!ok) break;
    }
    if (t0 != 0) {
      const std::uint64_t t1 = obs::now_ns();
      obs::add_phase_ns(obs::Phase::kEpochWait, t1 - t0);
      obs::record_span("epoch_wait", t0, t1);
    }
    return ok;
  };

  const bool ran = stripes.run_team(width, [&](std::uint32_t w) {
    try {
      for (std::uint64_t i = 0; i < rounds; ++i) {
        if (abort.load(std::memory_order_acquire)) return;

        // Overlap telemetry: if any peer is still committing round i-1
        // when this worker starts throwing round i, the whole throw
        // block is work hidden behind a commit that the barriered path
        // would have stalled on.  Granularity is one throw phase --
        // an honest upper-bound sample, documented in metrics.hpp.
        std::uint64_t o0 = 0;
        if (i > 0 && obs::enabled()) {
          for (const detail::EpochCell& cell : commit_done) {
            if (cell.value.load(std::memory_order_relaxed) < i) {
              o0 = obs::now_ns();
              break;
            }
          }
        }
        for (std::uint32_t g = w; g < stripe_count; g += width) {
          throw_fn(g, i);
        }
        if (o0 != 0) {
          obs::add_phase_ns(obs::Phase::kOverlap, obs::now_ns() - o0);
        }
        throw_done[w].value.store(i + 1, std::memory_order_release);
        if (!wait_all(throw_done, i + 1)) return;

        if (has_choose) {
          // Choose reads post-departure loads of arbitrary bins, so it
          // needs all throws of round i (the wait above) and must fully
          // precede any commit of round i (the wait below).
          for (std::uint32_t g = w; g < stripe_count; g += width) {
            choose_fn(g, i);
          }
          choose_done[w].value.store(i + 1, std::memory_order_release);
          if (!wait_all(choose_done, i + 1)) return;
        }

        for (std::uint32_t g = w; g < stripe_count; g += width) {
          commit_fn(g, i);
        }
        commit_done[w].value.store(i + 1, std::memory_order_release);
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true, std::memory_order_release);
    }
  });
  if (!ran) return false;
  if (first_error) std::rethrow_exception(first_error);
  return true;
}

}  // namespace rbb::kernel
