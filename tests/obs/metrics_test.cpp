// Tests for the telemetry metrics registry (src/obs/metrics.hpp): slot
// aggregation across pool workers, reset semantics, the disabled path
// recording nothing, and the RBB_TELEMETRY=0 zero-cost contract.
//
// The expectations are written to hold in BOTH builds: under
// RBB_TELEMETRY=0 every entry point is a no-op and scrape() returns
// zeros, so the expected totals collapse to 0.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

namespace rbb::obs {
namespace {

// The zero-cost contract of the no-op build, pinned at compile time:
// ScopedPhase is an empty object (the optimizer deletes it outright)
// and enabled() is a constant false usable in constexpr contexts.
#if !RBB_TELEMETRY
static_assert(sizeof(ScopedPhase) == 1,
              "RBB_TELEMETRY=0 must make ScopedPhase stateless");
static_assert(!enabled(), "RBB_TELEMETRY=0 must hardwire enabled() off");
constexpr std::uint64_t kExpected = 0;  // no-op build records nothing
#else
constexpr std::uint64_t kExpected = 1;  // multiplier for real totals
#endif

/// Leaves the global registry the way every test expects to find it.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(MetricsTest, CounterAggregatesAcrossPoolWorkers) {
  constexpr std::uint64_t kTasks = 4096;
  for (const unsigned workers : {1u, 2u, 8u}) {
    reset();
    set_enabled(true);
    ThreadPool pool(workers);
    // kMixedDrops is not touched by the pool's own instrumentation, so
    // the total is exactly the task count -- regardless of how the
    // batch was split across worker slots.
    pool.parallel_for(kTasks, [](std::uint64_t) {
      add(Counter::kMixedDrops);
    });
    set_enabled(false);
    EXPECT_EQ(scrape().counter(Counter::kMixedDrops), kTasks * kExpected)
        << "workers=" << workers;
  }
}

TEST_F(MetricsTest, DeltaAndPhaseTotalsSum) {
  set_enabled(true);
  add(Counter::kLemireRetries, 3);
  add(Counter::kLemireRetries, 4);
  add_phase_ns(Phase::kRescan, 100);
  add_phase_ns(Phase::kRescan, 23);
  set_enabled(false);
  const MetricsSnapshot snap = scrape();
  EXPECT_EQ(snap.counter(Counter::kLemireRetries), 7 * kExpected);
  EXPECT_EQ(snap.phase(Phase::kRescan), 123 * kExpected);
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  ASSERT_FALSE(enabled());
  add(Counter::kMixedDrops, 1000);
  add_phase_ns(Phase::kThrow, 1000);
  {
    const ScopedPhase span(Phase::kCommit);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const MetricsSnapshot snap = scrape();
  EXPECT_EQ(snap.counter(Counter::kMixedDrops), 0u);
  EXPECT_EQ(snap.phase(Phase::kThrow), 0u);
  EXPECT_EQ(snap.phase(Phase::kCommit), 0u);
}

TEST_F(MetricsTest, ResetZeroesEverySlot) {
  set_enabled(true);
  ThreadPool pool(2);
  pool.parallel_for(64, [](std::uint64_t) { add(Counter::kMixedDrops); });
  set_enabled(false);
  ASSERT_EQ(scrape().counter(Counter::kMixedDrops), 64 * kExpected);
  reset();
  const MetricsSnapshot snap = scrape();
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    EXPECT_EQ(snap.counters[c], 0u) << to_string(static_cast<Counter>(c));
  }
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    EXPECT_EQ(snap.phase_ns[p], 0u) << to_string(static_cast<Phase>(p));
  }
}

TEST_F(MetricsTest, ScopedPhaseMeasuresElapsedTime) {
  set_enabled(true);
  {
    const ScopedPhase span(Phase::kPlaneFill);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  set_enabled(false);
  // >= 1 ms leaves generous slack below the 2 ms sleep; the no-op build
  // records exactly 0.
  EXPECT_GE(scrape().phase(Phase::kPlaneFill), 1000000 * kExpected);
}

TEST_F(MetricsTest, PoolInstrumentationCountsBatchesAndTasks) {
  set_enabled(true);
  ThreadPool pool(2);
  pool.parallel_for(128, [](std::uint64_t) {});
  set_enabled(false);
  const MetricsSnapshot snap = scrape();
  EXPECT_EQ(snap.counter(Counter::kPoolBatches), 1 * kExpected);
#if RBB_TELEMETRY
  EXPECT_GE(snap.counter(Counter::kPoolTasks), 1u);
  EXPECT_GT(snap.phase(Phase::kPoolTask) + snap.phase(Phase::kBarrierWait),
            0u);
#else
  EXPECT_EQ(snap.counter(Counter::kPoolTasks), 0u);
#endif
}

TEST_F(MetricsTest, BarrierWaitFractionIsZeroWhenPoolUnused) {
  const MetricsSnapshot empty;
  EXPECT_EQ(empty.barrier_wait_fraction(), 0.0);
}

TEST_F(MetricsTest, BarrierWaitFractionDividesWaitByWaitPlusBusy) {
  MetricsSnapshot snap;
  snap.phase_ns[static_cast<std::size_t>(Phase::kBarrierWait)] = 25;
  snap.phase_ns[static_cast<std::size_t>(Phase::kPoolTask)] = 75;
  EXPECT_DOUBLE_EQ(snap.barrier_wait_fraction(), 0.25);
}

TEST_F(MetricsTest, BarrierWaitFractionFoldsInEpochWait) {
  // Pipelined runs spin inside team task bodies (kEpochWait is a slice
  // of kPoolTask), so the fraction adds the spin to the numerator only.
  // With zero epoch_wait -- every barriered run -- the value reduces to
  // the pre-pipeline formula, pinned by the test above.
  MetricsSnapshot snap;
  snap.phase_ns[static_cast<std::size_t>(Phase::kBarrierWait)] = 25;
  snap.phase_ns[static_cast<std::size_t>(Phase::kPoolTask)] = 75;
  snap.phase_ns[static_cast<std::size_t>(Phase::kEpochWait)] = 15;
  EXPECT_DOUBLE_EQ(snap.barrier_wait_fraction(), 0.40);
}

TEST_F(MetricsTest, PipelineFillFractionIsZeroWithoutPipelinedRounds) {
  // The no-overlap pin: barriered execution records neither kOverlap
  // nor kEpochWait, so the fraction stays exactly 0 and the metrics
  // block of old runs is unchanged.
  const MetricsSnapshot empty;
  EXPECT_EQ(empty.pipeline_fill_fraction(), 0.0);
  MetricsSnapshot barriered;
  barriered.phase_ns[static_cast<std::size_t>(Phase::kBarrierWait)] = 25;
  barriered.phase_ns[static_cast<std::size_t>(Phase::kPoolTask)] = 75;
  EXPECT_EQ(barriered.pipeline_fill_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(barriered.barrier_wait_fraction(), 0.25);
}

TEST_F(MetricsTest, PipelineFillFractionDividesOverlapByOverlapPlusWait) {
  MetricsSnapshot snap;
  snap.phase_ns[static_cast<std::size_t>(Phase::kOverlap)] = 30;
  snap.phase_ns[static_cast<std::size_t>(Phase::kEpochWait)] = 10;
  EXPECT_DOUBLE_EQ(snap.pipeline_fill_fraction(), 0.75);
}

TEST_F(MetricsTest, CatalogueNamesAreStableJsonKeys) {
  // The serialized schema is append-only: renaming a counter or phase
  // breaks every consumer of `metrics.counters` / `metrics.phase_ns`.
  EXPECT_STREQ(to_string(Counter::kLemireRetries), "lemire_retries");
  EXPECT_STREQ(to_string(Counter::kTraceEventsDropped),
               "trace_events_dropped");
  EXPECT_STREQ(to_string(Phase::kBarrierWait), "barrier_wait");
  EXPECT_STREQ(to_string(Phase::kTrial), "trial");
  EXPECT_STREQ(to_string(Phase::kEpochWait), "epoch_wait");
  EXPECT_STREQ(to_string(Phase::kOverlap), "overlap");
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    EXPECT_STRNE(to_string(static_cast<Counter>(c)), "?");
  }
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    EXPECT_STRNE(to_string(static_cast<Phase>(p)), "?");
  }
}

}  // namespace
}  // namespace rbb::obs
