// E22 -- the m = c n max-load regimes: decoupling the ball count from
// the bin count moves the window maximum from the paper's Theta(log n)
// (c <= 1) to m/n + O(log n) (c > 1), the regime table of Los &
// Sauerwald's tight repeated balls-into-bins bounds.  Monotone in c by
// coupling: every extra ball can only raise the maximum.
#include <cmath>
#include <vector>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_max_load_regimes(Registry& registry) {
  Experiment e;
  e.name = "max_load_regimes";
  e.claim = "E22";
  e.title = "m = c n regimes: max load tracks m/n + O(log n) (Los & Sauerwald)";
  e.description =
      "Runs the repeated balls-into-bins window with the ball count "
      "decoupled from the bin count, m = c * n for c in {0.5, 1, 2, 8}, "
      "and reports the window max load and its excess over the mean load "
      "ceil(m/n).  Los & Sauerwald's regime table predicts the excess "
      "stays O(log n) in every regime, so the normalized column is flat "
      "in c while the raw maximum is ordered c = 8 >= 2 >= 1 >= 0.5 "
      "(a coupling argument: extra balls never lower the maximum; the "
      "statistical suite pins the ordering at fixed seeds).  "
      "Backend-capable (load-only family): --backend=sharded replays the "
      "window on the src/par/ counter-RNG kernel bit-identically.";
  e.family = ProcessFamily::kLoadOnly;
  e.params = {
      {"window-factor", ParamSpec::Type::kU64, "0",
       "window = factor * n rounds (0 = scale default)"},
      {"n", ParamSpec::Type::kU64, "0",
       "run a single n instead of the scale sweep"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint64_t wf =
        ctx.params.u64("window-factor") != 0
            ? ctx.params.u64("window-factor")
            : by_scale<std::uint64_t>(ctx.scale, 5, 15, 40);
    const std::vector<std::uint32_t> ns =
        ctx.params.u64("n") != 0
            ? std::vector<std::uint32_t>{ctx.params.u32("n")}
            : default_n_sweep(ctx.scale);

    ResultSet rs;
    Table& table = rs.add_table(
        "E22_max_load_regimes",
        "m = c n regimes: max load tracks m/n + O(log n) (Los & Sauerwald)",
        {"n", "c", "m", "window max (mean)", "window max (worst)",
         "mean load ceil(m/n)", "excess (mean)", "excess / log2 n"});
    for (const std::uint32_t n : ns) {
      for (const double c : {0.5, 1.0, 2.0, 8.0}) {
        StabilityParams p;
        p.n = n;
        p.balls = static_cast<std::uint64_t>(std::llround(c * n));
        p.rounds = wf * n;
        p.trials = trials;
        p.seed = ctx.seed();
        p.start = InitialConfig::kOnePerBin;
        if (ctx.sharded()) p.backend = Backend::kSharded;
        p.plan = ctx.trial_plan(trials);
        const StabilityResult r = run_stability(p);
        const double mean_load =
            std::ceil(static_cast<double>(p.balls) / static_cast<double>(n));
        table.row()
            .cell(std::uint64_t{n})
            .cell(c, 1)
            .cell(p.balls)
            .cell(r.window_max.mean(), 2)
            .cell(std::uint64_t{r.overall_max})
            .cell(mean_load, 0)
            .cell(r.window_max.mean() - mean_load, 2)
            .cell((r.window_max.mean() - mean_load) / log2n(n), 3);
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
