// Property-style sweeps over the exact-chain machinery: every (bins,
// balls) pair in the tractable range must satisfy the same structural
// invariants, including the m != n regimes of the paper's Sect. 5 open
// question (m > n) and the trivially-stable m < n regime.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "markov/rbb_chain.hpp"
#include "markov/state_space.hpp"

namespace rbb {
namespace {

using BinsBalls = std::tuple<std::uint32_t, std::uint32_t>;

class ExactChainProperty : public ::testing::TestWithParam<BinsBalls> {};

TEST_P(ExactChainProperty, TransitionMatrixIsRowStochastic) {
  const auto [bins, balls] = GetParam();
  const StateSpace space(bins, balls);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  EXPECT_TRUE(p.is_row_stochastic(1e-9));
}

TEST_P(ExactChainProperty, BallCountIsConservedByEveryTransition) {
  const auto [bins, balls] = GetParam();
  const StateSpace space(bins, balls);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  for (std::size_t from = 0; from < space.size(); ++from) {
    for (std::size_t to = 0; to < space.size(); ++to) {
      if (p.at(from, to) > 0.0) {
        EXPECT_EQ(total_balls(space.config(to)), balls);
      }
    }
  }
}

TEST_P(ExactChainProperty, StationaryIsAPermutationSymmetricDistribution) {
  const auto [bins, balls] = GetParam();
  const StateSpace space(bins, balls);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const std::vector<double> pi = stationary_distribution(p);
  double total = 0.0;
  for (const double v : pi) {
    EXPECT_GE(v, -1e-12);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (const auto& orbit : space.orbits()) {
    for (const std::size_t id : orbit) {
      EXPECT_NEAR(pi[id], pi[orbit.front()], 1e-9);
    }
  }
}

TEST_P(ExactChainProperty, StationaryIsInvariantUnderOneRound) {
  const auto [bins, balls] = GetParam();
  const StateSpace space(bins, balls);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const std::vector<double> pi = stationary_distribution(p);
  EXPECT_LT(total_variation(pi, p.left_multiply(pi)), 1e-10);
}

TEST_P(ExactChainProperty, MaxLoadTailIsMonotoneFromOne) {
  const auto [bins, balls] = GetParam();
  const StateSpace space(bins, balls);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  const auto f = exact_functionals(space, stationary_distribution(p));
  ASSERT_EQ(f.max_load_tail.size(), balls + 1u);
  EXPECT_NEAR(f.max_load_tail[0], 1.0, 1e-9);
  for (std::size_t k = 1; k < f.max_load_tail.size(); ++k) {
    EXPECT_LE(f.max_load_tail[k], f.max_load_tail[k - 1] + 1e-12);
    EXPECT_GE(f.max_load_tail[k], -1e-12);
  }
  // E[max load] equals the tail sum over k >= 1 (layer-cake identity).
  double tail_sum = 0.0;
  for (std::size_t k = 1; k < f.max_load_tail.size(); ++k) {
    tail_sum += f.max_load_tail[k];
  }
  EXPECT_NEAR(f.expected_max_load, tail_sum, 1e-9);
}

TEST_P(ExactChainProperty, TransientLawStaysNormalizedForManyRounds) {
  const auto [bins, balls] = GetParam();
  const StateSpace space(bins, balls);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  LoadConfig q0(bins, 0);
  q0[0] = balls;  // all-in-one worst case
  const auto dist = exact_distribution_after(space, p, q0, 50);
  double total = 0.0;
  for (const double v : dist) {
    EXPECT_GE(v, -1e-12);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ExactChainProperty, ArrivalJointLawNormalizesFromWorstStart) {
  const auto [bins, balls] = GetParam();
  const StateSpace space(bins, balls);
  LoadConfig q0(bins, 0);
  q0[0] = balls;
  const auto joint = exact_arrival_joint_law(space, q0);
  double total = 0.0;
  for (const auto& row : joint) {
    for (const double v : row) total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    BinsBallsSweep, ExactChainProperty,
    ::testing::Values(BinsBalls{2, 2}, BinsBalls{2, 4}, BinsBalls{3, 2},
                      BinsBalls{3, 3}, BinsBalls{3, 6}, BinsBalls{4, 3},
                      BinsBalls{4, 4}, BinsBalls{4, 6}, BinsBalls{5, 4},
                      BinsBalls{5, 5}, BinsBalls{2, 8}, BinsBalls{6, 4}),
    [](const ::testing::TestParamInfo<BinsBalls>& param_info) {
      return "bins" + std::to_string(std::get<0>(param_info.param)) + "_balls" +
             std::to_string(std::get<1>(param_info.param));
    });

/// The overloaded regime (m > n, the paper's Sect. 5 open question) at
/// exact small scale: as the load factor m/n grows, the stationary empty
/// fraction falls (but stays positive) and E[max load] rises.
TEST(ExactChainOverload, EmptyFractionFallsWithLoadFactor) {
  const std::uint32_t n = 4;
  double prev_empty = 1.0;
  double prev_max = 0.0;
  for (const std::uint32_t m : {2u, 4u, 8u, 12u}) {
    const StateSpace space(n, m);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    const auto f = exact_functionals(space, stationary_distribution(p));
    EXPECT_LT(f.expected_empty_fraction, prev_empty) << "m=" << m;
    EXPECT_GT(f.expected_max_load, prev_max) << "m=" << m;
    EXPECT_GT(f.expected_empty_fraction, 0.0);
    prev_empty = f.expected_empty_fraction;
    prev_max = f.expected_max_load;
  }
}

/// With m <= n the one-per-bin configuration is reachable and max load 1
/// has positive stationary mass; with m > n every configuration has a
/// bin with >= 2 balls (pigeonhole), exactly visible in the tail.
TEST(ExactChainOverload, PigeonholeShowsInTheExactTail) {
  {
    const StateSpace space(4, 4);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    const auto f = exact_functionals(space, stationary_distribution(p));
    EXPECT_LT(f.max_load_tail[2], 1.0 - 1e-6);  // P(M >= 2) < 1
  }
  {
    const StateSpace space(4, 5);
    const DenseMatrix p = build_rbb_transition_matrix(space);
    const auto f = exact_functionals(space, stationary_distribution(p));
    EXPECT_NEAR(f.max_load_tail[2], 1.0, 1e-12);  // P(M >= 2) == 1
  }
}

}  // namespace
}  // namespace rbb
