// Tetris playground: the analysis machinery of Sect. 3, hands-on.
//
// Three demonstrations:
//   1. Lemma 4 -- from all-in-one, every Tetris bin empties within 5n
//      rounds (we print the measured drain time).
//   2. Lemma 5 -- the Z-chain absorption-time tail vs e^{-t/144}.
//   3. The drift knob -- raising the arrival rate from 3n/4 toward n
//      destroys stability (why the 3/4 constant is what it is), plus the
//      leaky-bins randomized-arrival variant of [18].
//
//   ./examples/tetris_playground [--n 1024] [--seed 2]
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "support/bounds.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "tetris/leaky.hpp"
#include "tetris/tetris.hpp"
#include "tetris/zchain.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli("tetris_playground: the paper's auxiliary process, hands-on");
  cli.add_u64("n", 1024, "bins");
  cli.add_u64("seed", 2, "RNG seed");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;

  const auto n = static_cast<std::uint32_t>(cli.u64("n"));
  const std::uint64_t seed = cli.u64("seed");

  // --- 1. Lemma 4: drain time from the worst start. ---
  {
    Rng rng(seed);
    TetrisProcess tetris(make_config(InitialConfig::kAllInOne, n, n, rng),
                         rng);
    const std::uint64_t drained = tetris.run_until_all_emptied(20ull * n);
    std::cout << "[Lemma 4] all-in-one start, n = " << n
              << ": every bin emptied by round " << drained << " = "
              << static_cast<double>(drained) / n
              << " n   (bound: 5n)\n";
  }

  // --- 2. Lemma 5: absorption tail of the Z-chain. ---
  {
    Rng rng(seed + 1);
    const std::uint64_t k = 8;
    constexpr int kTrials = 50000;
    OnlineMoments tau;
    int beyond_8k = 0;
    for (int i = 0; i < kTrials; ++i) {
      const std::uint64_t t = sample_absorption_time(n, k, 64 * k, rng);
      if (t == kZChainNotAbsorbed || t > 8 * k) ++beyond_8k;
      if (t != kZChainNotAbsorbed) tau.add(static_cast<double>(t));
    }
    std::cout << "[Lemma 5] Z-chain from k = " << k << ": E[tau] = "
              << tau.mean() << " (drift -1/4 predicts ~" << 4 * k
              << ");  P(tau > 8k) = "
              << static_cast<double>(beyond_8k) / kTrials
              << " <= bound e^{-8k/144} = "
              << zchain_tail_bound(static_cast<double>(8 * k)) << "\n";
  }

  // --- 3. The drift knob: arrival rate sweep + leaky bins. ---
  std::cout << "[drift]   arrival rate mu*n, window max load after 10n "
               "rounds (log2 n = "
            << log2n(n) << "):\n";
  for (const double mu : {0.75, 0.9, 1.0}) {
    Rng rng(seed + 2);
    TetrisProcess tetris(
        make_config(InitialConfig::kRandom, n, n, rng), rng,
        static_cast<std::uint64_t>(mu * static_cast<double>(n)));
    std::uint32_t wmax = 0;
    for (std::uint64_t t = 0; t < 10ull * n; ++t) {
      wmax = std::max(wmax, tetris.step().max_load);
    }
    std::cout << "           mu = " << mu << "  ->  max load " << wmax
              << ", total mass/bin "
              << static_cast<double>(tetris.total_balls()) / n << "\n";
  }

  {
    Rng rng(seed + 3);
    LeakyBinsProcess leaky(make_config(InitialConfig::kOnePerBin, n, n, rng),
                           0.9, rng);
    leaky.run(2ull * n);  // settle
    std::uint32_t wmax = 0;
    for (std::uint64_t t = 0; t < 10ull * n; ++t) {
      wmax = std::max(wmax, leaky.step().max_load);
    }
    std::cout << "[leaky]   Binomial(n, 0.9) arrivals ([18]): window max "
              << wmax << ", mass/bin "
              << static_cast<double>(leaky.total_balls()) / n
              << ", empty frac "
              << static_cast<double>(leaky.empty_bins()) / n << "\n";
  }
  return EXIT_SUCCESS;
}
