// The repeated balls-into-bins process (paper, Sect. 2) -- load-only kernel.
//
// One round: simultaneously, every non-empty bin releases exactly one ball,
// and each released ball lands in a destination chosen uniformly at random
// (on the complete graph: any of the n bins; on a general graph: a uniform
// neighbor of the releasing bin).  The load vector evolves as
//
//   Q^{t+1}_v = max(Q^t_v - 1, 0) + #{ u in W^t : X^{t+1}_u = v }
//
// where W^t is the set of non-empty bins.  Because Theorem 1 is oblivious
// to the queueing strategy, this kernel tracks *loads only* and is the
// fastest representation (ablation D2); use TokenProcess when per-ball
// identities (progress, cover time, FIFO order) are needed.
//
// Per-round cost: O(n + |W^t|) with O(1) extra work to maintain the
// maximum load and the empty-bin count incrementally (ablation D3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rbb {

/// Statistics of the configuration at the *end* of a round.
struct RoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  std::uint32_t departures = 0;  // |W^t| of the round just executed
};

/// Load-only repeated balls-into-bins simulator.
class RepeatedBallsProcess {
 public:
  /// Starts from an explicit configuration on the complete graph K_n.
  RepeatedBallsProcess(LoadConfig initial, Rng rng);

  /// Starts from an explicit configuration on a general graph; `graph`
  /// must outlive the process and have min degree >= 1.  Balls released by
  /// bin u land on a uniform random neighbor of u.
  RepeatedBallsProcess(LoadConfig initial, const Graph* graph, Rng rng);

  /// Executes one synchronous round; returns end-of-round statistics.
  RoundStats step();

  /// Executes `rounds` rounds; returns the stats of the last one.
  RoundStats run(std::uint64_t rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t ball_count() const noexcept { return balls_; }
  /// Rounds executed since construction.
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }

  /// Current maximum load (O(1); maintained incrementally).
  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_load_; }
  /// Current number of empty bins (O(1); maintained incrementally).
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }
  /// True iff max_load() <= beta * log2(n).
  [[nodiscard]] bool is_legitimate(double beta = 4.0) const;

  /// Adversarial reassignment (paper, Sect. 4.1): replaces the entire
  /// configuration.  The new configuration must contain the same number of
  /// balls.  Counts as a faulty round, not a process round.
  void reassign(const LoadConfig& q);

  /// Testing hook: recomputes max/empty from scratch and checks them
  /// against the incremental values; throws std::logic_error on mismatch.
  void check_invariants() const;

 private:
  void recompute_stats();

  LoadConfig loads_;
  const Graph* graph_;  // nullptr = complete graph
  Rng rng_;
  std::uint64_t balls_;
  std::uint64_t round_ = 0;
  std::uint32_t max_load_ = 0;
  std::uint32_t empty_ = 0;
  std::vector<std::uint32_t> scratch_;  // per-round destination buffer
};

}  // namespace rbb
