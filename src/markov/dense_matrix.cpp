#include "markov/dense_matrix.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace rbb {

DenseMatrix DenseMatrix::identity(std::size_t s) {
  DenseMatrix m(s, s);
  for (std::size_t i = 0; i < s; ++i) m.at(i, i) = 1.0;
  return m;
}

bool DenseMatrix::is_row_stochastic(double tol) const {
  if (rows_ == 0 || cols_ == 0) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      const double v = at(r, c);
      if (v < -tol) return false;
      sum += v;
    }
    if (std::abs(sum - 1.0) > tol * static_cast<double>(cols_)) return false;
  }
  return true;
}

std::vector<double> DenseMatrix::left_multiply(
    const std::vector<double>& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("left_multiply: size mismatch");
  }
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* prow = row(r);
    for (std::size_t c = 0; c < cols_; ++c) out[c] += xr * prow[c];
  }
  return out;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("multiply: shape mismatch");
  }
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      const double* orow = other.row(k);
      double* out_row = out.row(r);
      for (std::size_t c = 0; c < other.cols_; ++c) out_row[c] += v * orow[c];
    }
  }
  return out;
}

std::vector<double> solve_linear(DenseMatrix a, std::vector<double> b) {
  const std::size_t s = a.rows();
  if (a.cols() != s || b.size() != s) {
    throw std::invalid_argument("solve_linear: shape mismatch");
  }
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < s; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a.at(col, col));
    for (std::size_t r = col + 1; r < s; ++r) {
      const double v = std::abs(a.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) throw std::runtime_error("solve_linear: singular");
    if (pivot != col) {
      for (std::size_t c = col; c < s; ++c) {
        std::swap(a.at(col, c), a.at(pivot, c));
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < s; ++r) {
      const double factor = a.at(r, col) * inv;
      if (factor == 0.0) continue;
      a.at(r, col) = 0.0;
      for (std::size_t c = col + 1; c < s; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(s, 0.0);
  for (std::size_t ri = s; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < s; ++c) acc -= a.at(ri, c) * x[c];
    x[ri] = acc / a.at(ri, ri);
  }
  return x;
}

std::vector<double> stationary_distribution(const DenseMatrix& p) {
  const std::size_t s = p.rows();
  if (p.cols() != s) {
    throw std::invalid_argument("stationary_distribution: not square");
  }
  // Build (P^T - I), then overwrite the last row with the normalization
  // constraint sum(pi) = 1.
  DenseMatrix a(s, s);
  for (std::size_t r = 0; r < s; ++r) {
    for (std::size_t c = 0; c < s; ++c) a.at(r, c) = p.at(c, r);
    a.at(r, r) -= 1.0;
  }
  std::vector<double> b(s, 0.0);
  for (std::size_t c = 0; c < s; ++c) a.at(s - 1, c) = 1.0;
  b[s - 1] = 1.0;
  std::vector<double> pi = solve_linear(std::move(a), std::move(b));
  // Clean tiny negative round-off and renormalize.
  double sum = 0.0;
  for (double& v : pi) {
    if (v < 0.0 && v > -1e-9) v = 0.0;
    sum += v;
  }
  if (sum <= 0.0) throw std::runtime_error("stationary: degenerate solution");
  for (double& v : pi) v /= sum;
  return pi;
}

std::vector<double> stationary_by_power_iteration(const DenseMatrix& p,
                                                  double tol,
                                                  std::size_t max_iters) {
  const std::size_t s = p.rows();
  if (p.cols() != s || s == 0) {
    throw std::invalid_argument("power_iteration: not square");
  }
  std::vector<double> x(s, 1.0 / static_cast<double>(s));
  for (std::size_t it = 0; it < max_iters; ++it) {
    std::vector<double> next = p.left_multiply(x);
    double delta = 0.0;
    for (std::size_t i = 0; i < s; ++i) delta += std::abs(next[i] - x[i]);
    x = std::move(next);
    if (delta < tol) break;
  }
  return x;
}

double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("total_variation: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return 0.5 * acc;
}

}  // namespace rbb
