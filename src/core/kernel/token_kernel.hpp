// The token-process core over the same (execution x RNG stream) policy
// set as BallProcessCore (DESIGN.md Sect. 5).
//
// Token state (per-bin queues, per-token positions) is shaped unlike a
// load vector, so the identity-tracking process gets its own core
// template -- but the policy axes are the same types: the sequential
// instantiations are plain single-threaded loops (xoshiro draws or the
// counter-RNG parity oracle), the sharded instantiation executes one
// round across all cores.
//
// Queue state is the flat implicit-FIFO store of token_store.hpp: one
// contiguous token-link array plus per-bin {head, tail, count} headers,
// 8m + 12n bytes total -- no per-bin allocation, which is what lets
// sharded_scaling run token rows at n = 10^8.
//
// Enqueue order is not commutative, so determinism comes from a
// *canonical arrival order*: stripes are contiguous and walked in
// ascending bin order, the commit drains per-(stripe, shard) buffers in
// ascending source-stripe order, hence every bin receives its arrivals
// sorted by releasing bin -- for every thread count and shard size.
// The sequential instantiation realizes the same order with a plain
// loop, which is why the two are bit-identical (pinned by tests/par/).
//
// Queue policies (TokenOptions::policy): FIFO pops the oldest token,
// LIFO the newest, random the k-th oldest where k is drawn uniformly --
// under the counter stream from the dedicated pop-select slot plane
// (one draw per (round, releasing bin), schedule-free), under the
// sequential stream from the process rng interleaved with the
// destination draws exactly as in TokenProcess.  The random removal is
// order-preserving (remove the k-th in arrival order), unlike the
// legacy BallQueue's swap-remove; FIFO and LIFO sequential-stream
// trajectories are draw-for-draw identical to TokenProcess on the
// complete graph (pinned by tests/par/token_flat_test.cpp).
//
// Scope: the complete graph, per-token progress counters and OPTIONAL
// per-token visited bitsets (cover-time experiments; m*n bits -- fine
// at experiment sizes, petabyte-scale at mega n, so visits default
// off).  General graphs and delay histograms remain on the sequential
// TokenProcess (core/token_process.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/kernel/exec.hpp"
#include "core/kernel/pipeline.hpp"
#include "core/kernel/stream.hpp"
#include "core/kernel/token_store.hpp"
#include "core/token_process.hpp"  // QueuePolicy, identity_placement
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/types.hpp"

namespace rbb::kernel {

/// Instrumentation and policy knobs of the token core.
struct TokenOptions {
  /// Per-token visited bitsets + cover rounds (Corollary 1 cover-time
  /// measurements).  Costs m*n bits -- leave off beyond ~10^5 bins.
  bool track_visits = false;
  /// Which token a non-empty bin releases each round.
  QueuePolicy policy = QueuePolicy::kFifo;
};

template <typename Exec, typename StreamP = CounterStream>
class TokenProcessCore {
 public:
  using Stream = StreamP;
  static constexpr bool kShardedExec = Exec::kSharded;

  static_assert(!kShardedExec || Stream::kScheduleFree,
                "sharded execution requires a schedule-free (counter) RNG "
                "stream");

  static constexpr std::uint64_t kNotCovered =
      std::numeric_limits<std::uint64_t>::max();

  /// `start_bin[i]` is the initial bin of token i; co-located tokens
  /// enqueue in token-id order (as in TokenProcess).
  TokenProcessCore(std::uint32_t bins, std::vector<bin_index_t> start_bin,
                   Stream stream, ExecOptions exec_options = {},
                   TokenOptions options = {})
      : bins_(bins),
        stream_(std::move(stream)),
        exec_(bins == 0 ? 1 : bins, exec_options),
        options_(options),
        store_(bins == 0 ? 1 : bins,
               static_cast<std::uint32_t>(start_bin.size()),
               options.policy),
        progress_(start_bin.size(), 0) {
    if (bins_ == 0) {
      throw std::invalid_argument("TokenProcessCore: bins == 0");
    }
    if (start_bin.empty()) {
      throw std::invalid_argument("TokenProcessCore: no tokens");
    }
    for (const bin_index_t bin : start_bin) {
      if (bin >= bins_) {
        throw std::invalid_argument(
            "TokenProcessCore: start bin out of range");
      }
    }
    if (options_.track_visits) {
      words_per_token_ = (bins_ + 63) / 64;
      visited_.assign(static_cast<std::size_t>(words_per_token_) *
                          start_bin.size(),
                      0);
      visited_count_.assign(start_bin.size(), 0);
      cover_round_.assign(start_bin.size(), kNotCovered);
    }
    if constexpr (kShardedExec) {
      const ShardPlan& plan = exec_.plan();
      buffers_.resize(static_cast<std::size_t>(plan.stripe_count()) *
                      plan.shard_count());
      acc_.resize(plan.stripe_count());
    }
    rebuild_queues(start_bin);
  }

  /// One synchronous round: every non-empty bin releases one token per
  /// the queue policy.
  void step() {
    if constexpr (kShardedExec) {
      step_sharded();
    } else {
      step_sequential();
    }
    ++round_;
  }

  /// Runs `rounds` rounds.  Multi-round sharded runs take the pipelined
  /// path (pipeline.hpp) when the executor can host a resident team and
  /// RBB_PIPELINE is not 0; trajectories are bit-identical either way.
  void run(std::uint64_t rounds) {
    if constexpr (kShardedExec) {
      if (rounds > 1 && pipeline_enabled() && run_sharded_pipelined(rounds)) {
        return;
      }
    }
    for (std::uint64_t t = 0; t < rounds; ++t) step();
  }

  /// Runs until every token has covered all bins or `max_rounds`
  /// elapse; returns the global cover time (rounds from construction)
  /// if reached.  Requires track_visits.
  std::optional<std::uint64_t> run_until_covered(std::uint64_t max_rounds) {
    if (!options_.track_visits) {
      throw std::logic_error("run_until_covered: visit tracking disabled");
    }
    while (!all_covered()) {
      if (round_ >= max_rounds) return std::nullopt;
      step();
    }
    return global_cover_time();
  }

  [[nodiscard]] std::uint32_t bin_count() const noexcept { return bins_; }
  [[nodiscard]] std::uint32_t token_count() const noexcept {
    return store_.token_count();
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] QueuePolicy policy() const noexcept {
    return options_.policy;
  }

  /// Load of bin u (queue length).
  [[nodiscard]] load_t load(bin_index_t u) const {
    return static_cast<load_t>(store_.count(u));
  }
  /// Maximum load over all bins.  Sharded: O(1), maintained by the
  /// commit rescan.  Sequential: computed lazily on first query after a
  /// round (as in TokenProcess), so an unobserved round pays no O(n)
  /// stats pass -- this keeps the seq-counter perf rows an honest
  /// RNG-swap measurement.
  [[nodiscard]] load_t max_load() const {
    refresh_stats();
    return max_load_;
  }
  /// Number of empty bins; same cost contract as max_load().
  [[nodiscard]] std::uint32_t empty_bins() const {
    refresh_stats();
    return empty_;
  }
  /// Per-bin load snapshot (off the hot path; O(n)).
  [[nodiscard]] LoadConfig loads() const {
    LoadConfig loads(bins_, 0);
    for (bin_index_t u = 0; u < bins_; ++u) {
      loads[u] = static_cast<load_t>(store_.count(u));
    }
    return loads;
  }

  /// Current bin of token i.
  [[nodiscard]] bin_index_t token_bin(std::uint32_t token) const {
    return store_.bin_of(token);
  }
  /// Walk steps token i has performed (times it was released).
  [[nodiscard]] std::uint64_t progress(std::uint32_t token) const {
    return progress_[token];
  }
  /// Minimum progress over all tokens; O(m).
  [[nodiscard]] std::uint64_t min_progress() const {
    std::uint64_t lo = progress_.empty() ? 0 : progress_[0];
    for (const std::uint64_t p : progress_) lo = std::min(lo, p);
    return lo;
  }

  /// Tokens of bin u in arrival order, oldest first (testing /
  /// inspection; allocates -- never on the hot path).
  [[nodiscard]] std::vector<std::uint32_t> queue_snapshot(
      bin_index_t u) const {
    return store_.snapshot(u);
  }

  /// Distinct bins token i has visited.  Requires track_visits.
  [[nodiscard]] std::uint32_t visited_count(std::uint32_t token) const {
    require_visits("visited_count");
    return visited_count_[token];
  }
  /// Round by which token i had visited all bins, or kNotCovered.
  /// Requires track_visits.
  [[nodiscard]] std::uint64_t cover_round(std::uint32_t token) const {
    require_visits("cover_round");
    return cover_round_[token];
  }
  /// True when every token has visited every bin.  Requires
  /// track_visits: without it the answer would be a silent, permanent
  /// "no" and a run-until-covered loop would burn its whole round cap.
  [[nodiscard]] bool all_covered() const {
    require_visits("all_covered");
    return covered_tokens_ == token_count();
  }
  /// max over tokens of cover_round (kNotCovered unless all_covered()).
  /// Requires track_visits.
  [[nodiscard]] std::uint64_t global_cover_time() const {
    if (!all_covered()) return kNotCovered;
    std::uint64_t worst = 0;
    for (const std::uint64_t r : cover_round_) worst = std::max(worst, r);
    return worst;
  }

  [[nodiscard]] const ShardPlan& plan() const noexcept
    requires kShardedExec
  {
    return exec_.plan();
  }

  /// Bytes of resident kernel state (queue store, progress, visit
  /// bitsets, scratch and scatter buffers at their current capacity).
  /// Feeds the memory column of sharded_scaling.
  [[nodiscard]] std::size_t resident_state_bytes() const noexcept {
    std::size_t bytes =
        store_.resident_bytes() +
        progress_.capacity() * sizeof(std::uint64_t) +
        visited_.capacity() * sizeof(std::uint64_t) +
        visited_count_.capacity() * sizeof(std::uint32_t) +
        cover_round_.capacity() * sizeof(std::uint64_t) +
        seq_slots_.capacity() * sizeof(bin_index_t) +
        seq_tokens_.capacity() * sizeof(std::uint32_t) +
        seq_dests_.capacity() * sizeof(bin_index_t);
    if constexpr (kShardedExec) {
      for (const auto& buf : buffers_) {
        bytes += buf.capacity() * sizeof(Arrival);
      }
      for (const auto& buf : buffers_alt_) {
        bytes += buf.capacity() * sizeof(Arrival);
      }
      bytes += acc_.capacity() * sizeof(StripeAcc);
    }
    return bytes;
  }

  /// Adversarial reassignment (Sect. 4.1 semantics, as in
  /// TokenProcess::reassign): every token i moves to new_bin[i]; queues
  /// are rebuilt in token-id order; progress persists; the reassigned
  /// position counts as a visit.
  void reassign(const std::vector<bin_index_t>& new_bin) {
    if (new_bin.size() != progress_.size()) {
      throw std::invalid_argument("reassign: token count mismatch");
    }
    for (const bin_index_t bin : new_bin) {
      if (bin >= bins_) {
        throw std::invalid_argument("reassign: bin out of range");
      }
    }
    rebuild_queues(new_bin);
  }

  /// Serializes the complete trajectory state (DESIGN.md Sect. 7): the
  /// raw flat-store arrays, per-token progress, round, and (when
  /// enabled) the visit-tracking bookkeeping.  Counter streams draw by
  /// (seed, round, slot), so this closes the state; round-boundary only
  /// (the scatter buffers are provably drained there).
  void snapshot(serial::ByteWriter& w) const
    requires Stream::kScheduleFree
  {
    w.u64(round_);
    store_.save_state(w);
    w.vec(progress_);
    w.u32(options_.track_visits ? 1u : 0u);
    if (options_.track_visits) {
      w.vec(visited_);
      w.vec(visited_count_);
      w.vec(cover_round_);
      w.u32(covered_tokens_);
    }
  }

  /// Inverse of snapshot(); the target must be constructed with the
  /// same bins/tokens/policy/options (std::invalid_argument otherwise).
  void restore(serial::ByteReader& r)
    requires Stream::kScheduleFree
  {
    const std::uint64_t round = r.u64();
    store_.load_state(r);
    std::vector<std::uint64_t> progress;
    r.vec(progress);
    if (progress.size() != progress_.size()) {
      throw std::invalid_argument("restore: token count mismatch");
    }
    const bool track_visits = r.u32() != 0;
    if (track_visits != options_.track_visits) {
      throw std::invalid_argument("restore: visit-tracking mismatch");
    }
    if (track_visits) {
      std::vector<std::uint64_t> visited;
      std::vector<std::uint32_t> visited_count;
      std::vector<std::uint64_t> cover_round;
      r.vec(visited);
      r.vec(visited_count);
      r.vec(cover_round);
      if (visited.size() != visited_.size() ||
          visited_count.size() != visited_count_.size() ||
          cover_round.size() != cover_round_.size()) {
        throw std::invalid_argument("restore: visit-tracking shape mismatch");
      }
      visited_ = std::move(visited);
      visited_count_ = std::move(visited_count);
      cover_round_ = std::move(cover_round);
      covered_tokens_ = r.u32();
    }
    progress_ = std::move(progress);
    round_ = round;
    rescan_stats();
    check_invariants();
  }

  /// Testing hook: queue/token-position consistency; throws
  /// std::logic_error on violation.  Walks the flat lists in place --
  /// no per-bin heap copy.
  void check_invariants() const {
    std::uint64_t queued = 0;
    for (bin_index_t u = 0; u < bins_; ++u) {
      const std::uint32_t expect = store_.count(u);
      std::uint32_t walked = 0;
      std::uint32_t last = FlatTokenStore::kNil;
      for (std::uint32_t t = store_.peek_head(u);
           t != FlatTokenStore::kNil && walked <= expect;
           t = store_.next(t)) {
        if (store_.bin_of(t) != u) {
          throw std::logic_error(
              "TokenProcessCore: queue/token position mismatch");
        }
        last = t;
        ++walked;
      }
      if (walked != expect) {
        throw std::logic_error(
            "TokenProcessCore: queue length drifted (or list cycle)");
      }
      if (expect > 0 && last != store_.tail(u)) {
        throw std::logic_error("TokenProcessCore: tail out of sync");
      }
      queued += walked;
    }
    if (queued != progress_.size()) {
      throw std::logic_error("TokenProcessCore: token count drifted");
    }
    if constexpr (kShardedExec) {
      for (const auto& buf : buffers_) {
        if (!buf.empty()) {
          throw std::logic_error(
              "TokenProcessCore: scatter buffer not drained");
        }
      }
      for (const auto& buf : buffers_alt_) {
        if (!buf.empty()) {
          throw std::logic_error(
              "TokenProcessCore: alternate scatter buffer not drained");
        }
      }
    }
  }

 private:
  struct Arrival {
    bin_index_t dest;
    std::uint32_t token;
  };

  struct alignas(64) StripeAcc {
    load_t max = 0;
    std::uint32_t zeros = 0;
    std::uint32_t newly_covered = 0;
    std::uint32_t cum_newly_covered = 0;  // across a pipelined run
  };

  /// Scatter loops prefetch this many arrivals ahead: at mega n the
  /// store out-sizes the cache and each push touches a random header
  /// (and, appending, a random tail slot).
  static constexpr std::uint32_t kPrefetchAhead = 16;

  /// Marks `bin` visited by `token`; returns true when this visit
  /// completed the token's coverage (caller owns the covered counter so
  /// the sharded commit can accumulate per stripe).
  bool mark_visited(std::uint32_t token, bin_index_t bin,
                    std::uint64_t cover_at) {
    if (!options_.track_visits) return false;
    std::uint64_t& word =
        visited_[static_cast<std::size_t>(token) * words_per_token_ +
                 bin / 64];
    const std::uint64_t bit = 1ULL << (bin % 64);
    if ((word & bit) != 0) return false;
    word |= bit;
    if (++visited_count_[token] == bins_ &&
        cover_round_[token] == kNotCovered) {
      cover_round_[token] = cover_at;
      return true;
    }
    return false;
  }

  /// The releasing pop of bin u under the counter stream: FIFO/LIFO pop
  /// the head, random removes the k-th oldest with k drawn from the
  /// pop-select slot plane -- a pure function of (round, u), so any
  /// stripe can release its own bins in any schedule.
  std::uint32_t release_counter(bin_index_t u, std::uint64_t r) {
    if (options_.policy == QueuePolicy::kRandom) {
      const std::uint32_t size = store_.count(u);
      return store_.pop_at(u, stream_.index(r, pop_select_slot(u), size));
    }
    return store_.pop_front(u);
  }

  /// Prefetches the head slot (the pop target) and progress counter of
  /// bin `u` if it will release; headers themselves stream sequentially
  /// through the scan, so peeking ahead is cache-hot.
  void prefetch_release(bin_index_t u) const {
    const std::uint32_t h = store_.peek_head(u);
    if (h != FlatTokenStore::kNil) {
      store_.prefetch_slot(h);
      __builtin_prefetch(&progress_[h], 1);
    }
  }

  void step_sequential() {
    const std::uint64_t r = round_;
    seq_slots_.clear();
    seq_tokens_.clear();
    seq_dests_.clear();
    if constexpr (Stream::kScheduleFree) {
      for (bin_index_t u = 0; u < bins_; ++u) {
        if (u + kPrefetchAhead < bins_) prefetch_release(u + kPrefetchAhead);
        if (store_.empty(u)) continue;
        const std::uint32_t token = release_counter(u, r);
        ++progress_[token];
        seq_slots_.push_back(u);
        seq_tokens_.push_back(token);
      }
      // One gathered draw plane materializes every move's destination
      // (slot = releasing bin), bit-identical to the per-call draws.
      seq_dests_.resize(seq_slots_.size());
      stream_.fill_gather(r, seq_slots_.data(), 0, seq_slots_.size(), bins_,
                          seq_dests_.data());
    } else {
      // Sequential xoshiro draws: the random-policy pop draw and the
      // destination draw interleave per releasing bin, draw-for-draw as
      // in TokenProcess on the complete graph; arrivals apply after the
      // walk (later bins see pre-move queues, the synchronous-round
      // convention both realize).
      Rng& rng = stream_.rng();
      for (bin_index_t u = 0; u < bins_; ++u) {
        if (u + kPrefetchAhead < bins_) prefetch_release(u + kPrefetchAhead);
        if (store_.empty(u)) continue;
        const std::uint32_t token =
            options_.policy == QueuePolicy::kRandom
                ? store_.pop_at(u, static_cast<std::uint32_t>(
                                       rng.below(store_.count(u))))
                : store_.pop_front(u);
        ++progress_[token];
        seq_tokens_.push_back(token);
        seq_dests_.push_back(rng.index(bins_));
      }
    }
    const std::size_t moves = seq_dests_.size();
    for (std::size_t i = 0; i < moves; ++i) {
      if (i + kPrefetchAhead < moves) {
        store_.prefetch_bin(seq_dests_[i + kPrefetchAhead]);
        store_.prefetch_slot(seq_tokens_[i + kPrefetchAhead]);
      }
      const bin_index_t dest = seq_dests_[i];
      const std::uint32_t token = seq_tokens_[i];
      store_.push(dest, token);
      if (mark_visited(token, dest, r + 1)) {
        ++covered_tokens_;
      }
    }
    stats_dirty_ = true;  // recomputed lazily on the next stats query
  }

  /// Phase 1 (throw) for one stripe of round r: releases the stripe's
  /// queue heads in ascending bin order into its rows of `bufs` (the
  /// parity-selected buffer base), so every buffer is filled sorted by
  /// releasing bin.  A token sits in exactly one queue and a stripe
  /// pops only its own bins' lists, so the store and progress_ writes
  /// are stripe-exclusive.
  void throw_stripe(std::uint32_t g, std::uint64_t r,
                    std::vector<Arrival>* bufs)
    requires kShardedExec
  {
    const obs::ScopedPhase phase_span(obs::Phase::kThrow);
    const std::uint32_t n = bins_;
    const ShardPlan& plan = exec_.plan();
    std::vector<Arrival>* row =
        bufs + static_cast<std::size_t>(g) * plan.shard_count();
    const bin_index_t begin = plan.stripe_begin_bin(g);
    const bin_index_t end = plan.stripe_end_bin(g);
    // Releasing bins and their tokens bank into stack chunks; each
    // flush draws the chunk's destinations from one gathered plane.
    // Ascending-u push order per buffer is preserved, so the
    // canonical arrival order is unchanged.
    bin_index_t slot_buf[kDrawChunk];
    std::uint32_t token_buf[kDrawChunk];
    bin_index_t dest_buf[kDrawChunk];
    std::uint32_t pending = 0;
    const auto flush = [&] {
      obs::add(obs::Counter::kChunkFlushes);
      stream_.fill_gather(r, slot_buf, 0, pending, n, dest_buf);
      for (std::uint32_t i = 0; i < pending; ++i) {
        const bin_index_t dest = dest_buf[i];
        row[plan.shard_of(dest)].push_back(Arrival{dest, token_buf[i]});
      }
      pending = 0;
    };
    for (bin_index_t u = begin; u < end; ++u) {
      if (u + kPrefetchAhead < end) prefetch_release(u + kPrefetchAhead);
      if (store_.empty(u)) continue;
      const std::uint32_t token = release_counter(u, r);
      ++progress_[token];
      slot_buf[pending] = u;
      token_buf[pending] = token;
      if (++pending == kDrawChunk) flush();
    }
    if (pending > 0) flush();
  }

  /// Phase 2 (commit) for one stripe: drains `bufs` buffers addressed
  /// to its shards in ascending source-stripe order so every bin
  /// enqueues its arrivals sorted by releasing bin -- the canonical
  /// order the sequential sibling realizes by construction.  A token
  /// arrives in exactly one buffer and a stripe pushes only into its
  /// own shards' lists, so the store and visited_ writes are
  /// stripe-exclusive.
  void commit_stripe(std::uint32_t g, std::uint64_t r,
                     std::vector<Arrival>* bufs)
    requires kShardedExec
  {
    const obs::ScopedPhase phase_span(obs::Phase::kCommit);
    const ShardPlan& plan = exec_.plan();
    const std::uint32_t shard_count = plan.shard_count();
    StripeAcc& acc = acc_[g];
    acc.max = 0;
    acc.zeros = 0;
    acc.newly_covered = 0;
    for (std::uint32_t s = plan.stripe_begin_shard(g);
         s < plan.stripe_end_shard(g); ++s) {
      for (std::uint32_t src = 0; src < plan.stripe_count(); ++src) {
        std::vector<Arrival>& buf =
            bufs[static_cast<std::size_t>(src) * shard_count + s];
        const std::size_t arrivals = buf.size();
        for (std::size_t i = 0; i < arrivals; ++i) {
          if (i + kPrefetchAhead < arrivals) {
            const Arrival& ahead = buf[i + kPrefetchAhead];
            store_.prefetch_bin(ahead.dest);
            store_.prefetch_slot(ahead.token);
          }
          const Arrival& arrival = buf[i];
          store_.push(arrival.dest, arrival.token);
          if (mark_visited(arrival.token, arrival.dest, r + 1)) {
            ++acc.newly_covered;
          }
        }
        buf.clear();
      }
      const std::uint64_t rs0 = obs::enabled() ? obs::now_ns() : 0;
      for (bin_index_t u = plan.shard_begin(s); u < plan.shard_end(s); ++u) {
        const auto load = static_cast<load_t>(store_.count(u));
        if (load == 0) {
          ++acc.zeros;
        } else if (load > acc.max) {
          acc.max = load;
        }
      }
      if (rs0 != 0) {
        const std::uint64_t rs1 = obs::now_ns();
        obs::add_phase_ns(obs::Phase::kRescan, rs1 - rs0);
        obs::record_span("rescan", rs0, rs1);
      }
    }
    acc.cum_newly_covered += acc.newly_covered;
  }

  void step_sharded()
    requires kShardedExec
  {
    const std::uint64_t r = round_;
    const ShardPlan& plan = exec_.plan();

    exec_.stripes().for_stripes(plan.stripe_count(), [&](std::uint32_t g) {
      throw_stripe(g, r, buffers_.data());
    });
    exec_.stripes().for_stripes(plan.stripe_count(), [&](std::uint32_t g) {
      commit_stripe(g, r, buffers_.data());
    });

    max_load_ = 0;
    empty_ = 0;
    for (const StripeAcc& acc : acc_) {
      max_load_ = std::max(max_load_, acc.max);
      empty_ += acc.zeros;
      covered_tokens_ += acc.newly_covered;
    }
    stats_dirty_ = false;  // the commit rescan just paid for them
  }

  /// The pipelined multi-round path (pipeline.hpp): one resident team,
  /// buffers alternating by round parity, bit-identical to `rounds`
  /// barriered steps.  The token-store happens-before chain is the
  /// epoch protocol: a pop (throw, own bins) is ordered before the
  /// committer's push of the same token by the released/acquired
  /// throw_done epoch.  Returns false when no team can be hosted.
  bool run_sharded_pipelined(std::uint64_t rounds)
    requires kShardedExec
  {
    const ShardPlan& plan = exec_.plan();
    const std::uint32_t stripes = plan.stripe_count();
    const std::uint32_t width = std::min(stripes, exec_.stripes().team_width());
    if (width < 2) return false;
    if (buffers_alt_.empty()) buffers_alt_.resize(buffers_.size());
    for (StripeAcc& acc : acc_) acc.cum_newly_covered = 0;
    const std::uint64_t r0 = round_;
    const auto bufs = [this](std::uint64_t i) {
      return (i & 1) == 0 ? buffers_.data() : buffers_alt_.data();
    };
    const bool ran = run_pipeline(
        exec_.stripes(), stripes, width, rounds, /*has_choose=*/false,
        [&](std::uint32_t g, std::uint64_t i) {
          throw_stripe(g, r0 + i, bufs(i));
        },
        [](std::uint32_t, std::uint64_t) {},
        [&](std::uint32_t g, std::uint64_t i) {
          commit_stripe(g, r0 + i, bufs(i));
        });
    if (!ran) return false;

    max_load_ = 0;
    empty_ = 0;
    for (const StripeAcc& acc : acc_) {
      max_load_ = std::max(max_load_, acc.max);
      empty_ += acc.zeros;
      covered_tokens_ += acc.cum_newly_covered;
    }
    stats_dirty_ = false;
    round_ += rounds;
    return true;
  }

  void rebuild_queues(const std::vector<bin_index_t>& placement) {
    store_.rebuild(placement);
    for (std::uint32_t token = 0; token < token_count(); ++token) {
      if (mark_visited(token, placement[token], round_)) {
        ++covered_tokens_;
      }
    }
    rescan_stats();
  }

  void rescan_stats() const {
    max_load_ = 0;
    empty_ = 0;
    for (bin_index_t u = 0; u < bins_; ++u) {
      const auto load = static_cast<load_t>(store_.count(u));
      if (load == 0) {
        ++empty_;
      } else if (load > max_load_) {
        max_load_ = load;
      }
    }
    stats_dirty_ = false;
  }

  /// Pays the O(n) stats pass only when a query needs it (sequential
  /// path; the sharded commit keeps the values fresh for free).
  void refresh_stats() const {
    if (stats_dirty_) rescan_stats();
  }

  void require_visits(const char* what) const {
    if (!options_.track_visits) {
      throw std::logic_error(std::string(what) +
                             ": visit tracking disabled");
    }
  }

  std::uint32_t bins_;
  Stream stream_;
  Exec exec_;
  TokenOptions options_;
  FlatTokenStore store_;
  std::vector<std::uint64_t> progress_;
  std::uint64_t round_ = 0;
  // Lazily maintained stats (refresh_stats); mutable so const queries
  // can pay the rescan on demand.
  mutable load_t max_load_ = 0;
  mutable std::uint32_t empty_ = 0;
  mutable bool stats_dirty_ = false;

  // Visit tracking (empty when !options_.track_visits).
  std::uint32_t words_per_token_ = 0;
  std::vector<std::uint64_t> visited_;
  std::vector<std::uint32_t> visited_count_;
  std::vector<std::uint64_t> cover_round_;
  std::uint32_t covered_tokens_ = 0;

  // Sequential-path scratch: releasing bins (counter path), their
  // tokens, and the destinations, index-aligned.
  std::vector<bin_index_t> seq_slots_;
  std::vector<std::uint32_t> seq_tokens_;
  std::vector<bin_index_t> seq_dests_;

  /// buffers_[stripe * shard_count + target_shard], ascending releasing
  /// bin within each buffer.  Sharded only.  buffers_alt_ is the
  /// odd-parity twin of the pipelined path, sized lazily on first use.
  std::vector<std::vector<Arrival>> buffers_;
  std::vector<std::vector<Arrival>> buffers_alt_;
  std::vector<StripeAcc> acc_;
};

/// Sequential xoshiro instantiation of the flat token core: the
/// production single-thread token kernel.  FIFO and LIFO trajectories
/// are draw-for-draw identical to the classic TokenProcess on the
/// complete graph (pinned by tests/par/token_flat_test.cpp); random
/// differs only in the post-removal queue order (order-preserving
/// versus legacy swap-remove).
class SequentialTokenProcess
    : public TokenProcessCore<SequentialExecution, SequentialStream> {
 public:
  SequentialTokenProcess(std::uint32_t bins,
                         std::vector<bin_index_t> start_bin, Rng rng,
                         TokenOptions options = {})
      : TokenProcessCore(bins, std::move(start_bin), SequentialStream(rng),
                         {}, options) {}
};

}  // namespace rbb::kernel
