// Online statistics used by every experiment driver.
//
// Monte-Carlo sweeps accumulate per-trial observations into OnlineMoments
// (Welford's numerically stable single-pass algorithm) and integer-valued
// observables (loads, cover times in rounds) into Histogram.  Both types
// are mergeable so per-thread accumulators can be combined after a
// parallel sweep without any shared mutable state (design choice D5).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace rbb {

/// Single-pass mean/variance/min/max accumulator (Welford).
class OnlineMoments {
 public:
  OnlineMoments() = default;

  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (Chan's parallel update).
  void merge(const OnlineMoments& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two observations.
  [[nodiscard]] double stderror() const noexcept;
  /// Half-width of the ~95% normal confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Dense histogram over non-negative integer values (bin loads, round
/// counts).  Grows on demand; O(1) add; mergeable.
class Histogram {
 public:
  Histogram() = default;

  void add(std::uint64_t value, std::uint64_t weight = 1);
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Count at exactly `value`.
  [[nodiscard]] std::uint64_t count_at(std::uint64_t value) const noexcept;
  /// Largest value with non-zero count; 0 for an empty histogram.
  [[nodiscard]] std::uint64_t max_value() const noexcept;
  /// Smallest value with non-zero count; 0 for an empty histogram.
  [[nodiscard]] std::uint64_t min_value() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Smallest v such that P(X <= v) >= q, for q in [0, 1].  Requires a
  /// non-empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const;
  /// P(X >= v): fraction of mass at or above `value`.
  [[nodiscard]] double tail_fraction(std::uint64_t value) const noexcept;
  /// Raw counts, indexed by value.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Total-variation distance between an empirical distribution over
/// {0..n-1} given by `counts` (any non-negative weights) and the uniform
/// distribution on the same support: 0.5 * sum_i |p_i - 1/n|.
/// Requires a non-empty counts vector with positive total.
[[nodiscard]] double total_variation_from_uniform(
    const std::vector<std::uint64_t>& counts);

/// Total-variation distance between two empirical distributions with the
/// same support size (each normalized by its own total).
[[nodiscard]] double total_variation(const std::vector<std::uint64_t>& a,
                                     const std::vector<std::uint64_t>& b);

/// Median of a copy of `values` (even count: lower median).  Requires a
/// non-empty vector.
[[nodiscard]] double median(std::vector<double> values);

/// q-quantile (nearest-rank, lower) of a copy of `values`.
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace rbb
