// rbb.ckpt.v1 format tests: encode/decode round trip, the rejection
// table (every malformed header field raises its own named ErrorKind),
// the corrupt-a-byte fuzz (EVERY single-byte mutation of a valid file
// is detected and rejected -- nothing is ever silently restored), and
// truncation at every possible length.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ckpt/checkpoint.hpp"

namespace rbb::ckpt {
namespace {

Checkpoint sample_checkpoint() {
  Checkpoint c;
  c.header.family = Family::kTetris;
  c.header.backend = kBackendSharded;
  c.header.bins = 4096;
  c.header.entities = 4096;
  c.header.seed = 99;
  c.header.round = 123456789;
  c.header.options_digest = digest("experiment=trajectory family=tetris");
  c.meta = "experiment=trajectory\nfamily=tetris\nn=4096\n";
  c.payload = std::string("\x01\x02\x03payload-bytes\x00\xff", 18);
  return c;
}

ErrorKind decode_kind(const std::string& bytes) {
  try {
    (void)decode(bytes);
  } catch (const Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "decode accepted a malformed image";
  return ErrorKind::kIo;
}

TEST(CkptHeader, EncodeDecodeRoundTrip) {
  const Checkpoint c = sample_checkpoint();
  const Checkpoint got = decode(encode(c));
  EXPECT_EQ(got.header.version, kFormatVersion);
  EXPECT_EQ(got.header.family, c.header.family);
  EXPECT_EQ(got.header.stream, kStreamCounter);
  EXPECT_EQ(got.header.backend, c.header.backend);
  EXPECT_EQ(got.header.bins, c.header.bins);
  EXPECT_EQ(got.header.entities, c.header.entities);
  EXPECT_EQ(got.header.seed, c.header.seed);
  EXPECT_EQ(got.header.round, c.header.round);
  EXPECT_EQ(got.header.options_digest, c.header.options_digest);
  EXPECT_EQ(got.meta, c.meta);
  EXPECT_EQ(got.payload, c.payload);
}

// -- rejection table: each malformed field gets its own ErrorKind ------------

TEST(CkptHeader, RejectsWrongMagic) {
  std::string bytes = encode(sample_checkpoint());
  bytes[0] = 'X';
  EXPECT_EQ(decode_kind(bytes), ErrorKind::kBadMagic);
}

TEST(CkptHeader, RejectsUnknownVersion) {
  // encode() honors the header verbatim, so this file has valid CRCs
  // and fails on the version check alone.
  Checkpoint c = sample_checkpoint();
  c.header.version = 99;
  EXPECT_EQ(decode_kind(encode(c)), ErrorKind::kBadVersion);
}

TEST(CkptHeader, RejectsUnknownFamily) {
  Checkpoint c = sample_checkpoint();
  c.header.family = static_cast<Family>(kFamilyCount + 7);
  EXPECT_EQ(decode_kind(encode(c)), ErrorKind::kBadFamily);
}

TEST(CkptHeader, RejectsUnknownStream) {
  Checkpoint c = sample_checkpoint();
  c.header.stream = 3;  // only the counter stream is checkpointable
  EXPECT_EQ(decode_kind(encode(c)), ErrorKind::kBadStream);
}

TEST(CkptHeader, RejectsEmptyImage) {
  EXPECT_EQ(decode_kind(std::string()), ErrorKind::kTruncated);
}

// -- verify_matches: the restore-time identity checks ------------------------

TEST(CkptHeader, VerifyMatchesAccepts) {
  const Checkpoint c = sample_checkpoint();
  EXPECT_NO_THROW(verify_matches(c.header, Family::kTetris, 4096, 4096, 99,
                                 c.header.options_digest));
}

TEST(CkptHeader, VerifyMatchesRejectsByKind) {
  const Checkpoint c = sample_checkpoint();
  const auto kind_of = [&](Family f, std::uint64_t n, std::uint64_t m,
                           std::uint64_t seed, std::uint32_t dig) {
    try {
      verify_matches(c.header, f, n, m, seed, dig);
    } catch (const Error& e) {
      return e.kind();
    }
    ADD_FAILURE() << "verify_matches accepted a mismatch";
    return ErrorKind::kIo;
  };
  const std::uint32_t dig = c.header.options_digest;
  EXPECT_EQ(kind_of(Family::kLoad, 4096, 4096, 99, dig),
            ErrorKind::kFamilyMismatch);
  EXPECT_EQ(kind_of(Family::kTetris, 512, 4096, 99, dig),
            ErrorKind::kShapeMismatch);
  EXPECT_EQ(kind_of(Family::kTetris, 4096, 512, 99, dig),
            ErrorKind::kShapeMismatch);
  EXPECT_EQ(kind_of(Family::kTetris, 4096, 4096, 7, dig),
            ErrorKind::kShapeMismatch);
  EXPECT_EQ(kind_of(Family::kTetris, 4096, 4096, 99, dig ^ 1),
            ErrorKind::kDigestMismatch);
}

// -- corruption fuzz ---------------------------------------------------------

// Flip every byte of a valid image, one at a time: every mutation must
// be rejected with a named Error.  (The two CRC regions cover the
// whole file, so there is no byte whose corruption can go unnoticed.)
TEST(CkptHeader, EverySingleByteFlipIsRejected) {
  const std::string good = encode(sample_checkpoint());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    EXPECT_THROW((void)decode(bad), Error) << "byte " << i << " of "
                                           << good.size();
  }
}

// Truncate at every length: a shortened image must never decode.
TEST(CkptHeader, EveryTruncationIsRejected) {
  const std::string good = encode(sample_checkpoint());
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW((void)decode(good.substr(0, len)), Error)
        << "truncated to " << len << " of " << good.size();
  }
}

// Appending trailing garbage must also be rejected (the length fields
// account for every byte).
TEST(CkptHeader, TrailingGarbageIsRejected) {
  std::string bad = encode(sample_checkpoint());
  bad += '\0';
  EXPECT_THROW((void)decode(bad), Error);
}

TEST(CkptHeader, ErrorMessagesAreNamed) {
  try {
    (void)decode(std::string("not a checkpoint at all, but long enough to "
                             "get past the fixed-size header check......"));
    FAIL() << "decode accepted garbage";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kBadMagic);
    EXPECT_NE(std::string(e.what()).find("checkpoint bad-magic"),
              std::string::npos)
        << "what() = " << e.what();
  }
}

}  // namespace
}  // namespace rbb::ckpt
