// Tests for the exact RBB transition matrix on general graphs (the
// Sect. 5 open question at exactly-solvable scale).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/process.hpp"
#include "graph/graph.hpp"
#include "markov/rbb_chain.hpp"
#include "support/rng.hpp"

namespace rbb {
namespace {

TEST(GraphChain, RowsAreStochasticOnSeveralTopologies) {
  for (std::uint32_t n : {3u, 4u, 5u}) {
    const StateSpace space(n, n);
    const Graph cycle = make_cycle(n);
    EXPECT_TRUE(build_graph_rbb_transition_matrix(space, cycle)
                    .is_row_stochastic(1e-10))
        << "cycle n=" << n;
    const Graph star = make_star(n);
    EXPECT_TRUE(build_graph_rbb_transition_matrix(space, star)
                    .is_row_stochastic(1e-10))
        << "star n=" << n;
    const Graph complete = make_complete(n);
    EXPECT_TRUE(build_graph_rbb_transition_matrix(space, complete)
                    .is_row_stochastic(1e-10))
        << "complete n=" << n;
  }
}

TEST(GraphChain, ValidatesGraphShape) {
  const StateSpace space(4, 4);
  const Graph wrong_size = make_cycle(5);
  EXPECT_THROW(
      (void)build_graph_rbb_transition_matrix(space, wrong_size),
      std::invalid_argument);
}

TEST(GraphChain, BallCountConservedOnEveryEdgeOfTheChain) {
  const StateSpace space(4, 4);
  const Graph cycle = make_cycle(4);
  const DenseMatrix p = build_graph_rbb_transition_matrix(space, cycle);
  for (std::size_t from = 0; from < space.size(); ++from) {
    for (std::size_t to = 0; to < space.size(); ++to) {
      if (p.at(from, to) > 0.0) {
        EXPECT_EQ(total_balls(space.config(to)), 4u);
      }
    }
  }
}

/// On a cycle, a released ball can only move to an adjacent bin, so a
/// transition that teleports load across the cycle must have probability
/// zero: from the all-in-one pile the single departing ball can only
/// reach bins 1 or n-1, never bin 2.
TEST(GraphChain, LocalityOfTransitionsOnTheCycle) {
  const std::uint32_t n = 5;
  const StateSpace space(n, n);
  const Graph cycle = make_cycle(n);
  const DenseMatrix p = build_graph_rbb_transition_matrix(space, cycle);
  // From all-in-one: one ball leaves bin 0 toward bin 1 or bin 4.
  LoadConfig q0(n, 0);
  q0[0] = n;
  const std::size_t from = space.index_of(q0);
  LoadConfig to_near(n, 0);
  to_near[0] = n - 1;
  to_near[1] = 1;
  LoadConfig to_far(n, 0);
  to_far[0] = n - 1;
  to_far[2] = 1;  // two hops away: unreachable in one round
  EXPECT_NEAR(p.at(from, space.index_of(to_near)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(p.at(from, space.index_of(to_far)), 0.0);
}

/// The graph matrix on K_n must match the *graph-mode simulator* (which
/// also excludes self-throws), not the implicit-clique matrix (which
/// allows a ball to return to its own bin).
TEST(GraphChain, CompleteGraphMatrixDiffersFromImplicitCliqueBySelfThrows) {
  const std::uint32_t n = 3;
  const StateSpace space(n, n);
  const Graph complete = make_complete(n);
  const DenseMatrix with_self = build_rbb_transition_matrix(space);
  const DenseMatrix no_self =
      build_graph_rbb_transition_matrix(space, complete);
  // From (3,0,0) the implicit-clique chain can stay put when the released
  // ball lands back home (probability 1/3); the graph chain on K_3 has no
  // self-loops, so that transition has probability exactly 0.
  LoadConfig pile(n, 0);
  pile[0] = n;
  const std::size_t id = space.index_of(pile);
  EXPECT_NEAR(with_self.at(id, id), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(no_self.at(id, id), 0.0);
}

/// Cycle stationary law is invariant under rotating every configuration
/// by one position (the cycle's automorphism).
TEST(GraphChain, CycleStationaryIsRotationInvariant) {
  const std::uint32_t n = 5;
  const StateSpace space(n, n);
  const Graph cycle = make_cycle(n);
  const DenseMatrix p = build_graph_rbb_transition_matrix(space, cycle);
  const std::vector<double> pi = stationary_distribution(p);
  for (std::size_t id = 0; id < space.size(); ++id) {
    const LoadConfig& q = space.config(id);
    LoadConfig rotated(n);
    for (std::uint32_t u = 0; u < n; ++u) rotated[(u + 1) % n] = q[u];
    EXPECT_NEAR(pi[id], pi[space.index_of(rotated)], 1e-9);
  }
}

/// Monte-Carlo cross-check against the production graph-mode simulator.
TEST(GraphChain, SimulatorMatchesExactTransientLawOnCycle) {
  const std::uint32_t n = 4;
  const StateSpace space(n, n);
  const Graph cycle = make_cycle(n);
  const DenseMatrix p = build_graph_rbb_transition_matrix(space, cycle);
  LoadConfig q0(n, 0);
  q0[0] = n;
  const std::uint64_t rounds = 4;
  const auto exact = exact_distribution_after(space, p, q0, rounds);

  const std::uint64_t trials = 40000;
  std::vector<double> empirical(space.size(), 0.0);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    Rng rng(4242, trial);
    RepeatedBallsProcess proc(q0, &cycle, rng);
    proc.run(rounds);
    empirical[space.index_of(proc.loads())] += 1.0;
  }
  for (double& v : empirical) v /= static_cast<double>(trials);
  EXPECT_LT(total_variation(exact, empirical), 0.02);
}

/// The Sect. 5 comparison, exact: at equal n the cycle's stationary
/// expected max load is *not larger* than the clique-graph's (2.000 vs
/// 2.043 at n = 4, 2.250 vs 2.278 at n = 5) -- exact micro-scale support
/// for the paper's conjecture that regular graphs keep the maximum load
/// logarithmic: poor expansion slows mixing but does not, by itself,
/// inflate the stationary maximum.
TEST(GraphChain, CycleStationaryMaxLoadNotAboveCompleteGraphs) {
  for (std::uint32_t n : {4u, 5u}) {
    const StateSpace space(n, n);
    const Graph cycle = make_cycle(n);
    const Graph complete = make_complete(n);
    const auto f_cycle = exact_functionals(
        space, stationary_distribution(
                   build_graph_rbb_transition_matrix(space, cycle)));
    const auto f_complete = exact_functionals(
        space, stationary_distribution(
                   build_graph_rbb_transition_matrix(space, complete)));
    EXPECT_LE(f_cycle.expected_max_load,
              f_complete.expected_max_load + 1e-9)
        << "n=" << n;
    // ... but the two laws are close: the topology changes the constant
    // by a few percent, not the scale.
    EXPECT_NEAR(f_cycle.expected_max_load, f_complete.expected_max_load,
                0.1 * f_complete.expected_max_load)
        << "n=" << n;
    EXPECT_LE(f_cycle.expected_max_load, static_cast<double>(n));
  }
}

/// The non-regular counterpoint (why Sect. 5 conjectures *regular*
/// graphs): on the star, every leaf ball must route through the center,
/// so the center hoards the load -- the exact stationary E[max load] is
/// n - 1 (all but one ball at the center) and P(M >= 3) = 1 for n >= 4.
TEST(GraphChain, StarCenterHoardsExactlyNMinusOne) {
  for (std::uint32_t n : {4u, 5u, 6u}) {
    const StateSpace space(n, n);
    const Graph star = make_star(n);
    const auto f = exact_functionals(
        space,
        stationary_distribution(build_graph_rbb_transition_matrix(space,
                                                                  star)));
    EXPECT_NEAR(f.expected_max_load, static_cast<double>(n - 1), 1e-9)
        << "n=" << n;
    EXPECT_NEAR(f.max_load_tail[3], 1.0, 1e-9) << "n=" << n;
  }
}

}  // namespace
}  // namespace rbb
