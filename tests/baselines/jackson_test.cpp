// Tests for the closed Jackson network simulator.
#include "baselines/jackson.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace rbb {
namespace {

TEST(Jackson, RejectsEmptyConfig) {
  EXPECT_THROW(ClosedJacksonNetwork(LoadConfig{}, Rng(1)),
               std::invalid_argument);
}

TEST(Jackson, ConservesCustomers) {
  Rng rng(2);
  ClosedJacksonNetwork net(make_config(InitialConfig::kRandom, 32, 32, rng),
                           rng);
  for (int i = 0; i < 1000; ++i) {
    net.step_event();
    net.check_invariants();
  }
  EXPECT_EQ(total_balls(net.loads()), 32u);
}

TEST(Jackson, TimeAdvancesMonotonically) {
  Rng rng(3);
  ClosedJacksonNetwork net(LoadConfig(16, 1), rng);
  double prev = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double dt = net.step_event();
    EXPECT_GT(dt, 0.0);
    EXPECT_GT(net.time(), prev);
    prev = net.time();
  }
  EXPECT_EQ(net.events(), 200u);
}

TEST(Jackson, RunUntilStopsAtHorizon) {
  Rng rng(4);
  ClosedJacksonNetwork net(LoadConfig(16, 1), rng);
  net.run_until(50.0);
  EXPECT_DOUBLE_EQ(net.time(), 50.0);
  net.check_invariants();
}

TEST(Jackson, EventRateMatchesBusyCount) {
  // With all stations busy (load >= 1 everywhere initially and customers
  // = stations), the long-run event rate per unit time is ~ #busy ~ n(1-e^{-1}).
  constexpr std::uint32_t n = 64;
  Rng rng(5);
  ClosedJacksonNetwork net(LoadConfig(n, 1), rng);
  const double horizon = 200.0;
  net.run_until(horizon);
  const double rate = static_cast<double>(net.events()) / horizon;
  // Stationary busy fraction for the closed network with m = n is
  // ~ (1 - 1/e) per the product-form marginals; envelope generously.
  EXPECT_GT(rate, 0.4 * n);
  EXPECT_LT(rate, 1.0 * n);
}

TEST(Jackson, RunningMaxDominatesCurrentMax) {
  Rng rng(6);
  ClosedJacksonNetwork net(LoadConfig(32, 1), rng);
  net.run_until(100.0);
  EXPECT_GE(net.running_max_load(), net.max_load());
  EXPECT_GE(net.running_max_load(), 1u);
}

TEST(Jackson, BusySetMatchesLoads) {
  Rng rng(7);
  ClosedJacksonNetwork net(make_config(InitialConfig::kAllInOne, 16, 16, rng),
                           rng);
  EXPECT_EQ(net.busy_stations(), 1u);
  net.run_until(20.0);
  std::uint32_t busy = 0;
  for (const auto load : net.loads()) busy += load > 0 ? 1u : 0u;
  EXPECT_EQ(net.busy_stations(), busy);
}

TEST(Jackson, DeterministicForSeed) {
  auto run = [] {
    Rng rng(8);
    ClosedJacksonNetwork net(LoadConfig(16, 1), rng);
    net.run_until(50.0);
    return net.loads();
  };
  EXPECT_EQ(run(), run());
}

TEST(Jackson, MaxQueueStaysModerate) {
  // Product-form marginals are ~geometric; the max queue over n = 256
  // stations within 20n time units stays far below n.
  constexpr std::uint32_t n = 256;
  Rng rng(9);
  ClosedJacksonNetwork net(LoadConfig(n, 1), rng);
  net.run_until(20.0 * n);
  EXPECT_LT(net.running_max_load(), n / 4);
}

}  // namespace
}  // namespace rbb
