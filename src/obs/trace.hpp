// Phase spans: RAII scoped timers over the obs metrics registry, with
// optional Chrome-trace event capture (DESIGN.md Sect. 6).
//
// A ScopedPhase accumulates its duration into the calling thread's
// phase_ns slot (obs/metrics.hpp) and -- while a trace is active --
// appends a complete event ("ph":"X") to the thread's bounded trace
// buffer.  Buffers hold kMaxTraceEventsPerThread events; overflow
// increments Counter::kTraceEventsDropped instead of reallocating
// unboundedly, so tracing a million-round run degrades gracefully.
//
// Thread ids in the trace are slot-registration order (0 = the first
// thread that recorded telemetry, usually the main thread).  Export via
// obs/trace_export.hpp; open the file at https://ui.perfetto.dev or
// chrome://tracing.
//
// Under RBB_TELEMETRY=0 everything here is an empty inline no-op and
// sizeof(ScopedPhase) == 1 (pinned by tests/obs/).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace rbb::obs {

/// Per-thread trace-buffer capacity, in events.  40 bytes/event keeps
/// the worst case near 10 MB per thread.
inline constexpr std::size_t kMaxTraceEventsPerThread = std::size_t{1}
                                                        << 18;

#if RBB_TELEMETRY

/// Steady-clock nanoseconds (the time base of every span and trace
/// timestamp).
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace detail {
extern std::atomic<bool> g_tracing;
void finish_phase(Phase phase, std::uint64_t t0_ns) noexcept;

/// One captured complete event (internal: the exporter's input).
struct TraceEvent {
  const char* name;      // static storage
  std::uint64_t ts_ns;   // relative to the trace epoch
  std::uint64_t dur_ns;
  std::uint32_t tid;     // slot-registration order
};

/// Snapshot of every thread's buffered events (unsorted).
[[nodiscard]] std::vector<TraceEvent> collect_trace_events();
}  // namespace detail

/// True while start_trace() is active (events are being captured).
[[nodiscard]] inline bool tracing() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Clears every thread's trace buffer, re-bases the trace epoch at now,
/// and starts capturing events.  Recording additionally requires
/// obs::set_enabled(true) -- enabled() is the master switch.
void start_trace() noexcept;

/// Stops capturing; buffered events stay available for export.
void stop_trace() noexcept;

/// Appends a complete event [t0, t1] (absolute now_ns() timestamps) to
/// the calling thread's buffer.  `name` must have static storage
/// duration (the buffer stores the pointer).  No-op unless tracing().
void record_span(const char* name, std::uint64_t t0_ns,
                 std::uint64_t t1_ns) noexcept;

/// Test hook: appends an event with an explicit thread id and
/// epoch-relative timestamps, bypassing the clock -- lets the golden
/// export test pin exact bytes.  Same static-storage rule for `name`.
void record_span_at(const char* name, std::uint32_t tid,
                    std::uint64_t ts_ns, std::uint64_t dur_ns) noexcept;

/// RAII phase span: measures construction-to-destruction, accumulates
/// into the thread's phase_ns slot, and emits a trace event when a
/// trace is active.  Disabled (enabled() == false) it costs one
/// relaxed load and no clock reads.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase) noexcept
      : phase_(phase), t0_(enabled() ? now_ns() : 0) {}
  ~ScopedPhase() {
    if (t0_ != 0) detail::finish_phase(phase_, t0_);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  std::uint64_t t0_;
};

#else  // !RBB_TELEMETRY

[[nodiscard]] constexpr std::uint64_t now_ns() noexcept { return 0; }
[[nodiscard]] constexpr bool tracing() noexcept { return false; }
inline void start_trace() noexcept {}
inline void stop_trace() noexcept {}
inline void record_span(const char*, std::uint64_t, std::uint64_t) noexcept {}
inline void record_span_at(const char*, std::uint32_t, std::uint64_t,
                           std::uint64_t) noexcept {}

/// The no-op span: an empty object the optimizer deletes outright.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase) noexcept {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
};

#endif  // RBB_TELEMETRY

}  // namespace rbb::obs
