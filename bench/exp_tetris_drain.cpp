// E5 -- Lemma 4: in the Tetris process, every bin is empty at least once
// within 5n rounds, from any initial configuration, w.h.p.
//
// Table: per n and adversarial start, the max-over-bins first-empty round
// normalized by n (prediction: <= 5, measured ~1 from all-in-one) and the
// count of trials exceeding 5n (predicted 0).
#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E5: Tetris drains every bin within 5n rounds (Lemma 4)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 3, 8, 20);

  Table table({"n", "start", "trials", "drain (mean rounds)",
               "drain / n (mean)", "drain / n (max)", "> 5n", "timeouts"});
  for (const std::uint32_t n : bench::n_sweep(scale)) {
    for (const InitialConfig start :
         {InitialConfig::kAllInOne, InitialConfig::kGeometric,
          InitialConfig::kHalfLoaded}) {
      TetrisDrainParams p;
      p.n = n;
      p.trials = trials;
      p.seed = cli.u64("seed");
      p.start = start;
      const TetrisDrainResult r = run_tetris_drain(p);
      table.row()
          .cell(std::uint64_t{n})
          .cell(std::string(to_string(start)))
          .cell(std::uint64_t{trials})
          .cell(r.max_first_empty.mean(), 1)
          .cell(r.normalized.mean(), 3)
          .cell(r.normalized.max(), 3)
          .cell(std::uint64_t{r.exceeded_5n})
          .cell(std::uint64_t{r.timeouts});
    }
  }
  bench::emit(table, "E5_tetris_drain",
              "every Tetris bin empties within 5n rounds (Lemma 4)", scale);
  return 0;
}
