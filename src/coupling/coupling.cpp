#include "coupling/coupling.hpp"

#include <algorithm>
#include <stdexcept>

namespace rbb {

CoupledProcesses::CoupledProcesses(LoadConfig initial, Rng rng)
    : original_(initial), tetris_(std::move(initial)), rng_(rng) {
  if (original_.empty()) {
    throw std::invalid_argument("CoupledProcesses: empty configuration");
  }
  arrivals_ = original_.size() * 3 / 4;
  original_running_max_ = max_load(original_);
  tetris_running_max_ = original_running_max_;
}

CoupledRoundStats CoupledProcesses::step() {
  const auto n = static_cast<std::uint32_t>(original_.size());
  ++round_;

  // Departure phase for both processes (simultaneous, from state t).
  std::uint64_t released = 0;  // |W^{t-1}| of the original process
  for (std::uint32_t u = 0; u < n; ++u) {
    if (original_[u] > 0) {
      --original_[u];
      ++released;
    }
    if (tetris_[u] > 0) --tetris_[u];
  }

  const bool case_two = released > arrivals_;
  if (case_two) ++case_two_rounds_;

  if (!case_two) {
    // Case (i): each of the `released` original balls shares its uniform
    // destination draw with one Tetris arrival.
    for (std::uint64_t i = 0; i < released; ++i) {
      const std::uint32_t dest = rng_.index(n);
      ++original_[dest];
      ++tetris_[dest];
    }
    for (std::uint64_t i = released; i < arrivals_; ++i) {
      ++tetris_[rng_.index(n)];
    }
  } else {
    // Case (ii): independent rounds.
    for (std::uint64_t i = 0; i < released; ++i) ++original_[rng_.index(n)];
    for (std::uint64_t i = 0; i < arrivals_; ++i) ++tetris_[rng_.index(n)];
  }

  // End-of-round observables and the domination check.
  std::uint32_t original_max = 0;
  std::uint32_t tetris_max = 0;
  bool dominated = true;
  for (std::uint32_t u = 0; u < n; ++u) {
    original_max = std::max(original_max, original_[u]);
    tetris_max = std::max(tetris_max, tetris_[u]);
    if (tetris_[u] < original_[u]) dominated = false;
  }
  original_running_max_ = std::max(original_running_max_, original_max);
  tetris_running_max_ = std::max(tetris_running_max_, tetris_max);
  if (!dominated) {
    ++violation_rounds_;
    if (first_violation_round_ == 0) first_violation_round_ = round_;
  }
  return CoupledRoundStats{original_max, tetris_max, dominated, case_two};
}

CoupledRoundStats CoupledProcesses::run(std::uint64_t rounds) {
  CoupledRoundStats stats;
  for (std::uint64_t t = 0; t < rounds; ++t) stats = step();
  return stats;
}

}  // namespace rbb
