// Closed Jackson network -- the classical-queueing-theory relative
// (paper, Sect. 1.3).
//
// n stations, m customers, exponential(1) service at every busy station,
// uniform routing over all n stations on completion.  Time is continuous
// and events are *sequential*, which is why the stationary distribution
// has product form and the model is analytically benign -- in contrast to
// the paper's synchronous-parallel chain.  Experiment E17 compares the
// maximum queue length of the two models at matched time scales (one RBB
// round ~ one unit of Jackson time, in which every busy station completes
// one service in expectation).
//
// Simulation: all busy stations race with rate 1, so the next completion
// occurs after Exp(#busy) time at a uniformly random busy station -- an
// O(1)-per-event simulation using a DenseSet of busy stations.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "support/dense_set.hpp"
#include "support/rng.hpp"

namespace rbb {

/// Event-driven closed Jackson network simulator.
class ClosedJacksonNetwork {
 public:
  ClosedJacksonNetwork(LoadConfig initial, Rng rng);

  /// Advances one service-completion event; returns the elapsed
  /// (exponential) time increment.  No-op returning 0 when all stations
  /// are idle (impossible while customers exist).
  double step_event();

  /// Advances until simulated time reaches `horizon` (events after the
  /// horizon are not applied).
  void run_until(double horizon);

  [[nodiscard]] std::uint32_t station_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t customer_count() const noexcept {
    return customers_;
  }
  [[nodiscard]] double time() const noexcept { return time_; }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }
  /// Current maximum queue length; O(n).
  [[nodiscard]] std::uint32_t max_load() const;
  [[nodiscard]] std::uint32_t busy_stations() const noexcept {
    return busy_.size();
  }
  /// Highest queue length observed at any event since construction.
  [[nodiscard]] std::uint32_t running_max_load() const noexcept {
    return running_max_;
  }

  /// Testing hook; throws std::logic_error on internal inconsistency.
  void check_invariants() const;

 private:
  LoadConfig loads_;
  Rng rng_;
  DenseSet busy_;
  std::uint64_t customers_;
  double time_ = 0.0;
  std::uint64_t events_ = 0;
  std::uint32_t running_max_ = 0;
};

}  // namespace rbb
