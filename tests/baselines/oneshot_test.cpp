// Tests for the one-shot balls-into-bins baselines.
#include "baselines/oneshot.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/bounds.hpp"
#include "support/stats.hpp"

namespace rbb {
namespace {

TEST(OneShot, ConservesBalls) {
  Rng rng(1);
  const auto occ = oneshot_occupancy(500, 64, rng);
  EXPECT_EQ(std::accumulate(occ.begin(), occ.end(), 0u), 500u);
}

TEST(OneShot, MaxLoadNearLogOverLogLog) {
  // n = 4096: E[max load] ~ log n / log log n * (1 + o(1)) ~ 3.9; the
  // realized value concentrates in [3, 9] overwhelmingly.
  constexpr std::uint32_t n = 4096;
  Rng rng(2);
  OnlineMoments m;
  for (int i = 0; i < 50; ++i) {
    m.add(static_cast<double>(oneshot_max_load(n, n, rng)));
  }
  EXPECT_GE(m.min(), 3.0);
  EXPECT_LE(m.max(), 10.0);
  const double predicted = oneshot_max_load_asymptotic(n);
  EXPECT_NEAR(m.mean(), predicted * 1.6, 2.5);
}

TEST(DChoice, RejectsBadParameters) {
  Rng rng(3);
  EXPECT_THROW((void)dchoice_occupancy(10, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW((void)dchoice_occupancy(10, 4, 0, rng), std::invalid_argument);
}

TEST(DChoice, ConservesBalls) {
  Rng rng(4);
  const auto occ = dchoice_occupancy(300, 32, 2, rng);
  EXPECT_EQ(std::accumulate(occ.begin(), occ.end(), 0u), 300u);
}

TEST(DChoice, DOneMatchesOneShotDistribution) {
  Rng rng(5);
  OnlineMoments one;
  OnlineMoments d1;
  for (int i = 0; i < 60; ++i) {
    one.add(static_cast<double>(oneshot_max_load(1024, 1024, rng)));
    d1.add(static_cast<double>(dchoice_max_load(1024, 1024, 1, rng)));
  }
  EXPECT_NEAR(one.mean(), d1.mean(), 1.0);
}

TEST(DChoice, TwoChoicesBeatOne) {
  // The power of two choices: max load drops from ~log n/log log n to
  // ~log log n.  At n = 4096 the gap is decisive in every trial batch.
  constexpr std::uint32_t n = 4096;
  Rng rng(6);
  OnlineMoments one;
  OnlineMoments two;
  for (int i = 0; i < 30; ++i) {
    one.add(static_cast<double>(oneshot_max_load(n, n, rng)));
    two.add(static_cast<double>(dchoice_max_load(n, n, 2, rng)));
  }
  EXPECT_LT(two.mean() + 1.0, one.mean());
  EXPECT_LE(two.max(), 5.0);  // log2 log2 4096 ~ 3.6
}

TEST(DChoice, ThreeChoicesAtLeastAsGoodAsTwo) {
  constexpr std::uint32_t n = 4096;
  Rng rng(7);
  OnlineMoments two;
  OnlineMoments three;
  for (int i = 0; i < 30; ++i) {
    two.add(static_cast<double>(dchoice_max_load(n, n, 2, rng)));
    three.add(static_cast<double>(dchoice_max_load(n, n, 3, rng)));
  }
  EXPECT_LE(three.mean(), two.mean() + 0.2);
}

TEST(DLeft, RejectsBadParameters) {
  Rng rng(8);
  EXPECT_THROW((void)dleft_occupancy(10, 8, 1, rng), std::invalid_argument);
  EXPECT_THROW((void)dleft_occupancy(10, 4, 5, rng), std::invalid_argument);
}

TEST(DLeft, ConservesBalls) {
  Rng rng(9);
  const auto occ = dleft_occupancy(256, 32, 2, rng);
  EXPECT_EQ(std::accumulate(occ.begin(), occ.end(), 0u), 256u);
}

TEST(DLeft, CompetitiveWithGreedyD) {
  // Always-Go-Left is provably at least as good asymptotically; at test
  // scale demand it is within one ball of Greedy[2].
  constexpr std::uint32_t n = 2048;
  Rng rng(10);
  OnlineMoments greedy;
  OnlineMoments dleft;
  for (int i = 0; i < 30; ++i) {
    greedy.add(static_cast<double>(dchoice_max_load(n, n, 2, rng)));
    dleft.add(static_cast<double>(dleft_max_load(n, n, 2, rng)));
  }
  EXPECT_LE(dleft.mean(), greedy.mean() + 1.0);
}

TEST(DLeft, HandlesUnevenGroups) {
  Rng rng(11);
  // bins = 10, d = 3: groups of sizes 3/3/4; must still place all balls.
  const auto occ = dleft_occupancy(100, 10, 3, rng);
  EXPECT_EQ(std::accumulate(occ.begin(), occ.end(), 0u), 100u);
}

}  // namespace
}  // namespace rbb
