// E8 -- Corollary 1 cover time.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/cover_time.cpp); this binary behaves like
// `rbb run cover_time` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("cover_time", argc, argv);
}
