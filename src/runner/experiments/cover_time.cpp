// E8 -- Corollary 1: the multi-token traversal on the clique has cover
// time O(n log^2 n), a log-factor above the single-walker coupon
// collector O(n log n).
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/fit.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_cover_time(Registry& registry) {
  Experiment e;
  e.name = "cover_time";
  e.claim = "E8";
  e.title =
      "parallel cover time is ~log n slower than one walker (Corollary 1)";
  e.description =
      "Per n: the global cover time of the n-token traversal, its "
      "normalization by n log2^2 n, the single-token coupon-collector "
      "baseline, the measured slowdown factor, and log2 n (the predicted "
      "slowdown shape).  Power-law fits over the sweep report measured "
      "growth exponents for both series.  Backend-capable (token "
      "family): --backend=sharded drives the visit-tracking src/par/ "
      "token core (any queue policy, clique; the single-walk baseline "
      "stays sequential).";
  e.family = ProcessFamily::kToken;
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 10);
    const std::vector<std::uint32_t> ns =
        ctx.scale == BenchScale::kSmoke
            ? std::vector<std::uint32_t>{64, 128}
            : (ctx.scale == BenchScale::kPaper
                   ? std::vector<std::uint32_t>{256, 512, 1024, 2048}
                   : std::vector<std::uint32_t>{128, 256, 512, 1024});

    ResultSet rs;
    Table& table = rs.add_table(
        "E8_cover_time",
        "parallel cover time is ~log n slower than one walker "
        "(Corollary 1)",
        {"n", "trials", "cover (mean)", "cover / (n log2^2 n)",
         "single walk (mean)", "slowdown", "log2 n", "timeouts"});
    std::vector<double> xs;
    std::vector<double> covers;
    std::vector<double> singles;
    for (const std::uint32_t n : ns) {
      CoverTimeParams p;
      p.n = n;
      p.trials = trials;
      p.seed = ctx.seed();
      if (ctx.sharded()) p.backend = Backend::kSharded;
      const CoverTimeResult r = run_cover_time(p);
      const double slowdown = r.single_walk.mean() > 0
                                  ? r.cover_time.mean() / r.single_walk.mean()
                                  : 0.0;
      table.row()
          .cell(std::uint64_t{n})
          .cell(std::uint64_t{trials})
          .cell(r.cover_time.mean(), 0)
          .cell(r.normalized.mean(), 3)
          .cell(r.single_walk.mean(), 0)
          .cell(slowdown, 2)
          .cell(log2n(n), 2)
          .cell(std::uint64_t{r.timeouts});
      xs.push_back(static_cast<double>(n));
      covers.push_back(r.cover_time.mean());
      singles.push_back(r.single_walk.mean());
    }
    const PowerLawFit cover_fit = fit_power_law(xs, covers);
    const PowerLawFit single_fit = fit_power_law(xs, singles);
    rs.note("fitted growth laws: parallel cover ~ n^" +
            format_double(cover_fit.exponent, 3) +
            " (R^2 = " + format_double(cover_fit.r_squared, 4) +
            "), single walk ~ n^" + format_double(single_fit.exponent, 3) +
            "   [n log^2 n ~ n^{1+2 log log n / log n}: expect parallel "
            "exponent ~1.2-1.4 on this range, single ~1.1]");
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
