// Tests for the CLI option parser.
#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rbb {
namespace {

Cli make_cli() {
  Cli cli("test program");
  cli.add_u64("n", 1024, "bins");
  cli.add_double("beta", 4.0, "legitimacy constant");
  cli.add_string("graph", "complete", "topology");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

bool parse(Cli& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply) {
  Cli cli = make_cli();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.u64("n"), 1024u);
  EXPECT_DOUBLE_EQ(cli.f64("beta"), 4.0);
  EXPECT_EQ(cli.str("graph"), "complete");
  EXPECT_FALSE(cli.flag("verbose"));
}

TEST(Cli, EqualsForm) {
  Cli cli = make_cli();
  ASSERT_TRUE(parse(cli, {"--n=64", "--beta=2.5", "--graph=cycle"}));
  EXPECT_EQ(cli.u64("n"), 64u);
  EXPECT_DOUBLE_EQ(cli.f64("beta"), 2.5);
  EXPECT_EQ(cli.str("graph"), "cycle");
}

TEST(Cli, SpaceForm) {
  Cli cli = make_cli();
  ASSERT_TRUE(parse(cli, {"--n", "32", "--graph", "torus"}));
  EXPECT_EQ(cli.u64("n"), 32u);
  EXPECT_EQ(cli.str("graph"), "torus");
}

TEST(Cli, FlagForms) {
  Cli cli = make_cli();
  ASSERT_TRUE(parse(cli, {"--verbose"}));
  EXPECT_TRUE(cli.flag("verbose"));
  Cli cli2 = make_cli();
  ASSERT_TRUE(parse(cli2, {"--verbose=false"}));
  EXPECT_FALSE(cli2.flag("verbose"));
}

TEST(Cli, UnknownOptionFails) {
  Cli cli = make_cli();
  EXPECT_FALSE(parse(cli, {"--bogus=1"}));
}

TEST(Cli, MissingValueFails) {
  Cli cli = make_cli();
  EXPECT_FALSE(parse(cli, {"--n"}));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  EXPECT_FALSE(parse(cli, {"--help"}));
}

TEST(Cli, PositionalArgumentFails) {
  Cli cli = make_cli();
  EXPECT_FALSE(parse(cli, {"stray"}));
}

TEST(Cli, WrongTypeAccessThrows) {
  Cli cli = make_cli();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_THROW((void)cli.u64("beta"), std::logic_error);
  EXPECT_THROW((void)cli.str("missing"), std::logic_error);
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  Cli cli = make_cli();
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("default: 1024"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace rbb
