// E17 -- Sect. 1.3: the closed Jackson network is the classical-queueing
// relative of the repeated process (sequential events, product-form
// stationary distribution) -- how do its queue lengths compare?
//
// Table: per n, the Jackson running max queue over a horizon of 20n time
// units vs the repeated process's window max over 20n rounds (one round
// ~ one time unit: every busy station completes ~one service per unit).
// Both stay logarithmic; the Jackson maximum runs higher because its
// geometric-tailed marginals are heavier than the parallel process's.
#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E17: closed Jackson network vs the repeated process (Sect. 1.3)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 10);
  const std::uint64_t wf = by_scale<std::uint64_t>(scale, 5, 20, 40);

  Table table({"n", "jackson running max", "jackson / log2 n",
               "repeated window max", "repeated / log2 n",
               "jackson events / unit time"});
  for (const std::uint32_t n : bench::n_sweep(scale)) {
    JacksonParams jp;
    jp.n = n;
    jp.horizon = static_cast<double>(wf * n);
    jp.trials = trials;
    jp.seed = cli.u64("seed");
    const JacksonResult jr = run_jackson(jp);

    StabilityParams sp;
    sp.n = n;
    sp.rounds = wf * n;
    sp.trials = trials;
    sp.seed = cli.u64("seed") + 1;
    const StabilityResult sr = run_stability(sp);

    table.row()
        .cell(std::uint64_t{n})
        .cell(jr.running_max.mean(), 2)
        .cell(jr.running_max.mean() / log2n(n), 3)
        .cell(sr.window_max.mean(), 2)
        .cell(sr.window_max.mean() / log2n(n), 3)
        .cell(jr.events_per_unit_time.mean(), 1);
  }
  bench::emit(table, "E17_jackson",
              "sequential product-form relative vs the parallel process",
              scale);
  return 0;
}
