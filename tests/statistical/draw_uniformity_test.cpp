// Statistical oracle: one-round destination draws are uniform over the
// bins under BOTH stream policies (DESIGN.md Sect. 5).  The kernels
// consume exactly these draw functions -- CounterStream::index on the
// slot-space of core/kernel/stream.hpp, Rng::index on the sequential
// stream -- so pinning their one-round empirical distribution pins the
// distribution the processes throw with.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/kernel/stream.hpp"
#include "support/rng.hpp"
#include "stat_oracle.hpp"

namespace rbb {
namespace {

using testing::chi_square_bound;
using testing::chi_square_uniform;
using testing::ks_bound;
using testing::ks_uniform;

constexpr std::uint32_t kBins = 64;
constexpr std::uint32_t kDrawsPerCell = 200;  // ~200 expected per bin

TEST(DrawUniformity, CounterStreamRelaunchSlotsAreUniform) {
  const kernel::CounterStream stream(0xFEEDFACEull);
  std::vector<std::uint64_t> counts(kBins, 0);
  // One round = one draw per releasing bin; aggregate across rounds.
  for (std::uint64_t round = 1; round <= kDrawsPerCell; ++round) {
    for (std::uint32_t u = 0; u < kBins; ++u) {
      ++counts[stream.index(round, kernel::relaunch_slot(u), kBins)];
    }
  }
  EXPECT_LT(chi_square_uniform(counts), chi_square_bound(kBins - 1));
}

TEST(DrawUniformity, CounterStreamMixedDestinationSlotsAreUniform) {
  // The mixed-regime core's destination draws: slot 2^51 | (j << 32) | u.
  const kernel::CounterStream stream(0xABCDEF01ull);
  std::vector<std::uint64_t> counts(kBins, 0);
  for (std::uint64_t round = 1; round <= kDrawsPerCell / 4; ++round) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      for (std::uint32_t u = 0; u < kBins; ++u) {
        ++counts[stream.index(round, kernel::mixed_dest_slot(j, u), kBins)];
      }
    }
  }
  EXPECT_LT(chi_square_uniform(counts), chi_square_bound(kBins - 1));
}

TEST(DrawUniformity, CounterStreamMixedClassSlotsAreUniform) {
  // The class picks reuse the same index() primitive on their own slot
  // range; check uniformity over a small class-draw bound too.
  const kernel::CounterStream stream(0x12345678ull);
  constexpr std::uint32_t kBound = 7;  // deliberately not a power of two
  std::vector<std::uint64_t> counts(kBound, 0);
  for (std::uint64_t round = 1; round <= 200; ++round) {
    for (std::uint32_t u = 0; u < kBins; ++u) {
      ++counts[stream.index(round, kernel::mixed_class_slot(0, u), kBound)];
    }
  }
  EXPECT_LT(chi_square_uniform(counts), chi_square_bound(kBound - 1));
}

TEST(DrawUniformity, SequentialStreamDrawsAreUniform) {
  kernel::SequentialStream stream{Rng(0xD1CE5EEDull)};
  std::vector<std::uint64_t> counts(kBins, 0);
  for (std::uint32_t i = 0; i < kBins * kDrawsPerCell; ++i) {
    ++counts[stream.rng().index(kBins)];
  }
  EXPECT_LT(chi_square_uniform(counts), chi_square_bound(kBins - 1));
}

TEST(DrawUniformity, CounterStreamPassesKolmogorovSmirnov) {
  // CDF-level check on the same primitive, finer than binned chi-square.
  const kernel::CounterStream stream(0x0BADF00Dull);
  constexpr std::uint32_t kSamples = 4096;
  constexpr std::uint32_t kScale = 1u << 30;
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (std::uint32_t i = 0; i < kSamples; ++i) {
    samples.push_back(
        static_cast<double>(stream.index(1, kernel::mixed_dest_slot(0, i),
                                         kScale)) /
        static_cast<double>(kScale));
  }
  EXPECT_LT(ks_uniform(samples), ks_bound(kSamples));
}

TEST(DrawUniformity, SequentialStreamPassesKolmogorovSmirnov) {
  kernel::SequentialStream stream{Rng(0xC0FFEE42ull)};
  constexpr std::uint32_t kSamples = 4096;
  constexpr std::uint32_t kScale = 1u << 30;
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (std::uint32_t i = 0; i < kSamples; ++i) {
    samples.push_back(static_cast<double>(stream.rng().index(kScale)) /
                      static_cast<double>(kScale));
  }
  EXPECT_LT(ks_uniform(samples), ks_bound(kSamples));
}

}  // namespace
}  // namespace rbb
