// Stopping rules for Engine::run (DESIGN.md Sect. 2).
//
// A stopping rule is a predicate `rule(process, rounds_done) -> bool`
// evaluated on the *current* state before each round; returning true ends
// the run with goal_reached = true.  The round budget (`max_rounds`) is a
// separate engine parameter so every goal-directed rule composes with a
// cap -- EngineResult::goal_reached distinguishes convergence from
// timeout.  Rules are plain structs; ad-hoc lambdas with the same
// signature work too.
#pragma once

#include <cstdint>

#include "engine/process.hpp"

namespace rbb {

/// Never stops early: run exactly the engine's round budget (fixed-rounds
/// observation windows).
struct RunForRounds {
  template <typename P>
  [[nodiscard]] bool operator()(const P&, std::uint64_t) const noexcept {
    return false;
  }
};

/// Stops when the configuration is legitimate: M(q) <= threshold, with
/// threshold = beta * log2(n) (Theorem 1's convergence target).
struct UntilLegitimate {
  double threshold = 0.0;

  template <typename P>
  [[nodiscard]] bool operator()(const P& p, std::uint64_t) const {
    return static_cast<double>(engine_max_load(p)) <= threshold;
  }
};

/// Stops once every bin has been empty at least once (the Lemma 4 drain
/// event; Tetris exposes the round bookkeeping).
struct UntilAllEmptiedOnce {
  template <typename P>
    requires requires(const P& p) {
      { p.all_emptied_once() } -> std::convertible_to<bool>;
    }
  [[nodiscard]] bool operator()(const P& p, std::uint64_t) const {
    return p.all_emptied_once();
  }
};

/// Stops once every token has visited every bin (Corollary 1's parallel
/// cover event; requires the token process's visit tracking).
struct UntilAllCovered {
  template <typename P>
    requires requires(const P& p) {
      { p.all_covered() } -> std::convertible_to<bool>;
    }
  [[nodiscard]] bool operator()(const P& p, std::uint64_t) const {
    return p.all_covered();
  }
};

/// Stops when at most one token survives (Israeli-Jalfon coalescence --
/// the mutual-exclusion legitimacy predicate).
struct UntilSingleToken {
  template <typename P>
    requires requires(const P& p) {
      { p.token_count() } -> std::convertible_to<std::uint32_t>;
    }
  [[nodiscard]] bool operator()(const P& p, std::uint64_t) const {
    return p.token_count() <= 1;
  }
};

}  // namespace rbb
