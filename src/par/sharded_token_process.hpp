// Sharded and counter-stream instantiations of the token kernel
// (DESIGN.md Sect. 5): the multi-token traversal at mega-n scale.
//
// Thin constructor adapters over core/kernel/token_kernel.hpp:
//
//   ShardedTokenProcess            Token x CounterStream x Sharded
//   SequentialCounterTokenProcess  Token x CounterStream x Sequential
//                                  (the parity oracle of tests/par/)
//
// Scope of the port (the mega-n subset): all three queue policies
// (TokenOptions::policy -- FIFO, LIFO, random with schedule-free
// pop-select draws) on the complete graph, per-token progress
// counters, and OPTIONAL per-token visited bitsets (cover-time
// experiments; m*n bits -- leave off at mega n).  The delay
// histograms and general-graph support of core/token_process.hpp are
// deliberately absent; delay experiments stay on the sequential
// TokenProcess.  Queue state is the flat implicit-FIFO store
// (core/kernel/token_store.hpp): 8m + 12n bytes, no per-bin
// allocation, which is what makes token rows benchable at n = 10^8.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/kernel/token_kernel.hpp"
#include "par/sharded_process.hpp"  // ShardedOptions

namespace rbb::par {

using kernel::TokenOptions;

/// Multi-token traversal on K_n, sharded across cores.
class ShardedTokenProcess
    : public kernel::TokenProcessCore<kernel::ShardedExecution> {
 public:
  /// `start_bin[i]` is the initial bin of token i; co-located tokens
  /// enqueue in token-id order (as in TokenProcess).
  ShardedTokenProcess(std::uint32_t bins,
                      std::vector<std::uint32_t> start_bin,
                      std::uint64_t seed, ShardedOptions options = {},
                      TokenOptions token_options = {})
      : TokenProcessCore(bins, std::move(start_bin),
                         kernel::CounterStream(seed), options,
                         token_options) {}
};

/// Single-threaded token kernel under the counter-based RNG; the
/// parity oracle for ShardedTokenProcess.  Arrivals are applied in
/// ascending releasing-bin order (the canonical order), so queue states
/// match the sharded sibling exactly.
class SequentialCounterTokenProcess
    : public kernel::TokenProcessCore<kernel::SequentialExecution> {
 public:
  SequentialCounterTokenProcess(std::uint32_t bins,
                                std::vector<std::uint32_t> start_bin,
                                std::uint64_t seed,
                                TokenOptions token_options = {})
      : TokenProcessCore(bins, std::move(start_bin),
                         kernel::CounterStream(seed), {}, token_options) {}
};

}  // namespace rbb::par
