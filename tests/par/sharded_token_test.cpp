// Invariance and parity tests for the sharded FIFO token process.
//
// Enqueue order is not commutative, so these tests are the proof that
// the commit phase's canonical drain order (ascending source stripe,
// ascending releasing bin within each buffer) really makes queue states
// -- not just load counts -- independent of thread count and shard
// size, and bit-identical to the sequential reference loop.
#include "par/sharded_token_process.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "engine/engine.hpp"

namespace rbb::par {
namespace {

constexpr std::uint32_t kN = 2048;
constexpr std::uint64_t kSeed = 0xc0ffeeULL;
constexpr std::uint64_t kRounds = 40;

std::vector<std::uint32_t> one_per_bin() { return identity_placement(kN); }

std::vector<std::uint32_t> all_in_front() {
  return std::vector<std::uint32_t>(kN, 0u);  // every token in bin 0
}

/// Full observable state after a run: token positions, progress, loads.
struct TokenState {
  std::vector<std::uint32_t> token_bin;
  std::vector<std::uint64_t> progress;
  LoadConfig loads;

  bool operator==(const TokenState&) const = default;
};

TokenState run_sharded(std::vector<std::uint32_t> placement,
                       ShardedOptions options) {
  ShardedTokenProcess proc(kN, std::move(placement), kSeed, options);
  proc.run(kRounds);
  TokenState state;
  for (std::uint32_t i = 0; i < proc.token_count(); ++i) {
    state.token_bin.push_back(proc.token_bin(i));
    state.progress.push_back(proc.progress(i));
  }
  state.loads = proc.loads();
  return state;
}

TEST(ShardedTokenProcess, StateIdenticalFor1_2_8Workers) {
  const TokenState one = run_sharded(one_per_bin(), {.threads = 1,
                                                     .shard_size = 128});
  const TokenState two = run_sharded(one_per_bin(), {.threads = 2,
                                                     .shard_size = 128});
  const TokenState eight = run_sharded(one_per_bin(), {.threads = 8,
                                                       .shard_size = 128});
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(ShardedTokenProcess, StateIndependentOfShardSize) {
  const TokenState s64 = run_sharded(one_per_bin(), {.threads = 2,
                                                     .shard_size = 64});
  const TokenState s256 = run_sharded(one_per_bin(), {.threads = 2,
                                                      .shard_size = 256});
  const TokenState s1024 = run_sharded(one_per_bin(), {.threads = 2,
                                                       .shard_size = 1024});
  EXPECT_EQ(s64, s256);
  EXPECT_EQ(s64, s1024);
}

TEST(ShardedTokenProcess, BitIdenticalToSequentialReference) {
  SequentialCounterTokenProcess reference(kN, one_per_bin(), kSeed);
  ShardedTokenProcess sharded(kN, one_per_bin(), kSeed,
                              {.threads = 2, .shard_size = 128});
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    reference.step();
    sharded.step();
    ASSERT_EQ(sharded.loads(), reference.loads()) << "round " << r;
    for (std::uint32_t i = 0; i < kN; ++i) {
      ASSERT_EQ(sharded.token_bin(i), reference.token_bin(i))
          << "round " << r << " token " << i;
      ASSERT_EQ(sharded.progress(i), reference.progress(i))
          << "round " << r << " token " << i;
    }
  }
}

TEST(ShardedTokenProcess, QueueOrderMattersAndIsCanonical) {
  // All tokens start in bin 0: only one departs per round, so FIFO
  // order (token id) fully determines who moves -- a strong probe that
  // the canonical enqueue order survives parallel commits.
  const TokenState a = run_sharded(all_in_front(), {.threads = 1,
                                                    .shard_size = 64});
  const TokenState b = run_sharded(all_in_front(), {.threads = 8,
                                                    .shard_size = 1024});
  EXPECT_EQ(a, b);
}

TEST(ShardedTokenProcess, ProgressCountsReleases) {
  // One token per bin: round 1 releases every token exactly once.
  ShardedTokenProcess proc(kN, one_per_bin(), kSeed,
                           {.threads = 2, .shard_size = 256});
  proc.step();
  EXPECT_EQ(proc.min_progress(), 1u);
  ASSERT_NO_THROW(proc.check_invariants());
}

TEST(ShardedTokenProcess, ReassignRebuildsQueuesInTokenOrder) {
  ShardedTokenProcess proc(kN, one_per_bin(), kSeed, {.threads = 1});
  proc.run(4);
  const std::vector<std::uint32_t> pile(kN, 7u);
  proc.reassign(pile);
  EXPECT_EQ(proc.max_load(), kN);
  EXPECT_EQ(proc.empty_bins(), kN - 1);
  for (std::uint32_t i = 0; i < kN; ++i) EXPECT_EQ(proc.token_bin(i), 7u);
  ASSERT_NO_THROW(proc.check_invariants());

  EXPECT_THROW(proc.reassign(std::vector<std::uint32_t>{0u}),
               std::invalid_argument);
  EXPECT_THROW(proc.reassign(std::vector<std::uint32_t>(kN, kN)),
               std::invalid_argument);
}

TEST(ShardedTokenProcess, RejectsBadConstruction) {
  EXPECT_THROW(ShardedTokenProcess(0, {0u}, 1), std::invalid_argument);
  EXPECT_THROW(ShardedTokenProcess(8, {}, 1), std::invalid_argument);
  EXPECT_THROW(ShardedTokenProcess(8, {8u}, 1), std::invalid_argument);
}

TEST(ShardedTokenProcess, VisitTrackingMatchesSequentialSibling) {
  // Cover-time instrumentation (optional: m*n bits) must be part of the
  // parity contract too: visited counts and cover rounds bit-identical
  // between the sharded commit-phase marking and the sequential loop.
  constexpr std::uint32_t kSmall = 96;
  std::vector<std::uint32_t> placement(kSmall);
  std::iota(placement.begin(), placement.end(), 0u);
  TokenOptions visits{.track_visits = true};
  SequentialCounterTokenProcess reference(kSmall, placement, kSeed, visits);
  ShardedTokenProcess sharded(kSmall, placement, kSeed,
                              {.threads = 2, .shard_size = 64}, visits);
  const std::uint64_t cap = 64ull * kSmall * kSmall;
  const auto ref_cover = reference.run_until_covered(cap);
  const auto sharded_cover = sharded.run_until_covered(cap);
  ASSERT_TRUE(ref_cover.has_value());
  ASSERT_TRUE(sharded_cover.has_value());
  EXPECT_EQ(*ref_cover, *sharded_cover);
  for (std::uint32_t i = 0; i < kSmall; ++i) {
    ASSERT_EQ(sharded.visited_count(i), reference.visited_count(i));
    ASSERT_EQ(sharded.cover_round(i), reference.cover_round(i));
  }
}

static_assert(SimProcess<ShardedTokenProcess>,
              "the sharded token process must satisfy the engine concept");

TEST(ShardedTokenProcess, EngineDrivesIt) {
  Engine engine(ShardedTokenProcess(kN, one_per_bin(), kSeed,
                                    {.threads = 2, .shard_size = 256}));
  MinEmptyFraction memp;
  const EngineResult r = engine.run_rounds(8, memp);
  EXPECT_EQ(r.rounds, 8u);
  EXPECT_GT(memp.min_fraction, 0.0);  // some bins always empty at m = n
  EXPECT_EQ(engine.process().round(), 8u);
}

}  // namespace
}  // namespace rbb::par
