#include "core/process.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/bounds.hpp"

namespace rbb {

RepeatedBallsProcess::RepeatedBallsProcess(LoadConfig initial, Rng rng)
    : RepeatedBallsProcess(std::move(initial), nullptr, rng) {}

RepeatedBallsProcess::RepeatedBallsProcess(LoadConfig initial,
                                           const Graph* graph, Rng rng)
    : loads_(std::move(initial)),
      graph_(graph),
      rng_(rng),
      balls_(total_balls(loads_)) {
  if (loads_.empty()) {
    throw std::invalid_argument("RepeatedBallsProcess: empty configuration");
  }
  if (graph_ != nullptr) {
    if (graph_->node_count() != loads_.size()) {
      throw std::invalid_argument(
          "RepeatedBallsProcess: graph size != configuration size");
    }
    if (graph_->min_degree() == 0) {
      throw std::invalid_argument(
          "RepeatedBallsProcess: graph has an isolated node");
    }
  }
  recompute_stats();
}

RoundStats RepeatedBallsProcess::step() {
  const std::uint32_t n = bin_count();
  std::uint32_t departures = 0;
  std::uint32_t max_after_departures = 0;
  std::uint32_t zeros = 0;

  if (graph_ == nullptr) {
    // Complete graph: destinations are u.a.r. over [n] independent of the
    // releasing bin, so only the departure *count* matters.
    for (std::uint32_t u = 0; u < n; ++u) {
      std::uint32_t& load = loads_[u];
      if (load > 0) {
        --load;
        ++departures;
      }
      if (load == 0) {
        ++zeros;
      } else if (load > max_after_departures) {
        max_after_departures = load;
      }
    }
    max_load_ = max_after_departures;
    empty_ = zeros;
    // Destinations are sampled as one block (same stream as per-ball
    // index(n) calls) so the generator state stays in registers and the
    // scatter loop below can prefetch: at large n the load vector
    // out-sizes the cache and the random writes otherwise stall on a
    // miss per arrival.
    scratch_.resize(departures);
    rng_.fill_indices(scratch_.data(), departures, n);
    constexpr std::uint32_t kPrefetchAhead = 16;
    for (std::uint32_t i = 0; i < departures; ++i) {
      if (i + kPrefetchAhead < departures) {
        __builtin_prefetch(&loads_[scratch_[i + kPrefetchAhead]], 1);
      }
      std::uint32_t& load = loads_[scratch_[i]];
      if (load == 0) --empty_;
      if (++load > max_load_) max_load_ = load;
    }
  } else {
    // General graph: each released ball moves to a uniform neighbor of its
    // releasing bin; destinations are buffered so the update stays
    // synchronous.
    scratch_.clear();
    for (std::uint32_t u = 0; u < n; ++u) {
      std::uint32_t& load = loads_[u];
      if (load > 0) {
        --load;
        ++departures;
        scratch_.push_back(graph_->sample_neighbor(u, rng_));
      }
      if (load == 0) {
        ++zeros;
      } else if (load > max_after_departures) {
        max_after_departures = load;
      }
    }
    max_load_ = max_after_departures;
    empty_ = zeros;
    for (const std::uint32_t v : scratch_) {
      std::uint32_t& load = loads_[v];
      if (load == 0) --empty_;
      if (++load > max_load_) max_load_ = load;
    }
  }

  ++round_;
  return RoundStats{max_load_, empty_, departures};
}

RoundStats RepeatedBallsProcess::run(std::uint64_t rounds) {
  RoundStats stats{max_load_, empty_, 0};
  for (std::uint64_t t = 0; t < rounds; ++t) stats = step();
  return stats;
}

bool RepeatedBallsProcess::is_legitimate(double beta) const {
  return static_cast<double>(max_load_) <= beta * log2n(bin_count());
}

void RepeatedBallsProcess::reassign(const LoadConfig& q) {
  validate_config(q, balls_);
  if (q.size() != loads_.size()) {
    throw std::invalid_argument("reassign: bin count mismatch");
  }
  loads_ = q;
  recompute_stats();
}

void RepeatedBallsProcess::recompute_stats() {
  max_load_ = rbb::max_load(loads_);
  empty_ = rbb::empty_bins(loads_);
}

void RepeatedBallsProcess::check_invariants() const {
  if (total_balls(loads_) != balls_) {
    throw std::logic_error("RepeatedBallsProcess: ball count drifted");
  }
  if (rbb::max_load(loads_) != max_load_) {
    throw std::logic_error("RepeatedBallsProcess: max load out of sync");
  }
  if (rbb::empty_bins(loads_) != empty_) {
    throw std::logic_error("RepeatedBallsProcess: empty count out of sync");
  }
}

}  // namespace rbb
