// Benchmark scale selection.
//
// The experiment benches honor the RBB_BENCH_SCALE environment variable so
// the default `for b in build/bench/*; do $b; done` loop finishes in
// minutes while still exercising every experiment:
//   smoke   -- minimal sizes, seconds per bench (CI sanity),
//   default -- the sizes of the experiment map (DESIGN.md Sect. 4),
//   paper   -- full sweeps matching the asymptotic regime of the theorems.
#pragma once

#include <cstdint>
#include <string>

namespace rbb {

enum class BenchScale { kSmoke, kDefault, kPaper };

/// Reads RBB_BENCH_SCALE (case-insensitive: "smoke", "default", "paper");
/// anything else / unset yields kDefault.
[[nodiscard]] BenchScale bench_scale();

[[nodiscard]] std::string to_string(BenchScale scale);

/// Picks one of three values by scale.
template <typename T>
[[nodiscard]] T by_scale(BenchScale scale, T smoke, T dflt, T paper) {
  switch (scale) {
    case BenchScale::kSmoke: return smoke;
    case BenchScale::kPaper: return paper;
    case BenchScale::kDefault: break;
  }
  return dflt;
}

/// Directory for CSV mirrors of the experiment tables (RBB_CSV_DIR), empty
/// if unset.
[[nodiscard]] std::string csv_dir();

}  // namespace rbb
