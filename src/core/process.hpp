// The repeated balls-into-bins process (paper, Sect. 2) -- load-only kernel.
//
// One round: simultaneously, every non-empty bin releases exactly one ball,
// and each released ball lands in a destination chosen uniformly at random
// (on the complete graph: any of the n bins; on a general graph: a uniform
// neighbor of the releasing bin).  The load vector evolves as
//
//   Q^{t+1}_v = max(Q^t_v - 1, 0) + #{ u in W^t : X^{t+1}_u = v }
//
// where W^t is the set of non-empty bins.  Because Theorem 1 is oblivious
// to the queueing strategy, this kernel tracks *loads only* and is the
// fastest representation (ablation D2); use TokenProcess when per-ball
// identities (progress, cover time, FIFO order) are needed.
//
// Since the policy refactor (DESIGN.md Sect. 5), RepeatedBallsProcess is a
// thin constructor adapter over the process core: the LoadOnly variant on
// the sequential xoshiro stream with in-place execution, draw-for-draw
// identical to the historical hand-written kernel.  The counter-stream and
// sharded instantiations of the same core live in src/par/.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/kernel/ball_kernel.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rbb {

/// Load-only repeated balls-into-bins simulator (sequential xoshiro
/// instantiation of the process core).
class RepeatedBallsProcess
    : public kernel::BallProcessCore<kernel::LoadOnly<kernel::SequentialStream>,
                                     kernel::SequentialExecution> {
 public:
  /// Starts from an explicit configuration on the complete graph K_n.
  RepeatedBallsProcess(LoadConfig initial, Rng rng)
      : RepeatedBallsProcess(std::move(initial), nullptr, rng) {}

  /// Starts from an explicit configuration on a general graph; `graph`
  /// must outlive the process and have min degree >= 1.  Balls released by
  /// bin u land on a uniform random neighbor of u.
  RepeatedBallsProcess(LoadConfig initial, const Graph* graph, Rng rng)
      : BallProcessCore(std::move(initial),
                        kernel::LoadOnly<kernel::SequentialStream>(
                            kernel::SequentialStream(rng), graph)) {}
};

}  // namespace rbb
