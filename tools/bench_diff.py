#!/usr/bin/env python3
"""Compare two BENCH_*.json perf baselines row by row.

Both inputs are rbb.result.v1 documents produced by

    rbb run sharded_scaling --format=json --out=BENCH_sharded.json

Rows are keyed by (n, variant, backend, threads) -- older baselines
without a variant column are read as variant="load" -- and the tool
prints the per-row ns/ball delta (absolute and percent), plus rows that
exist on only one side (scales differ, kernels added/removed).

By default the exit code is 0 (reporting only).  With --gate PCT the
tool becomes CI's perf gate: it exits 1 when any shared row's ns/ball
regressed by more than PCT percent against the old baseline.  Rows
present on only one side never fail the gate (adding a kernel or a
scale must not require a baseline refresh in the same commit).

Gated columns are ns_per_ball (the gate metric) and rounds_per_sec
(reported).  Which columns are *informational* -- context, never gated
-- is read from the table's own "informational" array, written by the
producer, not hardcoded here; a baseline that declares the gate metric
itself informational is refused.  Baselines from before the array
existed diff cleanly (empty set).

Parallelism honesty: every document carries a "parallelism" block
(hardware_concurrency, threads_requested, runnable_threads).  Per row
the effective parallelism is min(threads column, hardware_concurrency)
for sharded rows and 1 for sequential rows.  A shared row whose
effective parallelism differs between OLD and NEW is REPORTED AND
EXCLUDED from the gate -- comparing a 8-way row against a 2-way rerun
is not a perf signal, it is a hardware change.  Rows on baselines that
predate the block gate as before (parallelism unknown).

Several NEW files may be given: rows merge by per-row *minimum*
ns/ball (the standard de-noising estimator for wall timings -- noise
on shared runners only ever adds time).  CI measures the pinned smoke
configuration three times and gates on the merged result, so a single
descheduled run cannot fail the job.  Rows present in only some of the
NEW files are reported (k/N presence), not silently merged as if every
file had measured them.

Usage:
    tools/bench_diff.py [--gate PCT] OLD.json NEW.json [NEW2.json ...]
"""

from __future__ import annotations

import json
import signal
import sys

# Behave under `| head`: die silently on a closed pipe.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

GATE_METRIC = "ns_per_ball"


def load_doc(path: str) -> dict:
    """One rbb.result.v1 document: keyed rows + parallelism context."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rbb.result.v1":
        sys.exit(f"{path}: not an rbb.result.v1 document "
                 f"(schema={doc.get('schema')!r})")
    tables = [t for t in doc.get("tables", [])
              if t.get("id") == "sharded_scaling"]
    if not tables:
        sys.exit(f"{path}: no sharded_scaling table")
    table = tables[0]
    columns = table["columns"]
    idx = {name: i for i, name in enumerate(columns)}
    informational = set(table.get("informational", []))
    if GATE_METRIC in informational:
        sys.exit(f"{path}: declares the gate metric {GATE_METRIC!r} "
                 f"informational; refusing to gate on it")
    hw = (doc.get("parallelism") or {}).get("hardware_concurrency")
    rows: dict[tuple, dict] = {}
    for row in table["rows"]:
        variant = row[idx["variant"]] if "variant" in idx else "load"
        backend = row[idx["backend"]]
        threads = row[idx["threads"]]
        key = (row[idx["n"]], variant, backend, threads)
        if backend == "sharded":
            # Effective parallelism this row actually ran with: the
            # worker count, capped by the machine (None = the document
            # predates the parallelism block, so we cannot know).
            eff = min(int(threads), int(hw)) if hw else None
        else:
            eff = 1
        rows[key] = {
            "ns_per_ball": float(row[idx["ns_per_ball"]]),
            "rounds_per_sec": float(row[idx["rounds_per_sec"]]),
            "eff_parallelism": eff,
        }
    return {"rows": rows, "informational": informational, "hw": hw}


def fmt_key(key: tuple) -> str:
    n, variant, backend, threads = key
    return f"n={n:<11} {variant:<8} {backend:<11} x{threads}"


def main() -> int:
    args = sys.argv[1:]
    gate_pct: float | None = None
    if "--gate" in args:
        at = args.index("--gate")
        try:
            gate_pct = float(args[at + 1])
        except (IndexError, ValueError):
            print("--gate needs a numeric percent threshold\n",
                  file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
        args = args[:at] + args[at + 2:]
    if len(args) < 2 or any(a.startswith("-") for a in args):
        print(__doc__, file=sys.stderr)
        return 2
    old_path, new_paths = args[0], args[1:]
    old_doc = load_doc(old_path)
    old = old_doc["rows"]
    new: dict[tuple, dict] = {}
    presence: dict[tuple, int] = {}
    informational: set[str] = set(old_doc["informational"])
    for path in new_paths:
        doc = load_doc(path)
        informational |= doc["informational"]
        for key, row in doc["rows"].items():
            presence[key] = presence.get(key, 0) + 1
            if key in new:
                merged = new[key]
                merged["ns_per_ball"] = min(merged["ns_per_ball"],
                                            row["ns_per_ball"])
                merged["rounds_per_sec"] = max(merged["rounds_per_sec"],
                                               row["rounds_per_sec"])
                if merged["eff_parallelism"] != row["eff_parallelism"]:
                    # The NEW runs disagree about the hardware a row ran
                    # on; the merged row inherits the conflict and is
                    # excluded from the gate below.
                    merged["eff_parallelism"] = "mixed"
            else:
                new[key] = dict(row)
    new_path = new_paths[0] if len(new_paths) == 1 else \
        f"min of {len(new_paths)} runs"

    shared = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    partial = sorted(k for k, c in presence.items()
                     if c < len(new_paths))

    print(f"# bench diff: {old_path} -> {new_path}")
    print(f"# {len(shared)} shared rows, {len(only_old)} only-old, "
          f"{len(only_new)} only-new")
    if informational:
        print(f"# informational columns (declared by the baselines, "
              f"never gated): {', '.join(sorted(informational))}")
    regressions: list[tuple] = []
    mismatched: list[tuple] = []
    if shared:
        print(f"{'row':<42} {'old ns/ball':>12} {'new ns/ball':>12} "
              f"{'delta':>9} {'pct':>8}")
        for key in shared:
            o = old[key]["ns_per_ball"]
            n = new[key]["ns_per_ball"]
            o_eff = old[key]["eff_parallelism"]
            n_eff = new[key]["eff_parallelism"]
            # Refuse to gate across a hardware change: both sides know
            # their effective parallelism and the values differ.
            gateable = (o_eff is None or n_eff is None or o_eff == n_eff)
            delta = n - o
            pct = (delta / o * 100.0) if o else float("inf")
            if not gateable:
                marker = (f" <-- parallelism changed (old ran x{o_eff}, "
                          f"new x{n_eff}): not gated")
                mismatched.append((key, o_eff, n_eff))
            else:
                marker = " <-- slower" if pct > 10.0 else \
                         (" <-- faster" if pct < -10.0 else "")
            print(f"{fmt_key(key):<42} {o:>12.2f} {n:>12.2f} "
                  f"{delta:>+9.2f} {pct:>+7.1f}%{marker}")
            if gateable and gate_pct is not None and pct > gate_pct:
                regressions.append((key, pct))
    for key in only_old:
        print(f"only in {old_path}: {fmt_key(key)}")
    for key in only_new:
        print(f"only in {new_path}: {fmt_key(key)}")
    for key in partial:
        print(f"row present in only {presence[key]}/{len(new_paths)} "
              f"NEW file(s): {fmt_key(key)}")
    if mismatched:
        print(f"# {len(mismatched)} shared row(s) excluded from the gate: "
              f"recorded effective parallelism differs between baselines")
    if regressions:
        print(f"\nGATE FAILED: {len(regressions)} row(s) regressed more "
              f"than {gate_pct}% ns/ball:", file=sys.stderr)
        for key, pct in regressions:
            print(f"  {fmt_key(key)}  {pct:+.1f}%", file=sys.stderr)
        print("If the regression is intended (e.g. a deliberate trade-off), "
              "regenerate the committed baseline in this PR or apply the "
              "override label documented in .github/workflows/ci.yml.",
              file=sys.stderr)
        return 1
    if gate_pct is not None:
        print(f"# gate: no row regressed more than {gate_pct}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
