// rbb.ckpt.v1 — the versioned, checksummed on-disk snapshot format
// (DESIGN.md Sect. 7).
//
// A checkpoint is a header (identity: family, stream, backend, n, m,
// seed, round, options digest), a meta block (the canonical
// `name=value` experiment description `rbb resume` replays), and an
// opaque kernel payload produced by a core's snapshot().  Two CRC32s
// guard the file: one over the header+meta region, one over the
// payload, so corruption anywhere is detected and named before a
// single byte reaches restore().
//
// File layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "RBBCKPT1"
//   8       4     format version (u32, = 1)
//   12      4     family (u32, Family enum)
//   16      4     stream tag (u32, 0 = counter/Philox)
//   20      4     backend tag (u32, 0 = seq, 1 = sharded; informational
//                 only — counter trajectories are backend-invariant, so
//                 the digest deliberately excludes it)
//   24      8     bins n (u64)
//   32      8     entities m (u64; balls or tokens at construction)
//   40      8     seed (u64)
//   48      8     round (u64; the snapshot was taken after this round)
//   56      4     options digest (u32; CRC32 of the canonical option
//                 string — catches resume-under-different-parameters)
//   60      4     meta length (u32)
//   64      ...   meta bytes
//   ...     4     header CRC32 (over everything above, offset 0..here)
//   ...     8     payload length (u64)
//   ...     ...   payload bytes
//   ...     4     payload CRC32
//
// decode() throws Error with a distinct ErrorKind for every failure
// mode; verify_matches() adds the restore-time identity checks.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rbb::ckpt {

inline constexpr char kMagic[8] = {'R', 'B', 'B', 'C', 'K', 'P', 'T', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Kernel family recorded in the header.  Values are part of the
/// on-disk format: append only.
enum class Family : std::uint32_t {
  kLoad = 0,
  kToken = 1,
  kTetris = 2,
  kDChoices = 3,
  kThreshold = 4,
  kLeaky = 5,
  kMixed = 6,
};

inline constexpr std::uint32_t kFamilyCount = 7;

[[nodiscard]] const char* to_string(Family family) noexcept;

/// Stream tags.  Only the counter stream is checkpointable (its draws
/// are f(seed, round, slot), so state + round + seed is closed); the
/// sequential xoshiro stream has hidden RNG state and is rejected.
inline constexpr std::uint32_t kStreamCounter = 0;

/// Backend tags (informational).
inline constexpr std::uint32_t kBackendSeq = 0;
inline constexpr std::uint32_t kBackendSharded = 1;

enum class ErrorKind {
  kIo,              // file unreadable / unwritable
  kTruncated,       // shorter than its own length fields claim
  kBadMagic,        // not an rbb checkpoint
  kBadVersion,      // format version we don't speak
  kBadFamily,       // family tag out of range
  kBadStream,       // stream tag is not a checkpointable stream
  kHeaderCorrupt,   // header/meta CRC mismatch
  kPayloadCorrupt,  // payload CRC mismatch
  kFamilyMismatch,  // restore target is a different kernel family
  kDigestMismatch,  // restore target was built with different options
  kShapeMismatch,   // n/m/seed disagree with the restore target
};

[[nodiscard]] const char* to_string(ErrorKind kind) noexcept;

/// All checkpoint failures surface as this exception; what() always
/// starts with "checkpoint <kind-name>:" so CLI errors are
/// self-describing.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& detail);
  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

struct Header {
  std::uint32_t version = kFormatVersion;
  Family family = Family::kLoad;
  std::uint32_t stream = kStreamCounter;
  std::uint32_t backend = kBackendSeq;
  std::uint64_t bins = 0;
  std::uint64_t entities = 0;
  std::uint64_t seed = 0;
  std::uint64_t round = 0;
  std::uint32_t options_digest = 0;
};

struct Checkpoint {
  Header header;
  /// Canonical experiment description, one `name=value` per line with a
  /// leading `experiment=<name>` line; `rbb resume` replays it.
  std::string meta;
  /// Opaque kernel snapshot bytes (serial::ByteWriter output).
  std::string payload;
};

/// Digest of a canonical option string (the family/shape/seed-defining
/// parameters, excluding execution options — trajectories are invariant
/// across backend/threads/shard size).
[[nodiscard]] std::uint32_t digest(std::string_view canonical_options) noexcept;

/// Serializes to the rbb.ckpt.v1 byte layout.  Honors the header
/// fields verbatim (including a wrong version/family) so tests can
/// craft rejection cases with valid checksums.
[[nodiscard]] std::string encode(const Checkpoint& ckpt);

/// Parses and fully verifies a checkpoint file image; throws Error on
/// any corruption, truncation, or unknown tag.
[[nodiscard]] Checkpoint decode(std::string_view bytes);

/// Restore-time identity check: the checkpoint must describe the same
/// kernel family, shape, seed, and option digest as the process about
/// to be overwritten.  Throws Error(kFamilyMismatch | kShapeMismatch |
/// kDigestMismatch).
void verify_matches(const Header& header, Family family, std::uint64_t bins,
                    std::uint64_t entities, std::uint64_t seed,
                    std::uint32_t options_digest);

}  // namespace rbb::ckpt
