// Adversarial faults (paper, Sect. 4.1): an adversary periodically
// reassigns every ball to bins of its choosing; the process re-converges
// within O(n) rounds each time.
//
// Renders an ASCII trace of the maximum load across fault/recovery cycles
// and reports per-fault recovery times.
//
//   ./examples/adversarial_faults [--n 512] [--faults 4] [--period 0]
//       [--strategy all-to-one]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/faults.hpp"
#include "core/process.hpp"
#include "support/bounds.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace {

/// One sparkline row: max load sampled at `columns` points over a window.
std::string sparkline(const std::vector<std::uint32_t>& samples,
                      std::uint32_t ceiling) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string line;
  for (const std::uint32_t s : samples) {
    const std::size_t level =
        s == 0 ? 0
               : std::min<std::size_t>(
                     7, 1 + (static_cast<std::size_t>(s) * 7) / ceiling);
    line += kLevels[level];
  }
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli("adversarial_faults: Sect. 4.1 fault injection and recovery");
  cli.add_u64("n", 512, "balls and bins");
  cli.add_u64("seed", 3, "RNG seed");
  cli.add_u64("faults", 4, "number of adversarial faults to inject");
  cli.add_u64("period", 0, "rounds between faults (0 = 8n, i.e. gamma = 8)");
  cli.add_string("strategy", "all-to-one",
                 "all-to-one | random | half-bins | reverse-sort");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;

  const auto n = static_cast<std::uint32_t>(cli.u64("n"));
  const std::uint64_t period =
      cli.u64("period") != 0 ? cli.u64("period") : 8ull * n;
  const FaultStrategy strategy =
      fault_strategy_from_string(cli.str("strategy"));
  const double legit_threshold = 4.0 * log2n(n);

  Rng rng(cli.u64("seed"));
  Rng fault_rng(cli.u64("seed"), 0xfa17);
  RepeatedBallsProcess process(
      make_config(InitialConfig::kOnePerBin, n, n, rng), rng);

  std::cout << "n = " << n << ", fault strategy = " << to_string(strategy)
            << ", period = " << period << " rounds (gamma = "
            << static_cast<double>(period) / n << ")\n"
            << "legitimacy threshold: max load <= " << legit_threshold
            << "\n\n";

  OnlineMoments recovery;
  constexpr std::uint32_t kColumns = 72;
  for (std::uint64_t fault = 0; fault < cli.u64("faults"); ++fault) {
    // Inject.
    process.reassign(
        apply_fault(strategy, n, n, process.loads(), fault_rng));
    const std::uint32_t spike = process.max_load();

    // Run one period, sampling the max load for the sparkline and
    // recording the recovery round.
    std::vector<std::uint32_t> samples;
    samples.reserve(kColumns);
    const std::uint64_t stride = std::max<std::uint64_t>(1, period / kColumns);
    std::uint64_t recovered_at = 0;
    for (std::uint64_t t = 0; t < period; ++t) {
      const RoundStats s = process.step();
      if (recovered_at == 0 &&
          static_cast<double>(s.max_load) <= legit_threshold) {
        recovered_at = t + 1;
      }
      if (t % stride == 0 && samples.size() < kColumns) {
        samples.push_back(s.max_load);
      }
    }
    std::cout << "fault " << fault + 1 << ": spike to " << spike
              << ", legitimate again after " << recovered_at << " rounds ("
              << static_cast<double>(recovered_at) / n << " n)\n"
              << "  [" << sparkline(samples, spike) << "]\n";
    if (recovered_at > 0) {
      recovery.add(static_cast<double>(recovered_at));
    }
  }

  std::cout << "\nmean recovery: " << recovery.mean() << " rounds = "
            << recovery.mean() / n << " n   (Theorem 1 predicts O(n); "
            << "Sect. 4.1 needs recovery well under the period "
            << period << ")\n";
  return EXIT_SUCCESS;
}
