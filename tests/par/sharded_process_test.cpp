// Invariance and parity tests for the sharded load-only kernel.
//
// The contracts pinned here are the reason src/par/ is usable for
// science at all:
//   * thread-count invariance  -- 1/2/8 workers, same trajectory,
//   * shard-size invariance    -- shards of 64/256/1024 bins, same
//     trajectory,
//   * sequential parity        -- bit-identical to the plain
//     single-threaded reference loop making the same counter draws,
//   * SimProcess conformance   -- the engine drives it unchanged.
#include "par/sharded_process.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "engine/engine.hpp"

namespace rbb::par {
namespace {

constexpr std::uint32_t kN = 4096;
constexpr std::uint64_t kSeed = 0xfeedULL;
constexpr std::uint64_t kRounds = 48;

LoadConfig start_config(InitialConfig kind = InitialConfig::kOnePerBin) {
  Rng rng(99);
  return make_config(kind, kN, kN, rng);
}

/// Runs the sharded kernel and returns the trajectory of end-of-round
/// (max, empty, departures) plus the final load vector.
struct Trajectory {
  std::vector<RoundStats> stats;
  LoadConfig final_loads;

  bool operator==(const Trajectory& other) const {
    if (final_loads != other.final_loads) return false;
    if (stats.size() != other.stats.size()) return false;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (stats[i].max_load != other.stats[i].max_load ||
          stats[i].empty_bins != other.stats[i].empty_bins ||
          stats[i].departures != other.stats[i].departures) {
        return false;
      }
    }
    return true;
  }
};

Trajectory run_sharded(ShardedOptions options,
                       InitialConfig kind = InitialConfig::kOnePerBin) {
  ShardedRepeatedBallsProcess proc(start_config(kind), kSeed, options);
  Trajectory t;
  for (std::uint64_t r = 0; r < kRounds; ++r) t.stats.push_back(proc.step());
  t.final_loads = proc.loads();
  return t;
}

// --- thread-count invariance ------------------------------------------------

TEST(ShardedProcess, GoldenTrajectoryIdenticalFor1_2_8Workers) {
  const Trajectory one = run_sharded({.threads = 1, .shard_size = 256});
  const Trajectory two = run_sharded({.threads = 2, .shard_size = 256});
  const Trajectory eight = run_sharded({.threads = 8, .shard_size = 256});
  EXPECT_TRUE(one == two);
  EXPECT_TRUE(one == eight);
}

TEST(ShardedProcess, GlobalPoolMatchesPrivatePools) {
  const Trajectory global = run_sharded({.threads = 0, .shard_size = 256});
  const Trajectory inlined = run_sharded({.threads = 1, .shard_size = 256});
  EXPECT_TRUE(global == inlined);
}

// --- shard-size invariance --------------------------------------------------

TEST(ShardedProcess, TrajectoryIndependentOfShardSize) {
  const Trajectory s64 = run_sharded({.threads = 2, .shard_size = 64});
  const Trajectory s256 = run_sharded({.threads = 2, .shard_size = 256});
  const Trajectory s1024 = run_sharded({.threads = 2, .shard_size = 1024});
  const Trajectory whole = run_sharded({.threads = 2, .shard_size = kN});
  EXPECT_TRUE(s64 == s256);
  EXPECT_TRUE(s64 == s1024);
  EXPECT_TRUE(s64 == whole);
}

TEST(ShardedProcess, InvarianceHoldsFromAdversarialStart) {
  const Trajectory a =
      run_sharded({.threads = 1, .shard_size = 64}, InitialConfig::kAllInOne);
  const Trajectory b =
      run_sharded({.threads = 8, .shard_size = 1024}, InitialConfig::kAllInOne);
  EXPECT_TRUE(a == b);
}

// --- parity with the sequential counter-RNG reference -----------------------

TEST(ShardedProcess, BitIdenticalToSequentialReference) {
  SequentialCounterProcess reference(start_config(), kSeed);
  ShardedRepeatedBallsProcess sharded(start_config(), kSeed,
                                      {.threads = 2, .shard_size = 256});
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const RoundStats expect = reference.step();
    const RoundStats got = sharded.step();
    ASSERT_EQ(got.max_load, expect.max_load) << "round " << r;
    ASSERT_EQ(got.empty_bins, expect.empty_bins) << "round " << r;
    ASSERT_EQ(got.departures, expect.departures) << "round " << r;
    ASSERT_EQ(sharded.loads(), reference.loads()) << "round " << r;
  }
}

// --- process surface --------------------------------------------------------

TEST(ShardedProcess, ConservesBallsAndPassesInvariantChecks) {
  ShardedRepeatedBallsProcess proc(start_config(InitialConfig::kGeometric),
                                   kSeed, {.threads = 2, .shard_size = 128});
  EXPECT_EQ(proc.ball_count(), static_cast<std::uint64_t>(kN));
  for (int r = 0; r < 16; ++r) {
    proc.step();
    ASSERT_NO_THROW(proc.check_invariants());
    EXPECT_EQ(total_balls(proc.loads()), static_cast<std::uint64_t>(kN));
  }
  EXPECT_EQ(proc.round(), 16u);
}

TEST(ShardedProcess, ReassignReplacesConfiguration) {
  ShardedRepeatedBallsProcess proc(start_config(), kSeed, {.threads = 1});
  proc.run(4);
  Rng rng(5);
  const LoadConfig worst = make_config(InitialConfig::kAllInOne, kN, kN, rng);
  proc.reassign(worst);
  EXPECT_EQ(proc.max_load(), kN);
  EXPECT_EQ(proc.empty_bins(), kN - 1);
  ASSERT_NO_THROW(proc.check_invariants());

  LoadConfig wrong_total(kN, 1);
  wrong_total[0] = 3;  // kN + 2 balls
  EXPECT_THROW(proc.reassign(wrong_total), std::invalid_argument);
}

TEST(ShardedProcess, RejectsEmptyConfiguration) {
  EXPECT_THROW(ShardedRepeatedBallsProcess(LoadConfig{}, 1),
               std::invalid_argument);
}

TEST(ShardedProcess, SelfStabilizesFromAllInOne) {
  // Theorem 1b at small n: from the worst start the kernel reaches a
  // legitimate configuration well within 64 n rounds.
  ShardedRepeatedBallsProcess proc(start_config(InitialConfig::kAllInOne),
                                   kSeed, {.threads = 2, .shard_size = 256});
  bool legitimate = false;
  for (std::uint64_t r = 0; r < 64ull * kN && !legitimate; ++r) {
    proc.step();
    legitimate = proc.is_legitimate();
  }
  EXPECT_TRUE(legitimate);
}

// --- engine conformance -----------------------------------------------------

static_assert(SimProcess<ShardedRepeatedBallsProcess>,
              "the sharded kernel must satisfy the engine's concept");

TEST(ShardedProcess, EngineDrivesItLikeAnyOtherProcess) {
  Engine engine(ShardedRepeatedBallsProcess(start_config(), kSeed,
                                            {.threads = 2, .shard_size = 256}));
  WindowMaxLoad wmax;
  const EngineResult r = engine.run_rounds(kRounds, wmax);
  EXPECT_EQ(r.rounds, kRounds);

  // Same trajectory as driving step() by hand.
  const Trajectory direct = run_sharded({.threads = 2, .shard_size = 256});
  EXPECT_EQ(engine.process().loads(), direct.final_loads);
  std::uint32_t expect_wmax = 0;
  for (const RoundStats& s : direct.stats) {
    expect_wmax = std::max(expect_wmax, s.max_load);
  }
  EXPECT_EQ(wmax.window_max, expect_wmax);
}

}  // namespace
}  // namespace rbb::par
