// Sharded intra-round kernel for the repeated balls-into-bins process
// (DESIGN.md Sect. 5): one round of ONE instance across all cores.
//
// The sequential kernel (core/process.hpp) tops out around n = 10^6
// because one thread performs the whole O(n) round and the random
// arrival scatter misses cache on every write once the load vector
// outgrows it.  This backend executes a round in two phases over the
// cache-aligned shards of a ShardPlan:
//
//   phase 1 (throw):  each stripe task walks its own bins, performs the
//     departures, draws every leaving ball's destination with the
//     counter-based RNG (support/counter_rng.hpp, slot = releasing bin),
//     and appends the destination to a per-(stripe, target-shard)
//     buffer.  All writes go to stripe-owned memory -- no atomics.
//   phase 2 (commit): each stripe task drains every buffer addressed to
//     its own shards, applies the arrivals (the shard's loads fit in
//     cache, so the scatter is cache-hot), and rescans the shard for the
//     max-load / empty-bin statistics.  Again stripe-owned writes only.
//
// Determinism: destinations depend only on (seed, round, bin), load
// updates are commutative sums, and the statistics reduce over stripes
// in fixed order -- so the trajectory is bit-identical for every thread
// count and every shard size (pinned by tests/par/).  The same
// configuration and seed give the same loads whether the round ran on 1
// or 64 workers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/process.hpp"  // RoundStats
#include "par/shard.hpp"
#include "par/stripe_exec.hpp"
#include "support/counter_rng.hpp"

namespace rbb::par {

/// Execution knobs shared by the sharded processes.
struct ShardedOptions {
  /// 0 = run on the process-wide ThreadPool::global() (recommended: the
  /// nesting rule in thread_pool.hpp then degrades an inner sharded
  /// round to sequential under a trial-level fan-out instead of
  /// oversubscribing).  1 = strictly in-thread, no pool.  k > 1 =
  /// exactly k runnable threads via a private pool (k-1 workers + the
  /// submitter; see StripeExecutor) -- benchmarks only, and only
  /// meaningful at the top of the nesting hierarchy.
  unsigned threads = 0;
  /// Bins per shard; 0 = kDefaultShardSize.  Rounded up to a multiple
  /// of 16 bins (one cache line of loads).
  std::uint32_t shard_size = 0;
};

/// Load-only repeated balls-into-bins on the complete graph K_n,
/// sharded across cores.  Mirrors RepeatedBallsProcess's surface, so the
/// engine's generic customization points pick it up unchanged.
class ShardedRepeatedBallsProcess {
 public:
  /// Starts from an explicit configuration.  `seed` keys the
  /// counter-based RNG; equal (configuration, seed) pairs give equal
  /// trajectories for any `options`.
  explicit ShardedRepeatedBallsProcess(LoadConfig initial, std::uint64_t seed,
                                       ShardedOptions options = {});

  /// Executes one synchronous round; returns end-of-round statistics.
  RoundStats step();

  /// Executes `rounds` rounds; returns the stats of the last one.
  RoundStats run(std::uint64_t rounds);

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t ball_count() const noexcept { return balls_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }
  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_load_; }
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }
  /// True iff max_load() <= beta * log2(n).
  [[nodiscard]] bool is_legitimate(double beta = 4.0) const;

  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }

  /// Adversarial reassignment (same contract as the sequential kernel):
  /// replaces the configuration; ball count must be preserved.
  void reassign(const LoadConfig& q);

  /// Testing hook: recomputes ball total / max / empty from scratch and
  /// throws std::logic_error on drift.
  void check_invariants() const;

 private:
  void recompute_stats();

  /// Per-stripe accumulator, cache-line padded so stripe tasks never
  /// share a line.
  struct alignas(64) StripeAcc {
    std::uint32_t departures = 0;
    std::uint32_t max = 0;
    std::uint32_t zeros = 0;
  };

  LoadConfig loads_;
  ShardPlan plan_;
  CounterRng rng_;
  StripeExecutor exec_;
  std::uint64_t balls_;
  std::uint64_t round_ = 0;
  std::uint32_t max_load_ = 0;
  std::uint32_t empty_ = 0;

  /// buffers_[stripe * shard_count + target_shard]: destinations thrown
  /// by `stripe` into `target_shard` this round.  Cleared (capacity
  /// kept) by the phase-2 task that drains them.
  std::vector<std::vector<std::uint32_t>> buffers_;
  std::vector<StripeAcc> acc_;
};

}  // namespace rbb::par
