#include "tetris/leaky.hpp"

#include <stdexcept>

namespace rbb {

LeakyBinsProcess::LeakyBinsProcess(LoadConfig initial, double lambda, Rng rng)
    : loads_(std::move(initial)),
      lambda_(lambda),
      rng_(rng),
      arrival_law_(loads_.size(), lambda),
      balls_(rbb::total_balls(loads_)) {
  if (loads_.empty()) {
    throw std::invalid_argument("LeakyBinsProcess: empty configuration");
  }
  if (!(lambda >= 0.0 && lambda <= 1.0)) {
    throw std::invalid_argument("LeakyBinsProcess: lambda outside [0, 1]");
  }
  max_load_ = rbb::max_load(loads_);
  empty_ = rbb::empty_bins(loads_);
}

LeakyRoundStats LeakyBinsProcess::step() {
  const auto n = static_cast<std::uint32_t>(loads_.size());
  ++round_;
  // Departures: every non-empty bin loses one ball (out of the system).
  std::uint32_t zeros = 0;
  std::uint32_t max_after = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    std::uint32_t& load = loads_[u];
    if (load > 0) {
      --load;
      --balls_;
    }
    if (load == 0) {
      ++zeros;
    } else if (load > max_after) {
      max_after = load;
    }
  }
  max_load_ = max_after;
  empty_ = zeros;
  // Arrivals: Binomial(n, lambda) fresh balls, placed u.a.r.
  const std::uint64_t arrivals = arrival_law_(rng_);
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    std::uint32_t& load = loads_[rng_.index(n)];
    if (load == 0) --empty_;
    if (++load > max_load_) max_load_ = load;
  }
  balls_ += arrivals;
  return LeakyRoundStats{max_load_, empty_, balls_, arrivals};
}

LeakyRoundStats LeakyBinsProcess::run(std::uint64_t rounds) {
  LeakyRoundStats stats{max_load_, empty_, balls_, 0};
  for (std::uint64_t t = 0; t < rounds; ++t) stats = step();
  return stats;
}

void LeakyBinsProcess::check_invariants() const {
  if (rbb::total_balls(loads_) != balls_) {
    throw std::logic_error("LeakyBinsProcess: ball count drifted");
  }
  if (rbb::max_load(loads_) != max_load_) {
    throw std::logic_error("LeakyBinsProcess: max load out of sync");
  }
  if (rbb::empty_bins(loads_) != empty_) {
    throw std::logic_error("LeakyBinsProcess: empty count out of sync");
  }
}

}  // namespace rbb
