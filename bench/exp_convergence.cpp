// E2 -- Theorem 1 (self-stabilization): from ANY configuration the system
// reaches a legitimate configuration within O(n) rounds.
//
// Table: for each n and worst-case start, the rounds until M(t) <= beta
// log2 n, normalized by n.  The paper predicts a linear law; from
// all-in-one the heavy bin drains one ball per round, so the normalized
// value approaches 1 from below.
#include <iostream>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/fit.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E2: convergence to a legitimate configuration from arbitrary starts "
      "(Theorem 1, second part)");
  cli.add_double("beta", 4.0, "legitimacy constant");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 3, 8, 20);

  Table table({"n", "start", "trials", "rounds (mean)", "rounds (max)",
               "rounds / n (mean)", "timeouts"});
  std::vector<double> xs;
  std::vector<double> worst_rounds;
  for (const std::uint32_t n : bench::n_sweep(scale)) {
    for (const InitialConfig start :
         {InitialConfig::kAllInOne, InitialConfig::kGeometric,
          InitialConfig::kHalfLoaded}) {
      ConvergenceParams p;
      p.n = n;
      p.trials = trials;
      p.seed = cli.u64("seed");
      p.start = start;
      p.beta = cli.f64("beta");
      const ConvergenceResult r = run_convergence(p);
      table.row()
          .cell(std::uint64_t{n})
          .cell(std::string(to_string(start)))
          .cell(std::uint64_t{trials})
          .cell(r.rounds_to_legitimate.mean(), 1)
          .cell(r.rounds_to_legitimate.max(), 0)
          .cell(r.normalized.mean(), 3)
          .cell(std::uint64_t{r.timeouts});
      if (start == InitialConfig::kAllInOne) {
        xs.push_back(static_cast<double>(n));
        worst_rounds.push_back(r.rounds_to_legitimate.mean());
      }
    }
  }
  const PowerLawFit fit = fit_power_law(xs, worst_rounds);
  std::cout << "fitted growth law (all-in-one start): convergence ~ n^"
            << format_double(fit.exponent, 3)
            << " (R^2 = " << format_double(fit.r_squared, 4)
            << ")   [Theorem 1 predicts exponent 1; small sweeps read "
               "high because the stopping threshold beta*log2(n) is an "
               "additive offset]\n";
  bench::emit(table, "E2_convergence",
              "convergence time is linear in n (Theorem 1)", scale);
  return 0;
}
