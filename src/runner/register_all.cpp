// Explicit registration roster for every experiment in
// src/runner/experiments/ (one register_* function per file).
//
// Registration is an explicit call chain rather than static-initializer
// magic: a static library happily dead-strips translation units nobody
// references, and a silently missing experiment is exactly the failure
// mode the registry exists to prevent (the completeness test in
// tests/runner/ counts the roster against DESIGN.md's map).
#include "runner/registry.hpp"

namespace rbb::runner {

void register_stability(Registry&);            // E1
void register_convergence(Registry&);          // E2
void register_empty_bins(Registry&);           // E3
void register_coupling(Registry&);             // E4
void register_tetris_drain(Registry&);         // E5
void register_zchain(Registry&);               // E6
void register_exact_chain(Registry&);          // E6 (exact companion)
void register_tetris_stability(Registry&);     // E7
void register_cover_time(Registry&);           // E8
void register_adversarial(Registry&);          // E9
void register_neg_assoc(Registry&);            // E10
void register_sqrt_t(Registry&);               // E11
void register_oneshot_vs_repeated(Registry&);  // E12
void register_beta_sensitivity(Registry&);     // E13
void register_graphs(Registry&);               // E14
void register_dchoices(Registry&);             // E15
void register_leaky_bins(Registry&);           // E16
void register_jackson(Registry&);              // E17
void register_progress(Registry&);             // E18
void register_delays(Registry&);               // E19
void register_load_profile(Registry&);         // E20
void register_mixing(Registry&);               // E21
void register_max_load_regimes(Registry&);     // E22
void register_mixed_regime(Registry&);         // E23
void register_overload(Registry&);             // extra (Sect. 5 open qn)
void register_israeli_jalfon(Registry&);       // extra (ancestor protocol)
void register_sharded_scaling(Registry&);      // extra (src/par/ baseline)
void register_threshold_allocation(Registry&); // extra (1-2-3 Toolkit)
void register_trajectory(Registry&);           // extra (checkpoint/resume)

void register_all_experiments(Registry& registry) {
  register_stability(registry);
  register_convergence(registry);
  register_empty_bins(registry);
  register_coupling(registry);
  register_tetris_drain(registry);
  register_zchain(registry);
  register_exact_chain(registry);
  register_tetris_stability(registry);
  register_cover_time(registry);
  register_adversarial(registry);
  register_neg_assoc(registry);
  register_sqrt_t(registry);
  register_oneshot_vs_repeated(registry);
  register_beta_sensitivity(registry);
  register_graphs(registry);
  register_dchoices(registry);
  register_leaky_bins(registry);
  register_jackson(registry);
  register_progress(registry);
  register_delays(registry);
  register_load_profile(registry);
  register_mixing(registry);
  register_max_load_regimes(registry);
  register_mixed_regime(registry);
  register_overload(registry);
  register_israeli_jalfon(registry);
  register_sharded_scaling(registry);
  register_threshold_allocation(registry);
  register_trajectory(registry);
}

}  // namespace rbb::runner
