#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/trace.hpp"

namespace rbb::obs {

namespace {

/// Nanoseconds as a microsecond literal with three decimals
/// ("12345" -> "12.345"): exact, locale-independent, golden-stable.
void write_us(std::ostream& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out << buf;
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
#if RBB_TELEMETRY
  std::vector<detail::TraceEvent> events = detail::collect_trace_events();
  std::stable_sort(events.begin(), events.end(),
                   [](const detail::TraceEvent& a, const detail::TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return std::strcmp(a.name, b.name) < 0;
                   });
#else
  const std::vector<int> events;  // RBB_TELEMETRY=0: a valid empty trace
#endif
  out << "{\n";
  out << "  \"displayTimeUnit\": \"ms\",\n";
  out << "  \"traceEvents\": [";
#if RBB_TELEMETRY
  bool first = true;
  for (const detail::TraceEvent& e : events) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << e.name << "\", \"cat\": \"rbb\", "
        << "\"ph\": \"X\", \"ts\": ";
    write_us(out, e.ts_ns);
    out << ", \"dur\": ";
    write_us(out, e.dur_ns);
    out << ", \"pid\": 1, \"tid\": " << e.tid << "}";
  }
#endif
  out << (events.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

std::string chrome_trace_json() {
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace rbb::obs
