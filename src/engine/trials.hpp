// Parallel Monte-Carlo trial runner (DESIGN.md Sect. 2).
//
// Every experiment driver is "run T independent trials, reduce": this
// header owns that pattern.  Trial `i` gets the substream Rng(seed, i),
// so results are reproducible from one 64-bit seed and bit-identical for
// any worker-thread count (each trial writes only its own result slot;
// the reduction happens sequentially afterwards -- design choice D5,
// pinned by the determinism test in tests/engine/).
//
// `fn` is a template parameter all the way down to the thread pool's
// batch dispatch, so the per-trial hot loop is inlinable -- no
// std::function indirection (this absorbed and replaced the old
// analysis/experiments for_each_trial).
#pragma once

#include <cstdint>
#include <utility>

#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace rbb {

/// Runs fn(trial, rng) for trial = 0..trials-1, with rng = Rng(seed,
/// trial), on `pool` (nullptr = the process-wide pool).  Blocks until all
/// trials finish; rethrows the first trial exception.
template <typename Fn>
void for_each_trial(std::uint32_t trials, std::uint64_t seed, Fn&& fn,
                    ThreadPool* pool = nullptr) {
  ThreadPool& chosen = pool != nullptr ? *pool : ThreadPool::global();
  chosen.for_each(trials, [seed, &fn](std::uint64_t trial) {
    const obs::ScopedPhase trial_span(obs::Phase::kTrial);
    Rng rng(seed, trial);
    fn(static_cast<std::uint32_t>(trial), rng);
  });
}

}  // namespace rbb
