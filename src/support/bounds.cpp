#include "support/bounds.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rbb {

double log_factorial(std::uint64_t k) {
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  if (k > n) {
    throw std::invalid_argument("log_binomial_coefficient: k > n");
  }
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  if (k > n) throw std::invalid_argument("log_binomial_pmf: k > n");
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("log_binomial_pmf: p outside [0, 1]");
  }
  if (p == 0.0) return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  if (p == 1.0) return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
  const double kd = static_cast<double>(k);
  const double nd = static_cast<double>(n);
  return log_binomial_coefficient(n, k) + kd * std::log(p) +
         (nd - kd) * std::log1p(-p);
}

double binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  return std::exp(log_binomial_pmf(n, p, k));
}

double binomial_upper_tail(std::uint64_t n, double p, std::uint64_t k) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  double sum = 0.0;
  for (std::uint64_t j = k; j <= n; ++j) {
    const double term = binomial_pmf(n, p, j);
    sum += term;
    // pmf is unimodal; once past the mode and below tiny, stop.
    if (static_cast<double>(j) > p * static_cast<double>(n) && term < 1e-18) {
      break;
    }
  }
  return sum > 1.0 ? 1.0 : sum;
}

double chernoff_lower_bound(double mu_low, double delta) {
  if (!(delta > 0.0 && delta < 1.0)) {
    throw std::invalid_argument("chernoff_lower_bound: delta outside (0, 1)");
  }
  return std::exp(-delta * delta * mu_low / 2.0);
}

double chernoff_upper_bound(double mu_high, double delta) {
  if (!(delta > 0.0 && delta < 1.0)) {
    throw std::invalid_argument("chernoff_upper_bound: delta outside (0, 1)");
  }
  return std::exp(-delta * delta * mu_high / 3.0);
}

double zchain_tail_bound(double t) { return std::exp(-t / 144.0); }

double sqrt_t_bound(double t, double c) { return c * std::sqrt(t); }

double oneshot_max_load_asymptotic(std::uint64_t n) {
  if (n < 3) {
    throw std::invalid_argument("oneshot_max_load_asymptotic: n < 3");
  }
  const double ln = std::log(static_cast<double>(n));
  return ln / std::log(ln);
}

double coupon_collector_mean(std::uint64_t n) {
  double harmonic = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    harmonic += 1.0 / static_cast<double>(k);
  }
  return static_cast<double>(n) * harmonic;
}

double parallel_cover_scale(std::uint64_t n) {
  const double l = log2n(n);
  return static_cast<double>(n) * l * l;
}

double log2n(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("log2n: n == 0");
  return std::log2(static_cast<double>(n));
}

}  // namespace rbb
