#include "markov/zchain_exact.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/bounds.hpp"

namespace rbb {

ZChainExactResult exact_zchain_survival(std::uint32_t n, std::uint64_t start,
                                        std::uint64_t t_max,
                                        std::size_t cap) {
  if (n < 2) throw std::invalid_argument("zchain: n must be >= 2");
  if (start >= cap) throw std::invalid_argument("zchain: start >= cap");
  const std::uint64_t b = 3ULL * n / 4;  // arrival trials, floor(3n/4)
  const double p = 1.0 / static_cast<double>(n);

  // Arrival pmf, truncated where the remaining upper tail is < 1e-16.
  // The mean is b/n ~ 3/4, so the effective support is tiny.
  std::vector<double> pmf;
  double cumulative = 0.0;
  for (std::uint64_t k = 0; k <= b; ++k) {
    pmf.push_back(binomial_pmf(b, p, k));
    cumulative += pmf.back();
    if (1.0 - cumulative < 1e-16 && k >= 2) break;
  }

  ZChainExactResult out;
  out.survival.reserve(t_max + 1);
  std::vector<double> dist(cap + 1, 0.0);
  dist[start] = 1.0;
  std::vector<double> next(cap + 1, 0.0);

  double survival = start > 0 ? 1.0 : 0.0;
  out.survival.push_back(survival);
  out.expected_absorption = survival;

  for (std::uint64_t t = 1; t <= t_max; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    next[0] = dist[0];  // absorbing
    for (std::size_t z = 1; z <= cap; ++z) {
      const double w = dist[z];
      if (w == 0.0) continue;
      // z' = z - 1 + X, X ~ pmf.
      for (std::size_t x = 0; x < pmf.size(); ++x) {
        const std::size_t target = z - 1 + x;
        if (target >= cap) {
          const double lost = w * pmf[x];
          next[cap] += lost;
          out.saturated_mass += lost;
        } else {
          next[target] += w * pmf[x];
        }
      }
    }
    dist.swap(next);
    survival = 1.0 - dist[0];
    out.survival.push_back(survival);
    out.expected_absorption += survival;
    if (survival < 1e-15) {
      // Numerically absorbed: the remaining curve is zero; fill and stop.
      out.survival.resize(t_max + 1, 0.0);
      break;
    }
  }
  return out;
}

LeakyQueueExact exact_leaky_queue_stationary(std::uint32_t n, double lambda,
                                             std::size_t cap) {
  if (n < 2) throw std::invalid_argument("leaky queue: n must be >= 2");
  if (!(lambda > 0.0) || lambda >= 1.0) {
    throw std::invalid_argument("leaky queue: lambda must be in (0, 1)");
  }
  const double p = lambda / static_cast<double>(n);
  std::vector<double> pmf_x;
  double cumulative = 0.0;
  for (std::uint64_t k = 0; k <= n; ++k) {
    pmf_x.push_back(binomial_pmf(n, p, k));
    cumulative += pmf_x.back();
    if (1.0 - cumulative < 1e-16 && k >= 2) break;
  }

  // Power iteration on the 1-D reflecting chain; the drift -(1 - lambda)
  // makes it geometrically ergodic, so O(tail-length / (1 - lambda))
  // iterations suffice.  The L1 threshold must sit above the ~1e-13
  // summation round-off floor of a few thousand states, or the loop
  // would spin to the iteration cap doing nothing.
  std::vector<double> dist(cap + 1, 0.0);
  dist[0] = 1.0;
  std::vector<double> next(cap + 1, 0.0);
  // Near-critical relaxation needs ~1/(1 - lambda)^2 iterations (the
  // queue equilibrates by diffusion against the weak drift).
  const double slack = 1.0 - lambda;
  const std::uint64_t max_iters =
      10000 + static_cast<std::uint64_t>(100.0 / (slack * slack));
  for (std::uint64_t iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t z = 0; z <= cap; ++z) {
      const double w = dist[z];
      if (w == 0.0) continue;
      const std::size_t base = z == 0 ? 0 : z - 1;
      for (std::size_t x = 0; x < pmf_x.size(); ++x) {
        const std::size_t target = base + x;
        next[target >= cap ? cap : target] += w * pmf_x[x];
      }
    }
    double delta = 0.0;
    for (std::size_t z = 0; z <= cap; ++z) delta += std::abs(next[z] - dist[z]);
    dist.swap(next);
    if (delta < 1e-12) break;
  }

  LeakyQueueExact out;
  out.pmf = dist;
  out.p_empty = dist[0];
  double tail = 1.0;
  for (std::size_t k = 0; k <= cap; ++k) {
    out.mean += static_cast<double>(k) * dist[k];
    tail -= dist[k];
    if (tail > 1e-9) out.q999 = k + 1;
  }
  return out;
}

}  // namespace rbb
