// Chrome-trace / Perfetto JSON export of the captured phase spans
// (obs/trace.hpp).
//
// The document is the Trace Event Format's JSON-object form: a
// `traceEvents` array of complete events, each with the fixed key
// order
//
//   {"name": ..., "cat": "rbb", "ph": "X", "ts": <us>, "dur": <us>,
//    "pid": 1, "tid": <slot id>}
//
// so the golden test in tests/obs/ can pin exact bytes.  Timestamps
// and durations are microseconds (the format's unit) with three
// decimals, preserving the captured nanosecond resolution.  Events are
// sorted by (ts, tid, name) -- per-thread buffers are already in time
// order, so the merge makes the whole file deterministic for a given
// capture.  Load the result at https://ui.perfetto.dev or
// chrome://tracing.
//
// Exists (and produces a valid, empty trace) under RBB_TELEMETRY=0,
// so runner --trace=FILE stays well-formed in the no-op build.
#pragma once

#include <iosfwd>
#include <string>

namespace rbb::obs {

/// Renders every buffered trace event as a Chrome-trace JSON document.
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace into a string (tests, small traces).
[[nodiscard]] std::string chrome_trace_json();

/// write_chrome_trace into `path`; false when the file cannot be
/// opened or written.
[[nodiscard]] bool write_chrome_trace_file(const std::string& path);

}  // namespace rbb::obs
