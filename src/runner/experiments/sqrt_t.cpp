// E11 -- Sect. 1.2 / 3.1: the best previous bound [12] on the maximum
// load after t rounds was O(sqrt(t)); Theorem 1 replaces it with a flat
// O(log n).
#include <cmath>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_sqrt_t(Registry& registry) {
  Experiment e;
  e.name = "sqrt_t";
  e.claim = "E11";
  e.title = "max load flat in t: O(log n) beats the old O(sqrt t)";
  e.description =
      "The running maximum load max_{s<=t} M(s) at geometric round "
      "checkpoints, against sqrt(t) and log2 n.  The measured series "
      "flattens around ~2 log2 n while sqrt(t) diverges -- the paper's "
      "headline improvement made visible.";
  e.params = {
      {"n", ParamSpec::Type::kU64, "0", "bins (0 = scale default)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 10);
    const std::uint32_t n =
        ctx.params.u64("n") != 0
            ? ctx.params.u32("n")
            : by_scale<std::uint32_t>(ctx.scale, 512, 2048, 8192);

    SqrtTParams p;
    p.n = n;
    p.trials = trials;
    p.seed = ctx.seed();
    const std::uint64_t horizon =
        by_scale<std::uint64_t>(ctx.scale, 1u << 12, 1u << 16, 1u << 19);
    for (std::uint64_t t = 16; t <= horizon; t *= 4) {
      p.checkpoints.push_back(t);
    }
    const SqrtTResult r = run_sqrt_t(p);

    ResultSet rs;
    Table& table = rs.add_table(
        "E11_sqrt_t", "max load flat in t: O(log n) beats the old O(sqrt t)",
        {"t (rounds)", "running max (mean)", "running max (worst)",
         "sqrt(t)", "log2 n", "max / log2 n"});
    for (std::size_t i = 0; i < p.checkpoints.size(); ++i) {
      table.row()
          .cell(p.checkpoints[i])
          .cell(r.running_max_mean[i], 2)
          .cell(std::uint64_t{r.running_max_worst[i]})
          .cell(std::sqrt(static_cast<double>(p.checkpoints[i])), 1)
          .cell(log2n(n), 1)
          .cell(r.running_max_mean[i] / log2n(n), 3);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
