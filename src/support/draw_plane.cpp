// Batched Philox draw-plane kernels and their runtime dispatch.
//
// Three block generators produce identical words (pinned by
// tests/support/draw_plane_test.cpp):
//
//   philox_one     -- one block through the hoisted key schedule; tail
//                     lanes and the reference for the batches,
//   philox_batch4  -- four independent blocks interleaved in scalar
//                     code, so the 10-round multiply latency chains
//                     overlap in the out-of-order core,
//   philox8_avx2   -- eight blocks in struct-of-arrays __m256i lanes;
//                     each round multiplies the even and odd 32-bit
//                     lanes with two mul_epu32 halves and re-blends the
//                     hi/lo products.
//
// The bounded reduction is shared by every path: multiply-shift on the
// first word, deferred-retry on the second (lemire_batch), equal to
// lemire_bounded by the threshold < n argument in counter_rng.hpp.
#include "support/draw_plane.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RBB_PLANE_X86 1
#include <immintrin.h>
#else
#define RBB_PLANE_X86 0
#endif

namespace rbb {
namespace {

// ---- dispatch --------------------------------------------------------------

std::atomic<int> g_forced_isa{-1};

PlaneIsa detect_isa() noexcept {
  const char* env = std::getenv("RBB_DRAW_PLANE_SIMD");
  if (env != nullptr && env[0] == '0') return PlaneIsa::kPortable;
#if RBB_PLANE_X86
  if (__builtin_cpu_supports("avx2")) return PlaneIsa::kAvx2;
#endif
  return PlaneIsa::kPortable;
}

// ---- scalar block generators -----------------------------------------------

/// Slots buffered per word/Lemire pass: 64 x 2 x 8 bytes of word
/// buffers live on the caller's stack, well inside L1.
constexpr std::size_t kBatch = 64;

/// One block under a hoisted schedule; same arithmetic as philox4x32
/// with the key adds pre-expanded.
inline void philox_one(const PhiloxKeySchedule& ks, std::uint32_t c0,
                       std::uint32_t c1, std::uint32_t c2, std::uint32_t c3,
                       std::uint64_t& w0, std::uint64_t& w1) noexcept {
  std::uint32_t x0 = c0, x1 = c1, x2 = c2, x3 = c3;
  for (int r = 0; r < kPhiloxRounds; ++r) {
    const std::uint64_t p0 = static_cast<std::uint64_t>(kPhiloxMul0) * x0;
    const std::uint64_t p1 = static_cast<std::uint64_t>(kPhiloxMul1) * x2;
    const std::uint32_t n0 =
        static_cast<std::uint32_t>(p1 >> 32) ^ x1 ^ ks[r][0];
    const std::uint32_t n2 =
        static_cast<std::uint32_t>(p0 >> 32) ^ x3 ^ ks[r][1];
    x1 = static_cast<std::uint32_t>(p1);
    x3 = static_cast<std::uint32_t>(p0);
    x0 = n0;
    x2 = n2;
  }
  w0 = x0 | (static_cast<std::uint64_t>(x1) << 32);
  w1 = x2 | (static_cast<std::uint64_t>(x3) << 32);
}

/// Four independent blocks, lanes interleaved so their multiply chains
/// overlap.  c1/c2/c3 are lane-uniform: every consumer either shares
/// the slot's upper half (gather) or walks a non-wrapping lo range.
inline void philox_batch4(const PhiloxKeySchedule& ks,
                          const std::uint32_t c0[4], std::uint32_t c1,
                          std::uint32_t c2, std::uint32_t c3,
                          std::uint64_t* w0, std::uint64_t* w1) noexcept {
  std::uint32_t x0[4], x1[4], x2[4], x3[4];
  for (int l = 0; l < 4; ++l) {
    x0[l] = c0[l];
    x1[l] = c1;
    x2[l] = c2;
    x3[l] = c3;
  }
  for (int r = 0; r < kPhiloxRounds; ++r) {
    const std::uint32_t k0 = ks[r][0];
    const std::uint32_t k1 = ks[r][1];
    for (int l = 0; l < 4; ++l) {
      const std::uint64_t p0 =
          static_cast<std::uint64_t>(kPhiloxMul0) * x0[l];
      const std::uint64_t p1 =
          static_cast<std::uint64_t>(kPhiloxMul1) * x2[l];
      const std::uint32_t n0 =
          static_cast<std::uint32_t>(p1 >> 32) ^ x1[l] ^ k0;
      const std::uint32_t n2 =
          static_cast<std::uint32_t>(p0 >> 32) ^ x3[l] ^ k1;
      x1[l] = static_cast<std::uint32_t>(p1);
      x3[l] = static_cast<std::uint32_t>(p0);
      x0[l] = n0;
      x2[l] = n2;
    }
  }
  for (int l = 0; l < 4; ++l) {
    w0[l] = x0[l] | (static_cast<std::uint64_t>(x1[l]) << 32);
    w1[l] = x2[l] | (static_cast<std::uint64_t>(x3[l]) << 32);
  }
}

/// Words of `count` (<= kBatch) gathered slots, portable path.
void words_gather_portable(const PhiloxKeySchedule& ks,
                           const std::uint32_t* slot_lo, std::uint32_t slot_hi,
                           std::uint32_t c2, std::uint32_t c3,
                           std::size_t count, std::uint64_t* w0,
                           std::uint64_t* w1) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    philox_batch4(ks, slot_lo + i, slot_hi, c2, c3, w0 + i, w1 + i);
  }
  for (; i < count; ++i) {
    philox_one(ks, slot_lo[i], slot_hi, c2, c3, w0[i], w1[i]);
  }
}

/// Words of the contiguous lo range [lo_base, lo_base + count), portable
/// path.  The caller segments at 2^32 boundaries, so lo never wraps.
void words_range_portable(const PhiloxKeySchedule& ks, std::uint32_t lo_base,
                          std::uint32_t c1, std::uint32_t c2, std::uint32_t c3,
                          std::size_t count, std::uint64_t* w0,
                          std::uint64_t* w1) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const std::uint32_t base = lo_base + static_cast<std::uint32_t>(i);
    const std::uint32_t c0[4] = {base, base + 1, base + 2, base + 3};
    philox_batch4(ks, c0, c1, c2, c3, w0 + i, w1 + i);
  }
  for (; i < count; ++i) {
    philox_one(ks, lo_base + static_cast<std::uint32_t>(i), c1, c2, c3,
               w0[i], w1[i]);
  }
}

// ---- AVX2 block generator --------------------------------------------------

#if RBB_PLANE_X86

/// Ten Philox rounds over eight blocks in struct-of-arrays lanes.
/// mul_epu32 multiplies the even 32-bit lanes; the odd lanes go through
/// a 32-bit shift, and the hi/lo 32-bit product halves are re-blended
/// into full 8-lane vectors (0xAA = odd lanes from the second operand).
__attribute__((target("avx2"))) inline void philox8_rounds_avx2(
    const PhiloxKeySchedule& ks, __m256i& x0, __m256i& x1, __m256i& x2,
    __m256i& x3) noexcept {
  const __m256i mul0 = _mm256_set1_epi32(static_cast<int>(kPhiloxMul0));
  const __m256i mul1 = _mm256_set1_epi32(static_cast<int>(kPhiloxMul1));
  for (int r = 0; r < kPhiloxRounds; ++r) {
    const __m256i k0 = _mm256_set1_epi32(static_cast<int>(ks[r][0]));
    const __m256i k1 = _mm256_set1_epi32(static_cast<int>(ks[r][1]));
    const __m256i p0e = _mm256_mul_epu32(x0, mul0);
    const __m256i p0o = _mm256_mul_epu32(_mm256_srli_epi64(x0, 32), mul0);
    const __m256i p1e = _mm256_mul_epu32(x2, mul1);
    const __m256i p1o = _mm256_mul_epu32(_mm256_srli_epi64(x2, 32), mul1);
    const __m256i lo0 =
        _mm256_blend_epi32(p0e, _mm256_slli_epi64(p0o, 32), 0xAA);
    const __m256i hi0 =
        _mm256_blend_epi32(_mm256_srli_epi64(p0e, 32), p0o, 0xAA);
    const __m256i lo1 =
        _mm256_blend_epi32(p1e, _mm256_slli_epi64(p1o, 32), 0xAA);
    const __m256i hi1 =
        _mm256_blend_epi32(_mm256_srli_epi64(p1e, 32), p1o, 0xAA);
    x0 = _mm256_xor_si256(_mm256_xor_si256(hi1, x1), k0);
    x1 = lo1;
    x2 = _mm256_xor_si256(_mm256_xor_si256(hi0, x3), k1);
    x3 = lo0;
  }
}

/// Packs the four SoA output vectors into per-lane (w0, w1) words.
__attribute__((target("avx2"))) inline void store_words_avx2(
    __m256i x0, __m256i x1, __m256i x2, __m256i x3, std::uint64_t* w0,
    std::uint64_t* w1) noexcept {
  alignas(32) std::uint32_t a0[8], a1[8], a2[8], a3[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(a0), x0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(a1), x1);
  _mm256_store_si256(reinterpret_cast<__m256i*>(a2), x2);
  _mm256_store_si256(reinterpret_cast<__m256i*>(a3), x3);
  for (int l = 0; l < 8; ++l) {
    w0[l] = a0[l] | (static_cast<std::uint64_t>(a1[l]) << 32);
    w1[l] = a2[l] | (static_cast<std::uint64_t>(a3[l]) << 32);
  }
}

__attribute__((target("avx2"))) void words_gather_avx2(
    const PhiloxKeySchedule& ks, const std::uint32_t* slot_lo,
    std::uint32_t slot_hi, std::uint32_t c2, std::uint32_t c3,
    std::size_t count, std::uint64_t* w0, std::uint64_t* w1) noexcept {
  const __m256i c1v = _mm256_set1_epi32(static_cast<int>(slot_hi));
  const __m256i c2v = _mm256_set1_epi32(static_cast<int>(c2));
  const __m256i c3v = _mm256_set1_epi32(static_cast<int>(c3));
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i x0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(slot_lo + i));
    __m256i x1 = c1v, x2 = c2v, x3 = c3v;
    philox8_rounds_avx2(ks, x0, x1, x2, x3);
    store_words_avx2(x0, x1, x2, x3, w0 + i, w1 + i);
  }
  for (; i < count; ++i) {
    philox_one(ks, slot_lo[i], slot_hi, c2, c3, w0[i], w1[i]);
  }
}

__attribute__((target("avx2"))) void words_range_avx2(
    const PhiloxKeySchedule& ks, std::uint32_t lo_base, std::uint32_t c1,
    std::uint32_t c2, std::uint32_t c3, std::size_t count, std::uint64_t* w0,
    std::uint64_t* w1) noexcept {
  const __m256i c1v = _mm256_set1_epi32(static_cast<int>(c1));
  const __m256i c2v = _mm256_set1_epi32(static_cast<int>(c2));
  const __m256i c3v = _mm256_set1_epi32(static_cast<int>(c3));
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i base = _mm256_set1_epi32(
        static_cast<int>(lo_base + static_cast<std::uint32_t>(i)));
    __m256i x0 = _mm256_add_epi32(base, iota);
    __m256i x1 = c1v, x2 = c2v, x3 = c3v;
    philox8_rounds_avx2(ks, x0, x1, x2, x3);
    store_words_avx2(x0, x1, x2, x3, w0 + i, w1 + i);
  }
  for (; i < count; ++i) {
    philox_one(ks, lo_base + static_cast<std::uint32_t>(i), c1, c2, c3,
               w0[i], w1[i]);
  }
}

#endif  // RBB_PLANE_X86

// ---- batched bounded reduction ---------------------------------------------

/// out[i] = lemire_bounded(w0[i], w1[i], n) with the threshold hoisted:
/// the main loop commits the w0 multiply-shift branch-free and records
/// rejected lanes (probability threshold / 2^64 < 2^-32 each) on a
/// retry list resolved from the stored second words afterwards.
/// count <= kBatch (the retry list is stack-sized).
inline void lemire_batch(const std::uint64_t* w0, const std::uint64_t* w1,
                         std::size_t count, std::uint32_t n,
                         std::uint64_t threshold,
                         std::uint32_t* out) noexcept {
  std::uint32_t retry[kBatch];
  std::size_t retries = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const __uint128_t m = static_cast<__uint128_t>(w0[i]) * n;
    out[i] = static_cast<std::uint32_t>(m >> 64);
    retry[retries] = static_cast<std::uint32_t>(i);
    retries += static_cast<std::size_t>(static_cast<std::uint64_t>(m) <
                                        threshold);
  }
  for (std::size_t k = 0; k < retries; ++k) {
    const std::uint32_t i = retry[k];
    out[i] = static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(w1[i]) * n) >> 64);
  }
  // The scalar lemire_bounded stays constexpr (KAT-pinned); the retry
  // telemetry lives here because every hot consumer reduces in batches.
  if (retries != 0) obs::add(obs::Counter::kLemireRetries, retries);
}

}  // namespace

// ---- public surface --------------------------------------------------------

PlaneIsa active_plane_isa() noexcept {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<PlaneIsa>(forced);
  static const PlaneIsa detected = detect_isa();
  return detected;
}

bool plane_isa_supported(PlaneIsa isa) noexcept {
  if (isa == PlaneIsa::kPortable) return true;
#if RBB_PLANE_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void force_plane_isa(PlaneIsa isa) noexcept {
  g_forced_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void reset_plane_isa() noexcept {
  g_forced_isa.store(-1, std::memory_order_relaxed);
}

void lemire_bounded_batch(const std::uint64_t* w0, const std::uint64_t* w1,
                          std::size_t count, std::uint32_t n,
                          std::uint32_t* out) noexcept {
  const std::uint64_t threshold = (0 - std::uint64_t{n}) % n;
  while (count > 0) {
    const std::size_t len = std::min(count, kBatch);
    lemire_batch(w0, w1, len, n, threshold, out);
    w0 += len;
    w1 += len;
    out += len;
    count -= len;
  }
}

void DrawPlane::fill_range(std::uint64_t round, std::uint64_t slot_begin,
                           std::size_t count, std::uint32_t n,
                           std::uint32_t* out) const noexcept {
  const std::uint64_t threshold = (0 - std::uint64_t{n}) % n;
  const auto c2 = static_cast<std::uint32_t>(round);
  const auto c3 = static_cast<std::uint32_t>(round >> 32);
  const bool avx2 = active_plane_isa() == PlaneIsa::kAvx2;
  const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  std::uint64_t batches = 0;
  const std::size_t total = count;
  std::uint64_t w0[kBatch], w1[kBatch];
  while (count > 0) {
    const auto lo = static_cast<std::uint32_t>(slot_begin);
    const auto hi = static_cast<std::uint32_t>(slot_begin >> 32);
    // Segment at the next 2^32 slot boundary so the lo words of one
    // batch never wrap (the hi word is lane-uniform per batch).
    const std::uint64_t to_boundary = 0x100000000ull - lo;
    std::size_t len = std::min<std::uint64_t>(count, to_boundary);
    len = std::min(len, kBatch);
#if RBB_PLANE_X86
    if (avx2) {
      words_range_avx2(schedule_, lo, hi, c2, c3, len, w0, w1);
    } else {
      words_range_portable(schedule_, lo, hi, c2, c3, len, w0, w1);
    }
#else
    words_range_portable(schedule_, lo, hi, c2, c3, len, w0, w1);
#endif
    lemire_batch(w0, w1, len, n, threshold, out);
    ++batches;
    slot_begin += len;
    out += len;
    count -= len;
  }
  if (t0 != 0) {
    obs::add_phase_ns(obs::Phase::kPlaneFill, obs::now_ns() - t0);
    obs::add(avx2 ? obs::Counter::kPlaneBatchesAvx2
                  : obs::Counter::kPlaneBatchesPortable,
             batches);
    obs::add(obs::Counter::kPlaneDraws, total);
  }
}

void DrawPlane::fill_gather(std::uint64_t round, const std::uint32_t* slot_lo,
                            std::uint32_t slot_hi, std::size_t count,
                            std::uint32_t n,
                            std::uint32_t* out) const noexcept {
  const std::uint64_t threshold = (0 - std::uint64_t{n}) % n;
  const auto c2 = static_cast<std::uint32_t>(round);
  const auto c3 = static_cast<std::uint32_t>(round >> 32);
  const bool avx2 = active_plane_isa() == PlaneIsa::kAvx2;
  const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  std::uint64_t batches = 0;
  const std::size_t total = count;
  std::uint64_t w0[kBatch], w1[kBatch];
  while (count > 0) {
    const std::size_t len = std::min(count, kBatch);
#if RBB_PLANE_X86
    if (avx2) {
      words_gather_avx2(schedule_, slot_lo, slot_hi, c2, c3, len, w0, w1);
    } else {
      words_gather_portable(schedule_, slot_lo, slot_hi, c2, c3, len, w0,
                            w1);
    }
#else
    words_gather_portable(schedule_, slot_lo, slot_hi, c2, c3, len, w0, w1);
#endif
    lemire_batch(w0, w1, len, n, threshold, out);
    ++batches;
    slot_lo += len;
    out += len;
    count -= len;
  }
  if (t0 != 0) {
    obs::add_phase_ns(obs::Phase::kPlaneFill, obs::now_ns() - t0);
    obs::add(avx2 ? obs::Counter::kPlaneBatchesAvx2
                  : obs::Counter::kPlaneBatchesPortable,
             batches);
    obs::add(obs::Counter::kPlaneDraws, total);
  }
}

}  // namespace rbb
