// D5 -- trial-sweep parallelization: scaling of the thread pool on the
// embarrassingly parallel Monte-Carlo workload the experiment drivers
// run, and the overhead of batch dispatch at small task counts.
#include <benchmark/benchmark.h>

#include "core/config.hpp"
#include "core/process.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace rbb;

/// One trial of the kind the drivers run: a short stability window.
void run_one_trial(std::uint64_t seed, std::uint64_t trial) {
  Rng rng(seed, trial);
  RepeatedBallsProcess proc(
      make_config(InitialConfig::kOnePerBin, 512, 512, rng), rng);
  benchmark::DoNotOptimize(proc.run(512));
}

void BM_TrialSweepThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  ThreadPool pool(threads);
  constexpr std::int64_t kTrials = 16;
  for (auto _ : state) {
    pool.parallel_for(kTrials,
                      [&](std::uint64_t trial) { run_one_trial(7, trial); });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTrials);
}
BENCHMARK(BM_TrialSweepThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_DispatchOverhead(benchmark::State& state) {
  // Empty tasks: measures pure pool dispatch cost per batch.
  ThreadPool pool(2);
  const auto tasks = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    pool.parallel_for(tasks, [](std::uint64_t i) {
      benchmark::DoNotOptimize(i);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_DispatchOverhead)->Arg(1)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
