// Repeated balls-into-bins with d choices (paper Sect. 1.3, ref. [36]).
//
// The generalization mentioned in the related work: at each round, every
// non-empty bin releases one ball as usual, but a released ball samples d
// candidate destinations u.a.r. and joins the least loaded of them.
// d = 1 is the paper's process.  Within a round, re-launched balls are
// placed sequentially in releasing-bin order against current loads
// (arrivals of the same round are visible to later placements) -- the
// standard discrete-time convention for Greedy[d]; the choice is
// documented because [36] leaves the intra-round tie-break unspecified.
// (The schedule-free counter-stream siblings in src/par/ use the
// batch-snapshot convention instead; see core/kernel/variants.hpp.)
//
// Since the policy refactor (DESIGN.md Sect. 5), RepeatedDChoicesProcess
// is a thin constructor adapter over the process core.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/kernel/ball_kernel.hpp"
#include "support/rng.hpp"

namespace rbb {

class RepeatedDChoicesProcess
    : public kernel::BallProcessCore<kernel::DChoices<kernel::SequentialStream>,
                                     kernel::SequentialExecution> {
 public:
  RepeatedDChoicesProcess(LoadConfig initial, std::uint32_t d, Rng rng)
      : BallProcessCore(std::move(initial),
                        kernel::DChoices<kernel::SequentialStream>(
                            kernel::SequentialStream(rng), d)) {}
};

}  // namespace rbb
