// E21 -- tagged-token mixing: how fast does a token's position law
// approach uniform despite the queueing correlation?
//
// Background (Sect. 1.3): the repeated process IS parallel random walks
// in the one-token-per-message gossip model, where [13] sought fast
// mixing.  An unconstrained clique walker mixes in ONE step; a token at
// the back of a queue is frozen until the queue drains, so mixing is
// delayed by exactly the waiting times Theorem 1 bounds.
//
// Two tables, both tracking the worst-positioned token:
//   (a) random legitimate placement -- the token's law hits uniform
//       within a handful of rounds (delays are O(1)-ish in equilibrium);
//   (b) all-in-one placement -- the token is buried under n-1 others and
//       its law stays a point mass for Theta(n) rounds (TV ~ 1), the
//       starkest display of the correlation the paper had to tame.
#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E21: tagged-token position mixing under the queueing constraint");
  cli.add_u64("n", 0, "bins (0 = scale default)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials =
      bench::trials_for(cli, scale, 4000, 20000, 100000);
  const std::uint32_t n =
      cli.u64("n") != 0 ? static_cast<std::uint32_t>(cli.u64("n"))
                        : by_scale<std::uint32_t>(scale, 64, 128, 256);

  // (a) equilibrium placement: fast decay to the noise floor.
  MixingParams p;
  p.n = n;
  p.checkpoints = {1, 2, 3, 4, 6, 8, 12, 16};
  p.trials = trials;
  p.seed = cli.u64("seed");
  p.placement = InitialConfig::kRandom;
  const MixingResult fifo = run_mixing(p);
  p.policy = QueuePolicy::kLifo;
  const MixingResult lifo = run_mixing(p);

  Table fast({"round t", "TV from uniform (fifo)", "TV (lifo)",
              "noise floor"});
  for (std::size_t i = 0; i < p.checkpoints.size(); ++i) {
    fast.row()
        .cell(p.checkpoints[i])
        .cell(fifo.tv_from_uniform[i], 4)
        .cell(lifo.tv_from_uniform[i], 4)
        .cell(fifo.noise_floor, 4);
  }
  bench::emit(fast, "E21_mixing",
              "equilibrium start: back-of-queue token mixes in O(1) rounds",
              scale);

  // (b) worst-case pile: frozen for ~n rounds under FIFO.
  MixingParams wp;
  wp.n = n;
  wp.trials = std::max<std::uint32_t>(trials / 4, 1000);
  wp.seed = cli.u64("seed") + 7;
  wp.placement = InitialConfig::kAllInOne;
  for (const std::uint64_t t :
       {std::uint64_t{1}, static_cast<std::uint64_t>(n) / 4,
        static_cast<std::uint64_t>(n) / 2,
        static_cast<std::uint64_t>(n) - 1,
        static_cast<std::uint64_t>(n) + 8,
        2 * static_cast<std::uint64_t>(n)}) {
    wp.checkpoints.push_back(t);
  }
  const MixingResult pile = run_mixing(wp);
  Table frozen({"round t", "t / n", "TV from uniform", "noise floor"});
  for (std::size_t i = 0; i < wp.checkpoints.size(); ++i) {
    frozen.row()
        .cell(wp.checkpoints[i])
        .cell(static_cast<double>(wp.checkpoints[i]) / n, 2)
        .cell(pile.tv_from_uniform[i], 4)
        .cell(pile.noise_floor, 4);
  }
  bench::emit(frozen, "E21b_mixing_pile",
              "all-in-one start: the buried token is frozen for ~n rounds",
              scale);
  return 0;
}
