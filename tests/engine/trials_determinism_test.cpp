// Thread-count determinism of the Monte-Carlo trial runner: every trial
// draws from its own (seed, trial) RNG substream and writes only its own
// result slot, so aggregate results are bit-identical for any number of
// worker threads -- the promise design choice D5 makes and the engine's
// for_each_trial doc comment repeats.
#include "engine/trials.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/experiments.hpp"
#include "support/thread_pool.hpp"

namespace rbb {
namespace {

TEST(TrialsDeterminism, TrialSubstreamsIgnoreSchedulingOrder) {
  ThreadPool one(1);
  ThreadPool four(4);
  std::vector<std::uint64_t> a(64), b(64);
  for_each_trial(
      64, 42,
      [&](std::uint32_t trial, Rng& rng) { a[trial] = rng(); }, &one);
  for_each_trial(
      64, 42,
      [&](std::uint32_t trial, Rng& rng) { b[trial] = rng(); }, &four);
  EXPECT_EQ(a, b);
}

TEST(TrialsDeterminism, StabilityMomentsIdenticalFor1And2And8Threads) {
  ThreadPool pools[] = {ThreadPool(1), ThreadPool(2), ThreadPool(8)};
  std::vector<StabilityResult> results;
  for (ThreadPool& pool : pools) {
    StabilityParams p;
    p.n = 64;
    p.rounds = 256;
    p.trials = 24;
    p.seed = 7;
    p.start = InitialConfig::kAllInOne;
    p.pool = &pool;
    results.push_back(run_stability(p));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    // Bit-identical, not approximately equal: the per-trial slots are
    // reduced in trial order regardless of which thread ran which trial.
    EXPECT_EQ(results[i].window_max.mean(), results[0].window_max.mean());
    EXPECT_EQ(results[i].window_max.variance(),
              results[0].window_max.variance());
    EXPECT_EQ(results[i].final_max.mean(), results[0].final_max.mean());
    EXPECT_EQ(results[i].min_empty_fraction.mean(),
              results[0].min_empty_fraction.mean());
    EXPECT_EQ(results[i].legit_window_fraction,
              results[0].legit_window_fraction);
    EXPECT_EQ(results[i].overall_max, results[0].overall_max);
    EXPECT_EQ(results[i].per_trial_window_max,
              results[0].per_trial_window_max);
  }
}

TEST(TrialsDeterminism, ExceptionsPropagateFromWorkerThreads) {
  ThreadPool pool(2);
  EXPECT_THROW(
      for_each_trial(
          8, 1,
          [](std::uint32_t trial, Rng&) {
            if (trial == 5) throw std::runtime_error("boom");
          },
          &pool),
      std::runtime_error);
}

}  // namespace
}  // namespace rbb
