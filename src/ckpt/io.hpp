// Crash-atomic checkpoint persistence (DESIGN.md Sect. 7).
//
// Every durable write follows the same discipline: serialize to
// `<path>.tmp`, fsync the file, rename() over the final path, fsync the
// directory.  A crash at any instant therefore leaves either the old
// file, the new file, or a `.tmp` orphan that discovery ignores --
// never a torn final file.  The chaos harness pins this by injecting
// `RBB_CRASH_AT=<phase>:<round>` kill points at the four interesting
// instants (mid-payload, after-tmp, before-rename, post-rename).
//
// Checkpoint writes are best-effort by design: a full or read-only
// disk must not kill an 8e6-round simulation, so write_checkpoint_file
// retries with backoff, logs, bumps obs counters
// (checkpoint_writes/bytes/failures/retries), and reports failure to
// the caller instead of throwing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace rbb::ckpt {

/// Exit code used by injected kill points (matches the shell's code
/// for a SIGKILLed process, so the chaos harness can't confuse an
/// injected crash with a clean failure path).
inline constexpr int kCrashExitCode = 137;

/// Kill-point phase names accepted in RBB_CRASH_AT=<phase>:<round>.
inline constexpr const char* kCrashMidPayload = "mid-payload";
inline constexpr const char* kCrashAfterTmp = "after-tmp";
inline constexpr const char* kCrashBeforeRename = "before-rename";
inline constexpr const char* kCrashPostRename = "post-rename";

/// If RBB_CRASH_AT names this phase and round, prints a marker to
/// stderr and _exit(kCrashExitCode)s without unwinding -- simulating a
/// hard crash at exactly this instant.  The environment is re-read on
/// every call so forked chaos-test children can arm it after fork().
void maybe_crash(const char* phase, std::uint64_t round) noexcept;

/// tmp+fsync+rename+dir-fsync write of an arbitrary byte blob (also
/// the runner's --out path, satellite 1).  Returns false and fills
/// *error on failure; the destination is never left torn.  `round`
/// keys the kill points (pass 0 outside checkpoint context).
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     std::string_view bytes,
                                     std::string* error,
                                     std::uint64_t crash_round = 0);

/// Encodes and durably writes one checkpoint with retry/backoff and
/// telemetry.  Never throws; returns false (and fills *error) only
/// after all attempts failed.
[[nodiscard]] bool write_checkpoint_file(const std::string& path,
                                         const Checkpoint& ckpt,
                                         std::string* error);

/// Reads an entire file; throws Error(kIo) if unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// read_file + decode: throws Error with a named kind on any I/O
/// failure, corruption, or truncation.
[[nodiscard]] Checkpoint read_checkpoint(const std::string& path);

/// Canonical checkpoint filename for a round: "rbb-%020u.ckpt" so
/// lexicographic order == round order.
[[nodiscard]] std::string checkpoint_filename(std::uint64_t round);

/// Highest-round "rbb-*.ckpt" in `dir` (ignores .tmp orphans and
/// foreign files); nullopt if none or the directory is unreadable.
[[nodiscard]] std::optional<std::string> latest_checkpoint(
    const std::string& dir);

/// Periodic write-every-K / keep-last-K checkpoint schedule used by the
/// runner.  Failures are logged and counted but never stop the run.
class CheckpointPlan {
 public:
  CheckpointPlan() = default;
  CheckpointPlan(std::string dir, std::uint64_t every, std::uint64_t keep);

  [[nodiscard]] bool enabled() const noexcept { return !dir_.empty(); }
  [[nodiscard]] bool due(std::uint64_t round) const noexcept {
    return enabled() && every_ != 0 && round != 0 && round % every_ == 0;
  }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t every() const noexcept { return every_; }

  /// Writes `ckpt` to dir()/checkpoint_filename(ckpt.header.round) and
  /// prunes all but the newest `keep` checkpoints this plan wrote.
  /// Returns the written path, or nullopt if the write failed (the
  /// simulation continues either way).
  std::optional<std::string> write(const Checkpoint& ckpt);

 private:
  std::string dir_;
  std::uint64_t every_ = 0;
  std::uint64_t keep_ = 3;
  /// (round, path) of successfully written checkpoints, for retention.
  std::vector<std::pair<std::uint64_t, std::string>> written_;
};

}  // namespace rbb::ckpt
