// E6 -- exact finite-n chain analysis.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/exact_chain.cpp); this binary behaves like
// `rbb run exact_chain` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("exact_chain", argc, argv);
}
