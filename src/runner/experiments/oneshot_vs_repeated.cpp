// E12 -- Sect. 5 tightness question: the one-shot lower bound
// Theta(log n / log log n) applies to every round of the repeated
// process; the paper's upper bound is O(log n).  Where does the repeated
// process actually sit?
#include <algorithm>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_oneshot_vs_repeated(Registry& registry) {
  Experiment e;
  e.name = "oneshot_vs_repeated";
  e.claim = "E12";
  e.title =
      "repeated-process max load sits between the one-shot floor and "
      "O(log n)";
  e.description =
      "Per n: the one-shot max load, the repeated process's window max, "
      "the unconstrained independent-walks window max, and both "
      "normalizations (by log n / log log n and by log2 n).  The "
      "repeated window max grows like log n (normalization by log2 n "
      "flattens; the other diverges), consistent with the paper's "
      "conjecture that the log n bound is tight.";
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(3, 6, 12);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 20, 50);

    ResultSet rs;
    Table& table = rs.add_table(
        "E12_oneshot_vs_repeated",
        "repeated-process max load sits between the one-shot floor and "
        "O(log n)",
        {"n", "one-shot max", "repeated window max",
         "indep walks window max", "repeated / (ln n/ln ln n)",
         "repeated / log2 n"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      OneShotParams op;
      op.n = n;
      op.trials = trials * 4;  // cheap; sharpen the baseline
      op.seed = ctx.seed();
      const OneShotResult oneshot = run_oneshot(op);

      StabilityParams sp;
      sp.n = n;
      sp.rounds = wf * n;
      sp.trials = trials;
      sp.seed = ctx.seed() + 1;
      const StabilityResult repeated = run_stability(sp);

      sp.process = StabilityProcess::kIndependent;
      sp.rounds = std::min<std::uint64_t>(sp.rounds, 5ull * n);  // O(m)
      const StabilityResult indep = run_stability(sp);

      table.row()
          .cell(std::uint64_t{n})
          .cell(oneshot.max_load.mean(), 2)
          .cell(repeated.window_max.mean(), 2)
          .cell(indep.window_max.mean(), 2)
          .cell(repeated.window_max.mean() / oneshot_max_load_asymptotic(n),
                3)
          .cell(repeated.window_max.mean() / log2n(n), 3);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
