// Multi-token traversal (paper, Sect. 4): n anonymous tokens must each
// visit every node of a network, one token forwarded per node per round.
//
// Prints the global cover time against Corollary 1's O(n log^2 n) scale,
// the single-walker baseline (coupon collector on the clique), per-token
// spread, and the progress guarantee.
//
//   ./examples/token_traversal [--n 512] [--policy fifo] [--graph complete]
#include <cstdlib>
#include <iostream>
#include <optional>

#include "baselines/independent_walks.hpp"
#include "graph/graph.hpp"
#include "support/bounds.hpp"
#include "support/cli.hpp"
#include "traversal/traversal.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli("token_traversal: the Sect. 4 multi-token traversal protocol");
  cli.add_u64("n", 512, "nodes (= tokens)");
  cli.add_u64("seed", 7, "RNG seed");
  cli.add_string("policy", "fifo", "queue policy: fifo | lifo | random");
  cli.add_string("graph", "complete",
                 "topology: complete | cycle | torus | hypercube | regular8");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;

  const auto n = static_cast<std::uint32_t>(cli.u64("n"));
  const std::uint64_t seed = cli.u64("seed");
  const bool clique = cli.str("graph") == "complete";

  Rng graph_rng(seed + 1);
  std::optional<Graph> graph;
  if (!clique) graph.emplace(make_named_graph(cli.str("graph"), n, graph_rng));

  TraversalParams params;
  params.n = n;
  params.policy = queue_policy_from_string(cli.str("policy"));
  params.graph = graph ? &*graph : nullptr;

  std::cout << "multi-token traversal: n = " << n << ", policy = "
            << cli.str("policy") << ", graph = " << cli.str("graph")
            << "\n\n";

  const TraversalResult r = run_traversal(params, seed);
  if (!r.cover_time.has_value()) {
    std::cout << "did not cover within " << r.rounds_run
              << " rounds (raise the cap via a smaller n)\n";
    return EXIT_FAILURE;
  }

  const double scale = parallel_cover_scale(n);
  std::cout << "global cover time : " << *r.cover_time << " rounds\n"
            << "  / (n log2^2 n)  : "
            << static_cast<double>(*r.cover_time) / scale
            << "   (Corollary 1 predicts a constant)\n"
            << "first token done  : " << r.first_token_covered << "\n"
            << "last token done   : " << r.last_token_covered << "\n"
            << "max queue seen    : " << r.max_load_seen << " (O(log n) = "
            << log2n(n) << " * c)\n"
            << "min token progress: " << r.min_progress << " walk steps in "
            << r.rounds_run << " rounds (Sect. 4: Omega(t / log n))\n";

  if (clique) {
    Rng walk_rng(seed + 2);
    const auto single =
        single_walk_cover_time(n, nullptr, 1u << 28, walk_rng);
    if (single.has_value()) {
      std::cout << "\nsingle-walker baseline: " << *single
                << " rounds (E = n H_n = " << coupon_collector_mean(n)
                << ")\nparallel slowdown     : "
                << static_cast<double>(*r.cover_time) /
                       static_cast<double>(*single)
                << "x  (Corollary 1 predicts ~log n = " << log2n(n) << ")\n";
    }
  }
  return EXIT_SUCCESS;
}
