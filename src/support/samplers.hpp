// Exact discrete samplers used by the balls-into-bins processes.
//
// The Tetris analysis (paper, Sect. 3.4) is driven by Binomial(3n/4, 1/n)
// variates; the leaky-bins extension uses Binomial(n, lambda); the
// multinomial-occupancy sampler is the D1 ablation alternative to
// ball-by-ball throwing.  All samplers are *exact* (no normal
// approximations): statistical fidelity is part of what the reproduction
// must guarantee, and the test suite chi-square-checks each sampler
// against the exact pmf.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace rbb {

/// Exact Binomial(trials, p) sampler with precomputed constants.
///
/// Strategy selection follows Hoermann (1993):
///  * trials * min(p, 1-p) < 10  -> sequential inversion (O(np) expected),
///  * otherwise                  -> BTRD transformed-rejection (O(1) expected).
/// Construction costs a few dozen flops; reuse one sampler per fixed
/// (trials, p) pair in hot loops (e.g. the Z-chain of eq. (4)).
class BinomialSampler {
 public:
  /// Requires 0 <= p <= 1.  trials may be zero.
  BinomialSampler(std::uint64_t trials, double p);

  /// Draws one variate in [0, trials].
  [[nodiscard]] std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] std::uint64_t trials() const noexcept { return trials_; }
  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] double mean() const noexcept {
    return static_cast<double>(trials_) * p_;
  }

 private:
  [[nodiscard]] std::uint64_t sample_inversion(Rng& rng) const;
  [[nodiscard]] std::uint64_t sample_btrd(Rng& rng) const;

  std::uint64_t trials_;
  double p_;        // original success probability
  double ph_;       // min(p, 1-p), the probability actually sampled with
  bool flipped_;    // true when ph_ == 1 - p (result is mirrored)
  bool degenerate_; // p == 0 or p == 1 or trials == 0
  bool use_btrd_;

  // Inversion constants.
  double q0_;  // (1-ph)^trials
  double odds_;  // ph / (1 - ph)

  // BTRD constants (Hoermann's notation).
  double btrd_m_, btrd_r_, btrd_nr_, btrd_npq_, btrd_b_, btrd_a_, btrd_c_,
      btrd_alpha_, btrd_vr_, btrd_urvr_, btrd_h_;
};

/// One-off Binomial(trials, p) draw; prefer BinomialSampler in loops.
[[nodiscard]] std::uint64_t binomial_sample(std::uint64_t trials, double p,
                                            Rng& rng);

/// Exact Poisson(mean) draw.  Knuth's product method for mean < 30,
/// recursive halving (Poisson additivity) above, so the result is exact for
/// any mean at O(mean/30) cost.  Requires mean >= 0.
[[nodiscard]] std::uint64_t poisson_sample(double mean, Rng& rng);

/// Geometric: number of failures before the first success of a
/// Bernoulli(p) sequence, p in (0, 1].  Exact inversion.
[[nodiscard]] std::uint64_t geometric_sample(double p, Rng& rng);

/// Occupancy vector of throwing `balls` balls u.a.r. into `bins` bins,
/// computed ball-by-ball.  O(balls) time.  This is the reference
/// implementation (ablation D1 baseline).
[[nodiscard]] std::vector<std::uint32_t> occupancy_throw(std::uint64_t balls,
                                                         std::uint32_t bins,
                                                         Rng& rng);

/// Same distribution as occupancy_throw, computed by recursive binomial
/// splitting: counts(left half) ~ Bin(balls, |left|/|total|).  O(bins)
/// binomial draws; faster when balls >> bins (ablation D1 alternative).
[[nodiscard]] std::vector<std::uint32_t> occupancy_split(std::uint64_t balls,
                                                         std::uint32_t bins,
                                                         Rng& rng);

/// k distinct values sampled u.a.r. from [0, n), in unspecified order.
/// Floyd's algorithm; O(k) expected.  Requires k <= n.
[[nodiscard]] std::vector<std::uint32_t> sample_distinct(std::uint32_t n,
                                                         std::uint32_t k,
                                                         Rng& rng);

}  // namespace rbb
