// E7 -- Lemma 6: the Tetris process started from a legitimate
// configuration keeps maximum load O(log n) over any polynomial window,
// plus the critical-drift ablation (arrival rate mu*n as mu -> 1).
#include <algorithm>
#include <cstdint>

#include "core/config.hpp"
#include "par/sharded_variants.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"
#include "support/stats.hpp"
#include "tetris/tetris.hpp"

namespace rbb::runner {

namespace {

/// Accumulators of one measured Tetris window.
struct TetrisWindow {
  double max_load = 0.0;
  double min_empty_frac = 1.0;
  double empty_frac_sum = 0.0;
  double final_balls = 0.0;
};

/// Runs `window` rounds of `proc`, folding per-round stats.  Both
/// backends produce TetrisRoundStats, so one body serves the whole
/// policy matrix -- the old seq/sharded driver split is gone.
template <typename Process>
TetrisWindow measure_window(Process& proc, std::uint64_t window,
                            std::uint32_t n) {
  TetrisWindow w;
  for (std::uint64_t t = 0; t < window; ++t) {
    const TetrisRoundStats s = proc.step();
    w.max_load = std::max(w.max_load, static_cast<double>(s.max_load));
    const double empty_frac = static_cast<double>(s.empty_bins) / n;
    w.min_empty_frac = std::min(w.min_empty_frac, empty_frac);
    w.empty_frac_sum += empty_frac;
    w.final_balls = static_cast<double>(s.total_balls);
  }
  return w;
}

}  // namespace

void register_tetris_stability(Registry& registry) {
  Experiment e;
  e.name = "tetris_stability";
  e.claim = "E7";
  e.title = "Tetris window max load is O(log n) (Lemma 6)";
  e.description =
      "Mirror of the E1 stability window for the auxiliary Tetris "
      "process.  Includes the critical-drift ablation: raising the "
      "arrival rate from 3n/4 toward n erodes the negative drift and the "
      "window max load grows -- showing why the 3/4 constant works.  "
      "Backend-capable (Tetris family): --backend=sharded runs both "
      "tables on the src/par/ counter-RNG kernel (ball-by-ball "
      "arrivals; same statistics, different trajectories).";
  e.family = ProcessFamily::kTetris;
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 20, 50);
    const std::uint64_t seed = ctx.seed();
    const bool sharded = ctx.sharded();

    /// One trial's window under the requested backend: the
    /// configuration always comes from the trial's xoshiro substream,
    /// mirroring every other backend-capable experiment.
    const auto run_window = [&](std::uint64_t trial_seed,
                                std::uint32_t trial, std::uint32_t n,
                                std::uint64_t arrivals,
                                std::uint64_t window) {
      Rng rng(trial_seed, trial);
      LoadConfig config = make_config(InitialConfig::kRandom, n, n, rng);
      if (sharded) {
        par::ShardedTetrisProcess proc(std::move(config),
                                       mix64(trial_seed, trial), arrivals,
                                       par::ShardedOptions{1, 0});
        return measure_window(proc, window, n);
      }
      TetrisProcess proc(std::move(config), rng, arrivals);
      return measure_window(proc, window, n);
    };

    ResultSet rs;
    Table& table = rs.add_table(
        "E7_tetris_stability",
        "Tetris window max load is O(log n) (Lemma 6)",
        {"n", "window", "max load (mean)", "max / log2 n",
         "min empty frac"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      OnlineMoments wmax;
      OnlineMoments memp;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        const TetrisWindow w = run_window(seed, trial, n, 0, wf * n);
        wmax.add(w.max_load);
        memp.add(w.min_empty_frac);
      }
      table.row()
          .cell(std::uint64_t{n})
          .cell(wf * n)
          .cell(wmax.mean(), 2)
          .cell(wmax.mean() / log2n(n), 3)
          .cell(memp.min(), 3);
    }

    // Ablation: arrival rate mu * n for mu -> 1 (the drift -(1 - mu)
    // vanishing).  Fixed n, same window.
    const std::uint32_t n = by_scale<std::uint32_t>(ctx.scale, 256, 1024, 4096);
    Table& ablation = rs.add_table(
        "E7b_tetris_critical",
        "ablation: why 3/4 -- max load explodes as mu -> 1",
        {"arrival fraction mu", "drift per bin", "max load (mean)",
         "mean empty frac", "final total balls / n"});
    for (const double mu : {0.5, 0.75, 0.9, 0.95, 1.0}) {
      OnlineMoments wmax;
      OnlineMoments memp;
      OnlineMoments mass;
      const auto arrivals =
          static_cast<std::uint64_t>(mu * static_cast<double>(n));
      const std::uint64_t window = 10ull * n;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        const TetrisWindow w =
            run_window(seed + 17, trial, n, arrivals, window);
        wmax.add(w.max_load);
        memp.add(w.empty_frac_sum / static_cast<double>(window));
        mass.add(w.final_balls / n);
      }
      ablation.row()
          .cell(mu, 2)
          .cell(mu - 1.0, 2)
          .cell(wmax.mean(), 2)
          .cell(memp.mean(), 3)
          .cell(mass.mean(), 3);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
