// Flat token storage of the token-process core (DESIGN.md Sect. 5).
//
// The mega-n replacement for a vector of growable per-bin queues: all
// queue state lives in two contiguous arrays,
//
//   slots_[token] = {next, bin}   one 8-byte record per token,
//   bins_[u]      = {head, tail, count}   one 12-byte header per bin,
//
// i.e. an *implicit FIFO*: each bin's queue is an intrusive singly
// linked list threaded through the token array.  A round only ever
// needs a queue's head (or, under the random policy, its k-th element)
// and appends at its tail, so head/tail identity is the whole per-bin
// state -- no per-bin allocation, no compaction, no growth: push and
// pop_front are O(1) pointer splices into memory that never moves.
// Resident state is 8m + 12n bytes versus one malloc'd vector per bin,
// which is what lifts the 10^6 token cap of sharded_scaling.
//
// Policy orientation: FIFO and random push at the tail (list order =
// arrival order, oldest at head); LIFO pushes at the head (list order =
// newest first).  All three policies therefore *pop the head* except
// random, which removes the k-th element in arrival order -- an
// order-preserving removal, unlike the swap-remove of the legacy
// BallQueue (see DESIGN.md: the first pop removes the same token, but
// the legacy swap perturbs the order seen by later pops).
//
// Determinism: push order is the only thing that defines a queue's
// content, and the store performs pushes exactly in the order the core
// hands them over -- the canonical sorted-by-releasing-bin arrival
// order of the sharded commit is preserved verbatim, so trajectories
// are bit-identical to the queue-backed predecessor (pinned by
// tests/par/).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/token_process.hpp"  // QueuePolicy
#include "support/serial.hpp"
#include "support/types.hpp"

namespace rbb::kernel {

class FlatTokenStore {
 public:
  /// List terminator / empty-bin head.  Token ids are < 2^32 - 1.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  FlatTokenStore(std::uint32_t bins, std::uint32_t tokens,
                 QueuePolicy policy)
      : policy_(policy),
        slots_(tokens),
        bins_(bins, BinList{kNil, kNil, 0}) {}

  /// Drops every queue and re-pushes token 0, 1, ... into
  /// placement[token]: co-located tokens enqueue in token-id order,
  /// the construction/reassign convention of TokenProcess.
  void rebuild(const std::vector<bin_index_t>& placement) {
    std::fill(bins_.begin(), bins_.end(), BinList{kNil, kNil, 0});
    for (std::uint32_t token = 0;
         token < static_cast<std::uint32_t>(slots_.size()); ++token) {
      push(placement[token], token);
    }
  }

  [[nodiscard]] std::uint32_t token_count() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] std::uint32_t count(bin_index_t u) const noexcept {
    return bins_[u].count;
  }
  [[nodiscard]] bool empty(bin_index_t u) const noexcept {
    return bins_[u].count == 0;
  }
  /// Bin the token was last pushed into (== its current bin; a popped
  /// token keeps the old value until the core re-enqueues it, exactly
  /// the mid-round semantics the queue-backed core had for token_bin_).
  [[nodiscard]] bin_index_t bin_of(std::uint32_t token) const noexcept {
    return slots_[token].bin;
  }
  /// Head token of bin u, or kNil when empty (prefetch / inspection).
  [[nodiscard]] std::uint32_t peek_head(bin_index_t u) const noexcept {
    return bins_[u].head;
  }
  /// Successor of `token` in its bin's list, or kNil (inspection).
  [[nodiscard]] std::uint32_t next(std::uint32_t token) const noexcept {
    return slots_[token].next;
  }
  [[nodiscard]] std::uint32_t tail(bin_index_t u) const noexcept {
    return bins_[u].tail;
  }

  /// Enqueues `token` into bin u per the policy orientation.
  void push(bin_index_t u, std::uint32_t token) noexcept {
    if (policy_ == QueuePolicy::kLifo) {
      push_front(u, token);
    } else {
      push_back(u, token);
    }
  }

  /// Removes and returns the head of bin u.  Requires !empty(u).  The
  /// releasing pop of FIFO (oldest) and LIFO (newest).
  std::uint32_t pop_front(bin_index_t u) noexcept {
    BinList& list = bins_[u];
    const std::uint32_t token = list.head;
    list.head = slots_[token].next;
    if (--list.count == 0) list.tail = kNil;
    return token;
  }

  /// Removes and returns the k-th element of bin u's list (k = 0 is the
  /// head); order-preserving.  Requires k < count(u).  The random
  /// policy's pop; O(k) list walk -- queue lengths are O(log n) w.h.p.
  /// (Theorem 1), so this stays cheap at any scale.
  std::uint32_t pop_at(bin_index_t u, std::uint32_t k) noexcept {
    if (k == 0) return pop_front(u);
    BinList& list = bins_[u];
    std::uint32_t prev = list.head;
    for (std::uint32_t i = 1; i < k; ++i) prev = slots_[prev].next;
    const std::uint32_t token = slots_[prev].next;
    slots_[prev].next = slots_[token].next;
    if (list.tail == token) list.tail = prev;
    --list.count;
    return token;
  }

  /// Tokens of bin u in arrival order, oldest first (inspection; the
  /// LIFO-oriented list is stored newest-first and reversed here).
  [[nodiscard]] std::vector<std::uint32_t> snapshot(bin_index_t u) const {
    std::vector<std::uint32_t> out;
    out.reserve(bins_[u].count);
    for (std::uint32_t t = bins_[u].head; t != kNil; t = slots_[t].next) {
      out.push_back(t);
    }
    if (policy_ == QueuePolicy::kLifo) std::reverse(out.begin(), out.end());
    return out;
  }

  void prefetch_slot(std::uint32_t token) const noexcept {
    __builtin_prefetch(&slots_[token], 1);
  }
  void prefetch_bin(bin_index_t u) const noexcept {
    __builtin_prefetch(&bins_[u], 1);
  }

  [[nodiscard]] QueuePolicy policy() const noexcept { return policy_; }

  /// Serializes the raw slot/bin arrays (DESIGN.md Sect. 7).  The raw
  /// intrusive-list state is what restore() must reproduce byte-exactly:
  /// re-pushing a logical snapshot would rebuild LIFO lists in a
  /// different physical order, and the random policy's pop_at walks the
  /// physical list.
  void save_state(serial::ByteWriter& w) const {
    w.u32(static_cast<std::uint32_t>(policy_));
    w.vec(slots_);
    w.vec(bins_);
  }

  /// Inverse of save_state(); the store must be constructed with the
  /// same bin/token counts and policy (std::invalid_argument otherwise).
  void load_state(serial::ByteReader& r) {
    if (r.u32() != static_cast<std::uint32_t>(policy_)) {
      throw std::invalid_argument("FlatTokenStore: queue policy mismatch");
    }
    std::vector<TokenSlot> slots;
    std::vector<BinList> bins;
    r.vec(slots);
    r.vec(bins);
    if (slots.size() != slots_.size() || bins.size() != bins_.size()) {
      throw std::invalid_argument("FlatTokenStore: shape mismatch");
    }
    slots_ = std::move(slots);
    bins_ = std::move(bins);
  }

  /// Bytes of resident storage (the memory column of sharded_scaling).
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return slots_.capacity() * sizeof(TokenSlot) +
           bins_.capacity() * sizeof(BinList);
  }

 private:
  struct TokenSlot {
    std::uint32_t next;  // successor in the bin's list, or kNil
    bin_index_t bin;     // bin of the last push
  };
  struct BinList {
    std::uint32_t head;
    std::uint32_t tail;
    std::uint32_t count;
  };

  void push_back(bin_index_t u, std::uint32_t token) noexcept {
    slots_[token] = TokenSlot{kNil, u};
    BinList& list = bins_[u];
    if (list.count == 0) {
      list.head = token;
    } else {
      slots_[list.tail].next = token;
    }
    list.tail = token;
    ++list.count;
  }

  void push_front(bin_index_t u, std::uint32_t token) noexcept {
    BinList& list = bins_[u];
    slots_[token] = TokenSlot{list.head, u};
    if (list.count == 0) list.tail = token;
    list.head = token;
    ++list.count;
  }

  QueuePolicy policy_;
  std::vector<TokenSlot> slots_;
  std::vector<BinList> bins_;
};

}  // namespace rbb::kernel
