// Tests for the leaky-bins process ([18] extension).
#include "tetris/leaky.hpp"

#include <gtest/gtest.h>

namespace rbb {
namespace {

TEST(Leaky, RejectsBadParameters) {
  EXPECT_THROW(LeakyBinsProcess(LoadConfig{}, 0.5, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(LeakyBinsProcess(LoadConfig(4, 1), -0.1, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(LeakyBinsProcess(LoadConfig(4, 1), 1.5, Rng(1)),
               std::invalid_argument);
}

TEST(Leaky, LambdaZeroDrainsCompletely) {
  Rng rng(2);
  LeakyBinsProcess proc(LoadConfig(16, 2), 0.0, rng);
  proc.run(2);
  EXPECT_EQ(proc.total_balls(), 0u);
  EXPECT_EQ(proc.empty_bins(), 16u);
  // Stays empty forever.
  proc.run(10);
  EXPECT_EQ(proc.total_balls(), 0u);
}

TEST(Leaky, BallAccountingPerRound) {
  Rng rng(3);
  LeakyBinsProcess proc(LoadConfig(32, 1), 0.75, rng);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t before = proc.total_balls();
    const std::uint32_t nonempty = proc.bin_count() - proc.empty_bins();
    const LeakyRoundStats s = proc.step();
    ASSERT_EQ(s.total_balls, before - nonempty + s.arrivals);
    ASSERT_LE(s.arrivals, 32u);
    proc.check_invariants();
  }
}

TEST(Leaky, SubcriticalLambdaIsStable) {
  // lambda = 0.5: mass hovers near a stationary level well below n.
  constexpr std::uint32_t n = 256;
  Rng rng(4);
  LeakyBinsProcess proc(LoadConfig(n, 1), 0.5, rng);
  proc.run(500);  // settle
  double mass = 0.0;
  constexpr int kWindow = 500;
  for (int t = 0; t < kWindow; ++t) {
    mass += static_cast<double>(proc.step().total_balls);
  }
  // Stationary mass per bin for lambda = 0.5 is lambda/(1-lambda) = 1 in
  // the M/M/1-like approximation; allow a broad envelope.
  EXPECT_LT(mass / kWindow / n, 2.5);
  EXPECT_GT(proc.empty_bins(), n / 4);
}

TEST(Leaky, HigherLambdaMeansFewerEmptyBins) {
  constexpr std::uint32_t n = 256;
  auto equilibrium_empty = [](double lambda) {
    Rng rng(5);
    LeakyBinsProcess proc(LoadConfig(n, 1), lambda, rng);
    proc.run(400);
    double sum = 0.0;
    constexpr int kWindow = 400;
    for (int t = 0; t < kWindow; ++t) sum += proc.step().empty_bins;
    return sum / kWindow;
  };
  EXPECT_GT(equilibrium_empty(0.3), equilibrium_empty(0.9));
}

TEST(Leaky, MeanArrivalsMatchLambdaN) {
  constexpr std::uint32_t n = 128;
  Rng rng(6);
  LeakyBinsProcess proc(LoadConfig(n, 1), 0.75, rng);
  double arrivals = 0.0;
  constexpr int kRounds = 2000;
  for (int t = 0; t < kRounds; ++t) {
    arrivals += static_cast<double>(proc.step().arrivals);
  }
  EXPECT_NEAR(arrivals / kRounds, 0.75 * n, 0.05 * n);
}

TEST(Leaky, DeterministicForSeed) {
  auto run = [] {
    Rng rng(7);
    LeakyBinsProcess proc(LoadConfig(32, 1), 0.8, rng);
    proc.run(100);
    return proc.loads();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rbb
