// The mixed-regime process core: m != n, weighted balls, heterogeneous
// bins (DESIGN.md Sect. 5).
//
// Los & Sauerwald's general repeated process decouples the ball count
// from the bin count (m = c * n); the production analogue also carries
// hot keys (balls of unequal integer weight) and unequal servers (bins
// with per-round service rates and finite capacities).  The classical
// core (ball_kernel.hpp) keeps its anonymous-ball representation --
// this sibling template tracks per-bin PER-CLASS counts instead, the
// smallest state that makes weighted accounting exact while staying
// load-shaped (SimProcess-conforming: loads() is still the plain
// per-bin ball count).
//
// Round semantics:
//   1. departures -- bin u releases min(load_u, rate_u) balls.  The
//      j-th departure of bin u picks WHICH ball leaves uniformly among
//      the balls still in the bin (so a class departs proportionally
//      to its share -- the property the statistical oracle suite
//      pins), then draws a uniform destination over [0, n).
//   2. arrivals -- applied in ascending global (u, j) order.  An
//      arrival to a bin at its capacity is DROPPED and counted
//      (dropped_balls / dropped_weight); everything else conserves, so
//      initial totals == current totals + cumulative drops is the
//      conservation invariant check_invariants() enforces.
//   3. stats -- max load, empty bins, max weighted load, and (when any
//      bin has a finite capacity) max utilization, recomputed in the
//      same pass that the sharded commit rescans anyway.
//
// Schedule-free draws: the class pick of departure j of bin u draws on
// slot 2^50 | (j << 32) | u, its destination on 2^51 | (j << 32) | u
// (stream.hpp) -- one slot per (round, bin, departure), so the sharded
// two-phase throw/commit reproduces the sequential counter-stream
// trajectory bit for bit.  Why the ORDER also matches: the sequential
// path applies arrivals in ascending global (u, j); the sharded commit
// drains each destination shard's buffers in ascending source-stripe
// order, each buffer in push order (ascending (u, j) within the
// stripe) -- so per destination bin the arrival order is identical,
// and capacity/drop decisions depend on nothing else.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/kernel/exec.hpp"
#include "core/kernel/pipeline.hpp"
#include "core/kernel/stream.hpp"
#include "core/mixed_config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/serial.hpp"
#include "support/types.hpp"

namespace rbb {

/// End-of-round statistics of the mixed-regime process (rbb namespace
/// like the other round-stats structs, so adapters and tests name it
/// without reaching into kernel::).
struct MixedRoundStats {
  std::uint32_t max_load = 0;
  std::uint32_t empty_bins = 0;
  ball_count_t departures = 0;      // balls released this round
  ball_count_t drops = 0;           // arrivals lost to full bins
  weighted_load_t max_weighted_load = 0;
  ball_count_t total_balls = 0;     // post-round (drops leave the system)
  weighted_load_t total_weight = 0;
};

namespace kernel {

template <typename StreamP, typename Exec>
class MixedProcessCore {
 public:
  using Stream = StreamP;
  using Stats = MixedRoundStats;
  static constexpr bool kShardedExec = Exec::kSharded;

  static_assert(!kShardedExec || Stream::kScheduleFree,
                "sharded execution requires a schedule-free (counter) RNG "
                "stream (see ball_kernel.hpp)");

  MixedProcessCore(MixedSpec spec, Stream stream, ExecOptions options = {})
      : weights_(std::move(spec.weights)),
        rates_(std::move(spec.rates)),
        caps_(std::move(spec.capacities)),
        counts_(std::move(spec.class_counts)),
        stream_(std::move(stream)),
        exec_(spec.bins == 0 ? 1 : spec.bins, options) {
    const std::uint32_t n = spec.bins;
    const std::size_t k = weights_.class_weights.size();
    if (n == 0 || k == 0) {
      throw std::invalid_argument("MixedProcessCore: empty spec");
    }
    if (rates_.size() != n || caps_.size() != n ||
        counts_.size() != static_cast<std::size_t>(n) * k) {
      throw std::invalid_argument("MixedProcessCore: mismatched spec tables");
    }
    for (const std::uint32_t rate : rates_) {
      if (rate >= (1u << 16)) {
        throw std::invalid_argument(
            "MixedProcessCore: service rate exceeds the departure-index "
            "slot space (rate < 2^16)");
      }
    }
    loads_.assign(n, 0);
    wload_.assign(n, 0);
    any_cap_ = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      load_t load = 0;
      weighted_load_t w = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const load_t cnt = counts_[static_cast<std::size_t>(u) * k + c];
        load += cnt;
        w += static_cast<weighted_load_t>(cnt) *
             weights_.class_weights[c];
      }
      loads_[u] = load;
      wload_[u] = w;
      balls_ += load;
      total_weight_ += w;
      if (caps_[u] != 0) {
        any_cap_ = true;
        if (load > caps_[u]) {
          throw std::invalid_argument(
              "MixedProcessCore: initial load exceeds bin capacity");
        }
      }
    }
    if (spec.balls != balls_) {
      throw std::invalid_argument(
          "MixedProcessCore: class counts do not sum to the ball count");
    }
    initial_balls_ = balls_;
    initial_weight_ = total_weight_;
    last_departures_by_class_.assign(k, 0);
    rescan_stats();
    if constexpr (kShardedExec) {
      const ShardPlan& plan = exec_.plan();
      buffers_.resize(static_cast<std::size_t>(plan.stripe_count()) *
                      plan.shard_count());
      acc_.resize(plan.stripe_count());
      class_acc_.assign(static_cast<std::size_t>(plan.stripe_count()) * k, 0);
    }
  }

  /// Executes one synchronous round; returns end-of-round statistics.
  Stats step() {
    if constexpr (kShardedExec) {
      step_sharded();
    } else {
      step_sequential();
    }
    ++round_;
    return current_stats();
  }

  /// Executes `rounds` rounds; returns the stats of the last one (the
  /// current state when rounds == 0).  Multi-round sharded runs take
  /// the pipelined path (pipeline.hpp) when the executor can host a
  /// resident team and RBB_PIPELINE is not 0; trajectories are
  /// bit-identical either way.
  Stats run(std::uint64_t rounds) {
    if constexpr (kShardedExec) {
      if (rounds > 1 && pipeline_enabled() && run_sharded_pipelined(rounds)) {
        return current_stats();
      }
    }
    for (std::uint64_t t = 0; t < rounds; ++t) step();
    return current_stats();
  }

  // --- identity and load-shaped state ---------------------------------------

  [[nodiscard]] std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const LoadConfig& loads() const noexcept { return loads_; }
  [[nodiscard]] load_t max_load() const noexcept { return max_load_; }
  [[nodiscard]] std::uint32_t empty_bins() const noexcept { return empty_; }

  [[nodiscard]] ball_count_t total_balls() const noexcept { return balls_; }
  [[nodiscard]] weighted_load_t total_weight() const noexcept {
    return total_weight_;
  }
  [[nodiscard]] weighted_load_t max_weighted_load() const noexcept {
    return max_wload_;
  }
  /// Max over capacity-bounded bins of load / capacity (0 when no bin
  /// has a finite capacity).
  [[nodiscard]] double max_utilization() const noexcept {
    return max_utilization_;
  }
  /// Cumulative arrivals dropped at full bins since construction.
  [[nodiscard]] ball_count_t dropped_balls() const noexcept {
    return dropped_balls_;
  }
  [[nodiscard]] weighted_load_t dropped_weight() const noexcept {
    return dropped_weight_;
  }

  [[nodiscard]] std::uint32_t class_count() const noexcept {
    return static_cast<std::uint32_t>(weights_.class_weights.size());
  }
  [[nodiscard]] weight_t class_weight(std::uint32_t c) const {
    return weights_.class_weights[c];
  }
  /// Balls of class c currently in bin u.
  [[nodiscard]] load_t class_load(bin_index_t u, std::uint32_t c) const {
    return counts_[static_cast<std::size_t>(u) * class_count() + c];
  }
  [[nodiscard]] weighted_load_t weighted_load(bin_index_t u) const {
    return wload_[u];
  }
  [[nodiscard]] std::uint32_t rate(bin_index_t u) const { return rates_[u]; }
  [[nodiscard]] load_t capacity(bin_index_t u) const { return caps_[u]; }

  /// Per-class departure counts of the last executed round (the
  /// statistical oracle checks these are proportional to class shares).
  [[nodiscard]] const std::vector<ball_count_t>& last_departures_by_class()
      const noexcept {
    return last_departures_by_class_;
  }
  [[nodiscard]] ball_count_t last_departures() const noexcept {
    return last_departures_;
  }
  [[nodiscard]] ball_count_t last_drops() const noexcept {
    return last_drops_;
  }

  [[nodiscard]] const ShardPlan& plan() const noexcept
    requires kShardedExec
  {
    return exec_.plan();
  }

  [[nodiscard]] std::size_t resident_state_bytes() const noexcept {
    std::size_t bytes = loads_.capacity() * sizeof(load_t) +
                        wload_.capacity() * sizeof(weighted_load_t) +
                        counts_.capacity() * sizeof(load_t) +
                        rates_.capacity() * sizeof(std::uint32_t) +
                        caps_.capacity() * sizeof(load_t) +
                        scratch_.capacity() * sizeof(std::uint64_t);
    for (const auto& buf : buffers_) {
      bytes += buf.capacity() * sizeof(std::uint64_t);
    }
    for (const auto& buf : buffers_alt_) {
      bytes += buf.capacity() * sizeof(std::uint64_t);
    }
    bytes += acc_.capacity() * sizeof(StripeAcc) +
             class_acc_.capacity() * sizeof(ball_count_t);
    return bytes;
  }

  /// Adversarial reassignment (Sect. 4.1 semantics, extended to the
  /// mixed regime): replaces the bin-major per-class count table
  /// wholesale.  The adversary relocates balls but cannot mint or
  /// destroy them, so per-class totals must match the current in-system
  /// population and every capacity bound must hold (the initial totals
  /// and drop ledgers are untouched, so conservation survives).  Counts
  /// as a faulty round, not a process round.
  void reassign(const std::vector<load_t>& new_counts) {
    const std::uint32_t n = bin_count();
    const std::uint32_t k = class_count();
    if (new_counts.size() != static_cast<std::size_t>(n) * k) {
      throw std::invalid_argument("reassign: count table shape mismatch");
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      ball_count_t was = 0;
      ball_count_t now = 0;
      for (std::uint32_t u = 0; u < n; ++u) {
        was += counts_[static_cast<std::size_t>(u) * k + c];
        now += new_counts[static_cast<std::size_t>(u) * k + c];
      }
      if (was != now) {
        throw std::invalid_argument("reassign: per-class total changed");
      }
    }
    for (std::uint32_t u = 0; u < n; ++u) {
      load_t load = 0;
      for (std::uint32_t c = 0; c < k; ++c) {
        load += new_counts[static_cast<std::size_t>(u) * k + c];
      }
      if (caps_[u] != 0 && load > caps_[u]) {
        throw std::invalid_argument("reassign: bin capacity exceeded");
      }
    }
    counts_ = new_counts;
    recompute_from_counts();
    rescan_stats();
  }

  /// Serializes the complete trajectory state (DESIGN.md Sect. 7): the
  /// per-class census table, round, drop ledgers, and last-round
  /// reporting fields.  Counter streams draw by (seed, round, slot), so
  /// this closes the state; round-boundary only (the scatter buffers
  /// are provably drained there).
  void snapshot(serial::ByteWriter& w) const
    requires Stream::kScheduleFree
  {
    w.u64(round_);
    w.u64(dropped_balls_);
    w.u64(dropped_weight_);
    w.u64(last_departures_);
    w.u64(last_drops_);
    w.vec(last_departures_by_class_);
    w.vec(counts_);
  }

  /// Inverse of snapshot().  The target must be constructed from the
  /// same spec; the conservation law (initial == restored + dropped) is
  /// re-validated against the constructor's initial totals, so a
  /// payload from a different spec cannot slip through.
  void restore(serial::ByteReader& r)
    requires Stream::kScheduleFree
  {
    const std::uint64_t round = r.u64();
    const ball_count_t dropped_balls = r.u64();
    const weighted_load_t dropped_weight = r.u64();
    const ball_count_t last_departures = r.u64();
    const ball_count_t last_drops = r.u64();
    std::vector<ball_count_t> last_by_class;
    r.vec(last_by_class);
    std::vector<load_t> counts;
    r.vec(counts);
    if (counts.size() != counts_.size() ||
        last_by_class.size() != last_departures_by_class_.size()) {
      throw std::invalid_argument("restore: census shape mismatch");
    }
    counts_ = std::move(counts);
    dropped_balls_ = dropped_balls;
    dropped_weight_ = dropped_weight;
    last_departures_ = last_departures;
    last_drops_ = last_drops;
    last_departures_by_class_ = std::move(last_by_class);
    round_ = round;
    recompute_from_counts();
    if (initial_balls_ != balls_ + dropped_balls_ ||
        initial_weight_ != total_weight_ + dropped_weight_) {
      throw std::invalid_argument(
          "restore: conservation violated (payload from a different spec?)");
    }
    for (std::uint32_t u = 0; u < bin_count(); ++u) {
      if (caps_[u] != 0 && loads_[u] > caps_[u]) {
        throw std::invalid_argument("restore: bin capacity exceeded");
      }
    }
    rescan_stats();
  }

  /// Testing hook: recomputes every piece of incremental bookkeeping
  /// from the per-class counts and throws std::logic_error on drift --
  /// including the conservation law (initial totals == current totals
  /// + cumulative drops) and the capacity bound.
  void check_invariants() const {
    const std::uint32_t n = bin_count();
    const std::uint32_t k = class_count();
    ball_count_t balls = 0;
    weighted_load_t weight = 0;
    load_t max = 0;
    std::uint32_t zeros = 0;
    weighted_load_t max_w = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      load_t load = 0;
      weighted_load_t w = 0;
      for (std::uint32_t c = 0; c < k; ++c) {
        const load_t cnt = counts_[static_cast<std::size_t>(u) * k + c];
        load += cnt;
        w += static_cast<weighted_load_t>(cnt) * weights_.class_weights[c];
      }
      if (load != loads_[u]) {
        throw std::logic_error("MixedProcessCore: loads out of sync");
      }
      if (w != wload_[u]) {
        throw std::logic_error("MixedProcessCore: weighted loads drifted");
      }
      if (caps_[u] != 0 && load > caps_[u]) {
        throw std::logic_error("MixedProcessCore: bin exceeds its capacity");
      }
      balls += load;
      weight += w;
      if (load == 0) ++zeros;
      max = std::max(max, load);
      max_w = std::max(max_w, w);
    }
    if (balls != balls_ || weight != total_weight_) {
      throw std::logic_error("MixedProcessCore: totals drifted");
    }
    if (initial_balls_ != balls_ + dropped_balls_ ||
        initial_weight_ != total_weight_ + dropped_weight_) {
      throw std::logic_error(
          "MixedProcessCore: conservation violated (initial != current "
          "+ dropped)");
    }
    if (max != max_load_ || zeros != empty_ || max_w != max_wload_) {
      throw std::logic_error("MixedProcessCore: round stats out of sync");
    }
    if constexpr (kShardedExec) {
      for (const auto& buf : buffers_) {
        if (!buf.empty()) {
          throw std::logic_error(
              "MixedProcessCore: scatter buffer not drained");
        }
      }
      for (const auto& buf : buffers_alt_) {
        if (!buf.empty()) {
          throw std::logic_error(
              "MixedProcessCore: alternate scatter buffer not drained");
        }
      }
    }
  }

 private:
  [[nodiscard]] Stats current_stats() const noexcept {
    return Stats{max_load_,   empty_,  last_departures_, last_drops_,
                 max_wload_,  balls_,  total_weight_};
  }

  /// Arrivals travel as one packed word: class in the high 32 bits,
  /// destination bin in the low 32.  Sorting-free: push order IS the
  /// canonical order (see header comment).
  [[nodiscard]] static constexpr std::uint64_t pack(std::uint32_t cls,
                                                    bin_index_t dest) noexcept {
    return (static_cast<std::uint64_t>(cls) << 32) | dest;
  }

  /// Picks which class the j-th departure of bin u takes, uniformly
  /// over the balls still in the bin: maps a draw x in [0, load) to
  /// the class whose count range contains x, then removes the ball.
  /// Touching only bin u's row, so stripe-exclusive under sharding.
  std::uint32_t take_class(bin_index_t u, std::uint32_t x) {
    const std::uint32_t k = class_count();
    load_t* row = &counts_[static_cast<std::size_t>(u) * k];
    std::uint32_t c = 0;
    while (c + 1 < k && x >= row[c]) {
      x -= row[c];
      ++c;
    }
    --row[c];
    --loads_[u];
    wload_[u] -= weights_.class_weights[c];
    return c;
  }

  /// Applies one arrival (or drops it at a full bin); returns true if
  /// the ball landed.  Caller owns the destination bin's row.
  bool apply_arrival(bin_index_t v, std::uint32_t cls) {
    if (caps_[v] != 0 && loads_[v] >= caps_[v]) return false;
    ++counts_[static_cast<std::size_t>(v) * class_count() + cls];
    ++loads_[v];
    wload_[v] += weights_.class_weights[cls];
    return true;
  }

  /// Rebuilds the derived per-bin loads/weighted loads and the system
  /// totals from the per-class census (reassign / restore epilogue;
  /// same derivation as the constructor).
  void recompute_from_counts() {
    const std::uint32_t n = bin_count();
    const std::uint32_t k = class_count();
    balls_ = 0;
    total_weight_ = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      load_t load = 0;
      weighted_load_t w = 0;
      for (std::uint32_t c = 0; c < k; ++c) {
        const load_t cnt = counts_[static_cast<std::size_t>(u) * k + c];
        load += cnt;
        w += static_cast<weighted_load_t>(cnt) * weights_.class_weights[c];
      }
      loads_[u] = load;
      wload_[u] = w;
      balls_ += load;
      total_weight_ += w;
    }
  }

  void rescan_stats() {
    const std::uint32_t n = bin_count();
    max_load_ = 0;
    empty_ = 0;
    max_wload_ = 0;
    max_utilization_ = 0.0;
    for (std::uint32_t u = 0; u < n; ++u) {
      const load_t load = loads_[u];
      if (load == 0) {
        ++empty_;
      } else if (load > max_load_) {
        max_load_ = load;
      }
      max_wload_ = std::max(max_wload_, wload_[u]);
      if (caps_[u] != 0) {
        max_utilization_ =
            std::max(max_utilization_, static_cast<double>(load) /
                                           static_cast<double>(caps_[u]));
      }
    }
  }

  // --- the sequential round -------------------------------------------------

  void step_sequential() {
    const std::uint32_t n = bin_count();
    const std::uint64_t r = round_;

    std::fill(last_departures_by_class_.begin(),
              last_departures_by_class_.end(), 0);
    scratch_.clear();

    // Departure walk: bin u releases min(load, rate) balls; each pick
    // removes a uniform ball (class proportional to counts) and draws
    // a uniform destination.  Draws are keyed by (round, j, u) on both
    // streams' slot spaces, scalar on purpose: the class-draw bound
    // shrinks per pick, so no two draws share a plane.
    for (bin_index_t u = 0; u < n; ++u) {
      const std::uint32_t releases =
          static_cast<std::uint32_t>(std::min<load_t>(loads_[u], rates_[u]));
      for (std::uint32_t j = 0; j < releases; ++j) {
        const load_t remaining = loads_[u];
        std::uint32_t x;
        bin_index_t dest;
        if constexpr (Stream::kScheduleFree) {
          x = stream_.index(r, mixed_class_slot(j, u), remaining);
          dest = stream_.index(r, mixed_dest_slot(j, u), n);
        } else {
          x = stream_.rng().index(remaining);
          dest = stream_.rng().index(n);
        }
        const std::uint32_t cls = take_class(u, x);
        ++last_departures_by_class_[cls];
        scratch_.push_back(pack(cls, dest));
      }
    }
    last_departures_ = scratch_.size();

    // Arrivals in ascending global (u, j) order == push order.
    ball_count_t drops = 0;
    weighted_load_t dropped_w = 0;
    for (const std::uint64_t word : scratch_) {
      const auto cls = static_cast<std::uint32_t>(word >> 32);
      const auto dest = static_cast<bin_index_t>(word);
      if (!apply_arrival(dest, cls)) {
        ++drops;
        dropped_w += weights_.class_weights[cls];
      }
    }
    finish_round(drops, dropped_w);
  }

  // --- the sharded round ----------------------------------------------------

  /// Per-stripe accumulator, cache-line padded so stripe tasks never
  /// share a line (per-class departure counts live in class_acc_).
  /// Per-round fields are reset by each round's phase bodies; cum_*
  /// fields accumulate across a pipelined run.
  struct alignas(64) StripeAcc {
    ball_count_t departures = 0;
    ball_count_t drops = 0;
    weighted_load_t dropped_weight = 0;
    load_t max = 0;
    std::uint32_t zeros = 0;
    weighted_load_t max_w = 0;
    double max_util = 0.0;
    ball_count_t cum_drops = 0;
    weighted_load_t cum_dropped_weight = 0;
  };

  /// Phase 1 (throw) for one stripe of round r: walks its own bins,
  /// removes the departing balls (class picks touch only owned rows)
  /// and scatters the packed (class, destination) words into its rows
  /// of `bufs` (the parity-selected buffer base) in ascending (u, j)
  /// order.  The class-draw bound `remaining` reads only own-bin loads,
  /// whose value at throw start is the post-commit state of the
  /// previous round -- schedule-independent.
  void throw_stripe(std::uint32_t g, std::uint64_t r,
                    std::vector<std::uint64_t>* bufs)
    requires kShardedExec
  {
    const obs::ScopedPhase phase_span(obs::Phase::kThrow);
    const std::uint32_t n = bin_count();
    const std::uint32_t k = class_count();
    const ShardPlan& plan = exec_.plan();
    StripeAcc& acc = acc_[g];
    acc.departures = 0;
    ball_count_t* dep_by_class = &class_acc_[static_cast<std::size_t>(g) * k];
    std::fill(dep_by_class, dep_by_class + k, 0);
    std::vector<std::uint64_t>* row =
        bufs + static_cast<std::size_t>(g) * plan.shard_count();
    const bin_index_t begin = plan.stripe_begin_bin(g);
    const bin_index_t end = plan.stripe_end_bin(g);
    for (bin_index_t u = begin; u < end; ++u) {
      const std::uint32_t releases =
          static_cast<std::uint32_t>(std::min<load_t>(loads_[u], rates_[u]));
      for (std::uint32_t j = 0; j < releases; ++j) {
        const load_t remaining = loads_[u];
        const std::uint32_t x =
            stream_.index(r, mixed_class_slot(j, u), remaining);
        const bin_index_t dest = stream_.index(r, mixed_dest_slot(j, u), n);
        const std::uint32_t cls = take_class(u, x);
        ++dep_by_class[cls];
        ++acc.departures;
        row[plan.shard_of(dest)].push_back(pack(cls, dest));
      }
    }
  }

  /// Phase 2 (commit) for one stripe: drains the `bufs` buffers
  /// addressed to its shards -- ascending source stripe, each buffer in
  /// push order, which per destination bin reproduces the sequential
  /// (u, j) arrival order, so capacity/drop decisions are bit-identical
  /// -- then rescans its bins for the round statistics.
  void commit_stripe(std::uint32_t g, std::uint64_t /*r*/,
                     std::vector<std::uint64_t>* bufs)
    requires kShardedExec
  {
    const obs::ScopedPhase phase_span(obs::Phase::kCommit);
    const ShardPlan& plan = exec_.plan();
    const std::uint32_t shard_count = plan.shard_count();
    const std::uint32_t stripes = plan.stripe_count();
    StripeAcc& acc = acc_[g];
    acc.drops = 0;
    acc.dropped_weight = 0;
    acc.max = 0;
    acc.zeros = 0;
    acc.max_w = 0;
    acc.max_util = 0.0;
    for (std::uint32_t s = plan.stripe_begin_shard(g);
         s < plan.stripe_end_shard(g); ++s) {
      for (std::uint32_t src = 0; src < stripes; ++src) {
        std::vector<std::uint64_t>& buf =
            bufs[static_cast<std::size_t>(src) * shard_count + s];
        for (const std::uint64_t word : buf) {
          const auto cls = static_cast<std::uint32_t>(word >> 32);
          const auto dest = static_cast<bin_index_t>(word);
          if (!apply_arrival(dest, cls)) {
            ++acc.drops;
            acc.dropped_weight += weights_.class_weights[cls];
          }
        }
        buf.clear();
      }
      const std::uint64_t rs0 = obs::enabled() ? obs::now_ns() : 0;
      for (bin_index_t u = plan.shard_begin(s); u < plan.shard_end(s); ++u) {
        const load_t load = loads_[u];
        if (load == 0) {
          ++acc.zeros;
        } else if (load > acc.max) {
          acc.max = load;
        }
        acc.max_w = std::max(acc.max_w, wload_[u]);
        if (caps_[u] != 0) {
          acc.max_util =
              std::max(acc.max_util, static_cast<double>(load) /
                                         static_cast<double>(caps_[u]));
        }
      }
      if (rs0 != 0) {
        const std::uint64_t rs1 = obs::now_ns();
        obs::add_phase_ns(obs::Phase::kRescan, rs1 - rs0);
        obs::record_span("rescan", rs0, rs1);
      }
    }
    acc.cum_drops += acc.drops;
    acc.cum_dropped_weight += acc.dropped_weight;
  }

  void step_sharded()
    requires kShardedExec
  {
    const std::uint32_t k = class_count();
    const std::uint64_t r = round_;
    const std::uint32_t stripes = exec_.plan().stripe_count();

    exec_.stripes().for_stripes(stripes, [&](std::uint32_t g) {
      throw_stripe(g, r, buffers_.data());
    });
    exec_.stripes().for_stripes(stripes, [&](std::uint32_t g) {
      commit_stripe(g, r, buffers_.data());
    });

    // Fixed-order reduction over stripes.
    ball_count_t departures = 0;
    ball_count_t drops = 0;
    weighted_load_t dropped_w = 0;
    max_load_ = 0;
    empty_ = 0;
    max_wload_ = 0;
    max_utilization_ = 0.0;
    std::fill(last_departures_by_class_.begin(),
              last_departures_by_class_.end(), 0);
    for (std::uint32_t g = 0; g < stripes; ++g) {
      const StripeAcc& acc = acc_[g];
      departures += acc.departures;
      drops += acc.drops;
      dropped_w += acc.dropped_weight;
      max_load_ = std::max(max_load_, acc.max);
      empty_ += acc.zeros;
      max_wload_ = std::max(max_wload_, acc.max_w);
      max_utilization_ = std::max(max_utilization_, acc.max_util);
      for (std::uint32_t c = 0; c < k; ++c) {
        last_departures_by_class_[c] +=
            class_acc_[static_cast<std::size_t>(g) * k + c];
      }
    }
    last_departures_ = departures;
    balls_ -= drops;
    total_weight_ -= dropped_w;
    dropped_balls_ += drops;
    dropped_weight_ += dropped_w;
    last_drops_ = drops;
    if (drops != 0) obs::add(obs::Counter::kMixedDrops, drops);
  }

  /// The pipelined multi-round path (pipeline.hpp): one resident team,
  /// buffers alternating by round parity, bit-identical to `rounds`
  /// barriered steps.  class_acc_ rows are per-stripe and reset by each
  /// round's throw, so after the run they hold the LAST round's
  /// per-class departures -- exactly what last_departures_by_class_
  /// reports.  Returns false when no team can be hosted.
  bool run_sharded_pipelined(std::uint64_t rounds)
    requires kShardedExec
  {
    const ShardPlan& plan = exec_.plan();
    const std::uint32_t k = class_count();
    const std::uint32_t stripes = plan.stripe_count();
    const std::uint32_t width = std::min(stripes, exec_.stripes().team_width());
    if (width < 2) return false;
    if (buffers_alt_.empty()) buffers_alt_.resize(buffers_.size());
    for (StripeAcc& acc : acc_) {
      acc.cum_drops = 0;
      acc.cum_dropped_weight = 0;
    }
    const std::uint64_t r0 = round_;
    const auto bufs = [this](std::uint64_t i) {
      return (i & 1) == 0 ? buffers_.data() : buffers_alt_.data();
    };
    const bool ran = run_pipeline(
        exec_.stripes(), stripes, width, rounds, /*has_choose=*/false,
        [&](std::uint32_t g, std::uint64_t i) {
          throw_stripe(g, r0 + i, bufs(i));
        },
        [](std::uint32_t, std::uint64_t) {},
        [&](std::uint32_t g, std::uint64_t i) {
          commit_stripe(g, r0 + i, bufs(i));
        });
    if (!ran) return false;

    // One reduction for the run: last round's stats from the per-round
    // fields, cumulative drop accounting from the cum_* fields.
    ball_count_t departures = 0;
    ball_count_t total_drops = 0;
    weighted_load_t total_dropped_w = 0;
    max_load_ = 0;
    empty_ = 0;
    max_wload_ = 0;
    max_utilization_ = 0.0;
    std::fill(last_departures_by_class_.begin(),
              last_departures_by_class_.end(), 0);
    ball_count_t last_drops = 0;
    for (std::uint32_t g = 0; g < stripes; ++g) {
      const StripeAcc& acc = acc_[g];
      departures += acc.departures;
      last_drops += acc.drops;
      total_drops += acc.cum_drops;
      total_dropped_w += acc.cum_dropped_weight;
      max_load_ = std::max(max_load_, acc.max);
      empty_ += acc.zeros;
      max_wload_ = std::max(max_wload_, acc.max_w);
      max_utilization_ = std::max(max_utilization_, acc.max_util);
      for (std::uint32_t c = 0; c < k; ++c) {
        last_departures_by_class_[c] +=
            class_acc_[static_cast<std::size_t>(g) * k + c];
      }
    }
    last_departures_ = departures;
    balls_ -= total_drops;
    total_weight_ -= total_dropped_w;
    dropped_balls_ += total_drops;
    dropped_weight_ += total_dropped_w;
    last_drops_ = last_drops;
    if (total_drops != 0) obs::add(obs::Counter::kMixedDrops, total_drops);
    round_ += rounds;
    return true;
  }

  /// Sequential-path epilogue: totals, drop accounting, stats rescan.
  void finish_round(ball_count_t drops, weighted_load_t dropped_w) {
    balls_ -= drops;
    total_weight_ -= dropped_w;
    dropped_balls_ += drops;
    dropped_weight_ += dropped_w;
    last_drops_ = drops;
    if (drops != 0) obs::add(obs::Counter::kMixedDrops, drops);
    rescan_stats();
  }

  WeightProfile weights_;
  std::vector<std::uint32_t> rates_;
  std::vector<load_t> caps_;
  std::vector<load_t> counts_;  // bin-major per-class counts, n * k
  Stream stream_;
  Exec exec_;

  LoadConfig loads_;                    // per-bin ball counts (SimProcess)
  std::vector<weighted_load_t> wload_;  // per-bin weighted loads
  bool any_cap_ = false;

  ball_count_t balls_ = 0;
  weighted_load_t total_weight_ = 0;
  ball_count_t initial_balls_ = 0;
  weighted_load_t initial_weight_ = 0;
  ball_count_t dropped_balls_ = 0;
  weighted_load_t dropped_weight_ = 0;

  std::uint64_t round_ = 0;
  load_t max_load_ = 0;
  std::uint32_t empty_ = 0;
  weighted_load_t max_wload_ = 0;
  double max_utilization_ = 0.0;
  ball_count_t last_departures_ = 0;
  ball_count_t last_drops_ = 0;
  std::vector<ball_count_t> last_departures_by_class_;

  std::vector<std::uint64_t> scratch_;  // sequential (class, dest) words

  /// buffers_[stripe * shard_count + target_shard]: packed arrivals
  /// thrown by `stripe` into `target_shard` this round.  Sharded only.
  /// buffers_alt_ is the odd-parity twin of the pipelined path, sized
  /// lazily on first use.
  std::vector<std::vector<std::uint64_t>> buffers_;
  std::vector<std::vector<std::uint64_t>> buffers_alt_;
  std::vector<StripeAcc> acc_;
  std::vector<ball_count_t> class_acc_;  // stripes x k departure counts
};

}  // namespace kernel
}  // namespace rbb
