// Tests for the counter-based generator: known-answer vectors for the
// Philox4x32-10 block function, the (seed, round, slot) stream-splitting
// contract, and the bounded-index draw.
#include "support/counter_rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace rbb {
namespace {

using Block = std::array<std::uint32_t, 4>;

// --- known-answer vectors ---------------------------------------------------
// From the Random123 reference distribution (kat_vectors, "philox 4x32
// 10"): counter[4], key[2] -> output[4].  These pin our implementation
// bit-for-bit to the published generator.

TEST(Philox4x32, KnownAnswerAllZeros) {
  const Block out = philox4x32({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out, (Block{0x6627e8d5u, 0xe169c58du, 0xbc57ac4cu, 0x9b00dbd8u}));
}

TEST(Philox4x32, KnownAnswerAllOnes) {
  const Block out = philox4x32(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out, (Block{0x408f276du, 0x41c83b0eu, 0xa20bc7c6u, 0x6d5451fdu}));
}

TEST(Philox4x32, KnownAnswerPiDigits) {
  const Block out = philox4x32(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(out, (Block{0xd16cfe09u, 0x94fdccebu, 0x5001e420u, 0x24126ea1u}));
}

// --- stream splitting -------------------------------------------------------

TEST(CounterRng, DrawIsAPureFunctionOfSeedRoundSlot) {
  const CounterRng a(42);
  const CounterRng b(42);
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::uint64_t slot = 0; slot < 64; ++slot) {
      EXPECT_EQ(a.block(round, slot), b.block(round, slot));
      EXPECT_EQ(a.index(round, slot, 1000), b.index(round, slot, 1000));
    }
  }
}

TEST(CounterRng, DistinctCoordinatesGiveDistinctBlocks) {
  // Philox is a bijection of the counter for a fixed key, so distinct
  // (round, slot) pairs can never collide.
  const CounterRng rng(7);
  std::set<Block> seen;
  for (std::uint64_t round = 0; round < 16; ++round) {
    for (std::uint64_t slot = 0; slot < 256; ++slot) {
      EXPECT_TRUE(seen.insert(rng.block(round, slot)).second)
          << "collision at round=" << round << " slot=" << slot;
    }
  }
}

TEST(CounterRng, SeedsAndStreamsDecorrelate) {
  const CounterRng a(1);
  const CounterRng b(2);
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.block(0, 0), b.block(0, 0));
  // The (seed, stream) constructor mirrors Rng(seed, stream).
  const CounterRng s0(9, 0);
  const CounterRng s1(9, 1);
  EXPECT_NE(s0.key(), s1.key());
  EXPECT_NE(s0.block(3, 5), s1.block(3, 5));
}

TEST(CounterRng, CopiesAreInterchangeable) {
  const CounterRng original(123);
  const CounterRng copy = original;  // no sequence position to diverge
  EXPECT_EQ(original.block(17, 4), copy.block(17, 4));
}

// --- bounded index ----------------------------------------------------------

TEST(CounterRng, IndexStaysInRange) {
  const CounterRng rng(11);
  for (const std::uint32_t n : {1u, 2u, 3u, 10u, 4096u, 1000003u}) {
    for (std::uint64_t slot = 0; slot < 512; ++slot) {
      EXPECT_LT(rng.index(0, slot, n), n);
    }
  }
}

TEST(CounterRng, IndexOfOneIsAlwaysZero) {
  const CounterRng rng(5);
  for (std::uint64_t slot = 0; slot < 64; ++slot) {
    EXPECT_EQ(rng.index(9, slot, 1), 0u);
  }
}

TEST(CounterRng, IndexLooksUniformAcrossSlots) {
  // Chi-square-lite: 64k draws over 16 buckets; each bucket expects 4096.
  // A bound of +-10% (~6 sigma) keeps the test deterministic and tight.
  const CounterRng rng(2024);
  std::vector<std::uint32_t> hits(16, 0);
  constexpr std::uint64_t kDraws = 65536;
  for (std::uint64_t slot = 0; slot < kDraws; ++slot) {
    ++hits[rng.index(1, slot, 16)];
  }
  for (std::uint32_t bucket = 0; bucket < 16; ++bucket) {
    EXPECT_NEAR(static_cast<double>(hits[bucket]), 4096.0, 410.0)
        << "bucket " << bucket;
  }
}

TEST(CounterRng, IndexLooksUniformAcrossRounds) {
  // The same slot across rounds must also decorrelate (the kernel uses
  // bin index as the slot every round).
  const CounterRng rng(77);
  std::vector<std::uint32_t> hits(8, 0);
  constexpr std::uint64_t kDraws = 32768;
  for (std::uint64_t round = 0; round < kDraws; ++round) {
    ++hits[rng.index(round, 123, 8)];
  }
  for (std::uint32_t bucket = 0; bucket < 8; ++bucket) {
    EXPECT_NEAR(static_cast<double>(hits[bucket]), 4096.0, 410.0)
        << "bucket " << bucket;
  }
}

TEST(CounterRng, UniformIsInUnitInterval) {
  const CounterRng rng(31);
  double sum = 0;
  for (std::uint64_t slot = 0; slot < 4096; ++slot) {
    const double u = rng.uniform(2, slot);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 4096.0, 0.5, 0.02);
}

}  // namespace
}  // namespace rbb
