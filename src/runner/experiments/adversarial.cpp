// E9 -- Sect. 4.1: an adversary that arbitrarily reassigns all tokens
// once every gamma*n rounds (gamma >= 6) inflates the cover time by at
// most a constant factor; plus the bounded-budget severity ablation.
#include "analysis/experiments.hpp"
#include "core/process.hpp"
#include "runner/registry.hpp"

namespace rbb::runner {

void register_adversarial(Registry& registry) {
  Experiment e;
  e.name = "adversarial";
  e.claim = "E9";
  e.title =
      "cover time under periodic adversarial reassignment (Sect. 4.1)";
  e.description =
      "Per fault period gamma*n and strategy (all-to-one, random), the "
      "cover time vs the fault-free baseline and the inflation factor "
      "(predicted O(1); faults more frequent than ~6n start to hurt).  A "
      "second table ablates fault severity: a bounded-budget adversary "
      "moves only k balls onto one bin, and recovery scales with k, "
      "saturating at the full Theorem-1 O(n) for k = n.";
  e.params = {
      {"n", ParamSpec::Type::kU64, "0", "nodes/tokens (0 = scale default)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 10);
    const std::uint32_t n =
        ctx.params.u64("n") != 0
            ? ctx.params.u32("n")
            : by_scale<std::uint32_t>(ctx.scale, 128, 512, 1024);
    const std::uint64_t seed = ctx.seed();

    // Fault-free baseline.
    CoverTimeParams base;
    base.n = n;
    base.trials = trials;
    base.seed = seed;
    const CoverTimeResult clean = run_cover_time(base);

    ResultSet rs;
    Table& table = rs.add_table(
        "E9_adversarial",
        "cover time under periodic adversarial reassignment (Sect. 4.1)",
        {"gamma (period/n)", "strategy", "cover (mean)",
         "inflation vs clean", "max load seen", "timeouts"});
    table.row()
        .cell(std::string("no faults"))
        .cell(std::string("-"))
        .cell(clean.cover_time.mean(), 0)
        .cell(1.0, 2)
        .cell(clean.max_load_seen.mean(), 1)
        .cell(std::uint64_t{clean.timeouts});
    for (const std::uint64_t gamma : {6ull, 10ull, 20ull}) {
      for (const FaultStrategy strategy :
           {FaultStrategy::kAllToOne, FaultStrategy::kRandom}) {
        CoverTimeParams p = base;
        p.fault_period = gamma * n;
        p.fault_strategy = strategy;
        const CoverTimeResult r = run_cover_time(p);
        const double inflation =
            clean.cover_time.mean() > 0
                ? r.cover_time.mean() / clean.cover_time.mean()
                : 0.0;
        table.row()
            .cell(gamma)
            .cell(std::string(to_string(strategy)))
            .cell(r.cover_time.mean(), 0)
            .cell(inflation, 2)
            .cell(r.max_load_seen.mean(), 1)
            .cell(std::uint64_t{r.timeouts});
      }
    }

    // Severity ablation: a bounded-budget adversary moves only k balls
    // onto one bin; recovery should scale with the fault size.
    Table& severity = rs.add_table(
        "E9b_fault_severity",
        "bounded-budget adversary: recovery scales with fault size",
        {"fault size k", "k / n", "spike max load",
         "recovery rounds (mean)", "recovery / n"});
    for (const double frac : {0.125, 0.25, 0.5, 1.0}) {
      const auto k =
          static_cast<std::uint64_t>(frac * static_cast<double>(n));
      OnlineMoments recovery;
      OnlineMoments spike;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        Rng rng(seed + 31, trial);
        RepeatedBallsProcess proc(
            make_config(InitialConfig::kOnePerBin, n, n, rng), rng);
        proc.run(4ull * n);  // reach equilibrium
        proc.reassign(apply_partial_fault(proc.loads(), k));
        spike.add(static_cast<double>(proc.max_load()));
        std::uint64_t t = 0;
        while (!proc.is_legitimate(4.0) && t < 64ull * n) {
          proc.step();
          ++t;
        }
        recovery.add(static_cast<double>(t));
      }
      severity.row()
          .cell(k)
          .cell(frac, 3)
          .cell(spike.mean(), 1)
          .cell(recovery.mean(), 1)
          .cell(recovery.mean() / n, 3);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
