// Analytic bounds and exact probabilities quoted by the paper.
//
// These functions reproduce the *predicted* side of every experiment
// table: the Chernoff bounds of Appendix A (eqs. (6) and (7)), the
// Lemma-5 absorption tail e^{-t/144}, the O(sqrt(t)) comparison bound of
// [Becchetti et al., SODA 2015] discussed in Sect. 1.2/3.1, and the
// classical one-shot balls-into-bins maximum-load asymptotics
// Theta(log n / log log n) that lower-bounds the repeated process.
#pragma once

#include <cstdint>

namespace rbb {

/// log(k!) via lgamma; exact to double precision.
[[nodiscard]] double log_factorial(std::uint64_t k);

/// log C(n, k); requires k <= n.
[[nodiscard]] double log_binomial_coefficient(std::uint64_t n,
                                              std::uint64_t k);

/// Exact log pmf of Binomial(n, p) at k (p in [0,1], k <= n).
[[nodiscard]] double log_binomial_pmf(std::uint64_t n, double p,
                                      std::uint64_t k);

/// Exact pmf of Binomial(n, p) at k.
[[nodiscard]] double binomial_pmf(std::uint64_t n, double p, std::uint64_t k);

/// Exact upper tail P(X >= k) for X ~ Binomial(n, p), by pmf summation.
/// O(n - k) time; intended for test oracles, not hot paths.
[[nodiscard]] double binomial_upper_tail(std::uint64_t n, double p,
                                         std::uint64_t k);

/// Chernoff lower-tail bound, paper Appendix A eq. (6):
///   P(X <= (1 - delta) muL) <= exp(-delta^2 muL / 2),  delta in (0, 1).
[[nodiscard]] double chernoff_lower_bound(double mu_low, double delta);

/// Chernoff upper-tail bound, paper Appendix A eq. (7):
///   P(X >= (1 + delta) muH) <= exp(-delta^2 muH / 3),  delta in (0, 1).
[[nodiscard]] double chernoff_upper_bound(double mu_high, double delta);

/// Lemma 5 tail bound: P(tau > t) <= exp(-t / 144) for t >= 8k.
[[nodiscard]] double zchain_tail_bound(double t);

/// The pre-existing max-load bound of [12] (SODA 2015) after t rounds,
/// O(sqrt(t)): returned as c * sqrt(t) with the dimensionless constant c
/// exposed so plots can show the curve family.
[[nodiscard]] double sqrt_t_bound(double t, double c = 1.0);

/// First-order asymptotics of the one-shot balls-into-bins maximum load
/// with n balls in n bins: log n / log log n * (1 + o(1)).  Requires
/// n >= 3 (log log n > 0).
[[nodiscard]] double oneshot_max_load_asymptotic(std::uint64_t n);

/// Expected cover time of a single random walk on the complete graph K_n
/// with u.a.r. jumps (coupon collector): n * H_n.
[[nodiscard]] double coupon_collector_mean(std::uint64_t n);

/// The paper's parallel cover-time scale for n tokens on K_n:
/// n * (log2 n)^2 (Corollary 1 normalization used throughout the benches).
[[nodiscard]] double parallel_cover_scale(std::uint64_t n);

/// log2(n) as a double; requires n >= 1.
[[nodiscard]] double log2n(std::uint64_t n);

}  // namespace rbb
