// Kernel throughput benchmarks (google-benchmark) covering the design
// ablations from DESIGN.md Sect. 3:
//   D1 -- Tetris arrival sampling: ball-by-ball vs multinomial splitting,
//   D2 -- load-only kernel vs identity-tracking token process,
//   D3 -- the incremental max/empty bookkeeping vs a full rescan,
//   D4 -- xoshiro256++ vs std::mt19937_64 raw throughput,
// plus the absolute rounds/second of every process in the repository.
#include <benchmark/benchmark.h>

#include <random>

#include "baselines/repeated_dchoices.hpp"
#include "core/config.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "engine/engine.hpp"
#include "markov/rbb_chain.hpp"
#include "support/samplers.hpp"
#include "tetris/tetris.hpp"

namespace {

using namespace rbb;

void BM_RepeatedBallsRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  RepeatedBallsProcess proc(make_config(InitialConfig::kOnePerBin, n, n, rng),
                            rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RepeatedBallsRound)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Arg(1000000);

// The same kernel driven through Engine<P> with two observers attached:
// the engine's compile-time composition must add nothing measurable over
// the raw step() loop above.
void BM_EngineRepeatedBallsRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  Engine engine(RepeatedBallsProcess(
      make_config(InitialConfig::kOnePerBin, n, n, rng), rng));
  WindowMaxLoad wmax;
  MinEmptyFraction memp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_rounds(1, wmax, memp));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EngineRepeatedBallsRound)->Arg(1024)->Arg(8192)->Arg(65536)
    ->Arg(1000000);

// D2: the identity-tracking process pays for queue manipulation and
// per-token bookkeeping; this quantifies the load-only kernel's edge.
void BM_TokenProcessRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = i;
  TokenProcess::Options options;
  options.track_visits = false;
  TokenProcess proc(n, std::move(placement), options, Rng(2));
  for (auto _ : state) {
    proc.step();
    benchmark::DoNotOptimize(proc.round());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TokenProcessRound)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TokenProcessRoundWithVisits(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = i;
  TokenProcess::Options options;
  options.track_visits = true;
  TokenProcess proc(n, std::move(placement), options, Rng(3));
  for (auto _ : state) {
    proc.step();
    benchmark::DoNotOptimize(proc.round());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TokenProcessRoundWithVisits)->Arg(1024)->Arg(8192);

// D1: Tetris arrival sampling strategies.
void BM_TetrisRoundBallByBall(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(4);
  TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng), rng, 0,
                     ArrivalSampling::kBallByBall);
  for (auto _ : state) benchmark::DoNotOptimize(proc.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TetrisRoundBallByBall)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TetrisRoundSplitSampling(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(5);
  TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng), rng, 0,
                     ArrivalSampling::kSplit);
  for (auto _ : state) benchmark::DoNotOptimize(proc.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TetrisRoundSplitSampling)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_RepeatedDChoicesRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(6);
  RepeatedDChoicesProcess proc(
      make_config(InitialConfig::kOnePerBin, n, n, rng), 2, rng);
  for (auto _ : state) benchmark::DoNotOptimize(proc.step());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RepeatedDChoicesRound)->Arg(1024)->Arg(8192);

// D3: the step() already maintains max/empty incrementally; this measures
// what a naive per-round rescan would add on top.
void BM_FullRescanOverhead(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(7);
  RepeatedBallsProcess proc(make_config(InitialConfig::kOnePerBin, n, n, rng),
                            rng);
  for (auto _ : state) {
    proc.step();
    // The rescan a non-incremental implementation would pay per round:
    benchmark::DoNotOptimize(max_load(proc.loads()));
    benchmark::DoNotOptimize(empty_bins(proc.loads()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FullRescanOverhead)->Arg(8192)->Arg(65536);

// D4: raw generator throughput.
void BM_RngXoshiro(benchmark::State& state) {
  Rng rng(8);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngXoshiro);

void BM_RngMt19937(benchmark::State& state) {
  std::mt19937_64 rng(8);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngMt19937);

void BM_RngBounded(benchmark::State& state) {
  Rng rng(9);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng.below(1000003);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngBounded);

void BM_BinomialTetrisLaw(benchmark::State& state) {
  // The Z-chain's hot sampler: Bin(3n/4, 1/n), inversion path.
  Rng rng(10);
  const BinomialSampler sampler(768, 1.0 / 1024.0);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += sampler(rng);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinomialTetrisLaw);

void BM_BinomialBtrd(benchmark::State& state) {
  // The splitting sampler's hot path: large-np BTRD draws.
  Rng rng(11);
  const BinomialSampler sampler(100000, 0.3);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += sampler(rng);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinomialBtrd);

// ---- exact-chain kernels (markov/): matrix construction and the two
// stationary solvers (direct Gaussian solve vs power iteration).  Arg is
// n (= m); the state count C(2n-1, n-1) grows ~4^n.
void BM_ExactMatrixBuild(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const StateSpace space(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_rbb_transition_matrix(space));
  }
  state.SetLabel(std::to_string(space.size()) + " states");
}
BENCHMARK(BM_ExactMatrixBuild)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_StationaryDirectSolve(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const StateSpace space(n, n);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stationary_distribution(p));
  }
}
BENCHMARK(BM_StationaryDirectSolve)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_StationaryPowerIteration(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const StateSpace space(n, n);
  const DenseMatrix p = build_rbb_transition_matrix(space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stationary_by_power_iteration(p, 1e-12));
  }
}
BENCHMARK(BM_StationaryPowerIteration)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
