// Shared statistics for the seeded oracle suites in tests/statistical/.
//
// Every test here runs at a FIXED seed, so the checks are deterministic
// regressions, not flaky hypothesis tests -- but the acceptance
// thresholds are still chosen generously (roughly the p < 1e-4 tail) so
// that re-seeding or resizing a suite stays overwhelmingly likely to
// pass when the underlying draws are correct.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rbb::testing {

/// Pearson chi-square statistic of observed counts against expected
/// probabilities (which must sum to ~1).
inline double chi_square(const std::vector<std::uint64_t>& observed,
                         const std::vector<double>& expected_probability) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : observed) total += c;
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected =
        expected_probability[i] * static_cast<double>(total);
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

/// Uniform-expectation convenience: every cell at probability 1/k.
inline double chi_square_uniform(const std::vector<std::uint64_t>& observed) {
  return chi_square(
      observed, std::vector<double>(observed.size(),
                                    1.0 / static_cast<double>(
                                              observed.size())));
}

/// Generous chi-square acceptance bound for df degrees of freedom:
/// mean + 4 standard deviations + slack, past the p ~ 1e-4 tail for the
/// df sizes the suites use (the normal approximation of chi^2_df).
inline double chi_square_bound(std::size_t df) {
  const double d = static_cast<double>(df);
  return d + 4.0 * std::sqrt(2.0 * d) + 4.0;
}

/// One-sample Kolmogorov-Smirnov statistic against Uniform[0, 1).
/// `samples` is sorted in place.
inline double ks_uniform(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(samples[i] - lo, hi - samples[i]));
  }
  return d;
}

/// Generous KS acceptance bound: 2 / sqrt(n) sits past the p ~ 7e-4
/// tail of the Kolmogorov distribution.
inline double ks_bound(std::size_t n) {
  return 2.0 / std::sqrt(static_cast<double>(n));
}

}  // namespace rbb::testing
