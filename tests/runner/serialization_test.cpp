// Golden-file tests for the runner's machine-readable renderings.
//
// The JSON and CSV outputs are a public interface: sweep tooling and the
// BENCH_*.json trajectory records parse them, so key order, metadata
// fields, and the number-vs-string cell rule are pinned byte-exactly
// here.  Any intentional schema change must update these goldens (and
// bump the schema tag).
#include <gtest/gtest.h>

#include "runner/result.hpp"

namespace rbb::runner {
namespace {

RunMeta golden_meta() {
  RunMeta meta;
  meta.experiment = "stability";
  meta.claim = "E1";
  meta.title = "window max load stays O(log n)";
  meta.scale = "smoke";
  meta.seed = 7;
  meta.params = {
      {"seed", ParamSpec::Type::kU64, "7"},
      {"trials", ParamSpec::Type::kU64, "2"},
      {"beta", ParamSpec::Type::kF64, "4.0"},
      {"label", ParamSpec::Type::kString, "a \"quoted\" name"},
      {"verbose", ParamSpec::Type::kFlag, "true"},
  };
  meta.git_rev = "deadbeef";
  meta.wall_seconds = 0.125;
  meta.parallelism = {.hardware_concurrency = 8,
                      .threads_requested = 2,
                      .runnable_threads = 2,
                      .repeat = 3};
  return meta;
}

ResultSet golden_results() {
  ResultSet rs;
  Table& t = rs.add_table("E1_stability", "a titled, table",
                          {"n", "max load", "label"});
  t.row().cell(std::uint64_t{128}).cell(0.5, 3).cell(
      std::string("plain"));
  t.row().cell(std::uint64_t{256}).cell(1.0 / 0.0, 2).cell(
      std::string("comma, \"quote\""));
  rs.note("fitted exponent 1.0 (R^2 = 0.99)");
  return rs;
}

TEST(SerializationGolden, Json) {
  const char* expected = R"json({
  "schema": "rbb.result.v1",
  "experiment": "stability",
  "claim": "E1",
  "title": "window max load stays O(log n)",
  "scale": "smoke",
  "seed": 7,
  "git_rev": "deadbeef",
  "wall_time_s": 0.125,
  "parallelism": {
    "hardware_concurrency": 8,
    "threads_requested": 2,
    "runnable_threads": 2,
    "repeat": 3
  },
  "params": {
    "seed": 7,
    "trials": 2,
    "beta": 4.0,
    "label": "a \"quoted\" name",
    "verbose": true
  },
  "notes": [
    "fitted exponent 1.0 (R^2 = 0.99)"
  ],
  "tables": [
    {
      "id": "E1_stability",
      "title": "a titled, table",
      "columns": ["n", "max load", "label"],
      "rows": [
        [128, 0.500, "plain"],
        [256, "inf", "comma, \"quote\""]
      ]
    }
  ]
}
)json";
  EXPECT_EQ(to_json(golden_meta(), golden_results()), expected);
}

TEST(SerializationGolden, Csv) {
  const char* expected =
      "# rbb.result.v1\n"
      "# experiment=stability\n"
      "# claim=E1\n"
      "# title=window max load stays O(log n)\n"
      "# scale=smoke\n"
      "# seed=7\n"
      "# git_rev=deadbeef\n"
      "# wall_time_s=0.125\n"
      "# parallelism hardware_concurrency=8 threads_requested=2 "
      "runnable_threads=2 repeat=3\n"
      "# param seed=7\n"
      "# param trials=2\n"
      "# param beta=4.0\n"
      "# param label=a \"quoted\" name\n"
      "# param verbose=true\n"
      "\n"
      "# table E1_stability: a titled, table\n"
      "n,max load,label\n"
      "128,0.500,plain\n"
      "256,inf,\"comma, \"\"quote\"\"\"\n"
      "\n"
      "# note: fitted exponent 1.0 (R^2 = 0.99)\n";
  EXPECT_EQ(to_csv(golden_meta(), golden_results()), expected);
}

TEST(SerializationGolden, TextMatchesLegacyBenchFormat) {
  const std::string text = to_text(golden_meta(), golden_results());
  EXPECT_NE(text.find("=== E1_stability: a titled, table (scale: smoke) ==="),
            std::string::npos);
  EXPECT_NE(text.find("### E1_stability"), std::string::npos);
  EXPECT_NE(text.find("| n   | max load | label"), std::string::npos);
  EXPECT_NE(text.find("fitted exponent 1.0"), std::string::npos);
}

TEST(SerializationGolden, EmptyResultSetStillWellFormed) {
  RunMeta meta = golden_meta();
  meta.params.clear();
  const ResultSet rs;
  const std::string json = to_json(meta, rs);
  EXPECT_NE(json.find("\"params\": {},"), std::string::npos);
  EXPECT_NE(json.find("\"notes\": [],"), std::string::npos);
  EXPECT_NE(json.find("\"tables\": []"), std::string::npos);
}

TEST(SerializationGolden, MetricsBlockIsAdditive) {
  RunMeta meta = golden_meta();
  const ResultSet rs = golden_results();
  const std::string without = to_json(meta, rs);
  EXPECT_EQ(without.find("\"metrics\""), std::string::npos);

  meta.metrics.present = true;
  meta.metrics.counters = {{"lemire_retries", 0}, {"pool_tasks", 42}};
  meta.metrics.phase_ns = {{"throw", 1200}, {"barrier_wait", 30}};
  meta.metrics.barrier_wait_fraction = 0.25;
  meta.metrics.pipeline_fill_fraction = 0.75;
  meta.metrics.effective_parallelism = 2;
  const std::string with = to_json(meta, rs);
  const char* expected_block =
      "  \"metrics\": {\n"
      "    \"counters\": {\n"
      "      \"lemire_retries\": 0,\n"
      "      \"pool_tasks\": 42\n"
      "    },\n"
      "    \"phase_ns\": {\n"
      "      \"throw\": 1200,\n"
      "      \"barrier_wait\": 30\n"
      "    },\n"
      "    \"barrier_wait_fraction\": 0.250000,\n"
      "    \"pipeline_fill_fraction\": 0.750000,\n"
      "    \"effective_parallelism\": 2\n"
      "  },\n";
  EXPECT_NE(with.find(expected_block), std::string::npos);
  // Additive: removing the block byte-reverts the document.
  std::string stripped = with;
  const std::size_t at = stripped.find(expected_block);
  ASSERT_NE(at, std::string::npos);
  stripped.erase(at, std::string(expected_block).size());
  EXPECT_EQ(stripped, without);
}

TEST(SerializationGolden, InformationalColumnsSerializedWhenDeclared) {
  ResultSet rs;
  Table& t = rs.add_table("memtab", "with context columns",
                          {"n", "ns_per_ball", "peak_rss_mb"},
                          {"peak_rss_mb"});
  t.row().cell(std::uint64_t{1}).cell(2.0, 2).cell(3.0, 1);
  const std::string json = to_json(golden_meta(), rs);
  EXPECT_NE(json.find("      \"columns\": [\"n\", \"ns_per_ball\", "
                      "\"peak_rss_mb\"],\n"
                      "      \"informational\": [\"peak_rss_mb\"],\n"),
            std::string::npos);
  // The 3-arg overload declares nothing: no empty-array noise.
  ResultSet plain;
  plain.add_table("t", "no informational", {"a"});
  EXPECT_EQ(to_json(golden_meta(), plain).find("\"informational\""),
            std::string::npos);
}

TEST(JsonNumberRule, AcceptsAndRejects) {
  EXPECT_TRUE(is_json_number("0"));
  EXPECT_TRUE(is_json_number("128"));
  EXPECT_TRUE(is_json_number("-3"));
  EXPECT_TRUE(is_json_number("0.500"));
  EXPECT_TRUE(is_json_number("1e9"));
  EXPECT_TRUE(is_json_number("1.5E-3"));
  EXPECT_FALSE(is_json_number(""));
  EXPECT_FALSE(is_json_number("007"));     // leading zeros
  EXPECT_FALSE(is_json_number("1."));      // bare trailing dot
  EXPECT_FALSE(is_json_number(".5"));      // bare leading dot
  EXPECT_FALSE(is_json_number("inf"));
  EXPECT_FALSE(is_json_number("nan"));
  EXPECT_FALSE(is_json_number("1.2.3"));
  EXPECT_FALSE(is_json_number("+1"));
  EXPECT_FALSE(is_json_number("12ab"));
}

TEST(JsonEscape, ControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ResultSet, TableReferencesStayValidAcrossAdds) {
  ResultSet rs;
  Table& first = rs.add_table("t1", "first", {"a"});
  rs.add_table("t2", "second", {"b"});
  first.row().cell(std::uint64_t{1});  // must not be a dangling reference
  EXPECT_EQ(rs.tables().front().data.row_count(), 1u);
  EXPECT_EQ(rs.tables().back().data.row_count(), 0u);
}

}  // namespace
}  // namespace rbb::runner
