// The probabilistic Tetris / "leaky bins" process of Berenbrink et al.
// (PODC 2016), cited by the paper (Sect. 1.3, ref. [18]) as the follow-up
// that randomized the arrival stream: instead of exactly (3/4)n fresh
// balls, each round brings Binomial(n, lambda) new balls, lambda in [0,1].
//
// For lambda < 1 the drift per non-empty bin stays negative and the system
// is stable (logarithmic loads); at lambda = 1 the slack vanishes and the
// queue mass grows.  Experiment E16 sweeps lambda across the transition.
//
// Since the policy refactor (DESIGN.md Sect. 5), LeakyBinsProcess is a
// thin constructor adapter over the process core (Leaky variant,
// sequential xoshiro stream, in-place execution); the counter-stream and
// sharded instantiations live in src/par/.
#pragma once

#include "core/config.hpp"
#include "core/kernel/ball_kernel.hpp"
#include "support/rng.hpp"

namespace rbb {

/// Leaky-bins process: one departure per non-empty bin per round (the ball
/// leaves the system), Binomial(n, lambda) fresh arrivals placed u.a.r.
class LeakyBinsProcess
    : public kernel::BallProcessCore<kernel::Leaky<kernel::SequentialStream>,
                                     kernel::SequentialExecution> {
 public:
  LeakyBinsProcess(LoadConfig initial, double lambda, Rng rng)
      : BallProcessCore(std::move(initial),
                        kernel::Leaky<kernel::SequentialStream>(
                            kernel::SequentialStream(rng), lambda)) {}
};

}  // namespace rbb
