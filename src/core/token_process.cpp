#include "core/token_process.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rbb {

const char* to_string(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo: return "fifo";
    case QueuePolicy::kLifo: return "lifo";
    case QueuePolicy::kRandom: return "random";
  }
  return "unknown";
}

QueuePolicy queue_policy_from_string(const std::string& s) {
  if (s == "fifo") return QueuePolicy::kFifo;
  if (s == "lifo") return QueuePolicy::kLifo;
  if (s == "random") return QueuePolicy::kRandom;
  throw std::invalid_argument("queue_policy_from_string: unknown: " + s);
}

std::uint32_t BallQueue::pop(QueuePolicy policy, Rng& rng) {
  if (empty()) throw std::logic_error("BallQueue::pop: empty queue");
  switch (policy) {
    case QueuePolicy::kFifo: {
      const std::uint32_t token = items_[head_++];
      maybe_compact();
      return token;
    }
    case QueuePolicy::kLifo: {
      const std::uint32_t token = items_.back();
      items_.pop_back();
      return token;
    }
    case QueuePolicy::kRandom: {
      const std::size_t idx = head_ + static_cast<std::size_t>(rng.below(size()));
      std::swap(items_[idx], items_.back());
      const std::uint32_t token = items_.back();
      items_.pop_back();
      return token;
    }
  }
  throw std::logic_error("BallQueue::pop: bad policy");
}

void BallQueue::maybe_compact() {
  // Proportional compaction: copy the live suffix down only once the
  // dead prefix is at least as large as it (and at least kMinDeadSlots,
  // so tiny queues don't churn).  The copy moves `live` elements after
  // >= max(live, kMinDeadSlots) pops accumulated the dead slots, so the
  // amortized cost per pop is O(1) and proportional to the queue's live
  // size -- never to its pop history, however long-lived the bin.
  const std::size_t live = items_.size() - head_;
  if (head_ < kMinDeadSlots || head_ < live) return;
  std::copy(items_.begin() + static_cast<std::ptrdiff_t>(head_),
            items_.end(), items_.begin());
  items_.resize(live);
  head_ = 0;
  // A long-lived skewed bin would otherwise retain the capacity of a
  // past load spike forever; release it once the live size has fallen
  // an order of magnitude below it (rare, so the realloc churn is
  // negligible against the pops between two compactions).
  if (items_.capacity() / 8 > std::max(live, kMinDeadSlots)) {
    items_.shrink_to_fit();
  }
}

TokenProcess::TokenProcess(std::uint32_t bins,
                           std::vector<std::uint32_t> start_bin,
                           Options options, Rng rng)
    : bins_(bins),
      options_(options),
      rng_(rng),
      queues_(bins),
      token_bin_(std::move(start_bin)),
      progress_(token_bin_.size(), 0) {
  if (bins_ == 0) throw std::invalid_argument("TokenProcess: bins == 0");
  if (token_bin_.empty()) {
    throw std::invalid_argument("TokenProcess: no tokens");
  }
  if (options_.graph != nullptr) {
    if (options_.graph->node_count() != bins_) {
      throw std::invalid_argument("TokenProcess: graph size != bins");
    }
    if (options_.graph->min_degree() == 0) {
      throw std::invalid_argument("TokenProcess: graph has an isolated node");
    }
  }
  if (options_.track_visits) {
    words_per_token_ = (bins_ + 63) / 64;
    visited_.assign(words_per_token_ * token_bin_.size(), 0);
    visited_count_.assign(token_bin_.size(), 0);
    cover_round_.assign(token_bin_.size(), kNotCovered);
  } else {
    cover_round_.assign(token_bin_.size(), kNotCovered);
  }
  if (options_.track_delays) {
    arrival_round_.assign(token_bin_.size(), 0);
  }
  for (std::uint32_t i = 0; i < token_bin_.size(); ++i) {
    const std::uint32_t bin = token_bin_[i];
    if (bin >= bins_) {
      throw std::invalid_argument("TokenProcess: start bin out of range");
    }
    queues_[bin].push(i);
    mark_visited(i, bin);
  }
}

void TokenProcess::step() {
  moves_.clear();
  const bool clique = options_.graph == nullptr;
  for (std::uint32_t u = 0; u < bins_; ++u) {
    if (queues_[u].empty()) continue;
    const std::uint32_t token = queues_[u].pop(options_.policy, rng_);
    if (options_.track_delays) {
      // round_ has not advanced yet: the token waited round_ -
      // arrival_round_ complete rounds before this releasing round.
      delays_.add(round_ - arrival_round_[token]);
    }
    const std::uint32_t dest =
        clique ? rng_.index(bins_) : options_.graph->sample_neighbor(u, rng_);
    moves_.emplace_back(token, dest);
  }
  ++round_;
  for (const auto& [token, dest] : moves_) {
    ++progress_[token];
    place(token, dest);
  }
}

void TokenProcess::run(std::uint64_t rounds) {
  for (std::uint64_t t = 0; t < rounds; ++t) step();
}

std::optional<std::uint64_t> TokenProcess::run_until_covered(
    std::uint64_t max_rounds) {
  if (!options_.track_visits) {
    throw std::logic_error("run_until_covered: visit tracking disabled");
  }
  while (!all_covered()) {
    if (round_ >= max_rounds) return std::nullopt;
    step();
  }
  return global_cover_time();
}

std::uint32_t TokenProcess::max_load() const {
  std::uint32_t best = 0;
  for (const auto& q : queues_) {
    best = std::max(best, static_cast<std::uint32_t>(q.size()));
  }
  return best;
}

std::uint32_t TokenProcess::empty_bins() const {
  std::uint32_t count = 0;
  for (const auto& q : queues_) count += q.empty() ? 1u : 0u;
  return count;
}

std::uint64_t TokenProcess::min_progress() const {
  return *std::min_element(progress_.begin(), progress_.end());
}

std::uint32_t TokenProcess::visited_count(std::uint32_t token) const {
  if (!options_.track_visits) {
    throw std::logic_error("visited_count: visit tracking disabled");
  }
  return visited_count_[token];
}

std::uint64_t TokenProcess::global_cover_time() const {
  if (!all_covered()) return kNotCovered;
  return *std::max_element(cover_round_.begin(), cover_round_.end());
}

void TokenProcess::reassign(const std::vector<std::uint32_t>& new_bin) {
  if (new_bin.size() != token_bin_.size()) {
    throw std::invalid_argument("reassign: token count mismatch");
  }
  for (auto& q : queues_) q.clear();
  for (std::uint32_t i = 0; i < new_bin.size(); ++i) {
    if (new_bin[i] >= bins_) {
      throw std::invalid_argument("reassign: bin out of range");
    }
    token_bin_[i] = new_bin[i];
    queues_[new_bin[i]].push(i);
    if (options_.track_delays) arrival_round_[i] = round_;
    mark_visited(i, new_bin[i]);
  }
}

void TokenProcess::place(std::uint32_t token, std::uint32_t bin) {
  token_bin_[token] = bin;
  queues_[bin].push(token);
  if (options_.track_delays) arrival_round_[token] = round_;
  mark_visited(token, bin);
}

const Histogram& TokenProcess::delay_histogram() const {
  if (!options_.track_delays) {
    throw std::logic_error("delay_histogram: delay tracking disabled");
  }
  return delays_;
}

void TokenProcess::mark_visited(std::uint32_t token, std::uint32_t bin) {
  if (!options_.track_visits) return;
  std::uint64_t& word =
      visited_[static_cast<std::size_t>(token) * words_per_token_ + bin / 64];
  const std::uint64_t bit = 1ULL << (bin % 64);
  if ((word & bit) == 0) {
    word |= bit;
    if (++visited_count_[token] == bins_ &&
        cover_round_[token] == kNotCovered) {
      cover_round_[token] = round_;
      ++covered_tokens_;
    }
  }
}

void TokenProcess::check_invariants() const {
  std::uint64_t queued = 0;
  for (std::uint32_t u = 0; u < bins_; ++u) {
    for (const std::uint32_t token : queues_[u]) {
      if (token >= token_bin_.size() || token_bin_[token] != u) {
        throw std::logic_error("TokenProcess: queue/position mismatch");
      }
      ++queued;
    }
  }
  if (queued != token_bin_.size()) {
    throw std::logic_error("TokenProcess: token count drifted");
  }
}

}  // namespace rbb
