// Dense integer set with O(1) insert, erase, membership and uniform
// sampling.  Classic swap-with-last representation over a fixed universe
// [0, capacity).  Used by the closed-Jackson-network simulator (sampling a
// uniformly random busy station) and available to any process that needs
// to sample from a dynamic subset of bins.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace rbb {

class DenseSet {
 public:
  /// Empty set over the universe [0, capacity).
  explicit DenseSet(std::uint32_t capacity)
      : position_(capacity, kAbsent) {}

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(position_.size());
  }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(members_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }
  [[nodiscard]] bool contains(std::uint32_t x) const {
    return position_.at(x) != kAbsent;
  }

  /// Inserts x; returns false if already present.
  bool insert(std::uint32_t x) {
    if (position_.at(x) != kAbsent) return false;
    position_[x] = static_cast<std::uint32_t>(members_.size());
    members_.push_back(x);
    return true;
  }

  /// Erases x; returns false if absent.
  bool erase(std::uint32_t x) {
    const std::uint32_t pos = position_.at(x);
    if (pos == kAbsent) return false;
    const std::uint32_t last = members_.back();
    members_[pos] = last;
    position_[last] = pos;
    members_.pop_back();
    position_[x] = kAbsent;
    return true;
  }

  /// Uniform random member.  Requires !empty().
  [[nodiscard]] std::uint32_t sample(Rng& rng) const {
    if (members_.empty()) throw std::logic_error("DenseSet::sample: empty");
    return members_[rng.index(size())];
  }

  /// Unordered view of the members.
  [[nodiscard]] const std::vector<std::uint32_t>& members() const noexcept {
    return members_;
  }

 private:
  static constexpr std::uint32_t kAbsent = UINT32_MAX;
  std::vector<std::uint32_t> members_;
  std::vector<std::uint32_t> position_;
};

}  // namespace rbb
