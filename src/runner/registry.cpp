#include "runner/registry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include <thread>

#include "engine/process.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "par/sharded_mixed.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"
#include "par/sharded_variants.hpp"

namespace rbb::runner {

namespace {

/// A usable sharded port: the type exists, runs under sharded
/// execution, and plugs into the engine like any other process.  The
/// capability of a ProcessFamily is DERIVED from this predicate over
/// the family's src/par/ instantiation -- deleting or breaking a port
/// flips the corresponding experiments to reject --backend=sharded at
/// the same commit, with no bool to forget.
template <typename P>
constexpr bool has_sharded_port() {
  return P::kShardedExec && SimProcess<P>;
}

}  // namespace

bool backend_capable(ProcessFamily family) {
  switch (family) {
    case ProcessFamily::kNone:
      return false;
    case ProcessFamily::kLoadOnly:
      return has_sharded_port<par::ShardedRepeatedBallsProcess>();
    case ProcessFamily::kToken:
      return has_sharded_port<par::ShardedTokenProcess>();
    case ProcessFamily::kTetris:
      return has_sharded_port<par::ShardedTetrisProcess>();
    case ProcessFamily::kDChoices:
      return has_sharded_port<par::ShardedDChoicesProcess>();
    case ProcessFamily::kThreshold:
      return has_sharded_port<par::ShardedThresholdProcess>();
    case ProcessFamily::kLeaky:
      return has_sharded_port<par::ShardedLeakyBinsProcess>();
    case ProcessFamily::kMixed:
      return has_sharded_port<par::ShardedMixedProcess>();
    case ProcessFamily::kKernelSuite:
      return has_sharded_port<par::ShardedRepeatedBallsProcess>() &&
             has_sharded_port<par::ShardedTokenProcess>() &&
             has_sharded_port<par::ShardedTetrisProcess>() &&
             has_sharded_port<par::ShardedDChoicesProcess>();
  }
  return false;
}

void Registry::add(Experiment experiment) {
  if (experiment.name.empty()) {
    throw std::invalid_argument("Registry::add: empty experiment name");
  }
  if (!experiment.run) {
    throw std::invalid_argument("Registry::add: " + experiment.name +
                                " has no run function");
  }
  if (find(experiment.name) != nullptr) {
    throw std::invalid_argument("Registry::add: duplicate experiment " +
                                experiment.name);
  }
  for (const ParamSpec& spec : experiment.params) {
    // seed/trials are prepended below; scale/format/out/check/help are
    // intercepted by the CLI frontends before parameter assignment, so a
    // parameter with one of these names would be silently unsettable via
    // `rbb run` (while the legacy shim *would* set it) -- exactly the
    // frontend drift the registry exists to prevent.
    for (const char* reserved :
         {"seed", "trials", "backend", "threads", "metrics", "trace",
          "repeat", "trial-parallelism", "checkpoint-dir", "checkpoint-every",
          "checkpoint-keep", "resume-from", "scale", "format", "out", "check",
          "help"}) {
      if (spec.name == reserved) {
        throw std::invalid_argument(
            "Registry::add: " + experiment.name +
            " declares the reserved parameter name --" + spec.name);
      }
    }
  }
  // Every experiment shares the Monte-Carlo knobs and the round-kernel
  // selector; prepending them here keeps the declarations thin and the
  // CLI surface uniform.  --backend=sharded is validated against the
  // experiment's opt-in in run_experiment.
  std::vector<ParamSpec> params = {
      {"seed", ParamSpec::Type::kU64, "1", "root RNG seed"},
      {"trials", ParamSpec::Type::kU64, "0",
       "trials per sweep point (0 = scale default)"},
      {"backend", ParamSpec::Type::kString, "seq",
       "round kernel: seq (single-thread xoshiro) or sharded "
       "(src/par/ counter-RNG kernel; sharded-capable experiments only)"},
      {"threads", ParamSpec::Type::kU64, "0",
       "sharded-backend workers (0 = the shared pool, i.e. all hardware "
       "threads; ignored under --backend=seq)"},
      {"metrics", ParamSpec::Type::kFlag, "false",
       "scrape the telemetry registry (src/obs/) after the run and emit "
       "the additive `metrics` block: counter totals, per-phase ns, "
       "barrier-wait fraction, effective parallelism"},
      {"trace", ParamSpec::Type::kString, "",
       "write the run's phase spans as Chrome-trace JSON to this path "
       "(open at https://ui.perfetto.dev; under `sweep` each point "
       "overwrites it, so the last point wins)"},
      {"repeat", ParamSpec::Type::kU64, "1",
       "execute the run K times and keep the fastest execution's results "
       "and wall time (best-of-K timing discipline for perf rows; "
       "--metrics describes the kept execution, --trace the last)"},
      {"trial-parallelism", ParamSpec::Type::kString, "auto",
       "trial fan-out width for Monte-Carlo experiments: auto (legacy "
       "shared-pool fan-out, or min(trials, --threads) concurrent trials "
       "when --threads is set) or an explicit K; the thread budget is "
       "split evenly across concurrent trials so each instance's sharded "
       "rounds still parallelize (trial x round nesting)"},
      {"checkpoint-dir", ParamSpec::Type::kString, "",
       "write rbb.ckpt.v1 snapshots into this directory "
       "(checkpoint-capable single-instance experiments only, e.g. "
       "trajectory; SIGINT also writes a final checkpoint when set)"},
      {"checkpoint-every", ParamSpec::Type::kU64, "0",
       "checkpoint period in rounds (0 = only the SIGINT/exit checkpoint; "
       "requires --checkpoint-dir)"},
      {"checkpoint-keep", ParamSpec::Type::kU64, "3",
       "retain only the newest K periodic checkpoints (older ones are "
       "pruned after each successful write)"},
      {"resume-from", ParamSpec::Type::kString, "",
       "restore state from this rbb.ckpt.v1 file before running and "
       "continue to the round target (the `rbb resume` verb fills this "
       "in from the checkpoint's own metadata)"},
  };
  params.insert(params.end(),
                std::make_move_iterator(experiment.params.begin()),
                std::make_move_iterator(experiment.params.end()));
  experiment.params = std::move(params);
  experiments_.push_back(std::move(experiment));
}

const Experiment* Registry::find(const std::string& name) const {
  for (const Experiment& experiment : experiments_) {
    if (experiment.name == name) return &experiment;
  }
  return nullptr;
}

namespace {

/// Numeric part of an E-claim ("E12" -> 12); claimless extras sort last.
unsigned long claim_rank(const std::string& claim) {
  if (claim.size() < 2 || claim[0] != 'E') return ~0ul;
  char* end = nullptr;
  const unsigned long v = std::strtoul(claim.c_str() + 1, &end, 10);
  if (end != claim.c_str() + claim.size()) return ~0ul;
  return v;
}

}  // namespace

std::vector<const Experiment*> Registry::catalog() const {
  std::vector<const Experiment*> sorted;
  sorted.reserve(experiments_.size());
  for (const Experiment& experiment : experiments_) {
    sorted.push_back(&experiment);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Experiment* a, const Experiment* b) {
              const unsigned long ra = claim_rank(a->claim);
              const unsigned long rb = claim_rank(b->claim);
              if (ra != rb) return ra < rb;
              return a->name < b->name;
            });
  return sorted;
}

TrialPlan RunContext::trial_plan(std::uint32_t trials) const {
  const std::string& mode = params.str("trial-parallelism");
  const unsigned requested = threads();
  if (mode == "auto" && requested == 0) return {};  // legacy fan-out
  const unsigned budget =
      requested != 0 ? requested : ThreadPool::global().thread_count() + 1;
  TrialPlan plan;
  std::uint64_t width = 0;
  if (mode == "auto") {
    width = budget;
  } else {
    char* end = nullptr;
    width = std::strtoull(mode.c_str(), &end, 10);
    if (end != mode.c_str() + mode.size() || width == 0) {
      throw std::invalid_argument(
          "--trial-parallelism expects auto or a positive integer, got \"" +
          mode + "\"");
    }
  }
  if (trials != 0) width = std::min<std::uint64_t>(width, trials);
  plan.trial_workers = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(width, 0xffffffffull)));
  plan.process_threads = std::max(1u, budget / plan.trial_workers);
  return plan;
}

CompletedRun run_experiment(const Experiment& experiment,
                            const ParamValues& values, BenchScale scale) {
  const std::string& backend = values.str("backend");
  if (backend != "seq" && backend != "sharded") {
    throw std::invalid_argument("--backend expects seq or sharded, got \"" +
                                backend + "\"");
  }
  if (backend == "sharded" && !backend_capable(experiment.family)) {
    throw std::invalid_argument(
        experiment.name +
        " does not support --backend=sharded: its process family has no "
        "src/par/ instantiation of the policy core (run with "
        "--backend=seq, or pick a backend-capable experiment such as "
        "sharded_scaling)");
  }
  const std::uint64_t repeat = values.u64("repeat");
  if (repeat == 0) {
    throw std::invalid_argument("--repeat expects a positive count");
  }
  const bool wants_checkpoints = !values.str("checkpoint-dir").empty() ||
                                 values.u64("checkpoint-every") != 0 ||
                                 !values.str("resume-from").empty();
  if (wants_checkpoints && !experiment.checkpointable) {
    throw std::invalid_argument(
        experiment.name +
        " does not support checkpointing: --checkpoint-dir/"
        "--checkpoint-every/resume only apply to checkpoint-capable "
        "single-instance experiments (e.g. trajectory)");
  }
  if (values.u64("checkpoint-every") != 0 &&
      values.str("checkpoint-dir").empty()) {
    throw std::invalid_argument(
        "--checkpoint-every requires --checkpoint-dir");
  }
  if (wants_checkpoints && repeat != 1) {
    throw std::invalid_argument(
        "--repeat is incompatible with checkpointing (a best-of-K rerun "
        "would overwrite the checkpoint stream)");
  }
  // Validate the --trial-parallelism grammar up front, even for run
  // functions that never consult the plan: a typo must fail the run,
  // not silently fall back to the legacy fan-out.
  const RunContext ctx{values, scale};
  (void)ctx.trial_plan(1);

  const bool metrics_on = values.flag("metrics");
  const std::string& trace_path = values.str("trace");
  const bool telemetry = metrics_on || !trace_path.empty();
  CompletedRun run;
  obs::MetricsSnapshot best_snap;
  double best_wall = -1;
  // Best-of-K: rerun the whole experiment and keep the fastest
  // execution's results, wall time, and metrics scrape (trials are
  // seed-deterministic, so every execution computes identical tables --
  // only the timing varies).  The trace buffer holds the last
  // execution's spans, matching sweep's last-point-wins convention.
  for (std::uint64_t k = 0; k < repeat; ++k) {
    if (telemetry) {
      // Fresh totals per execution; the scrape below then reads exactly
      // this one.  Under RBB_TELEMETRY=0 these are no-ops and the
      // metrics block reports zeros (the flags stay accepted so scripts
      // need not care how the binary was built).
      obs::reset();
      if (!trace_path.empty()) obs::start_trace();
      obs::set_enabled(true);
    }
    const auto t0 = std::chrono::steady_clock::now();
    ResultSet results = experiment.run(ctx);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (telemetry) obs::set_enabled(false);
    if (best_wall < 0 || wall < best_wall) {
      best_wall = wall;
      run.results = std::move(results);
      if (metrics_on) best_snap = obs::scrape();
    }
  }
  run.meta.wall_seconds = best_wall;
  run.meta.experiment = experiment.name;
  run.meta.claim = experiment.claim;
  run.meta.title = experiment.title;
  run.meta.scale = to_string(scale);
  run.meta.git_rev = git_revision();
  fill_meta_params(run.meta, values);

  // Honest thread accounting, in every result: what the machine has,
  // what was asked for, and how many threads could actually run tasks
  // (an explicit sharded --threads=k builds a private pool of k;
  // everything else shares the global pool plus the submitting thread).
  const std::uint32_t threads_requested = values.u32("threads");
  run.meta.parallelism.hardware_concurrency =
      std::thread::hardware_concurrency();
  run.meta.parallelism.threads_requested = threads_requested;
  run.meta.parallelism.runnable_threads =
      (backend == "sharded" && threads_requested >= 1)
          ? threads_requested
          : ThreadPool::global().thread_count() + 1;
  run.meta.parallelism.repeat = repeat;

  if (telemetry) {
    if (!trace_path.empty()) {
      obs::stop_trace();
      if (!obs::write_chrome_trace_file(trace_path)) {
        throw std::runtime_error("cannot write trace file " + trace_path);
      }
    }
    if (metrics_on) {
      const obs::MetricsSnapshot& snap = best_snap;
      run.meta.metrics.present = true;
      for (std::size_t c = 0; c < obs::kCounterCount; ++c) {
        run.meta.metrics.counters.push_back(RunMeta::Metric{
            to_string(static_cast<obs::Counter>(c)), snap.counters[c]});
      }
      for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
        run.meta.metrics.phase_ns.push_back(RunMeta::Metric{
            to_string(static_cast<obs::Phase>(p)), snap.phase_ns[p]});
      }
      run.meta.metrics.barrier_wait_fraction = snap.barrier_wait_fraction();
      run.meta.metrics.pipeline_fill_fraction = snap.pipeline_fill_fraction();
      run.meta.metrics.effective_parallelism =
          std::min(run.meta.parallelism.runnable_threads,
                   run.meta.parallelism.hardware_concurrency == 0
                       ? run.meta.parallelism.runnable_threads
                       : run.meta.parallelism.hardware_concurrency);
    }
  }
  return run;
}

const Registry& default_registry() {
  static const Registry* const registry = [] {
    auto* r = new Registry();
    register_all_experiments(*r);
    return r;
  }();
  return *registry;
}

std::vector<std::uint32_t> default_n_sweep(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke: return {128, 256};
    case BenchScale::kPaper: return {256, 1024, 4096, 16384};
    // mega is meaningful only for the sharded single-instance
    // experiments; the Monte-Carlo sweeps fall back to paper sizes.
    case BenchScale::kMega: return {256, 1024, 4096, 16384};
    case BenchScale::kDefault: break;
  }
  return {256, 1024, 4096};
}

#ifndef RBB_GIT_REV
#define RBB_GIT_REV "unknown"
#endif

const char* git_revision() { return RBB_GIT_REV; }

}  // namespace rbb::runner
