// Fixed-width arithmetic types shared by every round kernel.
//
// The kernels are sized for the mega scale (n up to 10^9 bins with
// --scale=mega headroom toward 2^32), so the width of every quantity is
// a contract, not a convenience:
//
//   * bin_index_t -- a bin (node, station) index in [0, n).  32 bits:
//     n < 2^32 is a hard precondition of the samplers (Lemire bounded
//     draws produce 32-bit indices) and of the scatter buffers.
//   * load_t -- one bin's ball count.  32 bits: a single bin can hold
//     every ball only in adversarial starts, and the experiments keep
//     m <= a small multiple of n < 2^32.  LoadConfig is a vector of
//     exactly this type; the kernels static_assert the match so a
//     silent vector-of-something-else can never compile.
//   * ball_count_t -- a SYSTEM-WIDE ball count or any sum over bins.
//     64 bits, always: at n = 10^9 a sum of 32-bit loads overflows
//     32-bit arithmetic as soon as the mean load exceeds ~4 -- this is
//     the one place narrowing would be silent and wrong, so totals
//     (total_balls, departures accumulated across rounds, arrival
//     counters) must be carried in ball_count_t.
//   * round_t -- a round index.  64 bits: poly(n) windows at mega n
//     exceed 2^32 rounds.
//
// Per-round per-bin quantities (departures of one round <= n, empty-bin
// counts <= n) fit in 32 bits by construction and stay uint32_t.
#pragma once

#include <cstdint>

namespace rbb {

using bin_index_t = std::uint32_t;
using load_t = std::uint32_t;
using ball_count_t = std::uint64_t;
using round_t = std::uint64_t;

static_assert(sizeof(ball_count_t) == 8,
              "system-wide ball counts must be 64-bit: at n = 1e9 a "
              "32-bit total overflows at mean load ~4");
static_assert(sizeof(round_t) == 8,
              "round indices must be 64-bit: poly(n) windows at mega n "
              "exceed 2^32 rounds");

}  // namespace rbb
