// E20 -- stationary load profile.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/load_profile.cpp); this binary behaves like
// `rbb run load_profile` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("load_profile", argc, argv);
}
