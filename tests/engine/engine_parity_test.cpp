// Engine parity regression: for fixed seeds, driving a process through
// Engine<P> produces *bit-identical* load trajectories to the legacy
// per-process run() path -- for every variant, on the complete graph and
// (where supported) on a ring.  This pins down the tentpole refactor's
// core promise: the engine adds behavior (observers, stopping rules,
// faults) without perturbing a single random draw.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/independent_walks.hpp"
#include "baselines/repeated_dchoices.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "selfstab/israeli_jalfon.hpp"
#include "tetris/leaky.hpp"
#include "tetris/tetris.hpp"

namespace rbb {
namespace {

constexpr std::uint32_t kBins = 64;
constexpr std::uint64_t kSegment = 17;  // odd on purpose: no round-y sizes
constexpr int kSegments = 5;

/// Runs `legacy` via its own run()/step() loop and a copy via the Engine
/// (with observers attached, so stat computation is exercised), comparing
/// the full load vector after every segment.
template <typename P>
void expect_parity(P legacy) {
  Engine<P> engine(legacy);  // copy: identical state + RNG
  WindowMaxLoad wmax;
  MinEmptyFraction memp;
  for (int segment = 0; segment < kSegments; ++segment) {
    legacy.run(kSegment);
    engine.run_rounds(kSegment, wmax, memp);
    ASSERT_EQ(engine_loads(legacy), engine_loads(engine.process()))
        << "diverged after segment " << segment;
  }
  EXPECT_EQ(engine_round(legacy), engine_round(engine.process()));
  EXPECT_EQ(engine_max_load(legacy), engine_max_load(engine.process()));
  EXPECT_EQ(engine_empty_bins(legacy), engine_empty_bins(engine.process()));
}

TEST(EngineParity, RepeatedBallsCompleteGraph) {
  Rng rng(101);
  LoadConfig start = make_config(InitialConfig::kAllInOne, kBins, kBins, rng);
  expect_parity(RepeatedBallsProcess(std::move(start), rng.split()));
}

TEST(EngineParity, RepeatedBallsRing) {
  const Graph ring = make_cycle(kBins);
  Rng rng(102);
  LoadConfig start = make_config(InitialConfig::kRandom, kBins, kBins, rng);
  expect_parity(
      RepeatedBallsProcess(std::move(start), &ring, rng.split()));
}

TEST(EngineParity, TokenProcessCompleteGraph) {
  Rng rng(103);
  std::vector<std::uint32_t> placement(kBins);
  for (std::uint32_t i = 0; i < kBins; ++i) placement[i] = rng.index(kBins);
  TokenProcess::Options options;
  options.policy = QueuePolicy::kFifo;
  expect_parity(TokenProcess(kBins, placement, options, rng.split()));
}

TEST(EngineParity, TokenProcessRing) {
  const Graph ring = make_cycle(kBins);
  Rng rng(104);
  std::vector<std::uint32_t> placement(kBins);
  for (std::uint32_t i = 0; i < kBins; ++i) placement[i] = i;
  TokenProcess::Options options;
  options.policy = QueuePolicy::kRandom;  // pops consume process RNG too
  options.graph = &ring;
  expect_parity(TokenProcess(kBins, placement, options, rng.split()));
}

TEST(EngineParity, TetrisCliqueOnly) {
  Rng rng(105);
  LoadConfig start = make_config(InitialConfig::kRandom, kBins, kBins, rng);
  expect_parity(TetrisProcess(std::move(start), rng.split()));
}

TEST(EngineParity, LeakyBinsCliqueOnly) {
  Rng rng(106);
  LoadConfig start = make_config(InitialConfig::kOnePerBin, kBins, kBins, rng);
  expect_parity(LeakyBinsProcess(std::move(start), 0.75, rng.split()));
}

TEST(EngineParity, RepeatedDChoicesCliqueOnly) {
  Rng rng(107);
  LoadConfig start =
      make_config(InitialConfig::kHalfLoaded, kBins, kBins, rng);
  expect_parity(RepeatedDChoicesProcess(std::move(start), 2, rng.split()));
}

TEST(EngineParity, IndependentWalksCompleteGraph) {
  Rng rng(108);
  std::vector<std::uint32_t> placement(kBins);
  for (std::uint32_t i = 0; i < kBins; ++i) placement[i] = rng.index(kBins);
  expect_parity(
      IndependentWalksProcess(kBins, placement, nullptr, rng.split()));
}

TEST(EngineParity, IndependentWalksRing) {
  const Graph ring = make_cycle(kBins);
  Rng rng(109);
  std::vector<std::uint32_t> placement(kBins);
  for (std::uint32_t i = 0; i < kBins; ++i) placement[i] = i;
  expect_parity(
      IndependentWalksProcess(kBins, placement, &ring, rng.split()));
}

// Israeli-Jalfon has no run(rounds); drive the legacy copy step by step.
TEST(EngineParity, IsraeliJalfonRing) {
  const Graph ring = make_cycle(kBins);
  Rng rng(110);
  IsraeliJalfonProcess legacy(&ring, kBins, TokenPlacement::kEveryNode,
                              rng.split());
  Engine<IsraeliJalfonProcess> engine(legacy);
  WindowMaxLoad wmax;
  for (int segment = 0; segment < kSegments; ++segment) {
    for (std::uint64_t t = 0; t < kSegment; ++t) legacy.step();
    engine.run_rounds(kSegment, wmax);
    ASSERT_EQ(engine_loads(legacy), engine_loads(engine.process()))
        << "diverged after segment " << segment;
    ASSERT_EQ(legacy.token_count(), engine.process().token_count());
  }
}

TEST(EngineParity, IsraeliJalfonCompleteGraph) {
  Rng rng(111);
  IsraeliJalfonProcess legacy(nullptr, kBins, TokenPlacement::kRandomHalf,
                              rng.split(), 0.0);
  Engine<IsraeliJalfonProcess> engine(legacy);
  for (int segment = 0; segment < kSegments; ++segment) {
    for (std::uint64_t t = 0; t < kSegment; ++t) legacy.step();
    engine.run_rounds(kSegment);
    ASSERT_EQ(engine_loads(legacy), engine_loads(engine.process()))
        << "diverged after segment " << segment;
  }
}

}  // namespace
}  // namespace rbb
