// Naive weighted oracle for the mixed-regime kernel (tests/par/).
//
// An independent, deliberately simple re-implementation of the
// mixed-regime round semantics straight from the spec in
// core/kernel/mixed_kernel.hpp, consuming CounterRng scalar draws
// directly (no streams, no planes, no incremental bookkeeping):
//
//   round t, bins ascending: bin u releases min(load_u, rate_u) balls;
//   departure j removes ball x = CounterRng.index(t, 2^50|(j<<32)|u,
//   load_u) counted over the bin's class census in class order, and
//   throws to dest = CounterRng.index(t, 2^51|(j<<32)|u, n); arrivals
//   apply in ascending (u, j) order; an arrival into a bin at capacity
//   is dropped.
//
// The parity tests replay both kernel instantiations against this
// oracle, so a bug in the kernel's shared bookkeeping cannot hide by
// being bit-identical across its own execution policies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/kernel/stream.hpp"
#include "core/mixed_config.hpp"
#include "support/counter_rng.hpp"

namespace rbb::par::testing {

struct MixedOracle {
  MixedSpec spec;
  CounterRng rng;
  std::vector<load_t> counts;  // bin-major [bin * k + class]
  std::uint64_t dropped = 0;
  std::uint64_t round = 0;

  MixedOracle(MixedSpec s, std::uint64_t seed)
      : spec(std::move(s)), rng(seed), counts(spec.class_counts) {}

  [[nodiscard]] std::uint32_t classes() const {
    return static_cast<std::uint32_t>(spec.weights.class_weights.size());
  }

  [[nodiscard]] load_t load(std::uint32_t u) const {
    load_t q = 0;
    for (std::uint32_t c = 0; c < classes(); ++c) {
      q += counts[static_cast<std::size_t>(u) * classes() + c];
    }
    return q;
  }

  [[nodiscard]] std::vector<load_t> loads() const {
    std::vector<load_t> q(spec.bins);
    for (std::uint32_t u = 0; u < spec.bins; ++u) q[u] = load(u);
    return q;
  }

  [[nodiscard]] weighted_load_t weighted_load(std::uint32_t u) const {
    weighted_load_t w = 0;
    for (std::uint32_t c = 0; c < classes(); ++c) {
      w += static_cast<weighted_load_t>(
               counts[static_cast<std::size_t>(u) * classes() + c]) *
           spec.weights.class_weights[c];
    }
    return w;
  }

  void step() {
    const std::uint32_t k = classes();
    std::vector<std::pair<std::uint32_t, std::uint32_t>> arrivals;
    for (std::uint32_t u = 0; u < spec.bins; ++u) {
      const std::uint32_t releases = static_cast<std::uint32_t>(
          std::min<load_t>(load(u), spec.rates[u]));
      for (std::uint32_t j = 0; j < releases; ++j) {
        std::uint32_t x =
            rng.index(round, kernel::mixed_class_slot(j, u), load(u));
        std::uint32_t cls = 0;
        while (cls + 1 < k &&
               x >= counts[static_cast<std::size_t>(u) * k + cls]) {
          x -= counts[static_cast<std::size_t>(u) * k + cls];
          ++cls;
        }
        --counts[static_cast<std::size_t>(u) * k + cls];
        arrivals.emplace_back(
            cls, rng.index(round, kernel::mixed_dest_slot(j, u), spec.bins));
      }
    }
    for (const auto& [cls, dest] : arrivals) {
      if (spec.capacities[dest] != 0 && load(dest) >= spec.capacities[dest]) {
        ++dropped;
        continue;
      }
      ++counts[static_cast<std::size_t>(dest) * k + cls];
    }
    ++round;
  }
};

}  // namespace rbb::par::testing
