// Monte-Carlo certification of probabilistic self-stabilization.
//
// The paper's notion (Sect. 1.1): a process is *self-stabilizing* if
// (convergence) from any configuration it reaches a legitimate
// configuration w.h.p., and (stability/closure) started legitimate it
// only visits legitimate configurations over a poly(n) window w.h.p.
// This module turns that definition into a reusable measurement harness:
// given step/legitimate hooks for any process, it estimates
//
//   * the convergence-time distribution and P(converged within horizon)
//     with a Wilson lower confidence bound (the empirically certified
//     "w.h.p." level), and
//   * the closure-violation rate over a post-convergence window.
//
// It is applied to the repeated balls-into-bins process and to the
// Israeli-Jalfon process in tests and in exp_israeli_jalfon, and is
// process-agnostic by construction (type-erased hooks).
#pragma once

#include <cstdint>
#include <functional>

#include "support/stats.hpp"

namespace rbb {

/// Hooks driving one trial of a stabilizing process.  `step` advances one
/// round; `legitimate` inspects the current configuration.
struct StabTrialHooks {
  std::function<void()> step;
  std::function<bool()> legitimate;
};

/// Creates the process for trial `trial` (seed derivation is the
/// factory's responsibility; use Rng(seed, trial) substreams).
using StabTrialFactory = std::function<StabTrialHooks(std::uint64_t trial)>;

/// Parameters of a certification run.
struct CertifySpec {
  std::uint64_t trials = 100;
  /// Convergence horizon: a trial that is still illegitimate after this
  /// many rounds counts as non-converged.
  std::uint64_t horizon = 10000;
  /// Closure window: converged trials run this many further rounds, and
  /// every round spent in a non-legitimate configuration afterwards
  /// counts as a closure violation.
  std::uint64_t closure_window = 0;
};

/// Aggregate result of a certification run.
struct CertifyResult {
  std::uint64_t trials = 0;
  std::uint64_t converged = 0;
  /// Convergence rounds over converged trials.
  OnlineMoments convergence_rounds;
  /// 95% Wilson lower bound on P(converge within horizon).
  double p_converged_lower95 = 0.0;
  /// Rounds spent illegitimate inside closure windows (all trials).
  std::uint64_t closure_violations = 0;
  /// Total closure rounds observed (converged trials * closure_window).
  std::uint64_t closure_rounds = 0;

  [[nodiscard]] double closure_violation_rate() const {
    return closure_rounds == 0
               ? 0.0
               : static_cast<double>(closure_violations) /
                     static_cast<double>(closure_rounds);
  }
};

/// Runs the certification: `spec.trials` independent trials from the
/// factory.  Trials are driven sequentially (the factory may parallelize
/// internally if desired); results are deterministic given the factory's
/// seeding discipline.
[[nodiscard]] CertifyResult certify_self_stabilization(
    const StabTrialFactory& factory, const CertifySpec& spec);

/// Wilson score lower confidence bound for a binomial proportion:
/// given `successes` out of `trials`, the largest p_low such that the
/// observed count is not significantly above p_low at confidence level
/// z (z = 1.96 for 95%).  Safe at successes = 0 and trials = 0.
[[nodiscard]] double wilson_lower_bound(std::uint64_t successes,
                                        std::uint64_t trials,
                                        double z = 1.96);

}  // namespace rbb
