#include "runner/legacy.hpp"

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "runner/optparse.hpp"
#include "runner/registry.hpp"
#include "runner/result.hpp"
#include "support/scale.hpp"

namespace rbb::runner {

namespace {

void print_usage(const Experiment& experiment, const char* argv0,
                 std::ostream& os) {
  os << argv0 << " -- " << experiment.title << "\n\n"
     << experiment.description << "\n\noptions:\n";
  for (const ParamSpec& spec : experiment.params) {
    os << "  --" << spec.name << " (" << to_string(spec.type)
       << ", default " << (spec.default_value.empty()
                               ? std::string("\"\"")
                               : spec.default_value)
       << ")  " << spec.help << "\n";
  }
  os << "  --help  this text\n\nequivalent: rbb run " << experiment.name
     << " [--<option>=<value> ...]\n";
}

}  // namespace

int legacy_bench_main(const char* name, int argc, const char* const* argv) {
  const Experiment* experiment = default_registry().find(name);
  if (experiment == nullptr) {
    std::cerr << "internal error: experiment \"" << name
              << "\" is not registered\n";
    return 2;
  }
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  ParamValues values(experiment->params);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--help" || args[i] == "-h") {
      print_usage(*experiment, argv[0], std::cout);
      return 0;
    }
    std::string option;
    std::string value;
    bool has_value = false;
    if (!split_option(args, &i, &option, &value, &has_value)) {
      std::cerr << "unexpected argument \"" << args[i] << "\"\n";
      print_usage(*experiment, argv[0], std::cerr);
      return 2;
    }
    std::string error;
    if (!values.set(option, value, &error)) {
      std::cerr << error << "\n";
      print_usage(*experiment, argv[0], std::cerr);
      return 2;
    }
  }

  try {
    const CompletedRun run =
        run_experiment(*experiment, values, bench_scale());
    std::cout << to_text(run.meta, run.results);
    if (!csv_dir().empty()) {
      for (const ResultSet::Entry& entry : run.results.tables()) {
        entry.data.write_csv(csv_dir(), entry.id);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace rbb::runner
