// Tests for the peak-RSS probe (src/support/meminfo.*): the VmHWM
// parse must say "unavailable" explicitly -- never a silent 0 -- when
// the status file is missing, lacks the line, or carries garbage.
#include "support/meminfo.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace rbb {
namespace {

/// Writes `content` to a temp file and returns its path.
std::string write_status(const std::string& name,
                         const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path;
}

TEST(Meminfo, ParsesVmHwmLine) {
  const std::string path = write_status("status_valid",
                                        "Name:\trbb\n"
                                        "VmPeak:\t  123456 kB\n"
                                        "VmHWM:\t    5432 kB\n"
                                        "VmRSS:\t    4000 kB\n");
  const PeakRss rss = parse_peak_rss_status(path.c_str());
  EXPECT_TRUE(rss.available);
  EXPECT_EQ(rss.bytes, 5432ull * 1024);
  std::remove(path.c_str());
}

TEST(Meminfo, MissingLineIsUnavailableNotZero) {
  const std::string path = write_status("status_no_hwm",
                                        "Name:\trbb\n"
                                        "VmPeak:\t  123456 kB\n"
                                        "VmRSS:\t    4000 kB\n");
  const PeakRss rss = parse_peak_rss_status(path.c_str());
  EXPECT_FALSE(rss.available);
  EXPECT_EQ(rss.bytes, 0u);
  std::remove(path.c_str());
}

TEST(Meminfo, MissingFileIsUnavailable) {
  const PeakRss rss =
      parse_peak_rss_status("/nonexistent/dir/status-for-meminfo-test");
  EXPECT_FALSE(rss.available);
  EXPECT_EQ(rss.bytes, 0u);
}

TEST(Meminfo, UnparsableValueIsUnavailable) {
  const std::string path = write_status("status_garbage",
                                        "VmHWM:\tnot-a-number kB\n");
  const PeakRss rss = parse_peak_rss_status(path.c_str());
  EXPECT_FALSE(rss.available);
  EXPECT_EQ(rss.bytes, 0u);
  std::remove(path.c_str());
}

TEST(Meminfo, ZeroKbIsAvailable) {
  // Availability and magnitude are independent: an explicit 0 kB line
  // parses as available (the old API conflated the two).
  const std::string path = write_status("status_zero", "VmHWM:\t0 kB\n");
  const PeakRss rss = parse_peak_rss_status(path.c_str());
  EXPECT_TRUE(rss.available);
  EXPECT_EQ(rss.bytes, 0u);
  std::remove(path.c_str());
}

#ifdef __linux__
TEST(Meminfo, LivePeakRssIsAvailableOnLinux) {
  const PeakRss rss = peak_rss();
  EXPECT_TRUE(rss.available);
  EXPECT_GT(rss.bytes, 0u);
}
#endif

}  // namespace
}  // namespace rbb
