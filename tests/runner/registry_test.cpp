// Registry completeness: the experiment map of DESIGN.md Sect. 4 and
// the registered catalog can never drift apart.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "runner/registry.hpp"

namespace rbb::runner {
namespace {

TEST(Registry, EveryDesignClaimHasARegisteredExperiment) {
  // E1..E23 is the numbered experiment map of DESIGN.md Sect. 4.
  std::set<std::string> claimed;
  for (const Experiment& e : default_registry().experiments()) {
    if (!e.claim.empty()) claimed.insert(e.claim);
  }
  for (int i = 1; i <= 23; ++i) {
    const std::string claim = "E" + std::to_string(i);
    EXPECT_TRUE(claimed.count(claim) == 1)
        << claim << " from DESIGN.md Sect. 4 has no registered experiment";
  }
}

TEST(Registry, HoldsAllTwentyNineExperiments) {
  EXPECT_EQ(default_registry().experiments().size(), 29u);
}

TEST(Registry, BackendCapabilityIsDerivedFromTheDeclaredFamily) {
  // --backend=sharded is accepted exactly where the experiment's
  // declared process family has a src/par/ instantiation of the policy
  // core -- the capability is derived, not a hand-maintained bool.
  std::set<std::string> capable;
  for (const Experiment& e : default_registry().experiments()) {
    if (backend_capable(e.family)) capable.insert(e.name);
  }
  EXPECT_EQ(capable,
            (std::set<std::string>{"convergence", "stability", "empty_bins",
                                   "tetris_stability", "dchoices",
                                   "leaky_bins", "cover_time", "progress",
                                   "sharded_scaling", "max_load_regimes",
                                   "mixed_regime", "threshold_allocation",
                                   "trajectory"}));
}

TEST(Registry, EveryKernelFamilyIsBackendCapable) {
  // The policy refactor's payoff: every variant of the process core has
  // a sharded instantiation, so every kernel family is capable; only
  // kNone (no round kernel) rejects the flag.
  EXPECT_FALSE(backend_capable(ProcessFamily::kNone));
  EXPECT_TRUE(backend_capable(ProcessFamily::kLoadOnly));
  EXPECT_TRUE(backend_capable(ProcessFamily::kToken));
  EXPECT_TRUE(backend_capable(ProcessFamily::kTetris));
  EXPECT_TRUE(backend_capable(ProcessFamily::kDChoices));
  EXPECT_TRUE(backend_capable(ProcessFamily::kThreshold));
  EXPECT_TRUE(backend_capable(ProcessFamily::kLeaky));
  EXPECT_TRUE(backend_capable(ProcessFamily::kMixed));
  EXPECT_TRUE(backend_capable(ProcessFamily::kKernelSuite));
}

TEST(Registry, NamesAreUniqueAndDeclarationsComplete) {
  std::set<std::string> names;
  for (const Experiment& e : default_registry().experiments()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate name " << e.name;
    EXPECT_FALSE(e.title.empty()) << e.name << " has no title";
    EXPECT_FALSE(e.description.empty()) << e.name << " has no description";
    EXPECT_TRUE(static_cast<bool>(e.run)) << e.name << " has no run fn";
    // The registry prepends the common Monte-Carlo, backend, and
    // telemetry knobs.
    ASSERT_GE(e.params.size(), 8u) << e.name;
    EXPECT_EQ(e.params[0].name, "seed") << e.name;
    EXPECT_EQ(e.params[1].name, "trials") << e.name;
    EXPECT_EQ(e.params[2].name, "backend") << e.name;
    EXPECT_EQ(e.params[2].default_value, "seq") << e.name;
    EXPECT_EQ(e.params[3].name, "threads") << e.name;
    EXPECT_EQ(e.params[4].name, "metrics") << e.name;
    EXPECT_EQ(e.params[4].type, ParamSpec::Type::kFlag) << e.name;
    EXPECT_EQ(e.params[5].name, "trace") << e.name;
    EXPECT_EQ(e.params[6].name, "repeat") << e.name;
    EXPECT_EQ(e.params[6].default_value, "1") << e.name;
    EXPECT_EQ(e.params[7].name, "trial-parallelism") << e.name;
    EXPECT_EQ(e.params[7].default_value, "auto") << e.name;
    for (const ParamSpec& spec : e.params) {
      EXPECT_FALSE(spec.help.empty())
          << e.name << " --" << spec.name << " has no help text";
      EXPECT_TRUE(spec.type == ParamSpec::Type::kFlag ||
                  parses_as(spec.default_value, spec.type))
          << e.name << " --" << spec.name << " default \""
          << spec.default_value << "\" does not parse as its own type";
    }
  }
}

TEST(Registry, CatalogSortsByClaimWithExtrasLast) {
  const auto catalog = default_registry().catalog();
  ASSERT_EQ(catalog.size(), 29u);
  EXPECT_EQ(catalog.front()->claim, "E1");
  EXPECT_TRUE(catalog[catalog.size() - 1]->claim.empty());
  EXPECT_TRUE(catalog[catalog.size() - 2]->claim.empty());
  EXPECT_TRUE(catalog[catalog.size() - 3]->claim.empty());
  // Numbered claims are non-decreasing across the catalog prefix.
  unsigned long last = 0;
  for (const Experiment* e : catalog) {
    if (e->claim.empty()) break;
    const unsigned long rank = std::stoul(e->claim.substr(1));
    EXPECT_GE(rank, last);
    last = rank;
  }
}

TEST(Registry, FindIsExactMatch) {
  EXPECT_NE(default_registry().find("stability"), nullptr);
  EXPECT_EQ(default_registry().find("stabilit"), nullptr);
  EXPECT_EQ(default_registry().find(""), nullptr);
}

TEST(Registry, AddRejectsBadDeclarations) {
  Registry registry;
  Experiment nameless;
  nameless.run = [](const RunContext&) { return ResultSet{}; };
  EXPECT_THROW(registry.add(nameless), std::invalid_argument);

  Experiment runless;
  runless.name = "x";
  EXPECT_THROW(registry.add(runless), std::invalid_argument);

  Experiment ok;
  ok.name = "x";
  ok.title = "t";
  ok.run = [](const RunContext&) { return ResultSet{}; };
  registry.add(ok);
  Experiment dup = ok;
  EXPECT_THROW(registry.add(dup), std::invalid_argument);

  Experiment redeclares;
  redeclares.name = "y";
  redeclares.params = {{"seed", ParamSpec::Type::kU64, "1", "clash"}};
  redeclares.run = [](const RunContext&) { return ResultSet{}; };
  EXPECT_THROW(registry.add(redeclares), std::invalid_argument);

  // CLI-reserved option names would be intercepted by `rbb run` before
  // parameter assignment (or shadow a prepended common spec) and be
  // silently unsettable.
  for (const char* reserved :
       {"backend", "threads", "metrics", "trace", "repeat",
        "trial-parallelism", "scale", "format", "out",
        "check", "help"}) {
    Experiment clash;
    clash.name = std::string("clash_") + reserved;
    clash.params = {{reserved, ParamSpec::Type::kString, "", "clash"}};
    clash.run = [](const RunContext&) { return ResultSet{}; };
    EXPECT_THROW(registry.add(clash), std::invalid_argument) << reserved;
  }
}

TEST(Registry, RunProducesTablesAtTinyScale) {
  // End-to-end through a real registration: one tiny stability run.
  const Experiment* e = default_registry().find("stability");
  ASSERT_NE(e, nullptr);
  ParamValues values(e->params);
  ASSERT_TRUE(values.set("trials", "1"));
  ASSERT_TRUE(values.set("n", "32"));
  ASSERT_TRUE(values.set("window-factor", "2"));
  const RunContext ctx{values, BenchScale::kSmoke};
  const ResultSet rs = e->run(ctx);
  ASSERT_EQ(rs.tables().size(), 1u);
  EXPECT_EQ(rs.tables().front().id, "E1_stability");
  EXPECT_EQ(rs.tables().front().data.row_count(), 1u);
}

TEST(Registry, RepeatKeepsOneExecutionAndRecordsTheCount) {
  const Experiment* e = default_registry().find("stability");
  ASSERT_NE(e, nullptr);
  ParamValues values(e->params);
  ASSERT_TRUE(values.set("trials", "1"));
  ASSERT_TRUE(values.set("n", "32"));
  ASSERT_TRUE(values.set("window-factor", "2"));
  ASSERT_TRUE(values.set("repeat", "3"));
  const CompletedRun run = run_experiment(*e, values, BenchScale::kSmoke);
  // Best-of-3 serializes exactly one execution's tables (trials are
  // seed-deterministic, so all three computed the same rows).
  ASSERT_EQ(run.results.tables().size(), 1u);
  EXPECT_EQ(run.results.tables().front().data.row_count(), 1u);
  EXPECT_EQ(run.meta.parallelism.repeat, 3u);
  EXPECT_GE(run.meta.wall_seconds, 0.0);

  ASSERT_TRUE(values.set("repeat", "0"));
  EXPECT_THROW(run_experiment(*e, values, BenchScale::kSmoke),
               std::invalid_argument);
}

TEST(Registry, TrialPlanSplitsTheThreadBudget) {
  const Experiment* e = default_registry().find("stability");
  ASSERT_NE(e, nullptr);
  ParamValues values(e->params);
  const RunContext ctx{values, BenchScale::kSmoke};

  // auto + --threads unset: the legacy shared-pool fan-out.
  EXPECT_EQ(ctx.trial_plan(8).trial_workers, 0u);

  // auto + an explicit budget: min(trials, budget) concurrent trials,
  // the budget split evenly across them.
  ASSERT_TRUE(values.set("threads", "8"));
  EXPECT_EQ(ctx.trial_plan(4).trial_workers, 4u);
  EXPECT_EQ(ctx.trial_plan(4).process_threads, 2u);
  EXPECT_EQ(ctx.trial_plan(100).trial_workers, 8u);
  EXPECT_EQ(ctx.trial_plan(100).process_threads, 1u);

  // Explicit width: the fan-out is pinned, the rest goes per-instance.
  ASSERT_TRUE(values.set("trial-parallelism", "2"));
  EXPECT_EQ(ctx.trial_plan(100).trial_workers, 2u);
  EXPECT_EQ(ctx.trial_plan(100).process_threads, 4u);
  ASSERT_TRUE(values.set("trial-parallelism", "1"));
  EXPECT_EQ(ctx.trial_plan(100).trial_workers, 1u);
  EXPECT_EQ(ctx.trial_plan(100).process_threads, 8u);

  // Malformed values fail loudly.
  ASSERT_TRUE(values.set("trial-parallelism", "fast"));
  EXPECT_THROW(ctx.trial_plan(4), std::invalid_argument);
  ASSERT_TRUE(values.set("trial-parallelism", "0"));
  EXPECT_THROW(ctx.trial_plan(4), std::invalid_argument);
}

TEST(Registry, SeedChangesResults) {
  const Experiment* e = default_registry().find("neg_assoc");
  ASSERT_NE(e, nullptr);
  auto estimate = [&](const char* seed) {
    ParamValues values(e->params);
    EXPECT_TRUE(values.set("trials", "2000"));
    EXPECT_TRUE(values.set("seed", seed));
    const RunContext ctx{values, BenchScale::kSmoke};
    const ResultSet rs = e->run(ctx);
    std::string estimates;  // all three probability estimates
    for (const auto& row : rs.tables().front().data.rows()) {
      estimates += row[2] + ";";
    }
    return estimates;
  };
  const std::string a = estimate("1");
  EXPECT_EQ(a, estimate("1")) << "same seed must reproduce bit-identically";
  EXPECT_NE(a, estimate("2"));
}

}  // namespace
}  // namespace rbb::runner
