// E15 -- extension [36]: repeated balls-into-bins where each re-launched
// ball picks d bins and joins the least loaded.
//
// Table: per n and d, the window max load.  d = 1 is the paper's process
// (~2 log2 n); d >= 2 collapses the maximum into the log log n regime --
// the "power of two choices" persists under repetition.
#include <cmath>

#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E15: repeated d-choices -- the [36] extension");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 8);
  const std::uint64_t wf = by_scale<std::uint64_t>(scale, 5, 15, 40);

  Table table({"n", "d", "window max (mean)", "window max (worst)",
               "max / log2 n", "log2 log2 n"});
  for (const std::uint32_t n : bench::n_sweep(scale)) {
    for (const std::uint32_t d : {1u, 2u, 3u}) {
      StabilityParams p;
      p.n = n;
      p.rounds = wf * n;
      p.trials = trials;
      p.seed = cli.u64("seed");
      p.process = d == 1 ? StabilityProcess::kRepeated
                         : StabilityProcess::kRepeatedDChoice;
      p.choices = d;
      const StabilityResult r = run_stability(p);
      table.row()
          .cell(std::uint64_t{n})
          .cell(std::uint64_t{d})
          .cell(r.window_max.mean(), 2)
          .cell(std::uint64_t{r.overall_max})
          .cell(r.window_max.mean() / log2n(n), 3)
          .cell(std::log2(log2n(n)), 2);
    }
  }
  bench::emit(table, "E15_dchoices",
              "repeated d-choices flattens the maximum load ([36])", scale);
  return 0;
}
