// The `rbb` CLI: one binary over the experiment registry.
//
//   rbb list                          catalog of registered experiments
//   rbb describe <experiment>         description + typed parameters
//   rbb run <experiment> [options]    one run, table/json/csv output
//   rbb sweep <experiment> [options]  cartesian parameter grids
//   rbb docs [--out=PATH] [--check]   (re)generate docs/experiments.md
//
// Shared options for run/sweep:
//   --scale=smoke|default|paper|mega   (default: $RBB_BENCH_SCALE, else default)
//   --format=table|json|csv       (default: table)
//   --out=PATH                    write the rendering to PATH, not stdout
//   --<param>=value               any parameter the experiment declares;
//                                 under `sweep`, comma-separated values
//                                 become a grid axis.
//
// The testable entry point takes the argument vector and streams
// explicitly; the binary's main() (tools/rbb.cpp) forwards argv.  Exit
// codes: 0 success, 1 runtime failure (unwritable --out, docs drift),
// 2 usage error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rbb::runner {

/// Runs one CLI invocation; `args` excludes argv[0].
int runner_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

/// argv adapter for tools/rbb.cpp.
int runner_main(int argc, const char* const* argv);

}  // namespace rbb::runner
