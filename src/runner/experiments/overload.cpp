// Overload -- Sect. 5 open question: does self-stabilization survive
// m > n balls (up to m = O(n log n))?  Rides outside the numbered
// experiment map (DESIGN.md Sect. 4).
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_overload(Registry& registry) {
  Experiment e;
  e.name = "overload";
  e.claim = "";
  e.title = "m > n: loads grow additively with m/n (open question)";
  e.description =
      "Per m/n ratio, the window max load, its ratio to (m/n + log2 n) "
      "(the natural guess for the overloaded regime), and the minimum "
      "empty fraction -- which drops below 1/4 once m/n is large, so the "
      "Lemma-1 argument visibly breaks while loads may stay moderate.";
  e.params = {
      {"n", ParamSpec::Type::kU64, "0", "bins (0 = scale default)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint32_t n =
        ctx.params.u64("n") != 0
            ? ctx.params.u32("n")
            : by_scale<std::uint32_t>(ctx.scale, 512, 2048, 8192);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 15, 40);

    const double logn = log2n(n);
    ResultSet rs;
    Table& table = rs.add_table(
        "E13_overload",
        "m > n: loads grow additively with m/n (open question)",
        {"m / n", "m", "window max (mean)", "max / (m/n + log2 n)",
         "min empty frac", "mean final max"});
    for (const double ratio : {0.5, 1.0, 2.0, 4.0, logn}) {
      const auto m =
          static_cast<std::uint64_t>(ratio * static_cast<double>(n));
      StabilityParams p;
      p.n = n;
      p.balls = m;
      p.rounds = wf * n;
      p.trials = trials;
      p.seed = ctx.seed();
      const StabilityResult r = run_stability(p);
      table.row()
          .cell(ratio, 2)
          .cell(m)
          .cell(r.window_max.mean(), 2)
          .cell(r.window_max.mean() / (ratio + logn), 3)
          .cell(r.min_empty_fraction.min(), 3)
          .cell(r.final_max.mean(), 2);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
