// E16 -- follow-up work [18] (Berenbrink et al., PODC 2016): leaky bins
// with Binomial(n, lambda) arrivals per round.
//
// Table: per lambda, the stationary window max load, mean queue mass per
// bin, and mean empty fraction.  Subcritical lambda < 1 is stable with
// O(log n)-ish loads; lambda = 1 loses the drift and the mass wanders.
#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E16: leaky bins (probabilistic Tetris of [18]) -- lambda sweep");
  cli.add_u64("n", 0, "bins (0 = scale default)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 8);
  const std::uint32_t n =
      cli.u64("n") != 0 ? static_cast<std::uint32_t>(cli.u64("n"))
                        : by_scale<std::uint32_t>(scale, 512, 2048, 8192);
  const std::uint64_t wf = by_scale<std::uint64_t>(scale, 5, 15, 40);

  Table table({"lambda", "window max (mean)", "max / log2 n",
               "mean mass / bin", "mean empty frac"});
  for (const double lambda : {0.5, 0.75, 0.9, 0.95, 1.0}) {
    LeakyParams p;
    p.n = n;
    p.lambda = lambda;
    p.burn_in = 2ull * n;
    p.rounds = wf * n;
    p.trials = trials;
    p.seed = cli.u64("seed");
    const LeakyResult r = run_leaky(p);
    table.row()
        .cell(lambda, 2)
        .cell(r.window_max.mean(), 2)
        .cell(r.window_max.mean() / log2n(n), 3)
        .cell(r.mean_total_per_bin.mean(), 3)
        .cell(r.mean_empty_fraction.mean(), 3);
  }
  bench::emit(table, "E16_leaky_bins",
              "leaky bins: stability below the critical arrival rate "
              "([18])",
              scale);
  return 0;
}
