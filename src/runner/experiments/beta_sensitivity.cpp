// E13 -- ablation of the legitimacy constant beta (paper, Sect. 2:
// "M(q) <= beta log n for some absolute constant beta > 0"; the theorems
// never pin it).
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_beta_sensitivity(Registry& registry) {
  Experiment e;
  e.name = "beta_sensitivity";
  e.claim = "E13";
  e.title =
      "the legitimacy constant: critical beta ~ 1.5-2, default 4 has "
      "margin";
  e.description =
      "Per n, the fraction of trial windows that stay legitimate as a "
      "function of beta, plus the empirical critical beta (the window "
      "max divided by log2 n).  One stability run per n; every beta is "
      "evaluated against the same trial windows.  Shows where the "
      "paper's unspecified constant actually lives: windows of c*n "
      "rounds are legitimate for beta >~ 2, and beta = 4 (the repository "
      "default) has comfortable margin.";
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(3, 8, 16);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 20, 50);

    ResultSet rs;
    Table& table = rs.add_table(
        "Eb_beta_sensitivity",
        "the legitimacy constant: critical beta ~ 1.5-2, default 4 has "
        "margin",
        {"n", "window", "trials", "critical beta (mean)",
         "critical beta (worst)", "legit@beta=1.5", "legit@beta=2",
         "legit@beta=3", "legit@beta=4"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      StabilityParams p;
      p.n = n;
      p.rounds = wf * n;
      p.trials = trials;
      p.seed = ctx.seed();
      const StabilityResult r = run_stability(p);
      const double logn = log2n(n);
      auto legit_fraction = [&](double beta) {
        std::uint32_t legit = 0;
        for (const double wmax : r.per_trial_window_max) {
          if (wmax <= beta * logn) ++legit;
        }
        return static_cast<double>(legit) /
               static_cast<double>(r.per_trial_window_max.size());
      };
      table.row()
          .cell(std::uint64_t{n})
          .cell(p.rounds)
          .cell(std::uint64_t{trials})
          .cell(r.window_max.mean() / logn, 3)
          .cell(r.window_max.max() / logn, 3)
          .cell(legit_fraction(1.5), 2)
          .cell(legit_fraction(2.0), 2)
          .cell(legit_fraction(3.0), 2)
          .cell(legit_fraction(4.0), 2);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
