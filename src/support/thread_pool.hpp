// Minimal task-parallel substrate for Monte-Carlo sweeps (design choice D5).
//
// Parallelism in this repository is *only* across independent trials and
// sweep points, never inside a simulated round: each task owns its RNG
// substream (derived from (seed, task_index)), writes into its own result
// slot, and the combined output is bit-identical regardless of thread
// count.  This matches the Core Guidelines concurrency advice (share
// nothing mutable; communicate by transfer of ownership) and keeps every
// scientific result reproducible.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rbb {

/// Fixed-size pool of worker threads executing an indexed task function
/// over a range [0, task_count).  Work is distributed by atomic counter
/// (dynamic scheduling), which balances heterogeneous trial costs.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (with the
  /// RBB_THREADS environment variable as an override, useful on CI).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, task_count), potentially in parallel,
  /// and blocks until all tasks have finished.  Exceptions thrown by tasks
  /// are rethrown (the first one captured) after the batch drains.  The
  /// callable is a template parameter: workers dispatch through one
  /// per-batch function pointer, so fn's body stays inlinable (no
  /// per-task std::function indirection).
  template <typename Fn>
  void for_each(std::uint64_t task_count, Fn&& fn) {
    if (task_count == 0) return;
    auto batch = std::make_shared<Batch>();
    batch->task_count = task_count;
    batch->context = std::addressof(fn);
    batch->invoke = [](void* context, std::uint64_t i) {
      (*static_cast<std::remove_reference_t<Fn>*>(context))(i);
    };
    run_batch(std::move(batch));
  }

  /// Type-erased convenience wrapper over for_each.
  void parallel_for(std::uint64_t task_count,
                    const std::function<void(std::uint64_t)>& fn);

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Number of threads a default-constructed pool would use.
  [[nodiscard]] static unsigned default_thread_count();

  /// A process-wide shared pool for the experiment drivers.
  [[nodiscard]] static ThreadPool& global();

  /// One submitted for_each call: an index space plus a context/function-
  /// pointer pair erased once per batch (public only for internal
  /// linkage; not part of the API).
  struct Batch {
    std::uint64_t task_count = 0;
    void* context = nullptr;
    void (*invoke)(void*, std::uint64_t) = nullptr;
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> done{0};
    std::exception_ptr first_error;  // guarded by the pool mutex
  };

 private:
  /// Submits the batch, participates in draining it, waits for
  /// completion, and rethrows the first captured task exception.
  void run_batch(std::shared_ptr<Batch> batch);

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  Batch* current_ = nullptr;                 // guarded by mutex_
  std::shared_ptr<Batch> current_owner_;     // guarded by mutex_
  bool shutting_down_ = false;
};

/// Convenience: run fn(i) for i in [0, task_count) on the global pool.
void parallel_for(std::uint64_t task_count,
                  const std::function<void(std::uint64_t)>& fn);

}  // namespace rbb
