// Flat-storage parity suite: the implicit-FIFO token core
// (core/kernel/token_store.hpp) against a retained naive reference
// (token_reference.hpp), across QueuePolicy {FIFO, LIFO, random} x
// backends {seq xoshiro, seq-counter, sharded 1/2/8 workers x shard
// sizes {64, 256, 1024}} -- including cover-time visit tracking,
// mid-run reassign() rebuilds, and the check_invariants / snapshot
// inspection hooks.  This is the contract that replacing the per-bin
// BallQueues with flat storage changed no trajectory bit.
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/kernel/token_kernel.hpp"
#include "core/token_process.hpp"
#include "engine/engine.hpp"
#include "par/sharded_token_process.hpp"
#include "token_reference.hpp"

namespace rbb::par {
namespace {

using kernel::SequentialTokenProcess;
using kernel::TokenOptions;
using testing::ReferenceTokenProcess;

constexpr std::uint32_t kN = 512;
constexpr std::uint64_t kSeed = 0xfeedfaceULL;
constexpr std::uint64_t kRounds = 32;

const QueuePolicy kPolicies[] = {QueuePolicy::kFifo, QueuePolicy::kLifo,
                                 QueuePolicy::kRandom};

/// Skewed start: four tokens per occupied bin, so every policy has
/// real intra-bin ordering decisions from round one.
std::vector<std::uint32_t> skewed_placement(std::uint32_t n) {
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = i % (n / 4);
  return placement;
}

/// Asserts full observable state equality: token positions, progress,
/// and every queue's content in arrival order.
template <typename Core, typename Ref>
void expect_same_state(const Core& core, const Ref& ref,
                       const char* what) {
  ASSERT_EQ(core.round(), ref.round()) << what;
  for (std::uint32_t i = 0; i < core.token_count(); ++i) {
    ASSERT_EQ(core.token_bin(i), ref.token_bin(i))
        << what << " token " << i << " round " << core.round();
    ASSERT_EQ(core.progress(i), ref.progress(i))
        << what << " token " << i << " round " << core.round();
  }
  for (std::uint32_t u = 0; u < core.bin_count(); ++u) {
    ASSERT_EQ(core.queue_snapshot(u), ref.queue(u))
        << what << " bin " << u << " round " << core.round();
  }
}

TEST(FlatTokenParity, SeqXoshiroMatchesReferenceEveryPolicy) {
  for (const QueuePolicy policy : kPolicies) {
    const TokenOptions options{.track_visits = false, .policy = policy};
    SequentialTokenProcess core(kN, skewed_placement(kN), Rng(kSeed),
                                options);
    ReferenceTokenProcess<kernel::SequentialStream> ref(
        kN, skewed_placement(kN), kernel::SequentialStream(Rng(kSeed)),
        options);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      core.step();
      ref.step();
      expect_same_state(core, ref, to_string(policy));
    }
    ASSERT_NO_THROW(core.check_invariants());
  }
}

TEST(FlatTokenParity, SeqCounterMatchesReferenceEveryPolicy) {
  for (const QueuePolicy policy : kPolicies) {
    const TokenOptions options{.track_visits = false, .policy = policy};
    SequentialCounterTokenProcess core(kN, skewed_placement(kN), kSeed,
                                       options);
    ReferenceTokenProcess<kernel::CounterStream> ref(
        kN, skewed_placement(kN), kernel::CounterStream(kSeed), options);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      core.step();
      ref.step();
      expect_same_state(core, ref, to_string(policy));
    }
    ASSERT_NO_THROW(core.check_invariants());
  }
}

TEST(FlatTokenParity, ShardedMatchesReferenceAcrossGrid) {
  for (const QueuePolicy policy : kPolicies) {
    const TokenOptions options{.track_visits = false, .policy = policy};
    ReferenceTokenProcess<kernel::CounterStream> ref(
        kN, skewed_placement(kN), kernel::CounterStream(kSeed), options);
    ref.run(kRounds);
    for (const unsigned threads : {1u, 2u, 8u}) {
      for (const std::uint32_t shard : {64u, 256u, 1024u}) {
        ShardedTokenProcess core(kN, skewed_placement(kN), kSeed,
                                 ShardedOptions{threads, shard}, options);
        core.run(kRounds);
        expect_same_state(core, ref, to_string(policy));
        ASSERT_NO_THROW(core.check_invariants());
      }
    }
  }
}

TEST(FlatTokenParity, ReassignMidRunMatchesReference) {
  for (const QueuePolicy policy : kPolicies) {
    const TokenOptions options{.track_visits = true, .policy = policy};
    ShardedTokenProcess core(kN, skewed_placement(kN), kSeed,
                             ShardedOptions{2, 128}, options);
    ReferenceTokenProcess<kernel::CounterStream> ref(
        kN, skewed_placement(kN), kernel::CounterStream(kSeed), options);
    core.run(10);
    ref.run(10);
    const std::vector<std::uint32_t> pile(kN, 3u);  // adversarial pile-up
    core.reassign(pile);
    ref.reassign(pile);
    for (std::uint64_t r = 0; r < 12; ++r) {
      core.step();
      ref.step();
      expect_same_state(core, ref, to_string(policy));
    }
    for (std::uint32_t i = 0; i < kN; ++i) {
      ASSERT_EQ(core.visited_count(i), ref.visited_count(i)) << "token "
                                                             << i;
    }
    ASSERT_NO_THROW(core.check_invariants());
  }
}

TEST(FlatTokenParity, CoverTimeMatchesReferenceEveryPolicy) {
  constexpr std::uint32_t kSmall = 48;
  std::vector<std::uint32_t> placement(kSmall);
  for (std::uint32_t i = 0; i < kSmall; ++i) placement[i] = i;
  const std::uint64_t cap = 64ull * kSmall * kSmall;
  for (const QueuePolicy policy : kPolicies) {
    const TokenOptions options{.track_visits = true, .policy = policy};
    ShardedTokenProcess core(kSmall, placement, kSeed,
                             ShardedOptions{2, 64}, options);
    ReferenceTokenProcess<kernel::CounterStream> ref(
        kSmall, placement, kernel::CounterStream(kSeed), options);
    const auto core_cover = core.run_until_covered(cap);
    const auto ref_cover = ref.run_until_covered(cap);
    ASSERT_TRUE(core_cover.has_value()) << to_string(policy);
    ASSERT_TRUE(ref_cover.has_value()) << to_string(policy);
    EXPECT_EQ(*core_cover, *ref_cover) << to_string(policy);
    for (std::uint32_t i = 0; i < kSmall; ++i) {
      ASSERT_EQ(core.visited_count(i), ref.visited_count(i));
      ASSERT_EQ(core.cover_round(i), ref.cover_round(i));
    }
  }
}

TEST(FlatTokenParity, FifoAndLifoMatchLegacyTokenProcessDrawForDraw) {
  // The flat seq-xoshiro kernel must reproduce the classic TokenProcess
  // bit for bit under FIFO and LIFO on the complete graph (no pop
  // draws, so storage is the only thing that changed).  Random is
  // exempt by design: the flat store removes the k-th in arrival order
  // where the legacy BallQueue swap-removes (same first token, different
  // residual order) -- pinned instead by the reference suites above.
  for (const QueuePolicy policy : {QueuePolicy::kFifo, QueuePolicy::kLifo}) {
    TokenProcess::Options legacy_options;
    legacy_options.policy = policy;
    legacy_options.track_visits = false;
    TokenProcess legacy(kN, skewed_placement(kN), legacy_options,
                        Rng(kSeed));
    SequentialTokenProcess flat(
        kN, skewed_placement(kN), Rng(kSeed),
        TokenOptions{.track_visits = false, .policy = policy});
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      legacy.step();
      flat.step();
      for (std::uint32_t i = 0; i < kN; ++i) {
        ASSERT_EQ(flat.token_bin(i), legacy.token_bin(i))
            << to_string(policy) << " token " << i << " round " << r;
        ASSERT_EQ(flat.progress(i), legacy.progress(i))
            << to_string(policy) << " token " << i << " round " << r;
      }
    }
    EXPECT_EQ(flat.max_load(), legacy.max_load());
    EXPECT_EQ(flat.empty_bins(), legacy.empty_bins());
  }
}

TEST(FlatTokenParity, SnapshotOrderIsArrivalOrderEveryPolicy) {
  // All tokens in bin 0: the initial snapshot must read 0..m-1 (arrival
  // = token-id order) for every policy orientation, including the
  // LIFO-oriented list, which stores newest-first internally.
  for (const QueuePolicy policy : kPolicies) {
    SequentialCounterTokenProcess proc(
        kN, std::vector<std::uint32_t>(kN, 0u), kSeed,
        TokenOptions{.track_visits = false, .policy = policy});
    const std::vector<std::uint32_t> snap = proc.queue_snapshot(0);
    ASSERT_EQ(snap.size(), kN) << to_string(policy);
    for (std::uint32_t i = 0; i < kN; ++i) {
      ASSERT_EQ(snap[i], i) << to_string(policy);
    }
    // One round: FIFO releases token 0, LIFO token kN-1.
    proc.step();
    if (policy == QueuePolicy::kFifo) {
      EXPECT_EQ(proc.progress(0), 1u);
      EXPECT_EQ(proc.queue_snapshot(0).front(), 1u);
    } else if (policy == QueuePolicy::kLifo) {
      EXPECT_EQ(proc.progress(kN - 1), 1u);
    }
    ASSERT_NO_THROW(proc.check_invariants());
  }
}

TEST(FlatTokenParity, RejectsBadConstructionAndReassign) {
  const TokenOptions options{.track_visits = false,
                             .policy = QueuePolicy::kRandom};
  EXPECT_THROW(SequentialTokenProcess(0, {0u}, Rng(1), options),
               std::invalid_argument);
  EXPECT_THROW(SequentialTokenProcess(8, {}, Rng(1), options),
               std::invalid_argument);
  EXPECT_THROW(SequentialTokenProcess(8, {8u}, Rng(1), options),
               std::invalid_argument);
  SequentialTokenProcess proc(8, {1u, 1u, 2u}, Rng(1), options);
  EXPECT_THROW(proc.reassign({0u}), std::invalid_argument);
  EXPECT_THROW(proc.reassign({0u, 1u, 8u}), std::invalid_argument);
}

static_assert(SimProcess<kernel::SequentialTokenProcess>,
              "the flat sequential token kernel must satisfy the engine "
              "concept");

TEST(FlatTokenParity, EngineDrivesTheSeqKernel) {
  Engine engine(SequentialTokenProcess(
      kN, skewed_placement(kN), Rng(kSeed),
      TokenOptions{.track_visits = false, .policy = QueuePolicy::kRandom}));
  MinEmptyFraction memp;
  const EngineResult r = engine.run_rounds(8, memp);
  EXPECT_EQ(r.rounds, 8u);
  EXPECT_GT(memp.min_fraction, 0.0);
  EXPECT_EQ(engine.process().round(), 8u);
}

}  // namespace
}  // namespace rbb::par
