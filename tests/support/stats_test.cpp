// Tests for the online statistics accumulators.
#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rbb {
namespace {

TEST(OnlineMoments, EmptyAccumulator) {
  OnlineMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.stderror(), 0.0);
}

TEST(OnlineMoments, SingleValue) {
  OnlineMoments m;
  m.add(5.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.min(), 5.0);
  EXPECT_EQ(m.max(), 5.0);
}

TEST(OnlineMoments, KnownMeanAndVariance) {
  OnlineMoments m;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  // Sample variance of the classic example: 32/7.
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(m.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(m.min(), 2.0);
  EXPECT_EQ(m.max(), 9.0);
}

TEST(OnlineMoments, MergeMatchesSequential) {
  OnlineMoments all;
  OnlineMoments a;
  OnlineMoments b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineMoments, MergeWithEmpty) {
  OnlineMoments a;
  a.add(1.0);
  a.add(3.0);
  OnlineMoments empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineMoments b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(OnlineMoments, Ci95ShrinksWithSamples) {
  OnlineMoments small;
  OnlineMoments large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count_at(3), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_EQ(h.tail_fraction(0), 0.0);
  EXPECT_THROW((void)h.quantile(0.5), std::logic_error);
}

TEST(Histogram, AddAndQuery) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(7, 4);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count_at(3), 2u);
  EXPECT_EQ(h.count_at(7), 4u);
  EXPECT_EQ(h.count_at(5), 0u);
  EXPECT_EQ(h.min_value(), 3u);
  EXPECT_EQ(h.max_value(), 7u);
  EXPECT_NEAR(h.mean(), (3.0 * 2 + 7.0 * 4) / 6.0, 1e-12);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(0.5), 50u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, TailFraction) {
  Histogram h;
  for (std::uint64_t v = 0; v < 10; ++v) h.add(v);
  EXPECT_NEAR(h.tail_fraction(0), 1.0, 1e-12);
  EXPECT_NEAR(h.tail_fraction(5), 0.5, 1e-12);
  EXPECT_NEAR(h.tail_fraction(10), 0.0, 1e-12);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(10);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count_at(2), 2u);
  EXPECT_EQ(a.count_at(10), 1u);
  EXPECT_EQ(a.max_value(), 10u);
}

TEST(TotalVariation, UniformDistributionIsZero) {
  EXPECT_NEAR(total_variation_from_uniform({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(TotalVariation, PointMassIsMaximal) {
  // TV(point mass, uniform over n) = 1 - 1/n.
  EXPECT_NEAR(total_variation_from_uniform({10, 0, 0, 0}), 0.75, 1e-12);
}

TEST(TotalVariation, KnownValue) {
  // p = (0.5, 0.5, 0, 0) vs uniform (0.25 each): TV = 0.5 * (0.25 + 0.25
  // + 0.25 + 0.25) = 0.5.
  EXPECT_NEAR(total_variation_from_uniform({1, 1, 0, 0}), 0.5, 1e-12);
}

TEST(TotalVariation, Validation) {
  EXPECT_THROW((void)total_variation_from_uniform({}),
               std::invalid_argument);
  EXPECT_THROW((void)total_variation_from_uniform({0, 0}),
               std::invalid_argument);
}

TEST(TotalVariationPair, IdenticalIsZeroDisjointIsOne) {
  EXPECT_NEAR(total_variation({2, 4}, {1, 2}), 0.0, 1e-12);  // same shape
  EXPECT_NEAR(total_variation({1, 0}, {0, 1}), 1.0, 1e-12);
  EXPECT_THROW((void)total_variation({1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW((void)total_variation({0}, {1}), std::invalid_argument);
}

TEST(MedianQuantile, Scalars) {
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.0);  // lower median
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0, 5.0}, 1.0), 5.0);
  EXPECT_THROW((void)median({}), std::logic_error);
  EXPECT_THROW((void)quantile({1.0}, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace rbb
