// Telemetry parity rider: instrumenting the kernels must not change
// the science.  The sharded kernels run the same trajectory whether
// telemetry is disabled, enabled, or enabled with a trace capturing --
// the ScopedPhase/counter hooks read clocks and bump thread-local
// cells, never kernel state or RNG streams.
//
// Under RBB_TELEMETRY=0 all three configurations are literally the
// same code, so this test doubles as a no-op-build smoke.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/token_process.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/sharded_process.hpp"
#include "par/sharded_token_process.hpp"

namespace rbb::obs {
namespace {

constexpr std::uint32_t kN = 2048;
constexpr std::uint64_t kSeed = 0x7e1e3ULL;
constexpr std::uint64_t kRounds = 32;

enum class Mode { kOff, kMetrics, kMetricsAndTrace };

/// Runs `body` under one telemetry configuration and restores the
/// registry to the disabled state afterwards.
template <typename Body>
auto with_mode(Mode mode, Body body) {
  reset();
  if (mode != Mode::kOff) {
    if (mode == Mode::kMetricsAndTrace) start_trace();
    set_enabled(true);
  }
  auto result = body();
  set_enabled(false);
  stop_trace();
  reset();
  return result;
}

/// Load-only trajectory: end-of-round stats plus the final load vector.
struct LoadTrajectory {
  std::vector<std::uint32_t> max_loads;
  std::vector<std::uint32_t> empty_bins;
  std::vector<std::uint64_t> departures;
  LoadConfig final_loads;

  bool operator==(const LoadTrajectory&) const = default;
};

LoadTrajectory run_load(Mode mode) {
  return with_mode(mode, [] {
    Rng cfg_rng(99);
    par::ShardedRepeatedBallsProcess proc(
        make_config(InitialConfig::kOnePerBin, kN, kN, cfg_rng), kSeed,
        par::ShardedOptions{.threads = 2, .shard_size = 256});
    LoadTrajectory t;
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      const RoundStats stats = proc.step();
      t.max_loads.push_back(stats.max_load);
      t.empty_bins.push_back(stats.empty_bins);
      t.departures.push_back(stats.departures);
    }
    t.final_loads = proc.loads();
    return t;
  });
}

/// Token state after a run: positions, progress, loads.
struct TokenState {
  std::vector<std::uint32_t> token_bin;
  std::vector<std::uint64_t> progress;
  LoadConfig loads;

  bool operator==(const TokenState&) const = default;
};

TokenState run_token(Mode mode) {
  return with_mode(mode, [] {
    par::ShardedTokenProcess proc(
        kN, identity_placement(kN), kSeed,
        par::ShardedOptions{.threads = 2, .shard_size = 256});
    proc.run(kRounds);
    TokenState state;
    for (std::uint32_t i = 0; i < proc.token_count(); ++i) {
      state.token_bin.push_back(proc.token_bin(i));
      state.progress.push_back(proc.progress(i));
    }
    state.loads = proc.loads();
    return state;
  });
}

TEST(ObsParity, LoadKernelTrajectoryUnchangedByTelemetry) {
  const LoadTrajectory off = run_load(Mode::kOff);
  const LoadTrajectory metrics = run_load(Mode::kMetrics);
  const LoadTrajectory traced = run_load(Mode::kMetricsAndTrace);
  EXPECT_EQ(off, metrics);
  EXPECT_EQ(off, traced);
}

TEST(ObsParity, TokenKernelStateUnchangedByTelemetry) {
  const TokenState off = run_token(Mode::kOff);
  const TokenState metrics = run_token(Mode::kMetrics);
  const TokenState traced = run_token(Mode::kMetricsAndTrace);
  EXPECT_EQ(off, metrics);
  EXPECT_EQ(off, traced);
}

#if RBB_TELEMETRY
// The parity above must not be vacuous: in the instrumented build a
// sharded run really records -- throw/commit phase time, draw-chunk
// flushes, pool batches.  (Under RBB_TELEMETRY=0 it records nothing by
// design; the zero-cost contract is pinned in metrics_test.cpp.)
TEST(ObsParity, InstrumentedRunActuallyRecords) {
  reset();
  set_enabled(true);
  {
    Rng cfg_rng(99);
    par::ShardedRepeatedBallsProcess proc(
        make_config(InitialConfig::kOnePerBin, kN, kN, cfg_rng), kSeed,
        par::ShardedOptions{.threads = 2, .shard_size = 256});
    for (std::uint64_t r = 0; r < 4; ++r) proc.step();
  }
  set_enabled(false);
  const MetricsSnapshot snap = scrape();
  reset();
  EXPECT_GT(snap.phase(Phase::kThrow), 0u);
  EXPECT_GT(snap.phase(Phase::kCommit), 0u);
  EXPECT_GT(snap.counter(Counter::kChunkFlushes), 0u);
  EXPECT_GT(snap.counter(Counter::kPoolBatches), 0u);
}
#endif  // RBB_TELEMETRY

}  // namespace
}  // namespace rbb::obs
