// E6 -- Lemma 5 Z-chain tail.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/zchain.cpp); this binary behaves like
// `rbb run zchain` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("zchain", argc, argv);
}
