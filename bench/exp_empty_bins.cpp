// E3 -- Lemmas 1-2 empty-bin floor.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/empty_bins.cpp); this binary behaves like
// `rbb run empty_bins` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("empty_bins", argc, argv);
}
