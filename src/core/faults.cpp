#include "core/faults.hpp"

#include <algorithm>
#include <stdexcept>

namespace rbb {

const char* to_string(FaultStrategy strategy) {
  switch (strategy) {
    case FaultStrategy::kAllToOne: return "all-to-one";
    case FaultStrategy::kRandom: return "random";
    case FaultStrategy::kHalfBins: return "half-bins";
    case FaultStrategy::kReverseSort: return "reverse-sort";
  }
  return "unknown";
}

FaultStrategy fault_strategy_from_string(const std::string& s) {
  if (s == "all-to-one") return FaultStrategy::kAllToOne;
  if (s == "random") return FaultStrategy::kRandom;
  if (s == "half-bins") return FaultStrategy::kHalfBins;
  if (s == "reverse-sort") return FaultStrategy::kReverseSort;
  throw std::invalid_argument("fault_strategy_from_string: unknown: " + s);
}

LoadConfig apply_fault(FaultStrategy strategy, std::uint32_t bins,
                       std::uint64_t balls, const LoadConfig& current,
                       Rng& rng) {
  switch (strategy) {
    case FaultStrategy::kAllToOne:
      return make_config(InitialConfig::kAllInOne, bins, balls, rng);
    case FaultStrategy::kRandom:
      return make_config(InitialConfig::kRandom, bins, balls, rng);
    case FaultStrategy::kHalfBins:
      return make_config(InitialConfig::kHalfLoaded, bins, balls, rng);
    case FaultStrategy::kReverseSort: {
      if (current.size() != bins || total_balls(current) != balls) {
        throw std::invalid_argument("apply_fault: bad current configuration");
      }
      LoadConfig q = current;
      // Concentrate the existing profile: heaviest loads first.
      std::sort(q.begin(), q.end(), std::greater<>());
      return q;
    }
  }
  throw std::logic_error("apply_fault: bad strategy");
}

LoadConfig apply_partial_fault(const LoadConfig& current, std::uint64_t k) {
  if (current.empty()) {
    throw std::invalid_argument("apply_partial_fault: empty configuration");
  }
  LoadConfig q = current;
  // Repeatedly take one ball from the heaviest bin (!= 0) and move it to
  // bin 0.  A max-heap of (load, bin) would be asymptotically better, but
  // k is at most m and this runs outside any hot loop.
  for (std::uint64_t moved = 0; moved < k; ++moved) {
    std::uint32_t heaviest = 0;
    std::uint32_t best_load = 0;
    for (std::uint32_t u = 1; u < q.size(); ++u) {
      if (q[u] > best_load) {
        best_load = q[u];
        heaviest = u;
      }
    }
    if (best_load == 0) break;  // everything already in bin 0
    --q[heaviest];
    ++q[0];
  }
  return q;
}

std::vector<load_t> apply_fault_mixed(FaultStrategy strategy,
                                      std::uint32_t bins,
                                      std::uint32_t classes,
                                      const std::vector<load_t>& current,
                                      const std::vector<load_t>& capacities,
                                      Rng& rng) {
  if (bins == 0 || classes == 0) {
    throw std::invalid_argument("apply_fault_mixed: empty shape");
  }
  if (current.size() != static_cast<std::size_t>(bins) * classes ||
      capacities.size() != bins) {
    throw std::invalid_argument("apply_fault_mixed: mismatched tables");
  }

  std::vector<load_t> result(current.size(), 0);
  std::vector<load_t> load(bins, 0);  // per-bin totals of `result`
  const auto has_room = [&](std::uint32_t u) {
    return capacities[u] == 0 || load[u] < capacities[u];
  };
  // Places one ball of class c at `preferred`, spilling ascending
  // (wrapping) to the next bin with room.  The process invariant
  // guarantees total balls <= total capacity, so the probe terminates.
  const auto place = [&](std::uint32_t c, std::uint32_t preferred) {
    std::uint32_t u = preferred;
    while (!has_room(u)) u = (u + 1) % bins;
    ++result[static_cast<std::size_t>(u) * classes + c];
    ++load[u];
  };

  // The i-th ball (class-ascending order) goes to the strategy's i-th
  // preferred bin; pairing is deterministic given the strategy draws.
  std::uint64_t i = 0;
  const auto for_each_ball = [&](auto&& preferred_of) {
    for (std::uint32_t c = 0; c < classes; ++c) {
      std::uint64_t total = 0;
      for (std::uint32_t u = 0; u < bins; ++u) {
        total += current[static_cast<std::size_t>(u) * classes + c];
      }
      for (std::uint64_t b = 0; b < total; ++b, ++i) {
        place(c, preferred_of(i));
      }
    }
  };

  switch (strategy) {
    case FaultStrategy::kAllToOne:
      // Bin 0 to its cap, then spill ascending: the capacity-aware
      // analogue of the all-in-one worst case.
      for_each_ball([](std::uint64_t) { return 0u; });
      break;
    case FaultStrategy::kRandom:
      for_each_ball([&](std::uint64_t) { return rng.index(bins); });
      break;
    case FaultStrategy::kHalfBins: {
      const std::uint32_t half = std::max<std::uint32_t>(1, bins / 2);
      for_each_ball([half](std::uint64_t ball) {
        return static_cast<std::uint32_t>(ball % half);
      });
      break;
    }
    case FaultStrategy::kReverseSort: {
      // Re-apply the heaviest existing per-bin totals to the lowest
      // indices: sort the current profile descending and use it as a
      // run-length preference sequence.
      std::vector<load_t> profile(bins, 0);
      for (std::uint32_t u = 0; u < bins; ++u) {
        for (std::uint32_t c = 0; c < classes; ++c) {
          profile[u] += current[static_cast<std::size_t>(u) * classes + c];
        }
      }
      std::sort(profile.begin(), profile.end(), std::greater<>());
      std::vector<std::uint32_t> prefix;  // ball index -> preferred bin
      for (std::uint32_t u = 0; u < bins; ++u) {
        for (load_t j = 0; j < profile[u]; ++j) prefix.push_back(u);
      }
      for_each_ball([&prefix](std::uint64_t ball) {
        return ball < prefix.size() ? prefix[ball] : 0u;
      });
      break;
    }
  }
  return result;
}

std::vector<std::uint32_t> apply_fault_tokens(FaultStrategy strategy,
                                              std::uint32_t bins,
                                              std::uint32_t tokens, Rng& rng) {
  if (bins == 0) throw std::invalid_argument("apply_fault_tokens: bins == 0");
  std::vector<std::uint32_t> pos(tokens, 0);
  switch (strategy) {
    case FaultStrategy::kAllToOne:
      // all zeros already
      break;
    case FaultStrategy::kRandom:
      for (auto& p : pos) p = rng.index(bins);
      break;
    case FaultStrategy::kHalfBins: {
      const std::uint32_t half = std::max<std::uint32_t>(1, bins / 2);
      for (std::uint32_t i = 0; i < tokens; ++i) pos[i] = i % half;
      break;
    }
    case FaultStrategy::kReverseSort:
      // For tokens there is no pre-existing profile to permute; pile the
      // tokens onto a sqrt(n)-sized set of bins (strongly adversarial but
      // distinct from all-to-one).
      {
        std::uint32_t spread = 1;
        while (spread * spread < bins) ++spread;
        for (std::uint32_t i = 0; i < tokens; ++i) pos[i] = i % spread;
      }
      break;
  }
  return pos;
}

}  // namespace rbb
