#include "support/scale.hpp"

#include <algorithm>
#include <cstdlib>

namespace rbb {

BenchScale bench_scale() {
  const char* env = std::getenv("RBB_BENCH_SCALE");
  if (env == nullptr) return BenchScale::kDefault;
  std::string v(env);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "smoke") return BenchScale::kSmoke;
  if (v == "paper") return BenchScale::kPaper;
  if (v == "mega") return BenchScale::kMega;
  return BenchScale::kDefault;
}

std::string to_string(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke: return "smoke";
    case BenchScale::kPaper: return "paper";
    case BenchScale::kMega: return "mega";
    case BenchScale::kDefault: break;
  }
  return "default";
}

std::string csv_dir() {
  const char* env = std::getenv("RBB_CSV_DIR");
  return env == nullptr ? std::string{} : std::string(env);
}

}  // namespace rbb
