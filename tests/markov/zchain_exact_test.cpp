// Tests for the exact Z-chain transient analysis (Lemma 5, eq. (4)).
#include "markov/zchain_exact.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "support/bounds.hpp"
#include "support/rng.hpp"
#include "tetris/leaky.hpp"
#include "tetris/zchain.hpp"

namespace rbb {
namespace {

TEST(ZChainExact, StartAtZeroIsAbsorbedImmediately) {
  const auto r = exact_zchain_survival(16, 0, 10);
  ASSERT_EQ(r.survival.size(), 11u);
  for (const double s : r.survival) EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_DOUBLE_EQ(r.expected_absorption, 0.0);
}

TEST(ZChainExact, SurvivalIsAProbabilityAndNonIncreasing) {
  const auto r = exact_zchain_survival(32, 5, 300);
  ASSERT_EQ(r.survival.size(), 301u);
  for (std::size_t t = 0; t < r.survival.size(); ++t) {
    EXPECT_GE(r.survival[t], 0.0);
    EXPECT_LE(r.survival[t], 1.0);
    if (t > 0) {
      EXPECT_LE(r.survival[t], r.survival[t - 1] + 1e-15);
    }
  }
  EXPECT_DOUBLE_EQ(r.survival[0], 1.0);
}

/// Survival cannot drop before t = k: the chain decreases by at most one
/// per step, so absorption from k needs at least k rounds.
TEST(ZChainExact, NoAbsorptionBeforeKSteps) {
  const std::uint64_t k = 7;
  const auto r = exact_zchain_survival(64, k, 50);
  for (std::uint64_t t = 0; t < k; ++t) {
    EXPECT_DOUBLE_EQ(r.survival[t], 1.0) << "t=" << t;
  }
  EXPECT_LT(r.survival[k], 1.0);  // immediate drain path has positive prob
}

/// Wald / optional stopping, exactly: while positive the chain moves by
/// -1 + Bin(3n/4, 1/n), so for 4 | n the drift is exactly -1/4 and (no
/// overshoot -- downward steps are unit) E[tau] = 4k exactly.
TEST(ZChainExact, ExpectedAbsorptionIsFourKExactly) {
  for (const std::uint64_t k : {1ull, 4ull, 20ull}) {
    const auto r = exact_zchain_survival(64, k, 4000);
    EXPECT_NEAR(r.expected_absorption, 4.0 * static_cast<double>(k), 1e-6)
        << "k=" << k;
    EXPECT_LT(r.saturated_mass, 1e-9);
  }
}

/// Lemma 5: P_k(tau > t) <= e^{-t/144} for every t >= 8k, verified
/// pointwise against the exact survival curve.
TEST(ZChainExact, Lemma5BoundHoldsPointwise) {
  const std::uint64_t k = 4;
  const auto r = exact_zchain_survival(64, k, 600);
  for (std::uint64_t t = 8 * k; t <= 600; t += 4) {
    EXPECT_LE(r.survival[t], zchain_tail_bound(static_cast<double>(t)) + 1e-12)
        << "t=" << t;
  }
}

/// The exact curve decays *much* faster than the Lemma 5 bound (the
/// paper's constant 1/144 is far from tight): the exact decay rate per
/// round is ~0.046, more than 5x the bound's 1/144 ~ 0.0069.
TEST(ZChainExact, ExactDecayBeatsLemma5Constant) {
  const auto r = exact_zchain_survival(64, 2, 400);
  // Fit rate between t = 100 and t = 300.
  const double rate =
      -(std::log(r.survival[300]) - std::log(r.survival[100])) / 200.0;
  EXPECT_GT(rate, 5.0 / 144.0);
}

/// Monte-Carlo cross-check against the simulated chain in tetris/zchain.
TEST(ZChainExact, MatchesSimulatedSurvival) {
  const std::uint32_t n = 32;
  const std::uint64_t k = 6;
  const std::uint64_t probe_t = 40;
  const auto exact = exact_zchain_survival(n, k, probe_t);
  const std::uint64_t trials = 30000;
  std::uint64_t survived = 0;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    Rng rng(99, trial);
    const std::uint64_t tau = sample_absorption_time(n, k, probe_t + 1, rng);
    if (tau > probe_t) ++survived;
  }
  const double empirical =
      static_cast<double>(survived) / static_cast<double>(trials);
  EXPECT_NEAR(empirical, exact.survival[probe_t], 0.01);
}

TEST(ZChainExact, SaturationMassIsTrackedWithTinyCap) {
  // With an artificially tiny cap some mass must saturate.  Saturation
  // pushes walkers down toward absorption, so the truncated curve is a
  // lower bound on the wide-cap one, with pointwise error bounded by the
  // accumulated saturated mass.
  const auto tight = exact_zchain_survival(8, 6, 100, 8);
  const auto wide = exact_zchain_survival(8, 6, 100, 4096);
  EXPECT_GT(tight.saturated_mass, 0.0);
  EXPECT_LT(wide.saturated_mass, 1e-12);
  for (std::size_t t = 0; t <= 100; ++t) {
    EXPECT_LE(tight.survival[t], wide.survival[t] + 1e-12) << "t=" << t;
    EXPECT_LE(wide.survival[t] - tight.survival[t],
              tight.saturated_mass + 1e-12)
        << "t=" << t;
  }
}

TEST(ZChainExact, InvalidArgumentsThrow) {
  EXPECT_THROW((void)exact_zchain_survival(1, 3, 10), std::invalid_argument);
  EXPECT_THROW((void)exact_zchain_survival(16, 4096, 10, 4096),
               std::invalid_argument);
}

TEST(LeakyQueueExact, RateConservationForcesPEmptyOneMinusLambda) {
  // Rate balance in stationarity: the served rate P(Z >= 1) must equal
  // the arrival rate lambda, so P(Z = 0) = 1 - lambda *exactly*.
  for (const double lambda : {0.25, 0.5, 0.75, 0.9}) {
    const auto q = exact_leaky_queue_stationary(64, lambda);
    EXPECT_NEAR(q.p_empty, 1.0 - lambda, 1e-8) << "lambda=" << lambda;
  }
}

TEST(LeakyQueueExact, PmfIsADistributionWithMonotoneUpperTail) {
  const auto q = exact_leaky_queue_stationary(32, 0.75);
  double total = 0.0;
  for (const double v : q.pmf) {
    EXPECT_GE(v, -1e-15);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(q.mean, 0.0);
}

TEST(LeakyQueueExact, QueueGrowsAsLambdaApproachesOne) {
  double prev_mean = -1.0;
  std::uint64_t prev_q999 = 0;
  for (const double lambda : {0.5, 0.75, 0.9, 0.97}) {
    const auto q = exact_leaky_queue_stationary(64, lambda);
    EXPECT_GT(q.mean, prev_mean) << "lambda=" << lambda;
    EXPECT_GE(q.q999, prev_q999) << "lambda=" << lambda;
    prev_mean = q.mean;
    prev_q999 = q.q999;
  }
}

TEST(LeakyQueueExact, MatchesSimulatedLeakyBinsOccupancy) {
  // The exact single-queue law is the marginal of the n-bin simulation:
  // compare the stationary load histogram pooled across bins and rounds.
  const std::uint32_t n = 64;
  const double lambda = 0.75;
  const auto exact = exact_leaky_queue_stationary(n, lambda);

  LeakyBinsProcess proc(LoadConfig(n, 1), lambda, Rng(31337));
  proc.run(2000);  // burn-in
  std::vector<double> empirical(16, 0.0);
  const int rounds = 4000;
  for (int t = 0; t < rounds; ++t) {
    proc.step();
    for (const std::uint32_t load : proc.loads()) {
      if (load < empirical.size()) empirical[load] += 1.0;
    }
  }
  for (double& v : empirical) v /= static_cast<double>(rounds) * n;
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(empirical[k], exact.pmf[k], 0.02) << "k=" << k;
  }
}

TEST(LeakyQueueExact, InvalidLambdaThrows) {
  EXPECT_THROW((void)exact_leaky_queue_stationary(16, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)exact_leaky_queue_stationary(16, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)exact_leaky_queue_stationary(16, 1.5),
               std::invalid_argument);
  EXPECT_THROW((void)exact_leaky_queue_stationary(1, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace rbb
