// Golden tests for the Chrome-trace exporter (src/obs/trace_export.*):
// the emitted document is byte-stable (fixed key order, fixed
// microsecond formatting, deterministic event sort), so a JSON consumer
// -- Perfetto, chrome://tracing, `python3 -c "import json; ..."` in CI
// -- always sees the same shape.
//
// Events are injected through the record_span_at test hook (explicit
// thread id, epoch-relative timestamps, no clock reads), which is what
// makes exact-byte goldens possible.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rbb::obs {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    stop_trace();
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    stop_trace();
    reset();
  }
};

constexpr const char* kEmptyGolden =
    "{\n"
    "  \"displayTimeUnit\": \"ms\",\n"
    "  \"traceEvents\": []\n"
    "}\n";

TEST_F(TraceExportTest, EmptyTraceGolden) {
  // Holds in both builds: RBB_TELEMETRY=0 always exports this document.
  EXPECT_EQ(chrome_trace_json(), kEmptyGolden);
}

#if RBB_TELEMETRY

TEST_F(TraceExportTest, GoldenBytesWithDeterministicSort) {
  start_trace();
  // Inserted out of order on purpose: the exporter sorts by
  // (ts, tid, name), so the golden pins the deterministic order too.
  record_span_at("round", 0, 2500, 1250);
  record_span_at("throw", 1, 500, 250);
  record_span_at("commit", 0, 500, 100);
  stop_trace();
  const std::string golden =
      "{\n"
      "  \"displayTimeUnit\": \"ms\",\n"
      "  \"traceEvents\": [\n"
      "    {\"name\": \"commit\", \"cat\": \"rbb\", \"ph\": \"X\", "
      "\"ts\": 0.500, \"dur\": 0.100, \"pid\": 1, \"tid\": 0},\n"
      "    {\"name\": \"throw\", \"cat\": \"rbb\", \"ph\": \"X\", "
      "\"ts\": 0.500, \"dur\": 0.250, \"pid\": 1, \"tid\": 1},\n"
      "    {\"name\": \"round\", \"cat\": \"rbb\", \"ph\": \"X\", "
      "\"ts\": 2.500, \"dur\": 1.250, \"pid\": 1, \"tid\": 0}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(chrome_trace_json(), golden);
}

TEST_F(TraceExportTest, MicrosecondFormattingIsExact) {
  start_trace();
  record_span_at("a", 0, 0, 7);            // sub-microsecond
  record_span_at("b", 0, 1, 999);          // fractional carry boundary
  record_span_at("c", 0, 1000, 1000000);   // exactly 1 us / 1 ms
  stop_trace();
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"ts\": 0.000, \"dur\": 0.007"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 0.001, \"dur\": 0.999"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1.000, \"dur\": 1000.000"),
            std::string::npos);
}

TEST_F(TraceExportTest, StartTraceClearsPriorEvents) {
  start_trace();
  record_span_at("stale", 0, 0, 1);
  stop_trace();
  start_trace();
  stop_trace();
  EXPECT_EQ(chrome_trace_json(), kEmptyGolden);
}

TEST_F(TraceExportTest, EventsIgnoredWhileNotTracing) {
  record_span_at("ghost", 0, 0, 1);
  record_span("ghost2", 10, 20);
  EXPECT_EQ(chrome_trace_json(), kEmptyGolden);
}

TEST_F(TraceExportTest, ScopedPhaseEmitsNamedEventWhileTracing) {
  set_enabled(true);
  start_trace();
  { const ScopedPhase span(Phase::kRescan); }
  stop_trace();
  set_enabled(false);
  EXPECT_NE(chrome_trace_json().find("\"name\": \"rescan\""),
            std::string::npos);
}

#endif  // RBB_TELEMETRY

TEST_F(TraceExportTest, WriteFileRoundTripsAndFailsCleanly) {
  const std::string path =
      ::testing::TempDir() + "/rbb_trace_export_test.json";
  ASSERT_TRUE(write_chrome_trace_file(path));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), chrome_trace_json());
  std::remove(path.c_str());
  EXPECT_FALSE(write_chrome_trace_file("/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace rbb::obs
