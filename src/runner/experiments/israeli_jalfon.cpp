// Israeli-Jalfon -- the single-token ancestor of the paper's protocol
// ([5] in the paper), in its synchronous lazy variant (selfstab/), plus
// the self-stabilization certifier harness.  Rides outside the numbered
// experiment map (DESIGN.md Sect. 4).
#include <memory>
#include <vector>

#include "analysis/fit.hpp"
#include "core/config.hpp"
#include "core/process.hpp"
#include "graph/graph.hpp"
#include "runner/registry.hpp"
#include "selfstab/certifier.hpp"
#include "selfstab/israeli_jalfon.hpp"
#include "support/stats.hpp"

namespace rbb::runner {

namespace {

/// Mean coalescence time over `trials` from the every-node placement.
OnlineMoments coalescence_rounds(const Graph* graph, std::uint32_t n,
                                 std::uint32_t trials, std::uint64_t seed,
                                 std::uint64_t cap) {
  OnlineMoments moments;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    IsraeliJalfonProcess proc(graph, n, TokenPlacement::kEveryNode,
                              Rng(seed, trial));
    moments.add(static_cast<double>(proc.run_until_single(cap)));
  }
  return moments;
}

}  // namespace

void register_israeli_jalfon(Registry& registry) {
  Experiment e;
  e.name = "israeli_jalfon";
  e.claim = "";
  e.title = "coalescence time of lazy Israeli-Jalfon walks";
  e.description =
      "Three tables around the paper's single-token ancestor: (1) "
      "coalescence time from the every-node worst case across topologies "
      "(~Theta(n) on the clique, ~Theta(n^2) on the cycle, with "
      "power-law fits over the sweep); (2) the self-stabilization "
      "certifier applied to both Israeli-Jalfon mutual exclusion and "
      "repeated balls-into-bins, reporting Wilson-certified convergence "
      "probability, mean convergence rounds, and the closure-violation "
      "rate (Theorem 1's two halves, measured); (3) transient-fault "
      "recovery after spuriously injecting k extra tokens (recovery/n "
      "stays ~flat: pairwise meeting dominates).";
  e.run = [](const RunContext& ctx) {
    const std::uint64_t seed = ctx.seed();
    const std::uint32_t trials = ctx.trials_or(8, 24, 100);

    ResultSet rs;

    // ---- Table 1: coalescence time by topology ----
    const std::vector<std::uint32_t> ns =
        ctx.scale == BenchScale::kSmoke
            ? std::vector<std::uint32_t>{32, 64}
            : std::vector<std::uint32_t>{64, 128, 256, 512};
    Table& t1 = rs.add_table(
        "E23_israeli_jalfon",
        "coalescence time of lazy Israeli-Jalfon walks",
        {"topology", "n", "mean rounds", "ci95", "rounds/n", "rounds/n^2"});
    std::vector<double> xs;
    std::vector<double> clique_ys;
    std::vector<double> cycle_ys;
    for (const std::uint32_t n : ns) {
      const auto clique =
          coalescence_rounds(nullptr, n, trials, seed,
                             1000ull * n);  // clique coalesces in ~n
      const Graph cyc = make_cycle(n);
      const auto cycle =
          coalescence_rounds(&cyc, n, trials, seed + 1,
                             100ull * n * n);  // cycle needs ~n^2
      xs.push_back(n);
      clique_ys.push_back(clique.mean());
      cycle_ys.push_back(cycle.mean());
      const double dn = n;
      t1.row()
          .cell(std::string("complete"))
          .cell(static_cast<std::uint64_t>(n))
          .cell(clique.mean(), 1)
          .cell(clique.ci95_halfwidth(), 1)
          .cell(clique.mean() / dn, 3)
          .cell(clique.mean() / (dn * dn), 5);
      t1.row()
          .cell(std::string("cycle"))
          .cell(static_cast<std::uint64_t>(n))
          .cell(cycle.mean(), 1)
          .cell(cycle.ci95_halfwidth(), 1)
          .cell(cycle.mean() / dn, 3)
          .cell(cycle.mean() / (dn * dn), 5);
    }
    const PowerLawFit clique_fit = fit_power_law(xs, clique_ys);
    const PowerLawFit cycle_fit = fit_power_law(xs, cycle_ys);
    t1.row()
        .cell(std::string("fit: complete ~ n^a"))
        .cell(std::string("-"))
        .cell(clique_fit.exponent, 3)
        .cell(std::string("r2"))
        .cell(clique_fit.r_squared, 4)
        .cell(std::string("expect a ~ 1"));
    t1.row()
        .cell(std::string("fit: cycle ~ n^a"))
        .cell(std::string("-"))
        .cell(cycle_fit.exponent, 3)
        .cell(std::string("r2"))
        .cell(cycle_fit.r_squared, 4)
        .cell(std::string("expect a ~ 2"));

    // ---- Table 2: the certifier on both processes ----
    Table& t2 = rs.add_table(
        "E23_certifier",
        "certified convergence + closure (Theorem 1, measured)",
        {"process", "n", "P(conv) wilson95", "mean conv rounds",
         "conv rounds/n", "closure viol rate"});
    const std::uint32_t cert_trials =
        by_scale<std::uint32_t>(ctx.scale, 10, 40, 200);
    for (const std::uint32_t n : ns) {
      auto ij_factory = [n](std::uint64_t trial) {
        auto proc = std::make_shared<IsraeliJalfonProcess>(
            nullptr, n, TokenPlacement::kEveryNode, Rng(90, trial));
        StabTrialHooks hooks;
        hooks.step = [proc] { proc->step(); };
        hooks.legitimate = [proc] { return proc->is_legitimate(); };
        return hooks;
      };
      const CertifyResult ij = certify_self_stabilization(
          ij_factory, {.trials = cert_trials,
                       .horizon = 1000ull * n,
                       .closure_window = 100});
      t2.row()
          .cell(std::string("israeli-jalfon"))
          .cell(static_cast<std::uint64_t>(n))
          .cell(ij.p_converged_lower95, 4)
          .cell(ij.convergence_rounds.mean(), 1)
          .cell(ij.convergence_rounds.mean() / n, 3)
          .cell(ij.closure_violation_rate(), 5);

      auto rbb_factory = [n](std::uint64_t trial) {
        Rng rng(91, trial);
        auto proc = std::make_shared<RepeatedBallsProcess>(
            make_config(InitialConfig::kAllInOne, n, n, rng), rng);
        StabTrialHooks hooks;
        hooks.step = [proc] { proc->step(); };
        hooks.legitimate = [proc] { return proc->is_legitimate(4.0); };
        return hooks;
      };
      const CertifyResult rb = certify_self_stabilization(
          rbb_factory, {.trials = cert_trials,
                        .horizon = 16ull * n,
                        .closure_window = 100});
      t2.row()
          .cell(std::string("repeated-bb"))
          .cell(static_cast<std::uint64_t>(n))
          .cell(rb.p_converged_lower95, 4)
          .cell(rb.convergence_rounds.mean(), 1)
          .cell(rb.convergence_rounds.mean() / n, 3)
          .cell(rb.closure_violation_rate(), 5);
    }

    // ---- Table 3: transient-fault recovery (the Sect. 4.1 analogue) ----
    // From the legitimate single-token state, an adversary spuriously
    // creates k extra tokens; recovery = rounds until one token again.
    const std::uint32_t fault_n =
        by_scale<std::uint32_t>(ctx.scale, 64, 256, 1024);
    Table& t3 = rs.add_table(
        "E23_fault_recovery", "recovery from spurious token injection",
        {"n", "injected k", "mean recovery", "ci95", "recovery/n"});
    for (const double frac : {0.125, 0.25, 0.5, 1.0}) {
      const auto inject = static_cast<std::uint32_t>(frac * fault_n);
      OnlineMoments recovery;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        std::vector<std::uint8_t> tokens(fault_n, 0);
        tokens[0] = 1;
        IsraeliJalfonProcess proc(nullptr, fault_n, std::move(tokens),
                                  Rng(seed + 7, trial));
        proc.inject_tokens(inject);
        recovery.add(
            static_cast<double>(proc.run_until_single(100000ull * fault_n)));
      }
      t3.row()
          .cell(static_cast<std::uint64_t>(fault_n))
          .cell(static_cast<std::uint64_t>(inject))
          .cell(recovery.mean(), 1)
          .cell(recovery.ci95_halfwidth(), 1)
          .cell(recovery.mean() / fault_n, 3);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
