// The kill-point chaos harness (DESIGN.md Sect. 7): forked children
// run a checkpointing round loop with RBB_CRASH_AT armed at randomized
// rounds cycling through all four kill points (mid-payload, after-tmp,
// before-rename, post-rename); each child must die with the injected
// exit code 137, the next child resumes from whatever
// latest_checkpoint() finds, and the stitched trajectory must end
// byte-identical to an uninterrupted oracle.  Also pins the graceful-
// degradation contract: an unwritable checkpoint directory logs, bumps
// the failure/retry counters, and never stops the simulation.
#include <gtest/gtest.h>

#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "ckpt/io.hpp"
#include "core/config.hpp"
#include "core/mixed_config.hpp"
#include "obs/metrics.hpp"
#include "par/sharded_mixed.hpp"
#include "par/sharded_process.hpp"
#include "support/rng.hpp"
#include "support/serial.hpp"

namespace rbb {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kBins = 128;
constexpr std::uint64_t kSeed = 77;
constexpr std::uint64_t kEvery = 5;   // checkpoint period (rounds)
constexpr std::uint64_t kTarget = 60; // multiple of kEvery

LoadConfig start_config() {
  Rng rng(kSeed);
  return make_config(InitialConfig::kAllInOne, kBins, kBins, rng);
}

template <typename Proc>
std::string snapshot_of(const Proc& proc) {
  serial::ByteWriter w;
  proc.snapshot(w);
  return w.take();
}

template <typename Proc>
ckpt::Checkpoint make_checkpoint(const Proc& proc, ckpt::Family family) {
  ckpt::Checkpoint c;
  c.header.family = family;
  c.header.bins = kBins;
  c.header.entities = kBins;
  c.header.seed = kSeed;
  c.header.round = proc.round();
  c.meta = "experiment=chaos-harness\n";
  c.payload = snapshot_of(proc);
  return c;
}

/// Child body: arm the kill point, resume from the newest checkpoint
/// (if any), run to the target writing checkpoints every kEvery
/// rounds, exit 0.  An armed RBB_CRASH_AT _exit(137)s mid-write.
/// Never returns; child-side failures use distinct exit codes so the
/// parent's assertion names the failure.
template <typename MakeProc>
[[noreturn]] void child_run(const std::string& dir, const char* crash_spec,
                            ckpt::Family family, MakeProc make) {
  if (crash_spec != nullptr) {
    ::setenv("RBB_CRASH_AT", crash_spec, 1);
  } else {
    ::unsetenv("RBB_CRASH_AT");
  }
  auto proc = make();
  if (const auto latest = ckpt::latest_checkpoint(dir)) {
    try {
      const ckpt::Checkpoint c = ckpt::read_checkpoint(*latest);
      serial::ByteReader r(c.payload);
      proc.restore(r);
      if (!r.done()) ::_exit(3);
    } catch (...) {
      ::_exit(4);  // a crash must never leave an unreadable checkpoint
    }
  }
  ckpt::CheckpointPlan plan(dir, kEvery, 1000);
  while (proc.round() < kTarget) {
    proc.run(1);
    if (plan.due(proc.round())) {
      (void)plan.write(make_checkpoint(proc, family));
    }
  }
  ::_exit(0);
}

/// The kill/resume loop: strictly increasing randomized kill rounds
/// (so each armed kill point actually fires before the child passes
/// it), phases cycling through all four instants, then one clean child
/// to finish, then the stitched-vs-oracle comparison.
template <typename MakeProc>
void RunKillResumeLoop(const char* tag, ckpt::Family family, MakeProc make) {
  const fs::path dir = fs::temp_directory_path() /
                       ("rbb-chaos-" + std::to_string(::getpid()) + "-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto oracle = make();
  oracle.run(kTarget);
  const std::string want = snapshot_of(oracle);

  const char* const phases[] = {
      ckpt::kCrashMidPayload, ckpt::kCrashAfterTmp, ckpt::kCrashBeforeRename,
      ckpt::kCrashPostRename};
  Rng rng(kSeed * 31 + static_cast<std::uint64_t>(tag[0]));
  std::uint64_t round = 0;
  int kills = 0;
  for (int i = 0;; ++i) {
    round += kEvery * (1 + rng.below(2));  // randomized, multiple of kEvery
    if (round > kTarget - 2 * kEvery) break;
    const std::string spec =
        std::string(phases[i % 4]) + ":" + std::to_string(round);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) child_run(dir.string(), spec.c_str(), family, make);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "kill " << spec;
    ASSERT_EQ(WEXITSTATUS(status), ckpt::kCrashExitCode) << "kill " << spec;
    ++kills;
  }
  ASSERT_GE(kills, 4) << "harness bug: too few kill points exercised";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) child_run(dir.string(), nullptr, family, make);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "clean finishing child failed";

  const auto latest = ckpt::latest_checkpoint(dir.string());
  ASSERT_TRUE(latest.has_value());
  const ckpt::Checkpoint fin = ckpt::read_checkpoint(*latest);
  EXPECT_EQ(fin.header.round, kTarget);
  EXPECT_EQ(fin.payload, want)
      << "stitched kill/resume trajectory diverged from the oracle";
  fs::remove_all(dir);
}

TEST(CkptChaos, LoadKillResumeMatchesOracle) {
  RunKillResumeLoop("load", ckpt::Family::kLoad, [] {
    return par::SequentialCounterProcess(start_config(), kSeed);
  });
}

// threads=1 is the strictly-inline sharded execution: the full sharded
// kernel code path with no pool, which keeps fork() safe in this test.
// Multi-worker restore parity is pinned by tests/ckpt/roundtrip_test.
TEST(CkptChaos, ShardedMixedKillResumeMatchesOracle) {
  RunKillResumeLoop("mixed", ckpt::Family::kMixed, [] {
    return par::ShardedMixedProcess(
        make_mixed_spec(kBins, 2.0, "bimodal", "capped"), kSeed,
        par::ShardedOptions{.threads = 1, .shard_size = 64});
  });
}

// A crash leaves at most a .tmp orphan, which discovery must ignore.
TEST(CkptChaos, TmpOrphanIsIgnoredByDiscovery) {
  const fs::path dir = fs::temp_directory_path() /
                       ("rbb-chaos-" + std::to_string(::getpid()) + "-orphan");
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir / "rbb-00000000000000000005.ckpt.tmp") << "torn";
  std::ofstream(dir / "unrelated.txt") << "noise";
  EXPECT_FALSE(ckpt::latest_checkpoint(dir.string()).has_value());
  std::ofstream(dir / "rbb-00000000000000000010.ckpt") << "present";
  const auto latest = ckpt::latest_checkpoint(dir.string());
  ASSERT_TRUE(latest.has_value());
  EXPECT_NE(latest->find("rbb-00000000000000000010.ckpt"), std::string::npos);
  fs::remove_all(dir);
}

// Checkpoint I/O must degrade gracefully: an unwritable directory
// (here: the parent path is a regular file) logs, retries with
// backoff, bumps the telemetry counters, and lets the simulation run
// to completion.
TEST(CkptChaos, WriteFailureNeverStopsTheRun) {
  const fs::path blocker =
      fs::temp_directory_path() /
      ("rbb-chaos-" + std::to_string(::getpid()) + "-blocker");
  fs::remove_all(blocker);
  std::ofstream(blocker) << "i am a file, not a directory";
  const std::string dir = blocker.string() + "/sub";

#if RBB_TELEMETRY
  obs::reset();
  obs::set_enabled(true);
#endif
  ckpt::CheckpointPlan plan(dir, kEvery, 3);
  par::SequentialCounterProcess proc(start_config(), kSeed);
  int failed_writes = 0;
  while (proc.round() < 2 * kEvery) {
    proc.run(1);
    if (plan.due(proc.round())) {
      if (!plan.write(make_checkpoint(proc, ckpt::Family::kLoad))) {
        ++failed_writes;
      }
    }
  }
#if RBB_TELEMETRY
  obs::set_enabled(false);
  const obs::MetricsSnapshot m = obs::scrape();
  EXPECT_EQ(m.counter(obs::Counter::kCheckpointFailures), 2u);
  EXPECT_EQ(m.counter(obs::Counter::kCheckpointRetries), 4u);  // 2 per write
  EXPECT_EQ(m.counter(obs::Counter::kCheckpointWrites), 0u);
#endif
  EXPECT_EQ(failed_writes, 2);
  EXPECT_EQ(proc.round(), 2 * kEvery);  // the simulation kept going
  ASSERT_NO_THROW(proc.check_invariants());
  fs::remove_all(blocker);
}

}  // namespace
}  // namespace rbb
