#!/usr/bin/env python3
"""Compare two BENCH_*.json perf baselines row by row.

Both inputs are rbb.result.v1 documents produced by

    rbb run sharded_scaling --format=json --out=BENCH_sharded.json

Rows are keyed by (n, variant, backend, threads) -- older baselines
without a variant column are read as variant="load" -- and the tool
prints the per-row ns/ball delta (absolute and percent), plus rows that
exist on only one side (scales differ, kernels added/removed).  Exit
code 0 always: this is a reporting tool, the judgment call stays human
(wire a threshold in CI if a hard gate is ever wanted).

Usage:
    tools/bench_diff.py OLD.json NEW.json
"""

from __future__ import annotations

import json
import signal
import sys

# Behave under `| head`: die silently on a closed pipe.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_rows(path: str) -> dict[tuple, dict]:
    """Keyed ns/ball (and friends) per (n, variant, backend, threads)."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rbb.result.v1":
        sys.exit(f"{path}: not an rbb.result.v1 document "
                 f"(schema={doc.get('schema')!r})")
    tables = [t for t in doc.get("tables", [])
              if t.get("id") == "sharded_scaling"]
    if not tables:
        sys.exit(f"{path}: no sharded_scaling table")
    table = tables[0]
    columns = table["columns"]
    idx = {name: i for i, name in enumerate(columns)}
    rows: dict[tuple, dict] = {}
    for row in table["rows"]:
        variant = row[idx["variant"]] if "variant" in idx else "load"
        key = (row[idx["n"]], variant, row[idx["backend"]],
               row[idx["threads"]])
        rows[key] = {
            "ns_per_ball": float(row[idx["ns_per_ball"]]),
            "rounds_per_sec": float(row[idx["rounds_per_sec"]]),
        }
    return rows


def fmt_key(key: tuple) -> str:
    n, variant, backend, threads = key
    return f"n={n:<11} {variant:<8} {backend:<11} x{threads}"


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    old_path, new_path = sys.argv[1], sys.argv[2]
    old = load_rows(old_path)
    new = load_rows(new_path)

    shared = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    print(f"# bench diff: {old_path} -> {new_path}")
    print(f"# {len(shared)} shared rows, {len(only_old)} only-old, "
          f"{len(only_new)} only-new")
    if shared:
        print(f"{'row':<42} {'old ns/ball':>12} {'new ns/ball':>12} "
              f"{'delta':>9} {'pct':>8}")
        for key in shared:
            o = old[key]["ns_per_ball"]
            n = new[key]["ns_per_ball"]
            delta = n - o
            pct = (delta / o * 100.0) if o else float("inf")
            marker = " <-- slower" if pct > 10.0 else \
                     (" <-- faster" if pct < -10.0 else "")
            print(f"{fmt_key(key):<42} {o:>12.2f} {n:>12.2f} "
                  f"{delta:>+9.2f} {pct:>+7.1f}%{marker}")
    for key in only_old:
        print(f"only in {old_path}: {fmt_key(key)}")
    for key in only_new:
        print(f"only in {new_path}: {fmt_key(key)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
