// Tests for the self-stabilization certification harness.
#include "selfstab/certifier.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/config.hpp"
#include "core/process.hpp"
#include "selfstab/israeli_jalfon.hpp"

namespace rbb {
namespace {

/// Deterministic toy process: a countdown that becomes legitimate at 0
/// and stays there.
StabTrialFactory countdown_factory(std::uint64_t start) {
  return [start](std::uint64_t) {
    auto counter = std::make_shared<std::uint64_t>(start);
    StabTrialHooks hooks;
    hooks.step = [counter] {
      if (*counter > 0) --*counter;
    };
    hooks.legitimate = [counter] { return *counter == 0; };
    return hooks;
  };
}

TEST(Certifier, CountdownConvergesAtKnownRound) {
  const CertifyResult r = certify_self_stabilization(
      countdown_factory(7), {.trials = 10, .horizon = 100,
                             .closure_window = 20});
  EXPECT_EQ(r.trials, 10u);
  EXPECT_EQ(r.converged, 10u);
  EXPECT_DOUBLE_EQ(r.convergence_rounds.mean(), 7.0);
  EXPECT_DOUBLE_EQ(r.convergence_rounds.stddev(), 0.0);
  EXPECT_EQ(r.closure_violations, 0u);
  EXPECT_EQ(r.closure_rounds, 200u);
  EXPECT_DOUBLE_EQ(r.closure_violation_rate(), 0.0);
  EXPECT_GT(r.p_converged_lower95, 0.7);
}

TEST(Certifier, HorizonCutsOffSlowTrials) {
  const CertifyResult r = certify_self_stabilization(
      countdown_factory(50), {.trials = 5, .horizon = 10});
  EXPECT_EQ(r.converged, 0u);
  EXPECT_DOUBLE_EQ(r.p_converged_lower95, 0.0);
  EXPECT_EQ(r.closure_rounds, 0u);
}

TEST(Certifier, AlreadyLegitimateCountsAsZeroRounds) {
  const CertifyResult r = certify_self_stabilization(
      countdown_factory(0), {.trials = 3, .horizon = 10});
  EXPECT_EQ(r.converged, 3u);
  EXPECT_DOUBLE_EQ(r.convergence_rounds.mean(), 0.0);
}

TEST(Certifier, FlickeringProcessAccumulatesClosureViolations) {
  // Legitimate on even steps only: converges immediately, then violates
  // closure on every other round.
  auto factory = [](std::uint64_t) {
    auto step_count = std::make_shared<std::uint64_t>(0);
    StabTrialHooks hooks;
    hooks.step = [step_count] { ++*step_count; };
    hooks.legitimate = [step_count] { return *step_count % 2 == 0; };
    return hooks;
  };
  const CertifyResult r = certify_self_stabilization(
      factory, {.trials = 4, .horizon = 10, .closure_window = 10});
  EXPECT_EQ(r.converged, 4u);
  EXPECT_EQ(r.closure_rounds, 40u);
  EXPECT_EQ(r.closure_violations, 20u);
  EXPECT_DOUBLE_EQ(r.closure_violation_rate(), 0.5);
}

TEST(Certifier, EmptyHooksThrow) {
  auto factory = [](std::uint64_t) { return StabTrialHooks{}; };
  EXPECT_THROW((void)certify_self_stabilization(factory, {.trials = 1}),
               std::invalid_argument);
}

TEST(WilsonBound, BasicProperties) {
  EXPECT_DOUBLE_EQ(wilson_lower_bound(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(wilson_lower_bound(0, 10), 0.0);
  // Monotone in successes.
  double prev = -1.0;
  for (std::uint64_t s = 0; s <= 20; ++s) {
    const double low = wilson_lower_bound(s, 20);
    EXPECT_GE(low, prev);
    prev = low;
  }
  // All successes: bound approaches 1 as trials grow.
  EXPECT_GT(wilson_lower_bound(100, 100), wilson_lower_bound(10, 10));
  EXPECT_GT(wilson_lower_bound(1000, 1000), 0.99);
  EXPECT_LT(wilson_lower_bound(1000, 1000), 1.0);
  // Never exceeds the point estimate.
  EXPECT_LT(wilson_lower_bound(50, 100), 0.5);
  EXPECT_THROW((void)wilson_lower_bound(11, 10), std::invalid_argument);
}

/// End-to-end: certify the repeated balls-into-bins process itself from
/// the all-in-one worst case (Theorem 1: converge within O(n), then stay
/// legitimate).
TEST(Certifier, CertifiesRepeatedBallsIntoBins) {
  const std::uint32_t n = 128;
  auto factory = [n](std::uint64_t trial) {
    Rng rng(555, trial);
    auto proc = std::make_shared<RepeatedBallsProcess>(
        make_config(InitialConfig::kAllInOne, n, n, rng), rng);
    StabTrialHooks hooks;
    hooks.step = [proc] { proc->step(); };
    hooks.legitimate = [proc] { return proc->is_legitimate(4.0); };
    return hooks;
  };
  const CertifyResult r = certify_self_stabilization(
      factory, {.trials = 30, .horizon = 8 * n, .closure_window = 200});
  EXPECT_EQ(r.converged, 30u);
  EXPECT_GT(r.p_converged_lower95, 0.85);
  EXPECT_LT(r.convergence_rounds.mean(), 4.0 * n);
  // Convergence is declared the first round the load dips under the
  // beta log n threshold, while the transient is still draining, so the
  // next few rounds can wobble back above it; the certified closure
  // violation rate must nonetheless be small.
  EXPECT_LT(r.closure_violation_rate(), 0.05);
}

/// End-to-end: certify Israeli-Jalfon mutual exclusion on the clique.
TEST(Certifier, CertifiesIsraeliJalfon) {
  const std::uint32_t n = 24;
  auto factory = [n](std::uint64_t trial) {
    auto proc = std::make_shared<IsraeliJalfonProcess>(
        nullptr, n, TokenPlacement::kEveryNode, Rng(777, trial));
    StabTrialHooks hooks;
    hooks.step = [proc] { proc->step(); };
    hooks.legitimate = [proc] { return proc->is_legitimate(); };
    return hooks;
  };
  const CertifyResult r = certify_self_stabilization(
      factory, {.trials = 20, .horizon = 100000, .closure_window = 50});
  EXPECT_EQ(r.converged, 20u);
  // Tokens never split, so closure can never be violated.
  EXPECT_EQ(r.closure_violations, 0u);
}

}  // namespace
}  // namespace rbb
