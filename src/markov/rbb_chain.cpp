#include "markov/rbb_chain.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "support/bounds.hpp"

namespace rbb {

namespace {

/// Post-departure loads r_v = max(q_v - 1, 0) and the departure count h.
struct Departures {
  LoadConfig remaining;
  std::uint32_t count = 0;
};

Departures apply_departures(const LoadConfig& q) {
  Departures d;
  d.remaining.reserve(q.size());
  for (const std::uint32_t load : q) {
    if (load > 0) {
      d.remaining.push_back(load - 1);
      ++d.count;
    } else {
      d.remaining.push_back(0);
    }
  }
  return d;
}

/// Invokes fn(c, prob) for every arrival vector c (composition of `balls`
/// into `bins` parts), where prob = Multinomial(balls; c) / bins^balls.
/// Probabilities are computed in log space from exact log-factorials.
void for_each_arrival(std::uint32_t bins, std::uint32_t balls,
                      const std::function<void(const LoadConfig&, double)>& fn) {
  LoadConfig c(bins, 0);
  const double log_h_fact = log_factorial(balls);
  const double log_n = std::log(static_cast<double>(bins));
  // log_denominator accumulates sum_v log(c_v!) as the recursion fills c.
  std::function<void(std::uint32_t, std::uint32_t, double)> rec =
      [&](std::uint32_t pos, std::uint32_t left, double log_fact_sum) {
        if (pos + 1 == bins) {
          c[pos] = left;
          const double log_prob = log_h_fact - log_fact_sum -
                                  log_factorial(left) -
                                  static_cast<double>(balls) * log_n;
          fn(c, std::exp(log_prob));
          c[pos] = 0;
          return;
        }
        for (std::uint32_t k = 0; k <= left; ++k) {
          c[pos] = k;
          rec(pos + 1, left - k, log_fact_sum + log_factorial(k));
        }
        c[pos] = 0;
      };
  rec(0, balls, 0.0);
}

}  // namespace

DenseMatrix build_rbb_transition_matrix(const StateSpace& space) {
  const std::size_t s = space.size();
  const std::uint32_t n = space.bins();
  DenseMatrix p(s, s);
  LoadConfig next(n, 0);
  for (std::size_t from = 0; from < s; ++from) {
    const Departures d = apply_departures(space.config(from));
    for_each_arrival(n, d.count, [&](const LoadConfig& c, double prob) {
      for (std::uint32_t v = 0; v < n; ++v) next[v] = d.remaining[v] + c[v];
      p.at(from, space.index_of(next)) += prob;
    });
  }
  return p;
}

DenseMatrix build_graph_rbb_transition_matrix(const StateSpace& space,
                                              const Graph& graph) {
  const std::uint32_t n = space.bins();
  if (graph.node_count() != n) {
    throw std::invalid_argument("graph chain: node count mismatch");
  }
  if (graph.min_degree() == 0) {
    throw std::invalid_argument("graph chain: isolated node");
  }
  const std::size_t s = space.size();
  DenseMatrix p(s, s);
  std::vector<std::uint32_t> releasing;  // the non-empty bins of `from`
  LoadConfig next(n, 0);
  for (std::size_t from = 0; from < s; ++from) {
    const Departures d = apply_departures(space.config(from));
    releasing.clear();
    for (std::uint32_t u = 0; u < n; ++u) {
      if (space.config(from)[u] > 0) releasing.push_back(u);
    }
    // Depth-first product over each releasing bin's neighbor choices,
    // carrying the running arrival vector and probability.
    for (std::uint32_t v = 0; v < n; ++v) next[v] = d.remaining[v];
    std::function<void(std::size_t, double)> rec = [&](std::size_t i,
                                                       double prob) {
      if (i == releasing.size()) {
        p.at(from, space.index_of(next)) += prob;
        return;
      }
      const std::uint32_t u = releasing[i];
      const auto nbrs = graph.neighbors(u);
      const double step_prob = prob / static_cast<double>(nbrs.size());
      for (const std::uint32_t v : nbrs) {
        ++next[v];
        rec(i + 1, step_prob);
        --next[v];
      }
    };
    rec(0, 1.0);
  }
  return p;
}

std::vector<double> exact_distribution_after(const StateSpace& space,
                                             const DenseMatrix& p,
                                             const LoadConfig& q0,
                                             std::uint64_t rounds) {
  std::vector<double> dist(space.size(), 0.0);
  dist[space.index_of(q0)] = 1.0;
  for (std::uint64_t t = 0; t < rounds; ++t) dist = p.left_multiply(dist);
  return dist;
}

ExactFunctionals exact_functionals(const StateSpace& space,
                                   const std::vector<double>& dist,
                                   double beta) {
  if (dist.size() != space.size()) {
    throw std::invalid_argument("exact_functionals: size mismatch");
  }
  ExactFunctionals out;
  const auto n = static_cast<double>(space.bins());
  // P(M >= k): accumulate pmf of the max first.
  std::vector<double> max_pmf(space.balls() + 1, 0.0);
  for (std::size_t id = 0; id < space.size(); ++id) {
    const double w = dist[id];
    if (w == 0.0) continue;
    const LoadConfig& q = space.config(id);
    const std::uint32_t m = max_load(q);
    out.expected_max_load += w * m;
    out.expected_empty_fraction += w * empty_bins(q) / n;
    max_pmf[m] += w;
    if (is_legitimate(q, beta)) out.p_legitimate += w;
  }
  out.max_load_tail.assign(space.balls() + 1, 0.0);
  double tail = 0.0;
  for (std::size_t k = max_pmf.size(); k-- > 0;) {
    tail += max_pmf[k];
    out.max_load_tail[k] = tail;
  }
  return out;
}

double detailed_balance_residual(const DenseMatrix& p,
                                 const std::vector<double>& pi) {
  const std::size_t s = p.rows();
  if (pi.size() != s) {
    throw std::invalid_argument("detailed_balance_residual: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = i + 1; j < s; ++j) {
      const double flow_ij = pi[i] * p.at(i, j);
      const double flow_ji = pi[j] * p.at(j, i);
      worst = std::max(worst, std::abs(flow_ij - flow_ji));
    }
  }
  return worst;
}

double product_form_distance(const StateSpace& space,
                             const std::vector<double>& pi) {
  const std::uint32_t m = space.balls();
  // Variables: g(1..m) (g(0) = 0 gauge) followed by the constant, so
  // m + 1 unknowns.  One least-squares equation per state with pi > 0:
  //   sum_k count_k(q) g(k) + C = log pi(q).
  const std::size_t vars = static_cast<std::size_t>(m) + 1;
  DenseMatrix ata(vars, vars);
  std::vector<double> atb(vars, 0.0);
  std::vector<double> rowv(vars, 0.0);
  for (std::size_t id = 0; id < space.size(); ++id) {
    if (pi[id] <= 0.0) continue;
    std::fill(rowv.begin(), rowv.end(), 0.0);
    for (const std::uint32_t load : space.config(id)) {
      if (load >= 1) rowv[load - 1] += 1.0;
    }
    rowv[vars - 1] = 1.0;  // the constant
    const double b = std::log(pi[id]);
    for (std::size_t a = 0; a < vars; ++a) {
      if (rowv[a] == 0.0) continue;
      atb[a] += rowv[a] * b;
      for (std::size_t c = 0; c < vars; ++c) {
        ata.at(a, c) += rowv[a] * rowv[c];
      }
    }
  }
  // Ridge-stabilize: load values never attained make A^T A singular.
  for (std::size_t a = 0; a < vars; ++a) ata.at(a, a) += 1e-9;
  const std::vector<double> g = solve_linear(std::move(ata), std::move(atb));
  // Evaluate the fitted product measure and normalize on the state space.
  std::vector<double> fitted(space.size(), 0.0);
  double total = 0.0;
  for (std::size_t id = 0; id < space.size(); ++id) {
    double log_mu = g[vars - 1];
    for (const std::uint32_t load : space.config(id)) {
      if (load >= 1) log_mu += g[load - 1];
    }
    fitted[id] = std::exp(log_mu);
    total += fitted[id];
  }
  for (double& v : fitted) v /= total;
  return total_variation(pi, fitted);
}

std::uint64_t exact_mixing_time(const StateSpace& space, const DenseMatrix& p,
                                const std::vector<double>& pi, double eps,
                                std::uint64_t t_max,
                                std::vector<std::size_t> starts) {
  if (starts.empty()) {
    starts.resize(space.size());
    for (std::size_t i = 0; i < starts.size(); ++i) starts[i] = i;
  }
  std::vector<std::vector<double>> dists;
  dists.reserve(starts.size());
  for (const std::size_t s0 : starts) {
    std::vector<double> d(space.size(), 0.0);
    d[s0] = 1.0;
    dists.push_back(std::move(d));
  }
  for (std::uint64_t t = 0; t <= t_max; ++t) {
    double worst = 0.0;
    for (const auto& d : dists) {
      worst = std::max(worst, total_variation(d, pi));
    }
    if (worst <= eps) return t;
    if (t == t_max) break;
    for (auto& d : dists) d = p.left_multiply(d);
  }
  return t_max + 1;
}

std::vector<std::vector<double>> exact_arrival_joint_law(
    const StateSpace& space, const LoadConfig& q0) {
  const std::uint32_t n = space.bins();
  if (q0.size() != n || total_balls(q0) != space.balls()) {
    throw std::invalid_argument("arrival law: q0 not in state space");
  }
  std::vector<std::vector<double>> joint(
      n + 1, std::vector<double>(n + 1, 0.0));
  const Departures d0 = apply_departures(q0);
  LoadConfig q1(n, 0);
  for_each_arrival(n, d0.count, [&](const LoadConfig& c1, double p1) {
    for (std::uint32_t v = 0; v < n; ++v) q1[v] = d0.remaining[v] + c1[v];
    const Departures d1 = apply_departures(q1);
    const std::uint32_t x1 = c1[0];
    for_each_arrival(n, d1.count, [&](const LoadConfig& c2, double p2) {
      joint[x1][c2[0]] += p1 * p2;
    });
  });
  return joint;
}

ArrivalCorrelation exact_arrival_correlation(const StateSpace& space,
                                             const LoadConfig& q0) {
  const auto joint = exact_arrival_joint_law(space, q0);
  ArrivalCorrelation out;
  out.p_both_zero = joint[0][0];
  for (const double v : joint[0]) out.p_first_zero += v;
  for (const auto& row : joint) out.p_second_zero += row[0];
  return out;
}

}  // namespace rbb
