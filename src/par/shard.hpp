// Bin partitioning for the sharded round kernel (DESIGN.md Sect. 5).
//
// A ShardPlan cuts the bin range [0, n) into cache-aligned shards --
// contiguous, equally sized blocks whose load sub-vector fits in L1/L2
// -- and groups the shards into a fixed number of contiguous *stripes*,
// the unit of work handed to pool tasks.  Two properties matter:
//
//  * shard boundaries are multiples of 16 bins (16 x 4-byte loads = one
//    64-byte cache line), so two workers never write the same line when
//    each owns whole shards;
//  * the stripe count is fixed by the plan, NOT by the thread count.
//    Work is distributed stripe-by-stripe via the pool's dynamic
//    scheduler, so any number of threads drains the same stripe list --
//    and because every per-stripe output is either commutative (load
//    sums) or canonically ordered (arrivals sorted by releasing bin),
//    the result is bit-identical for every thread count and shard size.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace rbb::par {

/// Default bins per shard: 16384 x 4 bytes = 64 KiB, comfortably inside
/// a per-core L2 while amortizing per-shard buffer bookkeeping.
inline constexpr std::uint32_t kDefaultShardSize = 16384;

/// Upper bound on stripes (pool tasks per phase).  Small enough that
/// per-stripe accumulators stay cheap, large enough to load-balance any
/// realistic worker count with dynamic scheduling.
inline constexpr std::uint32_t kMaxStripes = 32;

/// The partition of [0, n) into shards and stripes.
class ShardPlan {
 public:
  /// `shard_size` = 0 picks the default; other values are rounded up to
  /// a multiple of 16 bins (cache-line alignment; see header comment).
  explicit ShardPlan(std::uint32_t n, std::uint32_t shard_size = 0) : n_(n) {
    if (n == 0) throw std::invalid_argument("ShardPlan: n == 0");
    shard_size_ = shard_size == 0 ? kDefaultShardSize : shard_size;
    shard_size_ = ((shard_size_ + 15u) / 16u) * 16u;
    shard_count_ = (n_ + shard_size_ - 1) / shard_size_;
    stripe_count_ = std::min(shard_count_, kMaxStripes);
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t shard_size() const noexcept {
    return shard_size_;
  }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] std::uint32_t stripe_count() const noexcept {
    return stripe_count_;
  }

  [[nodiscard]] std::uint32_t shard_of(std::uint32_t bin) const noexcept {
    return bin / shard_size_;
  }
  [[nodiscard]] std::uint32_t shard_begin(std::uint32_t shard) const noexcept {
    return shard * shard_size_;
  }
  [[nodiscard]] std::uint32_t shard_end(std::uint32_t shard) const noexcept {
    return std::min(n_, (shard + 1) * shard_size_);
  }

  /// Stripe `g` owns shards [stripe_begin_shard(g), stripe_end_shard(g)),
  /// in increasing order; stripes tile [0, shard_count) contiguously.
  [[nodiscard]] std::uint32_t stripe_begin_shard(
      std::uint32_t stripe) const noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(stripe) * shard_count_) / stripe_count_);
  }
  [[nodiscard]] std::uint32_t stripe_end_shard(
      std::uint32_t stripe) const noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(stripe + 1) * shard_count_) /
        stripe_count_);
  }

 private:
  std::uint32_t n_;
  std::uint32_t shard_size_;
  std::uint32_t shard_count_;
  std::uint32_t stripe_count_;
};

}  // namespace rbb::par
