// KAT suite for the batched/SIMD draw planes: every plane output must
// be bit-identical to the scalar philox4x32 reference path
// (CounterRng::index), for every dispatch branch the machine can
// execute -- unaligned range begins, tail lanes, gathered slot lists,
// 2^32 lo-word carries, and the deferred Lemire retry path (reachable
// only through crafted words: a real draw rejects with probability
// < 2^-32).
#include "support/draw_plane.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/counter_rng.hpp"
#include "support/rng.hpp"

namespace rbb {
namespace {

/// Runs `fn` once per ISA this machine supports, with the dispatch
/// pinned to that ISA; always restores auto-detection.  SCOPED_TRACE
/// labels failures with the branch that produced them.
template <typename Fn>
void for_each_isa(Fn&& fn) {
  for (const PlaneIsa isa : {PlaneIsa::kPortable, PlaneIsa::kAvx2}) {
    if (!plane_isa_supported(isa)) continue;
    SCOPED_TRACE(isa == PlaneIsa::kPortable ? "isa=portable" : "isa=avx2");
    force_plane_isa(isa);
    fn();
    reset_plane_isa();
  }
}

TEST(DrawPlane, ScheduleHoistsThePerRoundKeys) {
  const CounterRng rng(42);
  const DrawPlane plane(rng);
  std::array<std::uint32_t, 2> key = rng.key();
  for (int r = 0; r < kPhiloxRounds; ++r) {
    EXPECT_EQ(plane.schedule()[static_cast<std::size_t>(r)], key)
        << "round " << r;
    key[0] += kPhiloxWeyl0;
    key[1] += kPhiloxWeyl1;
  }
}

TEST(DrawPlane, RangeMatchesScalarAcrossUnalignedBeginsAndTails) {
  const CounterRng rng(7);
  const DrawPlane plane(rng);
  const std::uint32_t n = 1000003;
  for_each_isa([&] {
    // Begins not multiples of the 4/8 lane widths; counts covering
    // sub-lane tails, exact widths, and multi-batch fills.
    for (const std::uint64_t begin : {0ull, 1ull, 3ull, 5ull, 7ull, 9ull,
                                      63ull, 64ull, 65ull, 1000000ull}) {
      for (const std::size_t count :
           {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u, 65u,
            100u, 257u}) {
        std::vector<std::uint32_t> out(count, 0);
        plane.fill_range(11, begin, count, n, out.data());
        for (std::size_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[i], rng.index(11, begin + i, n))
              << "begin=" << begin << " count=" << count << " i=" << i;
        }
      }
    }
  });
}

TEST(DrawPlane, RangeMatchesScalarAcrossRounds) {
  const CounterRng rng(2024);
  const DrawPlane plane(rng);
  const std::uint32_t n = 4096;
  for_each_isa([&] {
    for (const std::uint64_t round :
         {0ull, 1ull, 77ull, (1ull << 32) + 5ull}) {
      std::vector<std::uint32_t> out(40, 0);
      plane.fill_range(round, 3, out.size(), n, out.data());
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], rng.index(round, 3 + i, n)) << "round=" << round;
      }
    }
  });
}

TEST(DrawPlane, RangeCarriesAcrossThe32BitSlotBoundary) {
  // The range path segments at lo-word wrap points; a span straddling
  // one must still match the scalar 64-bit slot arithmetic.  The
  // fresh-arrival base 2^48 exercises a nonzero upper half too.
  const CounterRng rng(13);
  const DrawPlane plane(rng);
  const std::uint32_t n = 999983;
  for_each_isa([&] {
    for (const std::uint64_t begin :
         {(1ull << 32) - 5, (1ull << 48) - 3, (1ull << 48) + 0xFFFFFFF9ull}) {
      std::vector<std::uint32_t> out(16, 0);
      plane.fill_range(4, begin, out.size(), n, out.data());
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], rng.index(4, begin + i, n))
            << "begin=" << begin << " i=" << i;
      }
    }
  });
}

TEST(DrawPlane, GatherMatchesScalarOnArbitrarySlotLists) {
  const CounterRng rng(99);
  const DrawPlane plane(rng);
  const std::uint32_t n = 250000;
  // A scattered, duplicate-bearing slot list like a sparse set of
  // releasing bins.
  Rng shuffle_rng(5);
  std::vector<std::uint32_t> slots;
  for (std::uint32_t i = 0; i < 203; ++i) {
    slots.push_back(shuffle_rng.index(1u << 20));
  }
  slots[10] = slots[11];  // duplicates must not perturb neighbors
  for_each_isa([&] {
    // slot_hi = 0 is the relaunch space; nonzero is the d-choices
    // candidate space (slot = (j << 32) | u).
    for (const std::uint32_t hi : {0u, 1u, 5u}) {
      std::vector<std::uint32_t> out(slots.size(), 0);
      plane.fill_gather(21, slots.data(), hi, slots.size(), n, out.data());
      for (std::size_t i = 0; i < slots.size(); ++i) {
        const std::uint64_t slot =
            (static_cast<std::uint64_t>(hi) << 32) | slots[i];
        ASSERT_EQ(out[i], rng.index(21, slot, n)) << "hi=" << hi;
      }
    }
  });
}

TEST(DrawPlane, NearMaxBoundMatchesScalar) {
  // n near 2^32 maximizes the Lemire rejection threshold ((2^32-k)
  // gives threshold k^2); the multiply-shift result uses the full
  // upper-word range, so any batching slip in the 128-bit product
  // arithmetic would surface here.
  const CounterRng rng(3);
  const DrawPlane plane(rng);
  const std::uint32_t n = 0xFFFF0001u;  // threshold = 65535^2 = 0xFFFE0001
  for_each_isa([&] {
    std::vector<std::uint32_t> out(3000, 0);
    plane.fill_range(8, 17, out.size(), n, out.data());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], rng.index(8, 17 + i, n)) << "i=" << i;
    }
  });
}

TEST(DrawPlane, BatchedLemireMatchesScalarOnCraftedWords) {
  // A real draw rejects w0 with probability threshold / 2^64 < 2^-32,
  // so the deferred retry list is unreachable through the Philox
  // surface in any feasible test; crafted words drive it directly.
  // w0 = 0 always lands in the rejection zone (m = 0 < threshold)
  // whenever threshold > 0, forcing the fix-up pass to take w1.
  const std::vector<std::uint64_t> w0 = {
      0,                      // forced retry
      1,                      // rejection zone for most n
      0xFFFFFFFFFFFFFFFFull,  // top of the range, never rejected
      0x0123456789ABCDEFull, 0xFEDCBA9876543210ull,
      0,                      // a second retry in the same batch
      42, 1ull << 63};
  const std::vector<std::uint64_t> w1 = {
      0xDEADBEEFDEADBEEFull, 7, 9, 11, 13, 0xCAFEBABECAFEBABEull, 17, 19};
  for (const std::uint32_t n :
       {3u, 10u, 1024u, 1000003u, 0xFFFF0001u, 0x80000000u}) {
    std::vector<std::uint32_t> out(w0.size(), 0);
    lemire_bounded_batch(w0.data(), w1.data(), w0.size(), n, out.data());
    for (std::size_t i = 0; i < w0.size(); ++i) {
      EXPECT_EQ(out[i], lemire_bounded(w0[i], w1[i], n))
          << "n=" << n << " i=" << i;
      EXPECT_LT(out[i], n);
    }
  }
  // Prove the retry actually resolved from w1, not w0: for n = 3 the
  // threshold is (2^64 - 3) mod 3 = 1, so w0 = 0 rejects and the
  // result must be the w1 multiply-shift.
  std::uint32_t single = 99;
  const std::uint64_t zero = 0, second = 0xDEADBEEFDEADBEEFull;
  lemire_bounded_batch(&zero, &second, 1, 3, &single);
  EXPECT_EQ(single,
            static_cast<std::uint32_t>(
                (static_cast<__uint128_t>(second) * 3) >> 64));
}

TEST(DrawPlane, PowerOfTwoBoundNeverRetries) {
  // threshold = 0 for n = 2^k: the rejection zone is empty and the w0
  // multiply-shift must always commit.
  const std::uint64_t w0 = 0, w1 = 0xFFFFFFFFFFFFFFFFull;
  std::uint32_t out = 99;
  lemire_bounded_batch(&w0, &w1, 1, 1u << 16, &out);
  EXPECT_EQ(out, 0u);  // w0 = 0 -> index 0, NOT the w1 value
}

TEST(DrawPlane, ForceAndResetControlDispatch) {
  ASSERT_TRUE(plane_isa_supported(PlaneIsa::kPortable));
  force_plane_isa(PlaneIsa::kPortable);
  EXPECT_EQ(active_plane_isa(), PlaneIsa::kPortable);
  if (plane_isa_supported(PlaneIsa::kAvx2)) {
    force_plane_isa(PlaneIsa::kAvx2);
    EXPECT_EQ(active_plane_isa(), PlaneIsa::kAvx2);
  }
  reset_plane_isa();
  // Auto-detection never selects an unsupported ISA.
  EXPECT_TRUE(plane_isa_supported(active_plane_isa()));
}

TEST(DrawPlane, CounterStreamConsumersSeeOneStream) {
  // The plane is a cache of derived keys, not a stream: two planes
  // over the same CounterRng and the scalar path all agree.
  const CounterRng rng(1234, 5);
  const DrawPlane a(rng);
  const DrawPlane b(rng);
  std::uint32_t out_a = 0, out_b = 0;
  for_each_isa([&] {
    a.fill_range(2, 40, 1, 777, &out_a);
    b.fill_range(2, 40, 1, 777, &out_b);
    EXPECT_EQ(out_a, out_b);
    EXPECT_EQ(out_a, rng.index(2, 40, 777));
  });
}

}  // namespace
}  // namespace rbb
