// E20 -- stationary load profile: the occupancy distribution
// P(load >= k) of the repeated process against its three relatives.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"

namespace rbb::runner {

void register_load_profile(Registry& registry) {
  Experiment e;
  e.name = "load_profile";
  e.claim = "E20";
  e.title =
      "occupancy tails: geometric decay across all four processes";
  e.description =
      "For fixed n, the fraction of bins with load >= k for k = 0..kmax, "
      "for the repeated process (correlated walks), independent walks "
      "(fresh Poisson(1)-like occupancy), Tetris (more arrivals: heavier "
      "head, same geometric tail), and the closed Jackson network "
      "(product-form ~ geometric marginals -- the heaviest tail).  This "
      "is the distributional view behind the max-load theorems: the "
      "repeated process's tail decays geometrically with ratio well "
      "below 1, which is why its maximum stays at O(log n).";
  e.params = {
      {"n", ParamSpec::Type::kU64, "0", "bins (0 = scale default)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 3, 6);
    const std::uint32_t n =
        ctx.params.u64("n") != 0
            ? ctx.params.u32("n")
            : by_scale<std::uint32_t>(ctx.scale, 512, 2048, 8192);

    const std::vector<std::pair<ProfileProcess, std::string>> processes = {
        {ProfileProcess::kRepeated, "repeated"},
        {ProfileProcess::kIndependent, "indep walks"},
        {ProfileProcess::kTetris, "tetris"},
        {ProfileProcess::kJackson, "jackson"},
    };
    std::vector<LoadProfileResult> results;
    std::uint64_t kmax = 0;
    for (const auto& [process, name] : processes) {
      LoadProfileParams p;
      p.n = n;
      p.process = process;
      p.trials = trials;
      p.seed = ctx.seed();
      results.push_back(run_load_profile(p));
      kmax = std::max<std::uint64_t>(kmax, results.back().tail.size());
    }
    kmax = std::min<std::uint64_t>(kmax, 14);

    ResultSet rs;
    Table& table = rs.add_table(
        "E20_load_profile",
        "occupancy tails: geometric decay across all four processes",
        {"k", "P(load>=k) repeated", "indep walks", "tetris", "jackson"});
    for (std::uint64_t k = 0; k < kmax; ++k) {
      auto tail_at = [&](std::size_t idx) {
        return k < results[idx].tail.size() ? results[idx].tail[k] : 0.0;
      };
      table.row()
          .cell(k)
          .cell(tail_at(0), 6)
          .cell(tail_at(1), 6)
          .cell(tail_at(2), 6)
          .cell(tail_at(3), 6);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
