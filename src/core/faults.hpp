// Adversarial fault injection (paper, Sect. 4.1).
//
// In a faulty round the adversary re-assigns all balls/tokens to bins in
// an arbitrary way.  Theorem 1's O(n)-round convergence implies the
// process absorbs such a fault with at most a constant-factor slowdown of
// the cover time, provided faults are at least ~6n rounds apart.  The
// strategies here span the spectrum from worst-case (everything in one
// bin) to benign (uniform re-spread).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace rbb {

/// How the adversary redistributes the balls in a faulty round.
enum class FaultStrategy {
  kAllToOne,    // all m balls into bin 0: the worst case for convergence
  kRandom,      // throw all balls u.a.r. (a "reset" fault)
  kHalfBins,    // pile the balls onto bins 0..n/2-1 round-robin
  kReverseSort, // heaviest-loaded profile re-applied to the lowest indices
};

[[nodiscard]] const char* to_string(FaultStrategy strategy);
[[nodiscard]] FaultStrategy fault_strategy_from_string(const std::string& s);

/// Produces the post-fault *load* configuration for `balls` balls in
/// `bins` bins.  kReverseSort additionally needs the pre-fault
/// configuration (it permutes the existing profile adversarially); pass it
/// via `current` (ignored by the other strategies).
[[nodiscard]] LoadConfig apply_fault(FaultStrategy strategy,
                                     std::uint32_t bins, std::uint64_t balls,
                                     const LoadConfig& current, Rng& rng);

/// Produces post-fault *token positions* (token i -> bin) for m tokens.
[[nodiscard]] std::vector<std::uint32_t> apply_fault_tokens(
    FaultStrategy strategy, std::uint32_t bins, std::uint32_t tokens,
    Rng& rng);

/// Produces a post-fault bin-major per-class count table (n * classes)
/// for the mixed-regime process.  Per-class totals are preserved (the
/// adversary relocates, never mints) and every finite capacity in
/// `capacities` is honored: a strategy placement that would overflow a
/// full bin deterministically spills to the next bin with room in
/// ascending order (wrapping), so the result is always accepted by
/// MixedProcessCore::reassign.  `current` must be the live census; its
/// totals fit under the capacities by the process invariant, so a slot
/// always exists.  O(balls) -- fault injection runs outside any hot
/// loop.
[[nodiscard]] std::vector<load_t> apply_fault_mixed(
    FaultStrategy strategy, std::uint32_t bins, std::uint32_t classes,
    const std::vector<load_t>& current, const std::vector<load_t>& capacities,
    Rng& rng);

/// Partial fault: the adversary moves only `k` balls (taken from the
/// currently heaviest bins, one ball at a time) and piles them onto
/// bin 0.  k >= m degenerates to kAllToOne.  Models a bounded-budget
/// adversary; the severity sweep in the adversarial bench uses it to map
/// recovery time as a function of fault size.
[[nodiscard]] LoadConfig apply_partial_fault(const LoadConfig& current,
                                             std::uint64_t k);

/// Periodic fault schedule: fires at rounds period, 2*period, ...
class FaultSchedule {
 public:
  /// period == 0 disables faults.
  explicit FaultSchedule(std::uint64_t period) noexcept : period_(period) {}
  /// True when a fault should be injected after round `round`.
  [[nodiscard]] bool fires_at(std::uint64_t round) const noexcept {
    return period_ != 0 && round != 0 && round % period_ == 0;
  }
  [[nodiscard]] std::uint64_t period() const noexcept { return period_; }

 private:
  std::uint64_t period_;
};

}  // namespace rbb
