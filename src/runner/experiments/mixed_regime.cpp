// E23 -- the mixed-regime engine: m = c n, per-ball integer weights and
// per-bin (rate, capacity) heterogeneity in one scenario description
// (core/mixed_config.hpp), executed by the policy core's mixed kernel.
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "core/mixed_config.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_mixed_regime(Registry& registry) {
  Experiment e;
  e.name = "mixed_regime";
  e.claim = "E23";
  e.title = "mixed regimes: weighted balls and heterogeneous bins, m = c n";
  e.description =
      "Per n and ball ratio c in {0.5, 1, 2, 8}, runs the mixed-regime "
      "process -- per-ball integer weights (--weights profile) and "
      "per-bin release rates / capacities (--bin-profile) -- and reports "
      "the window max load, the window max WEIGHTED load (hot-key "
      "pressure the unweighted maximum cannot see), the mean empty-bin "
      "fraction, the peak capacity utilization and the dropped-ball "
      "fraction (capped profiles only).  The raw maximum follows Los & "
      "Sauerwald's regime ordering in c; stalled bins (rate 0) hoard "
      "their initial load and never release.  Backend-capable (mixed "
      "family): --backend=sharded replays every configuration on the "
      "src/par/ counter-RNG kernel bit-identically.";
  e.family = ProcessFamily::kMixed;
  e.params = {
      {"ball-ratio", ParamSpec::Type::kF64, "0",
       "single m/n ratio instead of the {0.5, 1, 2, 8} sweep"},
      {"weights", ParamSpec::Type::kString, "unit",
       "weight profile: unit, bimodal or zipf"},
      {"bin-profile", ParamSpec::Type::kString, "uniform",
       "bin profile: uniform, two-speed, stalled-tenth or capped"},
      {"rounds-factor", ParamSpec::Type::kU64, "0",
       "window = factor * n rounds (0 = scale default)"},
      {"n", ParamSpec::Type::kU64, "0",
       "run a single n instead of the scale sweep"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint64_t rf =
        ctx.params.u64("rounds-factor") != 0
            ? ctx.params.u64("rounds-factor")
            : by_scale<std::uint64_t>(ctx.scale, 4, 10, 25);
    const std::vector<std::uint32_t> ns =
        ctx.params.u64("n") != 0
            ? std::vector<std::uint32_t>{ctx.params.u32("n")}
            : default_n_sweep(ctx.scale);
    const std::vector<double> ratios =
        ctx.params.f64("ball-ratio") != 0
            ? std::vector<double>{ctx.params.f64("ball-ratio")}
            : std::vector<double>{0.5, 1.0, 2.0, 8.0};
    const std::string weights = ctx.params.str("weights");
    const std::string bin_profile = ctx.params.str("bin-profile");

    ResultSet rs;
    Table& table = rs.add_table(
        "E23_mixed_regime",
        "mixed regimes: weighted balls and heterogeneous bins, m = c n",
        {"n", "c", "m", "weights", "bins", "window max (mean)",
         "weighted max (mean)", "mean empty frac", "peak util",
         "dropped frac"});
    for (const std::uint32_t n : ns) {
      for (const double c : ratios) {
        MixedParams p;
        p.n = n;
        p.ball_ratio = c;
        p.weights = weights;
        p.bin_profile = bin_profile;
        p.rounds = rf * n;
        p.trials = trials;
        p.seed = ctx.seed();
        if (ctx.sharded()) p.backend = Backend::kSharded;
        const MixedResult r = run_mixed(p);
        const MixedSpec spec = make_mixed_spec(n, c, weights, bin_profile);
        table.row()
            .cell(std::uint64_t{n})
            .cell(c, 1)
            .cell(spec.balls)
            .cell(weights)
            .cell(bin_profile)
            .cell(r.window_max.mean(), 2)
            .cell(r.window_max_weighted.mean(), 2)
            .cell(r.mean_empty_fraction.mean(), 3)
            .cell(r.max_utilization.max(), 3)
            .cell(r.dropped_fraction.mean(), 4);
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
