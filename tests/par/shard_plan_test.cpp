// Tests for the bin-partitioning arithmetic behind the sharded kernels
// (now owned by the policy-core layer, re-exported through src/par/).
#include "core/kernel/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "par/sharded_process.hpp"  // the rbb::par re-exports

namespace rbb::par {
namespace {

TEST(ShardPlan, CoversEveryBinExactlyOnce) {
  for (const std::uint32_t n : {1u, 15u, 16u, 100u, 4096u, 100003u}) {
    for (const std::uint32_t shard_size : {0u, 64u, 100u, 1024u}) {
      const ShardPlan plan(n, shard_size);
      std::uint32_t covered = 0;
      for (std::uint32_t s = 0; s < plan.shard_count(); ++s) {
        EXPECT_EQ(plan.shard_begin(s), covered);
        EXPECT_GT(plan.shard_end(s), plan.shard_begin(s));
        for (std::uint32_t u = plan.shard_begin(s); u < plan.shard_end(s);
             ++u) {
          EXPECT_EQ(plan.shard_of(u), s);
        }
        covered = plan.shard_end(s);
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ShardPlan, StripesTileTheShardsInOrder) {
  for (const std::uint32_t n : {16u, 4096u, 1000000u}) {
    for (const std::uint32_t shard_size : {64u, 1024u, 16384u}) {
      const ShardPlan plan(n, shard_size);
      EXPECT_GE(plan.stripe_count(), 1u);
      EXPECT_LE(plan.stripe_count(), kMaxStripes);
      EXPECT_LE(plan.stripe_count(), plan.shard_count());
      std::uint32_t next = 0;
      for (std::uint32_t g = 0; g < plan.stripe_count(); ++g) {
        EXPECT_EQ(plan.stripe_begin_shard(g), next);
        EXPECT_GT(plan.stripe_end_shard(g), plan.stripe_begin_shard(g))
            << "empty stripe " << g;
        next = plan.stripe_end_shard(g);
      }
      EXPECT_EQ(next, plan.shard_count());
    }
  }
}

TEST(ShardPlan, ShardSizeIsCacheLineAligned) {
  EXPECT_EQ(ShardPlan(1000, 1).shard_size(), 16u);
  EXPECT_EQ(ShardPlan(1000, 17).shard_size(), 32u);
  EXPECT_EQ(ShardPlan(1000, 64).shard_size(), 64u);
  EXPECT_EQ(ShardPlan(1000, 0).shard_size(), kDefaultShardSize);
}

TEST(ShardPlan, RejectsZeroBins) {
  EXPECT_THROW(ShardPlan(0), std::invalid_argument);
}

TEST(ShardPlan, ShardSizeRoundUpSurvivesNearUint32Max) {
  // A 32-bit round-up of shard_size >= 2^32 - 15 would wrap to 0 and
  // divide by zero; the plan clamps to the largest 16-aligned uint32
  // instead (CLI-reachable via --shard-size).
  const ShardPlan plan(1000, 4294967290u);
  EXPECT_EQ(plan.shard_size(), 0xFFFFFFF0u);
  EXPECT_EQ(plan.shard_count(), 1u);
  EXPECT_EQ(plan.shard_end(0), 1000u);
}

TEST(ShardPlan, BoundaryArithmeticSurvivesNearUint32Max) {
  // --scale=mega headroom: near n = 2^32 the products shard * size and
  // (shard + 1) * size exceed 32 bits; the plan must compute boundaries
  // in 64-bit and still tile [0, n) exactly (support/types.hpp).
  const std::uint32_t n = std::numeric_limits<std::uint32_t>::max();
  const ShardPlan plan(n, 1u << 20);
  EXPECT_EQ(plan.shard_begin(0), 0u);
  const std::uint32_t last = plan.shard_count() - 1;
  EXPECT_LT(plan.shard_begin(last), n);
  EXPECT_EQ(plan.shard_end(last), n);
  EXPECT_GT(plan.shard_end(last), plan.shard_begin(last));
  // The last stripe's bin range reaches n as well.
  EXPECT_EQ(plan.stripe_end_bin(plan.stripe_count() - 1), n);
}

}  // namespace
}  // namespace rbb::par
