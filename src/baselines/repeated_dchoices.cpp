#include "baselines/repeated_dchoices.hpp"

#include <stdexcept>

namespace rbb {

RepeatedDChoicesProcess::RepeatedDChoicesProcess(LoadConfig initial,
                                                 std::uint32_t d, Rng rng)
    : loads_(std::move(initial)),
      d_(d),
      rng_(rng),
      balls_(total_balls(loads_)) {
  if (loads_.empty()) {
    throw std::invalid_argument("RepeatedDChoicesProcess: empty config");
  }
  if (d_ == 0) throw std::invalid_argument("RepeatedDChoicesProcess: d == 0");
  max_load_ = rbb::max_load(loads_);
  empty_ = rbb::empty_bins(loads_);
}

DChoicesRoundStats RepeatedDChoicesProcess::step() {
  const auto n = static_cast<std::uint32_t>(loads_.size());
  ++round_;
  // Departures.
  std::uint32_t departures = 0;
  std::uint32_t zeros = 0;
  std::uint32_t max_after = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    std::uint32_t& load = loads_[u];
    if (load > 0) {
      --load;
      ++departures;
    }
    if (load == 0) {
      ++zeros;
    } else if (load > max_after) {
      max_after = load;
    }
  }
  max_load_ = max_after;
  empty_ = zeros;
  // Arrivals: Greedy[d] against current loads.
  for (std::uint32_t i = 0; i < departures; ++i) {
    std::uint32_t best = rng_.index(n);
    for (std::uint32_t j = 1; j < d_; ++j) {
      const std::uint32_t candidate = rng_.index(n);
      if (loads_[candidate] < loads_[best]) best = candidate;
    }
    std::uint32_t& load = loads_[best];
    if (load == 0) --empty_;
    if (++load > max_load_) max_load_ = load;
  }
  return DChoicesRoundStats{max_load_, empty_, departures};
}

DChoicesRoundStats RepeatedDChoicesProcess::run(std::uint64_t rounds) {
  DChoicesRoundStats stats{max_load_, empty_, 0};
  for (std::uint64_t t = 0; t < rounds; ++t) stats = step();
  return stats;
}

void RepeatedDChoicesProcess::check_invariants() const {
  if (total_balls(loads_) != balls_) {
    throw std::logic_error("RepeatedDChoicesProcess: ball count drifted");
  }
  if (rbb::max_load(loads_) != max_load_) {
    throw std::logic_error("RepeatedDChoicesProcess: max load out of sync");
  }
  if (rbb::empty_bins(loads_) != empty_) {
    throw std::logic_error("RepeatedDChoicesProcess: empty count out of sync");
  }
}

}  // namespace rbb
