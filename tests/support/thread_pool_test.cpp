// Tests for the task-parallel substrate, including the determinism
// property (D5): parallel sweeps produce identical results regardless of
// thread count.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/rng.hpp"

namespace rbb {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(100, [&](std::uint64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::vector<int> results(10000, 0);
  pool.parallel_for(10000, [&](std::uint64_t i) {
    results[i] = static_cast<int>(i * 2);
  });
  for (std::size_t i = 0; i < 10000; ++i) EXPECT_EQ(results[i], static_cast<int>(i) * 2);
}

TEST(ThreadPool, FewerTasksThanThreads) {
  ThreadPool pool(8);
  std::vector<int> results(3, 0);
  pool.parallel_for(3, [&](std::uint64_t i) { results[i] = 1; });
  EXPECT_EQ(std::accumulate(results.begin(), results.end(), 0), 3);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::uint64_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("task failed");
                                   }
                                 }),
               std::runtime_error);
  // Pool remains usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::uint64_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 20; ++batch) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::uint64_t) { ++count; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::uint64_t) {
    pool.parallel_for(10, [&](std::uint64_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ThreadPool, NestedSubmissionToAnotherPoolRunsInlineToo) {
  // The anti-oversubscription rule: a for_each issued from inside any
  // pool task runs sequentially on the calling thread, even when it
  // targets a different, idle pool (trial-level fan-out around a
  // sharded round must not multiply thread counts).
  ThreadPool outer(2);
  ThreadPool inner(4);
  std::atomic<int> inner_total{0};
  std::atomic<int> off_thread{0};
  outer.parallel_for(4, [&](std::uint64_t) {
    const std::thread::id submitter = std::this_thread::get_id();
    inner.parallel_for(10, [&](std::uint64_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
      if (std::this_thread::get_id() != submitter) {
        off_thread.fetch_add(1, std::memory_order_relaxed);
      }
    });
  });
  EXPECT_EQ(inner_total.load(), 40);
  EXPECT_EQ(off_thread.load(), 0)
      << "nested batch escaped the submitting thread";
}

TEST(ThreadPool, InsideTaskReflectsNesting) {
  EXPECT_FALSE(ThreadPool::inside_task());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.parallel_for(8, [&](std::uint64_t) {
    if (ThreadPool::inside_task()) {
      inside.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(ThreadPool::inside_task());
}

TEST(ThreadPool, GlobalPoolHasAtLeastOneWorker) {
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
  // The submitter participates in batches, so the worker set stays at
  // or below the default target.
  EXPECT_LE(ThreadPool::global().thread_count(),
            ThreadPool::default_thread_count());
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // The determinism contract: per-task RNG substreams make the collected
  // results identical for 1 and 4 threads.
  auto sweep = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> results(64);
    pool.parallel_for(64, [&](std::uint64_t i) {
      Rng rng(99, i);
      std::uint64_t acc = 0;
      for (int k = 0; k < 1000; ++k) acc ^= rng();
      results[i] = acc;
    });
    return results;
  };
  EXPECT_EQ(sweep(1), sweep(4));
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  parallel_for(25, [&](std::uint64_t) { ++count; });
  EXPECT_EQ(count.load(), 25);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

// --- resident teams (run_team) and the nesting grant ------------------------

TEST(ThreadPool, RunTeamPlacesEveryTaskOnItsOwnThread) {
  // The team contract: all `count` tasks are concurrently resident, so
  // a full-team rendezvous inside the bodies cannot deadlock.
  ThreadPool pool(3);
  constexpr std::uint64_t kWidth = 4;  // 3 workers + the submitter
  std::atomic<std::uint64_t> arrived{0};
  std::array<std::thread::id, kWidth> ids{};
  const bool ran = pool.run_team(kWidth, [&](std::uint64_t w) {
    ids[w] = std::this_thread::get_id();
    arrived.fetch_add(1, std::memory_order_acq_rel);
    while (arrived.load(std::memory_order_acquire) < kWidth) {
      std::this_thread::yield();
    }
  });
  EXPECT_TRUE(ran);
  const std::set<std::thread::id> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), kWidth);
}

TEST(ThreadPool, RunTeamRefusesWhatItCannotGuarantee) {
  ThreadPool pool(1);
  bool ran_any = false;
  // Wider than workers + submitter: refused without running anything.
  EXPECT_FALSE(pool.run_team(3, [&](std::uint64_t) { ran_any = true; }));
  EXPECT_FALSE(ran_any);
  // Zero tasks is a trivially satisfied team.
  EXPECT_TRUE(pool.run_team(0, [&](std::uint64_t) { ran_any = true; }));
  EXPECT_FALSE(ran_any);
  // From inside a task of the same pool the team would deadlock on the
  // calling thread; refused, caller falls back.
  bool nested_result = true;
  pool.parallel_for(1, [&](std::uint64_t) {
    nested_result = pool.run_team(2, [](std::uint64_t) {});
  });
  EXPECT_FALSE(nested_result);
}

TEST(ThreadPool, RunTeamPropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_team(2,
                             [](std::uint64_t w) {
                               if (w == 1) {
                                 throw std::runtime_error("team task failed");
                               }
                             }),
               std::runtime_error);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.run_team(3, [&](std::uint64_t) { ++count; }));
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, GrantOptsNestedSubmissionsBackIntoParallelism) {
  // The --trial-parallelism contract: a trial fan-out that deliberately
  // split the hardware budget holds a NestedParallelismGrant, so the
  // sharded round INSIDE each trial may still host a team on its own
  // pool.  Without the grant (the default) the nested team is refused;
  // with it, a team on a DIFFERENT pool runs, while the submitting
  // pool's own team is still refused (that inline rule is what makes
  // same-pool nesting deadlock-free).
  ThreadPool outer(1);
  ThreadPool inner(2);
  bool no_grant = true;
  bool with_grant_other_pool = false;
  bool with_grant_same_pool = true;
  outer.parallel_for(1, [&](std::uint64_t) {
    no_grant = inner.run_team(2, [](std::uint64_t) {});
    const NestedParallelismGrant grant;
    with_grant_other_pool = inner.run_team(2, [](std::uint64_t) {});
    with_grant_same_pool = outer.run_team(1, [](std::uint64_t) {});
  });
  EXPECT_FALSE(no_grant);
  EXPECT_TRUE(with_grant_other_pool);
  EXPECT_FALSE(with_grant_same_pool);
}

TEST(ThreadPool, GrantUnInlinesNestedForEachOnAnotherPool) {
  // parallel_for obeys the same rule: granted nested submissions to a
  // different pool take the parallel path (observable through
  // inside_task() staying true on worker threads and the batch simply
  // completing; thread placement is scheduling-dependent).
  ThreadPool outer(1);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.parallel_for(2, [&](std::uint64_t) {
    const NestedParallelismGrant grant;
    inner.parallel_for(16, [&](std::uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

// Regression for a lost-wakeup race: with near-empty tasks the final
// worker-side completion notification could fire between the submitter's
// predicate check and its entry into wait(), hanging parallel_for forever.
// Tens of thousands of tiny batches reliably hit the window pre-fix.
TEST(ThreadPool, RapidTinyBatchesDoNotHang) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  for (int batch = 0; batch < 20000; ++batch) {
    pool.parallel_for(3, [&](std::uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 60000u);
}

}  // namespace
}  // namespace rbb
