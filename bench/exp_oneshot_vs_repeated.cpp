// E12 -- one-shot baselines.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/oneshot_vs_repeated.cpp); this binary behaves like
// `rbb run oneshot_vs_repeated` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("oneshot_vs_repeated", argc, argv);
}
