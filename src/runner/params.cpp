#include "runner/params.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace rbb::runner {

namespace {

// Both parsers pin the first character before handing to strto*: the C
// routines skip leading whitespace themselves, which would let " -1"
// wrap around to 2^64-1 for a u64 and " 5" sneak past validation.

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || std::isdigit(static_cast<unsigned char>(text[0])) == 0) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (out != nullptr) *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_f64(const std::string& text, double* out) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0])) != 0) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (out != nullptr) *out = v;
  return true;
}

bool parse_flag(const std::string& text, bool* out) {
  bool value = false;
  if (text.empty() || text == "true" || text == "1") {
    value = true;
  } else if (text == "false" || text == "0") {
    value = false;
  } else {
    return false;
  }
  if (out != nullptr) *out = value;
  return true;
}

}  // namespace

const char* to_string(ParamSpec::Type type) {
  switch (type) {
    case ParamSpec::Type::kU64: return "u64";
    case ParamSpec::Type::kF64: return "f64";
    case ParamSpec::Type::kString: return "string";
    case ParamSpec::Type::kFlag: return "flag";
  }
  return "?";
}

bool parses_as(const std::string& text, ParamSpec::Type type) {
  switch (type) {
    case ParamSpec::Type::kU64: return parse_u64(text, nullptr);
    case ParamSpec::Type::kF64: return parse_f64(text, nullptr);
    case ParamSpec::Type::kString: return true;
    case ParamSpec::Type::kFlag: return parse_flag(text, nullptr);
  }
  return false;
}

ParamValues::ParamValues(const std::vector<ParamSpec>& specs)
    : specs_(&specs) {
  for (const ParamSpec& spec : specs) {
    values_[spec.name] = spec.default_value;
  }
}

bool ParamValues::set(const std::string& name, const std::string& text,
                      std::string* error) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    if (error != nullptr) *error = "unknown option --" + name;
    return false;
  }
  const ParamSpec& spec = spec_of(name);
  if (!parses_as(text, spec.type)) {
    if (error != nullptr) {
      *error = "option --" + name + " expects a " +
               std::string(to_string(spec.type)) + " value, got \"" + text +
               "\"";
    }
    return false;
  }
  // Canonicalize flags so metadata always reads true/false.
  if (spec.type == ParamSpec::Type::kFlag) {
    bool value = false;
    parse_flag(text, &value);
    it->second = value ? "true" : "false";
  } else {
    it->second = text;
  }
  return true;
}

bool ParamValues::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

const ParamSpec& ParamValues::spec_of(const std::string& name) const {
  for (const ParamSpec& spec : *specs_) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("ParamValues: unknown parameter " + name);
}

const std::string& ParamValues::text(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::out_of_range("ParamValues: unknown parameter " + name);
  }
  return it->second;
}

std::uint64_t ParamValues::u64(const std::string& name) const {
  std::uint64_t v = 0;
  if (!parse_u64(text(name), &v)) {
    throw std::out_of_range("ParamValues: " + name + " is not a u64");
  }
  return v;
}

std::uint32_t ParamValues::u32(const std::string& name) const {
  const std::uint64_t v = u64(name);
  if (v > 0xffffffffull) {
    throw std::invalid_argument("--" + name + "=" + text(name) +
                                " exceeds the 32-bit range this experiment "
                                "supports");
  }
  return static_cast<std::uint32_t>(v);
}

double ParamValues::f64(const std::string& name) const {
  double v = 0;
  if (!parse_f64(text(name), &v)) {
    throw std::out_of_range("ParamValues: " + name + " is not a double");
  }
  return v;
}

const std::string& ParamValues::str(const std::string& name) const {
  return text(name);
}

bool ParamValues::flag(const std::string& name) const {
  bool v = false;
  if (!parse_flag(text(name), &v)) {
    throw std::out_of_range("ParamValues: " + name + " is not a flag");
  }
  return v;
}

}  // namespace rbb::runner
