// Tests for the scaling-law fit utilities.
#include "analysis/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace rbb {
namespace {

TEST(FitLinear, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, ConstantData) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {5, 5, 5};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);  // perfect (degenerate) fit
}

TEST(FitLinear, Validation) {
  EXPECT_THROW((void)fit_linear(std::vector<double>{1},
                                std::vector<double>{2}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_linear(std::vector<double>{1, 2},
                                std::vector<double>{2}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_linear(std::vector<double>{3, 3},
                                std::vector<double>{1, 2}),
               std::invalid_argument);
}

TEST(FitLinear, NoisyDataReasonable) {
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 100; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + 2.0 + (rng.uniform() - 0.5));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 2.0, 0.5);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitPowerLaw, ExactPowerLaw) {
  std::vector<double> x;
  std::vector<double> y;
  for (const double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // y = 3 x^2
  }
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-10);
  EXPECT_NEAR(fit.prefactor, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitPowerLaw, RecognizesLinearGrowth) {
  std::vector<double> x;
  std::vector<double> y;
  for (const double v : {256.0, 1024.0, 4096.0}) {
    x.push_back(v);
    y.push_back(1.5 * v);  // the Theorem-1 convergence shape
  }
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 1.0, 1e-10);
  EXPECT_NEAR(fit.prefactor, 1.5, 1e-9);
}

TEST(FitPowerLaw, NLogSquaredNHasExponentAboveOne) {
  // The Corollary-1 scale n log2^2 n fits as a power law with exponent
  // between 1 and 1.5 over the bench's n range.
  std::vector<double> x;
  std::vector<double> y;
  for (const double v : {128.0, 256.0, 512.0, 1024.0}) {
    x.push_back(v);
    const double l = std::log2(v);
    y.push_back(v * l * l);
  }
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_GT(fit.exponent, 1.1);
  EXPECT_LT(fit.exponent, 1.5);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  EXPECT_THROW((void)fit_power_law(std::vector<double>{1, 2},
                                   std::vector<double>{0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_power_law(std::vector<double>{-1, 2},
                                   std::vector<double>{1, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rbb
