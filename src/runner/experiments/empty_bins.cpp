// E3 -- Lemmas 1-2: at every round after the first, at least n/4 bins
// are empty, w.h.p., from any start.  Includes the single-round
// validation of Lemma 1's proof-side expectation bound.
#include <cmath>
#include <mutex>

#include "analysis/experiments.hpp"
#include "core/process.hpp"
#include "engine/trials.hpp"
#include "runner/registry.hpp"

namespace rbb::runner {

void register_empty_bins(Registry& registry) {
  Experiment e;
  e.name = "empty_bins";
  e.claim = "E3";
  e.title = "empty-bin fraction never drops below 1/4 (Lemmas 1-2)";
  e.description =
      "Per n and start, the minimum and mean empty-bin fraction over the "
      "window and the count of trials that ever dipped below the 1/4 "
      "floor (predicted: 0); the equilibrium value sits near 0.33.  A "
      "second table validates Lemma 1's proof directly: from a "
      "configuration with a empty and b singleton bins, one round leaves "
      "E[X] >= (a + b) exp(-(n - a)/(n - 1)) bins empty, measured over "
      "many single-round trials.  Backend-capable (load-only family): "
      "--backend=sharded runs the window sweep on the src/par/ "
      "counter-RNG kernel (the single-round Lemma-1 table stays on the "
      "sequential kernel).";
  e.family = ProcessFamily::kLoadOnly;
  e.params = {
      {"ball-ratio", ParamSpec::Type::kF64, "0",
       "balls m = round(ratio * n) (0 = the paper's m = n; the Lemma-1 "
       "single-round table always uses m = n)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 10);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 20, 50);
    const std::uint64_t seed = ctx.seed();

    ResultSet rs;
    Table& table = rs.add_table(
        "E3_empty_bins",
        "empty-bin fraction never drops below 1/4 (Lemmas 1-2)",
        {"n", "start", "window", "min empty frac", "mean empty frac",
         "trials < 1/4", "trials"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      for (const InitialConfig start :
           {InitialConfig::kOnePerBin, InitialConfig::kAllInOne,
            InitialConfig::kRandom}) {
        EmptyBinsParams p;
        p.n = n;
        p.rounds = wf * n;
        p.trials = trials;
        p.seed = seed;
        p.start = start;
        if (ctx.params.f64("ball-ratio") != 0) {
          p.balls = static_cast<std::uint64_t>(
              std::llround(ctx.params.f64("ball-ratio") * n));
        }
        if (ctx.sharded()) p.backend = Backend::kSharded;
        const EmptyBinsResult r = run_empty_bins(p);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::string(to_string(start)))
            .cell(p.rounds)
            .cell(r.min_fraction.min(), 4)
            .cell(r.mean_fraction.mean(), 4)
            .cell(std::uint64_t{r.below_quarter})
            .cell(std::uint64_t{trials});
      }
    }

    // Single-round validation of Lemma 1's *proof*: E[X] >= (a + b) *
    // exp(-(n - a)/(n - 1)) and P(X <= n/4) <= e^{-alpha n}, measured
    // for three adversarial profiles.
    const std::uint32_t n1 = by_scale<std::uint32_t>(ctx.scale, 256, 1024, 4096);
    const std::uint32_t single_trials =
        by_scale<std::uint32_t>(ctx.scale, 2000, 10000, 50000);
    Table& lemma1 = rs.add_table(
        "E3b_lemma1_one_step",
        "single-round expectation bound from Lemma 1's proof",
        {"start", "a/n (empty)", "b/n (singletons)", "proof bound E[X]/n",
         "measured E[X]/n", "min X/n", "trials with X <= n/4"});
    for (const InitialConfig start :
         {InitialConfig::kOnePerBin, InitialConfig::kAllInOne,
          InitialConfig::kHalfLoaded}) {
      Rng cfg_rng(seed + 5);
      const LoadConfig base = make_config(start, n1, n1, cfg_rng);
      const double a = static_cast<double>(empty_bins(base));
      double b = 0;
      for (const auto load : base) b += load == 1 ? 1.0 : 0.0;
      const double bound =
          (a + b) * std::exp(-(static_cast<double>(n1) - a) /
                             (static_cast<double>(n1) - 1.0));
      OnlineMoments x;
      std::uint32_t below_quarter = 0;
      for_each_trial(single_trials, seed + 6,
                     [&, base](std::uint32_t, Rng& rng) {
                       RepeatedBallsProcess proc(base, rng.split());
                       const RoundStats s = proc.step();
                       static std::mutex m;
                       const std::lock_guard<std::mutex> lock(m);
                       x.add(static_cast<double>(s.empty_bins));
                       if (s.empty_bins <= n1 / 4) ++below_quarter;
                     });
      lemma1.row()
          .cell(std::string(to_string(start)))
          .cell(a / n1, 3)
          .cell(b / n1, 3)
          .cell(bound / n1, 4)
          .cell(x.mean() / n1, 4)
          .cell(x.min() / n1, 4)
          .cell(std::uint64_t{below_quarter});
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
