// Small dense linear algebra for exact Markov-chain analysis.
//
// The exact analyses in this module run on tiny state spaces (the full
// composition space of n balls in n bins, a few hundred states for
// n <= 6), so a straightforward row-major dense matrix with O(s^3)
// Gaussian elimination is the right tool: no sparsity bookkeeping, exact
// control over pivoting, and trivially verifiable against hand
// computations in the tests.
#pragma once

#include <cstddef>
#include <vector>

namespace rbb {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() entries).
  [[nodiscard]] const double* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }
  [[nodiscard]] double* row(std::size_t r) noexcept {
    return data_.data() + r * cols_;
  }

  /// Identity matrix of size s.
  [[nodiscard]] static DenseMatrix identity(std::size_t s);

  /// True iff every entry is >= -tol and every row sums to 1 within tol.
  [[nodiscard]] bool is_row_stochastic(double tol = 1e-12) const;

  /// Row-vector product x^T * M (the Markov distribution update).
  /// Requires x.size() == rows().
  [[nodiscard]] std::vector<double> left_multiply(
      const std::vector<double>& x) const;

  /// Matrix-matrix product (used to take powers of small chains).
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.  A is
/// consumed by value (it is destroyed by the elimination).  Throws
/// std::invalid_argument on shape mismatch and std::runtime_error if the
/// system is (numerically) singular.
[[nodiscard]] std::vector<double> solve_linear(DenseMatrix a,
                                               std::vector<double> b);

/// Stationary distribution of the row-stochastic matrix P: the unique
/// probability vector pi with pi P = pi.  Solved exactly as the linear
/// system (P^T - I) pi = 0 with one equation replaced by sum(pi) = 1
/// (valid for irreducible chains).  Throws if P is not square.
[[nodiscard]] std::vector<double> stationary_distribution(
    const DenseMatrix& p);

/// Stationary distribution by power iteration (independent implementation,
/// used to cross-check the direct solver in tests).  Iterates x <- x P
/// until the L1 change is below tol or max_iters is hit.
[[nodiscard]] std::vector<double> stationary_by_power_iteration(
    const DenseMatrix& p, double tol = 1e-13,
    std::size_t max_iters = 200000);

/// Total variation distance between two distributions on the same finite
/// set: (1/2) sum_i |a_i - b_i|.  Requires equal sizes.
[[nodiscard]] double total_variation(const std::vector<double>& a,
                                     const std::vector<double>& b);

}  // namespace rbb
