// Exact analysis walkthrough: solve the repeated balls-into-bins chain
// *as a Markov chain* for a small system and interrogate the stationary
// law directly -- no sampling anywhere.
//
// Demonstrates the markov/ API: state-space enumeration, exact transition
// matrix, stationary distribution, reversibility and product-form
// diagnostics (Sect. 1.3 of the paper), and the exact Appendix-B arrival
// correlation.
//
//   ./examples/exact_chain [--n 4]
#include <cstdlib>
#include <iostream>

#include "markov/rbb_chain.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli("exact_chain: closed-form analysis of a small RBB system");
  cli.add_u64("n", 4, "number of balls and bins (2..6)");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;

  const auto n = static_cast<std::uint32_t>(cli.u64("n"));
  if (n < 2 || n > 6) {
    std::cerr << "exact enumeration is feasible for n in 2..6\n";
    return EXIT_FAILURE;
  }

  const StateSpace space(n, n);
  std::cout << "State space: " << space.size() << " configurations of " << n
            << " balls in " << n << " bins\n";

  const DenseMatrix p = build_rbb_transition_matrix(space);
  std::cout << "Transition matrix built; row-stochastic: "
            << (p.is_row_stochastic(1e-10) ? "yes" : "NO") << "\n\n";

  const std::vector<double> pi = stationary_distribution(p);
  const ExactFunctionals f = exact_functionals(space, pi);

  std::cout << "Stationary law (grouped by load profile):\n";
  Table profile({"profile", "orbit size", "pi(orbit)", "max load"});
  for (const auto& orbit : space.orbits()) {
    const LoadConfig rep = space.orbit_representative(orbit.front());
    double mass = 0.0;
    for (const std::size_t id : orbit) mass += pi[id];
    profile.row()
        .cell(serialize_config(rep))
        .cell(static_cast<std::uint64_t>(orbit.size()))
        .cell(mass, 6)
        .cell(static_cast<std::uint64_t>(max_load(rep)));
  }
  profile.print(std::cout, "stationary-by-profile");

  std::cout << "\nExact stationary functionals:\n"
            << "  E[max load]          = " << f.expected_max_load << "\n"
            << "  E[empty fraction]    = " << f.expected_empty_fraction
            << "  (paper's working bound: >= 1/4)\n"
            << "  P(legitimate, b=4)   = " << f.p_legitimate << "\n";

  std::cout << "\nStructural diagnostics (Sect. 1.3):\n"
            << "  detailed-balance residual = "
            << detailed_balance_residual(p, pi)
            << (n == 2 ? "  (n = 2 is reversible)"
                       : "  (> 0: chain is NOT reversible)")
            << "\n"
            << "  product-form TV distance  = "
            << product_form_distance(space, pi)
            << (n <= 3 ? "  (small n happens to be product-form)"
                       : "  (> 0: stationary law is NOT product-form)")
            << "\n"
            << "  exact 1/4-mixing time     = "
            << exact_mixing_time(space, p, pi, 0.25, 1000) << " rounds\n";

  const auto corr = exact_arrival_correlation(space, LoadConfig(n, 1));
  std::cout << "\nAppendix-B arrival correlation from the one-per-bin "
               "start:\n"
            << "  P(X1=0, X2=0)   = " << corr.p_both_zero << "\n"
            << "  P(X1=0)*P(X2=0) = " << corr.p_first_zero * corr.p_second_zero
            << "\n"
            << "  excess          = " << corr.excess()
            << "  (> 0: arrivals are positively correlated, so negative\n"
               "                      association fails and standard "
               "concentration tools do not apply)\n";
  return EXIT_SUCCESS;
}
