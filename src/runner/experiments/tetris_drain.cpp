// E5 -- Lemma 4: in the Tetris process, every bin is empty at least once
// within 5n rounds, from any initial configuration, w.h.p.
#include "analysis/experiments.hpp"
#include "runner/registry.hpp"

namespace rbb::runner {

void register_tetris_drain(Registry& registry) {
  Experiment e;
  e.name = "tetris_drain";
  e.claim = "E5";
  e.title = "every Tetris bin empties within 5n rounds (Lemma 4)";
  e.description =
      "Per n and adversarial start (all-in-one, geometric, half-loaded), "
      "the max-over-bins first-empty round normalized by n (prediction: "
      "<= 5, measured ~1 from all-in-one) and the count of trials "
      "exceeding 5n (predicted 0).";
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(3, 8, 20);

    ResultSet rs;
    Table& table = rs.add_table(
        "E5_tetris_drain",
        "every Tetris bin empties within 5n rounds (Lemma 4)",
        {"n", "start", "trials", "drain (mean rounds)", "drain / n (mean)",
         "drain / n (max)", "> 5n", "timeouts"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      for (const InitialConfig start :
           {InitialConfig::kAllInOne, InitialConfig::kGeometric,
            InitialConfig::kHalfLoaded}) {
        TetrisDrainParams p;
        p.n = n;
        p.trials = trials;
        p.seed = ctx.seed();
        p.start = start;
        const TetrisDrainResult r = run_tetris_drain(p);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::string(to_string(start)))
            .cell(std::uint64_t{trials})
            .cell(r.max_first_empty.mean(), 1)
            .cell(r.normalized.mean(), 3)
            .cell(r.normalized.max(), 3)
            .cell(std::uint64_t{r.exceeded_5n})
            .cell(std::uint64_t{r.timeouts});
      }
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
