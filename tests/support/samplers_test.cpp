// Statistical correctness tests for the exact samplers: moments and
// chi-square goodness of fit against the exact pmfs from bounds.hpp.
#include "support/samplers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "support/bounds.hpp"

namespace rbb {
namespace {

/// Chi-square statistic of `counts` against Binomial(n, p), pooling cells
/// with expected count < 5 into the tail.
double binomial_chi_square(const std::vector<std::uint64_t>& counts,
                           std::uint64_t draws, std::uint64_t n, double p,
                           int* df_out) {
  double chi2 = 0.0;
  double pooled_expected = 0.0;
  double pooled_observed = 0.0;
  int df = -1;  // one constraint: totals match
  for (std::size_t k = 0; k <= n && k < counts.size(); ++k) {
    const double expected =
        binomial_pmf(n, p, k) * static_cast<double>(draws);
    const double observed = static_cast<double>(counts[k]);
    if (expected < 5.0) {
      pooled_expected += expected;
      pooled_observed += observed;
      continue;
    }
    chi2 += (observed - expected) * (observed - expected) / expected;
    ++df;
  }
  if (pooled_expected > 1.0) {
    chi2 += (pooled_observed - pooled_expected) *
            (pooled_observed - pooled_expected) / pooled_expected;
    ++df;
  }
  *df_out = std::max(df, 1);
  return chi2;
}

TEST(BinomialSampler, DegenerateCases) {
  Rng rng(1);
  EXPECT_EQ(BinomialSampler(0, 0.5)(rng), 0u);
  EXPECT_EQ(BinomialSampler(10, 0.0)(rng), 0u);
  EXPECT_EQ(BinomialSampler(10, 1.0)(rng), 10u);
}

TEST(BinomialSampler, RejectsBadProbability) {
  EXPECT_THROW(BinomialSampler(10, -0.1), std::invalid_argument);
  EXPECT_THROW(BinomialSampler(10, 1.1), std::invalid_argument);
}

TEST(BinomialSampler, ResultNeverExceedsTrials) {
  Rng rng(2);
  const BinomialSampler sampler(20, 0.5);
  for (int i = 0; i < 10000; ++i) EXPECT_LE(sampler(rng), 20u);
}

TEST(BinomialSampler, TetrisLawHasCorrectMean) {
  // The law driving the whole analysis: Bin(3n/4, 1/n), mean 3/4.
  constexpr std::uint32_t n = 1024;
  Rng rng(3);
  const BinomialSampler sampler(n * 3 / 4, 1.0 / n);
  constexpr int kDraws = 400000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(sampler(rng));
  EXPECT_NEAR(sum / kDraws, 0.75, 0.01);
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class BinomialChiSquare : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialChiSquare, MatchesExactPmf) {
  const auto [n, p] = GetParam();
  Rng rng(n * 31 + static_cast<std::uint64_t>(p * 1000));
  const BinomialSampler sampler(n, p);
  constexpr std::uint64_t kDraws = 200000;
  std::vector<std::uint64_t> counts(n + 2, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const std::uint64_t k = sampler(rng);
    ASSERT_LE(k, n);
    ++counts[k];
  }
  int df = 0;
  const double chi2 = binomial_chi_square(counts, kDraws, n, p, &df);
  // p ~ 1e-4 threshold approximation: df + 4 sqrt(2 df) + 10.
  const double threshold =
      static_cast<double>(df) + 4.0 * std::sqrt(2.0 * df) + 10.0;
  EXPECT_LT(chi2, threshold) << "n=" << n << " p=" << p << " df=" << df;
}

INSTANTIATE_TEST_SUITE_P(
    Laws, BinomialChiSquare,
    ::testing::Values(BinomialCase{10, 0.5},      // inversion
                      BinomialCase{7, 0.1},       // inversion, small np
                      BinomialCase{768, 0.001},   // the Tetris regime
                      BinomialCase{40, 0.5},      // BTRD, small n
                      BinomialCase{100, 0.3},     // BTRD
                      BinomialCase{1000, 0.05},   // BTRD, np = 50
                      BinomialCase{400, 0.9},     // flipped p > 1/2
                      BinomialCase{64, 0.25}));

TEST(Poisson, MeanAndVarianceMatch) {
  Rng rng(5);
  for (const double mean : {0.5, 3.0, 25.0, 80.0}) {
    constexpr int kDraws = 100000;
    double sum = 0.0;
    double sumsq = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const double x = static_cast<double>(poisson_sample(mean, rng));
      sum += x;
      sumsq += x * x;
    }
    const double m = sum / kDraws;
    const double var = sumsq / kDraws - m * m;
    const double tol = 5.0 * std::sqrt(mean / kDraws) + 0.02 * mean;
    EXPECT_NEAR(m, mean, tol) << "mean=" << mean;
    EXPECT_NEAR(var, mean, 0.1 * mean + 0.05) << "mean=" << mean;
  }
}

TEST(Poisson, ZeroMeanIsZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(poisson_sample(0.0, rng), 0u);
}

TEST(Poisson, RejectsNegativeMean) {
  Rng rng(7);
  EXPECT_THROW((void)poisson_sample(-1.0, rng), std::invalid_argument);
}

TEST(Geometric, MatchesMean) {
  Rng rng(8);
  for (const double p : {0.1, 0.5, 0.9}) {
    constexpr int kDraws = 200000;
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(geometric_sample(p, rng));
    }
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / kDraws, expected, 0.05 * expected + 0.01) << "p=" << p;
  }
}

TEST(Geometric, POneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric_sample(1.0, rng), 0u);
}

TEST(Geometric, RejectsBadP) {
  Rng rng(10);
  EXPECT_THROW((void)geometric_sample(0.0, rng), std::invalid_argument);
  EXPECT_THROW((void)geometric_sample(1.5, rng), std::invalid_argument);
}

TEST(Occupancy, ThrowConservesBalls) {
  Rng rng(11);
  const auto counts = occupancy_throw(1000, 64, rng);
  EXPECT_EQ(counts.size(), 64u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 1000u);
}

TEST(Occupancy, SplitConservesBalls) {
  Rng rng(12);
  const auto counts = occupancy_split(1000, 64, rng);
  EXPECT_EQ(counts.size(), 64u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 1000u);
}

TEST(Occupancy, SplitZeroBalls) {
  Rng rng(13);
  const auto counts = occupancy_split(0, 16, rng);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 0u);
}

TEST(Occupancy, SingleBinGetsEverything) {
  Rng rng(14);
  EXPECT_EQ(occupancy_throw(42, 1, rng)[0], 42u);
  EXPECT_EQ(occupancy_split(42, 1, rng)[0], 42u);
}

TEST(Occupancy, BothSamplersAgreeInDistribution) {
  // Compare first-bin marginal: both should be Binomial(balls, 1/bins).
  Rng rng(15);
  constexpr std::uint64_t kBalls = 96;
  constexpr std::uint32_t kBins = 8;
  constexpr int kDraws = 60000;
  double sum_throw = 0.0;
  double sum_split = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum_throw += occupancy_throw(kBalls, kBins, rng)[0];
    sum_split += occupancy_split(kBalls, kBins, rng)[0];
  }
  const double expected = static_cast<double>(kBalls) / kBins;
  EXPECT_NEAR(sum_throw / kDraws, expected, 0.1);
  EXPECT_NEAR(sum_split / kDraws, expected, 0.1);
}

TEST(SampleDistinct, ProducesDistinctValuesInRange) {
  Rng rng(16);
  for (int i = 0; i < 200; ++i) {
    const auto sample = sample_distinct(50, 10, rng);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const auto v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(SampleDistinct, FullRangeIsPermutation) {
  Rng rng(17);
  const auto sample = sample_distinct(12, 12, rng);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(SampleDistinct, RejectsKGreaterThanN) {
  Rng rng(18);
  EXPECT_THROW(sample_distinct(5, 6, rng), std::invalid_argument);
}

TEST(SampleDistinct, MarginalIsUniform) {
  Rng rng(19);
  constexpr int kDraws = 50000;
  std::vector<int> hits(10, 0);
  for (int i = 0; i < kDraws; ++i) {
    for (const auto v : sample_distinct(10, 3, rng)) ++hits[v];
  }
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / kDraws, 0.3, 0.02);
  }
}

}  // namespace
}  // namespace rbb
