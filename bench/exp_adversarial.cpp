// E9 -- Sect. 4.1 adversarial cover.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/adversarial.cpp); this binary behaves like
// `rbb run adversarial` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("adversarial", argc, argv);
}
