// Parity tests for the sharded mixed-regime kernel (DESIGN.md Sect. 5):
// weighted balls and heterogeneous bins stay bit-identical across the
// sequential counter-stream sibling, worker counts {1, 2, 8} and shard
// sizes {64, 256, 1024} -- including capacity-induced drops, whose
// commit-order sensitivity is exactly what the ascending-source drain
// of the scatter has to preserve.  A naive weighted oracle
// (mixed_reference.hpp) replays the round semantics straight from
// CounterRng scalar draws, so both instantiations are checked against
// an implementation that shares none of their bookkeeping.
#include "par/sharded_mixed.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/engine.hpp"
#include "mixed_reference.hpp"
#include "par/sharded_variants.hpp"

namespace rbb::par {
namespace {

constexpr std::uint64_t kSeed = 0x310c8a11ULL;
constexpr std::uint64_t kRounds = 32;

MixedSpec spec_of(std::uint32_t bins, double ratio, const char* weights,
                  const char* profile) {
  return make_mixed_spec(bins, ratio, weights, profile);
}

struct Trajectory {
  std::vector<MixedRoundStats> stats;
  std::vector<load_t> final_loads;
  std::uint64_t dropped = 0;

  bool operator==(const Trajectory& other) const {
    if (final_loads != other.final_loads) return false;
    if (dropped != other.dropped) return false;
    if (stats.size() != other.stats.size()) return false;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (stats[i].max_load != other.stats[i].max_load ||
          stats[i].empty_bins != other.stats[i].empty_bins ||
          stats[i].departures != other.stats[i].departures ||
          stats[i].drops != other.stats[i].drops ||
          stats[i].max_weighted_load != other.stats[i].max_weighted_load ||
          stats[i].total_balls != other.stats[i].total_balls ||
          stats[i].total_weight != other.stats[i].total_weight) {
        return false;
      }
    }
    return true;
  }
};

template <typename Process>
Trajectory record(Process& proc) {
  Trajectory t;
  for (std::uint64_t r = 0; r < kRounds; ++r) t.stats.push_back(proc.step());
  t.final_loads = proc.loads();
  t.dropped = proc.dropped_balls();
  return t;
}

Trajectory run_sharded(const MixedSpec& spec, ShardedOptions options) {
  ShardedMixedProcess proc(spec, kSeed, options);
  return record(proc);
}

// The drop-heavy capped profile is the hardest case: arrival ORDER
// decides which ball bounces, so any deviation from the sequential
// (u, j) order shows up immediately.
const MixedSpec kWeightedCapped = spec_of(1024, 8.0, "zipf", "capped");
const MixedSpec kBimodalTwoSpeed = spec_of(2048, 2.0, "bimodal", "two-speed");
const MixedSpec kStalled = spec_of(512, 0.5, "unit", "stalled-tenth");

TEST(ShardedMixed, TrajectoryIdenticalFor1_2_8Workers) {
  for (const MixedSpec* spec :
       {&kWeightedCapped, &kBimodalTwoSpeed, &kStalled}) {
    const Trajectory one = run_sharded(*spec, {.threads = 1, .shard_size = 256});
    const Trajectory two = run_sharded(*spec, {.threads = 2, .shard_size = 256});
    const Trajectory eight =
        run_sharded(*spec, {.threads = 8, .shard_size = 256});
    EXPECT_TRUE(one == two) << spec->weights.name;
    EXPECT_TRUE(one == eight) << spec->weights.name;
  }
}

TEST(ShardedMixed, TrajectoryIndependentOfShardSize) {
  for (const MixedSpec* spec : {&kWeightedCapped, &kBimodalTwoSpeed}) {
    const Trajectory s64 = run_sharded(*spec, {.threads = 2, .shard_size = 64});
    const Trajectory s256 =
        run_sharded(*spec, {.threads = 2, .shard_size = 256});
    const Trajectory s1024 =
        run_sharded(*spec, {.threads = 2, .shard_size = 1024});
    EXPECT_TRUE(s64 == s256);
    EXPECT_TRUE(s64 == s1024);
  }
}

TEST(ShardedMixed, BitIdenticalToSequentialCounterSibling) {
  for (const MixedSpec* spec :
       {&kWeightedCapped, &kBimodalTwoSpeed, &kStalled}) {
    SequentialCounterMixedProcess reference(*spec, kSeed);
    ShardedMixedProcess sharded(*spec, kSeed,
                                {.threads = 2, .shard_size = 256});
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      const MixedRoundStats expect = reference.step();
      const MixedRoundStats got = sharded.step();
      ASSERT_EQ(got.max_load, expect.max_load) << "round " << r;
      ASSERT_EQ(got.drops, expect.drops) << "round " << r;
      ASSERT_EQ(got.max_weighted_load, expect.max_weighted_load)
          << "round " << r;
      ASSERT_EQ(sharded.loads(), reference.loads()) << "round " << r;
    }
  }
}

TEST(ShardedMixed, BothInstantiationsMatchTheNaiveWeightedOracle) {
  for (const MixedSpec* spec :
       {&kWeightedCapped, &kBimodalTwoSpeed, &kStalled}) {
    testing::MixedOracle oracle(*spec, kSeed);
    SequentialCounterMixedProcess seq(*spec, kSeed);
    ShardedMixedProcess sharded(*spec, kSeed,
                                {.threads = 2, .shard_size = 256});
    for (std::uint64_t r = 0; r < 12; ++r) {
      oracle.step();
      seq.step();
      sharded.step();
      ASSERT_EQ(seq.loads(), oracle.loads()) << "round " << r;
      ASSERT_EQ(sharded.loads(), oracle.loads()) << "round " << r;
      ASSERT_EQ(seq.dropped_balls(), oracle.dropped) << "round " << r;
      for (std::uint32_t u = 0; u < spec->bins; u += 97) {
        ASSERT_EQ(seq.weighted_load(u), oracle.weighted_load(u))
            << "round " << r << " bin " << u;
      }
    }
  }
}

TEST(ShardedMixed, InvariantsHoldAcrossConfigurations) {
  ShardedMixedProcess proc(kWeightedCapped, kSeed,
                           {.threads = 2, .shard_size = 128});
  for (int r = 0; r < 12; ++r) {
    proc.step();
    ASSERT_NO_THROW(proc.check_invariants());
  }
  EXPECT_GT(proc.dropped_balls(), 0u);  // capped at c = 8 must drop
}

static_assert(SimProcess<ShardedMixedProcess>,
              "the sharded mixed kernel must satisfy the engine concept");
static_assert(SimProcess<SequentialCounterMixedProcess>,
              "the counter-stream mixed sibling must satisfy the engine "
              "concept");

TEST(ShardedMixed, EngineDrivesItWithWeightedObservers) {
  Engine engine(
      ShardedMixedProcess(kBimodalTwoSpeed, kSeed,
                          {.threads = 2, .shard_size = 256}));
  WindowMaxLoad wmax;
  WindowMaxWeightedLoad wweighted;
  const EngineResult r = engine.run_rounds(kRounds, wmax, wweighted);
  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_GE(wweighted.window_max, wmax.window_max);
}

TEST(ShardedMixed, NearLimitTotalsNeedSixtyFourBits) {
  // Regression for the support/types.hpp width contract at the m = 8n
  // mega regime: per-bin loads close to 2^31 make the SYSTEM totals
  // (ball count, weighted mass) and even single-bin weighted loads
  // exceed 32 bits, so any bookkeeping that narrows to uint32 snaps to
  // a wrong conservation sum here.  64 bins keep the round cheap; the
  // widths under test do not depend on n.
  constexpr load_t kPerClass = 700'000'000;  // 3 * 7e8 = 2.1e9 per bin
  MixedSpec spec;
  spec.bins = 64;
  spec.weights = {"hot", {1, 2, 8}, {1.0 / 3, 1.0 / 3, 1.0 / 3}};
  spec.rates.assign(spec.bins, 4);
  spec.capacities.assign(spec.bins, 0);
  spec.class_counts.assign(static_cast<std::size_t>(spec.bins) * 3,
                           kPerClass);
  spec.balls = static_cast<ball_count_t>(spec.bins) * 3 * kPerClass;
  ASSERT_GT(spec.balls, std::uint64_t{1} << 32);

  const weighted_load_t per_bin_weight =
      static_cast<weighted_load_t>(kPerClass) * (1 + 2 + 8);
  ASSERT_GT(per_bin_weight, std::uint64_t{1} << 32);

  SequentialCounterMixedProcess seq(spec, kSeed);
  ShardedMixedProcess sharded(spec, kSeed, {.threads = 2, .shard_size = 16});
  for (int r = 0; r < 3; ++r) {
    const MixedRoundStats a = seq.step();
    const MixedRoundStats b = sharded.step();
    ASSERT_EQ(a.total_balls, spec.balls);
    ASSERT_EQ(b.total_balls, spec.balls);
    ASSERT_EQ(a.total_weight,
              static_cast<weighted_load_t>(spec.bins) * per_bin_weight);
    ASSERT_GE(a.max_weighted_load, per_bin_weight - 8 * 4);
    ASSERT_EQ(a.max_weighted_load, b.max_weighted_load);
    ASSERT_EQ(seq.loads(), sharded.loads());
    ASSERT_NO_THROW(seq.check_invariants());
    ASSERT_NO_THROW(sharded.check_invariants());
  }
}

// --- threshold-variant parity (rides the same suite: both kernels are
// new schedule-free consumers of the candidate slot planes) ----------

TEST(ShardedThreshold, ParityAcrossWorkersShardSizesAndSibling) {
  Rng cfg_rng(7);
  const LoadConfig start =
      make_config(InitialConfig::kGeometric, 2048, 2048, cfg_rng);
  constexpr load_t kThresholdLoad = 2;
  constexpr std::uint32_t kProbes = 3;
  SequentialCounterThresholdProcess reference(start, kThresholdLoad, kProbes,
                                              kSeed);
  std::vector<ShardedThresholdProcess> variants;
  variants.emplace_back(start, kThresholdLoad, kProbes, kSeed,
                        ShardedOptions{.threads = 1, .shard_size = 64});
  variants.emplace_back(start, kThresholdLoad, kProbes, kSeed,
                        ShardedOptions{.threads = 2, .shard_size = 256});
  variants.emplace_back(start, kThresholdLoad, kProbes, kSeed,
                        ShardedOptions{.threads = 8, .shard_size = 1024});
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    reference.step();
    for (auto& v : variants) {
      v.step();
      ASSERT_EQ(v.loads(), reference.loads()) << "round " << r;
    }
  }
}

}  // namespace
}  // namespace rbb::par
