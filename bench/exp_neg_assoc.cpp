// E10 -- Appendix B negative association.  Back-compat shim: the experiment now lives in the
// registry (src/runner/experiments/neg_assoc.cpp); this binary behaves like
// `rbb run neg_assoc` with table output, honoring RBB_BENCH_SCALE and
// RBB_CSV_DIR as it always did.
#include "runner/legacy.hpp"

int main(int argc, char** argv) {
  return rbb::runner::legacy_bench_main("neg_assoc", argc, argv);
}
