// Typed parameter specs for registry experiments (DESIGN.md Sect. 1,
// src/runner/).
//
// Every experiment declares its tunables once -- name, type, default,
// help text -- and the same declaration drives all four consumers: the
// `rbb run` / `rbb sweep` option parser, the back-compat bench mains,
// `rbb describe`, and the generated docs/experiments.md catalog.  Values
// are kept as canonical text so run metadata can round-trip them without
// a per-type variant.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rbb::runner {

/// One declared experiment parameter.
struct ParamSpec {
  enum class Type { kU64, kF64, kString, kFlag };

  std::string name;           // CLI spelling without the leading "--"
  Type type = Type::kU64;
  std::string default_value;  // canonical text; flags use "false"
  std::string help;
};

/// Short type name for usage text and the docs catalog.
[[nodiscard]] const char* to_string(ParamSpec::Type type);

/// Parsed parameter values over a spec list.  Starts at the defaults;
/// set() validates name and type.  The spec list must outlive the values.
class ParamValues {
 public:
  explicit ParamValues(const std::vector<ParamSpec>& specs);

  /// Sets `name` from text.  Returns false (and fills *error, if given)
  /// on an unknown name or text that does not parse as the spec's type.
  /// Flags accept "" (meaning true), "true"/"false", and "1"/"0".
  bool set(const std::string& name, const std::string& text,
           std::string* error = nullptr);

  [[nodiscard]] bool has(const std::string& name) const;

  // Typed accessors; throw std::out_of_range on an unknown name (a
  // programming error -- user input is validated in set()).
  [[nodiscard]] std::uint64_t u64(const std::string& name) const;
  /// u64 narrowed to 32 bits; throws std::invalid_argument (with the
  /// parameter name) when the value exceeds the u32 range, so oversized
  /// CLI input fails loudly instead of silently truncating.
  [[nodiscard]] std::uint32_t u32(const std::string& name) const;
  [[nodiscard]] double f64(const std::string& name) const;
  [[nodiscard]] const std::string& str(const std::string& name) const;
  [[nodiscard]] bool flag(const std::string& name) const;

  /// Canonical textual value (for run metadata).
  [[nodiscard]] const std::string& text(const std::string& name) const;

  [[nodiscard]] const std::vector<ParamSpec>& specs() const {
    return *specs_;
  }

 private:
  const ParamSpec& spec_of(const std::string& name) const;

  const std::vector<ParamSpec>* specs_;
  std::map<std::string, std::string> values_;
};

/// Validates that `text` parses as `type` (the ParamValues::set rule,
/// exposed for option parsers that need to pre-check sweep grids).
[[nodiscard]] bool parses_as(const std::string& text, ParamSpec::Type type);

}  // namespace rbb::runner
