#include "core/mixed_config.hpp"

#include <cmath>
#include <stdexcept>

namespace rbb {

WeightProfile weight_profile_from_string(const std::string& s) {
  if (s == "unit") {
    return WeightProfile{"unit", {1}, {1.0}};
  }
  if (s == "bimodal") {
    return WeightProfile{"bimodal", {1, 8}, {0.9, 0.1}};
  }
  if (s == "zipf") {
    return WeightProfile{"zipf",
                         {1, 2, 4, 8},
                         {8.0 / 15.0, 4.0 / 15.0, 2.0 / 15.0, 1.0 / 15.0}};
  }
  throw std::invalid_argument("unknown weight profile '" + s + "' (expected " +
                              weight_profile_names() + ")");
}

std::string weight_profile_names() { return "unit, bimodal, zipf"; }

BinProfileKind bin_profile_from_string(const std::string& s) {
  if (s == "uniform") return BinProfileKind::kUniform;
  if (s == "two-speed") return BinProfileKind::kTwoSpeed;
  if (s == "stalled-tenth") return BinProfileKind::kStalledTenth;
  if (s == "capped") return BinProfileKind::kCapped;
  throw std::invalid_argument("unknown bin profile '" + s + "' (expected " +
                              bin_profile_names() + ")");
}

const char* to_string(BinProfileKind kind) {
  switch (kind) {
    case BinProfileKind::kUniform:
      return "uniform";
    case BinProfileKind::kTwoSpeed:
      return "two-speed";
    case BinProfileKind::kStalledTenth:
      return "stalled-tenth";
    case BinProfileKind::kCapped:
      return "capped";
  }
  return "?";
}

std::string bin_profile_names() {
  return "uniform, two-speed, stalled-tenth, capped";
}

namespace {

void validate_weights(const WeightProfile& w) {
  if (w.class_weights.empty() ||
      w.class_weights.size() != w.fractions.size()) {
    throw std::invalid_argument("weight profile: empty or mismatched tables");
  }
  double total = 0.0;
  for (std::size_t c = 0; c < w.class_weights.size(); ++c) {
    if (w.class_weights[c] == 0) {
      throw std::invalid_argument("weight profile: zero ball weight");
    }
    if (!(w.fractions[c] > 0.0)) {
      throw std::invalid_argument("weight profile: non-positive fraction");
    }
    total += w.fractions[c];
  }
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("weight profile: fractions must sum to 1");
  }
}

/// Largest-remainder apportionment of m balls over the class
/// fractions: deterministic, exact total, every class with a positive
/// fraction keeps its floor share.
std::vector<ball_count_t> apportion(ball_count_t m,
                                    const std::vector<double>& fractions) {
  const std::size_t k = fractions.size();
  std::vector<ball_count_t> out(k, 0);
  std::vector<double> remainder(k, 0.0);
  ball_count_t assigned = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double exact = fractions[c] * static_cast<double>(m);
    out[c] = static_cast<ball_count_t>(exact);
    remainder[c] = exact - static_cast<double>(out[c]);
    assigned += out[c];
  }
  while (assigned < m) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < k; ++c) {
      if (remainder[c] > remainder[best]) best = c;
    }
    ++out[best];
    remainder[best] = -1.0;
    ++assigned;
  }
  return out;
}

}  // namespace

MixedSpec make_mixed_spec(std::uint32_t bins, double ball_ratio,
                          const std::string& weight_profile,
                          const std::string& bin_profile) {
  return make_mixed_spec(bins, ball_ratio,
                         weight_profile_from_string(weight_profile),
                         bin_profile_from_string(bin_profile));
}

MixedSpec make_mixed_spec(std::uint32_t bins, double ball_ratio,
                          WeightProfile weights, BinProfileKind bins_kind) {
  if (bins == 0) throw std::invalid_argument("make_mixed_spec: bins == 0");
  if (!(ball_ratio > 0.0)) {
    throw std::invalid_argument("make_mixed_spec: ball ratio must be > 0");
  }
  validate_weights(weights);

  MixedSpec spec;
  spec.bins = bins;
  spec.balls = static_cast<ball_count_t>(
      std::llround(ball_ratio * static_cast<double>(bins)));
  if (spec.balls == 0) spec.balls = 1;
  spec.weights = std::move(weights);

  const std::size_t k = spec.weights.class_weights.size();
  spec.class_counts.assign(static_cast<std::size_t>(bins) * k, 0);

  // Deal the balls round-robin over the bins, classes in consecutive
  // blocks of their apportioned populations: ball i of class c lands in
  // bin i % n, so every bin starts with floor(m/n) or ceil(m/n) balls.
  const std::vector<ball_count_t> per_class =
      apportion(spec.balls, spec.weights.fractions);
  ball_count_t i = 0;
  for (std::size_t c = 0; c < k; ++c) {
    for (ball_count_t b = 0; b < per_class[c]; ++b, ++i) {
      const auto u = static_cast<std::uint32_t>(i % bins);
      ++spec.class_counts[static_cast<std::size_t>(u) * k + c];
    }
  }

  spec.rates.assign(bins, 1);
  spec.capacities.assign(bins, 0);
  switch (bins_kind) {
    case BinProfileKind::kUniform:
      break;
    case BinProfileKind::kTwoSpeed:
      for (std::uint32_t u = 1; u < bins; u += 2) spec.rates[u] = 4;
      break;
    case BinProfileKind::kStalledTenth:
      for (std::uint32_t u = 0; u < bins; u += 10) spec.rates[u] = 0;
      break;
    case BinProfileKind::kCapped: {
      const auto mean_ceil = static_cast<load_t>(
          (spec.balls + bins - 1) / bins);
      const load_t cap = 2 * mean_ceil + 2;
      spec.capacities.assign(bins, cap);
      break;
    }
  }
  return spec;
}

}  // namespace rbb
