#include "support/thread_pool.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rbb {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("RBB_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= 1024) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

ThreadPool& ThreadPool::global() {
  // The submitter drains its own batches, so size the worker set one
  // below the target (floor 1) to keep runnable threads == hardware.
  // An explicit RBB_THREADS override is taken literally.
  static ThreadPool pool([] {
    const unsigned target = default_thread_count();
    if (std::getenv("RBB_THREADS") != nullptr) return target;
    return target > 1 ? target - 1 : 1u;
  }());
  return pool;
}

namespace {

/// Depth of pool-task nesting on this thread: nonzero while the thread
/// is inside any pool's task callback.  Guards the inline-degradation
/// rule for nested for_each (see thread_pool.hpp).
thread_local unsigned g_task_depth = 0;

/// The pool whose task this thread is currently draining (innermost),
/// so a NestedParallelismGrant can distinguish same-pool submissions
/// (always inline -- deadlock rule) from cross-pool ones (parallel
/// while granted).
thread_local const ThreadPool* g_current_pool = nullptr;

/// Count of live NestedParallelismGrant guards on this thread.
thread_local unsigned g_grant_depth = 0;

struct TaskDepthGuard {
  explicit TaskDepthGuard(const ThreadPool* pool) noexcept
      : saved_pool_(g_current_pool) {
    ++g_task_depth;
    g_current_pool = pool;
  }
  ~TaskDepthGuard() {
    --g_task_depth;
    g_current_pool = saved_pool_;
  }
  TaskDepthGuard(const TaskDepthGuard&) = delete;
  TaskDepthGuard& operator=(const TaskDepthGuard&) = delete;

 private:
  const ThreadPool* saved_pool_;
};

}  // namespace

bool ThreadPool::inside_task() noexcept { return g_task_depth > 0; }

bool ThreadPool::nested_allowed(const ThreadPool* target) noexcept {
  if (g_task_depth == 0) return true;
  return g_grant_depth > 0 && g_current_pool != target;
}

NestedParallelismGrant::NestedParallelismGrant() noexcept { ++g_grant_depth; }
NestedParallelismGrant::~NestedParallelismGrant() { --g_grant_depth; }

namespace {

/// Claims and runs tasks from a batch until the index space is exhausted.
/// `pool` is the pool the batch runs on (recorded per task for the
/// nesting rule).
void drain_batch(const ThreadPool* pool, ThreadPool::Batch& batch,
                 std::mutex& mutex, std::condition_variable& batch_done) {
  for (;;) {
    const std::uint64_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.task_count) return;
    // Telemetry slot writes must precede the done increment below: its
    // acq_rel pairing with the submitter's acquire wait is what orders
    // them before a scrape.
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    try {
      const TaskDepthGuard depth(pool);
      batch.invoke(batch.context, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex);
      if (!batch.first_error) batch.first_error = std::current_exception();
    }
    if (t0 != 0) {
      obs::add_phase_ns(obs::Phase::kPoolTask, obs::now_ns() - t0);
      obs::add(obs::Counter::kPoolTasks);
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 >=
        batch.task_count) {
      // Lock/unlock before notifying: the submitter checks the completion
      // predicate under `mutex`, so without this handshake the final
      // increment + notify could land between its predicate check and its
      // entry into wait(), losing the wakeup forever.
      { const std::lock_guard<std::mutex> lock(mutex); }
      batch_done.notify_all();
    }
  }
}

}  // namespace

void ThreadPool::parallel_for(std::uint64_t task_count,
                              const std::function<void(std::uint64_t)>& fn) {
  for_each(task_count, [&fn](std::uint64_t i) { fn(i); });
}

void ThreadPool::run_batch(std::shared_ptr<Batch> batch) {
  if (!nested_allowed(this)) {
    // Submission from inside a pool task without an applicable grant:
    // run inline, sequentially.  Parallelizing here would oversubscribe
    // (outer tasks x inner workers runnable threads) or, on the same
    // pool, deadlock -- the nesting rule in the header.
    for (std::uint64_t i = 0; i < batch->task_count; ++i) {
      batch->invoke(batch->context, i);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (current_ != nullptr) {
      // Concurrent submission from a non-task thread while another
      // batch is in flight: run inline rather than queueing.
      lock.unlock();
      for (std::uint64_t i = 0; i < batch->task_count; ++i) {
        batch->invoke(batch->context, i);
      }
      return;
    }
    current_ = batch.get();
    current_owner_ = batch;
  }
  work_available_.notify_all();
  obs::add(obs::Counter::kPoolBatches);

  // The submitting thread participates in the work.
  drain_batch(this, *batch, mutex_, batch_done_);

  // Everything past our own drain is barrier wait: the time the
  // submitter stalls on stragglers before the batch retires.
  const std::uint64_t w0 = obs::enabled() ? obs::now_ns() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [&batch] {
    return batch->done.load(std::memory_order_acquire) >= batch->task_count;
  });
  current_ = nullptr;
  current_owner_.reset();
  const std::exception_ptr err = batch->first_error;
  lock.unlock();
  if (w0 != 0) {
    const std::uint64_t w1 = obs::now_ns();
    obs::add_phase_ns(obs::Phase::kBarrierWait, w1 - w0);
    obs::record_span("barrier_wait", w0, w1);
  }
  work_available_.notify_all();  // release workers parked on batch retire
  if (err) std::rethrow_exception(err);
}

bool ThreadPool::run_batch_team(std::shared_ptr<Batch> batch) {
  // Where for_each degrades to inline execution, a team must refuse:
  // inline means one thread runs the tasks sequentially, and team tasks
  // block on each other's progress.
  if (!nested_allowed(this)) return false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (current_ != nullptr) return false;
    current_ = batch.get();
    current_owner_ = batch;
  }
  work_available_.notify_all();
  obs::add(obs::Counter::kPoolBatches);

  // With task_count <= workers + 1 and dynamic claiming, every team
  // task lands on a distinct thread: a thread claims a second task only
  // after finishing its first, and team tasks do not finish until the
  // whole team has progressed, so all tasks run concurrently.
  drain_batch(this, *batch, mutex_, batch_done_);

  const std::uint64_t w0 = obs::enabled() ? obs::now_ns() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [&batch] {
    return batch->done.load(std::memory_order_acquire) >= batch->task_count;
  });
  current_ = nullptr;
  current_owner_.reset();
  const std::exception_ptr err = batch->first_error;
  lock.unlock();
  if (w0 != 0) {
    const std::uint64_t w1 = obs::now_ns();
    obs::add_phase_ns(obs::Phase::kBarrierWait, w1 - w0);
    obs::record_span("barrier_wait", w0, w1);
  }
  work_available_.notify_all();  // release workers parked on batch retire
  if (err) std::rethrow_exception(err);
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || current_ != nullptr; });
      if (shutting_down_) return;
      batch = current_owner_;  // keep the batch alive while we work on it
    }
    if (batch) drain_batch(this, *batch, mutex_, batch_done_);
    // Wait until this batch is retired so we do not busy-spin re-claiming
    // an exhausted index space.  The wait is captured as a per-worker
    // trace span only (its tail runs concurrently with the submitter's
    // scrape, so it must not touch the plain slot cells).
    const std::uint64_t w0 = (batch && obs::tracing()) ? obs::now_ns() : 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this, raw = batch.get()] {
        return shutting_down_ || current_ != raw;
      });
      if (shutting_down_) return;
    }
    if (w0 != 0) obs::record_span("worker_retire_wait", w0, obs::now_ns());
  }
}

void parallel_for(std::uint64_t task_count,
                  const std::function<void(std::uint64_t)>& fn) {
  ThreadPool::global().parallel_for(task_count, fn);
}

}  // namespace rbb
