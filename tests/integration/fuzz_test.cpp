// Randomized operation-sequence tests ("fuzzing" with a fixed seed
// sweep): drive each process through random interleavings of steps,
// reassignments/faults and queries, validating the internal invariant
// checkers after every operation.  Catches bookkeeping drift that
// straight-line unit tests cannot reach.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/jackson.hpp"
#include "baselines/repeated_dchoices.hpp"
#include "core/faults.hpp"
#include "core/mixed_config.hpp"
#include "core/mixed_process.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "par/sharded_mixed.hpp"
#include "selfstab/israeli_jalfon.hpp"
#include "support/serial.hpp"
#include "tetris/leaky.hpp"
#include "tetris/tetris.hpp"

namespace rbb {
namespace {

class FuzzSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(FuzzSweep, RepeatedBallsProcessSurvivesRandomOps) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 7919 + n);
  Rng proc_rng = op_rng.split();
  RepeatedBallsProcess proc(
      make_config(InitialConfig::kRandom, n, n, proc_rng), proc_rng.split());
  for (int op = 0; op < 300; ++op) {
    switch (op_rng.below(8)) {
      case 0: {  // burst of rounds
        proc.run(op_rng.below(20));
        break;
      }
      case 1: {  // full adversarial fault
        const auto strategy = static_cast<FaultStrategy>(op_rng.below(4));
        proc.reassign(apply_fault(strategy, n, proc.ball_count(),
                                  proc.loads(), op_rng));
        break;
      }
      case 2: {  // partial fault
        proc.reassign(
            apply_partial_fault(proc.loads(), op_rng.below(n / 2 + 1)));
        break;
      }
      default: {  // single round + queries
        proc.step();
        (void)proc.is_legitimate();
        (void)proc.max_load();
        (void)proc.empty_bins();
        break;
      }
    }
    ASSERT_NO_THROW(proc.check_invariants()) << "op " << op;
    ASSERT_EQ(total_balls(proc.loads()), n) << "op " << op;
  }
}

TEST_P(FuzzSweep, TokenProcessSurvivesRandomOps) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 104729 + n);
  TokenProcess::Options options;
  options.policy = static_cast<QueuePolicy>(op_rng.below(3));
  options.track_visits = (n <= 256);
  options.track_delays = true;
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    placement[i] = op_rng.index(n);
  }
  TokenProcess proc(n, std::move(placement), options, op_rng.split());
  for (int op = 0; op < 200; ++op) {
    switch (op_rng.below(6)) {
      case 0: {
        proc.run(op_rng.below(10));
        break;
      }
      case 1: {
        proc.reassign(apply_fault_tokens(
            static_cast<FaultStrategy>(op_rng.below(4)), n, n, op_rng));
        break;
      }
      default: {
        proc.step();
        (void)proc.max_load();
        (void)proc.min_progress();
        break;
      }
    }
    ASSERT_NO_THROW(proc.check_invariants()) << "op " << op;
  }
  // Delay histogram accumulated something and never exceeded the round
  // count.
  EXPECT_GT(proc.delay_histogram().total(), 0u);
  EXPECT_LE(proc.delay_histogram().max_value(), proc.round());
}

TEST_P(FuzzSweep, TetrisAndLeakySurviveRandomRuns) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 31337 + n);
  TetrisProcess tetris(make_config(InitialConfig::kRandom, n, n, op_rng),
                       op_rng.split());
  LeakyBinsProcess leaky(make_config(InitialConfig::kOnePerBin, n, n, op_rng),
                         0.5 + 0.5 * op_rng.uniform(), op_rng.split());
  for (int op = 0; op < 100; ++op) {
    tetris.run(op_rng.below(15));
    leaky.run(op_rng.below(15));
    ASSERT_NO_THROW(tetris.check_invariants()) << "op " << op;
    ASSERT_NO_THROW(leaky.check_invariants()) << "op " << op;
  }
}

TEST_P(FuzzSweep, DChoicesAndJacksonSurviveRandomRuns) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 65537 + n);
  RepeatedDChoicesProcess dchoices(
      make_config(InitialConfig::kRandom, n, n, op_rng),
      1 + static_cast<std::uint32_t>(op_rng.below(3)), op_rng.split());
  ClosedJacksonNetwork jackson(
      make_config(InitialConfig::kRandom, n, n, op_rng), op_rng.split());
  double horizon = 0.0;
  for (int op = 0; op < 100; ++op) {
    dchoices.run(op_rng.below(15));
    horizon += op_rng.uniform() * 5.0;
    jackson.run_until(horizon);
    ASSERT_NO_THROW(dchoices.check_invariants()) << "op " << op;
    ASSERT_NO_THROW(jackson.check_invariants()) << "op " << op;
  }
  EXPECT_EQ(total_balls(dchoices.loads()), n);
  EXPECT_EQ(total_balls(jackson.loads()), n);
}

TEST_P(FuzzSweep, IsraeliJalfonSurvivesRandomOps) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 15485863 + n);
  // Alternate between clique mode and a random 4-regular graph.
  const bool use_graph = op_rng.bernoulli(0.5);
  const Graph graph = use_graph ? make_random_regular(n, 4, op_rng)
                                : make_complete(2);  // unused placeholder
  const double laziness = op_rng.uniform() * 0.9;
  IsraeliJalfonProcess proc(use_graph ? &graph : nullptr, n,
                            TokenPlacement::kRandomHalf, op_rng.split(),
                            laziness);
  for (int op = 0; op < 200; ++op) {
    switch (op_rng.below(4)) {
      case 0: {
        for (std::uint64_t r = op_rng.below(10); r > 0; --r) proc.step();
        break;
      }
      case 1: {
        (void)proc.run_until_single(op_rng.below(50));
        break;
      }
      default: {
        proc.step();
        (void)proc.is_legitimate();
        (void)proc.token_count();
        break;
      }
    }
    ASSERT_NO_THROW(proc.check_invariants()) << "op " << op;
    ASSERT_GE(proc.token_count(), 1u) << "op " << op;
  }
}

// Mixed-regime conservation fuzz: random (ball ratio, weight profile,
// bin profile) scenarios through both stream policies, revalidating
// check_invariants() after every burst and asserting the conservation
// law directly -- initial weighted mass equals current mass plus
// cumulative dropped mass, no capacity is ever exceeded, and zero-rate
// bins never lose a ball (they only hoard).
TEST_P(FuzzSweep, MixedRegimeConservesWeightedMass) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 48611 + n);
  const double ratios[] = {0.5, 1.0, 2.0, 8.0};
  const double ratio = ratios[op_rng.below(4)];
  const char* const weight_names[] = {"unit", "bimodal", "zipf"};
  const char* const bin_names[] = {"uniform", "two-speed", "stalled-tenth",
                                   "capped"};
  const std::string weights = weight_names[op_rng.below(3)];
  const std::string bins = bin_names[op_rng.below(4)];
  const MixedSpec spec = make_mixed_spec(n, ratio, weights, bins);

  weighted_load_t initial_weight = 0;
  const std::uint32_t k =
      static_cast<std::uint32_t>(spec.weights.class_weights.size());
  for (std::uint32_t u = 0; u < spec.bins; ++u) {
    for (std::uint32_t c = 0; c < k; ++c) {
      initial_weight +=
          static_cast<weighted_load_t>(
              spec.class_counts[static_cast<std::size_t>(u) * k + c]) *
          spec.weights.class_weights[c];
    }
  }

  const auto fuzz = [&](auto proc) {
    std::vector<load_t> stalled_floor(spec.bins, 0);
    for (std::uint32_t u = 0; u < spec.bins; ++u) {
      if (spec.rates[u] == 0) stalled_floor[u] = proc.loads()[u];
    }
    for (int op = 0; op < 60; ++op) {
      proc.run(op_rng.below(10));
      ASSERT_NO_THROW(proc.check_invariants()) << "op " << op;
      ASSERT_EQ(proc.total_balls() + proc.dropped_balls(), spec.balls)
          << "op " << op;
      ASSERT_EQ(proc.total_weight() + proc.dropped_weight(), initial_weight)
          << "op " << op;
      for (std::uint32_t u = 0; u < spec.bins; ++u) {
        if (spec.capacities[u] != 0) {
          ASSERT_LE(proc.loads()[u], spec.capacities[u])
              << "op " << op << " bin " << u;
        }
        if (spec.rates[u] == 0) {
          ASSERT_GE(proc.loads()[u], stalled_floor[u])
              << "op " << op << " stalled bin " << u;
          stalled_floor[u] = proc.loads()[u];
        }
      }
    }
  };
  fuzz(MixedProcess(spec, op_rng.split()));
  fuzz(par::SequentialCounterMixedProcess(
      spec, static_cast<std::uint64_t>(seed) * 1299709 + n));
}

// Engine-driven mixed fuzz: the same revalidation through the Engine's
// observer path (InvariantCheck after *every* round), now with the
// mixed fault family injecting adversarial per-class censuses -- the
// plan preserves per-class totals and honors capacities
// (apply_fault_mixed), so conservation must survive every fault on top
// of the drops the capped/stalled profiles already force.
TEST_P(FuzzSweep, EngineMixedRegimeSurvivesRandomRuns) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 75353 + n);
  const MixedSpec spec = make_mixed_spec(
      n, 8.0, "zipf", op_rng.bernoulli(0.5) ? "capped" : "stalled-tenth");
  Engine engine(par::ShardedMixedProcess(
      spec, static_cast<std::uint64_t>(seed) * 7 + n,
      par::ShardedOptions{.threads = 2, .shard_size = 64}));
  auto plan =
      make_mixed_fault_plan(1 + op_rng.below(4),
                            static_cast<FaultStrategy>(op_rng.below(4)),
                            op_rng.split());
  InvariantCheck check;
  std::uint64_t faults = 0;
  for (int op = 0; op < 20; ++op) {
    faults += engine.run(op_rng.below(12), RunForRounds{}, plan, check)
                  .faults_injected;
    ASSERT_NO_THROW(engine.check_invariants()) << "op " << op;
    ASSERT_EQ(engine.process().total_balls() +
                  engine.process().dropped_balls(),
              spec.balls)
        << "op " << op;
  }
  EXPECT_GT(faults, 0u);
}

// Fault -> checkpoint -> resume interleaving: snapshot a mixed process
// mid-run AFTER adversarial faults have fired, restore the snapshot
// into a fresh process, continue both without further faults, and
// demand conservation plus byte-identical final states.  Pins that a
// faulted census round-trips through the durability layer exactly.
TEST_P(FuzzSweep, MixedFaultCheckpointResumeConserves) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 92821 + n);
  const MixedSpec spec = make_mixed_spec(n, 2.0, "bimodal", "capped");
  const std::uint64_t proc_seed = static_cast<std::uint64_t>(seed) * 13 + n;

  Engine engine(par::SequentialCounterMixedProcess(spec, proc_seed));
  auto plan = make_mixed_fault_plan(
      3, static_cast<FaultStrategy>(op_rng.below(4)), op_rng.split());
  InvariantCheck check;
  const auto summary = engine.run(17, RunForRounds{}, plan, check);
  EXPECT_GT(summary.faults_injected, 0u);

  serial::ByteWriter w;
  engine.process().snapshot(w);

  par::SequentialCounterMixedProcess restored(spec, proc_seed);
  serial::ByteReader r(w.str());
  restored.restore(r);
  ASSERT_TRUE(r.done());
  ASSERT_NO_THROW(restored.check_invariants());
  ASSERT_EQ(restored.total_balls() + restored.dropped_balls(), spec.balls);
  ASSERT_EQ(restored.total_weight(), engine.process().total_weight());

  // Same continuation on both sides -> identical final snapshots.
  engine.run(23, RunForRounds{}, NoFaults{}, check);
  restored.run(23);
  serial::ByteWriter wa;
  engine.process().snapshot(wa);
  serial::ByteWriter wb;
  restored.snapshot(wb);
  EXPECT_EQ(wa.str(), wb.str());
}

// Engine-driven fuzz: random run-lengths with a periodic adversarial
// fault plan, revalidating the incremental max-load / empty-bin
// bookkeeping after *every* round via the InvariantCheck observer.  This
// exercises check_invariants() in exactly the state a production engine
// run sees (fault immediately after observation), which the per-op loops
// above cannot reach.
TEST_P(FuzzSweep, EngineSurvivesRandomRunsUnderFaultInjection) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 2654435761ULL + n);
  // Sequenced so the config draw precedes the process-stream split
  // (function-argument order is unspecified) -- seeds reproduce across
  // compilers.
  LoadConfig start = make_config(InitialConfig::kRandom, n, n, op_rng);
  Engine engine(RepeatedBallsProcess(std::move(start), op_rng.split()));
  const auto strategy = static_cast<FaultStrategy>(op_rng.below(4));
  auto plan = make_load_fault_plan(1 + op_rng.below(7), strategy,
                                   op_rng.split());
  InvariantCheck check;
  std::uint64_t faults = 0;
  for (int op = 0; op < 40; ++op) {
    faults += engine.run(op_rng.below(20), RunForRounds{}, plan, check)
                  .faults_injected;
    ASSERT_NO_THROW(engine.check_invariants()) << "op " << op;
    ASSERT_EQ(total_balls(engine.process().loads()), n) << "op " << op;
  }
  EXPECT_GT(faults, 0u);
}

TEST_P(FuzzSweep, EngineTokenProcessSurvivesFaultInjection) {
  const auto [n, seed] = GetParam();
  Rng op_rng(static_cast<std::uint64_t>(seed) * 40503 + n);
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = op_rng.index(n);
  TokenProcess::Options options;
  options.policy = static_cast<QueuePolicy>(op_rng.below(3));
  Engine engine(TokenProcess(n, std::move(placement), options,
                             op_rng.split()));
  const auto strategy = static_cast<FaultStrategy>(op_rng.below(4));
  auto plan = make_token_fault_plan(1 + op_rng.below(5), strategy,
                                    op_rng.split());
  InvariantCheck check;
  for (int op = 0; op < 30; ++op) {
    engine.run(op_rng.below(15), RunForRounds{}, plan, check);
    ASSERT_NO_THROW(engine.check_invariants()) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, FuzzSweep,
    ::testing::Combine(::testing::Values(8u, 64u, 257u),
                       ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace rbb
