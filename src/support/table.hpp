// Markdown table / CSV reporting for the experiment harness.
//
// Every bench in bench/exp_*.cpp prints one table per experiment
// (DESIGN.md Sect. 4 maps them) in GitHub-markdown format, so the
// harness output can be pasted into the docs verbatim.  An optional CSV
// mirror (RBB_CSV_DIR) supports downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rbb {

/// Column-oriented table accumulator with fixed headers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(std::uint64_t v);
  Table& cell(std::int64_t v);
  Table& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  /// Fixed-precision floating point cell.
  Table& cell(double v, int precision = 3);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  /// Raw cell text, row-major (consumed by the runner's JSON/CSV
  /// serialization, runner/result.hpp).
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Renders a GitHub-markdown table (pipes, header separator, padded
  /// columns).
  [[nodiscard]] std::string markdown() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string csv() const;

  /// Prints the markdown rendering, preceded by `title` as a heading.
  void print(std::ostream& os, const std::string& title) const;

  /// Writes the CSV rendering to `<dir>/<name>.csv` if dir is non-empty,
  /// creating the file (not the directory).  Returns true on success.
  bool write_csv(const std::string& dir, const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with examples).
[[nodiscard]] std::string format_double(double v, int precision = 3);

}  // namespace rbb
