#include "runner/runner.hpp"

#include <exception>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "ckpt/checkpoint.hpp"
#include "ckpt/io.hpp"
#include "runner/docgen.hpp"
#include "runner/interrupt.hpp"
#include "runner/optparse.hpp"
#include "runner/registry.hpp"
#include "runner/result.hpp"
#include "support/scale.hpp"
#include "support/table.hpp"

namespace rbb::runner {

namespace {

constexpr const char* kUsage = R"(rbb -- registry-driven experiment runner (repeated balls-into-bins)

usage:
  rbb list                          list registered experiments
  rbb describe <experiment>         show description and parameters
  rbb run <experiment> [options]    run one experiment
  rbb resume <ckpt> [options]       continue a checkpointed run to
                                    completion (experiment and
                                    parameters come from the
                                    checkpoint's own metadata; explicit
                                    options override)
  rbb sweep <experiment> [options]  run a cartesian parameter grid
  rbb docs [--out=PATH] [--check]   generate docs/experiments.md
  rbb help                          this text

options for run / sweep:
  --scale=smoke|default|paper|mega
                                sweep sizes (default: $RBB_BENCH_SCALE,
                                else "default"; mega = n >= 1e8 for the
                                sharded single-instance experiments)
  --format=table|json|csv       output rendering (default: table)
  --out=PATH                    write to PATH instead of stdout
  --backend=seq|sharded         round kernel (sharded-capable
                                experiments only; default: seq)
  --threads=N                   sharded-backend workers (0 = all)
  --metrics                     scrape src/obs/ telemetry after the run
                                and emit the additive `metrics` block
                                (counters, per-phase ns, barrier-wait
                                fraction, effective parallelism)
  --trace=FILE                  write the run's phase spans as
                                Chrome-trace JSON (open in Perfetto)
  --repeat=K                    execute the run K times, keep the
                                fastest execution (best-of-K timing
                                for perf rows; default: 1)
  --trial-parallelism=auto|K    concurrent trials for Monte-Carlo
                                experiments; the thread budget splits
                                across trials, each instance's sharded
                                rounds use the rest (default: auto)
  --checkpoint-dir=DIR          write rbb.ckpt.v1 snapshots here
                                (checkpoint-capable experiments only,
                                e.g. trajectory)
  --checkpoint-every=K          checkpoint period in rounds (0 = only
                                the SIGINT/exit checkpoint; requires
                                --checkpoint-dir)
  --checkpoint-keep=K           retain the newest K periodic
                                checkpoints (default: 3)
  --<param>=value               any parameter of the experiment
                                (see `rbb describe <experiment>`);
                                under `sweep`, comma-separated values
                                become a grid axis

`rbb docs --check` exits 1 if the committed file differs from the
registry (the CI docs-drift gate).

exit codes: 0 success; 1 run/write failure (including a corrupt or
mismatched checkpoint, always with a named "checkpoint <kind>:" error);
2 usage error; 130 interrupted by SIGINT -- the run finishes its
current round chunk, writes a final checkpoint when --checkpoint-dir is
set, and delivers the partial results before exiting.
)";

enum class Format { kTable, kJson, kCsv };

struct CommonOptions {
  BenchScale scale = bench_scale();  // env default, CLI override below
  Format format = Format::kTable;
  std::string out_path;
};

bool parse_scale(const std::string& text, BenchScale* scale) {
  if (text == "smoke") { *scale = BenchScale::kSmoke; return true; }
  if (text == "default") { *scale = BenchScale::kDefault; return true; }
  if (text == "paper") { *scale = BenchScale::kPaper; return true; }
  if (text == "mega") { *scale = BenchScale::kMega; return true; }
  return false;
}

bool parse_format(const std::string& text, Format* format) {
  if (text == "table") { *format = Format::kTable; return true; }
  if (text == "json") { *format = Format::kJson; return true; }
  if (text == "csv") { *format = Format::kCsv; return true; }
  return false;
}

/// Emits `payload` to --out (or `out` when no path was given).  Returns
/// the process exit code.
int deliver(const std::string& payload, const CommonOptions& options,
            std::ostream& out, std::ostream& err) {
  if (options.out_path.empty()) {
    out << payload;
    return 0;
  }
  // tmp+fsync+rename: a crash or full disk mid-write never leaves a
  // torn result file behind (same discipline as checkpoints).
  std::string error;
  if (!ckpt::atomic_write_file(options.out_path, payload, &error)) {
    err << "rbb: cannot write " << options.out_path << ": " << error << "\n";
    return 1;
  }
  return 0;
}

/// Runs the experiment (registry.cpp owns timing + metadata) and
/// renders one format.  Propagates run-function exceptions; cmd_run /
/// cmd_sweep hold the error boundary.
std::string execute_and_render(const Experiment& experiment,
                               const ParamValues& values, BenchScale scale,
                               Format format) {
  const CompletedRun run = run_experiment(experiment, values, scale);
  switch (format) {
    case Format::kJson: return to_json(run.meta, run.results);
    case Format::kCsv: return to_csv(run.meta, run.results);
    case Format::kTable: break;
  }
  return to_text(run.meta, run.results);
}

int cmd_list(std::ostream& out) {
  Table table({"experiment", "claim", "title"});
  for (const Experiment* e : default_registry().catalog()) {
    table.row()
        .cell(e->name)
        .cell(e->claim.empty() ? std::string("-") : e->claim)
        .cell(e->title);
  }
  out << table.markdown();
  return 0;
}

int cmd_describe(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  if (args.size() != 1) {
    err << "usage: rbb describe <experiment>\n";
    return 2;
  }
  const Experiment* e = default_registry().find(args[0]);
  if (e == nullptr) {
    err << "rbb: unknown experiment \"" << args[0]
        << "\" (see `rbb list`)\n";
    return 2;
  }
  out << e->name << (e->claim.empty() ? "" : " [" + e->claim + "]") << " -- "
      << e->title << "\n\n";
  out << e->description << "\n\n";
  out << "run: rbb run " << e->name
      << " [--scale=smoke|default|paper|mega] [--format=table|json|csv]\n\n";
  Table params({"parameter", "type", "default", "description"});
  for (const ParamSpec& spec : e->params) {
    params.row()
        .cell("--" + spec.name)
        .cell(std::string(to_string(spec.type)))
        .cell(spec.default_value.empty() ? std::string("\"\"")
                                         : spec.default_value)
        .cell(spec.help);
  }
  out << params.markdown();
  return 0;
}

/// Parsed surface of a run/sweep invocation: common options plus raw
/// parameter assignments in command-line order.
struct Invocation {
  const Experiment* experiment = nullptr;
  CommonOptions common;
  std::vector<std::pair<std::string, std::string>> assignments;
};

int parse_invocation(const char* verb, const std::vector<std::string>& args,
                     std::ostream& err, Invocation* inv) {
  if (args.empty() || args[0].rfind("--", 0) == 0) {
    err << "usage: rbb " << verb << " <experiment> [options]\n";
    return 2;
  }
  inv->experiment = default_registry().find(args[0]);
  if (inv->experiment == nullptr) {
    err << "rbb: unknown experiment \"" << args[0]
        << "\" (see `rbb list`)\n";
    return 2;
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string name;
    std::string value;
    bool has_value = false;
    if (!split_option(args, &i, &name, &value, &has_value)) {
      err << "rbb: unexpected argument \"" << args[i] << "\"\n";
      return 2;
    }
    if (name == "scale") {
      if (!has_value || !parse_scale(value, &inv->common.scale)) {
        err << "rbb: --scale expects smoke|default|paper|mega\n";
        return 2;
      }
    } else if (name == "format") {
      if (!has_value || !parse_format(value, &inv->common.format)) {
        err << "rbb: --format expects table|json|csv\n";
        return 2;
      }
    } else if (name == "out") {
      if (!has_value || value.empty()) {
        err << "rbb: --out expects a path\n";
        return 2;
      }
      inv->common.out_path = value;
    } else {
      inv->assignments.emplace_back(name, value);
    }
  }
  return 0;
}

int cmd_run(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  Invocation inv;
  if (const int rc = parse_invocation("run", args, err, &inv); rc != 0) {
    return rc;
  }
  ParamValues values(inv.experiment->params);
  for (const auto& [name, value] : inv.assignments) {
    std::string error;
    if (!values.set(name, value, &error)) {
      err << "rbb: " << error << " (see `rbb describe "
          << inv.experiment->name << "`)\n";
      return 2;
    }
  }
  // First ^C: checkpoint-capable experiments finish the current chunk,
  // write a final checkpoint, and we exit 130 below.  Second ^C kills
  // outright (SA_RESETHAND).
  interrupt::install();
  std::string payload;
  try {
    payload = execute_and_render(*inv.experiment, values, inv.common.scale,
                                 inv.common.format);
  } catch (const std::exception& e) {
    err << "rbb: " << inv.experiment->name << " failed: " << e.what()
        << "\n";
    return 1;
  }
  const int rc = deliver(payload, inv.common, out, err);
  if (interrupt::interrupted()) {
    err << "rbb: interrupted by SIGINT; partial results delivered (wall "
           "time in the run metadata covers the completed rounds)\n";
    return rc != 0 ? rc : interrupt::kExitCode;
  }
  return rc;
}

/// `rbb resume <ckpt>`: reconstructs the run invocation from the
/// checkpoint's own meta block (experiment name + `name=value`
/// parameter lines), lets explicit CLI options override, appends
/// --resume-from, and re-enters cmd_run.  A trajectory-changing
/// override is caught downstream by the header digest check.
int cmd_resume(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  if (args.empty() || args[0].rfind("--", 0) == 0) {
    err << "usage: rbb resume <checkpoint.ckpt> [options]\n";
    return 2;
  }
  const std::string& path = args[0];
  ckpt::Checkpoint checkpoint;
  try {
    checkpoint = ckpt::read_checkpoint(path);
  } catch (const std::exception& e) {
    err << "rbb: " << e.what() << "\n";
    return 1;
  }
  std::string experiment_name;
  std::vector<std::string> synthesized;
  synthesized.emplace_back();  // experiment name slot, filled below
  std::istringstream meta(checkpoint.meta);
  std::string line;
  while (std::getline(meta, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      err << "rbb: malformed meta line \"" << line << "\" in " << path
          << "\n";
      return 1;
    }
    if (line.compare(0, eq, "experiment") == 0) {
      experiment_name = line.substr(eq + 1);
    } else {
      synthesized.push_back("--" + line);
    }
  }
  if (experiment_name.empty()) {
    err << "rbb: checkpoint " << path << " names no experiment in its "
        << "meta block\n";
    return 1;
  }
  synthesized[0] = experiment_name;
  // CLI options after the meta lines: under `run` the last assignment
  // wins, so explicit flags (--rounds, --checkpoint-dir, ...) override
  // the checkpointed values.
  synthesized.insert(synthesized.end(), args.begin() + 1, args.end());
  synthesized.push_back("--resume-from=" + path);
  return cmd_run(synthesized, out, err);
}

/// Splits a sweep assignment on commas; a single value is a fixed
/// override, several values form a grid axis.
std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
}

int cmd_sweep(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  Invocation inv;
  if (const int rc = parse_invocation("sweep", args, err, &inv); rc != 0) {
    return rc;
  }
  const Experiment& experiment = *inv.experiment;

  // Validate every value up front and split fixed overrides from axes.
  struct Axis {
    std::string name;
    std::vector<std::string> values;
  };
  std::vector<std::pair<std::string, std::string>> fixed;
  std::vector<Axis> axes;
  ParamValues probe(experiment.params);  // for name/type validation only
  for (std::size_t a = 0; a < inv.assignments.size(); ++a) {
    const auto& [name, value] = inv.assignments[a];
    // Under run, the last duplicate wins; under sweep a duplicate would
    // silently shadow an axis, so reject it outright.
    for (std::size_t b = a + 1; b < inv.assignments.size(); ++b) {
      if (inv.assignments[b].first == name) {
        err << "rbb: --" << name
            << " given more than once; a sweep axis takes its values "
               "comma-separated in one option\n";
        return 2;
      }
    }
    const std::vector<std::string> parts = split_commas(value);
    for (const std::string& part : parts) {
      std::string error;
      if (!probe.set(name, part, &error)) {
        err << "rbb: " << error << " (see `rbb describe " << experiment.name
            << "`)\n";
        return 2;
      }
    }
    if (parts.size() == 1) {
      fixed.emplace_back(name, parts[0]);
    } else {
      axes.push_back(Axis{name, parts});
    }
  }

  // Cartesian product, first axis outermost; points run sequentially so
  // output order is deterministic (parallelism stays inside each run's
  // for_each_trial fan-out, design choice D5).
  std::size_t points = 1;
  for (const Axis& axis : axes) points *= axis.values.size();

  std::ostringstream payload;
  if (inv.common.format == Format::kJson) {
    payload << "{\n  \"schema\": \"rbb.sweep.v1\",\n  \"experiment\": \""
            << json_escape(experiment.name) << "\",\n  \"grid\": {";
    for (std::size_t a = 0; a < axes.size(); ++a) {
      payload << (a == 0 ? "\n" : ",\n") << "    \""
              << json_escape(axes[a].name) << "\": [";
      for (std::size_t v = 0; v < axes[a].values.size(); ++v) {
        if (v != 0) payload << ", ";
        const std::string& text = axes[a].values[v];
        payload << (is_json_number(text)
                        ? text
                        : "\"" + json_escape(text) + "\"");
      }
      payload << "]";
    }
    payload << (axes.empty() ? "},\n" : "\n  },\n");
    payload << "  \"results\": [\n";
  }
  for (std::size_t point = 0; point < points; ++point) {
    ParamValues values(experiment.params);
    for (const auto& [name, value] : fixed) values.set(name, value, nullptr);
    std::size_t remainder = point;
    std::ostringstream label;
    for (std::size_t a = axes.size(); a-- > 0;) {
      const Axis& axis = axes[a];
      const std::string& value = axis.values[remainder % axis.values.size()];
      remainder /= axis.values.size();
      values.set(axis.name, value, nullptr);
    }
    for (const Axis& axis : axes) {
      label << (label.tellp() > 0 ? " " : "") << axis.name << "="
            << values.text(axis.name);
    }
    std::string rendered;
    try {
      rendered = execute_and_render(experiment, values, inv.common.scale,
                                    inv.common.format);
    } catch (const std::exception& e) {
      err << "rbb: " << experiment.name << " failed at sweep point "
          << (point + 1) << "/" << points
          << (label.tellp() > 0 ? " (" + label.str() + ")" : "") << ": "
          << e.what() << "\n";
      return 1;
    }
    switch (inv.common.format) {
      case Format::kJson: {
        // Indent the per-run document two levels into the results array.
        std::istringstream lines(rendered);
        std::string line;
        bool first = true;
        while (std::getline(lines, line)) {
          payload << (first ? "    " : "\n    ") << line;
          first = false;
        }
        payload << (point + 1 < points ? ",\n" : "\n");
        break;
      }
      case Format::kCsv:
        if (point != 0) payload << "\n";
        payload << "# sweep point " << (point + 1) << "/" << points
                << (label.tellp() > 0 ? " " + label.str() : "") << "\n";
        payload << rendered;
        break;
      case Format::kTable:
        payload << "\n#### sweep point " << (point + 1) << "/" << points
                << (label.tellp() > 0 ? ": " + label.str() : "") << "\n";
        payload << rendered;
        break;
    }
  }
  if (inv.common.format == Format::kJson) payload << "  ]\n}\n";
  return deliver(payload.str(), inv.common, out, err);
}

int cmd_docs(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  std::string out_path;
  bool check = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string name;
    std::string value;
    bool has_value = false;
    if (!split_option(args, &i, &name, &value, &has_value)) {
      err << "rbb: unexpected argument \"" << args[i] << "\"\n";
      return 2;
    }
    if (name == "out") {
      if (!has_value || value.empty()) {
        err << "rbb: --out expects a path\n";
        return 2;
      }
      out_path = value;
    } else if (name == "check") {
      if (has_value) {
        err << "rbb: --check takes no value\n";
        return 2;
      }
      check = true;
    } else {
      err << "rbb: unknown option --" << name << " for docs\n";
      return 2;
    }
  }
  const std::string rendered = render_experiment_docs(default_registry());
  if (check) {
    const std::string path =
        out_path.empty() ? std::string("docs/experiments.md") : out_path;
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      err << "rbb: docs --check: cannot read " << path << "\n";
      return 1;
    }
    std::ostringstream existing;
    existing << file.rdbuf();
    if (existing.str() != rendered) {
      err << "rbb: docs drift: " << path
          << " does not match the registry; regenerate with\n"
          << "  rbb docs --out=" << path << "\n";
      return 1;
    }
    out << "rbb: docs up to date (" << path << ")\n";
    return 0;
  }
  CommonOptions options;
  options.out_path = out_path;
  return deliver(rendered, options, out, err);
}

}  // namespace

int runner_main(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& verb = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (verb == "help" || verb == "--help" || verb == "-h") {
    out << kUsage;
    return 0;
  }
  if (verb == "list") {
    if (!rest.empty()) {
      err << "usage: rbb list\n";
      return 2;
    }
    return cmd_list(out);
  }
  if (verb == "describe") return cmd_describe(rest, out, err);
  if (verb == "run") return cmd_run(rest, out, err);
  if (verb == "resume") return cmd_resume(rest, out, err);
  if (verb == "sweep") return cmd_sweep(rest, out, err);
  if (verb == "docs") return cmd_docs(rest, out, err);
  err << "rbb: unknown command \"" << verb << "\"\n\n" << kUsage;
  return 2;
}

int runner_main(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return runner_main(args, std::cout, std::cerr);
}

}  // namespace rbb::runner
