// E8 -- Corollary 1: the multi-token traversal on the clique has cover
// time O(n log^2 n), a log-factor above the single-walker coupon
// collector O(n log n).
//
// Table: per n, the global cover time, its normalization by n log2^2 n,
// the single-token baseline, the measured slowdown factor, and log2 n
// (the predicted slowdown shape).
#include <iostream>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/fit.hpp"
#include "bench/bench_common.hpp"
#include "support/bounds.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E8: parallel cover time O(n log^2 n) vs single walker (Corollary 1)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 4, 10);
  const std::vector<std::uint32_t> ns =
      scale == BenchScale::kSmoke
          ? std::vector<std::uint32_t>{64, 128}
          : (scale == BenchScale::kPaper
                 ? std::vector<std::uint32_t>{256, 512, 1024, 2048}
                 : std::vector<std::uint32_t>{128, 256, 512, 1024});

  Table table({"n", "trials", "cover (mean)", "cover / (n log2^2 n)",
               "single walk (mean)", "slowdown", "log2 n", "timeouts"});
  std::vector<double> xs;
  std::vector<double> covers;
  std::vector<double> singles;
  for (const std::uint32_t n : ns) {
    CoverTimeParams p;
    p.n = n;
    p.trials = trials;
    p.seed = cli.u64("seed");
    const CoverTimeResult r = run_cover_time(p);
    const double slowdown =
        r.single_walk.mean() > 0 ? r.cover_time.mean() / r.single_walk.mean()
                                 : 0.0;
    table.row()
        .cell(std::uint64_t{n})
        .cell(std::uint64_t{trials})
        .cell(r.cover_time.mean(), 0)
        .cell(r.normalized.mean(), 3)
        .cell(r.single_walk.mean(), 0)
        .cell(slowdown, 2)
        .cell(log2n(n), 2)
        .cell(std::uint64_t{r.timeouts});
    xs.push_back(static_cast<double>(n));
    covers.push_back(r.cover_time.mean());
    singles.push_back(r.single_walk.mean());
  }
  const PowerLawFit cover_fit = fit_power_law(xs, covers);
  const PowerLawFit single_fit = fit_power_law(xs, singles);
  std::cout << "fitted growth laws: parallel cover ~ n^"
            << format_double(cover_fit.exponent, 3)
            << " (R^2 = " << format_double(cover_fit.r_squared, 4)
            << "), single walk ~ n^"
            << format_double(single_fit.exponent, 3)
            << "   [n log^2 n ~ n^{1+2 log log n / log n}: expect "
               "parallel exponent ~1.2-1.4 on this range, single ~1.1]\n";
  bench::emit(table, "E8_cover_time",
              "parallel cover time is ~log n slower than one walker "
              "(Corollary 1)",
              scale);
  return 0;
}
