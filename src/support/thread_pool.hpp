// Minimal task-parallel substrate for Monte-Carlo sweeps (design choice D5)
// and for the sharded intra-round kernel (src/par/).
//
// Parallelism in this repository is across independent trials and sweep
// points, and -- since the src/par/ backend -- across bin shards inside
// one round: each task owns its RNG substream (derived from (seed,
// task_index) for trials, from counter-based draws for shards), writes
// into its own result slot, and the combined output is bit-identical
// regardless of thread count.  This matches the Core Guidelines
// concurrency advice (share nothing mutable; communicate by transfer of
// ownership) and keeps every scientific result reproducible.
//
// Nesting rule (how trial-level fan-out composes with a sharded round):
// by default a for_each issued from *inside* any pool task runs inline
// on the calling thread, sequentially -- whether it targets the same
// pool or a different one.  One level of the hierarchy gets the
// hardware; inner levels degrade to sequential instead of
// oversubscribing (T trial workers x N shard workers threads).
// Submissions to the *same* pool always inline (parallelizing them
// would deadlock on the pool's own workers).  A caller that has split
// the hardware budget deliberately -- trial fan-out on a small private
// pool, each trial driving a sharded process on its own pool
// (--trial-parallelism) -- opts inner levels back in by holding a
// NestedParallelismGrant: while a grant is active on the thread,
// submissions to a *different* pool run parallel instead of inline.
// Results are identical either way, because both layers are
// deterministic by construction.  The same accounting is why
// ThreadPool::global() reserves one slot for the submitting thread:
// run_batch participates in draining its own batch, so a pool of
// hardware_concurrency workers plus the submitter would leave
// hardware_concurrency + 1 runnable threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rbb {

/// Fixed-size pool of worker threads executing an indexed task function
/// over a range [0, task_count).  Work is distributed by atomic counter
/// (dynamic scheduling), which balances heterogeneous trial costs.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (with the
  /// RBB_THREADS environment variable as an override, useful on CI).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, task_count), potentially in parallel,
  /// and blocks until all tasks have finished.  Exceptions thrown by tasks
  /// are rethrown (the first one captured) after the batch drains.  The
  /// callable is a template parameter: workers dispatch through one
  /// per-batch function pointer, so fn's body stays inlinable (no
  /// per-task std::function indirection).
  template <typename Fn>
  void for_each(std::uint64_t task_count, Fn&& fn) {
    if (task_count == 0) return;
    auto batch = std::make_shared<Batch>();
    batch->task_count = task_count;
    batch->context = std::addressof(fn);
    batch->invoke = [](void* context, std::uint64_t i) {
      (*static_cast<std::remove_reference_t<Fn>*>(context))(i);
    };
    run_batch(std::move(batch));
  }

  /// Type-erased convenience wrapper over for_each.
  void parallel_for(std::uint64_t task_count,
                    const std::function<void(std::uint64_t)>& fn);

  /// Runs fn(i) for every i in [0, count) with every task *resident on
  /// its own thread for the batch's whole lifetime* -- the contract the
  /// pipelined round loop's epoch protocol needs (long-lived team tasks
  /// that synchronize with each other must all be runnable at once).
  /// Requires count <= thread_count() + 1 (the submitter participates);
  /// returns false WITHOUT RUNNING ANYTHING when the team cannot be
  /// guaranteed concurrent: too many tasks, the pool is mid-batch, or
  /// the call comes from inside a pool task without an applicable
  /// NestedParallelismGrant.  Callers fall back to their barriered path
  /// on false.  Exceptions from team tasks are rethrown like for_each.
  template <typename Fn>
  bool run_team(std::uint64_t count, Fn&& fn) {
    if (count == 0) return true;
    if (count > static_cast<std::uint64_t>(thread_count()) + 1) return false;
    auto batch = std::make_shared<Batch>();
    batch->task_count = count;
    batch->context = std::addressof(fn);
    batch->invoke = [](void* context, std::uint64_t i) {
      (*static_cast<std::remove_reference_t<Fn>*>(context))(i);
    };
    return run_batch_team(std::move(batch));
  }

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Number of threads a default-constructed pool would use.
  [[nodiscard]] static unsigned default_thread_count();

  /// A process-wide shared pool for the experiment drivers.  Sized one
  /// below default_thread_count() (floor 1) because the submitting
  /// thread participates in every batch it runs; an explicit
  /// RBB_THREADS override is honored exactly.
  [[nodiscard]] static ThreadPool& global();

  /// True while the calling thread is executing a pool task (any pool).
  /// for_each consults this to run nested submissions inline -- see the
  /// nesting rule in the header comment.
  [[nodiscard]] static bool inside_task() noexcept;

  /// True when a submission to `target` from the calling thread may run
  /// parallel: not inside any pool task, or inside one while a
  /// NestedParallelismGrant is active and `target` is not the pool
  /// whose task this thread is running (same-pool nesting always
  /// inlines -- it would deadlock otherwise).
  [[nodiscard]] static bool nested_allowed(const ThreadPool* target) noexcept;

  /// One submitted for_each call: an index space plus a context/function-
  /// pointer pair erased once per batch (public only for internal
  /// linkage; not part of the API).
  struct Batch {
    std::uint64_t task_count = 0;
    void* context = nullptr;
    void (*invoke)(void*, std::uint64_t) = nullptr;
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> done{0};
    std::exception_ptr first_error;  // guarded by the pool mutex
  };

 private:
  /// Submits the batch, participates in draining it, waits for
  /// completion, and rethrows the first captured task exception.
  void run_batch(std::shared_ptr<Batch> batch);

  /// run_team's backend: like run_batch, but where for_each would
  /// degrade to inline execution (nested without a grant, pool busy)
  /// this refuses instead -- inline execution cannot satisfy the
  /// all-tasks-concurrent contract.  Returns true iff the team ran.
  bool run_batch_team(std::shared_ptr<Batch> batch);

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  Batch* current_ = nullptr;                 // guarded by mutex_
  std::shared_ptr<Batch> current_owner_;     // guarded by mutex_
  bool shutting_down_ = false;
};

/// Convenience: run fn(i) for i in [0, task_count) on the global pool.
void parallel_for(std::uint64_t task_count,
                  const std::function<void(std::uint64_t)>& fn);

/// RAII opt-in to one extra level of pool nesting on this thread: while
/// alive, for_each/run_team submissions to a pool *other than the one
/// whose task the thread is running* execute parallel instead of inline.
/// Held by the trial fan-out wrapper when --trial-parallelism splits the
/// hardware budget between trials and intra-instance shards; same-pool
/// submissions still inline unconditionally (deadlock rule).  Grants
/// stack (nesting the guard is harmless) and are strictly per-thread.
class NestedParallelismGrant {
 public:
  NestedParallelismGrant() noexcept;
  ~NestedParallelismGrant();
  NestedParallelismGrant(const NestedParallelismGrant&) = delete;
  NestedParallelismGrant& operator=(const NestedParallelismGrant&) = delete;
};

}  // namespace rbb
