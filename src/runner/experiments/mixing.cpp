// E21 -- tagged-token mixing: how fast does a token's position law
// approach uniform despite the queueing correlation?
#include <algorithm>

#include "analysis/experiments.hpp"
#include "runner/registry.hpp"

namespace rbb::runner {

void register_mixing(Registry& registry) {
  Experiment e;
  e.name = "mixing";
  e.claim = "E21";
  e.title =
      "tagged-token position mixing under the queueing constraint";
  e.description =
      "The repeated process IS parallel random walks in the "
      "one-token-per-message gossip model, where [13] sought fast "
      "mixing.  An unconstrained clique walker mixes in ONE step; a "
      "token at the back of a queue is frozen until the queue drains.  "
      "Two tables, both tracking the worst-positioned token: (a) random "
      "legitimate placement -- the token's law hits uniform within a "
      "handful of rounds; (b) all-in-one placement -- the token is "
      "buried under n-1 others and its law stays a point mass for "
      "Theta(n) rounds (TV ~ 1), the starkest display of the queueing "
      "correlation the paper had to tame.";
  e.params = {
      {"n", ParamSpec::Type::kU64, "0", "bins (0 = scale default)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(4000, 20000, 100000);
    const std::uint32_t n =
        ctx.params.u64("n") != 0
            ? ctx.params.u32("n")
            : by_scale<std::uint32_t>(ctx.scale, 64, 128, 256);

    ResultSet rs;

    // (a) equilibrium placement: fast decay to the noise floor.
    MixingParams p;
    p.n = n;
    p.checkpoints = {1, 2, 3, 4, 6, 8, 12, 16};
    p.trials = trials;
    p.seed = ctx.seed();
    p.placement = InitialConfig::kRandom;
    const MixingResult fifo = run_mixing(p);
    p.policy = QueuePolicy::kLifo;
    const MixingResult lifo = run_mixing(p);

    Table& fast = rs.add_table(
        "E21_mixing",
        "equilibrium start: back-of-queue token mixes in O(1) rounds",
        {"round t", "TV from uniform (fifo)", "TV (lifo)", "noise floor"});
    for (std::size_t i = 0; i < p.checkpoints.size(); ++i) {
      fast.row()
          .cell(p.checkpoints[i])
          .cell(fifo.tv_from_uniform[i], 4)
          .cell(lifo.tv_from_uniform[i], 4)
          .cell(fifo.noise_floor, 4);
    }

    // (b) worst-case pile: frozen for ~n rounds under FIFO.
    MixingParams wp;
    wp.n = n;
    wp.trials = std::max<std::uint32_t>(trials / 4, 1000);
    wp.seed = ctx.seed() + 7;
    wp.placement = InitialConfig::kAllInOne;
    for (const std::uint64_t t :
         {std::uint64_t{1}, static_cast<std::uint64_t>(n) / 4,
          static_cast<std::uint64_t>(n) / 2,
          static_cast<std::uint64_t>(n) - 1,
          static_cast<std::uint64_t>(n) + 8,
          2 * static_cast<std::uint64_t>(n)}) {
      wp.checkpoints.push_back(t);
    }
    const MixingResult pile = run_mixing(wp);
    Table& frozen = rs.add_table(
        "E21b_mixing_pile",
        "all-in-one start: the buried token is frozen for ~n rounds",
        {"round t", "t / n", "TV from uniform", "noise floor"});
    for (std::size_t i = 0; i < wp.checkpoints.size(); ++i) {
      frozen.row()
          .cell(wp.checkpoints[i])
          .cell(static_cast<double>(wp.checkpoints[i]) / n, 2)
          .cell(pile.tv_from_uniform[i], 4)
          .cell(pile.noise_floor, 4);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
