// Thread-slot registry behind obs/metrics.hpp and obs/trace.hpp.
//
// Each recording thread lazily registers one Slot: counter and
// phase_ns cells are plain uint64 (the hot path is a TLS pointer deref
// and an add -- no atomics), the trace buffer is a bounded vector
// under a per-slot mutex (tracing is opt-in, so the lock is off the
// default path entirely).  Slots live in a leaked global vector so
// totals survive thread exit and static destruction order.
//
// Scrape safety relies on quiescence, not on per-cell atomicity: every
// instrumented pool task's writes are ordered before the submitting
// thread's return from for_each by the batch-completion handshake
// (Batch::done acq_rel increment against the submitter's acquire
// wait), and scrape()/reset() run from the submitting thread between
// runs.  The one writer that can outlive a batch -- a worker recording
// its post-drain retire wait -- touches only the mutex-guarded trace
// buffer and its dropped-event count, which scrape() reads under the
// same mutex.
#include "obs/metrics.hpp"

#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.hpp"

#if RBB_TELEMETRY

namespace rbb::obs {
namespace detail {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_tracing{false};

namespace {

/// Trace epoch: absolute now_ns() at start_trace(); event timestamps
/// are stored relative to it.
std::atomic<std::uint64_t> g_trace_epoch{0};

struct alignas(64) Slot {
  std::uint64_t counters[kCounterCount] = {};
  std::uint64_t phase_ns[kPhaseCount] = {};
  std::uint32_t tid = 0;

  // Trace state, guarded by mu (shared with the exporter/scraper).
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t events_dropped = 0;
};

struct SlotRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<Slot>> slots;
};

SlotRegistry& registry() {
  static SlotRegistry* const reg = new SlotRegistry();  // leaked: see above
  return *reg;
}

Slot& thread_slot() {
  thread_local Slot* slot = [] {
    SlotRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    reg.slots.push_back(std::make_unique<Slot>());
    reg.slots.back()->tid = static_cast<std::uint32_t>(reg.slots.size() - 1);
    return reg.slots.back().get();
  }();
  return *slot;
}

void append_event(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                  const std::uint32_t* tid_override) {
  Slot& slot = thread_slot();
  const std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.events.size() >= kMaxTraceEventsPerThread) {
    ++slot.events_dropped;
    return;
  }
  slot.events.push_back(TraceEvent{
      name, ts_ns, dur_ns, tid_override != nullptr ? *tid_override : slot.tid});
}

}  // namespace

void slot_add(unsigned counter, std::uint64_t delta) noexcept {
  thread_slot().counters[counter] += delta;
}

void slot_add_phase(unsigned phase, std::uint64_t ns) noexcept {
  thread_slot().phase_ns[phase] += ns;
}

void finish_phase(Phase phase, std::uint64_t t0_ns) noexcept {
  const std::uint64_t t1_ns = now_ns();
  slot_add_phase(static_cast<unsigned>(phase), t1_ns - t0_ns);
  if (tracing()) record_span(to_string(phase), t0_ns, t1_ns);
}

std::vector<TraceEvent> collect_trace_events() {
  std::vector<TraceEvent> all;
  SlotRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& slot : reg.slots) {
    const std::lock_guard<std::mutex> slot_lock(slot->mu);
    all.insert(all.end(), slot->events.begin(), slot->events.end());
  }
  return all;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsSnapshot scrape() noexcept {
  MetricsSnapshot snap;
  detail::SlotRegistry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& slot : reg.slots) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      snap.counters[c] += slot->counters[c];
    }
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      snap.phase_ns[p] += slot->phase_ns[p];
    }
    const std::lock_guard<std::mutex> slot_lock(slot->mu);
    snap.counters[static_cast<std::size_t>(Counter::kTraceEventsDropped)] +=
        slot->events_dropped;
  }
  return snap;
}

void reset() noexcept {
  detail::SlotRegistry& reg = detail::registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& slot : reg.slots) {
    for (std::size_t c = 0; c < kCounterCount; ++c) slot->counters[c] = 0;
    for (std::size_t p = 0; p < kPhaseCount; ++p) slot->phase_ns[p] = 0;
    const std::lock_guard<std::mutex> slot_lock(slot->mu);
    slot->events.clear();
    slot->events_dropped = 0;
  }
}

void start_trace() noexcept {
  detail::SlotRegistry& reg = detail::registry();
  {
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& slot : reg.slots) {
      const std::lock_guard<std::mutex> slot_lock(slot->mu);
      slot->events.clear();
      slot->events_dropped = 0;
    }
  }
  detail::g_trace_epoch.store(now_ns(), std::memory_order_relaxed);
  detail::g_tracing.store(true, std::memory_order_relaxed);
}

void stop_trace() noexcept {
  detail::g_tracing.store(false, std::memory_order_relaxed);
}

void record_span(const char* name, std::uint64_t t0_ns,
                 std::uint64_t t1_ns) noexcept {
  if (!tracing()) return;
  const std::uint64_t epoch =
      detail::g_trace_epoch.load(std::memory_order_relaxed);
  // Spans opened before start_trace() clamp to the epoch.
  const std::uint64_t ts = t0_ns > epoch ? t0_ns - epoch : 0;
  const std::uint64_t dur = t1_ns > t0_ns ? t1_ns - t0_ns : 0;
  detail::append_event(name, ts, dur, nullptr);
}

void record_span_at(const char* name, std::uint32_t tid, std::uint64_t ts_ns,
                    std::uint64_t dur_ns) noexcept {
  if (!tracing()) return;
  detail::append_event(name, ts_ns, dur_ns, &tid);
}

}  // namespace rbb::obs

#endif  // RBB_TELEMETRY
