// Unit tests for the engine layer: stopping rules vs the round budget,
// fault plans, observer composition, the lazy RoundContext, and the
// customization points of the Process interface.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/independent_walks.hpp"
#include "core/process.hpp"
#include "core/token_process.hpp"
#include "selfstab/israeli_jalfon.hpp"
#include "support/bounds.hpp"
#include "tetris/tetris.hpp"

namespace rbb {
namespace {

RepeatedBallsProcess worst_case(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return {make_config(InitialConfig::kAllInOne, n, n, rng), rng.split()};
}

TEST(Engine, FixedWindowRunsExactlyThatManyRounds) {
  Engine engine(worst_case(32, 1));
  const EngineResult r = engine.run_rounds(100);
  EXPECT_EQ(r.rounds, 100u);
  EXPECT_FALSE(r.goal_reached);
  EXPECT_EQ(r.faults_injected, 0u);
  EXPECT_EQ(engine.process().round(), 100u);
  EXPECT_EQ(engine.rounds_driven(), 100u);
}

TEST(Engine, RoundsDrivenAccumulatesAcrossRuns) {
  Engine engine(worst_case(32, 2));
  engine.run_rounds(10);
  engine.run_rounds(15);
  EXPECT_EQ(engine.rounds_driven(), 25u);
  EXPECT_EQ(engine.process().round(), 25u);
}

TEST(Engine, UntilLegitimateStopsEarlyAndReportsGoal) {
  const std::uint32_t n = 64;
  Engine engine(worst_case(n, 3));
  const double threshold = 4.0 * log2n(n);
  const EngineResult r =
      engine.run(64ull * n, UntilLegitimate{threshold}, NoFaults{});
  EXPECT_TRUE(r.goal_reached);
  EXPECT_LT(r.rounds, 64ull * n);
  EXPECT_TRUE(engine.process().is_legitimate(4.0));
}

TEST(Engine, UntilLegitimateFromLegitimateStartRunsZeroRounds) {
  Rng rng(4);
  LoadConfig start = make_config(InitialConfig::kOnePerBin, 64, 64, rng);
  Engine engine(RepeatedBallsProcess(std::move(start), rng.split()));
  const EngineResult r =
      engine.run(1000, UntilLegitimate{4.0 * log2n(64)}, NoFaults{});
  EXPECT_TRUE(r.goal_reached);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Engine, BudgetCapReportsNoGoal) {
  // An impossible goal: the budget must end the run.
  Engine engine(worst_case(32, 5));
  const EngineResult r = engine.run(
      7, [](const RepeatedBallsProcess&, std::uint64_t) { return false; },
      NoFaults{});
  EXPECT_EQ(r.rounds, 7u);
  EXPECT_FALSE(r.goal_reached);
}

TEST(Engine, UntilAllEmptiedOnceMatchesLegacyTetrisHelper) {
  const std::uint32_t n = 48;
  Rng rng_a(6);
  Rng rng_b(6);
  LoadConfig start_a = make_config(InitialConfig::kAllInOne, n, n, rng_a);
  TetrisProcess legacy(std::move(start_a), rng_a.split());
  LoadConfig start_b = make_config(InitialConfig::kAllInOne, n, n, rng_b);
  Engine engine(TetrisProcess(std::move(start_b), rng_b.split()));
  const std::uint64_t cap = 64ull * n;
  const std::uint64_t legacy_round = legacy.run_until_all_emptied(cap);
  const EngineResult r = engine.run(cap, UntilAllEmptiedOnce{}, NoFaults{});
  ASSERT_TRUE(r.goal_reached);
  EXPECT_EQ(engine.process().max_first_empty_round(), legacy_round);
}

TEST(Engine, UntilSingleTokenCoalescesIsraeliJalfon) {
  Engine engine(IsraeliJalfonProcess(nullptr, 32, TokenPlacement::kEveryNode,
                                     Rng(7), 0.0));
  const EngineResult r = engine.run(100000, UntilSingleToken{}, NoFaults{});
  ASSERT_TRUE(r.goal_reached);
  EXPECT_EQ(engine.process().token_count(), 1u);
  EXPECT_TRUE(engine.process().is_legitimate());
}

TEST(Engine, ObserversSeeEveryRound) {
  Engine engine(worst_case(32, 8));
  MeanEmptyFraction mean;
  MaxLoadTrajectory trajectory;
  engine.run_rounds(50, mean, trajectory);
  EXPECT_EQ(mean.rounds, 50u);
  ASSERT_EQ(trajectory.values.size(), 50u);
  // From all-in-one, round 1 releases a single ball: the max load must
  // start near n - 1 and never exceed it afterwards.
  EXPECT_GE(trajectory.values.front(), 30u);
  for (const std::uint32_t m : trajectory.values) {
    EXPECT_LE(m, 32u);
  }
}

TEST(Engine, WindowMaxAndLegitimacyAgree) {
  const std::uint32_t n = 64;
  Engine engine(worst_case(n, 9));
  WindowMaxLoad wmax;
  LegitimacyWindow legit(4.0 * log2n(n));
  engine.run_rounds(200, wmax, legit);
  EXPECT_EQ(legit.total_rounds, 200u);
  EXPECT_EQ(legit.whole_window_legitimate(),
            static_cast<double>(wmax.window_max) <= 4.0 * log2n(n));
  EXPECT_GE(wmax.window_max, wmax.final_max);
}

TEST(Engine, RunningMaxAtCheckpointsMatchesTrajectory) {
  Engine engine(worst_case(32, 10));
  RunningMaxAtCheckpoints checkpoints({1, 5, 25});
  MaxLoadTrajectory trajectory;
  engine.run_rounds(25, checkpoints, trajectory);
  std::uint32_t running = 0;
  std::vector<std::uint32_t> expected;
  for (std::size_t t = 0; t < trajectory.values.size(); ++t) {
    running = std::max(running, trajectory.values[t]);
    if (t + 1 == 1 || t + 1 == 5 || t + 1 == 25) expected.push_back(running);
  }
  EXPECT_EQ(checkpoints.values(), expected);
}

TEST(Engine, PeriodicLoadFaultsFireOnSchedule) {
  const std::uint32_t n = 32;
  Engine engine(worst_case(n, 11));
  auto plan = make_load_fault_plan(10, FaultStrategy::kAllToOne, Rng(99));
  const EngineResult r = engine.run(35, RunForRounds{}, plan);
  EXPECT_EQ(r.rounds, 35u);
  EXPECT_EQ(r.faults_injected, 3u);  // after rounds 10, 20, 30
  EXPECT_EQ(engine.process().ball_count(), n);
  engine.check_invariants();
}

TEST(Engine, FaultScheduleUsesTotalDrivenRounds) {
  // Chunked runs must not reset the fault clock: 2 x 10 rounds with
  // period 10 fires at absolute rounds 10 and 20.
  Engine engine(worst_case(32, 12));
  auto plan = make_load_fault_plan(10, FaultStrategy::kRandom, Rng(98));
  std::uint64_t faults = 0;
  faults += engine.run(10, RunForRounds{}, plan).faults_injected;
  faults += engine.run(10, RunForRounds{}, plan).faults_injected;
  EXPECT_EQ(faults, 2u);
}

TEST(Engine, TokenFaultPlanReassignsAllTokens) {
  const std::uint32_t n = 16;
  std::vector<std::uint32_t> placement(n);
  for (std::uint32_t i = 0; i < n; ++i) placement[i] = i;
  TokenProcess::Options options;
  Engine engine(TokenProcess(n, placement, options, Rng(13)));
  auto plan = make_token_fault_plan(5, FaultStrategy::kAllToOne, Rng(97));
  const EngineResult r = engine.run(5, RunForRounds{}, plan);
  EXPECT_EQ(r.faults_injected, 1u);
  // kAllToOne piles every token into bin 0.
  EXPECT_EQ(engine.process().load(0), n);
  engine.check_invariants();
}

TEST(Engine, TokenFaultPlanWorksOnIndependentWalks) {
  std::vector<std::uint32_t> placement(24, 0);
  Engine engine(IndependentWalksProcess(24, placement, nullptr, Rng(14)));
  auto plan = make_token_fault_plan(3, FaultStrategy::kRandom, Rng(96));
  const EngineResult r = engine.run(9, RunForRounds{}, plan);
  EXPECT_EQ(r.faults_injected, 3u);
  EXPECT_EQ(engine.process().ball_count(), 24u);
  engine.check_invariants();
}

TEST(RoundContext, LazyStatsMatchProcessAndMemoize) {
  Rng rng(15);
  LoadConfig start = make_config(InitialConfig::kHalfLoaded, 16, 16, rng);
  const RepeatedBallsProcess proc(std::move(start), rng.split());
  const RoundContext<RepeatedBallsProcess> ctx(proc, 42);
  EXPECT_EQ(ctx.round(), 42u);
  EXPECT_EQ(ctx.bins(), 16u);
  EXPECT_EQ(ctx.max_load(), proc.max_load());
  EXPECT_EQ(ctx.empty_bins(), proc.empty_bins());
  EXPECT_DOUBLE_EQ(ctx.empty_fraction(),
                   static_cast<double>(proc.empty_bins()) / 16.0);
  EXPECT_EQ(ctx.max_load(), proc.max_load());  // memoized second read
}

TEST(ProcessInterface, LoadSnapshotsForTokenCarryingVariants) {
  // TokenProcess: loads come from the per-bin queues.
  std::vector<std::uint32_t> placement{0, 0, 3};
  TokenProcess token(4, placement, TokenProcess::Options{}, Rng(16));
  EXPECT_EQ(engine_loads(token), (LoadConfig{2, 0, 0, 1}));
  EXPECT_EQ(engine_bin_count(token), 4u);

  // Israeli-Jalfon: loads are the 0/1 token-presence flags.
  IsraeliJalfonProcess ij(nullptr, 3, std::vector<std::uint8_t>{1, 0, 1},
                          Rng(17), 0.0);
  EXPECT_EQ(engine_loads(ij), (LoadConfig{1, 0, 1}));
  EXPECT_EQ(engine_bin_count(ij), 3u);
  EXPECT_EQ(engine_max_load(ij), 1u);
  EXPECT_EQ(engine_empty_bins(ij), 1u);
}

}  // namespace
}  // namespace rbb
