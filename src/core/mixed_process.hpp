// Mixed-regime process, sequential xoshiro instantiation.
//
// The user-facing simulator for m != n / weighted-ball / heterogeneous
// -bin scenarios (core/mixed_config.hpp describes the scenario, the
// core in core/kernel/mixed_kernel.hpp executes it).  The counter
// -stream and sharded instantiations live in src/par/sharded_mixed.hpp.
#pragma once

#include <utility>

#include "core/kernel/mixed_kernel.hpp"
#include "support/rng.hpp"

namespace rbb {

/// Sequential mixed-regime simulator: one xoshiro stream, in-place
/// execution.  Within a round the j-th departure of bin u draws its
/// class pick then its destination, in that order, bins ascending.
class MixedProcess
    : public kernel::MixedProcessCore<kernel::SequentialStream,
                                      kernel::SequentialExecution> {
 public:
  MixedProcess(MixedSpec spec, Rng rng)
      : MixedProcessCore(std::move(spec),
                         kernel::SequentialStream(rng)) {}
};

}  // namespace rbb
