// E2 -- Theorem 1 (self-stabilization): from ANY configuration the system
// reaches a legitimate configuration within O(n) rounds.
#include <cmath>
#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/fit.hpp"
#include "runner/registry.hpp"

namespace rbb::runner {

void register_convergence(Registry& registry) {
  Experiment e;
  e.name = "convergence";
  e.claim = "E2";
  e.title = "convergence time is linear in n (Theorem 1)";
  e.description =
      "For each n and worst-case start (all-in-one, geometric, "
      "half-loaded), measures the rounds until M(t) <= beta log2 n, "
      "normalized by n.  The paper predicts a linear law; from all-in-one "
      "the heavy bin drains one ball per round, so the normalized value "
      "approaches 1 from below.  A power-law fit over the all-in-one "
      "sweep reports the measured growth exponent.  Backend-capable "
      "(load-only family): --backend=sharded runs the same measurement "
      "on the src/par/ kernel (counter-RNG draws; same statistics, "
      "different trajectories).  --threads sets the total budget and "
      "--trial-parallelism splits it between concurrent trials and "
      "sharded rounds inside each trial (default: all of it fans out "
      "across trials); per-round thread scaling in isolation is the "
      "sharded_scaling experiment.";
  e.family = ProcessFamily::kLoadOnly;
  e.params = {
      {"beta", ParamSpec::Type::kF64, "4.0", "legitimacy constant"},
      {"ball-ratio", ParamSpec::Type::kF64, "0",
       "balls m = round(ratio * n) (0 = the paper's m = n)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(3, 8, 20);

    ResultSet rs;
    Table& table = rs.add_table(
        "E2_convergence", "convergence time is linear in n (Theorem 1)",
        {"n", "start", "trials", "rounds (mean)", "rounds (max)",
         "rounds / n (mean)", "timeouts"});
    std::vector<double> xs;
    std::vector<double> worst_rounds;
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      for (const InitialConfig start :
           {InitialConfig::kAllInOne, InitialConfig::kGeometric,
            InitialConfig::kHalfLoaded}) {
        ConvergenceParams p;
        p.n = n;
        p.trials = trials;
        p.seed = ctx.seed();
        p.start = start;
        p.beta = ctx.params.f64("beta");
        if (ctx.params.f64("ball-ratio") != 0) {
          p.balls = static_cast<std::uint64_t>(
              std::llround(ctx.params.f64("ball-ratio") * n));
        }
        if (ctx.sharded()) p.backend = Backend::kSharded;
        p.plan = ctx.trial_plan(trials);
        const ConvergenceResult r = run_convergence(p);
        table.row()
            .cell(std::uint64_t{n})
            .cell(std::string(to_string(start)))
            .cell(std::uint64_t{trials})
            .cell(r.rounds_to_legitimate.mean(), 1)
            .cell(r.rounds_to_legitimate.max(), 0)
            .cell(r.normalized.mean(), 3)
            .cell(std::uint64_t{r.timeouts});
        if (start == InitialConfig::kAllInOne) {
          xs.push_back(static_cast<double>(n));
          worst_rounds.push_back(r.rounds_to_legitimate.mean());
        }
      }
    }
    const PowerLawFit fit = fit_power_law(xs, worst_rounds);
    rs.note("fitted growth law (all-in-one start): convergence ~ n^" +
            format_double(fit.exponent, 3) +
            " (R^2 = " + format_double(fit.r_squared, 4) +
            ")   [Theorem 1 predicts exponent 1; small sweeps read high "
            "because the stopping threshold beta*log2(n) is an additive "
            "offset]");
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
