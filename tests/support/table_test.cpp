// Tests for the markdown/CSV table renderer.
#include "support/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rbb {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, MarkdownLayout) {
  Table t({"n", "value"});
  t.row().cell(std::uint64_t{8}).cell(1.5, 1);
  t.row().cell(std::uint64_t{1024}).cell(2.25, 1);
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| n    | value |"), std::string::npos);
  EXPECT_NE(md.find("| 8    | 1.5   |"), std::string::npos);
  EXPECT_NE(md.find("| 1024 | 2.2   |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(md.find("|------|"), std::string::npos);
}

TEST(Table, CellOrderEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.cell("x"), std::logic_error);  // no row started
  t.row().cell("1").cell("2");
  EXPECT_THROW(t.cell("3"), std::logic_error);  // row full
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t({"a", "b"});
  t.row().cell("only one");
  EXPECT_THROW(t.row(), std::logic_error);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "note"});
  t.row().cell("plain").cell("with,comma");
  t.row().cell("quo\"te").cell("multi\nline");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(Table, CsvRoundTripStructure) {
  Table t({"x", "y"});
  t.row().cell(std::int64_t{-3}).cell(std::uint64_t{7});
  std::istringstream in(t.csv());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "-3,7");
}

TEST(Table, PrintIncludesTitle) {
  Table t({"h"});
  t.row().cell("v");
  std::ostringstream out;
  t.print(out, "My Experiment");
  EXPECT_NE(out.str().find("### My Experiment"), std::string::npos);
  EXPECT_NE(out.str().find("| h |"), std::string::npos);
}

TEST(Table, WriteCsvToDirectory) {
  Table t({"a"});
  t.row().cell(std::uint64_t{1});
  EXPECT_FALSE(t.write_csv("", "x"));
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(t.write_csv(dir, "table_test_out"));
  std::ifstream in(dir + "/table_test_out.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::remove((dir + "/table_test_out.csv").c_str());
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace rbb
