// Process memory introspection for the perf experiments.
#pragma once

#include <cstdint>

namespace rbb {

/// Peak RSS with explicit availability: on platforms without a
/// readable /proc/self/status (or without a VmHWM line) `available`
/// is false and callers must render "unavailable" -- a silent 0 would
/// read as "no memory used" in the result tables.
struct PeakRss {
  bool available = false;
  std::uint64_t bytes = 0;
};

/// Peak resident set size of the current process (Linux VmHWM from
/// /proc/self/status).
[[nodiscard]] PeakRss peak_rss() noexcept;

/// Parses VmHWM out of a status file at `path` (testing seam for
/// peak_rss: unit tests point it at synthetic files).
[[nodiscard]] PeakRss parse_peak_rss_status(const char* path) noexcept;

}  // namespace rbb
