// Multi-token traversal (paper, Sect. 4) on top of the TokenProcess.
//
// n tokens -- one per node initially, or adversarially placed -- perform
// the random-walk protocol with the one-token-per-node-per-round
// constraint.  Corollary 1: on the complete graph the (global) cover time
// is O(n log^2 n) w.h.p., a log n slowdown over the single-walker coupon
// collector O(n log n).  Sect. 4.1: an adversary reassigning all tokens
// every gamma*n rounds (gamma >= 6) costs only a constant factor.
#pragma once

#include <cstdint>
#include <optional>

#include "core/faults.hpp"
#include "core/token_process.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rbb {

/// Outcome of one traversal run.
struct TraversalResult {
  /// Rounds until every token visited every node; nullopt if the cap hit.
  std::optional<std::uint64_t> cover_time;
  /// Earliest / latest single-token cover round (valid when covered).
  std::uint64_t first_token_covered = 0;
  std::uint64_t last_token_covered = 0;
  /// Maximum queue length observed at any sampled round.
  std::uint32_t max_load_seen = 0;
  /// Minimum per-token progress (walk steps) at the end of the run.
  std::uint64_t min_progress = 0;
  std::uint64_t rounds_run = 0;
};

/// Parameters of a traversal experiment.
struct TraversalParams {
  std::uint32_t n = 0;                      // nodes; tokens = n
  QueuePolicy policy = QueuePolicy::kFifo;
  const Graph* graph = nullptr;             // nullptr = complete graph
  std::uint64_t max_rounds = 0;             // 0 = 64 * n * log2(n)^2
  InitialConfig placement = InitialConfig::kOnePerBin;
  /// Fault injection (Sect. 4.1): period 0 disables.
  std::uint64_t fault_period = 0;
  FaultStrategy fault_strategy = FaultStrategy::kAllToOne;
};

/// Runs one multi-token traversal; deterministic given `seed`.
[[nodiscard]] TraversalResult run_traversal(const TraversalParams& params,
                                            std::uint64_t seed);

/// Initial token placement for a traversal: maps the InitialConfig load
/// families onto token positions (token i -> bin).
[[nodiscard]] std::vector<std::uint32_t> make_token_placement(
    InitialConfig placement, std::uint32_t bins, std::uint32_t tokens,
    Rng& rng);

}  // namespace rbb
