// SIGINT handling for `rbb run` / `rbb resume` (DESIGN.md Sect. 7).
//
// The first ^C sets a flag; checkpoint-capable experiments poll it at
// round-chunk boundaries, write a final checkpoint, and return, after
// which the runner exits with kExitCode (130, the shell's convention
// for death-by-SIGINT) so scripts can tell an interrupted run from a
// completed or failed one.  The handler installs with SA_RESETHAND:
// a second ^C gets the default disposition and kills the process
// immediately -- graceful shutdown must never make the tool
// unkillable.
#pragma once

namespace rbb::runner::interrupt {

/// Documented exit status of an interrupted-but-checkpointed run.
inline constexpr int kExitCode = 130;

/// Installs the one-shot SIGINT handler (idempotent).
void install();

/// True once SIGINT has been received.
[[nodiscard]] bool interrupted() noexcept;

}  // namespace rbb::runner::interrupt
