#!/usr/bin/env python3
"""Compare two BENCH_*.json perf baselines row by row.

Both inputs are rbb.result.v1 documents produced by

    rbb run sharded_scaling --format=json --out=BENCH_sharded.json

Rows are keyed by (n, variant, backend, threads) -- older baselines
without a variant column are read as variant="load" -- and the tool
prints the per-row ns/ball delta (absolute and percent), plus rows that
exist on only one side (scales differ, kernels added/removed).

By default the exit code is 0 (reporting only).  With --gate PCT the
tool becomes CI's perf gate: it exits 1 when any shared row's ns/ball
regressed by more than PCT percent against the old baseline.  Rows
present on only one side never fail the gate (adding a kernel or a
scale must not require a baseline refresh in the same commit).

Only the ns/ball (and rounds/sec) columns are compared; any other
column a baseline grows -- e.g. the state_bytes_per_ball / peak_rss_mb
memory columns of sharded_scaling -- is informational and never gates.
Columns are resolved by name, so baselines from before a column was
added still diff cleanly against newer ones.

Several NEW files may be given: rows merge by per-row *minimum*
ns/ball (the standard de-noising estimator for wall timings -- noise
on shared runners only ever adds time).  CI measures the pinned smoke
configuration three times and gates on the merged result, so a single
descheduled run cannot fail the job.

Usage:
    tools/bench_diff.py [--gate PCT] OLD.json NEW.json [NEW2.json ...]
"""

from __future__ import annotations

import json
import signal
import sys

# Behave under `| head`: die silently on a closed pipe.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_rows(path: str) -> dict[tuple, dict]:
    """Keyed ns/ball (and friends) per (n, variant, backend, threads)."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "rbb.result.v1":
        sys.exit(f"{path}: not an rbb.result.v1 document "
                 f"(schema={doc.get('schema')!r})")
    tables = [t for t in doc.get("tables", [])
              if t.get("id") == "sharded_scaling"]
    if not tables:
        sys.exit(f"{path}: no sharded_scaling table")
    table = tables[0]
    columns = table["columns"]
    idx = {name: i for i, name in enumerate(columns)}
    rows: dict[tuple, dict] = {}
    for row in table["rows"]:
        variant = row[idx["variant"]] if "variant" in idx else "load"
        key = (row[idx["n"]], variant, row[idx["backend"]],
               row[idx["threads"]])
        rows[key] = {
            "ns_per_ball": float(row[idx["ns_per_ball"]]),
            "rounds_per_sec": float(row[idx["rounds_per_sec"]]),
        }
    return rows


def fmt_key(key: tuple) -> str:
    n, variant, backend, threads = key
    return f"n={n:<11} {variant:<8} {backend:<11} x{threads}"


def main() -> int:
    args = sys.argv[1:]
    gate_pct: float | None = None
    if "--gate" in args:
        at = args.index("--gate")
        try:
            gate_pct = float(args[at + 1])
        except (IndexError, ValueError):
            print("--gate needs a numeric percent threshold\n",
                  file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
        args = args[:at] + args[at + 2:]
    if len(args) < 2 or any(a.startswith("-") for a in args):
        print(__doc__, file=sys.stderr)
        return 2
    old_path, new_paths = args[0], args[1:]
    old = load_rows(old_path)
    new: dict[tuple, dict] = {}
    for path in new_paths:
        for key, row in load_rows(path).items():
            if key in new:
                new[key]["ns_per_ball"] = min(new[key]["ns_per_ball"],
                                              row["ns_per_ball"])
                new[key]["rounds_per_sec"] = max(new[key]["rounds_per_sec"],
                                                 row["rounds_per_sec"])
            else:
                new[key] = row
    new_path = new_paths[0] if len(new_paths) == 1 else \
        f"min of {len(new_paths)} runs"

    shared = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    print(f"# bench diff: {old_path} -> {new_path}")
    print(f"# {len(shared)} shared rows, {len(only_old)} only-old, "
          f"{len(only_new)} only-new")
    regressions: list[tuple] = []
    if shared:
        print(f"{'row':<42} {'old ns/ball':>12} {'new ns/ball':>12} "
              f"{'delta':>9} {'pct':>8}")
        for key in shared:
            o = old[key]["ns_per_ball"]
            n = new[key]["ns_per_ball"]
            delta = n - o
            pct = (delta / o * 100.0) if o else float("inf")
            marker = " <-- slower" if pct > 10.0 else \
                     (" <-- faster" if pct < -10.0 else "")
            print(f"{fmt_key(key):<42} {o:>12.2f} {n:>12.2f} "
                  f"{delta:>+9.2f} {pct:>+7.1f}%{marker}")
            if gate_pct is not None and pct > gate_pct:
                regressions.append((key, pct))
    for key in only_old:
        print(f"only in {old_path}: {fmt_key(key)}")
    for key in only_new:
        print(f"only in {new_path}: {fmt_key(key)}")
    if regressions:
        print(f"\nGATE FAILED: {len(regressions)} row(s) regressed more "
              f"than {gate_pct}% ns/ball:", file=sys.stderr)
        for key, pct in regressions:
            print(f"  {fmt_key(key)}  {pct:+.1f}%", file=sys.stderr)
        print("If the regression is intended (e.g. a deliberate trade-off), "
              "regenerate the committed baseline in this PR or apply the "
              "override label documented in .github/workflows/ci.yml.",
              file=sys.stderr)
        return 1
    if gate_pct is not None:
        print(f"# gate: no row regressed more than {gate_pct}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
