#include "support/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rbb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one header required");
  }
}

Table& Table::row() {
  if (!rows_.empty() && rows_.back().size() != headers_.size()) {
    throw std::logic_error("Table::row: previous row incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string text) {
  if (rows_.empty()) throw std::logic_error("Table::cell: call row() first");
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table::cell: row already full");
  }
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int precision) {
  return cell(format_double(v, precision));
}

std::string Table::markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      out << ' ' << text << std::string(widths[c] - text.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

std::string Table::csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << ',';
    out << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out << ',';
      out << escape(r[c]);
    }
    out << '\n';
  }
  return out.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "\n### " << title << "\n\n" << markdown() << '\n';
}

bool Table::write_csv(const std::string& dir, const std::string& name) const {
  if (dir.empty()) return false;
  std::ofstream out(dir + "/" + name + ".csv");
  if (!out) return false;
  out << csv();
  return static_cast<bool>(out);
}

std::string format_double(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

}  // namespace rbb
