// E14 -- Sect. 5 open question / conjecture: on regular graphs the
// maximum load should remain logarithmic (the previous bound was
// O(sqrt(t)) [12]).
#include <cmath>
#include <string>

#include "analysis/experiments.hpp"
#include "graph/graph.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"

namespace rbb::runner {

void register_graphs(Registry& registry) {
  Experiment e;
  e.name = "graphs";
  e.claim = "E14";
  e.title =
      "window max load on general topologies (Sect. 5 conjecture)";
  e.description =
      "Per topology (complete, cycle, torus, hypercube, random "
      "8-regular, star), the window max load vs log2 n and vs "
      "sqrt(window), plus the minimum empty fraction (whose distribution "
      "across the network is the technical obstacle the paper "
      "describes).  Regular graphs flatten near a small multiple of "
      "log n; the star (non-regular) is the contrast case.";
  e.params = {
      {"n", ParamSpec::Type::kU64, "0",
       "nodes (0 = scale default; must be a power of 4)"},
  };
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 3, 8);
    const std::uint32_t n =
        ctx.params.u64("n") != 0
            ? ctx.params.u32("n")
            : by_scale<std::uint32_t>(ctx.scale, 256, 1024, 4096);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 15, 40);

    ResultSet rs;
    Table& table = rs.add_table(
        "E14_graphs",
        "window max load on general topologies (Sect. 5 conjecture)",
        {"graph", "regular", "window max (mean)", "max / log2 n",
         "sqrt(window)", "min empty frac"});
    Rng graph_rng(ctx.seed() + 99);
    for (const std::string name :
         {"complete", "cycle", "torus", "hypercube", "regular8", "star"}) {
      const Graph g = make_named_graph(name, n, graph_rng);
      StabilityParams p;
      p.n = n;
      p.rounds = wf * n;
      p.trials = trials;
      p.seed = ctx.seed();
      p.graph = &g;
      const StabilityResult r = run_stability(p);
      table.row()
          .cell(name)
          .cell(std::string(g.is_regular() ? "yes" : "no"))
          .cell(r.window_max.mean(), 2)
          .cell(r.window_max.mean() / log2n(n), 3)
          .cell(std::sqrt(static_cast<double>(p.rounds)), 1)
          .cell(r.min_empty_fraction.min(), 3);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
