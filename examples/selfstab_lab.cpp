// Self-stabilization lab: the paper's probabilistic self-stabilization
// notion (Sect. 1.1) applied to two processes with one shared harness.
//
//  1. Israeli-Jalfon token management ([5]): from *any* token placement,
//     lazy coalescing random walks converge to the single-token
//     legitimate set and stay there (tokens never split).
//  2. Repeated balls-into-bins: from the all-in-one worst case, the
//     process reaches max load <= beta log2 n within O(n) rounds and
//     stays legitimate (Theorem 1).
//
// The certifier reports, for each: the Wilson-certified convergence
// probability, the convergence-time distribution, and the closure
// violation rate over a post-convergence window.
//
//   ./examples/selfstab_lab [--n 256] [--trials 40] [--seed 7]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/config.hpp"
#include "core/process.hpp"
#include "selfstab/certifier.hpp"
#include "selfstab/israeli_jalfon.hpp"
#include "support/cli.hpp"

namespace {

void report(const char* name, const rbb::CertifyResult& r, std::uint32_t n) {
  std::cout << name << ":\n"
            << "  converged           " << r.converged << "/" << r.trials
            << "  (Wilson 95% lower bound on P: " << r.p_converged_lower95
            << ")\n"
            << "  convergence rounds  mean " << r.convergence_rounds.mean()
            << "  (" << r.convergence_rounds.mean() / n << " x n)"
            << ", min " << r.convergence_rounds.min() << ", max "
            << r.convergence_rounds.max() << "\n"
            << "  closure violations  " << r.closure_violations << " / "
            << r.closure_rounds << " rounds (rate "
            << r.closure_violation_rate() << ")\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli("selfstab_lab: certify two self-stabilizing processes");
  cli.add_u64("n", 256, "system size");
  cli.add_u64("trials", 40, "Monte-Carlo trials");
  cli.add_u64("seed", 7, "RNG seed");
  if (!cli.parse(argc, argv)) return EXIT_SUCCESS;

  const auto n = static_cast<std::uint32_t>(cli.u64("n"));
  const std::uint64_t trials = cli.u64("trials");
  const std::uint64_t seed = cli.u64("seed");

  std::cout << "n = " << n << ", trials = " << trials << "\n\n";

  auto ij_factory = [n, seed](std::uint64_t trial) {
    auto proc = std::make_shared<IsraeliJalfonProcess>(
        nullptr, n, TokenPlacement::kEveryNode, Rng(seed, trial));
    StabTrialHooks hooks;
    hooks.step = [proc] { proc->step(); };
    hooks.legitimate = [proc] { return proc->is_legitimate(); };
    return hooks;
  };
  report("Israeli-Jalfon (clique, every node starts with a token)",
         certify_self_stabilization(ij_factory,
                                    {.trials = trials,
                                     .horizon = 1000ull * n,
                                     .closure_window = 200}),
         n);

  auto rbb_factory = [n, seed](std::uint64_t trial) {
    Rng rng(seed ^ 0x5bd1e995, trial);
    auto proc = std::make_shared<RepeatedBallsProcess>(
        make_config(InitialConfig::kAllInOne, n, n, rng), rng);
    StabTrialHooks hooks;
    hooks.step = [proc] { proc->step(); };
    hooks.legitimate = [proc] { return proc->is_legitimate(4.0); };
    return hooks;
  };
  report("Repeated balls-into-bins (all n balls start in one bin)",
         certify_self_stabilization(rbb_factory,
                                    {.trials = trials,
                                     .horizon = 16ull * n,
                                     .closure_window = 200}),
         n);

  std::cout << "Both systems converge from their worst cases and then hold\n"
               "their legitimate sets -- the two halves of probabilistic\n"
               "self-stabilization (paper, Sect. 1.1).\n";
  return EXIT_SUCCESS;
}
