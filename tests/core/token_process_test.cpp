// Tests for the identity-tracking token process: queue policies, token
// conservation, visit/cover tracking, progress accounting, reassignment.
#include "core/token_process.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>

namespace rbb {
namespace {

std::vector<std::uint32_t> one_per_bin(std::uint32_t n) {
  std::vector<std::uint32_t> pos(n);
  std::iota(pos.begin(), pos.end(), 0u);
  return pos;
}

TokenProcess::Options fifo_options() {
  TokenProcess::Options o;
  o.policy = QueuePolicy::kFifo;
  return o;
}

TEST(BallQueue, FifoOrder) {
  BallQueue q;
  Rng rng(1);
  q.push(10);
  q.push(20);
  q.push(30);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(QueuePolicy::kFifo, rng), 10u);
  EXPECT_EQ(q.pop(QueuePolicy::kFifo, rng), 20u);
  q.push(40);
  EXPECT_EQ(q.pop(QueuePolicy::kFifo, rng), 30u);
  EXPECT_EQ(q.pop(QueuePolicy::kFifo, rng), 40u);
  EXPECT_TRUE(q.empty());
}

TEST(BallQueue, LifoOrder) {
  BallQueue q;
  Rng rng(2);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(QueuePolicy::kLifo, rng), 3u);
  EXPECT_EQ(q.pop(QueuePolicy::kLifo, rng), 2u);
  EXPECT_EQ(q.pop(QueuePolicy::kLifo, rng), 1u);
}

TEST(BallQueue, RandomPopReturnsMember) {
  BallQueue q;
  Rng rng(3);
  for (std::uint32_t i = 0; i < 10; ++i) q.push(i);
  std::set<std::uint32_t> seen;
  while (!q.empty()) {
    const std::uint32_t t = q.pop(QueuePolicy::kRandom, rng);
    EXPECT_TRUE(seen.insert(t).second);  // no duplicates
    EXPECT_LT(t, 10u);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(BallQueue, PopEmptyThrows) {
  BallQueue q;
  Rng rng(4);
  EXPECT_THROW((void)q.pop(QueuePolicy::kFifo, rng), std::logic_error);
}

TEST(BallQueue, CompactionPreservesOrder) {
  BallQueue q;
  Rng rng(5);
  // Interleave pushes and FIFO pops past the compaction threshold.
  std::uint32_t next_push = 0;
  std::uint32_t next_expect = 0;
  for (int i = 0; i < 500; ++i) {
    q.push(next_push++);
    q.push(next_push++);
    ASSERT_EQ(q.pop(QueuePolicy::kFifo, rng), next_expect++);
  }
  while (!q.empty()) {
    ASSERT_EQ(q.pop(QueuePolicy::kFifo, rng), next_expect++);
  }
  EXPECT_EQ(next_expect, next_push);
}

TEST(QueuePolicyNames, RoundTrip) {
  for (const auto p :
       {QueuePolicy::kFifo, QueuePolicy::kLifo, QueuePolicy::kRandom}) {
    EXPECT_EQ(queue_policy_from_string(to_string(p)), p);
  }
  EXPECT_THROW((void)queue_policy_from_string("??"), std::invalid_argument);
}

TEST(TokenProcess, RejectsBadConstruction) {
  EXPECT_THROW(TokenProcess(0, {0}, fifo_options(), Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(TokenProcess(4, {}, fifo_options(), Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(TokenProcess(4, {4}, fifo_options(), Rng(1)),
               std::invalid_argument);
}

TEST(TokenProcess, InitialPlacementCountsAsVisit) {
  TokenProcess proc(4, {0, 1, 2, 3}, fifo_options(), Rng(1));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(proc.visited_count(i), 1u);
    EXPECT_EQ(proc.token_bin(i), i);
    EXPECT_EQ(proc.progress(i), 0u);
  }
  EXPECT_FALSE(proc.all_covered());
}

TEST(TokenProcess, TokensConservedAcrossRounds) {
  TokenProcess proc(16, one_per_bin(16), fifo_options(), Rng(2));
  for (int t = 0; t < 200; ++t) {
    proc.step();
    proc.check_invariants();
  }
  std::uint32_t total = 0;
  for (std::uint32_t u = 0; u < 16; ++u) total += proc.load(u);
  EXPECT_EQ(total, 16u);
}

TEST(TokenProcess, ProgressSumsToDepartures) {
  // Total progress after T rounds = sum over rounds of #non-empty bins;
  // every round moves at least 1 and at most n tokens.
  TokenProcess proc(8, one_per_bin(8), fifo_options(), Rng(3));
  proc.run(50);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 8; ++i) total += proc.progress(i);
  EXPECT_GE(total, 50u);
  EXPECT_LE(total, 50u * 8u);
}

TEST(TokenProcess, SingleTokenWalksEveryRound) {
  TokenProcess proc(8, {3}, fifo_options(), Rng(4));
  proc.run(100);
  EXPECT_EQ(proc.progress(0), 100u);
  EXPECT_EQ(proc.min_progress(), 100u);
}

TEST(TokenProcess, CoverageDetectedOnCompleteGraph) {
  // n = 4, plenty of rounds: every token covers all bins quickly.
  TokenProcess proc(4, one_per_bin(4), fifo_options(), Rng(5));
  const auto cover = proc.run_until_covered(10000);
  ASSERT_TRUE(cover.has_value());
  EXPECT_TRUE(proc.all_covered());
  EXPECT_EQ(proc.global_cover_time(), *cover);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(proc.visited_count(i), 4u);
    EXPECT_LE(proc.cover_round(i), *cover);
  }
}

TEST(TokenProcess, RunUntilCoveredRespectsCap) {
  TokenProcess proc(64, one_per_bin(64), fifo_options(), Rng(6));
  EXPECT_FALSE(proc.run_until_covered(2).has_value());
  EXPECT_EQ(proc.round(), 2u);
}

TEST(TokenProcess, VisitTrackingDisabledThrows) {
  TokenProcess::Options o = fifo_options();
  o.track_visits = false;
  TokenProcess proc(4, one_per_bin(4), o, Rng(7));
  proc.run(10);  // progress still works
  EXPECT_GT(proc.progress(0), 0u);
  EXPECT_THROW((void)proc.visited_count(0), std::logic_error);
  EXPECT_THROW((void)proc.run_until_covered(10), std::logic_error);
}

TEST(TokenProcess, ReassignMovesEveryToken) {
  TokenProcess proc(8, one_per_bin(8), fifo_options(), Rng(8));
  proc.run(5);
  std::vector<std::uint32_t> all_to_three(8, 3);
  proc.reassign(all_to_three);
  EXPECT_EQ(proc.load(3), 8u);
  EXPECT_EQ(proc.max_load(), 8u);
  EXPECT_EQ(proc.empty_bins(), 7u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(proc.token_bin(i), 3u);
  proc.check_invariants();
}

TEST(TokenProcess, ReassignValidation) {
  TokenProcess proc(4, one_per_bin(4), fifo_options(), Rng(9));
  EXPECT_THROW(proc.reassign({0, 1}), std::invalid_argument);
  EXPECT_THROW(proc.reassign({0, 1, 2, 9}), std::invalid_argument);
}

TEST(TokenProcess, GraphModeKeepsTokensOnEdges) {
  const Graph g = make_cycle(8);
  TokenProcess::Options o = fifo_options();
  o.graph = &g;
  TokenProcess proc(8, one_per_bin(8), o, Rng(10));
  for (int t = 0; t < 50; ++t) {
    std::vector<std::uint32_t> before(8);
    for (std::uint32_t i = 0; i < 8; ++i) before[i] = proc.token_bin(i);
    proc.step();
    for (std::uint32_t i = 0; i < 8; ++i) {
      const std::uint32_t now = proc.token_bin(i);
      if (now != before[i]) {
        ASSERT_TRUE(g.has_edge(before[i], now))
            << "token " << i << " jumped " << before[i] << "->" << now;
      }
    }
  }
}

TEST(TokenProcess, FifoReleasesOldestToken) {
  // Two tokens in one bin: FIFO releases the lower id first (queue order
  // is id order at construction).
  TokenProcess proc(2, {0, 0}, fifo_options(), Rng(11));
  proc.step();
  EXPECT_EQ(proc.progress(0), 1u);
  EXPECT_EQ(proc.progress(1), 0u);
}

TEST(TokenProcess, LifoReleasesNewestToken) {
  TokenProcess::Options o = fifo_options();
  o.policy = QueuePolicy::kLifo;
  TokenProcess proc(2, {0, 0}, o, Rng(12));
  proc.step();
  EXPECT_EQ(proc.progress(0), 0u);
  EXPECT_EQ(proc.progress(1), 1u);
}

TEST(TokenProcessDelays, DisabledByDefault) {
  TokenProcess proc(4, one_per_bin(4), fifo_options(), Rng(20));
  EXPECT_THROW((void)proc.delay_histogram(), std::logic_error);
}

TEST(TokenProcessDelays, LoneTokenNeverWaits) {
  TokenProcess::Options o = fifo_options();
  o.track_visits = false;
  o.track_delays = true;
  TokenProcess proc(16, {3}, o, Rng(21));
  proc.run(50);
  const Histogram& delays = proc.delay_histogram();
  EXPECT_EQ(delays.total(), 50u);   // one release per round
  EXPECT_EQ(delays.max_value(), 0u);  // never queued behind anyone
}

TEST(TokenProcessDelays, FifoPileDelaysAreExact) {
  // n tokens piled in one bin, FIFO: token i waits exactly i rounds
  // before its first release, so the first n recorded delays are
  // 0, 1, ..., n-1 (one of each).
  constexpr std::uint32_t n = 16;
  TokenProcess::Options o = fifo_options();
  o.track_visits = false;
  o.track_delays = true;
  TokenProcess proc(n, std::vector<std::uint32_t>(n, 0), o, Rng(22));
  proc.run(n);  // exactly drains the initial pile (plus re-released ones)
  const Histogram& delays = proc.delay_histogram();
  // Every delay value 0..n-1 appears at least once (the pile drain)...
  for (std::uint32_t d = 0; d < n; ++d) {
    EXPECT_GE(delays.count_at(d), 1u) << "delay " << d;
  }
  // ...and nothing can wait longer than the initial pile.
  EXPECT_LE(delays.max_value(), n - 1);
}

TEST(TokenProcessDelays, LifoBuriesTheOldest) {
  // LIFO on a pile: the newest token leaves immediately every round while
  // the bottom token starves -- max delay far above FIFO's.
  constexpr std::uint32_t n = 16;
  TokenProcess::Options o = fifo_options();
  o.policy = QueuePolicy::kLifo;
  o.track_visits = false;
  o.track_delays = true;
  TokenProcess proc(n, std::vector<std::uint32_t>(n, 0), o, Rng(23));
  proc.run(10 * n);
  EXPECT_GE(proc.delay_histogram().max_value(), n - 1);
}

TEST(TokenProcessDelays, ReassignResetsArrivalClock) {
  TokenProcess::Options o = fifo_options();
  o.track_visits = false;
  o.track_delays = true;
  TokenProcess proc(8, one_per_bin(8), o, Rng(24));
  proc.run(100);
  proc.reassign(std::vector<std::uint32_t>(8, 0));
  // After reassignment at round 100, the very next releases wait at most
  // the pile height, not 100+ rounds.
  proc.run(8);
  EXPECT_LE(proc.delay_histogram().max_value(), 32u);
}

TEST(BallQueue, SnapshotAndRangeViewAgree) {
  BallQueue q;
  Rng rng(7);
  for (std::uint32_t t = 0; t < 8; ++t) q.push(t);
  q.pop(QueuePolicy::kFifo, rng);
  q.pop(QueuePolicy::kFifo, rng);
  const std::vector<std::uint32_t> snap = q.snapshot();
  const std::vector<std::uint32_t> view(q.begin(), q.end());
  EXPECT_EQ(snap, view);
  EXPECT_EQ(snap, (std::vector<std::uint32_t>{2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(static_cast<std::size_t>(q.end() - q.begin()), q.size());
}

TEST(BallQueue, SteadyChurnKeepsCostProportionalToLive) {
  // The long-lived skewed-bin regime: a hot queue holding a handful of
  // live tokens, popped and refilled millions of times.  Compaction
  // cost must track the LIVE count, not the dead prefix -- the queue's
  // footprint has to stay within a small constant of the live size.
  BallQueue q;
  Rng rng(3);
  for (std::uint32_t t = 0; t < 4; ++t) q.push(t);
  for (std::uint32_t t = 0; t < 1'000'000; ++t) {
    const std::uint32_t token = q.pop(QueuePolicy::kFifo, rng);
    q.push(token);
  }
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.snapshot().size(), 4u);
  // 4 live + <= 32 tolerated dead slots, times vector growth slack.
  EXPECT_LE(q.capacity_bytes(), 256 * sizeof(std::uint32_t));
}

TEST(BallQueue, SpikeThenDrainReleasesCapacity) {
  // An adversarial pile-up (reassign-all-to-one-bin) followed by a long
  // drain must hand the spike's heap back: after the queue shrinks to a
  // few live tokens, the retained capacity is a small multiple of the
  // live size, not the high-water mark.
  BallQueue q;
  Rng rng(5);
  constexpr std::uint32_t kSpike = 100'000;
  for (std::uint32_t t = 0; t < kSpike; ++t) q.push(t);
  const std::size_t peak = q.capacity_bytes();
  EXPECT_GE(peak, kSpike * sizeof(std::uint32_t));
  for (std::uint32_t t = 0; t < kSpike - 4; ++t) {
    q.pop(QueuePolicy::kFifo, rng);
  }
  // Keep churning at the small size so compaction gets its chances.
  for (std::uint32_t t = 0; t < 1024; ++t) {
    q.push(q.pop(QueuePolicy::kFifo, rng));
  }
  EXPECT_EQ(q.size(), 4u);
  EXPECT_LT(q.capacity_bytes(), peak / 64);
}

TEST(BallQueue, PopAcrossCompactionPreservesOrderEveryPolicy) {
  // Push/pop sequences long enough to cross several compactions must
  // keep FIFO order exact and LIFO popping the most recent push.
  BallQueue fifo;
  Rng rng(9);
  std::uint32_t next_push = 0;
  std::uint32_t next_pop = 0;
  for (std::uint32_t round = 0; round < 5000; ++round) {
    fifo.push(next_push++);
    fifo.push(next_push++);
    ASSERT_EQ(fifo.pop(QueuePolicy::kFifo, rng), next_pop++);
  }
  BallQueue lifo;
  for (std::uint32_t round = 0; round < 5000; ++round) {
    lifo.push(round);
    lifo.push(round + 1'000'000);
    ASSERT_EQ(lifo.pop(QueuePolicy::kLifo, rng), round + 1'000'000);
  }
  EXPECT_EQ(lifo.size(), 5000u);
}

// Property sweep: across policies and sizes, tokens are conserved, loads
// match queue contents, and total progress equals the departure count.
class TokenSweep
    : public ::testing::TestWithParam<std::tuple<QueuePolicy, std::uint32_t>> {
};

TEST_P(TokenSweep, InvariantsHoldOverWindow) {
  const auto [policy, n] = GetParam();
  TokenProcess::Options o;
  o.policy = policy;
  o.track_visits = true;
  TokenProcess proc(n, one_per_bin(n), o, Rng(13 + n));
  for (std::uint32_t t = 0; t < 10 * n; ++t) proc.step();
  proc.check_invariants();
  std::uint32_t total = 0;
  for (std::uint32_t u = 0; u < n; ++u) total += proc.load(u);
  EXPECT_EQ(total, n);
  EXPECT_GT(proc.min_progress(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSizes, TokenSweep,
    ::testing::Combine(::testing::Values(QueuePolicy::kFifo,
                                         QueuePolicy::kLifo,
                                         QueuePolicy::kRandom),
                       ::testing::Values(8u, 64u, 256u)));

}  // namespace
}  // namespace rbb
