#include "tetris/zchain.hpp"

#include <stdexcept>

namespace rbb {

ZChain::ZChain(std::uint32_t n, std::uint64_t start)
    : arrivals_(n * 3ull / 4ull, n > 0 ? 1.0 / static_cast<double>(n) : 0.0),
      z_(start) {
  if (n < 2) throw std::invalid_argument("ZChain: n < 2");
}

std::uint64_t ZChain::step(Rng& rng) {
  if (z_ == 0) return 0;
  ++steps_;
  z_ = z_ - 1 + arrivals_(rng);
  return z_;
}

std::uint64_t sample_absorption_time(std::uint32_t n, std::uint64_t start,
                                     std::uint64_t cap, Rng& rng) {
  ZChain chain(n, start);
  std::uint64_t t = 0;
  while (!chain.absorbed()) {
    if (t >= cap) return kZChainNotAbsorbed;
    chain.step(rng);
    ++t;
  }
  return t;
}

}  // namespace rbb
