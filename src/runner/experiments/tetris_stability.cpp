// E7 -- Lemma 6: the Tetris process started from a legitimate
// configuration keeps maximum load O(log n) over any polynomial window,
// plus the critical-drift ablation (arrival rate mu*n as mu -> 1).
#include <algorithm>

#include "core/config.hpp"
#include "runner/registry.hpp"
#include "support/bounds.hpp"
#include "support/stats.hpp"
#include "tetris/tetris.hpp"

namespace rbb::runner {

void register_tetris_stability(Registry& registry) {
  Experiment e;
  e.name = "tetris_stability";
  e.claim = "E7";
  e.title = "Tetris window max load is O(log n) (Lemma 6)";
  e.description =
      "Mirror of the E1 stability window for the auxiliary Tetris "
      "process.  Includes the critical-drift ablation: raising the "
      "arrival rate from 3n/4 toward n erodes the negative drift and the "
      "window max load grows -- showing why the 3/4 constant works.";
  e.run = [](const RunContext& ctx) {
    const std::uint32_t trials = ctx.trials_or(2, 4, 8);
    const std::uint64_t wf = by_scale<std::uint64_t>(ctx.scale, 5, 20, 50);
    const std::uint64_t seed = ctx.seed();

    ResultSet rs;
    Table& table = rs.add_table(
        "E7_tetris_stability",
        "Tetris window max load is O(log n) (Lemma 6)",
        {"n", "window", "max load (mean)", "max / log2 n",
         "min empty frac"});
    for (const std::uint32_t n : default_n_sweep(ctx.scale)) {
      OnlineMoments wmax;
      OnlineMoments memp;
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        Rng rng(seed, trial);
        TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng),
                           rng);
        double trial_max = 0.0;
        double trial_min_empty = 1.0;
        for (std::uint64_t t = 0; t < wf * n; ++t) {
          const TetrisRoundStats s = proc.step();
          trial_max = std::max(trial_max, static_cast<double>(s.max_load));
          trial_min_empty = std::min(
              trial_min_empty, static_cast<double>(s.empty_bins) / n);
        }
        wmax.add(trial_max);
        memp.add(trial_min_empty);
      }
      table.row()
          .cell(std::uint64_t{n})
          .cell(wf * n)
          .cell(wmax.mean(), 2)
          .cell(wmax.mean() / log2n(n), 3)
          .cell(memp.min(), 3);
    }

    // Ablation: arrival rate mu * n for mu -> 1 (the drift -(1 - mu)
    // vanishing).  Fixed n, same window.
    const std::uint32_t n = by_scale<std::uint32_t>(ctx.scale, 256, 1024, 4096);
    Table& ablation = rs.add_table(
        "E7b_tetris_critical",
        "ablation: why 3/4 -- max load explodes as mu -> 1",
        {"arrival fraction mu", "drift per bin", "max load (mean)",
         "mean empty frac", "final total balls / n"});
    for (const double mu : {0.5, 0.75, 0.9, 0.95, 1.0}) {
      OnlineMoments wmax;
      OnlineMoments memp;
      OnlineMoments mass;
      const auto arrivals =
          static_cast<std::uint64_t>(mu * static_cast<double>(n));
      for (std::uint32_t trial = 0; trial < trials; ++trial) {
        Rng rng(seed + 17, trial);
        TetrisProcess proc(make_config(InitialConfig::kRandom, n, n, rng),
                           rng, arrivals);
        double trial_max = 0.0;
        double empty_sum = 0.0;
        const std::uint64_t window = 10ull * n;
        for (std::uint64_t t = 0; t < window; ++t) {
          const TetrisRoundStats s = proc.step();
          trial_max = std::max(trial_max, static_cast<double>(s.max_load));
          empty_sum += static_cast<double>(s.empty_bins) / n;
        }
        wmax.add(trial_max);
        memp.add(empty_sum / static_cast<double>(window));
        mass.add(static_cast<double>(proc.total_balls()) / n);
      }
      ablation.row()
          .cell(mu, 2)
          .cell(mu - 1.0, 2)
          .cell(wmax.mean(), 2)
          .cell(memp.mean(), 3)
          .cell(mass.mean(), 3);
    }
    return rs;
  };
  registry.add(std::move(e));
}

}  // namespace rbb::runner
