// Invariance and parity tests for the sharded repeated-d-choices kernel
// (batch-snapshot Greedy[d]; DESIGN.md Sect. 5, core/kernel/variants.hpp).
//
// The snapshot convention is exactly what makes the variant shardable:
// every choice reads the post-departure configuration, so the choose
// phase is read-only over cross-shard loads and the commit's load sums
// commute.  These tests pin that the convention really is
// schedule-independent -- 1/2/8 workers, shard sizes {64, 256, 1024},
// and the plain sequential counter-stream loop all produce bit-identical
// trajectories -- and that d = 1 degenerates to the load-only kernel
// draw-for-draw (candidate slot (0, u) IS the relaunch slot u).
#include "par/sharded_variants.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "engine/engine.hpp"
#include "par/sharded_process.hpp"

namespace rbb::par {
namespace {

constexpr std::uint32_t kN = 2048;
constexpr std::uint32_t kD = 2;
constexpr std::uint64_t kSeed = 0xdc01ce5ULL;
constexpr std::uint64_t kRounds = 40;

LoadConfig start_config(InitialConfig kind = InitialConfig::kOnePerBin) {
  Rng rng(99);
  return make_config(kind, kN, kN, rng);
}

struct Trajectory {
  std::vector<DChoicesRoundStats> stats;
  LoadConfig final_loads;

  bool operator==(const Trajectory& other) const {
    if (final_loads != other.final_loads) return false;
    if (stats.size() != other.stats.size()) return false;
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (stats[i].max_load != other.stats[i].max_load ||
          stats[i].empty_bins != other.stats[i].empty_bins ||
          stats[i].departures != other.stats[i].departures) {
        return false;
      }
    }
    return true;
  }
};

template <typename Process>
Trajectory record(Process& proc) {
  Trajectory t;
  for (std::uint64_t r = 0; r < kRounds; ++r) t.stats.push_back(proc.step());
  t.final_loads = proc.loads();
  return t;
}

Trajectory run_sharded(ShardedOptions options, std::uint32_t d = kD,
                       InitialConfig kind = InitialConfig::kOnePerBin) {
  ShardedDChoicesProcess proc(start_config(kind), d, kSeed, options);
  return record(proc);
}

TEST(ShardedDChoices, TrajectoryIdenticalFor1_2_8Workers) {
  const Trajectory one = run_sharded({.threads = 1, .shard_size = 256});
  const Trajectory two = run_sharded({.threads = 2, .shard_size = 256});
  const Trajectory eight = run_sharded({.threads = 8, .shard_size = 256});
  EXPECT_TRUE(one == two);
  EXPECT_TRUE(one == eight);
}

TEST(ShardedDChoices, TrajectoryIndependentOfShardSize) {
  const Trajectory s64 = run_sharded({.threads = 2, .shard_size = 64});
  const Trajectory s256 = run_sharded({.threads = 2, .shard_size = 256});
  const Trajectory s1024 = run_sharded({.threads = 2, .shard_size = 1024});
  EXPECT_TRUE(s64 == s256);
  EXPECT_TRUE(s64 == s1024);
}

TEST(ShardedDChoices, BitIdenticalToSequentialCounterSibling) {
  SequentialCounterDChoicesProcess reference(start_config(), kD, kSeed);
  ShardedDChoicesProcess sharded(start_config(), kD, kSeed,
                                 {.threads = 2, .shard_size = 256});
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    const DChoicesRoundStats expect = reference.step();
    const DChoicesRoundStats got = sharded.step();
    ASSERT_EQ(got.max_load, expect.max_load) << "round " << r;
    ASSERT_EQ(got.empty_bins, expect.empty_bins) << "round " << r;
    ASSERT_EQ(got.departures, expect.departures) << "round " << r;
    ASSERT_EQ(sharded.loads(), reference.loads()) << "round " << r;
  }
}

TEST(ShardedDChoices, ParityHoldsFromAdversarialStartAndLargerD) {
  SequentialCounterDChoicesProcess reference(
      start_config(InitialConfig::kAllInOne), 3, kSeed);
  ShardedDChoicesProcess sharded(start_config(InitialConfig::kAllInOne), 3,
                                 kSeed, {.threads = 8, .shard_size = 1024});
  Trajectory a = record(reference);
  Trajectory b = record(sharded);
  EXPECT_TRUE(a == b);
}

TEST(ShardedDChoices, DOneDegeneratesToTheLoadOnlyKernel) {
  // With one candidate there is no choice: candidate slot (0, u) equals
  // the load-only relaunch slot u, so the d = 1 instantiation replays
  // the sharded load-only kernel's trajectory exactly.
  ShardedDChoicesProcess d1(start_config(), 1, kSeed,
                            {.threads = 2, .shard_size = 256});
  ShardedRepeatedBallsProcess load_only(start_config(), kSeed,
                                        {.threads = 2, .shard_size = 256});
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    d1.step();
    load_only.step();
    ASSERT_EQ(d1.loads(), load_only.loads()) << "round " << r;
  }
}

TEST(ShardedDChoices, ConservesBallsAndPassesInvariantChecks) {
  ShardedDChoicesProcess proc(start_config(InitialConfig::kGeometric), kD,
                              kSeed, {.threads = 2, .shard_size = 128});
  EXPECT_EQ(proc.ball_count(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(proc.choices(), kD);
  for (int r = 0; r < 16; ++r) {
    proc.step();
    ASSERT_NO_THROW(proc.check_invariants());
    EXPECT_EQ(total_balls(proc.loads()), static_cast<std::uint64_t>(kN));
  }
}

TEST(ShardedDChoices, TwoChoicesFlattenTheMaximum) {
  // The power of two choices survives the snapshot convention: after a
  // long window from one-per-bin, d = 2 stays far below d = 1.
  const auto window_max = [](std::uint32_t d) {
    ShardedDChoicesProcess proc(start_config(), d, kSeed,
                                {.threads = 2, .shard_size = 256});
    std::uint32_t wmax = 0;
    for (std::uint32_t t = 0; t < 4 * kN; ++t) {
      wmax = std::max(wmax, proc.step().max_load);
    }
    return wmax;
  };
  const std::uint32_t d1 = window_max(1);
  const std::uint32_t d2 = window_max(2);
  EXPECT_LT(d2, d1);
  // Batch staleness costs a constant over classic greedy (decisions
  // read the pre-arrival snapshot), but the maximum stays in the
  // log-log regime, far under d = 1's ~2 log2 n ~ 22.
  EXPECT_LE(d2, 10u);
}

TEST(ShardedDChoices, RejectsBadConstruction) {
  EXPECT_THROW(ShardedDChoicesProcess(LoadConfig{}, 2, kSeed),
               std::invalid_argument);
  EXPECT_THROW(ShardedDChoicesProcess(LoadConfig(16, 1), 0, kSeed),
               std::invalid_argument);
}

static_assert(SimProcess<ShardedDChoicesProcess>,
              "the sharded d-choices kernel must satisfy the engine concept");
static_assert(SimProcess<SequentialCounterDChoicesProcess>,
              "the counter-stream d-choices sibling must satisfy the engine "
              "concept");

TEST(ShardedDChoices, EngineDrivesIt) {
  Engine engine(ShardedDChoicesProcess(start_config(), kD, kSeed,
                                       {.threads = 2, .shard_size = 256}));
  WindowMaxLoad wmax;
  const EngineResult r = engine.run_rounds(kRounds, wmax);
  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_GE(wmax.window_max, 1u);
}

}  // namespace
}  // namespace rbb::par
