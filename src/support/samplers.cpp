#include "support/samplers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace rbb {
namespace {

// Stirling-series correction fc(k) = log(k!) - [ (k+1/2)log(k+1) - (k+1)
// + 0.5 log(2 pi) ] used by BTRD's exact acceptance step.
double stirling_correction(double k) {
  static constexpr double kTable[10] = {
      0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
      0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
      0.01189670994589177, 0.01041126526197209, 0.00925546218271273,
      0.00833056343336287};
  if (k < 10.0) return kTable[static_cast<int>(k)];
  const double kp = k + 1.0;
  const double kp2 = kp * kp;
  return (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp2) / kp2) / kp;
}

}  // namespace

BinomialSampler::BinomialSampler(std::uint64_t trials, double p)
    : trials_(trials),
      p_(p),
      ph_(0.0),
      flipped_(false),
      degenerate_(false),
      use_btrd_(false),
      q0_(0.0),
      odds_(0.0),
      btrd_m_(0), btrd_r_(0), btrd_nr_(0), btrd_npq_(0), btrd_b_(0),
      btrd_a_(0), btrd_c_(0), btrd_alpha_(0), btrd_vr_(0), btrd_urvr_(0),
      btrd_h_(0) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("BinomialSampler: p must be in [0, 1]");
  }
  if (trials == 0 || p == 0.0 || p == 1.0) {
    degenerate_ = true;
    return;
  }
  flipped_ = p > 0.5;
  ph_ = flipped_ ? 1.0 - p : p;
  const double n = static_cast<double>(trials_);
  if (n * ph_ < 10.0) {
    use_btrd_ = false;
    q0_ = std::exp(n * std::log1p(-ph_));
    odds_ = ph_ / (1.0 - ph_);
  } else {
    use_btrd_ = true;
    const double q = 1.0 - ph_;
    btrd_m_ = std::floor((n + 1.0) * ph_);
    btrd_r_ = ph_ / q;
    btrd_nr_ = (n + 1.0) * btrd_r_;
    btrd_npq_ = n * ph_ * q;
    const double sq = std::sqrt(btrd_npq_);
    btrd_b_ = 1.15 + 2.53 * sq;
    btrd_a_ = -0.0873 + 0.0248 * btrd_b_ + 0.01 * ph_;
    btrd_c_ = n * ph_ + 0.5;
    btrd_alpha_ = (2.83 + 5.1 / btrd_b_) * sq;
    btrd_vr_ = 0.92 - 4.2 / btrd_b_;
    btrd_urvr_ = 0.86 * btrd_vr_;
    const double nm = n - btrd_m_ + 1.0;
    btrd_h_ = (btrd_m_ + 0.5) * std::log((btrd_m_ + 1.0) / (btrd_r_ * nm)) +
              stirling_correction(btrd_m_) +
              stirling_correction(n - btrd_m_);
  }
}

std::uint64_t BinomialSampler::operator()(Rng& rng) const {
  if (degenerate_) return p_ == 1.0 ? trials_ : 0;
  const std::uint64_t k = use_btrd_ ? sample_btrd(rng) : sample_inversion(rng);
  return flipped_ ? trials_ - k : k;
}

std::uint64_t BinomialSampler::sample_inversion(Rng& rng) const {
  // Sequential search of the cdf with the pmf recurrence
  //   pmf(k+1) = pmf(k) * (n-k)/(k+1) * odds.
  const double n = static_cast<double>(trials_);
  double u = rng.uniform();
  double pmf = q0_;
  std::uint64_t k = 0;
  while (u > pmf && k < trials_) {
    u -= pmf;
    const double kd = static_cast<double>(k);
    pmf *= (n - kd) / (kd + 1.0) * odds_;
    ++k;
    // Numerical guard: if pmf has decayed below representable mass while u
    // retains rounding residue, the remaining tail is negligible.
    if (pmf < 1e-300) break;
  }
  return k;
}

std::uint64_t BinomialSampler::sample_btrd(Rng& rng) const {
  // Hoermann (1993), algorithm BTRD, for ph_ <= 0.5 and n*ph_ >= 10.
  const double n = static_cast<double>(trials_);
  for (;;) {
    double v = rng.uniform();
    double u;
    if (v <= btrd_urvr_) {
      u = v / btrd_vr_ - 0.43;
      const double us = 0.5 - std::abs(u);
      return static_cast<std::uint64_t>(
          std::floor((2.0 * btrd_a_ / us + btrd_b_) * u + btrd_c_));
    }
    if (v >= btrd_vr_) {
      u = rng.uniform() - 0.5;
    } else {
      u = v / btrd_vr_ - 0.93;
      u = (u < 0 ? -0.5 : 0.5) - u;
      v = rng.uniform() * btrd_vr_;
    }
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * btrd_a_ / us + btrd_b_) * u + btrd_c_);
    if (kd < 0.0 || kd > n) continue;
    v = v * btrd_alpha_ / (btrd_a_ / (us * us) + btrd_b_);
    const double km = std::abs(kd - btrd_m_);
    if (km <= 15.0) {
      // Exact evaluation by the pmf ratio recurrence.
      double f = 1.0;
      if (btrd_m_ < kd) {
        for (double i = btrd_m_ + 1.0; i <= kd; i += 1.0) {
          f *= btrd_nr_ / i - btrd_r_;
        }
      } else if (btrd_m_ > kd) {
        for (double i = kd + 1.0; i <= btrd_m_; i += 1.0) {
          v *= btrd_nr_ / i - btrd_r_;
        }
      }
      if (v <= f) return static_cast<std::uint64_t>(kd);
      continue;
    }
    // Squeeze-accept / squeeze-reject on the log scale.
    v = std::log(v);
    const double rho =
        (km / btrd_npq_) * (((km / 3.0 + 0.625) * km + 1.0 / 6.0) / btrd_npq_ +
                            0.5);
    const double t = -km * km / (2.0 * btrd_npq_);
    if (v < t - rho) return static_cast<std::uint64_t>(kd);
    if (v > t + rho) continue;
    // Exact log-pmf comparison.
    const double nm = n - btrd_m_ + 1.0;
    const double nk = n - kd + 1.0;
    const double accept =
        btrd_h_ + (n + 1.0) * std::log(nm / nk) +
        (kd + 0.5) * std::log(nk * btrd_r_ / (kd + 1.0)) -
        stirling_correction(kd) - stirling_correction(n - kd);
    if (v <= accept) return static_cast<std::uint64_t>(kd);
  }
}

std::uint64_t binomial_sample(std::uint64_t trials, double p, Rng& rng) {
  return BinomialSampler(trials, p)(rng);
}

std::uint64_t poisson_sample(double mean, Rng& rng) {
  if (!(mean >= 0.0)) {
    throw std::invalid_argument("poisson_sample: mean must be >= 0");
  }
  std::uint64_t total = 0;
  // Poisson(a + b) = Poisson(a) + Poisson(b): peel off chunks of 25 so the
  // product method below never multiplies past double underflow.
  while (mean > 30.0) {
    constexpr double kChunk = 25.0;
    // Knuth on the chunk.
    const double limit = std::exp(-kChunk);
    double prod = rng.uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= rng.uniform();
      ++k;
    }
    total += k;
    mean -= kChunk;
  }
  if (mean > 0.0) {
    const double limit = std::exp(-mean);
    double prod = rng.uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= rng.uniform();
      ++k;
    }
    total += k;
  }
  return total;
}

std::uint64_t geometric_sample(double p, Rng& rng) {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("geometric_sample: p must be in (0, 1]");
  }
  if (p == 1.0) return 0;
  // floor(log(1-U) / log(1-p)), exact inversion of the failure count.
  return static_cast<std::uint64_t>(std::log1p(-rng.uniform()) /
                                    std::log1p(-p));
}

std::vector<std::uint32_t> occupancy_throw(std::uint64_t balls,
                                           std::uint32_t bins, Rng& rng) {
  if (bins == 0) throw std::invalid_argument("occupancy_throw: bins == 0");
  std::vector<std::uint32_t> counts(bins, 0);
  for (std::uint64_t i = 0; i < balls; ++i) counts[rng.index(bins)]++;
  return counts;
}

namespace {

void occupancy_split_rec(std::uint64_t balls, std::uint32_t lo,
                         std::uint32_t hi, std::vector<std::uint32_t>& counts,
                         Rng& rng) {
  if (balls == 0) return;
  const std::uint32_t width = hi - lo;
  if (width == 1) {
    counts[lo] = static_cast<std::uint32_t>(balls);
    return;
  }
  const std::uint32_t mid = lo + width / 2;
  const double p_left = static_cast<double>(mid - lo) / width;
  const std::uint64_t left = binomial_sample(balls, p_left, rng);
  occupancy_split_rec(left, lo, mid, counts, rng);
  occupancy_split_rec(balls - left, mid, hi, counts, rng);
}

}  // namespace

std::vector<std::uint32_t> occupancy_split(std::uint64_t balls,
                                           std::uint32_t bins, Rng& rng) {
  if (bins == 0) throw std::invalid_argument("occupancy_split: bins == 0");
  std::vector<std::uint32_t> counts(bins, 0);
  occupancy_split_rec(balls, 0, bins, counts, rng);
  return counts;
}

std::vector<std::uint32_t> sample_distinct(std::uint32_t n, std::uint32_t k,
                                           Rng& rng) {
  if (k > n) throw std::invalid_argument("sample_distinct: k > n");
  // Floyd's algorithm: for j = n-k .. n-1, insert a uniform pick from
  // [0, j], falling back to j itself on collision.
  std::vector<std::uint32_t> result;
  result.reserve(k);
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const std::uint32_t t = rng.index(j + 1);
    if (seen.insert(t).second) {
      result.push_back(t);
    } else {
      seen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace rbb
