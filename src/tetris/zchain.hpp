// The absorbing Markov chain of paper eq. (4) (Lemma 5).
//
//   Z_t = 0                      if Z_{t-1} = 0          (0 is absorbing)
//   Z_t = Z_{t-1} - 1 + X_t      if Z_{t-1} >= 1,
//
// with X_t i.i.d. Binomial(floor(3n/4), 1/n).  Z models a single Tetris
// bin's load: one departure per round against mean-3/4 arrivals, i.e.
// strictly negative drift -1/4.  Lemma 5: from state k, for t >= 8k,
// P(tau > t) <= e^{-t/144} where tau is the absorption time.
#pragma once

#include <cstdint>
#include <limits>

#include "support/rng.hpp"
#include "support/samplers.hpp"

namespace rbb {

/// One walker of the eq. (4) chain.
class ZChain {
 public:
  /// Chain parameterized by the system size n (arrival law
  /// Binomial(floor(3n/4), 1/n)) and a starting state.
  ZChain(std::uint32_t n, std::uint64_t start);

  /// Advances one step (no-op when absorbed); returns the new state.
  std::uint64_t step(Rng& rng);

  [[nodiscard]] std::uint64_t value() const noexcept { return z_; }
  [[nodiscard]] bool absorbed() const noexcept { return z_ == 0; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

 private:
  BinomialSampler arrivals_;
  std::uint64_t z_;
  std::uint64_t steps_ = 0;
};

/// Sentinel for "not absorbed within the cap".
inline constexpr std::uint64_t kZChainNotAbsorbed =
    std::numeric_limits<std::uint64_t>::max();

/// Samples the absorption time tau of the chain started at `start`,
/// giving up after `cap` steps (returns kZChainNotAbsorbed then).
[[nodiscard]] std::uint64_t sample_absorption_time(std::uint32_t n,
                                                   std::uint64_t start,
                                                   std::uint64_t cap,
                                                   Rng& rng);

}  // namespace rbb
