// E20 -- stationary load profile: the occupancy distribution P(load >= k)
// of the repeated process against its three relatives.
//
// Table: for fixed n, the fraction of bins with load >= k for
// k = 0..kmax, for: the repeated process (correlated walks), independent
// walks (fresh Poisson(1)-like occupancy: e^{-1}/k! tail), Tetris (more
// arrivals: heavier head, same geometric tail), and the closed Jackson
// network (product-form ~ geometric marginals -- the heaviest tail).
// This is the distributional view behind the max-load theorems: the
// repeated process's tail decays geometrically with ratio well below 1,
// which is why its maximum stays at O(log n).
#include "analysis/experiments.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rbb;
  Cli cli = bench::make_cli(
      "E20: stationary occupancy profiles of the four processes");
  cli.add_u64("n", 0, "bins (0 = scale default)");
  if (!cli.parse(argc, argv)) return 0;

  const BenchScale scale = bench_scale();
  const std::uint32_t trials = bench::trials_for(cli, scale, 2, 3, 6);
  const std::uint32_t n =
      cli.u64("n") != 0 ? static_cast<std::uint32_t>(cli.u64("n"))
                        : by_scale<std::uint32_t>(scale, 512, 2048, 8192);

  const std::vector<std::pair<ProfileProcess, std::string>> processes = {
      {ProfileProcess::kRepeated, "repeated"},
      {ProfileProcess::kIndependent, "indep walks"},
      {ProfileProcess::kTetris, "tetris"},
      {ProfileProcess::kJackson, "jackson"},
  };
  std::vector<LoadProfileResult> results;
  std::uint64_t kmax = 0;
  for (const auto& [process, name] : processes) {
    LoadProfileParams p;
    p.n = n;
    p.process = process;
    p.trials = trials;
    p.seed = cli.u64("seed");
    results.push_back(run_load_profile(p));
    kmax = std::max<std::uint64_t>(kmax, results.back().tail.size());
  }
  kmax = std::min<std::uint64_t>(kmax, 14);

  Table table({"k", "P(load>=k) repeated", "indep walks", "tetris",
               "jackson"});
  for (std::uint64_t k = 0; k < kmax; ++k) {
    auto tail_at = [&](std::size_t idx) {
      return k < results[idx].tail.size() ? results[idx].tail[k] : 0.0;
    };
    table.row()
        .cell(k)
        .cell(tail_at(0), 6)
        .cell(tail_at(1), 6)
        .cell(tail_at(2), 6)
        .cell(tail_at(3), 6);
  }
  bench::emit(table, "E20_load_profile",
              "occupancy tails: geometric decay across all four processes",
              scale);
  return 0;
}
